// Route collector: a passive BGP speaker that records every message it
// hears, per session — the in-simulator equivalent of a RouteViews /
// RIPE RIS collector (the paper's C1 in Figure 1). Can export its log as
// an RFC 6396 MRT file byte-compatible with real collector output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "bgp/message.h"
#include "mrt/source.h"
#include "netbase/timeutil.h"

namespace bgpcc::sim {

/// One recorded BGP message on one collector session.
struct RecordedMessage {
  Timestamp time;
  std::uint32_t session_id = 0;
  Asn peer_asn;
  IpAddress peer_address;
  UpdateMessage update;
};

class RouteCollector {
 public:
  RouteCollector(std::string name, Asn asn, IpAddress address)
      : name_(std::move(name)), asn_(asn), address_(address) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Asn asn() const { return asn_; }
  [[nodiscard]] const IpAddress& address() const { return address_; }

  void record(Timestamp time, std::uint32_t session_id, Asn peer_asn,
              const IpAddress& peer_address, const UpdateMessage& update) {
    messages_.push_back(
        RecordedMessage{time, session_id, peer_asn, peer_address, update});
  }

  [[nodiscard]] const std::vector<RecordedMessage>& messages() const {
    return messages_;
  }
  [[nodiscard]] std::size_t message_count() const { return messages_.size(); }
  void clear() { messages_.clear(); }

  /// Writes the full log as BGP4MP(_ET) records. `extended_time` false
  /// models the second-granularity collectors the paper's §4 cleaning
  /// step has to repair. `compression` gzip/bzip2-compresses the archive
  /// the way RouteViews/RIS publish theirs (the ingestion engine
  /// autodetects and inflates transparently).
  void write_mrt(const std::string& path, bool extended_time = true,
                 mrt::Compression compression = mrt::Compression::kNone) const;

  /// Same, onto a caller-owned binary stream (in-memory archives for the
  /// multi-source ingestion engine, sockets, …).
  void write_mrt(std::ostream& out, bool extended_time = true,
                 mrt::Compression compression = mrt::Compression::kNone) const;

  /// Writes the log rotated across `files` archives (contiguous slices in
  /// record order), the way real collectors publish 5-/15-minute dump
  /// series. Produces `<path_prefix>.0000 … .NNNN` (with the conventional
  /// `.gz`/`.bz2` suffix appended when compressed); returns the paths in
  /// rotation order, ready for core::ingest_mrt_files. `files` must be
  /// >= 1 (throws ConfigError otherwise).
  [[nodiscard]] std::vector<std::string> write_mrt_rotated(
      const std::string& path_prefix, std::size_t files,
      bool extended_time = true,
      mrt::Compression compression = mrt::Compression::kNone) const;

 private:
  void write_range(std::ostream& out, std::size_t begin, std::size_t end,
                   bool extended_time) const;
  /// The single staging point for compressed output: writes the record
  /// slice, optionally through an in-memory compress step.
  void write_slice(std::ostream& out, std::size_t begin, std::size_t end,
                   bool extended_time, mrt::Compression compression) const;

  std::string name_;
  Asn asn_;
  IpAddress address_;
  std::vector<RecordedMessage> messages_;
};

}  // namespace bgpcc::sim
