#include "sim/network.h"

#include "netbase/error.h"

namespace bgpcc::sim {
namespace {

// Deterministic loopback-style address per node: 10.x.y.1.
IpAddress node_address(std::uint32_t index) {
  return IpAddress::v4(10, static_cast<std::uint8_t>(index >> 8),
                       static_cast<std::uint8_t>(index & 0xff), 1);
}

}  // namespace

Router& Network::add_router(const std::string& name, Asn asn,
                            VendorProfile vendor) {
  if (routers_.contains(name) || collectors_.contains(name)) {
    throw ConfigError("duplicate node name: " + name);
  }
  std::uint32_t index = next_node_index_++;
  auto router = std::make_unique<Router>(name, asn, index,
                                         node_address(index), vendor);
  Router& ref = *router;
  routers_.emplace(name, std::move(router));
  wire_router(ref);
  return ref;
}

RouteCollector& Network::add_collector(const std::string& name, Asn asn) {
  if (routers_.contains(name) || collectors_.contains(name)) {
    throw ConfigError("duplicate node name: " + name);
  }
  std::uint32_t index = next_node_index_++;
  auto collector =
      std::make_unique<RouteCollector>(name, asn, node_address(index));
  RouteCollector& ref = *collector;
  collectors_.emplace(name, std::move(collector));
  return ref;
}

Router& Network::router(std::string_view name) {
  auto it = routers_.find(name);
  if (it == routers_.end()) {
    throw ConfigError("unknown router: " + std::string(name));
  }
  return *it->second;
}

RouteCollector& Network::collector(std::string_view name) {
  auto it = collectors_.find(name);
  if (it == collectors_.end()) {
    throw ConfigError("unknown collector: " + std::string(name));
  }
  return *it->second;
}

bool Network::has_router(std::string_view name) const {
  return routers_.contains(name);
}

void Network::wire_router(Router& router) {
  const std::string name = router.name();
  router.set_emit([this, name](std::uint32_t session_id,
                               const UpdateMessage& update) {
    on_emit(name, session_id, update);
  });
  router.set_timer([this](Duration delay, std::function<void()> fn) {
    scheduler_.after(delay, std::move(fn));
  });
}

std::uint32_t Network::add_session(std::string_view a, std::string_view b,
                                   SessionOptions options) {
  Session s;
  s.id = static_cast<std::uint32_t>(sessions_.size()) + 1;
  s.a = Endpoint{std::string(a), has_router(a)};
  s.b = Endpoint{std::string(b), has_router(b)};
  s.delay = options.delay;
  if (!s.a.is_router && !s.b.is_router) {
    throw ConfigError("session needs at least one router endpoint");
  }
  // Resolve endpoint identities (asn/address/router-id).
  struct NodeInfo {
    Asn asn;
    IpAddress address;
    std::uint32_t router_id;
  };
  auto info = [this](const Endpoint& e) -> NodeInfo {
    if (e.is_router) {
      Router& r = router(e.node);
      return {r.asn(), r.address(), r.router_id()};
    }
    RouteCollector& c = collector(e.node);
    return {c.asn(), c.address(), 0};
  };
  NodeInfo ia = info(s.a);
  NodeInfo ib = info(s.b);
  bool ebgp = ia.asn != ib.asn;

  if (s.a.is_router) {
    Router::NeighborConfig config;
    config.neighbor_id = s.id;
    config.peer_asn = ib.asn;
    config.peer_address = ib.address;
    config.local_address = ia.address;
    config.peer_router_id = ib.router_id;
    config.ebgp = ebgp;
    config.igp_metric = options.a_igp_metric;
    config.import_policy = options.a_import;
    config.export_policy = options.a_export;
    config.next_hop_self = options.a_next_hop_self;
    config.mrai = options.a_mrai;
    router(s.a.node).add_neighbor(std::move(config));
  }
  if (s.b.is_router) {
    Router::NeighborConfig config;
    config.neighbor_id = s.id;
    config.peer_asn = ia.asn;
    config.peer_address = ia.address;
    config.local_address = ib.address;
    config.peer_router_id = ia.router_id;
    config.ebgp = ebgp;
    config.igp_metric = options.b_igp_metric;
    config.import_policy = options.b_import;
    config.export_policy = options.b_export;
    config.next_hop_self = options.b_next_hop_self;
    config.mrai = options.b_mrai;
    router(s.b.node).add_neighbor(std::move(config));
  }
  sessions_.push_back(std::move(s));
  return sessions_.back().id;
}

Network::Session& Network::session(std::uint32_t session_id) {
  if (session_id == 0 || session_id > sessions_.size()) {
    throw ConfigError("unknown session id " + std::to_string(session_id));
  }
  return sessions_[session_id - 1];
}

const Network::Session& Network::session(std::uint32_t session_id) const {
  return const_cast<Network*>(this)->session(session_id);
}

const Network::Endpoint& Network::other_end(const Session& s,
                                            const std::string& from) const {
  return s.a.node == from ? s.b : s.a;
}

void Network::start() {
  for (Session& s : sessions_) {
    if (!s.up) set_session_state(s.id, true);
  }
}

void Network::set_session_state(std::uint32_t session_id, bool up) {
  Session& s = session(session_id);
  if (s.up == up) return;
  s.up = up;
  ++s.epoch;
  Timestamp now = scheduler_.now();
  // Down: notify immediately (both sides lose the session at once).
  // Up: likewise; the initial table transfer rides the normal delay path.
  for (const Endpoint* e : {&s.a, &s.b}) {
    if (!e->is_router) continue;
    Router& r = router(e->node);
    if (up) {
      r.session_up(session_id, now);
    } else {
      r.session_down(session_id, now);
    }
  }
}

void Network::schedule_session_down(std::uint32_t session_id, Timestamp when) {
  scheduler_.at(when,
                [this, session_id] { set_session_state(session_id, false); });
}

void Network::schedule_session_up(std::uint32_t session_id, Timestamp when) {
  scheduler_.at(when,
                [this, session_id] { set_session_state(session_id, true); });
}

bool Network::session_up(std::uint32_t session_id) const {
  return session(session_id).up;
}

void Network::tap_session(std::uint32_t session_id, Tap tap) {
  session(session_id).taps.push_back(std::move(tap));
}

void Network::on_emit(const std::string& from, std::uint32_t session_id,
                      const UpdateMessage& update) {
  Session& s = session(session_id);
  if (!s.up) return;  // emitted into a dead session: dropped
  std::uint64_t epoch = s.epoch;
  scheduler_.after(s.delay, [this, session_id, epoch, from, update] {
    deliver(session_id, epoch, from, update);
  });
}

void Network::deliver(std::uint32_t session_id, std::uint64_t epoch,
                      const std::string& from, const UpdateMessage& update) {
  Session& s = session(session_id);
  if (!s.up || s.epoch != epoch) return;  // session reset while in flight
  const Endpoint& to = other_end(s, from);
  Timestamp now = scheduler_.now();
  ++messages_delivered_;
  for (const Tap& tap : s.taps) tap(now, from, to.node, update);
  if (to.is_router) {
    router(to.node).handle_update(session_id, update, now);
  } else {
    // Identify the sending peer for the collector record.
    const Endpoint& peer = other_end(s, to.node);
    Router& sender = router(peer.node);
    collector(to.node).record(now, session_id, sender.asn(),
                              sender.address(), update);
  }
}

RouterStats Network::total_router_stats() const {
  RouterStats total;
  for (const auto& [name, router] : routers_) {
    const RouterStats& s = router->stats();
    total.updates_received += s.updates_received;
    total.announcements_received += s.announcements_received;
    total.withdrawals_received += s.withdrawals_received;
    total.duplicate_updates_received += s.duplicate_updates_received;
    total.updates_sent += s.updates_sent;
    total.announcements_sent += s.announcements_sent;
    total.withdrawals_sent += s.withdrawals_sent;
    total.duplicates_sent += s.duplicates_sent;
    total.duplicates_suppressed += s.duplicates_suppressed;
    total.loop_rejected += s.loop_rejected;
    total.denied_by_import += s.denied_by_import;
  }
  return total;
}

}  // namespace bgpcc::sim
