// Discrete-event scheduler: a time-ordered queue of closures. Events at
// equal timestamps run in FIFO submission order, making every simulation
// fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "netbase/timeutil.h"

namespace bgpcc::sim {

class Scheduler {
 public:
  explicit Scheduler(Timestamp start = Timestamp{}) : now_(start) {}

  [[nodiscard]] Timestamp now() const { return now_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Schedules `fn` at absolute time `when` (clamped to now if earlier;
  /// the simulator never travels backwards).
  void at(Timestamp when, std::function<void()> fn);
  /// Schedules `fn` after a relative delay.
  void after(Duration delay, std::function<void()> fn) {
    at(now_ + delay, std::move(fn));
  }

  /// Runs the next event; returns false if the queue is empty.
  bool step();
  /// Runs until the queue drains. Returns the number of events processed.
  std::size_t run();
  /// Runs events with timestamp <= `until`. Afterwards now() == until if
  /// the queue drained past it. Returns events processed.
  std::size_t run_until(Timestamp until);

 private:
  struct Entry {
    Timestamp when;
    std::uint64_t seq;  // FIFO tie-break
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Timestamp now_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace bgpcc::sim
