// Topology builder and message fabric: owns routers, collectors and
// sessions; moves updates between them with configurable propagation
// delays; schedules session flaps. Everything runs on one deterministic
// event queue.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "policy/policy.h"
#include "router/router.h"
#include "sim/collector.h"
#include "sim/scheduler.h"

namespace bgpcc::sim {

/// Per-session configuration (endpoint "a" is the first name passed to
/// add_session). Policies are directional: a_import is what A applies to
/// routes received from B, a_export what A applies before sending to B.
struct SessionOptions {
  Duration delay = Duration::millis(10);
  Policy a_import;
  Policy a_export;
  Policy b_import;
  Policy b_export;
  std::uint32_t a_igp_metric = 10;
  std::uint32_t b_igp_metric = 10;
  bool a_next_hop_self = true;
  bool b_next_hop_self = true;
  Duration a_mrai{};
  Duration b_mrai{};
};

class Network {
 public:
  explicit Network(Timestamp start = Timestamp::from_unix_seconds(0))
      : scheduler_(start) {}

  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] Timestamp now() const { return scheduler_.now(); }

  /// Adds a router; router id and loopback address are auto-assigned in
  /// creation order (earlier routers win router-id tie-breaks).
  Router& add_router(const std::string& name, Asn asn, VendorProfile vendor);
  RouteCollector& add_collector(const std::string& name, Asn asn);

  [[nodiscard]] Router& router(std::string_view name);
  [[nodiscard]] RouteCollector& collector(std::string_view name);
  [[nodiscard]] bool has_router(std::string_view name) const;

  /// Creates a BGP session between two nodes (router-router or
  /// router-collector). eBGP vs iBGP is inferred from the ASNs.
  /// Returns the session id (also used as the routers' neighbor id).
  std::uint32_t add_session(std::string_view a, std::string_view b,
                            SessionOptions options = {});

  /// Brings every session up at the current time (call once after
  /// building the topology), then processes resulting convergence traffic
  /// when run() is called.
  void start();

  /// Immediate session state change at now(); triggers purge/refresh.
  void set_session_state(std::uint32_t session_id, bool up);
  void schedule_session_down(std::uint32_t session_id, Timestamp when);
  void schedule_session_up(std::uint32_t session_id, Timestamp when);
  [[nodiscard]] bool session_up(std::uint32_t session_id) const;

  /// Observation hook on a session (packet capture in the paper's lab):
  /// called for every delivered message with (time, sender, receiver).
  using Tap = std::function<void(Timestamp, const std::string&,
                                 const std::string&, const UpdateMessage&)>;
  void tap_session(std::uint32_t session_id, Tap tap);

  /// Runs until the event queue drains; returns events processed.
  std::size_t run() { return scheduler_.run(); }
  std::size_t run_until(Timestamp until) {
    return scheduler_.run_until(until);
  }

  [[nodiscard]] std::uint64_t messages_delivered() const {
    return messages_delivered_;
  }

  /// Sum of a stat across all routers (convenience for experiments).
  [[nodiscard]] RouterStats total_router_stats() const;

 private:
  struct Endpoint {
    std::string node;
    bool is_router = false;
  };
  struct Session {
    std::uint32_t id = 0;
    Endpoint a;
    Endpoint b;
    Duration delay;
    bool up = false;
    std::uint64_t epoch = 0;  // bumped on every state change
    std::vector<Tap> taps;
  };

  void wire_router(Router& router);
  void on_emit(const std::string& from, std::uint32_t session_id,
               const UpdateMessage& update);
  void deliver(std::uint32_t session_id, std::uint64_t epoch,
               const std::string& from, const UpdateMessage& update);
  [[nodiscard]] Session& session(std::uint32_t session_id);
  [[nodiscard]] const Session& session(std::uint32_t session_id) const;
  [[nodiscard]] const Endpoint& other_end(const Session& s,
                                          const std::string& from) const;

  Scheduler scheduler_;
  std::map<std::string, std::unique_ptr<Router>, std::less<>> routers_;
  std::map<std::string, std::unique_ptr<RouteCollector>, std::less<>>
      collectors_;
  std::vector<Session> sessions_;
  std::uint32_t next_node_index_ = 1;
  std::uint64_t messages_delivered_ = 0;
};

}  // namespace bgpcc::sim
