#include "sim/collector.h"

#include <fstream>

#include "bgp/codec.h"
#include "mrt/mrt.h"
#include "netbase/error.h"

namespace bgpcc::sim {

void RouteCollector::write_mrt(const std::string& path,
                               bool extended_time) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw ConfigError("cannot open MRT output file: " + path);
  mrt::Writer writer(out);
  for (const RecordedMessage& rec : messages_) {
    mrt::Bgp4mpMessage message;
    message.peer_asn = rec.peer_asn;
    message.local_asn = asn_;
    message.peer_ip = rec.peer_address;
    message.local_ip = address_;
    message.bgp_message = encode_update(rec.update);
    writer.write_message(rec.time, message, extended_time);
  }
}

}  // namespace bgpcc::sim
