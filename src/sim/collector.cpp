#include "sim/collector.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "bgp/codec.h"
#include "mrt/mrt.h"
#include "mrt/source.h"
#include "netbase/error.h"

namespace bgpcc::sim {

void RouteCollector::write_range(std::ostream& out, std::size_t begin,
                                 std::size_t end, bool extended_time) const {
  mrt::Writer writer(out);
  for (std::size_t i = begin; i < end; ++i) {
    const RecordedMessage& rec = messages_[i];
    mrt::Bgp4mpMessage message;
    message.peer_asn = rec.peer_asn;
    message.local_asn = asn_;
    message.peer_ip = rec.peer_address;
    message.local_ip = address_;
    message.bgp_message = encode_update(rec.update);
    writer.write_message(rec.time, message, extended_time);
  }
}

// Compressed output goes through an in-memory staging buffer: collector
// fixture logs are small (simulation-scale), and one-shot compression
// keeps the Writer path free of a streaming-compressor dependency.
void RouteCollector::write_slice(std::ostream& out, std::size_t begin,
                                 std::size_t end, bool extended_time,
                                 mrt::Compression compression) const {
  if (compression == mrt::Compression::kNone) {
    write_range(out, begin, end, extended_time);
    return;
  }
  std::ostringstream staging;
  write_range(staging, begin, end, extended_time);
  std::string payload = mrt::compress(staging.str(), compression);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out) throw ConfigError("MRT output write failed (stream error)");
}

void RouteCollector::write_mrt(std::ostream& out, bool extended_time,
                               mrt::Compression compression) const {
  write_slice(out, 0, messages_.size(), extended_time, compression);
}

void RouteCollector::write_mrt(const std::string& path, bool extended_time,
                               mrt::Compression compression) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw ConfigError("cannot open MRT output file: " + path);
  write_mrt(out, extended_time, compression);
}

std::vector<std::string> RouteCollector::write_mrt_rotated(
    const std::string& path_prefix, std::size_t files, bool extended_time,
    mrt::Compression compression) const {
  if (files == 0) {
    throw ConfigError("write_mrt_rotated: need at least one output file");
  }
  std::vector<std::string> paths;
  paths.reserve(files);
  std::size_t total = messages_.size();
  for (std::size_t f = 0; f < files; ++f) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".%04zu", f);
    std::string path =
        path_prefix + suffix + mrt::compression_suffix(compression);
    // Contiguous slices in record order: concatenating the rotation
    // reproduces the original log byte-for-byte.
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw ConfigError("cannot open MRT output file: " + path);
    write_slice(out, f * total / files, (f + 1) * total / files,
                extended_time, compression);
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace bgpcc::sim
