#include "sim/scheduler.h"

#include <utility>

namespace bgpcc::sim {

void Scheduler::at(Timestamp when, std::function<void()> fn) {
  if (when < now_) when = now_;
  queue_.push(Entry{when, next_seq_++, std::move(fn)});
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the closure must be moved out, so copy
  // the wrapper (cheap for std::function) and pop before invoking: the
  // event may schedule more events.
  Entry entry = queue_.top();
  queue_.pop();
  now_ = entry.when;
  entry.fn();
  return true;
}

std::size_t Scheduler::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Scheduler::run_until(Timestamp until) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    step();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

}  // namespace bgpcc::sim
