#include "netbase/timeutil.h"

#include <cstdio>

namespace bgpcc {

std::string Timestamp::time_of_day_string() const {
  std::int64_t us = micros_of_day();
  std::int64_t total_seconds = us / 1000000;
  int hh = static_cast<int>(total_seconds / 3600);
  int mm = static_cast<int>((total_seconds / 60) % 60);
  int ss = static_cast<int>(total_seconds % 60);
  int frac = static_cast<int>(us % 1000000);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d.%06d", hh, mm, ss, frac);
  return buf;
}

}  // namespace bgpcc
