#include "netbase/prefix.h"

#include <charconv>

#include "netbase/error.h"

namespace bgpcc {

namespace {

// Validates before masking: masked() has a precondition on the range.
const IpAddress& check_length(const IpAddress& address, int length) {
  if (length < 0 || length > address.bit_width()) {
    throw ParseError("prefix length " + std::to_string(length) +
                     " out of range for " + address.to_string());
  }
  return address;
}

}  // namespace

Prefix::Prefix(const IpAddress& address, int length)
    : address_(check_length(address, length).masked(length)),
      length_(length) {}

Prefix Prefix::from_string(std::string_view text) {
  std::size_t slash = text.rfind('/');
  if (slash == std::string_view::npos) {
    throw ParseError("prefix missing '/': " + std::string(text));
  }
  IpAddress addr = IpAddress::from_string(text.substr(0, slash));
  std::string_view len_text = text.substr(slash + 1);
  int length = -1;
  auto [ptr, ec] = std::from_chars(len_text.data(),
                                   len_text.data() + len_text.size(), length);
  if (ec != std::errc() || ptr != len_text.data() + len_text.size()) {
    throw ParseError("malformed prefix length: " + std::string(text));
  }
  return Prefix(addr, length);
}

bool Prefix::contains(const IpAddress& addr) const {
  if (addr.family() != address_.family()) return false;
  return addr.masked(length_) == address_;
}

bool Prefix::contains(const Prefix& other) const {
  if (other.family() != family() || other.length() < length_) return false;
  return other.address().masked(length_) == address_;
}

std::string Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

}  // namespace bgpcc
