// CIDR prefix value type: the unit of BGP reachability (NLRI).
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "netbase/ip.h"

namespace bgpcc {

/// An IP prefix in CIDR notation (address + mask length).
///
/// Prefixes are stored canonically: host bits beyond the mask length are
/// always zero, so equality and ordering behave as expected. The ordering is
/// (family, address bytes, length), giving IPv4 < IPv6 and more-general
/// before more-specific at equal addresses.
class Prefix {
 public:
  /// Default: 0.0.0.0/0.
  Prefix() = default;

  /// Canonicalizes by masking host bits. Throws ParseError if `length`
  /// exceeds the address width.
  Prefix(const IpAddress& address, int length);

  /// Parses "10.0.0.0/8" or "2001:db8::/32". Throws ParseError.
  [[nodiscard]] static Prefix from_string(std::string_view text);

  [[nodiscard]] const IpAddress& address() const { return address_; }
  [[nodiscard]] int length() const { return length_; }
  [[nodiscard]] AddressFamily family() const { return address_.family(); }
  [[nodiscard]] bool is_v4() const { return address_.is_v4(); }

  /// True if `addr` falls inside this prefix (same family, leading
  /// `length()` bits equal).
  [[nodiscard]] bool contains(const IpAddress& addr) const;

  /// True if `other` is equal to or more specific than this prefix.
  [[nodiscard]] bool contains(const Prefix& other) const;

  /// "10.0.0.0/8" style rendering.
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const Prefix& a, const Prefix& b) = default;
  friend bool operator==(const Prefix& a, const Prefix& b) = default;

 private:
  IpAddress address_;
  int length_ = 0;
};

struct PrefixHash {
  std::size_t operator()(const Prefix& p) const noexcept {
    return IpAddressHash{}(p.address()) * 131 +
           static_cast<std::size_t>(p.length());
  }
};

}  // namespace bgpcc
