#include "netbase/ip.h"

#include <charconv>
#include <cstring>

#include "netbase/error.h"

namespace bgpcc {
namespace {

// FNV-1a over a byte range; sufficient for hash-table keying.
std::size_t fnv1a(std::span<const std::uint8_t> data, std::size_t seed) {
  std::size_t h = seed ^ 14695981039346656037ull;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

// Parses a decimal integer in [0, max]; returns false on malformed input.
bool parse_int(std::string_view text, unsigned max, unsigned& out) {
  if (text.empty() || text.size() > 10) return false;
  unsigned value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return false;
  if (value > max) return false;
  out = value;
  return true;
}

IpAddress parse_v4(std::string_view text) {
  std::array<std::uint8_t, 4> octets{};
  std::size_t start = 0;
  for (int i = 0; i < 4; ++i) {
    std::size_t end = (i == 3) ? text.size() : text.find('.', start);
    if (end == std::string_view::npos) {
      throw ParseError("malformed IPv4 address: " + std::string(text));
    }
    unsigned value = 0;
    if (!parse_int(text.substr(start, end - start), 255, value)) {
      throw ParseError("malformed IPv4 octet in: " + std::string(text));
    }
    octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(value);
    start = end + 1;
  }
  return IpAddress::v4(octets[0], octets[1], octets[2], octets[3]);
}

// Parses one hex group of an IPv6 address (1-4 hex digits).
bool parse_hex_group(std::string_view text, std::uint16_t& out) {
  if (text.empty() || text.size() > 4) return false;
  unsigned value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value, /*base=*/16);
  if (ec != std::errc() || ptr != text.data() + text.size()) return false;
  out = static_cast<std::uint16_t>(value);
  return true;
}

IpAddress parse_v6(std::string_view text) {
  // Split on "::" (at most one occurrence allowed).
  std::size_t gap = text.find("::");
  std::string_view head = (gap == std::string_view::npos)
                              ? text
                              : text.substr(0, gap);
  std::string_view tail = (gap == std::string_view::npos)
                              ? std::string_view{}
                              : text.substr(gap + 2);
  if (tail.find("::") != std::string_view::npos) {
    throw ParseError("multiple '::' in IPv6 address: " + std::string(text));
  }

  auto split_groups = [&](std::string_view part,
                          std::array<std::uint16_t, 8>& groups,
                          std::size_t& count) {
    if (part.empty()) return;
    std::size_t start = 0;
    while (true) {
      std::size_t end = part.find(':', start);
      std::string_view group = (end == std::string_view::npos)
                                   ? part.substr(start)
                                   : part.substr(start, end - start);
      std::uint16_t value = 0;
      if (count >= 8 || !parse_hex_group(group, value)) {
        throw ParseError("malformed IPv6 address: " + std::string(text));
      }
      groups[count++] = value;
      if (end == std::string_view::npos) break;
      start = end + 1;
    }
  };

  std::array<std::uint16_t, 8> head_groups{};
  std::array<std::uint16_t, 8> tail_groups{};
  std::size_t head_count = 0;
  std::size_t tail_count = 0;
  split_groups(head, head_groups, head_count);
  split_groups(tail, tail_groups, tail_count);

  if (gap == std::string_view::npos) {
    if (head_count != 8) {
      throw ParseError("IPv6 address needs 8 groups: " + std::string(text));
    }
  } else if (head_count + tail_count > 7) {
    // "::" must compress at least one zero group.
    throw ParseError("'::' compresses nothing in: " + std::string(text));
  }

  std::array<std::uint8_t, 16> bytes{};
  for (std::size_t i = 0; i < head_count; ++i) {
    bytes[i * 2] = static_cast<std::uint8_t>(head_groups[i] >> 8);
    bytes[i * 2 + 1] = static_cast<std::uint8_t>(head_groups[i] & 0xff);
  }
  for (std::size_t i = 0; i < tail_count; ++i) {
    std::size_t pos = 8 - tail_count + i;
    bytes[pos * 2] = static_cast<std::uint8_t>(tail_groups[i] >> 8);
    bytes[pos * 2 + 1] = static_cast<std::uint8_t>(tail_groups[i] & 0xff);
  }
  return IpAddress::v6(bytes);
}

}  // namespace

IpAddress IpAddress::v4(std::uint32_t host_order) {
  IpAddress addr;
  addr.family_ = AddressFamily::kIpv4;
  addr.storage_[0] = static_cast<std::uint8_t>(host_order >> 24);
  addr.storage_[1] = static_cast<std::uint8_t>((host_order >> 16) & 0xff);
  addr.storage_[2] = static_cast<std::uint8_t>((host_order >> 8) & 0xff);
  addr.storage_[3] = static_cast<std::uint8_t>(host_order & 0xff);
  return addr;
}

IpAddress IpAddress::v4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d) {
  return v4((static_cast<std::uint32_t>(a) << 24) |
            (static_cast<std::uint32_t>(b) << 16) |
            (static_cast<std::uint32_t>(c) << 8) | d);
}

IpAddress IpAddress::v6(std::span<const std::uint8_t> bytes16) {
  if (bytes16.size() != 16) {
    throw ParseError("IPv6 address requires 16 bytes");
  }
  IpAddress addr;
  addr.family_ = AddressFamily::kIpv6;
  std::memcpy(addr.storage_.data(), bytes16.data(), 16);
  return addr;
}

IpAddress IpAddress::from_string(std::string_view text) {
  if (text.find(':') != std::string_view::npos) return parse_v6(text);
  return parse_v4(text);
}

std::span<const std::uint8_t> IpAddress::bytes() const {
  return {storage_.data(), is_v4() ? std::size_t{4} : std::size_t{16}};
}

std::uint32_t IpAddress::v4_value() const {
  return (static_cast<std::uint32_t>(storage_[0]) << 24) |
         (static_cast<std::uint32_t>(storage_[1]) << 16) |
         (static_cast<std::uint32_t>(storage_[2]) << 8) |
         static_cast<std::uint32_t>(storage_[3]);
}

bool IpAddress::bit(int i) const {
  std::size_t byte = static_cast<std::size_t>(i) / 8;
  int shift = 7 - (i % 8);
  return ((storage_[byte] >> shift) & 1) != 0;
}

IpAddress IpAddress::masked(int keep_bits) const {
  IpAddress out = *this;
  int width = bit_width();
  for (int i = keep_bits; i < width; ++i) {
    std::size_t byte = static_cast<std::size_t>(i) / 8;
    int shift = 7 - (i % 8);
    out.storage_[byte] &= static_cast<std::uint8_t>(~(1u << shift));
  }
  return out;
}

std::string IpAddress::to_string() const {
  if (is_v4()) {
    std::string out;
    out.reserve(15);
    for (int i = 0; i < 4; ++i) {
      if (i > 0) out.push_back('.');
      out += std::to_string(storage_[static_cast<std::size_t>(i)]);
    }
    return out;
  }
  // IPv6: find the longest run of zero groups (length >= 2) to compress.
  std::array<std::uint16_t, 8> groups{};
  for (std::size_t i = 0; i < 8; ++i) {
    groups[i] = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(storage_[i * 2]) << 8) |
        storage_[i * 2 + 1]);
  }
  int best_start = -1;
  int best_len = 1;  // require at least 2 zero groups to use "::"
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  static constexpr char kDigits[] = "0123456789abcdef";
  auto append_group = [&](std::string& out, std::uint16_t g) {
    bool started = false;
    for (int shift = 12; shift >= 0; shift -= 4) {
      unsigned nibble = (g >> shift) & 0xf;
      if (nibble != 0 || started || shift == 0) {
        out.push_back(kDigits[nibble]);
        started = true;
      }
    }
  };
  std::string out;
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out.push_back(':');
    append_group(out, groups[static_cast<std::size_t>(i)]);
    ++i;
  }
  if (out.empty()) out = "::";
  return out;
}

std::size_t IpAddressHash::operator()(const IpAddress& a) const noexcept {
  return fnv1a(a.bytes(), static_cast<std::size_t>(a.family()));
}

}  // namespace bgpcc
