// Error types shared across bgpcc libraries.
#pragma once

#include <stdexcept>
#include <string>

namespace bgpcc {

/// Thrown when decoding malformed wire-format input (BGP or MRT bytes).
/// Decoders never read out of bounds; they throw this instead.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a value cannot be parsed from its textual representation
/// (e.g. "10.0.0.0/33" as a prefix).
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on API misuse that violates a documented precondition
/// (e.g. adding a session between routers that share no link).
class ConfigError : public std::logic_error {
 public:
  explicit ConfigError(const std::string& what) : std::logic_error(what) {}
};

}  // namespace bgpcc
