// Autonomous System Number strong type (RFC 6793: 32-bit ASNs).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace bgpcc {

/// A 4-octet AS number. Wraps uint32_t so ASNs cannot be confused with
/// other integral quantities (router ids, community values, ...).
class Asn {
 public:
  constexpr Asn() = default;
  constexpr explicit Asn(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  /// True if the ASN fits in the original 2-octet space.
  [[nodiscard]] constexpr bool is_2byte() const { return value_ <= 0xffff; }

  /// RFC 6996 private-use ranges (64512-65534 and 4200000000-4294967294).
  [[nodiscard]] constexpr bool is_private() const {
    return (value_ >= 64512 && value_ <= 65534) ||
           (value_ >= 4200000000u && value_ <= 4294967294u);
  }

  /// Reserved values that must not appear in a clean AS path: 0 (RFC 7607),
  /// 23456 (AS_TRANS, RFC 6793), 65535 and 4294967295 (RFC 7300), plus the
  /// documentation ranges 64496-64511 and 65536-65551 (RFC 5398).
  [[nodiscard]] constexpr bool is_reserved() const {
    return value_ == 0 || value_ == 23456 || value_ == 65535 ||
           value_ == 4294967295u || (value_ >= 64496 && value_ <= 64511) ||
           (value_ >= 65536 && value_ <= 65551);
  }

  /// "AS3356" style rendering.
  [[nodiscard]] std::string to_string() const {
    return "AS" + std::to_string(value_);
  }

  friend constexpr auto operator<=>(Asn a, Asn b) = default;

 private:
  std::uint32_t value_ = 0;
};

struct AsnHash {
  std::size_t operator()(Asn asn) const noexcept {
    return std::hash<std::uint32_t>{}(asn.value());
  }
};

}  // namespace bgpcc
