// IP address value type covering IPv4 and IPv6, used throughout the BGP
// model (NLRI, next hops, peer addresses) and the prefix trie.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace bgpcc {

enum class AddressFamily : std::uint8_t { kIpv4 = 1, kIpv6 = 2 };

/// AFI values as used by MRT and MP-BGP (RFC 4760).
[[nodiscard]] constexpr std::uint16_t afi_of(AddressFamily family) {
  return family == AddressFamily::kIpv4 ? 1 : 2;
}

/// An IPv4 or IPv6 address.
///
/// IPv4 addresses occupy the first 4 bytes of the internal 16-byte storage;
/// comparisons order IPv4 before IPv6 and then by byte value, which gives a
/// deterministic total order for tie-breaking in the BGP decision process.
class IpAddress {
 public:
  /// Default-constructs the IPv4 unspecified address 0.0.0.0.
  constexpr IpAddress() = default;

  /// Builds an IPv4 address from a host-order 32-bit value,
  /// e.g. 0x0a000001 -> 10.0.0.1.
  [[nodiscard]] static IpAddress v4(std::uint32_t host_order);
  /// Builds an IPv4 address from 4 octets in textual order.
  [[nodiscard]] static IpAddress v4(std::uint8_t a, std::uint8_t b,
                                    std::uint8_t c, std::uint8_t d);
  /// Builds an IPv6 address from 16 network-order bytes.
  [[nodiscard]] static IpAddress v6(std::span<const std::uint8_t> bytes16);

  /// Parses dotted-quad IPv4 or RFC 4291 IPv6 text (including "::"
  /// compression). Throws ParseError on malformed input.
  [[nodiscard]] static IpAddress from_string(std::string_view text);

  [[nodiscard]] AddressFamily family() const { return family_; }
  [[nodiscard]] bool is_v4() const { return family_ == AddressFamily::kIpv4; }
  [[nodiscard]] bool is_v6() const { return family_ == AddressFamily::kIpv6; }

  /// Address width in bits: 32 or 128.
  [[nodiscard]] int bit_width() const { return is_v4() ? 32 : 128; }

  /// Network-order bytes; 4 for IPv4, 16 for IPv6.
  [[nodiscard]] std::span<const std::uint8_t> bytes() const;

  /// IPv4 value in host order. Precondition: is_v4().
  [[nodiscard]] std::uint32_t v4_value() const;

  /// Returns bit `i` (0 = most significant bit of the first byte).
  /// Precondition: i < bit_width().
  [[nodiscard]] bool bit(int i) const;

  /// Returns a copy with all bits at positions >= keep_bits cleared.
  /// Used to canonicalize prefixes. Precondition: 0 <= keep_bits <= width.
  [[nodiscard]] IpAddress masked(int keep_bits) const;

  /// Canonical text form ("10.0.0.1", "2001:db8::1").
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const IpAddress& a, const IpAddress& b) = default;
  friend bool operator==(const IpAddress& a, const IpAddress& b) = default;

 private:
  // Ordered members so that default <=> compares family first (v4 < v6),
  // then lexicographic byte order.
  AddressFamily family_ = AddressFamily::kIpv4;
  std::array<std::uint8_t, 16> storage_{};
};

/// Hash functor so IpAddress can key unordered containers.
struct IpAddressHash {
  std::size_t operator()(const IpAddress& a) const noexcept;
};

}  // namespace bgpcc
