#include "netbase/bytes.h"

namespace bgpcc {

void ByteReader::require(std::size_t n) const {
  if (remaining() < n) {
    throw DecodeError("buffer underrun: need " + std::to_string(n) +
                      " bytes, have " + std::to_string(remaining()));
  }
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  require(2);
  std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  require(4);
  std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                    (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                    (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                    static_cast<std::uint32_t>(data_[pos_ + 3]);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  std::uint64_t hi = u32();
  std::uint64_t lo = u32();
  return (hi << 32) | lo;
}

std::span<const std::uint8_t> ByteReader::bytes(std::size_t n) {
  require(n);
  auto view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

ByteReader ByteReader::sub(std::size_t n) { return ByteReader(bytes(n)); }

void ByteReader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void ByteWriter::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  buf_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  buf_.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v & 0xffffffff));
}

void ByteWriter::bytes(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::size_t ByteWriter::placeholder_u16() {
  std::size_t offset = buf_.size();
  u16(0);
  return offset;
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  buf_.at(offset) = static_cast<std::uint8_t>(v >> 8);
  buf_.at(offset + 1) = static_cast<std::uint8_t>(v & 0xff);
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

}  // namespace bgpcc
