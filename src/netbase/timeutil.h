// Simulation time: microsecond-resolution timestamps with calendar helpers
// for the beacon phase analysis (phases are defined on UTC wall-clock).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace bgpcc {

/// A duration in microseconds. Explicit factory functions avoid unit bugs.
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration micros(std::int64_t n) {
    return Duration(n);
  }
  [[nodiscard]] static constexpr Duration millis(std::int64_t n) {
    return Duration(n * 1000);
  }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t n) {
    return Duration(n * 1000000);
  }
  [[nodiscard]] static constexpr Duration minutes(std::int64_t n) {
    return seconds(n * 60);
  }
  [[nodiscard]] static constexpr Duration hours(std::int64_t n) {
    return seconds(n * 3600);
  }
  [[nodiscard]] static constexpr Duration days(std::int64_t n) {
    return hours(n * 24);
  }

  [[nodiscard]] constexpr std::int64_t count_micros() const { return us_; }
  [[nodiscard]] constexpr double count_seconds() const {
    return static_cast<double>(us_) / 1e6;
  }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.us_ + b.us_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.us_ - b.us_);
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration(a.us_ * k);
  }
  friend constexpr auto operator<=>(Duration a, Duration b) = default;

 private:
  constexpr explicit Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// A point in time: microseconds since the UNIX epoch (UTC).
///
/// The simulator advances Timestamps; the analysis code maps them onto
/// wall-clock phases (seconds-of-day). No leap-second handling — the paper's
/// beacon schedule is defined in plain UTC seconds.
class Timestamp {
 public:
  constexpr Timestamp() = default;

  [[nodiscard]] static constexpr Timestamp from_unix_micros(std::int64_t us) {
    return Timestamp(us);
  }
  [[nodiscard]] static constexpr Timestamp from_unix_seconds(std::int64_t s) {
    return Timestamp(s * 1000000);
  }

  [[nodiscard]] constexpr std::int64_t unix_micros() const { return us_; }
  [[nodiscard]] constexpr std::int64_t unix_seconds() const {
    return us_ / 1000000;
  }

  /// Microseconds elapsed since the most recent UTC midnight.
  [[nodiscard]] constexpr std::int64_t micros_of_day() const {
    constexpr std::int64_t kDay = 86400ll * 1000000;
    std::int64_t m = us_ % kDay;
    return m < 0 ? m + kDay : m;
  }

  /// "HH:MM:SS.ffffff" rendering of the time-of-day component.
  [[nodiscard]] std::string time_of_day_string() const;

  friend constexpr Timestamp operator+(Timestamp t, Duration d) {
    return Timestamp(t.us_ + d.count_micros());
  }
  friend constexpr Duration operator-(Timestamp a, Timestamp b) {
    return Duration::micros(a.us_ - b.us_);
  }
  friend constexpr auto operator<=>(Timestamp a, Timestamp b) = default;

 private:
  constexpr explicit Timestamp(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace bgpcc
