// Bounds-checked big-endian byte readers/writers used by the BGP and MRT
// wire codecs. All multi-byte integers on the wire are network byte order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netbase/error.h"

namespace bgpcc {

/// Sequential reader over an immutable byte buffer.
///
/// Every read checks the remaining length and throws DecodeError on
/// underrun, so callers can parse untrusted input without manual bounds
/// arithmetic. The reader does not own the buffer; the caller must keep it
/// alive for the reader's lifetime.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }
  /// Absolute offset of the next byte to be read.
  [[nodiscard]] std::size_t position() const { return pos_; }

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();

  /// Consumes `n` bytes and returns a view into the underlying buffer.
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n);

  /// Returns a sub-reader over the next `n` bytes and consumes them.
  /// Useful for length-prefixed substructures (e.g. the path attribute
  /// block of a BGP UPDATE).
  [[nodiscard]] ByteReader sub(std::size_t n);

  /// Skips `n` bytes (throws if fewer remain).
  void skip(std::size_t n);

 private:
  void require(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Append-only big-endian byte buffer builder.
///
/// Length fields that are only known after the payload is serialized are
/// handled with placeholder()/patch_u16().
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void bytes(std::span<const std::uint8_t> data);

  /// Reserves a 2-byte slot (written as zero) and returns its offset for a
  /// later patch_u16() once the enclosed payload length is known.
  [[nodiscard]] std::size_t placeholder_u16();
  void patch_u16(std::size_t offset, std::uint16_t v);

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Renders bytes as lowercase hex, e.g. {0xde,0xad} -> "dead". Debug aid.
[[nodiscard]] std::string to_hex(std::span<const std::uint8_t> data);

}  // namespace bgpcc
