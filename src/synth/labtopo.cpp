#include "synth/labtopo.h"

namespace bgpcc::synth {

const char* label(LabScenario scenario) {
  switch (scenario) {
    case LabScenario::kExp1NoCommunities:
      return "Exp1:no-communities";
    case LabScenario::kExp2GeoTagging:
      return "Exp2:geo-tagging";
    case LabScenario::kExp3EgressCleaning:
      return "Exp3:egress-cleaning";
    case LabScenario::kExp4IngressCleaning:
      return "Exp4:ingress-cleaning";
  }
  return "?";
}

LabExperiment::LabExperiment(LabConfig config)
    : config_(config), network_(Timestamp::from_unix_seconds(0)) {
  const VendorProfile& vendor = config_.vendor;
  // Creation order fixes router ids: Y2 before Y3 so that Y1's tie-break
  // (lowest router id) selects Y2, as in the paper's Exp1.
  network_.add_router("Z1", Asn(kAsnZ), vendor);
  network_.add_router("Y2", Asn(kAsnY), vendor);
  network_.add_router("Y3", Asn(kAsnY), vendor);
  network_.add_router("Y1", Asn(kAsnY), vendor);
  network_.add_router("X1", Asn(kAsnX), vendor);
  network_.add_collector("C1", Asn(kAsnCollector));

  bool tagging = config_.scenario != LabScenario::kExp1NoCommunities;

  // eBGP edges Z1-Y2 and Z1-Y3, with Y's geo-tagging at ingress.
  {
    sim::SessionOptions options;
    if (tagging) options.b_import = Policy::tag_all(y2_tag());
    network_.add_session("Z1", "Y2", options);
  }
  {
    sim::SessionOptions options;
    if (tagging) options.b_import = Policy::tag_all(y3_tag());
    network_.add_session("Z1", "Y3", options);
  }

  // iBGP full mesh inside Y; border routers use next-hop-self.
  session_y1_y2_ = network_.add_session("Y1", "Y2");
  network_.add_session("Y1", "Y3");
  network_.add_session("Y2", "Y3");

  // eBGP X1-Y1 (X1's ingress policy carries Exp4's cleaning).
  {
    sim::SessionOptions options;
    if (config_.scenario == LabScenario::kExp4IngressCleaning) {
      options.a_import = Policy::clean_all();
    }
    session_y1_x1_ = network_.add_session("X1", "Y1", options);
  }

  // Collector session (X1's egress policy carries Exp3's cleaning).
  {
    sim::SessionOptions options;
    if (config_.scenario == LabScenario::kExp3EgressCleaning) {
      options.b_export = Policy::clean_all();
    }
    session_x1_c1_ = network_.add_session("C1", "X1", options);
  }
}

LabResult LabExperiment::run() {
  LabResult result;
  result.config = config_;

  // Phase 1: converge.
  network_.start();
  network_.scheduler().at(Timestamp::from_unix_seconds(1), [this] {
    network_.router("Z1").originate(prefix_p(), network_.now());
  });
  network_.run();

  // Steady-state community attribute at the collector (last announcement).
  for (const sim::RecordedMessage& rec :
       network_.collector("C1").messages()) {
    if (!rec.update.announced.empty() && rec.update.attrs) {
      result.collector_steady_communities = rec.update.attrs->communities;
    }
  }

  // Verify silence: no pending events and a quiet interval produces no
  // messages (the paper checked only keepalives flow post-convergence).
  std::uint64_t delivered_before = network_.messages_delivered();
  network_.run_until(network_.now() + Duration::seconds(60));
  result.quiet_after_convergence =
      network_.messages_delivered() == delivered_before;

  // Phase 2: capture and flap.
  network_.tap_session(session_y1_x1_, [&result](Timestamp t,
                                                 const std::string& from,
                                                 const std::string& to,
                                                 const UpdateMessage& update) {
    if (from == "Y1") result.y1_to_x1.push_back({t, from, to, update});
  });
  network_.tap_session(session_x1_c1_, [&result](Timestamp t,
                                                 const std::string& from,
                                                 const std::string& to,
                                                 const UpdateMessage& update) {
    if (from == "X1") result.x1_to_c1.push_back({t, from, to, update});
  });

  RouterStats before = network_.total_router_stats();
  Timestamp flap_at = network_.now() + Duration::seconds(10);
  network_.schedule_session_down(session_y1_y2_, flap_at);
  if (config_.restore_link) {
    network_.schedule_session_up(session_y1_y2_,
                                 flap_at + Duration::seconds(30));
  }
  network_.run();

  RouterStats after = network_.total_router_stats();
  result.updates_after_flap = after.updates_sent - before.updates_sent;
  return result;
}

}  // namespace bgpcc::synth
