#include "synth/beacon_internet.h"

#include <random>

namespace bgpcc::synth {
namespace {

// City community values start here; country/continent below.
constexpr std::uint16_t kCityBase = 2000;
constexpr std::uint16_t kCountryBase = 500;
constexpr std::uint16_t kContinentBase = 50;

// Geo plan: ingress k is in city k, country k/2, continent k/4 — several
// cities share a country, several countries a continent, as in real geo
// community numbering plans.
Policy transit_ingress_policy(std::uint16_t asn16, int k) {
  Policy policy;
  PolicyRule rule;
  rule.name = "geo-tag-ingress-" + std::to_string(k);
  rule.actions.add_communities = {
      Community::of(asn16, static_cast<std::uint16_t>(kCityBase + k)),
      Community::of(asn16, static_cast<std::uint16_t>(kCountryBase + k / 2)),
      Community::of(asn16,
                    static_cast<std::uint16_t>(kContinentBase + k / 4)),
  };
  policy.add_rule(std::move(rule));
  return policy;
}

VendorProfile pick_vendor(double roll, const BeaconOptions& options) {
  if (roll < options.junos_fraction) return VendorProfile::junos();
  if (roll < options.junos_fraction + options.bird_fraction) {
    return VendorProfile::bird();
  }
  return VendorProfile::cisco_ios();
}

}  // namespace

const char* label(PeerHygiene hygiene) {
  switch (hygiene) {
    case PeerHygiene::kPropagate:
      return "propagate";
    case PeerHygiene::kCleanEgress:
      return "clean-egress";
    case PeerHygiene::kTagger:
      return "tagger";
    case PeerHygiene::kCleanIngress:
      return "clean-ingress";
  }
  return "?";
}

BeaconInternet::BeaconInternet(BeaconOptions options)
    : options_(options),
      network_(options.day_start + Duration::hours(-1)) {
  std::mt19937_64 rng(options_.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Beacon prefixes: the RIS 84.205.x.0/24 range.
  for (int i = 0; i < options_.beacon_count; ++i) {
    beacons_.emplace_back(
        IpAddress::v4(84, 205, static_cast<std::uint8_t>(64 + i), 0), 24);
  }

  // Core nodes. Creation order fixes router-id tie-breaks: H1 and M1/M2
  // are created before T's borders so multihomed peers prefer H, then M,
  // then T at equal path lengths.
  network_.add_router("O1", Asn(kAsnOrigin), VendorProfile::cisco_ios());
  network_.add_router("U1", Asn(kAsnU1), VendorProfile::cisco_ios());
  network_.add_router("U2", Asn(kAsnU2), VendorProfile::cisco_ios());
  network_.add_router("H1", Asn(kAsnH), VendorProfile::junos());
  network_.add_router("M1", Asn(kAsnM), VendorProfile::cisco_ios());
  network_.add_router("M2", Asn(kAsnM), VendorProfile::cisco_ios());

  const int k_ingress = options_.transit_ingresses;
  for (int k = 0; k < k_ingress; ++k) {
    network_.add_router("T" + std::to_string(k), Asn(kAsnT),
                        pick_vendor(unit(rng), options_));
  }

  // Origin uplinks: O-U1 and O-U2 (fast).
  {
    sim::SessionOptions fast;
    fast.delay = Duration::millis(5);
    network_.add_session("O1", "U1", fast);
    network_.add_session("O1", "U2", fast);
  }
  // H chain: fast, one tag at ingress.
  {
    sim::SessionOptions options_h;
    options_h.delay = Duration::millis(5);
    options_h.b_import = Policy::tag_all(Community::of(
        static_cast<std::uint16_t>(kAsnH), kCityBase));
    network_.add_session("U2", "H1", options_h);
  }
  // M chain: two borders, medium delay, no tagging; iBGP between them.
  {
    sim::SessionOptions options_m;
    options_m.delay = Duration::millis(25);
    network_.add_session("U1", "M1", options_m);
    options_m.delay = Duration::millis(30);
    network_.add_session("U2", "M2", options_m);
    sim::SessionOptions ibgp;
    ibgp.delay = Duration::millis(5);
    network_.add_session("M1", "M2", ibgp);
  }
  // T ingresses: staggered slow withdraws drive the exploration walk.
  for (int k = 0; k < k_ingress; ++k) {
    sim::SessionOptions options_t;
    options_t.delay = Duration::millis(60 + 45 * k);
    options_t.b_import = transit_ingress_policy(
        static_cast<std::uint16_t>(kAsnT), k);
    t_u1_sessions_.push_back(
        network_.add_session("U1", "T" + std::to_string(k), options_t));
  }
  // T full iBGP mesh (fast internal propagation).
  for (int a = 0; a < k_ingress; ++a) {
    for (int b = a + 1; b < k_ingress; ++b) {
      sim::SessionOptions ibgp;
      ibgp.delay = Duration::millis(3 + (a + b) % 5);
      network_.add_session("T" + std::to_string(a), "T" + std::to_string(b),
                           ibgp);
    }
  }

  // Collectors and peers.
  for (int c = 0; c < options_.collector_count; ++c) {
    std::string collector_name = "rrc0" + std::to_string(c);
    network_.add_collector(collector_name, Asn(kAsnCollectorBase +
                                               static_cast<std::uint32_t>(c)));
    for (int i = 0; i < options_.peers_per_collector; ++i) {
      int index = c * options_.peers_per_collector + i;
      PeerInfo peer;
      peer.name = "P" + std::to_string(index);
      peer.asn = Asn(kAsnPeerBase + static_cast<std::uint32_t>(index));
      peer.collector = collector_name;
      peer.transit_ingress = index % k_ingress;

      double hygiene_roll = unit(rng);
      if (hygiene_roll < options_.clean_egress_fraction) {
        peer.hygiene = PeerHygiene::kCleanEgress;
      } else if (hygiene_roll <
                 options_.clean_egress_fraction + options_.tagger_fraction) {
        peer.hygiene = PeerHygiene::kTagger;
      } else if (hygiene_roll < options_.clean_egress_fraction +
                                    options_.tagger_fraction +
                                    options_.clean_ingress_fraction) {
        peer.hygiene = PeerHygiene::kCleanIngress;
      } else {
        peer.hygiene = PeerHygiene::kPropagate;
      }
      peer.has_h = unit(rng) < options_.multihomed_h_fraction;
      peer.has_m = unit(rng) < options_.multihomed_m_fraction;

      VendorProfile vendor = pick_vendor(unit(rng), options_);
      peer.vendor = vendor.name;
      network_.add_router(peer.name, peer.asn, vendor);

      // Ingress policy of the peer on its transit sessions.
      Policy peer_import;
      if (peer.hygiene == PeerHygiene::kTagger) {
        peer_import = Policy::tag_all(Community::of(
            static_cast<std::uint16_t>(peer.asn.value()), 100));
      } else if (peer.hygiene == PeerHygiene::kCleanIngress) {
        peer_import = Policy::clean_all();
      }

      // Peer -> T (always present).
      {
        sim::SessionOptions so;
        so.delay = Duration::millis(
            static_cast<std::int64_t>(5 + 15 * unit(rng)));
        so.b_import = peer_import;  // peer is endpoint b
        network_.add_session("T" + std::to_string(peer.transit_ingress),
                             peer.name, so);
      }
      if (peer.has_h) {
        sim::SessionOptions so;
        so.delay = Duration::millis(
            static_cast<std::int64_t>(5 + 10 * unit(rng)));
        so.b_import = peer_import;
        network_.add_session("H1", peer.name, so);
      }
      if (peer.has_m) {
        sim::SessionOptions so;
        so.delay = Duration::millis(
            static_cast<std::int64_t>(5 + 12 * unit(rng)));
        so.b_import = peer_import;
        network_.add_session("M" + std::to_string(index % 2 + 1), peer.name,
                             so);
      }
      // Peer -> collector.
      {
        sim::SessionOptions so;
        so.delay = Duration::millis(2);
        if (peer.hygiene == PeerHygiene::kCleanEgress) {
          so.a_export = Policy::clean_all();  // peer is endpoint a
        }
        network_.add_session(peer.name, collector_name, so);
      }
      peers_.push_back(std::move(peer));
    }
  }

  network_.start();
  network_.run();  // empty convergence (no routes yet)
}

void BeaconInternet::run_day(const core::BeaconSchedule& schedule) {
  Router& origin = network_.router("O1");
  Timestamp day_start = options_.day_start;

  for (Timestamp t : schedule.announce_times(day_start)) {
    network_.scheduler().at(t, [this, &origin] {
      for (const Prefix& beacon : beacons_) {
        origin.originate(beacon, network_.now());
      }
    });
  }
  for (Timestamp t : schedule.withdraw_times(day_start)) {
    network_.scheduler().at(t, [this, &origin] {
      for (const Prefix& beacon : beacons_) {
        origin.withdraw_origin(beacon, network_.now());
      }
    });
  }

  if (options_.midday_anomaly && !t_u1_sessions_.empty()) {
    // An out-of-phase internal event: one T ingress flaps at 13:37 for two
    // minutes (the <1% "outside both phases" bucket of §6).
    std::uint32_t session = t_u1_sessions_[t_u1_sessions_.size() / 2];
    network_.schedule_session_down(
        session, day_start + Duration::hours(13) + Duration::minutes(37));
    network_.schedule_session_up(
        session, day_start + Duration::hours(13) + Duration::minutes(39));
  }

  network_.run();
}

core::UpdateStream BeaconInternet::stream() const {
  core::UpdateStream merged;
  for (const std::string& name : collector_names()) {
    merged.merge(collector_stream(name));
  }
  merged.sort_by_time();
  return merged;
}

core::UpdateStream BeaconInternet::collector_stream(
    const std::string& name) const {
  return core::UpdateStream::from_collector(
      const_cast<BeaconInternet*>(this)->network_.collector(name));
}

std::vector<std::string> BeaconInternet::collector_names() const {
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(options_.collector_count));
  for (int c = 0; c < options_.collector_count; ++c) {
    out.push_back("rrc0" + std::to_string(c));
  }
  return out;
}

core::Registry BeaconInternet::make_registry() const {
  core::Registry registry;
  for (std::uint32_t asn : {kAsnOrigin, kAsnU1, kAsnU2, kAsnT, kAsnH, kAsnM}) {
    registry.allocate_asn(Asn(asn));
  }
  for (const PeerInfo& peer : peers_) registry.allocate_asn(peer.asn);
  registry.allocate_prefix(Prefix(IpAddress::v4(84, 205, 0, 0), 16));
  return registry;
}

}  // namespace bgpcc::synth
