// The paper's Figure 1 laboratory topology and experiments Exp1-Exp4 (§3),
// as a reusable harness: four ASes (X, Y, Z and collector C), AS Y with
// three internal routers, both Y2 and Y3 peering with AS Z.
//
//      C1 --- X1 --- Y1 --- Y2 --- Z1
//                      \    |     /
//                       \-- Y3 --/
//
// Each experiment converges the network, verifies silence, then flaps the
// Y1-Y2 session and records every message Y1 sends to X1 and every message
// arriving at the collector.
#pragma once

#include <string>
#include <vector>

#include "bgp/message.h"
#include "core/stream.h"
#include "router/vendor.h"
#include "sim/network.h"

namespace bgpcc::synth {

/// Which §3 experiment configuration to build.
enum class LabScenario {
  kExp1NoCommunities,   // default behavior, no communities anywhere
  kExp2GeoTagging,      // Y2 tags Y:300, Y3 tags Y:400 on ingress from Z
  kExp3EgressCleaning,  // Exp2 + X1 removes all communities toward C1
  kExp4IngressCleaning, // Exp2 + X1 removes all communities from Y1
};

[[nodiscard]] const char* label(LabScenario scenario);

struct LabConfig {
  LabScenario scenario = LabScenario::kExp1NoCommunities;
  /// Routing software under test; applied to every router (as in the
  /// paper, which ran each experiment per vendor image).
  VendorProfile vendor = VendorProfile::cisco_ios();
  /// Also restore the Y1-Y2 session after the failure (observes the
  /// flap-back transition too). The paper's single "disable" corresponds
  /// to false.
  bool restore_link = false;
};

/// One captured message with its capture point.
struct CapturedMessage {
  Timestamp time;
  std::string from;
  std::string to;
  UpdateMessage update;
};

struct LabResult {
  LabConfig config;
  /// Messages Y1 -> X1 after the flap (the paper's X1/Y1 capture).
  std::vector<CapturedMessage> y1_to_x1;
  /// Messages X1 -> C1 after the flap (what the collector sees).
  std::vector<CapturedMessage> x1_to_c1;
  /// Total updates sent network-wide after the flap.
  std::uint64_t updates_after_flap = 0;
  /// Events processed during convergence (sanity: the network was quiet
  /// before the flap if post-convergence traffic was zero).
  bool quiet_after_convergence = false;
  /// Community attribute seen at the collector at steady state before the
  /// flap (Exp2: Y:300).
  CommunitySet collector_steady_communities;
};

/// Builds, converges and runs one lab experiment.
class LabExperiment {
 public:
  /// ASNs used by the fixed topology.
  static constexpr std::uint32_t kAsnX = 100;
  static constexpr std::uint32_t kAsnY = 200;
  static constexpr std::uint32_t kAsnZ = 300;
  static constexpr std::uint32_t kAsnCollector = 65010;
  /// The experiment prefix p.
  [[nodiscard]] static Prefix prefix_p() {
    return Prefix::from_string("203.0.113.0/24");
  }
  /// Y's ingress geo-tags (Exp2+).
  [[nodiscard]] static Community y2_tag() { return Community::of(kAsnY, 300); }
  [[nodiscard]] static Community y3_tag() { return Community::of(kAsnY, 400); }

  explicit LabExperiment(LabConfig config);

  /// Runs the experiment to completion and returns the capture results.
  [[nodiscard]] LabResult run();

  /// Access to the underlying network (after run(), for RIB inspection).
  [[nodiscard]] sim::Network& network() { return network_; }

 private:
  LabConfig config_;
  sim::Network network_;
  std::uint32_t session_y1_y2_ = 0;
  std::uint32_t session_y1_x1_ = 0;
  std::uint32_t session_x1_c1_ = 0;
};

}  // namespace bgpcc::synth
