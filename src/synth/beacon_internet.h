// A synthetic beacon-measurement internet (the d_beacon substitute).
//
// Topology (ASNs follow the paper's running example):
//
//   O (AS12654, beacon origin)
//   ├── U1 (AS174)  ── T1..TK (AS3356, one border router per ingress city;
//   │                   full iBGP mesh; each tags city/country/continent
//   │                   communities at eBGP ingress)
//   └── U2 (AS50304) ── H1 (AS6939, tags one community)
//                        M1/M2 (AS2914, second transit, no tagging)
//
//   Peer ASes (AS20000+i) buy from T (and subsets of {H, M}), and feed one
//   collector each. Peers differ in community hygiene (propagate / clean
//   egress / tag own / clean ingress) and vendor profile.
//
// Beacons are announced/withdrawn on the RIPE RIS schedule. During global
// withdrawals, staggered propagation delays make T's border routers walk
// through each other's ingress routes — community exploration — which the
// peers transitively expose to the collectors exactly as §6 observes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/beacon.h"
#include "core/registry.h"
#include "core/stream.h"
#include "sim/network.h"

namespace bgpcc::synth {

enum class PeerHygiene {
  kPropagate,     // neither adds nor filters (the paper's AS20205)
  kCleanEgress,   // strips all communities toward the collector (AS20811)
  kTagger,        // adds its own ingress communities
  kCleanIngress,  // strips communities at ingress from upstreams
};

[[nodiscard]] const char* label(PeerHygiene hygiene);

struct BeaconOptions {
  int transit_ingresses = 6;   // K: T's geo-tagged border routers
  int peers_per_collector = 18;
  int collector_count = 3;
  int beacon_count = 5;
  /// Fractions of the peer population per hygiene class (remainder
  /// propagates).
  double clean_egress_fraction = 0.25;
  double tagger_fraction = 0.15;
  double clean_ingress_fraction = 0.05;
  /// Fraction of peers additionally connected to H and/or M.
  double multihomed_h_fraction = 0.6;
  double multihomed_m_fraction = 0.4;
  /// Vendor mix among peer routers (cisco remainder).
  double junos_fraction = 0.25;
  double bird_fraction = 0.25;
  /// Inject a mid-day (out-of-phase) T-U1 session flap at 13:37 UTC.
  bool midday_anomaly = true;
  std::uint64_t seed = 7;
  /// UTC midnight of the simulated day (default: March 15, 2020).
  Timestamp day_start = Timestamp::from_unix_seconds(1584230400);
};

struct PeerInfo {
  std::string name;
  Asn asn;
  PeerHygiene hygiene = PeerHygiene::kPropagate;
  std::string vendor;
  std::string collector;
  int transit_ingress = 0;  // which Tk the peer buys from
  bool has_h = false;
  bool has_m = false;
};

/// Builds the topology, runs one simulated day, and exposes the collector
/// streams plus ground truth for validating the analysis pipeline.
class BeaconInternet {
 public:
  static constexpr std::uint32_t kAsnOrigin = 12654;
  static constexpr std::uint32_t kAsnU1 = 174;
  static constexpr std::uint32_t kAsnU2 = 50304;
  static constexpr std::uint32_t kAsnT = 3356;
  static constexpr std::uint32_t kAsnH = 6939;
  static constexpr std::uint32_t kAsnM = 2914;
  static constexpr std::uint32_t kAsnPeerBase = 20000;
  static constexpr std::uint32_t kAsnCollectorBase = 65500;

  explicit BeaconInternet(BeaconOptions options);

  /// Runs one day on the given schedule (events beyond day end drain).
  void run_day(const core::BeaconSchedule& schedule = {});

  /// Merged, time-sorted stream of every collector.
  [[nodiscard]] core::UpdateStream stream() const;
  /// Stream of a single collector.
  [[nodiscard]] core::UpdateStream collector_stream(
      const std::string& name) const;

  [[nodiscard]] const std::vector<Prefix>& beacons() const { return beacons_; }
  [[nodiscard]] const std::vector<PeerInfo>& peers() const { return peers_; }
  [[nodiscard]] std::vector<std::string> collector_names() const;
  [[nodiscard]] sim::Network& network() { return network_; }
  [[nodiscard]] const BeaconOptions& options() const { return options_; }

  /// Registry covering everything this internet announces (for cleaning).
  [[nodiscard]] core::Registry make_registry() const;

 private:
  BeaconOptions options_;
  sim::Network network_;
  std::vector<Prefix> beacons_;
  std::vector<PeerInfo> peers_;
  std::vector<std::uint32_t> t_u1_sessions_;  // for the mid-day anomaly
};

}  // namespace bgpcc::synth
