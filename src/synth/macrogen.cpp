#include "synth/macrogen.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <random>

namespace bgpcc::synth {
namespace {

// One collector session with its behavioral attributes.
struct SessionInfo {
  core::SessionKey key;
  bool cleaning = false;
  bool dup_vendor = true;
  bool second_granularity = false;
  bool route_server = false;
};

// Per-prefix static facts.
struct PrefixInfo {
  Prefix prefix;
  Asn origin;
  int transit_base = 0;   // index into the transit pool
  bool origin_tagged = false;
  bool v6 = false;
};

// Per-(session, prefix) evolving route state.
struct RouteState {
  int variant = 0;       // which transit path variant is current
  int tag = 0;           // which ingress tag set is current
  bool prepended = false;
  bool announced = false;
  Timestamp last_emit;
};

struct Transit {
  Asn asn;
  bool tagger = true;
  int city_count = 40;
};

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

}  // namespace

MacroParams MacroParams::march2020(double volume_scale,
                                   double population_scale) {
  MacroParams p;
  p.year = 2020;
  p.quarter = 0;
  p.prefixes_v4 = std::max(64, static_cast<int>(1071150 * population_scale));
  p.prefixes_v6 = std::max(8, static_cast<int>(99141 * population_scale));
  p.origin_ases = std::max(32, static_cast<int>(68911 * population_scale));
  p.announcement_target =
      static_cast<std::uint64_t>(1008e6 * volume_scale);
  return p;
}

MacroParams MacroParams::for_sample(int year, int quarter,
                                    double volume_scale,
                                    double population_scale) {
  MacroParams p;
  p.year = year;
  p.quarter = quarter;
  double t = (year - 2010) + quarter / 4.0;  // 0 .. 10.25
  double frac = t / 10.0;

  p.sessions = static_cast<int>(700 + (1504 - 700) * frac);
  p.peers = static_cast<int>(290 + (581 - 290) * frac);
  p.collectors = static_cast<int>(20 + 14 * frac);
  p.prefixes_v4 =
      std::max(64, static_cast<int>((400000 + 671150 * frac) *
                                    population_scale));
  p.prefixes_v6 =
      std::max(8, static_cast<int>((3000 + 96141 * frac) * population_scale));
  p.origin_ases = std::max(
      32, static_cast<int>((35000 + 33911 * frac) * population_scale));

  // Community adoption: ~2.5x growth over the decade.
  p.tagged_route_fraction = 0.50 + 0.35 * frac;
  p.origin_tag_fraction = 0.10 + 0.15 * frac;
  p.clean_session_fraction = 0.13 + 0.05 * frac;

  // Volume: ~150M/day in 2010 to ~1G/day in 2020, with deterministic
  // per-sample variability (the wild is noisy).
  std::mt19937_64 noise_rng(static_cast<std::uint64_t>(year) * 4 +
                            static_cast<std::uint64_t>(quarter));
  std::uniform_real_distribution<double> noise(0.75, 1.35);
  double base = 150e6 + (1008e6 - 150e6) * frac;
  p.announcement_target =
      static_cast<std::uint64_t>(base * noise(noise_rng) * volume_scale);

  // The paper's Figure 2 footnote: an nn artifact spike around mid-2012.
  p.nn_artifact = (year == 2012 && (quarter == 1 || quarter == 2));

  p.seed = static_cast<std::uint64_t>(year) * 100 +
           static_cast<std::uint64_t>(quarter);
  // Sample days: the 15th of Mar/Jun/Sep/Dec (paper's quarterly cadence).
  // Approximate UTC midnight via days-since-epoch arithmetic.
  int month = 3 + quarter * 3;
  std::int64_t days = (year - 1970) * 365 + (year - 1969) / 4 +
                      (month - 1) * 30 + 14;
  p.day_start = Timestamp::from_unix_seconds(days * 86400);
  return p;
}

MacroGen::MacroGen(MacroParams params) : params_(std::move(params)) {}

MacroStats MacroGen::generate_day(
    const std::function<void(const core::UpdateRecord&)>& sink) {
  const MacroParams& p = params_;
  std::mt19937_64 rng(p.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  MacroStats stats;

  // --- Build the session population.
  std::vector<SessionInfo> sessions;
  sessions.reserve(static_cast<std::size_t>(p.sessions));
  for (int s = 0; s < p.sessions; ++s) {
    SessionInfo info;
    int peer_index = s % p.peers;
    Asn peer_asn(20000 + static_cast<std::uint32_t>(peer_index));
    int collector_index = s % p.collectors;
    info.key.collector = (collector_index < 22)
                             ? "rrc" + std::to_string(collector_index)
                             : "route-views" +
                                   std::to_string(collector_index - 22);
    info.key.peer_asn = peer_asn;
    info.key.peer_address =
        IpAddress::v4(192, static_cast<std::uint8_t>(peer_index / 250),
                      static_cast<std::uint8_t>(peer_index % 250 + 1),
                      static_cast<std::uint8_t>(s % 250 + 1));
    // Behavioral attributes are per-peer (stable across its sessions).
    std::mt19937_64 peer_rng(p.seed ^ (0xabcdull + peer_index));
    std::uniform_real_distribution<double> peer_unit(0.0, 1.0);
    info.cleaning = peer_unit(peer_rng) < p.clean_session_fraction;
    info.dup_vendor = peer_unit(peer_rng) < p.dup_vendor_fraction;
    info.second_granularity = peer_unit(peer_rng) < p.second_granularity_fraction;
    info.route_server = peer_unit(peer_rng) < p.route_server_fraction;
    sessions.push_back(std::move(info));
  }

  // --- Transit pool (vocabulary source for geo communities).
  std::vector<Transit> transits;
  transits.reserve(static_cast<std::size_t>(p.transit_count));
  for (int t = 0; t < p.transit_count; ++t) {
    Transit transit;
    transit.asn = Asn(3000 + static_cast<std::uint32_t>(t) * 17);
    transit.tagger = unit(rng) < p.tagged_route_fraction;
    transit.city_count = 25 + static_cast<int>(unit(rng) * 50);
    transits.push_back(transit);
  }

  // --- Prefix universe.
  int total_prefixes = p.prefixes_v4 + p.prefixes_v6;
  std::vector<PrefixInfo> prefixes;
  prefixes.reserve(static_cast<std::size_t>(total_prefixes));
  for (int i = 0; i < total_prefixes; ++i) {
    PrefixInfo info;
    info.v6 = i >= p.prefixes_v4;
    if (!info.v6) {
      std::uint32_t base = 0x0b000000u + static_cast<std::uint32_t>(i) * 256;
      info.prefix = Prefix(IpAddress::v4(base), 24);
    } else {
      int j = i - p.prefixes_v4;
      std::array<std::uint8_t, 16> bytes{};
      bytes[0] = 0x24;
      bytes[1] = static_cast<std::uint8_t>(j >> 16);
      bytes[2] = static_cast<std::uint8_t>(j >> 8);
      bytes[3] = static_cast<std::uint8_t>(j & 0xff);
      info.prefix = Prefix(IpAddress::v6(bytes), 32);
    }
    info.origin = Asn(40000 + static_cast<std::uint32_t>(i % p.origin_ases));
    info.transit_base = i % p.transit_count;
    info.origin_tagged = unit(rng) < p.origin_tag_fraction;
    prefixes.push_back(std::move(info));
  }

  // --- Emission machinery.
  std::map<std::pair<int, int>, RouteState> states;  // (session, prefix)

  auto attrs_for = [&](const SessionInfo& session, const PrefixInfo& prefix,
                       const RouteState& state) {
    PathAttributes attrs;
    // The first-hop transit is fixed per prefix: its geo tags persist
    // across downstream path changes (a path change does not by itself
    // imply a community change — pc vs pn stays mechanism-driven).
    const Transit& transit =
        transits[static_cast<std::size_t>(prefix.transit_base)];
    std::vector<Asn> hops;
    if (!session.route_server) hops.push_back(session.key.peer_asn);
    hops.push_back(transit.asn);
    // Variants differ in the downstream leg: direct, or via one of two
    // second transits.
    if (state.variant % 3 != 0) {
      hops.push_back(
          transits[static_cast<std::size_t>(
                       (prefix.transit_base + 5 +
                        7 * (state.variant % 3)) %
                       p.transit_count)]
              .asn);
    }
    hops.push_back(prefix.origin);
    attrs.as_path = AsPath::sequence(hops);
    if (state.prepended) attrs.as_path.prepend(session.key.peer_asn, 2);
    attrs.next_hop = session.key.peer_address;
    attrs.origin = Origin::kIgp;
    if (!session.cleaning) {
      if (transit.tagger) {
        std::uint16_t asn16 =
            static_cast<std::uint16_t>(transit.asn.value() & 0xffff);
        int city = state.tag % transit.city_count;
        attrs.communities.add(Community::of(
            asn16, static_cast<std::uint16_t>(2000 + city)));
        attrs.communities.add(Community::of(
            asn16, static_cast<std::uint16_t>(500 + city / 4)));
        attrs.communities.add(Community::of(
            asn16, static_cast<std::uint16_t>(50 + city / 12)));
      }
      if (prefix.origin_tagged) {
        attrs.communities.add(Community::of(
            static_cast<std::uint16_t>(prefix.origin.value() & 0xffff),
            static_cast<std::uint16_t>(100 + prefix.transit_base % 7)));
      }
    }
    return attrs;
  };

  auto emit = [&](int session_index, int prefix_index, RouteState& state,
                  Timestamp when, bool announcement) {
    const SessionInfo& session =
        sessions[static_cast<std::size_t>(session_index)];
    const PrefixInfo& prefix =
        prefixes[static_cast<std::size_t>(prefix_index)];
    core::UpdateRecord record;
    // Per-stream chronological order even when event times collide.
    if (when <= state.last_emit) {
      when = state.last_emit + Duration::millis(50);
    }
    state.last_emit = when;
    record.time = session.second_granularity
                      ? Timestamp::from_unix_seconds(when.unix_seconds())
                      : when;
    record.session = session.key;
    record.prefix = prefix.prefix;
    record.announcement = announcement;
    if (announcement) {
      record.attrs = attrs_for(session, prefix, state);
      ++stats.announcements;
      if (!record.attrs.communities.empty()) {
        ++stats.with_communities;
        for (Community c : record.attrs.communities) {
          stats.community_values.insert(c.raw());
        }
      }
      std::uint64_t path_hash = 0xcbf29ce484222325ull;
      for (Asn asn : record.attrs.as_path.flatten()) {
        path_hash = hash_combine(path_hash, asn.value());
        stats.ases_seen.insert(asn.value());
      }
      stats.unique_paths.insert(path_hash);
      if (prefix.v6) {
        stats.prefixes_seen_v6.insert(prefix_index);
      } else {
        stats.prefixes_seen_v4.insert(prefix_index);
      }
      state.announced = true;
    } else {
      ++stats.withdrawals;
      state.announced = false;
    }
    sink(record);
  };

  auto get_state = [&](int session_index, int prefix_index) -> RouteState& {
    auto key = std::make_pair(session_index, prefix_index);
    auto it = states.find(key);
    if (it == states.end()) {
      RouteState fresh;
      std::uint64_t h = hash_combine(
          p.seed, static_cast<std::uint64_t>(session_index) * 100003 +
                      static_cast<std::uint64_t>(prefix_index));
      fresh.variant = static_cast<int>(h % 3);
      fresh.tag = static_cast<int>((h >> 8) % 1000);
      it = states.emplace(key, fresh).first;
    }
    return it->second;
  };

  // Event weights.
  double weight_sum = p.path_event_weight + p.comm_event_weight +
                      p.churn_event_weight + p.flap_event_weight +
                      p.prepend_event_weight;
  std::geometric_distribution<int> burst_size(
      1.0 / (1.0 + p.mean_exploration_length));
  std::geometric_distribution<int> fanout(1.0 / 4.0);
  std::int64_t day_micros = Duration::hours(24).count_micros();

  // Generate events until the announcement budget is spent.
  while (stats.announcements < p.announcement_target) {
    // Heavy-tailed prefix popularity: low indices are hot.
    double u = unit(rng);
    int prefix_index =
        static_cast<int>(static_cast<double>(total_prefixes) * u * u * u);
    prefix_index = std::min(prefix_index, total_prefixes - 1);

    Timestamp when =
        p.day_start + Duration::micros(static_cast<std::int64_t>(
                          unit(rng) * static_cast<double>(day_micros)));

    double kind_roll = unit(rng) * weight_sum;
    int session_count = 1 + fanout(rng);
    session_count = std::min(session_count, p.sessions);
    int session_start =
        static_cast<int>(unit(rng) * static_cast<double>(p.sessions));

    for (int s = 0; s < session_count; ++s) {
      int session_index = (session_start + s * 37) % p.sessions;
      const SessionInfo& session =
          sessions[static_cast<std::size_t>(session_index)];
      RouteState& state = get_state(session_index, prefix_index);
      const Transit& transit = transits[static_cast<std::size_t>(
          prefixes[static_cast<std::size_t>(prefix_index)].transit_base)];
      bool visible_tags = transit.tagger && !session.cleaning;

      if (!state.announced) {
        // Baseline announcement so the stream has a predecessor.
        emit(session_index, prefix_index, state, when, true);
        when = when + Duration::millis(200);
      }

      if (kind_roll < p.path_event_weight) {
        // Path switch. The ingress into the tagging transit usually moves
        // with it (new tags -> pc); sometimes only the downstream leg
        // changes (tags persist -> pn even on tagged routes).
        state.variant = (state.variant + 1) % 3;
        if (unit(rng) < 0.95) state.tag += 1 + static_cast<int>(unit(rng) * 5);
        emit(session_index, prefix_index, state, when, true);
        if (unit(rng) < p.exploration_probability) {
          int len = 1 + burst_size(rng);
          for (int b = 0; b < len; ++b) {
            when = when + Duration::millis(80);
            if (visible_tags) {
              state.tag += 1;  // community exploration: nc
              emit(session_index, prefix_index, state, when, true);
            } else if (session.dup_vendor) {
              emit(session_index, prefix_index, state, when, true);  // nn
            }
          }
        }
      } else if (kind_roll < p.path_event_weight + p.comm_event_weight) {
        // Community-only event.
        if (visible_tags) {
          state.tag += 1;
          emit(session_index, prefix_index, state, when, true);  // nc
        } else if (transit.tagger && session.cleaning &&
                   session.dup_vendor) {
          emit(session_index, prefix_index, state, when, true);  // nn (Exp3)
        }
      } else if (kind_roll < p.path_event_weight + p.comm_event_weight +
                                 p.churn_event_weight) {
        // Internal churn: duplicate on duplicate-emitting vendors only.
        if (session.dup_vendor) {
          emit(session_index, prefix_index, state, when, true);  // nn
        }
      } else if (kind_roll < p.path_event_weight + p.comm_event_weight +
                                 p.churn_event_weight +
                                 p.flap_event_weight) {
        // Origin flap: withdraw + identical re-announce.
        emit(session_index, prefix_index, state, when, false);
        when = when + Duration::millis(400);
        emit(session_index, prefix_index, state, when, true);  // nn
      } else {
        // Prepend toggle.
        state.prepended = !state.prepended;
        emit(session_index, prefix_index, state, when, true);  // xn / xc
      }
    }
  }

  // The 2012 artifact: one AS bursts identical updates (Figure 2 footnote).
  if (p.nn_artifact) {
    int session_index = 3 % p.sessions;
    std::uint64_t artifact = p.announcement_target;
    Timestamp when = p.day_start + Duration::hours(11);
    for (std::uint64_t i = 0; i < artifact; ++i) {
      int prefix_index = static_cast<int>(i % 50);
      RouteState& state = get_state(session_index, prefix_index);
      if (!state.announced) {
        emit(session_index, prefix_index, state, when, true);
      }
      when = when + Duration::millis(2);
      emit(session_index, prefix_index, state, when, true);  // nn burst
    }
  }

  return stats;
}

MacroGen::DayResult MacroGen::classify_day() {
  DayResult result;
  core::Classifier classifier;
  result.stats = generate_day([&classifier](const core::UpdateRecord& record) {
    classifier.classify(record);
  });
  result.types = classifier.counts();
  return result;
}

}  // namespace bgpcc::synth
