// The versioned wire codec for analysis state: every pass State, the
// driver's checkpoint/partial-state containers, and the streaming
// ingestor's resumable cursor serialize through ONE self-describing
// binary format (magic + format version + per-block kind + per-pass
// tag), so partial results can cross process boundaries — one worker
// per collector, crash-safe resumable year-scale runs, `bgpcc-merge`
// fan-in — with the same associativity guarantees the in-process
// Pass::merge contract gives.
//
// Format (documented field-by-field in docs/FORMATS.md):
//
//   block   := magic u32 | version u16 | kind u8 | payload
//   payload := pass-state list (kPartialState), per-shard state matrix
//              (kCheckpoint), or framing cursor + cleaning carry
//              (kIngestCursor)
//
// All integers are big-endian (network order), matching the BGP/MRT/
// spill codecs. Decoding is bounds-checked end to end: truncated input,
// a bad magic, an unknown version, or a pass-tag mismatch throw
// DecodeError (never UB) — serialize_test drives the same adversarial
// battery the gz/bz2 sources get.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/ingest.h"

namespace bgpcc::analytics::serialize {

/// First four bytes of every serialized block: "BGPC".
inline constexpr std::uint32_t kMagic = 0x42475043;

/// Wire format version. Bump on ANY layout change (see the "bumping the
/// version" checklist in docs/FORMATS.md); readers reject other versions
/// with DecodeError instead of misparsing.
///
/// v2: kIngestCursor gained an explicit resolved-shard-count field (the
/// carry's shape used to be implicitly machine-dependent under
/// num_threads = 0). v1 blocks are rejected — checkpoints are transient
/// crash/resume state, not long-lived archives.
inline constexpr std::uint16_t kFormatVersion = 2;

/// What a serialized block contains (the byte after magic + version).
enum class BlockKind : std::uint8_t {
  /// Merged per-pass states of a completed (or finalized) run: the
  /// `bgpcc-merge` input, written by AnalysisDriver::save_state.
  kPartialState = 1,
  /// Per-shard states of a still-running driver plus (optionally) the
  /// ingest cursor: written by AnalysisDriver::checkpoint.
  kCheckpoint = 2,
  /// A StreamingIngestor framing cursor + per-shard cleaning carry:
  /// nested inside kCheckpoint blocks, self-delimiting.
  kIngestCursor = 3,
};

/// Wire tag of each shipped pass State (passes.h pins kStateTag to these
/// values). Tags are part of the format: NEVER renumber; append only.
enum class PassTag : std::uint16_t {
  kClassifier = 1,
  kPerSessionTypes = 2,
  kTomography = 3,
  kCommunityStats = 4,
  kDuplicateBurst = 5,
  kAnomaly = 6,
  kRevealed = 7,
  kExploration = 8,
  kUsageClassification = 9,
};

/// Big-endian primitive encoder over a std::ostream. Throws DecodeError
/// when the underlying stream fails (disk full, broken pipe), so a
/// silently truncated checkpoint can never be mistaken for a good one.
class Writer {
 public:
  /// Binds to a caller-owned output stream (must outlive the writer).
  explicit Writer(std::ostream& out) : out_(out) {}

  /// Writes one byte.
  void u8(std::uint8_t v);
  /// Writes a 16-bit big-endian integer.
  void u16(std::uint16_t v);
  /// Writes a 32-bit big-endian integer.
  void u32(std::uint32_t v);
  /// Writes a 64-bit big-endian integer.
  void u64(std::uint64_t v);
  /// Writes a 64-bit signed integer (two's complement, big-endian).
  void i64(std::int64_t v);
  /// Writes a bool as one byte (0 or 1).
  void boolean(bool v);
  /// Writes a length-prefixed (u32) byte string.
  void str(std::string_view s);
  /// Writes raw bytes with no length prefix.
  void raw(const void* data, std::size_t size);

  /// Total bytes written so far (payload sizing).
  [[nodiscard]] std::uint64_t bytes_written() const { return written_; }

 private:
  std::ostream& out_;
  std::uint64_t written_ = 0;
};

/// Big-endian primitive decoder over a std::istream. Every read checks
/// for truncation and throws DecodeError on underrun; length prefixes
/// are sanity-capped so corrupt input cannot trigger huge allocations.
class Reader {
 public:
  /// Binds to a caller-owned input stream (must outlive the reader).
  explicit Reader(std::istream& in) : in_(in) {}

  /// Reads one byte.
  [[nodiscard]] std::uint8_t u8();
  /// Reads a 16-bit big-endian integer.
  [[nodiscard]] std::uint16_t u16();
  /// Reads a 32-bit big-endian integer.
  [[nodiscard]] std::uint32_t u32();
  /// Reads a 64-bit big-endian integer.
  [[nodiscard]] std::uint64_t u64();
  /// Reads a 64-bit signed integer.
  [[nodiscard]] std::int64_t i64();
  /// Reads a bool byte; any nonzero value is true.
  [[nodiscard]] bool boolean();
  /// Reads a length-prefixed (u32) byte string. Throws DecodeError past
  /// the 1 MiB sanity cap (no field in the format comes close).
  [[nodiscard]] std::string str();
  /// Reads exactly `size` raw bytes.
  void raw(void* data, std::size_t size);

  /// Total bytes consumed so far (payload-size verification).
  [[nodiscard]] std::uint64_t bytes_read() const { return read_; }

 private:
  std::istream& in_;
  std::uint64_t read_ = 0;
};

/// Writes the common block header: magic, format version, kind.
void write_block_header(Writer& w, BlockKind kind);

/// Reads and validates a block header; throws DecodeError on a bad
/// magic or an unsupported format version. Returns the block kind.
[[nodiscard]] BlockKind read_block_header(Reader& r);

/// Same, additionally requiring `expected` (DecodeError otherwise).
void read_block_header(Reader& r, BlockKind expected);

/// Peeks the pass-tag list of a partial-state or checkpoint file: reads
/// the header and the tag list, consuming the stream up to the first
/// state payload. `bgpcc-merge` uses this to reconstruct a matching
/// driver before re-reading the file for real.
[[nodiscard]] std::vector<PassTag> read_state_tags(std::istream& in);

/// Serializes a resumable ingestion snapshot as a kIngestCursor block.
void write_ingest_checkpoint(Writer& w, const core::IngestCheckpoint& state);

/// Decodes a kIngestCursor block (header included). Throws DecodeError
/// on truncation or corruption.
[[nodiscard]] core::IngestCheckpoint read_ingest_checkpoint(Reader& r);

}  // namespace bgpcc::analytics::serialize
