// The Pass concept: one analysis over the cleaned update stream,
// expressed as per-shard state so it can run anywhere the stream flows —
// inline on the ingestion engine's shard threads (zero extra traversal),
// as a streaming sink over the final merged order, or over an
// already-materialized UpdateStream. A pass supplies:
//
//   State make_state() const       — one state per shard (or sink)
//   State::observe(record)         — folds one cleaned record in
//   State::merge(State&&)          — associative combination of partial
//                                    states (any grouping, any order)
//   State::report() const          — projects the merged state into the
//                                    pass's result type
//
// The contract that makes every execution mode equivalent: a state's
// final merged value must depend only on (a) the multiset of records
// observed and (b) the relative order of records WITHIN each BGP
// session — never on cross-session interleaving. The engine guarantees
// each session lands wholly inside one shard and that per-session order
// equals final stream order, so any pass honoring the contract reports
// identically for 1 thread, N threads, any window size, inline or sink —
// analytics_test asserts exactly that for every shipped pass.
//
// Snapshot contract: State must additionally be copy-constructible, and
// the copy must be a faithful, independent deep copy — epoch reporting
// (AnalysisDriver::snapshot) clones every per-shard state and merges the
// clones, so copying must neither share mutable structure with nor
// perturb the original. Value-semantic members (maps, vectors, sets,
// counters) get this for free; keep copies cheap (O(state size), no
// I/O), because a clone runs under the committed-window barrier while
// ingestion waits.
#pragma once

#include <concepts>
#include <cstdint>
#include <memory>
#include <utility>

#include "core/stream.h"
#include "netbase/error.h"

namespace bgpcc::analytics {

namespace serialize {
class Writer;
class Reader;
}  // namespace serialize

/// The compile-time shape of an analysis pass (see the header comment
/// for the semantic contract the types must honor). The State must be
/// copy-constructible: AnalysisDriver::snapshot clones per-shard states
/// to build an epoch report without finalizing — the copy must be a
/// cheap, faithful deep copy (see the snapshot contract above).
template <typename P>
concept Pass = std::move_constructible<P> &&
    std::copy_constructible<typename P::State> &&
    requires(const P& pass, typename P::State& state, typename P::State&& tmp,
             const core::UpdateRecord& record) {
      { pass.make_state() } -> std::same_as<typename P::State>;
      state.observe(record);
      state.merge(std::move(tmp));
      { std::as_const(state).report() };
    };

/// The report type a pass projects to.
template <Pass P>
using ReportOf = decltype(std::declval<const typename P::State&>().report());

/// A pass whose State additionally round-trips through the versioned wire
/// codec (analytics/serialize.h): a pinned wire tag plus save/load. Every
/// shipped pass models this; custom passes may opt in to make their
/// states checkpointable and bgpcc-merge-able.
///
/// Contract: load() is called on a freshly minted state (make_state from
/// an identically configured pass) and must leave it exactly as the saved
/// one — configuration members are NOT serialized, only evidence, so the
/// loading side configures the pass itself.
template <typename P>
concept SerializablePass =
    Pass<P> && requires(const typename P::State& cs, typename P::State& s,
                        serialize::Writer& w, serialize::Reader& r) {
      { P::kStateTag } -> std::convertible_to<std::uint16_t>;
      cs.save(w);
      s.load(r);
    };

namespace detail {

/// Type-erased per-shard state: what the driver fans out, observes into,
/// and tournament-merges back together.
class AnyState {
 public:
  virtual ~AnyState() = default;
  virtual void observe(const core::UpdateRecord& record) = 0;
  /// `other` must wrap the same State type (guaranteed by construction:
  /// the driver only merges states minted by one pass slot).
  virtual void merge(AnyState&& other) = 0;
  /// Serializes the state through the wire codec; ConfigError when the
  /// pass does not model SerializablePass.
  virtual void save(serialize::Writer& writer) const = 0;
  /// Restores a freshly minted state from the wire codec; ConfigError
  /// when the pass does not model SerializablePass.
  virtual void load(serialize::Reader& reader) = 0;
  /// Deep-copies the state (the Pass concept requires copy-constructible
  /// States). Epoch reporting clones every per-shard state under the
  /// committed-window barrier and merges the clones, leaving the
  /// originals untouched.
  [[nodiscard]] virtual std::unique_ptr<AnyState> clone() const = 0;
};

/// Type-erased pass: a state factory.
class AnyPass {
 public:
  virtual ~AnyPass() = default;
  [[nodiscard]] virtual std::unique_ptr<AnyState> make_state() const = 0;
  /// The pass's pinned wire tag (serialize::PassTag value); ConfigError
  /// when the pass does not model SerializablePass.
  [[nodiscard]] virtual std::uint16_t state_tag() const = 0;
};

template <Pass P>
class StateModel final : public AnyState {
 public:
  explicit StateModel(typename P::State&& state) : state_(std::move(state)) {}
  void observe(const core::UpdateRecord& record) override {
    state_.observe(record);
  }
  void merge(AnyState&& other) override {
    state_.merge(std::move(static_cast<StateModel&>(other).state_));
  }
  void save(serialize::Writer& writer) const override {
    if constexpr (SerializablePass<P>) {
      state_.save(writer);
    } else {
      (void)writer;
      throw ConfigError(
          "AnalysisDriver: this pass's State is not serializable — give it "
          "kStateTag + save()/load() (analytics/serialize.h) to checkpoint");
    }
  }
  void load(serialize::Reader& reader) override {
    if constexpr (SerializablePass<P>) {
      state_.load(reader);
    } else {
      (void)reader;
      throw ConfigError(
          "AnalysisDriver: this pass's State is not serializable — give it "
          "kStateTag + save()/load() (analytics/serialize.h) to restore");
    }
  }
  [[nodiscard]] std::unique_ptr<AnyState> clone() const override {
    return std::make_unique<StateModel>(typename P::State(state_));
  }
  [[nodiscard]] const typename P::State& state() const { return state_; }

 private:
  typename P::State state_;
};

template <Pass P>
class PassModel final : public AnyPass {
 public:
  explicit PassModel(P pass) : pass_(std::move(pass)) {}
  [[nodiscard]] std::unique_ptr<AnyState> make_state() const override {
    return std::make_unique<StateModel<P>>(pass_.make_state());
  }
  [[nodiscard]] std::uint16_t state_tag() const override {
    if constexpr (SerializablePass<P>) {
      return P::kStateTag;
    } else {
      throw ConfigError(
          "AnalysisDriver: this pass has no wire tag — give its State "
          "kStateTag + save()/load() (analytics/serialize.h) to serialize");
    }
  }

 private:
  P pass_;
};

}  // namespace detail

/// Typed ticket returned by AnalysisDriver::add: redeem with
/// AnalysisDriver::report after ingestion, or against any
/// ReportSnapshot taken from the issuing driver. Valid only for the
/// driver that issued it (stamped with the issuer; a foreign handle
/// throws ConfigError instead of reading the wrong pass's state).
template <Pass P>
class PassHandle {
 public:
  /// An empty handle; redeeming it throws ConfigError.
  PassHandle() = default;

 private:
  friend class AnalysisDriver;
  friend class ReportSnapshot;
  PassHandle(std::size_t index, const void* owner)
      : index_(index), owner_(owner) {}
  std::size_t index_ = static_cast<std::size_t>(-1);
  const void* owner_ = nullptr;
};

}  // namespace bgpcc::analytics
