#include "analytics/driver.h"

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>

#include "analytics/serialize.h"
#include "netbase/error.h"
#include "obs/pipeline_metrics.h"

namespace bgpcc::analytics {

const detail::AnyState& ReportSnapshot::state_at(std::size_t index,
                                                 const void* owner) const {
  if (data_ == nullptr) {
    throw ConfigError(
        "ReportSnapshot: report() on an empty snapshot — take one with "
        "AnalysisDriver::snapshot()");
  }
  if (owner != data_->owner || index >= data_->states.size()) {
    throw ConfigError(
        "ReportSnapshot: report() with a handle the snapshotted driver "
        "did not issue");
  }
  return *data_->states[index];
}

AnalysisDriver::AnalysisDriver() = default;
AnalysisDriver::~AnalysisDriver() = default;

void AnalysisDriver::throw_finalized(const char* call) const {
  throw ConfigError(std::string("AnalysisDriver: ") + call +
                    " after finalization (report()/save_state()) — the "
                    "per-shard states are already merged; build a fresh "
                    "driver for a new run");
}

void AnalysisDriver::ensure_can_add() const {
  std::lock_guard<std::mutex> lock(window_mutex_);
  if (finalized_) throw_finalized("add()");
  if (!states_.empty()) {
    throw ConfigError(
        "AnalysisDriver: add() after observation started — register every "
        "pass before attach()/sink()/observe()");
  }
}

void AnalysisDriver::ensure_states() {
  if (!states_.empty()) return;
  states_.resize(shard_slots_);
  for (auto& shard : states_) {
    shard.reserve(passes_.size());
    for (const auto& pass : passes_) {
      shard.push_back(pass->make_state());
    }
  }
}

void AnalysisDriver::attach(core::IngestOptions& options) {
  std::lock_guard<std::mutex> lock(window_mutex_);
  if (finalized_) throw_finalized("attach()");
  // The per-shard state matrix must match the engine's shard layout, or
  // observe_shard would index out of range (or worse, silently fold two
  // engine shards into one slot and break session-order fidelity).
  const std::size_t resolved = core::resolve_shard_count(options);
  if (!states_.empty() && states_.size() != resolved) {
    throw ConfigError(
        "AnalysisDriver: attach() resolves to " + std::to_string(resolved) +
        " shards but this driver already holds " +
        std::to_string(states_.size()) +
        " shard states — use matching IngestOptions across runs");
  }
  shard_slots_ = resolved;
  ensure_states();
  options.shard_observer = [this](std::size_t shard,
                                  const std::vector<core::SeqRecord>&
                                      records) {
    observe_shard(shard, records);
  };
  // The committed-window barrier: the engine holds the driver's window
  // mutex for the whole observer phase of each window, so snapshot()
  // from another thread lands exactly on a window boundary.
  options.window_begin = [this] { window_mutex_.lock(); };
  options.window_commit = [this] { window_mutex_.unlock(); };
}

std::function<void(core::UpdateRecord&&)> AnalysisDriver::sink() {
  {
    std::lock_guard<std::mutex> lock(window_mutex_);
    if (finalized_) throw_finalized("sink()");
    ensure_states();
  }
  return [this](core::UpdateRecord&& record) { observe(record); };
}

void AnalysisDriver::observe(const core::UpdateRecord& record) {
  std::lock_guard<std::mutex> lock(window_mutex_);
  if (finalized_) throw_finalized("observe()");
  ensure_states();
  for (const auto& state : states_[0]) state->observe(record);
}

void AnalysisDriver::observe_stream(const core::UpdateStream& stream) {
  std::lock_guard<std::mutex> lock(window_mutex_);
  if (finalized_) throw_finalized("observe_stream()");
  ensure_states();
  // Pass-major iteration keeps each pass's state hot in cache across the
  // whole stream instead of cycling every state per record.
  for (const auto& state : states_[0]) {
    for (const core::UpdateRecord& record : stream.records()) {
      state->observe(record);
    }
  }
}

void AnalysisDriver::observe_shard(
    std::size_t shard, const std::vector<core::SeqRecord>& records) {
  // Called on the engine's worker threads: one thread per shard index at
  // a time (core::IngestOptions::shard_observer contract), so the
  // per-shard states need no locking — and no lock is taken here: the
  // engine's poll thread holds window_mutex_ for the whole observer
  // phase (the window_begin/window_commit bracket installed by
  // attach()), which is what serializes these writes against
  // snapshot()'s clones. ensure_states() already ran on the caller's
  // thread in attach(), before any worker existed.
  if (finalized_) {
    // A still-attached IngestOptions reused after report(): the engine's
    // error collector carries this to the ingest caller as the real
    // contract violation, not a cryptic out-of-range.
    // bgpcc-lint: allow(H1, cold misuse-only path - never hit in steady state)
    throw ConfigError(
        "AnalysisDriver: ingestion observed through attached options "
        "after report() — attach a fresh driver per run");
  }
  obs::pipeline_metrics().analysis_observe_records->inc(records.size());
  std::vector<std::unique_ptr<detail::AnyState>>& slot = states_.at(shard);
  for (const auto& state : slot) {
    for (const core::SeqRecord& sr : records) {
      state->observe(sr.record);
    }
  }
}

ReportSnapshot AnalysisDriver::snapshot() {
  const obs::PipelineMetrics& metrics = obs::pipeline_metrics();
  obs::StageTimer snapshot_timer(metrics.analysis_snapshot);
  metrics.analysis_snapshots->inc();
  // Phase 1, under the committed-window barrier: clone every per-shard
  // state. Clones are cheap deep copies (the Pass snapshot contract), so
  // the lock is held O(state size) — ingestion stalls at the next window
  // boundary at most that long.
  std::vector<std::vector<std::unique_ptr<detail::AnyState>>> clones;
  std::uint64_t epoch = 0;
  {
    obs::StageTimer clone_timer(metrics.analysis_snapshot_clone);
    std::lock_guard<std::mutex> lock(window_mutex_);
    if (finalized_) throw_finalized("snapshot()");
    ensure_states();  // snapshot before any observation: empty states
    epoch = ++epochs_;
    clones.reserve(states_.size());
    for (const auto& shard : states_) {
      std::vector<std::unique_ptr<detail::AnyState>> copies;
      copies.reserve(shard.size());
      for (const auto& state : shard) copies.push_back(state->clone());
      clones.push_back(std::move(copies));
    }
  }
  metrics.analysis_epoch->set(static_cast<std::int64_t>(epoch));
  // Phase 2, outside the lock: merge the clones in shard order 0..N-1 —
  // the exact grouping the legacy finalize used, so a snapshot is
  // byte-identical to the report() of a run truncated here.
  auto data = std::make_shared<ReportSnapshot::Data>();
  data->owner = this;
  data->epoch = epoch;
  data->states = std::move(clones.front());
  {
    obs::StageTimer merge_timer(metrics.analysis_snapshot_merge);
    std::vector<obs::Histogram*> pass_hist;
    if (obs::enabled()) {
      pass_hist.reserve(passes_.size());
      for (std::size_t p = 0; p < passes_.size(); ++p) {
        pass_hist.push_back(&obs::pass_merge_histogram(p));
      }
    }
    for (std::size_t s = 1; s < clones.size(); ++s) {
      for (std::size_t p = 0; p < passes_.size(); ++p) {
        obs::StageTimer pass_timer(pass_hist.empty() ? nullptr : pass_hist[p]);
        data->states[p]->merge(std::move(*clones[s][p]));
      }
    }
  }
  return ReportSnapshot(std::move(data));
}

void AnalysisDriver::finalize() {
  if (finalized_) return;
  // report() IS a snapshot whose result is adopted as the final state —
  // merge grouping and order are identical, so output bytes are too.
  ReportSnapshot last = snapshot();
  std::lock_guard<std::mutex> lock(window_mutex_);
  final_ = std::move(last);
  states_.clear();
  finalized_ = true;
}

const detail::AnyState& AnalysisDriver::finalized_state(std::size_t index,
                                                        const void* owner) {
  if (owner != this || index >= passes_.size()) {
    throw ConfigError(
        "AnalysisDriver: report() with a handle this driver did not issue");
  }
  finalize();
  return *final_.data_->states[index];
}

// ---------------------------------------------------------------------------
// Wire codec plumbing. Each state travels as a length-prefixed blob: the
// writer serializes into a scratch buffer to learn the length; the reader
// decodes in place and verifies it consumed exactly the declared bytes,
// so a codec/layout mismatch surfaces as DecodeError at the offending
// pass instead of desynchronizing every pass after it.

namespace {

void write_state_blob(serialize::Writer& w, const detail::AnyState& state) {
  std::ostringstream buffer;
  serialize::Writer blob(buffer);
  state.save(blob);
  std::string bytes = std::move(buffer).str();
  w.u64(bytes.size());
  w.raw(bytes.data(), bytes.size());
}

void read_state_blob(serialize::Reader& r, detail::AnyState& state) {
  std::uint64_t declared = r.u64();
  std::uint64_t before = r.bytes_read();
  state.load(r);
  std::uint64_t consumed = r.bytes_read() - before;
  if (consumed != declared) {
    throw DecodeError("state blob declared " + std::to_string(declared) +
                      " bytes but decoding consumed " +
                      std::to_string(consumed) +
                      " — mismatched pass configuration or corrupt file");
  }
}

}  // namespace

void AnalysisDriver::write_tags(serialize::Writer& w) const {
  if (passes_.size() > 0xFFFF) {
    throw ConfigError("AnalysisDriver: more than 65535 passes");
  }
  w.u16(static_cast<std::uint16_t>(passes_.size()));
  for (const auto& pass : passes_) w.u16(pass->state_tag());
}

void AnalysisDriver::check_tags(serialize::Reader& r) const {
  std::uint16_t count = r.u16();
  if (count != passes_.size()) {
    throw ConfigError(
        "AnalysisDriver: state file holds " + std::to_string(count) +
        " passes, this driver registered " + std::to_string(passes_.size()) +
        " — register the same passes in the same order");
  }
  for (std::size_t p = 0; p < passes_.size(); ++p) {
    std::uint16_t tag = r.u16();
    std::uint16_t expected = passes_[p]->state_tag();
    if (tag != expected) {
      throw ConfigError("AnalysisDriver: state file pass " +
                        std::to_string(p) + " has wire tag " +
                        std::to_string(tag) + ", this driver expects tag " +
                        std::to_string(expected) +
                        " — register the same passes in the same order");
    }
  }
}

void AnalysisDriver::save_state(std::ostream& out) {
  finalize();
  serialize::Writer w(out);
  serialize::write_block_header(w, serialize::BlockKind::kPartialState);
  write_tags(w);
  for (const auto& state : final_.data_->states) write_state_blob(w, *state);
  out.flush();
  if (!out) throw DecodeError("save_state: output stream failed on flush");
}

void AnalysisDriver::load_state(std::istream& in) {
  obs::StageTimer merge_timer(obs::pipeline_metrics().analysis_merge);
  std::lock_guard<std::mutex> lock(window_mutex_);
  if (finalized_) throw_finalized("load_state()");
  ensure_states();
  serialize::Reader r(in);
  serialize::BlockKind kind = serialize::read_block_header(r);
  if (kind == serialize::BlockKind::kIngestCursor) {
    throw DecodeError(
        "load_state: file is a bare ingest cursor, not a pass-state file");
  }
  check_tags(r);
  if (kind == serialize::BlockKind::kPartialState) {
    for (std::size_t p = 0; p < passes_.size(); ++p) {
      std::unique_ptr<detail::AnyState> fresh = passes_[p]->make_state();
      read_state_blob(r, *fresh);
      states_[0][p]->merge(std::move(*fresh));
    }
    return;
  }
  // kCheckpoint: fold every shard slot into the sink slot. Valid for
  // combining disjoint runs; resuming needs restore() (shard fidelity).
  if (r.boolean()) {
    (void)serialize::read_ingest_checkpoint(r);  // cursor: skip
  }
  std::uint16_t shard_count = r.u16();
  for (std::uint16_t s = 0; s < shard_count; ++s) {
    for (std::size_t p = 0; p < passes_.size(); ++p) {
      std::unique_ptr<detail::AnyState> fresh = passes_[p]->make_state();
      read_state_blob(r, *fresh);
      states_[0][p]->merge(std::move(*fresh));
    }
  }
}

void AnalysisDriver::checkpoint(std::ostream& out) {
  checkpoint_impl(out, nullptr);
}

void AnalysisDriver::checkpoint(std::ostream& out,
                                const core::StreamingIngestor& ingestor) {
  checkpoint_impl(out, &ingestor);
}

void AnalysisDriver::checkpoint_impl(std::ostream& out,
                                     const core::StreamingIngestor* ingestor) {
  obs::StageTimer checkpoint_timer(
      obs::pipeline_metrics().analysis_checkpoint);
  // Checkpoints are taken between poll() calls (the StreamingIngestor
  // contract), but a snapshot thread may be live concurrently — holding
  // the barrier serializes against it. Note snapshot() never mutates
  // states_ and the epoch counter is never serialized, so a checkpoint
  // taken after any number of snapshots is byte-identical to one taken
  // on a never-snapshotted run (pinned by snapshot_report_test).
  std::lock_guard<std::mutex> lock(window_mutex_);
  if (finalized_) throw_finalized("checkpoint()");
  ensure_states();
  serialize::Writer w(out);
  serialize::write_block_header(w, serialize::BlockKind::kCheckpoint);
  write_tags(w);
  w.boolean(ingestor != nullptr);
  if (ingestor != nullptr) {
    serialize::write_ingest_checkpoint(w, ingestor->checkpoint_state());
  }
  w.u16(static_cast<std::uint16_t>(states_.size()));
  for (const auto& shard : states_) {
    for (const auto& state : shard) write_state_blob(w, *state);
  }
  out.flush();
  if (!out) throw DecodeError("checkpoint: output stream failed on flush");
}

void AnalysisDriver::restore(std::istream& in) { restore_impl(in, nullptr); }

void AnalysisDriver::restore(std::istream& in,
                             core::StreamingIngestor& ingestor) {
  restore_impl(in, &ingestor);
}

void AnalysisDriver::restore_impl(std::istream& in,
                                  core::StreamingIngestor* ingestor) {
  obs::StageTimer restore_timer(obs::pipeline_metrics().analysis_restore);
  // attach() may legitimately have minted the (empty) shard states
  // already — restore after attach is the documented resume order, since
  // the ingestor needs the observer installed at construction. load()
  // replaces each state's evidence wholesale, so only finalization is
  // irrecoverable here; anything observed before restore is discarded.
  std::lock_guard<std::mutex> lock(window_mutex_);
  if (finalized_) throw_finalized("restore()");
  serialize::Reader r(in);
  serialize::read_block_header(r, serialize::BlockKind::kCheckpoint);
  check_tags(r);
  bool has_cursor = r.boolean();
  if (ingestor != nullptr && !has_cursor) {
    throw ConfigError(
        "AnalysisDriver: checkpoint carries no ingest cursor (it was "
        "taken without an ingestor) — restore(istream&) the states alone");
  }
  std::size_t cursor_shards = 0;
  if (has_cursor) {
    core::IngestCheckpoint cursor = serialize::read_ingest_checkpoint(r);
    cursor_shards = cursor.shards != 0 ? cursor.shards : cursor.carry.size();
    if (ingestor != nullptr) {
      ingestor->restore_checkpoint(cursor);
    }
    // Without an ingestor the cursor is decoded and dropped: the states
    // alone still restore (merge/report of what was observed so far).
  }
  std::uint16_t shard_count = r.u16();
  if (shard_count == 0 || shard_count > core::kMaxIngestShards) {
    throw ConfigError(
        "AnalysisDriver: checkpoint has " + std::to_string(shard_count) +
        " shard slots — out of range, the file is corrupt or foreign");
  }
  if (cursor_shards != 0 && cursor_shards != shard_count) {
    throw ConfigError(
        "AnalysisDriver: checkpoint cursor resolved " +
        std::to_string(cursor_shards) + " shards but carries " +
        std::to_string(shard_count) +
        " state slots — the file is corrupt");
  }
  // Adopt the checkpoint's shard layout wholesale: restore() replaces
  // every state's evidence anyway, so re-minting at the saved size keeps
  // resume byte-identical even across hosts whose num_threads = 0
  // resolved to different shard counts.
  if (!states_.empty() && states_.size() != shard_count) states_.clear();
  shard_slots_ = shard_count;
  ensure_states();
  for (auto& shard : states_) {
    for (auto& state : shard) read_state_blob(r, *state);
  }
}

core::IngestResult analyze_mrt_files(
    AnalysisDriver& driver,
    const std::map<std::string, std::vector<std::string>>& archives,
    core::IngestOptions options) {
  driver.attach(options);
  return core::ingest_mrt_files(archives, options);
}

core::IngestResult analyze_collectors(
    AnalysisDriver& driver,
    const std::vector<const sim::RouteCollector*>& collectors,
    core::IngestOptions options) {
  driver.attach(options);
  return core::ingest_collectors(collectors, options);
}

}  // namespace bgpcc::analytics
