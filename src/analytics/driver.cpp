#include "analytics/driver.h"

#include <utility>

#include "netbase/error.h"

namespace bgpcc::analytics {

AnalysisDriver::AnalysisDriver() = default;
AnalysisDriver::~AnalysisDriver() = default;

void AnalysisDriver::ensure_can_add() const {
  if (!states_.empty() || finalized_) {
    throw ConfigError(
        "AnalysisDriver: add() after observation started or after "
        "report() — register every pass before attach()/sink()/observe(), "
        "and build a fresh driver for a new run");
  }
}

void AnalysisDriver::ensure_states() {
  if (finalized_) {
    throw ConfigError(
        "AnalysisDriver: observation after report() — the states are "
        "already merged");
  }
  if (!states_.empty()) return;
  states_.resize(core::kIngestShards);
  for (auto& shard : states_) {
    shard.reserve(passes_.size());
    for (const auto& pass : passes_) {
      shard.push_back(pass->make_state());
    }
  }
}

void AnalysisDriver::attach(core::IngestOptions& options) {
  ensure_states();
  options.shard_observer = [this](std::size_t shard,
                                  const std::vector<core::SeqRecord>&
                                      records) {
    observe_shard(shard, records);
  };
}

std::function<void(core::UpdateRecord&&)> AnalysisDriver::sink() {
  ensure_states();
  return [this](core::UpdateRecord&& record) { observe(record); };
}

void AnalysisDriver::observe(const core::UpdateRecord& record) {
  ensure_states();
  for (const auto& state : states_[0]) state->observe(record);
}

void AnalysisDriver::observe_stream(const core::UpdateStream& stream) {
  ensure_states();
  // Pass-major iteration keeps each pass's state hot in cache across the
  // whole stream instead of cycling every state per record.
  for (const auto& state : states_[0]) {
    for (const core::UpdateRecord& record : stream.records()) {
      state->observe(record);
    }
  }
}

void AnalysisDriver::observe_shard(
    std::size_t shard, const std::vector<core::SeqRecord>& records) {
  // Called on the engine's worker threads: one thread per shard index at
  // a time (core::IngestOptions::shard_observer contract), so the
  // per-shard states need no locking. ensure_states() already ran on the
  // caller's thread in attach(), before any worker existed.
  if (finalized_) {
    // A still-attached IngestOptions reused after report(): the engine's
    // error collector carries this to the ingest caller as the real
    // contract violation, not a cryptic out-of-range.
    throw ConfigError(
        "AnalysisDriver: ingestion observed through attached options "
        "after report() — attach a fresh driver per run");
  }
  std::vector<std::unique_ptr<detail::AnyState>>& slot = states_.at(shard);
  for (const auto& state : slot) {
    for (const core::SeqRecord& sr : records) {
      state->observe(sr.record);
    }
  }
}

const detail::AnyState& AnalysisDriver::finalized_state(std::size_t index,
                                                        const void* owner) {
  if (owner != this || index >= passes_.size()) {
    throw ConfigError(
        "AnalysisDriver: report() with a handle this driver did not issue");
  }
  if (!finalized_) {
    ensure_states();  // report() before any observation: empty reports
    final_ = std::move(states_.front());
    for (std::size_t s = 1; s < states_.size(); ++s) {
      for (std::size_t p = 0; p < passes_.size(); ++p) {
        final_[p]->merge(std::move(*states_[s][p]));
      }
    }
    states_.clear();
    finalized_ = true;
  }
  return *final_[index];
}

core::IngestResult analyze_mrt_files(
    AnalysisDriver& driver,
    const std::map<std::string, std::vector<std::string>>& archives,
    core::IngestOptions options) {
  driver.attach(options);
  return core::ingest_mrt_files(archives, options);
}

core::IngestResult analyze_collectors(
    AnalysisDriver& driver,
    const std::vector<const sim::RouteCollector*>& collectors,
    core::IngestOptions options) {
  driver.attach(options);
  return core::ingest_collectors(collectors, options);
}

}  // namespace bgpcc::analytics
