// AnalysisDriver: runs any set of Passes over the cleaned update stream
// in ONE traversal, in whichever execution mode the workload wants:
//
//   (a) inline — attach(options) installs a per-shard observer into the
//       ingestion engine (core/ingest.h), so every pass observes on the
//       shard-clean worker threads, in parallel, while the stream is
//       being ingested; partial states are merged after the tournament
//       merge. Zero extra traversal, O(shard states) extra memory.
//   (b) sink — sink() returns a StreamingIngestor callback that observes
//       each record in final merged order without materializing the
//       stream: the window-at-a-time configuration for archives larger
//       than RAM.
//   (c) materialized — observe_stream() walks an UpdateStream already in
//       memory (simulator output, tests).
//
// All three modes produce identical reports for every pass honoring the
// Pass contract (pass.h). Typical use:
//
//   analytics::AnalysisDriver driver;
//   auto types = driver.add(analytics::ClassifierPass{});
//   auto comms = driver.add(analytics::CommunityStatsPass{});
//   core::IngestOptions options;
//   options.num_threads = 8;
//   options.cleaning = &cleaning;
//   driver.attach(options);                      // inline mode
//   auto result = core::ingest_mrt_files(archives, options);
//   auto shares = driver.report(types);          // merged + projected
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analytics/pass.h"
#include "core/ingest.h"

namespace bgpcc::analytics {

class AnalysisDriver {
 public:
  AnalysisDriver();
  ~AnalysisDriver();
  AnalysisDriver(const AnalysisDriver&) = delete;
  AnalysisDriver& operator=(const AnalysisDriver&) = delete;

  /// Registers a pass. Call before any observation (attach/sink/observe*);
  /// throws ConfigError afterwards.
  template <Pass P>
  PassHandle<P> add(P pass) {
    ensure_can_add();
    passes_.push_back(
        std::make_unique<detail::PassModel<P>>(std::move(pass)));
    return PassHandle<P>{passes_.size() - 1, this};
  }

  /// Number of registered passes.
  [[nodiscard]] std::size_t size() const { return passes_.size(); }

  /// Inline mode: installs this driver's per-shard observer into
  /// `options` (see core::IngestOptions::shard_observer). The driver must
  /// outlive every ingestion run using `options`. May be combined with
  /// further ingestion runs — states accumulate until report().
  void attach(core::IngestOptions& options);

  /// Sink mode: a callback for StreamingIngestor::finish(sink) observing
  /// every record in final merged order on the caller's thread. Do not
  /// combine with attach() on the same ingestion run — the passes would
  /// observe every record twice.
  [[nodiscard]] std::function<void(core::UpdateRecord&&)> sink();

  /// Observes one record (single-threaded feed).
  void observe(const core::UpdateRecord& record);

  /// Observes a whole materialized stream (simulator output, tests).
  void observe_stream(const core::UpdateStream& stream);

  /// Merges all partial states and projects the pass's report. The first
  /// report() call finalizes the driver: further observation throws
  /// ConfigError (the merged states can no longer absorb records);
  /// reports stay redeemable any number of times.
  template <Pass P>
  [[nodiscard]] ReportOf<P> report(PassHandle<P> handle) {
    const detail::AnyState& state =
        finalized_state(handle.index_, handle.owner_);
    return static_cast<const detail::StateModel<P>&>(state).state().report();
  }

 private:
  void ensure_can_add() const;
  void ensure_states();
  void observe_shard(std::size_t shard,
                     const std::vector<core::SeqRecord>& records);
  [[nodiscard]] const detail::AnyState& finalized_state(std::size_t index,
                                                        const void* owner);

  std::vector<std::unique_ptr<detail::AnyPass>> passes_;
  /// states_[shard][pass]; shard slot 0 doubles as the sink/observe slot
  /// (any partition of the observations merges to the same final state —
  /// the Pass contract).
  std::vector<std::vector<std::unique_ptr<detail::AnyState>>> states_;
  std::vector<std::unique_ptr<detail::AnyState>> final_;
  bool finalized_ = false;
};

/// One-call inline analysis over archive files: attaches `driver` to a
/// copy of `options`, ingests every archive through the parallel engine
/// (passes observe on the shard threads), and returns the IngestResult —
/// stream included, so callers needing both the records and the reports
/// still traverse the input once.
[[nodiscard]] core::IngestResult analyze_mrt_files(
    AnalysisDriver& driver,
    const std::map<std::string, std::vector<std::string>>& archives,
    core::IngestOptions options = {});

/// Same, over simulated collectors (the in-simulator workload).
[[nodiscard]] core::IngestResult analyze_collectors(
    AnalysisDriver& driver,
    const std::vector<const sim::RouteCollector*>& collectors,
    core::IngestOptions options = {});

}  // namespace bgpcc::analytics
