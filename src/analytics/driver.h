// AnalysisDriver: runs any set of Passes over the cleaned update stream
// in ONE traversal, in whichever execution mode the workload wants:
//
//   (a) inline — attach(options) installs a per-shard observer into the
//       ingestion engine (core/ingest.h), so every pass observes on the
//       shard-clean worker threads, in parallel, while the stream is
//       being ingested; partial states are merged after the tournament
//       merge. Zero extra traversal, O(shard states) extra memory.
//   (b) sink — sink() returns a StreamingIngestor callback that observes
//       each record in final merged order without materializing the
//       stream: the window-at-a-time configuration for archives larger
//       than RAM.
//   (c) materialized — observe_stream() walks an UpdateStream already in
//       memory (simulator output, tests).
//
// All three modes produce identical reports for every pass honoring the
// Pass contract (pass.h). Typical use:
//
//   analytics::AnalysisDriver driver;
//   auto types = driver.add(analytics::ClassifierPass{});
//   auto comms = driver.add(analytics::CommunityStatsPass{});
//   core::IngestOptions options;
//   options.num_threads = 8;
//   options.cleaning = &cleaning;
//   driver.attach(options);                      // inline mode
//   auto result = core::ingest_mrt_files(archives, options);
//   auto shares = driver.report(types);          // merged + projected
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analytics/pass.h"
#include "core/ingest.h"

namespace bgpcc::analytics {

/// Runs any set of Passes over the cleaned update stream in one
/// traversal — inline on the shard workers, as a streaming sink, or over
/// a materialized stream (see the header comment for the full mode
/// semantics and a usage sketch).
class AnalysisDriver {
 public:
  /// An empty driver: add() passes, then pick an execution mode.
  AnalysisDriver();
  ~AnalysisDriver();
  /// Not copyable: shard states reference the issuing driver.
  AnalysisDriver(const AnalysisDriver&) = delete;
  /// Not copy-assignable (same reason).
  AnalysisDriver& operator=(const AnalysisDriver&) = delete;

  /// Registers a pass. Call before any observation (attach/sink/observe*);
  /// throws ConfigError afterwards.
  template <Pass P>
  PassHandle<P> add(P pass) {
    ensure_can_add();
    passes_.push_back(
        std::make_unique<detail::PassModel<P>>(std::move(pass)));
    return PassHandle<P>{passes_.size() - 1, this};
  }

  /// Number of registered passes.
  [[nodiscard]] std::size_t size() const { return passes_.size(); }

  /// Inline mode: installs this driver's per-shard observer into
  /// `options` (see core::IngestOptions::shard_observer) and sizes the
  /// shard states to `options`' resolved shard count
  /// (core::resolve_shard_count). The driver must outlive every
  /// ingestion run using `options`. May be combined with further
  /// ingestion runs — states accumulate until report() — but every run
  /// must resolve to the same shard count (ConfigError otherwise).
  void attach(core::IngestOptions& options);

  /// Sink mode: a callback for StreamingIngestor::finish(sink) observing
  /// every record in final merged order on the caller's thread. Do not
  /// combine with attach() on the same ingestion run — the passes would
  /// observe every record twice.
  [[nodiscard]] std::function<void(core::UpdateRecord&&)> sink();

  /// Observes one record (single-threaded feed).
  void observe(const core::UpdateRecord& record);

  /// Observes a whole materialized stream (simulator output, tests).
  void observe_stream(const core::UpdateStream& stream);

  /// Merges all partial states and projects the pass's report. The first
  /// report() call finalizes the driver: further observation throws
  /// ConfigError (the merged states can no longer absorb records);
  /// reports stay redeemable any number of times.
  template <Pass P>
  [[nodiscard]] ReportOf<P> report(PassHandle<P> handle) {
    const detail::AnyState& state =
        finalized_state(handle.index_, handle.owner_);
    return static_cast<const detail::StateModel<P>&>(state).state().report();
  }

  // -- Versioned wire codec (analytics/serialize.h) ----------------------
  //
  // Every registered pass must model SerializablePass (all shipped passes
  // do); a non-serializable pass throws ConfigError from any of these.
  // Configuration is never serialized: the reading driver must register
  // the SAME passes, identically configured, in the SAME order — the
  // codec verifies the pass-tag list and throws ConfigError on mismatch.

  /// Finalizes this driver (merges all shard states, like the first
  /// report() call) and writes the merged per-pass states as one
  /// kPartialState block: the `bgpcc-merge` input for split-by-collector
  /// runs. Reports stay redeemable afterwards; further observation
  /// throws ConfigError.
  void save_state(std::ostream& out);

  /// Reads a kPartialState (or kCheckpoint) block and MERGES its states
  /// into this driver, as if this driver had observed those records
  /// itself. Checkpoint shard slots are folded into the sink slot, so
  /// load_state is valid only for combining DISJOINT runs (no session
  /// continues across the boundary) — resuming an interrupted run needs
  /// restore(), which keeps shard fidelity. Callable any number of
  /// times before report().
  void load_state(std::istream& in);

  /// Writes a kCheckpoint block: every per-shard state, shard-faithful,
  /// so a restore()d driver continues per-session streams in the shard
  /// slots that own them. The driver keeps running — checkpointing is a
  /// snapshot, not a finalization. Throws ConfigError once finalized.
  void checkpoint(std::ostream& out);

  /// Same, additionally embedding `ingestor`'s resumable cursor
  /// (core::StreamingIngestor::checkpoint_state) so the paired restore()
  /// re-positions ingestion at the exact window boundary.
  void checkpoint(std::ostream& out, const core::StreamingIngestor& ingestor);

  /// Restores a checkpoint into this driver: every shard state's
  /// evidence is REPLACED by the saved snapshot (anything observed
  /// before the call is discarded — restore first, then ingest). The
  /// same passes must be registered; attach() may already have run (the
  /// resume order is attach → construct ingestor → restore). Throws
  /// ConfigError once finalized. On decode failure the driver is left
  /// unspecified — build a new one.
  void restore(std::istream& in);

  /// Same, additionally restoring the embedded ingest cursor into
  /// `ingestor` (which must be fresh and configured identically — see
  /// core::StreamingIngestor::restore_checkpoint). ConfigError when the
  /// checkpoint carries no cursor.
  void restore(std::istream& in, core::StreamingIngestor& ingestor);

 private:
  void ensure_can_add() const;
  void ensure_states();
  void observe_shard(std::size_t shard,
                     const std::vector<core::SeqRecord>& records);
  /// Merges all shard states into final_ (idempotent).
  void finalize();
  [[nodiscard]] const detail::AnyState& finalized_state(std::size_t index,
                                                        const void* owner);
  void write_tags(serialize::Writer& w) const;
  void check_tags(serialize::Reader& r) const;
  void checkpoint_impl(std::ostream& out,
                       const core::StreamingIngestor* ingestor);
  void restore_impl(std::istream& in, core::StreamingIngestor* ingestor);

  std::vector<std::unique_ptr<detail::AnyPass>> passes_;
  /// How many shard slots ensure_states() mints: attach() pins it to the
  /// ingestion run's resolved shard count, restore_impl() to the
  /// checkpoint's. Defaults to core::kIngestShards for the sink/observe
  /// modes, which only ever touch slot 0.
  std::size_t shard_slots_ = core::kIngestShards;
  /// states_[shard][pass]; shard slot 0 doubles as the sink/observe slot
  /// (any partition of the observations merges to the same final state —
  /// the Pass contract).
  std::vector<std::vector<std::unique_ptr<detail::AnyState>>> states_;
  std::vector<std::unique_ptr<detail::AnyState>> final_;
  bool finalized_ = false;
};

/// One-call inline analysis over archive files: attaches `driver` to a
/// copy of `options`, ingests every archive through the parallel engine
/// (passes observe on the shard threads), and returns the IngestResult —
/// stream included, so callers needing both the records and the reports
/// still traverse the input once.
[[nodiscard]] core::IngestResult analyze_mrt_files(
    AnalysisDriver& driver,
    const std::map<std::string, std::vector<std::string>>& archives,
    core::IngestOptions options = {});

/// Same, over simulated collectors (the in-simulator workload).
[[nodiscard]] core::IngestResult analyze_collectors(
    AnalysisDriver& driver,
    const std::vector<const sim::RouteCollector*>& collectors,
    core::IngestOptions options = {});

}  // namespace bgpcc::analytics
