// AnalysisDriver: runs any set of Passes over the cleaned update stream
// in ONE traversal, in whichever execution mode the workload wants:
//
//   (a) inline — attach(options) installs a per-shard observer into the
//       ingestion engine (core/ingest.h), so every pass observes on the
//       shard-clean worker threads, in parallel, while the stream is
//       being ingested; partial states are merged after the tournament
//       merge. Zero extra traversal, O(shard states) extra memory.
//   (b) sink — sink() returns a StreamingIngestor callback that observes
//       each record in final merged order without materializing the
//       stream: the window-at-a-time configuration for archives larger
//       than RAM.
//   (c) materialized — observe_stream() walks an UpdateStream already in
//       memory (simulator output, tests).
//
// All three modes produce identical reports for every pass honoring the
// Pass contract (pass.h). Typical use:
//
//   analytics::AnalysisDriver driver;
//   auto types = driver.add(analytics::ClassifierPass{});
//   auto comms = driver.add(analytics::CommunityStatsPass{});
//   core::IngestOptions options;
//   options.num_threads = 8;
//   options.cleaning = &cleaning;
//   driver.attach(options);                      // inline mode
//   auto result = core::ingest_mrt_files(archives, options);
//   auto shares = driver.report(types);          // merged + projected
//
// Epoch reporting: snapshot() produces the same projections WITHOUT
// finalizing — it clones every per-shard state under the
// committed-window barrier (attach() wires the engine's
// window_begin/window_commit callbacks to the driver's window mutex, so
// a snapshot never observes a half-applied window or the pipelined N+1
// prefetch) and merges the clones off to the side. Ingestion keeps
// running; each snapshot is an immutable, epoch-numbered view:
//
//   while (ingestor.poll()) {
//     analytics::ReportSnapshot snap = driver.snapshot();
//     serve(snap.epoch(), snap.report(types));   // live view
//   }
//   ingestor.finish();
//   auto final_shares = driver.report(types);    // byte-identical finale
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analytics/pass.h"
#include "core/ingest.h"

namespace bgpcc::analytics {

/// An immutable, epoch-numbered view of every pass's state at one
/// committed-window boundary, produced by AnalysisDriver::snapshot()
/// without finalizing the driver. Redeem the same PassHandles issued by
/// add(); reads are lock-free and the snapshot stays valid after
/// further ingestion, after later snapshots, after report(), and even
/// after the issuing driver is destroyed (the merged states are owned
/// by the snapshot, shared across copies).
class ReportSnapshot {
 public:
  /// An empty snapshot (no driver); report() on it throws ConfigError.
  ReportSnapshot() = default;

  /// Projects `handle`'s pass report from the snapshotted state. The
  /// handle must come from the driver that took this snapshot
  /// (ConfigError otherwise, as for AnalysisDriver::report).
  template <Pass P>
  [[nodiscard]] ReportOf<P> report(PassHandle<P> handle) const {
    const detail::AnyState& state = state_at(handle.index_, handle.owner_);
    return static_cast<const detail::StateModel<P>&>(state).state().report();
  }

  /// The snapshot's epoch: 1 for the issuing driver's first snapshot,
  /// strictly increasing per driver. 0 for an empty snapshot. Epochs
  /// are process-local bookkeeping — they are never serialized and do
  /// not affect checkpoints or reports.
  [[nodiscard]] std::uint64_t epoch() const {
    return data_ != nullptr ? data_->epoch : 0;
  }

  /// Number of pass states captured (the issuing driver's size()).
  [[nodiscard]] std::size_t size() const {
    return data_ != nullptr ? data_->states.size() : 0;
  }

  /// True when this snapshot holds states (i.e. is not default-built).
  [[nodiscard]] explicit operator bool() const { return data_ != nullptr; }

 private:
  friend class AnalysisDriver;
  struct Data {
    const void* owner = nullptr;
    std::uint64_t epoch = 0;
    std::vector<std::unique_ptr<detail::AnyState>> states;
  };
  explicit ReportSnapshot(std::shared_ptr<const Data> data)
      : data_(std::move(data)) {}
  [[nodiscard]] const detail::AnyState& state_at(std::size_t index,
                                                 const void* owner) const;
  std::shared_ptr<const Data> data_;
};

/// Runs any set of Passes over the cleaned update stream in one
/// traversal — inline on the shard workers, as a streaming sink, or over
/// a materialized stream (see the header comment for the full mode
/// semantics and a usage sketch).
class AnalysisDriver {
 public:
  /// An empty driver: add() passes, then pick an execution mode.
  AnalysisDriver();
  ~AnalysisDriver();
  /// Not copyable: shard states reference the issuing driver.
  AnalysisDriver(const AnalysisDriver&) = delete;
  /// Not copy-assignable (same reason).
  AnalysisDriver& operator=(const AnalysisDriver&) = delete;

  /// Registers a pass. Call before any observation (attach/sink/observe*);
  /// throws ConfigError afterwards.
  template <Pass P>
  [[nodiscard]] PassHandle<P> add(P pass) {
    ensure_can_add();
    passes_.push_back(
        std::make_unique<detail::PassModel<P>>(std::move(pass)));
    return PassHandle<P>{passes_.size() - 1, this};
  }

  /// Number of registered passes.
  [[nodiscard]] std::size_t size() const { return passes_.size(); }

  /// Inline mode: installs this driver's per-shard observer into
  /// `options` (see core::IngestOptions::shard_observer) and sizes the
  /// shard states to `options`' resolved shard count
  /// (core::resolve_shard_count). Also wires the engine's
  /// committed-window barrier (core::IngestOptions::window_begin /
  /// window_commit) to this driver, so snapshot() from any thread
  /// serializes against in-flight window observation. The driver must
  /// outlive every ingestion run using `options`. May be combined with
  /// further ingestion runs — states accumulate until report() — but
  /// every run must resolve to the same shard count (ConfigError
  /// otherwise).
  void attach(core::IngestOptions& options);

  /// Sink mode: a callback for StreamingIngestor::finish(sink) observing
  /// every record in final merged order on the caller's thread. Do not
  /// combine with attach() on the same ingestion run — the passes would
  /// observe every record twice.
  [[nodiscard]] std::function<void(core::UpdateRecord&&)> sink();

  /// Observes one record (single-threaded feed).
  void observe(const core::UpdateRecord& record);

  /// Observes a whole materialized stream (simulator output, tests).
  void observe_stream(const core::UpdateStream& stream);

  /// Takes an immutable, epoch-numbered snapshot of every pass's state
  /// WITHOUT finalizing: clones all per-shard states under the
  /// committed-window barrier, then merges the clones off to the side
  /// (the driver's own states are never touched beyond the copy).
  /// Ingestion may continue afterwards; the snapshot equals what
  /// report() would return on an independent run truncated at the same
  /// committed window, byte for byte. Safe to call from a thread other
  /// than the ingesting one when the driver is attach()ed — the barrier
  /// guarantees the snapshot lands exactly on a window boundary, never
  /// inside a half-applied window or the pipelined N+1 prefetch.
  /// Throws ConfigError once finalized.
  [[nodiscard]] ReportSnapshot snapshot();

  /// Merges all partial states and projects the pass's report. The first
  /// report() call finalizes the driver — internally a snapshot() whose
  /// result is adopted as the final state, so report-after-snapshots is
  /// byte-identical to report-without-snapshots. Further observation
  /// throws ConfigError (the merged states can no longer absorb
  /// records); reports stay redeemable any number of times.
  template <Pass P>
  [[nodiscard]] ReportOf<P> report(PassHandle<P> handle) {
    const detail::AnyState& state =
        finalized_state(handle.index_, handle.owner_);
    return static_cast<const detail::StateModel<P>&>(state).state().report();
  }

  // -- Versioned wire codec (analytics/serialize.h) ----------------------
  //
  // Every registered pass must model SerializablePass (all shipped passes
  // do); a non-serializable pass throws ConfigError from any of these.
  // Configuration is never serialized: the reading driver must register
  // the SAME passes, identically configured, in the SAME order — the
  // codec verifies the pass-tag list and throws ConfigError on mismatch.

  /// Finalizes this driver (merges all shard states, like the first
  /// report() call) and writes the merged per-pass states as one
  /// kPartialState block: the `bgpcc-merge` input for split-by-collector
  /// runs. Reports stay redeemable afterwards; further observation
  /// throws ConfigError.
  void save_state(std::ostream& out);

  /// Reads a kPartialState (or kCheckpoint) block and MERGES its states
  /// into this driver, as if this driver had observed those records
  /// itself. Checkpoint shard slots are folded into the sink slot, so
  /// load_state is valid only for combining DISJOINT runs (no session
  /// continues across the boundary) — resuming an interrupted run needs
  /// restore(), which keeps shard fidelity. Callable any number of
  /// times before report().
  void load_state(std::istream& in);

  /// Writes a kCheckpoint block: every per-shard state, shard-faithful,
  /// so a restore()d driver continues per-session streams in the shard
  /// slots that own them. The driver keeps running — checkpointing is a
  /// snapshot, not a finalization. Throws ConfigError once finalized.
  void checkpoint(std::ostream& out);

  /// Same, additionally embedding `ingestor`'s resumable cursor
  /// (core::StreamingIngestor::checkpoint_state) so the paired restore()
  /// re-positions ingestion at the exact window boundary.
  void checkpoint(std::ostream& out, const core::StreamingIngestor& ingestor);

  /// Restores a checkpoint into this driver: every shard state's
  /// evidence is REPLACED by the saved snapshot (anything observed
  /// before the call is discarded — restore first, then ingest). The
  /// same passes must be registered; attach() may already have run (the
  /// resume order is attach → construct ingestor → restore). Throws
  /// ConfigError once finalized. On decode failure the driver is left
  /// unspecified — build a new one.
  void restore(std::istream& in);

  /// Same, additionally restoring the embedded ingest cursor into
  /// `ingestor` (which must be fresh and configured identically — see
  /// core::StreamingIngestor::restore_checkpoint). ConfigError when the
  /// checkpoint carries no cursor.
  void restore(std::istream& in, core::StreamingIngestor& ingestor);

 private:
  void ensure_can_add() const;
  /// Mints the per-shard state matrix if absent. Caller must hold
  /// window_mutex_ (or be in the single-threaded registration phase) and
  /// must have rejected the finalized case already.
  void ensure_states();
  void observe_shard(std::size_t shard,
                     const std::vector<core::SeqRecord>& records);
  /// Uniform use-after-finalize error, naming the offending call.
  [[noreturn]] void throw_finalized(const char* call) const;
  /// Adopts a final snapshot and clears the live states (idempotent).
  void finalize();
  [[nodiscard]] const detail::AnyState& finalized_state(std::size_t index,
                                                        const void* owner);
  void write_tags(serialize::Writer& w) const;
  void check_tags(serialize::Reader& r) const;
  void checkpoint_impl(std::ostream& out,
                       const core::StreamingIngestor* ingestor);
  void restore_impl(std::istream& in, core::StreamingIngestor* ingestor);

  std::vector<std::unique_ptr<detail::AnyPass>> passes_;
  /// How many shard slots ensure_states() mints: attach() pins it to the
  /// ingestion run's resolved shard count, restore_impl() to the
  /// checkpoint's. Defaults to core::kIngestShards for the sink/observe
  /// modes, which only ever touch slot 0.
  std::size_t shard_slots_ = core::kIngestShards;
  /// states_[shard][pass]; shard slot 0 doubles as the sink/observe slot
  /// (any partition of the observations merges to the same final state —
  /// the Pass contract).
  std::vector<std::vector<std::unique_ptr<detail::AnyState>>> states_;
  /// The committed-window barrier: held by the engine for the whole
  /// observer phase of each window (attach() wires window_begin /
  /// window_commit to lock/unlock), by snapshot() while cloning, and by
  /// the sink/observe paths while folding records in. Everything the
  /// barrier guards is the states_ matrix + the lifecycle flags.
  mutable std::mutex window_mutex_;
  /// Epochs handed out by snapshot(); process-local, never serialized.
  std::uint64_t epochs_ = 0;
  /// The finalizing snapshot adopted by the first report()/save_state().
  ReportSnapshot final_;
  bool finalized_ = false;
};

/// One-call inline analysis over archive files: attaches `driver` to a
/// copy of `options`, ingests every archive through the parallel engine
/// (passes observe on the shard threads), and returns the IngestResult —
/// stream included, so callers needing both the records and the reports
/// still traverse the input once.
[[nodiscard]] core::IngestResult analyze_mrt_files(
    AnalysisDriver& driver,
    const std::map<std::string, std::vector<std::string>>& archives,
    core::IngestOptions options = {});

/// Same, over simulated collectors (the in-simulator workload).
[[nodiscard]] core::IngestResult analyze_collectors(
    AnalysisDriver& driver,
    const std::vector<const sim::RouteCollector*>& collectors,
    core::IngestOptions options = {});

}  // namespace bgpcc::analytics
