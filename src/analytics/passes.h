// The shipped analysis passes: the paper's §5 classifier and per-AS
// tomography ported onto the Pass interface, plus the Table-1/Figure-4
// community-attribute statistics and the duplicate (nn) burst
// attribution the §5 "manual check" calls for. Every pass honors the
// Pass contract (pass.h): state depends only on the record multiset and
// per-session order, so inline-parallel, streaming-sink, and
// materialized execution report identically.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analytics/pass.h"
#include "core/anomaly.h"
#include "core/beacon.h"
#include "core/classifier.h"
#include "core/stream.h"
#include "core/tomography.h"

namespace bgpcc::analytics {

/// §5 announcement-type classification (Table 2, Figure 2): wraps
/// core::Classifier; shard states merge because every (session, prefix)
/// stream lives in exactly one shard.
class ClassifierPass {
 public:
  struct Report {
    core::TypeCounts counts;
    /// Distinct (session, prefix) streams seen.
    std::uint64_t streams = 0;
    friend bool operator==(const Report&, const Report&) = default;
  };

  class State {
   public:
    void observe(const core::UpdateRecord& record) {
      classifier_.classify(record);
    }
    void merge(State&& other) {
      classifier_.merge(std::move(other.classifier_));
    }
    [[nodiscard]] Report report() const {
      return Report{classifier_.counts(), classifier_.stream_count()};
    }

   private:
    core::Classifier classifier_;
  };

  [[nodiscard]] State make_state() const { return {}; }
};

/// Figure 3: per-session type tallies, optionally restricted to one
/// prefix. report() projects through core::rank_session_types, so the
/// ranking is byte-identical to the legacy per_session_types path.
class PerSessionTypesPass {
 public:
  PerSessionTypesPass() = default;
  explicit PerSessionTypesPass(Prefix only_prefix)
      : only_prefix_(only_prefix) {}

  using Report = std::vector<std::pair<core::SessionKey, core::TypeCounts>>;

  class State {
   public:
    explicit State(std::optional<Prefix> only_prefix)
        : only_prefix_(only_prefix) {}
    void observe(const core::UpdateRecord& record);
    void merge(State&& other);
    [[nodiscard]] Report report() const {
      return core::rank_session_types(classifiers_);
    }

   private:
    std::optional<Prefix> only_prefix_;
    std::map<core::SessionKey, core::Classifier> classifiers_;
  };

  [[nodiscard]] State make_state() const { return State{only_prefix_}; }

 private:
  std::optional<Prefix> only_prefix_;
};

/// §7 per-AS community-behavior tomography (core/tomography) as a Pass:
/// evidence counters sum across shards; thresholds apply at report().
class TomographyPass {
 public:
  TomographyPass() = default;
  explicit TomographyPass(core::TomographyOptions options)
      : options_(options) {}

  using Report = std::vector<core::AsEvidence>;

  class State {
   public:
    explicit State(const core::TomographyOptions& options)
        : options_(options) {}
    void observe(const core::UpdateRecord& record) {
      core::accumulate_community_evidence(record, evidence_);
    }
    void merge(State&& other);
    [[nodiscard]] Report report() const {
      return core::finalize_community_behavior(evidence_, options_);
    }

   private:
    core::TomographyOptions options_;
    std::map<Asn, core::AsEvidence> evidence_;
  };

  [[nodiscard]] State make_state() const { return State{options_}; }

 private:
  core::TomographyOptions options_;
};

/// Community-attribute statistics (Table 1's community rows, Figure 4's
/// namespace exploration): distinct community values per 16-bit AS
/// namespace and the communities-per-announcement distribution.
class CommunityStatsPass {
 public:
  /// Announcements carrying >= histogram_buckets-1 communities land in
  /// the last (overflow) bucket.
  explicit CommunityStatsPass(std::size_t histogram_buckets = 17)
      : histogram_buckets_(histogram_buckets < 2 ? 2 : histogram_buckets) {}

  struct NamespaceCount {
    std::uint16_t asn16 = 0;
    std::uint64_t distinct_values = 0;
    friend bool operator==(const NamespaceCount&,
                           const NamespaceCount&) = default;
  };

  struct Report {
    std::uint64_t announcements = 0;
    std::uint64_t withdrawals = 0;
    /// Announcements carrying at least one community.
    std::uint64_t with_communities = 0;
    /// Sum of community-attribute sizes over all announcements.
    std::uint64_t community_occurrences = 0;
    /// Distinct 32-bit community values seen.
    std::uint64_t unique_communities = 0;
    /// Distinct values per namespace, sorted by count desc, asn16 asc.
    std::vector<NamespaceCount> namespaces;
    /// histogram[k] = announcements carrying exactly k communities
    /// (last bucket: >= size-1).
    std::vector<std::uint64_t> communities_per_announcement;
    [[nodiscard]] double mean_communities() const {
      return announcements == 0
                 ? 0.0
                 : static_cast<double>(community_occurrences) /
                       static_cast<double>(announcements);
    }
    [[nodiscard]] double share_with_communities() const {
      return announcements == 0
                 ? 0.0
                 : static_cast<double>(with_communities) /
                       static_cast<double>(announcements);
    }
    friend bool operator==(const Report&, const Report&) = default;
  };

  class State {
   public:
    explicit State(std::size_t histogram_buckets)
        : histogram_(histogram_buckets, 0) {}
    void observe(const core::UpdateRecord& record);
    void merge(State&& other);
    [[nodiscard]] Report report() const;

   private:
    std::unordered_set<std::uint32_t> values_;
    std::vector<std::uint64_t> histogram_;
    std::uint64_t announcements_ = 0;
    std::uint64_t withdrawals_ = 0;
    std::uint64_t with_communities_ = 0;
    std::uint64_t occurrences_ = 0;
  };

  [[nodiscard]] State make_state() const { return State{histogram_buckets_}; }

 private:
  std::size_t histogram_buckets_;
};

/// Knobs for duplicate-burst attribution.
struct DuplicateBurstOptions {
  /// Consecutive attribute-identical (nn) announcements on one
  /// (session, prefix) stream that constitute a burst. Withdrawals do not
  /// break a run (matching the classifier: they don't reset comparison
  /// state, and Figure 5's duplicates straddle withdrawal phases).
  std::uint64_t min_run = 3;
};

/// Duplicate (nn) burst attribution: which sessions emit the paper's
/// attribute-identical duplicates, and in what run lengths — the
/// session-level evidence behind the Figure-2 footnote's mid-2012 burst
/// and Figure 5's cleaned-then-re-announced duplicates.
class DuplicateBurstPass {
 public:
  DuplicateBurstPass() = default;
  explicit DuplicateBurstPass(DuplicateBurstOptions options)
      : options_(options) {}

  struct SessionDuplicates {
    core::SessionKey session;
    /// Announcements with a predecessor on their stream.
    std::uint64_t classified = 0;
    std::uint64_t nn = 0;
    /// Runs of >= min_run consecutive nn announcements.
    std::uint64_t bursts = 0;
    std::uint64_t longest_run = 0;
    [[nodiscard]] double nn_share() const {
      return classified == 0 ? 0.0
                             : static_cast<double>(nn) /
                                   static_cast<double>(classified);
    }
    friend bool operator==(const SessionDuplicates&,
                           const SessionDuplicates&) = default;
  };

  struct Report {
    std::uint64_t classified = 0;
    std::uint64_t nn = 0;
    std::uint64_t bursts = 0;
    /// Sorted by nn count desc, session asc (total order: stable across
    /// platforms).
    std::vector<SessionDuplicates> sessions;
    friend bool operator==(const Report&, const Report&) = default;
  };

  class State {
   public:
    explicit State(const DuplicateBurstOptions& options)
        : options_(options) {}
    void observe(const core::UpdateRecord& record);
    void merge(State&& other);
    [[nodiscard]] Report report() const;

   private:
    struct StreamState {
      AsPath path;
      CommunitySet communities;
      std::uint64_t run = 0;
    };
    struct Tally {
      std::uint64_t classified = 0;
      std::uint64_t nn = 0;
      std::uint64_t bursts = 0;
      std::uint64_t longest_run = 0;
    };
    DuplicateBurstOptions options_;
    std::map<std::pair<core::SessionKey, Prefix>, StreamState> streams_;
    std::map<core::SessionKey, Tally> tallies_;
  };

  [[nodiscard]] State make_state() const { return State{options_}; }

 private:
  DuplicateBurstOptions options_;
};

/// §7 anomaly detection (core/anomaly) as a Pass: per-session classifier
/// tallies plus the bucketed novelty evidence accumulate per shard;
/// merge sums both; the leave-one-out sigma scoring and burst-episode
/// scan run once in report(). Streaming-windowed by construction — the
/// per-shard state carries across window cuts, so multi-month compressed
/// archives get the same report as a materialized batch.
class AnomalyPass {
 public:
  AnomalyPass() { validate_options(options_); }
  explicit AnomalyPass(core::AnomalyOptions options) : options_(options) {
    validate_options(options_);
  }

  using Report = core::AnomalyReport;

  class State {
   public:
    explicit State(const core::AnomalyOptions& options) : options_(options) {}
    void observe(const core::UpdateRecord& record);
    void merge(State&& other);
    [[nodiscard]] Report report() const;

   private:
    core::AnomalyOptions options_;
    std::map<core::SessionKey, core::Classifier> classifiers_;
    core::NoveltyEvidence novelty_;
  };

  [[nodiscard]] State make_state() const { return State{options_}; }

 private:
  static void validate_options(const core::AnomalyOptions& options);
  core::AnomalyOptions options_;
};

/// §6 revealed information (Figure 6) as a Pass: per-attribute phase
/// buckets keyed on the full CommunitySet value; buckets OR under merge.
/// The schedule is validated at construction (ConfigError), so a
/// misconfiguration fails on the caller's thread before any ingestion
/// worker runs.
class RevealedPass {
 public:
  RevealedPass() { schedule_.validate(); }
  explicit RevealedPass(core::BeaconSchedule schedule) : schedule_(schedule) {
    schedule_.validate();
  }

  using Report = core::RevealedStats;

  class State {
   public:
    explicit State(const core::BeaconSchedule& schedule)
        : schedule_(schedule) {}
    void observe(const core::UpdateRecord& record) {
      core::accumulate_revealed(record, schedule_, evidence_);
    }
    void merge(State&& other) {
      core::merge_revealed(evidence_, std::move(other.evidence_));
    }
    [[nodiscard]] Report report() const {
      return core::finalize_revealed(evidence_);
    }

   private:
    core::BeaconSchedule schedule_;
    core::RevealedEvidence evidence_;
  };

  [[nodiscard]] State make_state() const { return State{schedule_}; }

 private:
  core::BeaconSchedule schedule_;
};

/// §6 community exploration (Figure 4) as a Pass: per-(session, prefix)
/// run state that legally carries across window cuts — each stream lives
/// wholly inside one shard and the engine preserves per-session order,
/// exactly the invariant cleaning::SecondCarry relies on for §4.
/// report() flushes still-active runs and sorts all events by
/// (begin, session, prefix), matching find_community_exploration.
class ExplorationPass {
 public:
  ExplorationPass() { schedule_.validate(); }
  explicit ExplorationPass(core::BeaconSchedule schedule)
      : schedule_(schedule) {
    schedule_.validate();
  }

  using Report = std::vector<core::ExplorationEvent>;

  class State {
   public:
    explicit State(const core::BeaconSchedule& schedule)
        : schedule_(schedule) {}
    void observe(const core::UpdateRecord& record) {
      core::observe_exploration(record, schedule_, runs_, events_);
    }
    void merge(State&& other);
    [[nodiscard]] Report report() const;

   private:
    core::BeaconSchedule schedule_;
    core::ExplorationRuns runs_;
    std::vector<core::ExplorationEvent> events_;
  };

  [[nodiscard]] State make_state() const { return State{schedule_}; }

 private:
  core::BeaconSchedule schedule_;
};

/// Per-AS community usage classification (Krenc et al., IMC 2021) as a
/// Pass: layers the usage heuristics over CommunityStatsPass-style
/// per-value evidence — occurrence counts per 32-bit value plus the
/// sessions carrying each 16-bit namespace.
class UsageClassificationPass {
 public:
  UsageClassificationPass() = default;
  explicit UsageClassificationPass(core::UsageOptions options)
      : options_(options) {}

  using Report = std::vector<core::AsUsage>;

  class State {
   public:
    explicit State(const core::UsageOptions& options) : options_(options) {}
    void observe(const core::UpdateRecord& record) {
      core::accumulate_usage(record, evidence_);
    }
    void merge(State&& other) {
      core::merge_usage(evidence_, std::move(other.evidence_));
    }
    [[nodiscard]] Report report() const {
      return core::finalize_usage(evidence_, options_);
    }

   private:
    core::UsageOptions options_;
    core::UsageEvidence evidence_;
  };

  [[nodiscard]] State make_state() const { return State{options_}; }

 private:
  core::UsageOptions options_;
};

}  // namespace bgpcc::analytics
