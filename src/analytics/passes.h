// The shipped analysis passes: the paper's §5 classifier and per-AS
// tomography ported onto the Pass interface, plus the Table-1/Figure-4
// community-attribute statistics and the duplicate (nn) burst
// attribution the §5 "manual check" calls for. Every pass honors the
// Pass contract (pass.h): state depends only on the record multiset and
// per-session order, so inline-parallel, streaming-sink, and
// materialized execution report identically.
//
// All nine States also honor the snapshot contract (pass.h): every
// member is value-semantic (std::map / unordered_set / vector /
// optional over core evidence structs that are themselves plain value
// containers), so the implicit copy constructor is a faithful deep copy
// with no shared mutable structure, and its cost is linear in the
// evidence size — each State's doc comment below states that bound.
// That is what lets AnalysisDriver::snapshot clone shard states under
// the committed-window barrier without stalling ingestion.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analytics/pass.h"
#include "core/anomaly.h"
#include "core/beacon.h"
#include "core/classifier.h"
#include "core/stream.h"
#include "core/tomography.h"

namespace bgpcc::analytics {

/// §5 announcement-type classification (Table 2, Figure 2): wraps
/// core::Classifier; shard states merge because every (session, prefix)
/// stream lives in exactly one shard.
class ClassifierPass {
 public:
  /// Wire tag (serialize::PassTag::kClassifier).
  static constexpr std::uint16_t kStateTag = 1;

  /// The projected result: global type tallies plus stream count.
  struct Report {
    /// Per-announcement-type tallies (Table 2's rows).
    core::TypeCounts counts;
    /// Distinct (session, prefix) streams seen.
    std::uint64_t streams = 0;
    /// Field-wise equality.
    friend bool operator==(const Report&, const Report&) = default;
  };

  /// Per-shard classifier state (see the Pass contract in pass.h).
  /// Copy cost (snapshot contract): O(streams) — one map entry per
  /// (session, prefix) stream plus fixed counters.
  class State {
   public:
    /// Classifies one cleaned record into its announcement type.
    void observe(const core::UpdateRecord& record) {
      classifier_.classify(record);
    }
    /// Folds another shard's classifier into this one.
    void merge(State&& other) {
      classifier_.merge(std::move(other.classifier_));
    }
    /// Projects the merged tallies.
    [[nodiscard]] Report report() const {
      return Report{classifier_.counts(), classifier_.stream_count()};
    }
    /// Serializes the classifier evidence (analytics/serialize.h).
    void save(serialize::Writer& writer) const;
    /// Restores saved classifier evidence (analytics/serialize.h).
    void load(serialize::Reader& reader);

   private:
    core::Classifier classifier_;
  };

  /// Mints one empty per-shard state.
  [[nodiscard]] State make_state() const { return {}; }
};

/// Figure 3: per-session type tallies, optionally restricted to one
/// prefix. report() projects through core::rank_session_types, so the
/// ranking is byte-identical to the legacy per_session_types path.
class PerSessionTypesPass {
 public:
  /// Tallies every (session, prefix) stream.
  PerSessionTypesPass() = default;
  /// Tallies only records for `only_prefix` (the Figure 3 beacon view).
  explicit PerSessionTypesPass(Prefix only_prefix)
      : only_prefix_(only_prefix) {}

  /// Wire tag (serialize::PassTag::kPerSessionTypes).
  static constexpr std::uint16_t kStateTag = 2;

  /// Sessions ranked by core::rank_session_types.
  using Report = std::vector<std::pair<core::SessionKey, core::TypeCounts>>;

  /// Per-shard map of session → classifier (see pass.h for the contract).
  /// Copy cost (snapshot contract): O(sessions + streams) — one
  /// classifier per session, each holding its streams' cursors.
  class State {
   public:
    /// Binds the state to the pass's optional prefix filter.
    explicit State(std::optional<Prefix> only_prefix)
        : only_prefix_(only_prefix) {}
    /// Classifies one record into its session's tally (filter applied).
    void observe(const core::UpdateRecord& record);
    /// Folds another shard's per-session classifiers into this one.
    void merge(State&& other);
    /// Projects the ranked per-session tallies.
    [[nodiscard]] Report report() const {
      return core::rank_session_types(classifiers_);
    }
    /// Serializes the per-session evidence (analytics/serialize.h). The
    /// prefix filter is configuration, not evidence: the loading side
    /// constructs the pass with the same only_prefix.
    void save(serialize::Writer& writer) const;
    /// Restores saved per-session evidence (analytics/serialize.h).
    void load(serialize::Reader& reader);

   private:
    std::optional<Prefix> only_prefix_;
    std::map<core::SessionKey, core::Classifier> classifiers_;
  };

  /// Mints one per-shard state carrying the prefix filter.
  [[nodiscard]] State make_state() const { return State{only_prefix_}; }

 private:
  std::optional<Prefix> only_prefix_;
};

/// §7 per-AS community-behavior tomography (core/tomography) as a Pass:
/// evidence counters sum across shards; thresholds apply at report().
class TomographyPass {
 public:
  /// Default thresholds (core::TomographyOptions).
  TomographyPass() = default;
  /// Custom inference thresholds.
  explicit TomographyPass(core::TomographyOptions options)
      : options_(options) {}

  /// Wire tag (serialize::PassTag::kTomography).
  static constexpr std::uint16_t kStateTag = 3;

  /// Per-AS behavior evidence, finalized through the thresholds.
  using Report = std::vector<core::AsEvidence>;

  /// Per-shard evidence counters (see pass.h for the contract).
  /// Copy cost (snapshot contract): O(ASes) — one fixed-size evidence
  /// struct per observed AS.
  class State {
   public:
    /// Binds the state to the pass's thresholds.
    explicit State(const core::TomographyOptions& options)
        : options_(options) {}
    /// Accumulates one record's community evidence.
    void observe(const core::UpdateRecord& record) {
      core::accumulate_community_evidence(record, evidence_);
    }
    /// Sums another shard's evidence counters into this one.
    void merge(State&& other);
    /// Applies the thresholds and projects per-AS behavior labels.
    [[nodiscard]] Report report() const {
      return core::finalize_community_behavior(evidence_, options_);
    }
    /// Serializes the evidence counters (analytics/serialize.h).
    /// Thresholds are configuration: only the counters travel.
    void save(serialize::Writer& writer) const;
    /// Restores saved evidence counters (analytics/serialize.h).
    void load(serialize::Reader& reader);

   private:
    core::TomographyOptions options_;
    std::map<Asn, core::AsEvidence> evidence_;
  };

  /// Mints one per-shard state carrying the thresholds.
  [[nodiscard]] State make_state() const { return State{options_}; }

 private:
  core::TomographyOptions options_;
};

/// Community-attribute statistics (Table 1's community rows, Figure 4's
/// namespace exploration): distinct community values per 16-bit AS
/// namespace and the communities-per-announcement distribution.
class CommunityStatsPass {
 public:
  /// Announcements carrying >= histogram_buckets-1 communities land in
  /// the last (overflow) bucket.
  explicit CommunityStatsPass(std::size_t histogram_buckets = 17)
      : histogram_buckets_(histogram_buckets < 2 ? 2 : histogram_buckets) {}

  /// Wire tag (serialize::PassTag::kCommunityStats).
  static constexpr std::uint16_t kStateTag = 4;

  /// Distinct community values attributed to one 16-bit AS namespace.
  struct NamespaceCount {
    /// The namespace: the high 16 bits of the community value.
    std::uint16_t asn16 = 0;
    /// Distinct 32-bit community values seen under this namespace.
    std::uint64_t distinct_values = 0;
    /// Field-wise equality.
    friend bool operator==(const NamespaceCount&,
                           const NamespaceCount&) = default;
  };

  /// The projected community-attribute statistics.
  struct Report {
    /// Announcements observed.
    std::uint64_t announcements = 0;
    /// Withdrawals observed.
    std::uint64_t withdrawals = 0;
    /// Announcements carrying at least one community.
    std::uint64_t with_communities = 0;
    /// Sum of community-attribute sizes over all announcements.
    std::uint64_t community_occurrences = 0;
    /// Distinct 32-bit community values seen.
    std::uint64_t unique_communities = 0;
    /// Distinct values per namespace, sorted by count desc, asn16 asc.
    std::vector<NamespaceCount> namespaces;
    /// histogram[k] = announcements carrying exactly k communities
    /// (last bucket: >= size-1).
    std::vector<std::uint64_t> communities_per_announcement;
    /// Mean communities per announcement (0 when no announcements).
    [[nodiscard]] double mean_communities() const {
      return announcements == 0
                 ? 0.0
                 : static_cast<double>(community_occurrences) /
                       static_cast<double>(announcements);
    }
    /// Share of announcements carrying at least one community.
    [[nodiscard]] double share_with_communities() const {
      return announcements == 0
                 ? 0.0
                 : static_cast<double>(with_communities) /
                       static_cast<double>(announcements);
    }
    /// Field-wise equality.
    friend bool operator==(const Report&, const Report&) = default;
  };

  /// Per-shard value set + histogram (see pass.h for the contract).
  /// Copy cost (snapshot contract): O(distinct community values) plus
  /// the fixed-size histogram.
  class State {
   public:
    /// Sizes the histogram to the pass's configured bucket count.
    explicit State(std::size_t histogram_buckets)
        : histogram_(histogram_buckets, 0) {}
    /// Accumulates one record's community attribute.
    void observe(const core::UpdateRecord& record);
    /// Unions value sets and sums histograms/counters.
    void merge(State&& other);
    /// Projects the merged statistics.
    [[nodiscard]] Report report() const;
    /// Serializes the value set, histogram, and counters
    /// (analytics/serialize.h).
    void save(serialize::Writer& writer) const;
    /// Restores saved statistics (analytics/serialize.h). Rejects
    /// (ConfigError) a saved histogram whose bucket count differs from
    /// this state's configuration — merging mismatched histograms would
    /// index out of bounds.
    void load(serialize::Reader& reader);

   private:
    std::unordered_set<std::uint32_t> values_;
    std::vector<std::uint64_t> histogram_;
    std::uint64_t announcements_ = 0;
    std::uint64_t withdrawals_ = 0;
    std::uint64_t with_communities_ = 0;
    std::uint64_t occurrences_ = 0;
  };

  /// Mints one per-shard state with the configured histogram size.
  [[nodiscard]] State make_state() const { return State{histogram_buckets_}; }

 private:
  std::size_t histogram_buckets_;
};

/// Knobs for duplicate-burst attribution.
struct DuplicateBurstOptions {
  /// Consecutive attribute-identical (nn) announcements on one
  /// (session, prefix) stream that constitute a burst. Withdrawals do not
  /// break a run (matching the classifier: they don't reset comparison
  /// state, and Figure 5's duplicates straddle withdrawal phases).
  std::uint64_t min_run = 3;
};

/// Duplicate (nn) burst attribution: which sessions emit the paper's
/// attribute-identical duplicates, and in what run lengths — the
/// session-level evidence behind the Figure-2 footnote's mid-2012 burst
/// and Figure 5's cleaned-then-re-announced duplicates.
class DuplicateBurstPass {
 public:
  /// Default burst threshold (DuplicateBurstOptions).
  DuplicateBurstPass() = default;
  /// Custom burst threshold.
  explicit DuplicateBurstPass(DuplicateBurstOptions options)
      : options_(options) {}

  /// Wire tag (serialize::PassTag::kDuplicateBurst).
  static constexpr std::uint16_t kStateTag = 5;

  /// One session's duplicate evidence.
  struct SessionDuplicates {
    /// The emitting session.
    core::SessionKey session;
    /// Announcements with a predecessor on their stream.
    std::uint64_t classified = 0;
    /// Attribute-identical (nn) announcements.
    std::uint64_t nn = 0;
    /// Runs of >= min_run consecutive nn announcements.
    std::uint64_t bursts = 0;
    /// Longest consecutive nn run observed.
    std::uint64_t longest_run = 0;
    /// nn announcements as a share of classified ones (0 when none).
    [[nodiscard]] double nn_share() const {
      return classified == 0 ? 0.0
                             : static_cast<double>(nn) /
                                   static_cast<double>(classified);
    }
    /// Field-wise equality.
    friend bool operator==(const SessionDuplicates&,
                           const SessionDuplicates&) = default;
  };

  /// Global totals plus the per-session ranking.
  struct Report {
    /// Announcements with a predecessor on their stream, all sessions.
    std::uint64_t classified = 0;
    /// Attribute-identical (nn) announcements, all sessions.
    std::uint64_t nn = 0;
    /// Bursts (runs of >= min_run), all sessions.
    std::uint64_t bursts = 0;
    /// Sorted by nn count desc, session asc (total order: stable across
    /// platforms).
    std::vector<SessionDuplicates> sessions;
    /// Field-wise equality.
    friend bool operator==(const Report&, const Report&) = default;
  };

  /// Per-shard run cursors + per-session tallies (see pass.h).
  /// Copy cost (snapshot contract): O(streams + sessions) — per-stream
  /// attribute cursors (AS path + communities) and per-session tallies.
  class State {
   public:
    /// Binds the state to the pass's burst threshold.
    explicit State(const DuplicateBurstOptions& options)
        : options_(options) {}
    /// Advances the record's stream cursor and session tally.
    void observe(const core::UpdateRecord& record);
    /// Folds another shard's cursors and tallies into this one.
    void merge(State&& other);
    /// Projects the totals and the per-session ranking.
    [[nodiscard]] Report report() const;
    /// Serializes the evidence (analytics/serialize.h). min_run is
    /// configuration; the per-stream run cursors and per-session tallies
    /// are the serialized evidence.
    void save(serialize::Writer& writer) const;
    /// Restores saved evidence (analytics/serialize.h).
    void load(serialize::Reader& reader);

   private:
    struct StreamState {
      AsPath path;
      CommunitySet communities;
      std::uint64_t run = 0;
    };
    struct Tally {
      std::uint64_t classified = 0;
      std::uint64_t nn = 0;
      std::uint64_t bursts = 0;
      std::uint64_t longest_run = 0;
    };
    DuplicateBurstOptions options_;
    std::map<std::pair<core::SessionKey, Prefix>, StreamState> streams_;
    std::map<core::SessionKey, Tally> tallies_;
  };

  /// Mints one per-shard state carrying the burst threshold.
  [[nodiscard]] State make_state() const { return State{options_}; }

 private:
  DuplicateBurstOptions options_;
};

/// §7 anomaly detection (core/anomaly) as a Pass: per-session classifier
/// tallies plus the bucketed novelty evidence accumulate per shard;
/// merge sums both; the leave-one-out sigma scoring and burst-episode
/// scan run once in report(). Streaming-windowed by construction — the
/// per-shard state carries across window cuts, so multi-month compressed
/// archives get the same report as a materialized batch.
class AnomalyPass {
 public:
  /// Default detection thresholds (core::AnomalyOptions), validated.
  AnomalyPass() { validate_options(options_); }
  /// Custom thresholds; throws ConfigError on invalid ones (e.g. a
  /// non-positive novelty window).
  explicit AnomalyPass(core::AnomalyOptions options) : options_(options) {
    validate_options(options_);
  }

  /// Wire tag (serialize::PassTag::kAnomaly).
  static constexpr std::uint16_t kStateTag = 6;

  /// Duplicate outliers + novelty bursts (core::AnomalyReport).
  using Report = core::AnomalyReport;

  /// Per-shard anomaly evidence (see pass.h for the contract).
  /// Copy cost (snapshot contract): O(sessions + streams + novelty
  /// buckets) — per-session classifiers plus the bucketed novelty map.
  class State {
   public:
    /// Binds the state to the pass's detection thresholds.
    explicit State(const core::AnomalyOptions& options) : options_(options) {}
    /// Accumulates one record into the session tallies and novelty
    /// buckets.
    void observe(const core::UpdateRecord& record);
    /// Sums another shard's tallies and novelty evidence into this one.
    void merge(State&& other);
    /// Runs the sigma scoring and burst-episode scan over the merged
    /// evidence.
    [[nodiscard]] Report report() const;
    /// Serializes the evidence (analytics/serialize.h). The novelty
    /// bucket width is configuration and must match across save and load
    /// (bucket indexes are window-relative).
    void save(serialize::Writer& writer) const;
    /// Restores saved evidence (analytics/serialize.h).
    void load(serialize::Reader& reader);

   private:
    core::AnomalyOptions options_;
    std::map<core::SessionKey, core::Classifier> classifiers_;
    core::NoveltyEvidence novelty_;
  };

  /// Mints one per-shard state carrying the thresholds.
  [[nodiscard]] State make_state() const { return State{options_}; }

 private:
  static void validate_options(const core::AnomalyOptions& options);
  core::AnomalyOptions options_;
};

/// §6 revealed information (Figure 6) as a Pass: per-attribute phase
/// buckets keyed on the full CommunitySet value; buckets OR under merge.
/// The schedule is validated at construction (ConfigError), so a
/// misconfiguration fails on the caller's thread before any ingestion
/// worker runs.
class RevealedPass {
 public:
  /// Default beacon schedule (core::BeaconSchedule), validated.
  RevealedPass() { schedule_.validate(); }
  /// Custom schedule; throws ConfigError when invalid (period == 0, or
  /// window >= period).
  explicit RevealedPass(core::BeaconSchedule schedule) : schedule_(schedule) {
    schedule_.validate();
  }

  /// Wire tag (serialize::PassTag::kRevealed).
  static constexpr std::uint16_t kStateTag = 7;

  /// Figure 6's revealed-information statistic (core::RevealedStats).
  using Report = core::RevealedStats;

  /// Per-shard phase buckets (see pass.h for the contract).
  /// Copy cost (snapshot contract): O(distinct attribute values) — one
  /// phase bitmask per observed CommunitySet value.
  class State {
   public:
    /// Binds the state to the pass's beacon schedule.
    explicit State(const core::BeaconSchedule& schedule)
        : schedule_(schedule) {}
    /// Buckets one record's attribute by its beacon phase.
    void observe(const core::UpdateRecord& record) {
      core::accumulate_revealed(record, schedule_, evidence_);
    }
    /// ORs another shard's phase buckets into this one.
    void merge(State&& other) {
      core::merge_revealed(evidence_, std::move(other.evidence_));
    }
    /// Projects the revealed-information statistics.
    [[nodiscard]] Report report() const {
      return core::finalize_revealed(evidence_);
    }
    /// Serializes the phase buckets (analytics/serialize.h). The beacon
    /// schedule is configuration; only the phase buckets travel.
    void save(serialize::Writer& writer) const;
    /// Restores saved phase buckets (analytics/serialize.h).
    void load(serialize::Reader& reader);

   private:
    core::BeaconSchedule schedule_;
    core::RevealedEvidence evidence_;
  };

  /// Mints one per-shard state carrying the schedule.
  [[nodiscard]] State make_state() const { return State{schedule_}; }

 private:
  core::BeaconSchedule schedule_;
};

/// §6 community exploration (Figure 4) as a Pass: per-(session, prefix)
/// run state that legally carries across window cuts — each stream lives
/// wholly inside one shard and the engine preserves per-session order,
/// exactly the invariant cleaning::SecondCarry relies on for §4.
/// report() flushes still-active runs and sorts all events by
/// (begin, session, prefix), matching find_community_exploration.
class ExplorationPass {
 public:
  /// Default beacon schedule (core::BeaconSchedule), validated.
  ExplorationPass() { schedule_.validate(); }
  /// Custom schedule; throws ConfigError when invalid.
  explicit ExplorationPass(core::BeaconSchedule schedule)
      : schedule_(schedule) {
    schedule_.validate();
  }

  /// Wire tag (serialize::PassTag::kExploration).
  static constexpr std::uint16_t kStateTag = 8;

  /// Exploration events sorted by (begin, session, prefix).
  using Report = std::vector<core::ExplorationEvent>;

  /// Per-shard run cursors + completed events (see pass.h).
  /// Copy cost (snapshot contract): O(active runs + completed events).
  class State {
   public:
    /// Binds the state to the pass's beacon schedule.
    explicit State(const core::BeaconSchedule& schedule)
        : schedule_(schedule) {}
    /// Advances the record's (session, prefix) exploration run.
    void observe(const core::UpdateRecord& record) {
      core::observe_exploration(record, schedule_, runs_, events_);
    }
    /// Folds another shard's runs and events into this one.
    void merge(State&& other);
    /// Flushes still-active runs and projects the sorted events.
    [[nodiscard]] Report report() const;
    /// Serializes the evidence (analytics/serialize.h): both the
    /// completed events and the still-active per-stream run cursors
    /// travel, so a restored state continues runs mid-flight.
    void save(serialize::Writer& writer) const;
    /// Restores saved runs and events (analytics/serialize.h).
    void load(serialize::Reader& reader);

   private:
    core::BeaconSchedule schedule_;
    core::ExplorationRuns runs_;
    std::vector<core::ExplorationEvent> events_;
  };

  /// Mints one per-shard state carrying the schedule.
  [[nodiscard]] State make_state() const { return State{schedule_}; }

 private:
  core::BeaconSchedule schedule_;
};

/// Per-AS community usage classification (Krenc et al., IMC 2021) as a
/// Pass: layers the usage heuristics over CommunityStatsPass-style
/// per-value evidence — occurrence counts per 32-bit value plus the
/// sessions carrying each 16-bit namespace.
class UsageClassificationPass {
 public:
  /// Default heuristic knobs (core::UsageOptions).
  UsageClassificationPass() = default;
  /// Custom heuristic knobs.
  explicit UsageClassificationPass(core::UsageOptions options)
      : options_(options) {}

  /// Wire tag (serialize::PassTag::kUsageClassification).
  static constexpr std::uint16_t kStateTag = 9;

  /// Per-AS usage profiles (core::AsUsage), sorted by namespace.
  using Report = std::vector<core::AsUsage>;

  /// Per-shard usage evidence (see pass.h for the contract).
  /// Copy cost (snapshot contract): O(distinct values + namespaces) —
  /// per-value occurrence counts and per-namespace session sets.
  class State {
   public:
    /// Binds the state to the pass's heuristic knobs.
    explicit State(const core::UsageOptions& options) : options_(options) {}
    /// Accumulates one record's community usage evidence.
    void observe(const core::UpdateRecord& record) {
      core::accumulate_usage(record, evidence_);
    }
    /// Sums another shard's usage evidence into this one.
    void merge(State&& other) {
      core::merge_usage(evidence_, std::move(other.evidence_));
    }
    /// Applies the heuristics and projects per-AS profiles.
    [[nodiscard]] Report report() const {
      return core::finalize_usage(evidence_, options_);
    }
    /// Serializes the evidence (analytics/serialize.h). Heuristic
    /// knobs are configuration; per-value counts and per-namespace
    /// session sets are the serialized evidence.
    void save(serialize::Writer& writer) const;
    /// Restores saved evidence (analytics/serialize.h).
    void load(serialize::Reader& reader);

   private:
    core::UsageOptions options_;
    core::UsageEvidence evidence_;
  };

  /// Mints one per-shard state carrying the knobs.
  [[nodiscard]] State make_state() const { return State{options_}; }

 private:
  core::UsageOptions options_;
};

}  // namespace bgpcc::analytics
