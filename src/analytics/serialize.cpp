#include "analytics/serialize.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <limits>
#include <map>
#include <ostream>
#include <set>
#include <utility>
#include <vector>

#include "analytics/passes.h"
#include "netbase/error.h"

namespace bgpcc::analytics {
namespace serialize {

// ---------------------------------------------------------------------------
// Primitive writer/reader.

void Writer::raw(const void* data, std::size_t size) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  if (!out_) {
    throw DecodeError("state serialization: write failed (stream error)");
  }
  written_ += size;
}

void Writer::u8(std::uint8_t v) { raw(&v, 1); }

void Writer::u16(std::uint16_t v) {
  std::uint8_t b[2] = {static_cast<std::uint8_t>(v >> 8),
                       static_cast<std::uint8_t>(v)};
  raw(b, sizeof(b));
}

void Writer::u32(std::uint32_t v) {
  std::uint8_t b[4] = {
      static_cast<std::uint8_t>(v >> 24), static_cast<std::uint8_t>(v >> 16),
      static_cast<std::uint8_t>(v >> 8), static_cast<std::uint8_t>(v)};
  raw(b, sizeof(b));
}

void Writer::u64(std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<std::uint8_t>(v >> (56 - 8 * i));
  }
  raw(b, sizeof(b));
}

void Writer::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Writer::boolean(bool v) { u8(v ? 1 : 0); }

void Writer::str(std::string_view s) {
  if (s.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw ConfigError("state serialization: string exceeds u32 length");
  }
  u32(static_cast<std::uint32_t>(s.size()));
  if (!s.empty()) raw(s.data(), s.size());
}

void Reader::raw(void* data, std::size_t size) {
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (static_cast<std::size_t>(in_.gcount()) != size) {
    throw DecodeError("truncated state blob");
  }
  read_ += size;
}

std::uint8_t Reader::u8() {
  std::uint8_t v = 0;
  raw(&v, 1);
  return v;
}

std::uint16_t Reader::u16() {
  std::uint8_t b[2];
  raw(b, sizeof(b));
  return static_cast<std::uint16_t>((b[0] << 8) | b[1]);
}

std::uint32_t Reader::u32() {
  std::uint8_t b[4];
  raw(b, sizeof(b));
  return (static_cast<std::uint32_t>(b[0]) << 24) |
         (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) |
         static_cast<std::uint32_t>(b[3]);
}

std::uint64_t Reader::u64() {
  std::uint8_t b[8];
  raw(b, sizeof(b));
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | b[i];
  return v;
}

std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

bool Reader::boolean() { return u8() != 0; }

std::string Reader::str() {
  std::uint32_t size = u32();
  // No field in the format approaches this; a corrupt length prefix must
  // throw before it turns into a giant allocation.
  if (size > (1u << 20)) {
    throw DecodeError("corrupt state blob: oversized string length");
  }
  std::string out(size, '\0');
  if (size > 0) raw(out.data(), size);
  return out;
}

// ---------------------------------------------------------------------------
// Block header.

void write_block_header(Writer& w, BlockKind kind) {
  w.u32(kMagic);
  w.u16(kFormatVersion);
  w.u8(static_cast<std::uint8_t>(kind));
}

BlockKind read_block_header(Reader& r) {
  std::uint32_t magic = r.u32();
  if (magic != kMagic) {
    throw DecodeError("not a bgpcc state file (bad magic)");
  }
  std::uint16_t version = r.u16();
  if (version != kFormatVersion) {
    throw DecodeError("unsupported bgpcc state format version " +
                      std::to_string(version) + " (this build reads version " +
                      std::to_string(kFormatVersion) + ")");
  }
  std::uint8_t kind = r.u8();
  if (kind < static_cast<std::uint8_t>(BlockKind::kPartialState) ||
      kind > static_cast<std::uint8_t>(BlockKind::kIngestCursor)) {
    throw DecodeError("corrupt bgpcc state file: unknown block kind " +
                      std::to_string(kind));
  }
  return static_cast<BlockKind>(kind);
}

void read_block_header(Reader& r, BlockKind expected) {
  BlockKind kind = read_block_header(r);
  if (kind != expected) {
    throw DecodeError(
        "bgpcc state file holds block kind " +
        std::to_string(static_cast<unsigned>(kind)) + ", expected " +
        std::to_string(static_cast<unsigned>(expected)));
  }
}

std::vector<PassTag> read_state_tags(std::istream& in) {
  Reader r(in);
  BlockKind kind = read_block_header(r);
  if (kind == BlockKind::kIngestCursor) {
    throw DecodeError(
        "bgpcc state file is a bare ingest cursor, not a pass-state file");
  }
  std::uint16_t count = r.u16();
  std::vector<PassTag> tags;
  tags.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    std::uint16_t tag = r.u16();
    if (tag < static_cast<std::uint16_t>(PassTag::kClassifier) ||
        tag > static_cast<std::uint16_t>(PassTag::kUsageClassification)) {
      throw DecodeError("bgpcc state file names unknown pass tag " +
                        std::to_string(tag) +
                        " — written by a newer build?");
    }
    tags.push_back(static_cast<PassTag>(tag));
  }
  return tags;
}

}  // namespace serialize

// ---------------------------------------------------------------------------
// Typed helpers shared by the State codecs. Decoding validates everything
// it reconstructs: ParseError from value-type constructors (Prefix length,
// AsPath segment size) is rethrown as DecodeError so corrupt input keeps
// the wire-error taxonomy.

namespace {

using serialize::Reader;
using serialize::Writer;

void write_ip(Writer& w, const IpAddress& ip) {
  auto bytes = ip.bytes();
  w.u8(static_cast<std::uint8_t>(bytes.size()));
  w.raw(bytes.data(), bytes.size());
}

IpAddress read_ip(Reader& r) {
  std::uint8_t size = r.u8();
  if (size != 4 && size != 16) {
    throw DecodeError("corrupt state blob: bad address size");
  }
  std::uint8_t bytes[16];
  r.raw(bytes, size);
  if (size == 4) return IpAddress::v4(bytes[0], bytes[1], bytes[2], bytes[3]);
  return IpAddress::v6({bytes, 16});
}

void write_prefix(Writer& w, const Prefix& prefix) {
  write_ip(w, prefix.address());
  w.u8(static_cast<std::uint8_t>(prefix.length()));
}

Prefix read_prefix(Reader& r) {
  IpAddress address = read_ip(r);
  std::uint8_t length = r.u8();
  try {
    return Prefix(address, length);
  } catch (const ParseError&) {
    throw DecodeError("corrupt state blob: prefix length exceeds family");
  }
}

void write_session(Writer& w, const core::SessionKey& session) {
  w.str(session.collector);
  w.u32(session.peer_asn.value());
  write_ip(w, session.peer_address);
}

core::SessionKey read_session(Reader& r) {
  core::SessionKey out;
  out.collector = r.str();
  out.peer_asn = Asn(r.u32());
  out.peer_address = read_ip(r);
  return out;
}

void write_aspath(Writer& w, const AsPath& path) {
  const auto& segments = path.segments();
  w.u32(static_cast<std::uint32_t>(segments.size()));
  for (const AsPathSegment& segment : segments) {
    w.u8(static_cast<std::uint8_t>(segment.type));
    w.u32(static_cast<std::uint32_t>(segment.asns.size()));
    for (Asn asn : segment.asns) w.u32(asn.value());
  }
}

AsPath read_aspath(Reader& r) {
  std::uint32_t segment_count = r.u32();
  std::vector<AsPathSegment> segments;
  segments.reserve(std::min<std::uint32_t>(segment_count, 64));
  for (std::uint32_t s = 0; s < segment_count; ++s) {
    AsPathSegment segment;
    std::uint8_t type = r.u8();
    if (type != static_cast<std::uint8_t>(AsPathSegment::Type::kSet) &&
        type != static_cast<std::uint8_t>(AsPathSegment::Type::kSequence)) {
      throw DecodeError("corrupt state blob: bad AS-path segment type");
    }
    segment.type = static_cast<AsPathSegment::Type>(type);
    std::uint32_t asn_count = r.u32();
    if (asn_count > 255) {
      // from_segments would reject it anyway; fail before allocating.
      throw DecodeError("corrupt state blob: oversized AS-path segment");
    }
    segment.asns.reserve(asn_count);
    for (std::uint32_t a = 0; a < asn_count; ++a) {
      segment.asns.emplace_back(r.u32());
    }
    segments.push_back(std::move(segment));
  }
  try {
    return AsPath::from_segments(std::move(segments));
  } catch (const ParseError&) {
    throw DecodeError("corrupt state blob: unencodable AS path");
  }
}

void write_communities(Writer& w, const CommunitySet& set) {
  w.u32(static_cast<std::uint32_t>(set.size()));
  for (Community c : set) w.u32(c.raw());
}

CommunitySet read_communities(Reader& r) {
  std::uint32_t count = r.u32();
  CommunitySet out;
  for (std::uint32_t i = 0; i < count; ++i) out.add(Community(r.u32()));
  return out;
}

void write_opt_u32(Writer& w, const std::optional<std::uint32_t>& v) {
  w.boolean(v.has_value());
  if (v) w.u32(*v);
}

std::optional<std::uint32_t> read_opt_u32(Reader& r) {
  if (!r.boolean()) return std::nullopt;
  return r.u32();
}

void write_type_counts(Writer& w, const core::TypeCounts& counts) {
  for (std::uint64_t c : counts.counts) w.u64(c);
  w.u64(counts.first_sightings);
  w.u64(counts.withdrawals);
  w.u64(counts.nn_with_med_change);
}

core::TypeCounts read_type_counts(Reader& r) {
  core::TypeCounts out;
  for (std::uint64_t& c : out.counts) c = r.u64();
  out.first_sightings = r.u64();
  out.withdrawals = r.u64();
  out.nn_with_med_change = r.u64();
  return out;
}

void write_classifier(Writer& w, const core::Classifier& classifier) {
  write_type_counts(w, classifier.counts());
  const core::Classifier::StreamStates& streams = classifier.stream_states();
  w.u64(streams.size());
  for (const auto& [key, state] : streams) {
    write_session(w, key.first);
    write_prefix(w, key.second);
    write_aspath(w, state.as_path);
    write_communities(w, state.communities);
    write_opt_u32(w, state.med);
  }
}

core::Classifier read_classifier(Reader& r) {
  core::TypeCounts counts = read_type_counts(r);
  std::uint64_t stream_count = r.u64();
  core::Classifier::StreamStates streams;
  for (std::uint64_t i = 0; i < stream_count; ++i) {
    core::SessionKey session = read_session(r);
    Prefix prefix = read_prefix(r);
    core::Classifier::StreamState state;
    state.as_path = read_aspath(r);
    state.communities = read_communities(r);
    state.med = read_opt_u32(r);
    streams.emplace(std::make_pair(std::move(session), prefix),
                    std::move(state));
  }
  core::Classifier out;
  out.restore(std::move(streams), counts);
  return out;
}

void write_session_classifiers(
    Writer& w, const std::map<core::SessionKey, core::Classifier>& map) {
  w.u64(map.size());
  for (const auto& [session, classifier] : map) {
    write_session(w, session);
    write_classifier(w, classifier);
  }
}

std::map<core::SessionKey, core::Classifier> read_session_classifiers(
    Reader& r) {
  std::uint64_t count = r.u64();
  std::map<core::SessionKey, core::Classifier> out;
  for (std::uint64_t i = 0; i < count; ++i) {
    core::SessionKey session = read_session(r);
    out.emplace(std::move(session), read_classifier(r));
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Per-pass State codecs. Every layout here is part of wire format
// version 1 (docs/FORMATS.md documents them field by field; bump
// serialize::kFormatVersion on any change). Only evidence travels —
// configuration members (options, schedules, filters) stay with the pass
// that minted the state, so load() requires an identically configured
// pass on the reading side.

void ClassifierPass::State::save(serialize::Writer& writer) const {
  write_classifier(writer, classifier_);
}

void ClassifierPass::State::load(serialize::Reader& reader) {
  classifier_ = read_classifier(reader);
}

void PerSessionTypesPass::State::save(serialize::Writer& writer) const {
  write_session_classifiers(writer, classifiers_);
}

void PerSessionTypesPass::State::load(serialize::Reader& reader) {
  classifiers_ = read_session_classifiers(reader);
}

void TomographyPass::State::save(serialize::Writer& writer) const {
  writer.u64(evidence_.size());
  for (const auto& [asn, evidence] : evidence_) {
    writer.u32(asn.value());
    writer.u64(evidence.on_path);
    writer.u64(evidence.own_namespace_tagged);
    writer.u64(evidence.as_peer);
    writer.u64(evidence.as_peer_with_communities);
    writer.u64(evidence.as_peer_with_foreign);
  }
}

void TomographyPass::State::load(serialize::Reader& reader) {
  std::uint64_t count = reader.u64();
  evidence_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    Asn asn{reader.u32()};
    core::AsEvidence evidence;
    evidence.asn = asn;
    evidence.on_path = reader.u64();
    evidence.own_namespace_tagged = reader.u64();
    evidence.as_peer = reader.u64();
    evidence.as_peer_with_communities = reader.u64();
    evidence.as_peer_with_foreign = reader.u64();
    evidence_.emplace(asn, evidence);
  }
}

void CommunityStatsPass::State::save(serialize::Writer& writer) const {
  // unordered_set has no stable iteration order; serialize sorted so the
  // same state always produces the same bytes (differential tests compare
  // files, not just decoded values).
  std::vector<std::uint32_t> values(values_.begin(), values_.end());
  std::sort(values.begin(), values.end());
  writer.u64(values.size());
  for (std::uint32_t v : values) writer.u32(v);
  writer.u64(histogram_.size());
  for (std::uint64_t bucket : histogram_) writer.u64(bucket);
  writer.u64(announcements_);
  writer.u64(withdrawals_);
  writer.u64(with_communities_);
  writer.u64(occurrences_);
}

void CommunityStatsPass::State::load(serialize::Reader& reader) {
  std::uint64_t value_count = reader.u64();
  values_.clear();
  for (std::uint64_t i = 0; i < value_count; ++i) {
    values_.insert(reader.u32());
  }
  std::uint64_t buckets = reader.u64();
  if (buckets != histogram_.size()) {
    throw ConfigError(
        "CommunityStatsPass: saved state has " + std::to_string(buckets) +
        " histogram buckets, this pass is configured with " +
        std::to_string(histogram_.size()) +
        " — load with the original histogram_buckets");
  }
  for (std::uint64_t& bucket : histogram_) bucket = reader.u64();
  announcements_ = reader.u64();
  withdrawals_ = reader.u64();
  with_communities_ = reader.u64();
  occurrences_ = reader.u64();
}

void DuplicateBurstPass::State::save(serialize::Writer& writer) const {
  writer.u64(streams_.size());
  for (const auto& [key, stream] : streams_) {
    write_session(writer, key.first);
    write_prefix(writer, key.second);
    write_aspath(writer, stream.path);
    write_communities(writer, stream.communities);
    writer.u64(stream.run);
  }
  writer.u64(tallies_.size());
  for (const auto& [session, tally] : tallies_) {
    write_session(writer, session);
    writer.u64(tally.classified);
    writer.u64(tally.nn);
    writer.u64(tally.bursts);
    writer.u64(tally.longest_run);
  }
}

void DuplicateBurstPass::State::load(serialize::Reader& reader) {
  std::uint64_t stream_count = reader.u64();
  streams_.clear();
  for (std::uint64_t i = 0; i < stream_count; ++i) {
    core::SessionKey session = read_session(reader);
    Prefix prefix = read_prefix(reader);
    StreamState stream;
    stream.path = read_aspath(reader);
    stream.communities = read_communities(reader);
    stream.run = reader.u64();
    streams_.emplace(std::make_pair(std::move(session), prefix),
                     std::move(stream));
  }
  std::uint64_t tally_count = reader.u64();
  tallies_.clear();
  for (std::uint64_t i = 0; i < tally_count; ++i) {
    core::SessionKey session = read_session(reader);
    Tally tally;
    tally.classified = reader.u64();
    tally.nn = reader.u64();
    tally.bursts = reader.u64();
    tally.longest_run = reader.u64();
    tallies_.emplace(std::move(session), tally);
  }
}

void AnomalyPass::State::save(serialize::Writer& writer) const {
  write_session_classifiers(writer, classifiers_);
  writer.u64(novelty_.size());
  for (const auto& [community, buckets] : novelty_) {
    writer.u32(community.raw());
    writer.u64(buckets.size());
    for (const auto& [index, bucket] : buckets) {
      writer.i64(index);
      writer.u64(bucket.count);
      writer.i64(bucket.earliest.unix_micros());
    }
  }
}

void AnomalyPass::State::load(serialize::Reader& reader) {
  classifiers_ = read_session_classifiers(reader);
  std::uint64_t community_count = reader.u64();
  novelty_.clear();
  for (std::uint64_t i = 0; i < community_count; ++i) {
    Community community{reader.u32()};
    auto& buckets = novelty_[community];
    std::uint64_t bucket_count = reader.u64();
    for (std::uint64_t b = 0; b < bucket_count; ++b) {
      std::int64_t index = reader.i64();
      core::NoveltyBucket bucket;
      bucket.count = reader.u64();
      bucket.earliest = Timestamp::from_unix_micros(reader.i64());
      buckets.emplace(index, bucket);
    }
  }
}

// PhaseBuckets bitmask (RevealedPass).
constexpr std::uint8_t kPhaseAnnounce = 1;
constexpr std::uint8_t kPhaseWithdraw = 2;
constexpr std::uint8_t kPhaseOutside = 4;

void RevealedPass::State::save(serialize::Writer& writer) const {
  writer.u64(evidence_.size());
  for (const auto& [attrs, buckets] : evidence_) {
    write_communities(writer, attrs);
    std::uint8_t mask = 0;
    if (buckets.announce) mask |= kPhaseAnnounce;
    if (buckets.withdraw) mask |= kPhaseWithdraw;
    if (buckets.outside) mask |= kPhaseOutside;
    writer.u8(mask);
  }
}

void RevealedPass::State::load(serialize::Reader& reader) {
  std::uint64_t count = reader.u64();
  evidence_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    CommunitySet attrs = read_communities(reader);
    std::uint8_t mask = reader.u8();
    core::PhaseBuckets buckets;
    buckets.announce = (mask & kPhaseAnnounce) != 0;
    buckets.withdraw = (mask & kPhaseWithdraw) != 0;
    buckets.outside = (mask & kPhaseOutside) != 0;
    evidence_.emplace(std::move(attrs), buckets);
  }
}

namespace {

void write_exploration_event(Writer& w, const core::ExplorationEvent& event) {
  write_session(w, event.session);
  write_prefix(w, event.prefix);
  write_aspath(w, event.as_path);
  w.i64(event.begin.unix_micros());
  w.i64(event.end.unix_micros());
  w.i64(event.nc_count);
  w.i64(event.distinct_attributes);
}

core::ExplorationEvent read_exploration_event(Reader& r) {
  core::ExplorationEvent event;
  event.session = read_session(r);
  event.prefix = read_prefix(r);
  event.as_path = read_aspath(r);
  event.begin = Timestamp::from_unix_micros(r.i64());
  event.end = Timestamp::from_unix_micros(r.i64());
  event.nc_count = static_cast<int>(r.i64());
  event.distinct_attributes = static_cast<int>(r.i64());
  return event;
}

}  // namespace

void ExplorationPass::State::save(serialize::Writer& writer) const {
  writer.u64(runs_.size());
  for (const auto& [key, run] : runs_) {
    write_session(writer, key.first);
    write_prefix(writer, key.second);
    writer.boolean(run.path.has_value());
    if (run.path) write_aspath(writer, *run.path);
    writer.boolean(run.communities.has_value());
    if (run.communities) write_communities(writer, *run.communities);
    write_exploration_event(writer, run.current);
    writer.u64(run.attrs_seen.size());
    for (const auto& [attrs, seen] : run.attrs_seen) {
      write_communities(writer, attrs);
      writer.i64(seen);
    }
    writer.boolean(run.active);
  }
  writer.u64(events_.size());
  for (const core::ExplorationEvent& event : events_) {
    write_exploration_event(writer, event);
  }
}

void ExplorationPass::State::load(serialize::Reader& reader) {
  std::uint64_t run_count = reader.u64();
  runs_.clear();
  for (std::uint64_t i = 0; i < run_count; ++i) {
    core::SessionKey session = read_session(reader);
    Prefix prefix = read_prefix(reader);
    core::ExplorationRun run;
    if (reader.boolean()) run.path = read_aspath(reader);
    if (reader.boolean()) run.communities = read_communities(reader);
    run.current = read_exploration_event(reader);
    std::uint64_t attr_count = reader.u64();
    for (std::uint64_t a = 0; a < attr_count; ++a) {
      CommunitySet attrs = read_communities(reader);
      run.attrs_seen.emplace(std::move(attrs),
                             static_cast<int>(reader.i64()));
    }
    run.active = reader.boolean();
    runs_.emplace(std::make_pair(std::move(session), prefix), std::move(run));
  }
  std::uint64_t event_count = reader.u64();
  events_.clear();
  for (std::uint64_t i = 0; i < event_count; ++i) {
    events_.push_back(read_exploration_event(reader));
  }
}

void UsageClassificationPass::State::save(serialize::Writer& writer) const {
  writer.u64(evidence_.value_occurrences.size());
  for (const auto& [value, count] : evidence_.value_occurrences) {
    writer.u32(value);
    writer.u64(count);
  }
  writer.u64(evidence_.namespace_sessions.size());
  for (const auto& [asn16, sessions] : evidence_.namespace_sessions) {
    writer.u16(asn16);
    writer.u64(sessions.size());
    for (const core::SessionKey& session : sessions) {
      write_session(writer, session);
    }
  }
}

void UsageClassificationPass::State::load(serialize::Reader& reader) {
  evidence_ = core::UsageEvidence{};
  std::uint64_t value_count = reader.u64();
  for (std::uint64_t i = 0; i < value_count; ++i) {
    std::uint32_t value = reader.u32();
    evidence_.value_occurrences[value] = reader.u64();
  }
  std::uint64_t namespace_count = reader.u64();
  for (std::uint64_t i = 0; i < namespace_count; ++i) {
    std::uint16_t asn16 = reader.u16();
    auto& sessions = evidence_.namespace_sessions[asn16];
    std::uint64_t session_count = reader.u64();
    for (std::uint64_t s = 0; s < session_count; ++s) {
      sessions.insert(read_session(reader));
    }
  }
}

// ---------------------------------------------------------------------------
// Ingest cursor codec.

namespace serialize {

void write_ingest_checkpoint(Writer& w, const core::IngestCheckpoint& state) {
  write_block_header(w, BlockKind::kIngestCursor);
  w.u64(state.chunk_records);
  w.u32(static_cast<std::uint32_t>(state.collectors.size()));
  for (const std::string& collector : state.collectors) w.str(collector);
  w.u64(state.next_source);
  w.boolean(state.input_open);
  w.u32(state.current_file);
  w.u32(state.chunk_index);
  // v2: the run's resolved shard count travels explicitly (it shapes the
  // carry below AND the restorer's engine — num_threads=0 resolution is
  // machine-dependent, so it must not be re-derived on the other side).
  // Derive from the carry for caller-built structs that left shards 0.
  w.u64(state.shards != 0 ? state.shards : state.carry.size());
  w.u64(state.carry.size());
  for (const core::cleaning::SecondCarry& shard : state.carry) {
    // unordered_map: serialize sorted by session so identical carry state
    // always yields identical bytes.
    std::vector<std::pair<core::SessionKey, std::pair<std::int64_t, int>>>
        entries(shard.begin(), shard.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.u64(entries.size());
    for (const auto& [session, carry] : entries) {
      write_session(w, session);
      w.i64(carry.first);
      w.i64(carry.second);
    }
  }
  w.u64(state.cleaning.dropped_unallocated_asn);
  w.u64(state.cleaning.dropped_unallocated_prefix);
  w.u64(state.cleaning.route_server_paths_repaired);
  w.u64(state.cleaning.timestamps_adjusted);
  w.u64(state.stats.files);
  w.u64(state.stats.chunks);
  w.u64(state.stats.raw_records);
  w.u64(state.stats.update_messages);
  w.u64(state.stats.records);
  w.u64(state.stats.windows);
}

core::IngestCheckpoint read_ingest_checkpoint(Reader& r) {
  read_block_header(r, BlockKind::kIngestCursor);
  core::IngestCheckpoint out;
  out.chunk_records = static_cast<std::size_t>(r.u64());
  std::uint32_t collector_count = r.u32();
  if (collector_count > (1u << 16)) {
    throw DecodeError("corrupt ingest cursor: more than 2^16 sources");
  }
  out.collectors.reserve(collector_count);
  for (std::uint32_t i = 0; i < collector_count; ++i) {
    out.collectors.push_back(r.str());
  }
  out.next_source = r.u64();
  out.input_open = r.boolean();
  out.current_file = r.u32();
  out.chunk_index = r.u32();
  std::uint64_t resolved_shards = r.u64();
  if (resolved_shards == 0 || resolved_shards > core::kMaxIngestShards) {
    throw DecodeError("corrupt ingest cursor: implausible shard count");
  }
  out.shards = static_cast<std::size_t>(resolved_shards);
  std::uint64_t shard_count = r.u64();
  if (shard_count != resolved_shards) {
    throw DecodeError(
        "corrupt ingest cursor: carry size disagrees with the shard count");
  }
  out.carry.resize(static_cast<std::size_t>(shard_count));
  for (core::cleaning::SecondCarry& shard : out.carry) {
    std::uint64_t entry_count = r.u64();
    for (std::uint64_t e = 0; e < entry_count; ++e) {
      core::SessionKey session = read_session(r);
      std::int64_t second = r.i64();
      int spaced = static_cast<int>(r.i64());
      shard.emplace(std::move(session), std::make_pair(second, spaced));
    }
  }
  out.cleaning.dropped_unallocated_asn = static_cast<std::size_t>(r.u64());
  out.cleaning.dropped_unallocated_prefix = static_cast<std::size_t>(r.u64());
  out.cleaning.route_server_paths_repaired =
      static_cast<std::size_t>(r.u64());
  out.cleaning.timestamps_adjusted = static_cast<std::size_t>(r.u64());
  out.stats.files = static_cast<std::size_t>(r.u64());
  out.stats.chunks = static_cast<std::size_t>(r.u64());
  out.stats.raw_records = static_cast<std::size_t>(r.u64());
  out.stats.update_messages = static_cast<std::size_t>(r.u64());
  out.stats.records = static_cast<std::size_t>(r.u64());
  out.stats.windows = static_cast<std::size_t>(r.u64());
  return out;
}

}  // namespace serialize
}  // namespace bgpcc::analytics
