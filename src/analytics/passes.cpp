#include "analytics/passes.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "netbase/error.h"

namespace bgpcc::analytics {

// ---------------------------------------------------------------------------
// PerSessionTypesPass

void PerSessionTypesPass::State::observe(const core::UpdateRecord& record) {
  if (only_prefix_ && record.prefix != *only_prefix_) return;
  classifiers_[record.session].classify(record);
}

void PerSessionTypesPass::State::merge(State&& other) {
  for (auto& [session, classifier] : other.classifiers_) {
    auto [it, inserted] =
        classifiers_.try_emplace(session, std::move(classifier));
    if (!inserted) it->second.merge(std::move(classifier));
  }
}

// ---------------------------------------------------------------------------
// TomographyPass

void TomographyPass::State::merge(State&& other) {
  for (auto& [asn, evidence] : other.evidence_) {
    auto [it, inserted] = evidence_.try_emplace(asn, evidence);
    if (!inserted) it->second += evidence;
  }
}

// ---------------------------------------------------------------------------
// CommunityStatsPass

void CommunityStatsPass::State::observe(const core::UpdateRecord& record) {
  if (!record.announcement) {
    ++withdrawals_;
    return;
  }
  ++announcements_;
  const CommunitySet& communities = record.attrs.communities;
  std::size_t count = communities.size();
  occurrences_ += count;
  if (count > 0) ++with_communities_;
  ++histogram_[std::min(count, histogram_.size() - 1)];
  for (Community c : communities) values_.insert(c.raw());
}

void CommunityStatsPass::State::merge(State&& other) {
  // Histogram sizes match: every state of one pass is minted with the
  // same bucket count.
  for (std::size_t i = 0; i < histogram_.size(); ++i) {
    histogram_[i] += other.histogram_[i];
  }
  announcements_ += other.announcements_;
  withdrawals_ += other.withdrawals_;
  with_communities_ += other.with_communities_;
  occurrences_ += other.occurrences_;
  if (values_.size() < other.values_.size()) values_.swap(other.values_);
  values_.insert(other.values_.begin(), other.values_.end());
}

CommunityStatsPass::Report CommunityStatsPass::State::report() const {
  Report report;
  report.announcements = announcements_;
  report.withdrawals = withdrawals_;
  report.with_communities = with_communities_;
  report.community_occurrences = occurrences_;
  report.unique_communities = values_.size();
  report.communities_per_announcement = histogram_;

  std::map<std::uint16_t, std::uint64_t> per_namespace;
  // bgpcc-lint: allow(D1, map increments commute - order cannot reach report)
  for (std::uint32_t raw : values_) {
    ++per_namespace[static_cast<std::uint16_t>(raw >> 16)];
  }
  report.namespaces.reserve(per_namespace.size());
  for (const auto& [asn16, distinct] : per_namespace) {
    report.namespaces.push_back(NamespaceCount{asn16, distinct});
  }
  std::sort(report.namespaces.begin(), report.namespaces.end(),
            [](const NamespaceCount& a, const NamespaceCount& b) {
              if (a.distinct_values != b.distinct_values) {
                return a.distinct_values > b.distinct_values;
              }
              return a.asn16 < b.asn16;
            });
  return report;
}

// ---------------------------------------------------------------------------
// DuplicateBurstPass

void DuplicateBurstPass::State::observe(const core::UpdateRecord& record) {
  // Withdrawals neither reset comparison state nor break a run — same
  // convention as the classifier, whose nn definition this mirrors.
  if (!record.announcement) return;
  auto key = std::make_pair(record.session, record.prefix);
  auto it = streams_.find(key);
  if (it == streams_.end()) {
    streams_.emplace(std::move(key),
                     StreamState{record.attrs.as_path,
                                 record.attrs.communities, 0});
    return;
  }
  StreamState& stream = it->second;
  Tally& tally = tallies_[record.session];
  ++tally.classified;
  bool duplicate = stream.path == record.attrs.as_path &&
                   stream.communities == record.attrs.communities;
  if (duplicate) {
    ++tally.nn;
    ++stream.run;
    if (stream.run == options_.min_run) ++tally.bursts;
    tally.longest_run = std::max(tally.longest_run, stream.run);
  } else {
    stream.run = 0;
    stream.path = record.attrs.as_path;
    stream.communities = record.attrs.communities;
  }
}

void DuplicateBurstPass::State::merge(State&& other) {
  // Streams and sessions are disjoint across shard states (each session
  // lives in one shard); map::merge keeps ours on a contract violation.
  streams_.merge(std::move(other.streams_));
  for (auto& [session, tally] : other.tallies_) {
    auto [it, inserted] = tallies_.try_emplace(session, tally);
    if (!inserted) {
      it->second.classified += tally.classified;
      it->second.nn += tally.nn;
      it->second.bursts += tally.bursts;
      it->second.longest_run =
          std::max(it->second.longest_run, tally.longest_run);
    }
  }
}

DuplicateBurstPass::Report DuplicateBurstPass::State::report() const {
  Report report;
  report.sessions.reserve(tallies_.size());
  for (const auto& [session, tally] : tallies_) {
    report.classified += tally.classified;
    report.nn += tally.nn;
    report.bursts += tally.bursts;
    report.sessions.push_back(SessionDuplicates{
        session, tally.classified, tally.nn, tally.bursts,
        tally.longest_run});
  }
  std::sort(report.sessions.begin(), report.sessions.end(),
            [](const SessionDuplicates& a, const SessionDuplicates& b) {
              if (a.nn != b.nn) return a.nn > b.nn;
              return a.session < b.session;
            });
  return report;
}

// ---------------------------------------------------------------------------
// AnomalyPass

void AnomalyPass::validate_options(const core::AnomalyOptions& options) {
  if (options.novelty_window.count_micros() <= 0) {
    throw ConfigError("AnomalyPass: novelty_window must be positive");
  }
}

void AnomalyPass::State::observe(const core::UpdateRecord& record) {
  classifiers_[record.session].classify(record);
  core::accumulate_novelty(record, options_.novelty_window, novelty_);
}

void AnomalyPass::State::merge(State&& other) {
  for (auto& [session, classifier] : other.classifiers_) {
    auto [it, inserted] =
        classifiers_.try_emplace(session, std::move(classifier));
    if (!inserted) it->second.merge(std::move(classifier));
  }
  core::merge_novelty(novelty_, std::move(other.novelty_));
}

AnomalyPass::Report AnomalyPass::State::report() const {
  core::AnomalyReport report;
  core::score_duplicate_outliers(classifiers_, options_, report);
  report.novelty_bursts = core::finalize_novelty_bursts(novelty_, options_);
  return report;
}

// ---------------------------------------------------------------------------
// ExplorationPass

void ExplorationPass::State::merge(State&& other) {
  // Streams are disjoint across shard states; map::merge keeps ours on a
  // contract violation.
  runs_.merge(std::move(other.runs_));
  events_.insert(events_.end(),
                 std::make_move_iterator(other.events_.begin()),
                 std::make_move_iterator(other.events_.end()));
}

ExplorationPass::Report ExplorationPass::State::report() const {
  Report events = events_;
  // Flush still-active runs on copies: report() is const and repeatable.
  core::ExplorationRuns active = runs_;
  core::flush_exploration(active, events);
  core::sort_exploration_events(events);
  return events;
}

}  // namespace bgpcc::analytics
