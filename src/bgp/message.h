// BGP message model. UPDATE is the protagonist; OPEN/KEEPALIVE/NOTIFICATION
// are modeled far enough to frame sessions and round-trip through MRT.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/attributes.h"
#include "netbase/prefix.h"

namespace bgpcc {

enum class MessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepalive = 4,
};

[[nodiscard]] std::string to_string(MessageType type);

/// A BGP UPDATE: withdrawals plus (optionally) announcements sharing one
/// attribute block. IPv4 NLRI ride the classic fields; IPv6 NLRI are
/// carried via MP_REACH/MP_UNREACH (RFC 4760) by the codec — transparently
/// merged into `announced`/`withdrawn` here.
struct UpdateMessage {
  std::vector<Prefix> withdrawn;
  std::vector<Prefix> announced;
  /// Present iff `announced` is non-empty.
  std::optional<PathAttributes> attrs;

  [[nodiscard]] bool is_withdraw_only() const {
    return announced.empty() && !withdrawn.empty();
  }

  /// One-line rendering for traces.
  [[nodiscard]] std::string summary() const;

  friend auto operator<=>(const UpdateMessage&, const UpdateMessage&) = default;
};

/// Minimal OPEN for session framing and MRT state-change records.
struct OpenMessage {
  std::uint8_t version = 4;
  Asn asn;  // sent as AS_TRANS if > 16 bits; full ASN in capability
  std::uint16_t hold_time = 180;
  std::uint32_t bgp_identifier = 0;
  bool four_byte_asn_capable = true;

  friend auto operator<=>(const OpenMessage&, const OpenMessage&) = default;
};

struct NotificationMessage {
  std::uint8_t error_code = 0;
  std::uint8_t error_subcode = 0;
  std::vector<std::uint8_t> data;

  friend auto operator<=>(const NotificationMessage&,
                          const NotificationMessage&) = default;
};

}  // namespace bgpcc
