#include "bgp/message.h"

namespace bgpcc {

std::string to_string(MessageType type) {
  switch (type) {
    case MessageType::kOpen:
      return "OPEN";
    case MessageType::kUpdate:
      return "UPDATE";
    case MessageType::kNotification:
      return "NOTIFICATION";
    case MessageType::kKeepalive:
      return "KEEPALIVE";
  }
  return "?";
}

std::string UpdateMessage::summary() const {
  std::string out;
  if (!withdrawn.empty()) {
    out += "withdraw";
    for (const Prefix& p : withdrawn) out += " " + p.to_string();
  }
  if (!announced.empty()) {
    if (!out.empty()) out += "; ";
    out += "announce";
    for (const Prefix& p : announced) out += " " + p.to_string();
    if (attrs) out += " " + attrs->summary();
  }
  if (out.empty()) out = "(empty update)";
  return out;
}

}  // namespace bgpcc
