// BGP communities: RFC 1997 (32-bit) and RFC 8092 (large, 96-bit), plus the
// sorted-set container whose equality defines "the community attribute
// changed" in the paper's announcement-type classifier.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/asn.h"

namespace bgpcc {

/// An RFC 1997 community: a 32-bit value conventionally written as
/// "asn:value" with both halves 16 bits.
class Community {
 public:
  constexpr Community() = default;
  constexpr explicit Community(std::uint32_t raw) : raw_(raw) {}
  /// Builds asn:value (both must fit 16 bits; checked).
  [[nodiscard]] static Community of(std::uint16_t asn, std::uint16_t value) {
    return Community((static_cast<std::uint32_t>(asn) << 16) | value);
  }
  /// Parses "65000:300" or a bare decimal raw value. Throws ParseError.
  [[nodiscard]] static Community from_string(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t raw() const { return raw_; }
  /// Upper 16 bits: the AS that defined the community's semantics.
  [[nodiscard]] constexpr std::uint16_t asn16() const {
    return static_cast<std::uint16_t>(raw_ >> 16);
  }
  /// Lower 16 bits: the AS-defined value.
  [[nodiscard]] constexpr std::uint16_t value16() const {
    return static_cast<std::uint16_t>(raw_ & 0xffff);
  }

  // RFC 1997 well-known communities.
  static constexpr std::uint32_t kNoExportRaw = 0xffffff01;
  static constexpr std::uint32_t kNoAdvertiseRaw = 0xffffff02;
  static constexpr std::uint32_t kNoExportSubconfedRaw = 0xffffff03;
  /// RFC 7999 BLACKHOLE.
  static constexpr std::uint32_t kBlackholeRaw = 0xffff029a;

  [[nodiscard]] static constexpr Community no_export() {
    return Community(kNoExportRaw);
  }
  [[nodiscard]] static constexpr Community no_advertise() {
    return Community(kNoAdvertiseRaw);
  }
  [[nodiscard]] static constexpr Community blackhole() {
    return Community(kBlackholeRaw);
  }

  /// True for any value in the reserved well-known range 0xFFFF0000-0xFFFFFFFF.
  [[nodiscard]] constexpr bool is_well_known() const {
    return (raw_ >> 16) == 0xffff;
  }

  /// "65000:300" rendering.
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Community a, Community b) = default;

 private:
  std::uint32_t raw_ = 0;
};

/// An RFC 8092 large community: GlobalAdmin:LocalData1:LocalData2,
/// each 32 bits. Carried to exercise the "optional transitive attribute"
/// machinery beyond classic communities.
struct LargeCommunity {
  std::uint32_t global_admin = 0;
  std::uint32_t data1 = 0;
  std::uint32_t data2 = 0;

  /// Parses "64500:1:228". Throws ParseError.
  [[nodiscard]] static LargeCommunity from_string(std::string_view text);
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const LargeCommunity&,
                                    const LargeCommunity&) = default;
};

/// An ordered duplicate-free set of communities.
///
/// BGP treats the COMMUNITIES attribute as a set; keeping it sorted makes
/// attribute equality (the `nc` vs `nn` distinction) canonical regardless of
/// the order communities were added or received.
class CommunitySet {
 public:
  CommunitySet() = default;
  CommunitySet(std::initializer_list<Community> items);

  /// Inserts; returns true if the community was not already present.
  bool add(Community c);
  /// Removes; returns true if the community was present.
  bool remove(Community c);
  /// Removes every community whose upper 16 bits equal `asn16`.
  /// Returns the number removed. (Typical "clean my namespace" policy.)
  std::size_t remove_asn(std::uint16_t asn16);
  void clear() { items_.clear(); }

  [[nodiscard]] bool contains(Community c) const;
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const std::vector<Community>& items() const { return items_; }

  [[nodiscard]] auto begin() const { return items_.begin(); }
  [[nodiscard]] auto end() const { return items_.end(); }

  /// "65000:300 65000:400" (space-separated, sorted); "" when empty.
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const CommunitySet&, const CommunitySet&) = default;

 private:
  std::vector<Community> items_;  // sorted, unique
};

/// Ordered duplicate-free set of large communities.
class LargeCommunitySet {
 public:
  LargeCommunitySet() = default;
  LargeCommunitySet(std::initializer_list<LargeCommunity> items);

  bool add(const LargeCommunity& c);
  bool remove(const LargeCommunity& c);
  void clear() { items_.clear(); }

  [[nodiscard]] bool contains(const LargeCommunity& c) const;
  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const std::vector<LargeCommunity>& items() const {
    return items_;
  }
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const LargeCommunitySet&,
                          const LargeCommunitySet&) = default;

 private:
  std::vector<LargeCommunity> items_;  // sorted, unique
};

}  // namespace bgpcc
