// RFC 4271 wire codec: serializes/parses BGP messages byte-exactly, with
// RFC 6793 four-octet ASNs and RFC 4760 MP_REACH/MP_UNREACH for IPv6.
//
// The simulator exchanges decoded structs for speed, but every message a
// collector records is round-tripped through this codec into MRT files, so
// the analysis pipeline consumes the same bytes RouteViews/RIS would give.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bgp/message.h"

namespace bgpcc {

/// Codec knobs. Four-octet ASN encoding is the modern default (all
/// RouteViews/RIS BGP4MP_MESSAGE_AS4 records use it); set false to parse
/// legacy two-octet sessions.
struct CodecOptions {
  bool four_byte_asn = true;
};

/// Fixed header size (16-byte marker + 2-byte length + 1-byte type).
inline constexpr std::size_t kBgpHeaderSize = 19;
/// RFC 4271 maximum message size.
inline constexpr std::size_t kBgpMaxMessageSize = 4096;

/// Serializes a full UPDATE (including header). Throws ConfigError if the
/// message violates the struct contract (e.g. announcements without
/// attributes) and DecodeError if the result would exceed 4096 bytes.
[[nodiscard]] std::vector<std::uint8_t> encode_update(
    const UpdateMessage& update, const CodecOptions& options = {});

/// Parses a full UPDATE (including header). Throws DecodeError on any
/// malformed input; never reads out of bounds.
[[nodiscard]] UpdateMessage decode_update(std::span<const std::uint8_t> data,
                                          const CodecOptions& options = {});

[[nodiscard]] std::vector<std::uint8_t> encode_keepalive();
[[nodiscard]] std::vector<std::uint8_t> encode_open(const OpenMessage& open);
[[nodiscard]] OpenMessage decode_open(std::span<const std::uint8_t> data);
[[nodiscard]] std::vector<std::uint8_t> encode_notification(
    const NotificationMessage& notification);
[[nodiscard]] NotificationMessage decode_notification(
    std::span<const std::uint8_t> data);

/// Validates the 19-byte header and returns the message type.
[[nodiscard]] MessageType peek_type(std::span<const std::uint8_t> data);

/// Total message length claimed by the header (validated to be >= 19
/// and <= 4096). Useful for framing a TCP-style byte stream.
[[nodiscard]] std::size_t peek_length(std::span<const std::uint8_t> data);

}  // namespace bgpcc
