// AS_PATH attribute: ordered segments of AS numbers, with the helpers the
// paper's classifier needs (prepending detection = "set of ASes equal but
// sequence differs").
#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netbase/asn.h"

namespace bgpcc {

/// One AS_PATH segment (RFC 4271 §4.3 / 5.1.2).
struct AsPathSegment {
  enum class Type : std::uint8_t { kSet = 1, kSequence = 2 };

  Type type = Type::kSequence;
  std::vector<Asn> asns;

  friend auto operator<=>(const AsPathSegment&, const AsPathSegment&) = default;
};

/// A full AS path. The common case is a single AS_SEQUENCE segment;
/// AS_SETs (from aggregation) are supported for wire fidelity.
class AsPath {
 public:
  AsPath() = default;

  /// Builds a single-sequence path, left = nearest AS (most recent hop).
  [[nodiscard]] static AsPath sequence(std::initializer_list<std::uint32_t> asns);
  [[nodiscard]] static AsPath sequence(const std::vector<Asn>& asns);

  /// Builds a path from explicit segments (used by the wire decoder).
  /// Empty segments are dropped; throws ParseError on a segment with more
  /// than 255 ASNs (unencodable).
  [[nodiscard]] static AsPath from_segments(std::vector<AsPathSegment> segments);

  /// Parses "20205 3356 174 12654" (sets in braces: "{1 2}"). Throws
  /// ParseError on malformed input.
  [[nodiscard]] static AsPath from_string(std::string_view text);

  [[nodiscard]] const std::vector<AsPathSegment>& segments() const {
    return segments_;
  }
  [[nodiscard]] bool empty() const { return segments_.empty(); }

  /// Path length as used by the decision process: each AS in a sequence
  /// counts 1 (so prepending lengthens the path); each AS_SET counts 1 in
  /// total (RFC 4271 §9.1.2.2(a)).
  [[nodiscard]] int length() const;

  /// Prepends `asn` `count` times to the front (the local AS when
  /// advertising over eBGP, possibly repeated for traffic engineering).
  void prepend(Asn asn, int count = 1);

  /// Leftmost AS (the neighbor that sent the route), if any.
  [[nodiscard]] std::optional<Asn> first_as() const;
  /// Rightmost AS of the final sequence segment: the origin.
  [[nodiscard]] std::optional<Asn> origin_as() const;

  [[nodiscard]] bool contains(Asn asn) const;

  /// All ASNs in path order, segment structure flattened.
  [[nodiscard]] std::vector<Asn> flatten() const;

  /// Sorted unique ASNs. Two paths with equal as_set() but different
  /// sequences differ only by prepending — the paper's `x` types.
  [[nodiscard]] std::vector<Asn> as_set() const;

  /// True if the two paths involve exactly the same set of ASes.
  [[nodiscard]] bool same_as_set(const AsPath& other) const;

  /// True if this path differs from `other` only by prepending:
  /// not equal, but equal AS sets and equal de-duplicated sequences.
  [[nodiscard]] bool prepending_only_change_from(const AsPath& other) const;

  /// De-duplicated hop sequence: "1 1 2 3 3" -> {1,2,3}.
  [[nodiscard]] std::vector<Asn> dedup_sequence() const;

  /// "20205 3356 174 12654"; sets rendered "{174 3356}".
  [[nodiscard]] std::string to_string() const;

  friend auto operator<=>(const AsPath&, const AsPath&) = default;

 private:
  std::vector<AsPathSegment> segments_;
};

}  // namespace bgpcc
