#include "bgp/community.h"

#include <algorithm>
#include <charconv>

#include "netbase/error.h"

namespace bgpcc {
namespace {

std::uint32_t parse_u32(std::string_view text, std::uint64_t max,
                        std::string_view context) {
  std::uint64_t value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || value > max) {
    throw ParseError("malformed number '" + std::string(text) + "' in " +
                     std::string(context));
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace

Community Community::from_string(std::string_view text) {
  std::size_t colon = text.find(':');
  if (colon == std::string_view::npos) {
    return Community(parse_u32(text, 0xffffffffull, "community"));
  }
  std::uint32_t hi = parse_u32(text.substr(0, colon), 0xffff, "community");
  std::uint32_t lo = parse_u32(text.substr(colon + 1), 0xffff, "community");
  return Community((hi << 16) | lo);
}

std::string Community::to_string() const {
  return std::to_string(asn16()) + ":" + std::to_string(value16());
}

LargeCommunity LargeCommunity::from_string(std::string_view text) {
  std::size_t c1 = text.find(':');
  std::size_t c2 = (c1 == std::string_view::npos)
                       ? std::string_view::npos
                       : text.find(':', c1 + 1);
  if (c1 == std::string_view::npos || c2 == std::string_view::npos) {
    throw ParseError("large community needs ga:d1:d2: " + std::string(text));
  }
  LargeCommunity lc;
  lc.global_admin =
      parse_u32(text.substr(0, c1), 0xffffffffull, "large community");
  lc.data1 = parse_u32(text.substr(c1 + 1, c2 - c1 - 1), 0xffffffffull,
                       "large community");
  lc.data2 = parse_u32(text.substr(c2 + 1), 0xffffffffull, "large community");
  return lc;
}

std::string LargeCommunity::to_string() const {
  return std::to_string(global_admin) + ":" + std::to_string(data1) + ":" +
         std::to_string(data2);
}

CommunitySet::CommunitySet(std::initializer_list<Community> items) {
  for (Community c : items) add(c);
}

bool CommunitySet::add(Community c) {
  auto it = std::lower_bound(items_.begin(), items_.end(), c);
  if (it != items_.end() && *it == c) return false;
  items_.insert(it, c);
  return true;
}

bool CommunitySet::remove(Community c) {
  auto it = std::lower_bound(items_.begin(), items_.end(), c);
  if (it == items_.end() || *it != c) return false;
  items_.erase(it);
  return true;
}

std::size_t CommunitySet::remove_asn(std::uint16_t asn16) {
  auto first = std::lower_bound(items_.begin(), items_.end(),
                                Community::of(asn16, 0));
  auto last = std::upper_bound(items_.begin(), items_.end(),
                               Community::of(asn16, 0xffff));
  std::size_t n = static_cast<std::size_t>(last - first);
  items_.erase(first, last);
  return n;
}

bool CommunitySet::contains(Community c) const {
  return std::binary_search(items_.begin(), items_.end(), c);
}

std::string CommunitySet::to_string() const {
  std::string out;
  for (Community c : items_) {
    if (!out.empty()) out.push_back(' ');
    out += c.to_string();
  }
  return out;
}

LargeCommunitySet::LargeCommunitySet(
    std::initializer_list<LargeCommunity> items) {
  for (const LargeCommunity& c : items) add(c);
}

bool LargeCommunitySet::add(const LargeCommunity& c) {
  auto it = std::lower_bound(items_.begin(), items_.end(), c);
  if (it != items_.end() && *it == c) return false;
  items_.insert(it, c);
  return true;
}

bool LargeCommunitySet::remove(const LargeCommunity& c) {
  auto it = std::lower_bound(items_.begin(), items_.end(), c);
  if (it == items_.end() || *it != c) return false;
  items_.erase(it);
  return true;
}

bool LargeCommunitySet::contains(const LargeCommunity& c) const {
  return std::binary_search(items_.begin(), items_.end(), c);
}

std::string LargeCommunitySet::to_string() const {
  std::string out;
  for (const LargeCommunity& c : items_) {
    if (!out.empty()) out.push_back(' ');
    out += c.to_string();
  }
  return out;
}

}  // namespace bgpcc
