#include "bgp/aspath.h"

#include <algorithm>
#include <charconv>

#include "netbase/error.h"

namespace bgpcc {

AsPath AsPath::sequence(std::initializer_list<std::uint32_t> asns) {
  std::vector<Asn> list;
  list.reserve(asns.size());
  for (std::uint32_t a : asns) list.emplace_back(a);
  return sequence(list);
}

AsPath AsPath::sequence(const std::vector<Asn>& asns) {
  AsPath path;
  if (!asns.empty()) {
    path.segments_.push_back(
        AsPathSegment{AsPathSegment::Type::kSequence, asns});
  }
  return path;
}

AsPath AsPath::from_segments(std::vector<AsPathSegment> segments) {
  AsPath path;
  for (AsPathSegment& seg : segments) {
    if (seg.asns.empty()) continue;
    if (seg.asns.size() > 255) {
      throw ParseError("AS path segment longer than 255 ASNs");
    }
    path.segments_.push_back(std::move(seg));
  }
  return path;
}

AsPath AsPath::from_string(std::string_view text) {
  AsPath path;
  AsPathSegment current{AsPathSegment::Type::kSequence, {}};
  bool in_set = false;
  std::size_t i = 0;

  auto flush = [&](AsPathSegment::Type next_type) {
    if (!current.asns.empty()) path.segments_.push_back(current);
    current = AsPathSegment{next_type, {}};
  };

  while (i < text.size()) {
    char c = text[i];
    if (c == ' ' || c == '\t') {
      ++i;
    } else if (c == '{') {
      if (in_set) throw ParseError("nested '{' in AS path");
      flush(AsPathSegment::Type::kSet);
      in_set = true;
      ++i;
    } else if (c == '}') {
      if (!in_set) throw ParseError("unmatched '}' in AS path");
      if (current.asns.empty()) throw ParseError("empty AS_SET in AS path");
      flush(AsPathSegment::Type::kSequence);
      in_set = false;
      ++i;
    } else if (c >= '0' && c <= '9') {
      std::size_t j = i;
      while (j < text.size() && text[j] >= '0' && text[j] <= '9') ++j;
      std::uint64_t value = 0;
      auto [ptr, ec] = std::from_chars(text.data() + i, text.data() + j, value);
      if (ec != std::errc() || ptr != text.data() + j || value > 0xffffffffull) {
        throw ParseError("malformed ASN in AS path: " + std::string(text));
      }
      current.asns.emplace_back(static_cast<std::uint32_t>(value));
      i = j;
    } else {
      throw ParseError("unexpected character in AS path: " + std::string(text));
    }
  }
  if (in_set) throw ParseError("unterminated '{' in AS path");
  flush(AsPathSegment::Type::kSequence);
  return path;
}

int AsPath::length() const {
  int n = 0;
  for (const AsPathSegment& seg : segments_) {
    n += (seg.type == AsPathSegment::Type::kSet)
             ? 1
             : static_cast<int>(seg.asns.size());
  }
  return n;
}

void AsPath::prepend(Asn asn, int count) {
  if (count <= 0) return;
  if (segments_.empty() ||
      segments_.front().type != AsPathSegment::Type::kSequence ||
      segments_.front().asns.size() + static_cast<std::size_t>(count) > 255) {
    segments_.insert(segments_.begin(),
                     AsPathSegment{AsPathSegment::Type::kSequence, {}});
  }
  auto& front = segments_.front().asns;
  front.insert(front.begin(), static_cast<std::size_t>(count), asn);
}

std::optional<Asn> AsPath::first_as() const {
  for (const AsPathSegment& seg : segments_) {
    if (seg.type == AsPathSegment::Type::kSequence && !seg.asns.empty()) {
      return seg.asns.front();
    }
  }
  return std::nullopt;
}

std::optional<Asn> AsPath::origin_as() const {
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    if (it->type == AsPathSegment::Type::kSequence && !it->asns.empty()) {
      return it->asns.back();
    }
  }
  return std::nullopt;
}

bool AsPath::contains(Asn asn) const {
  for (const AsPathSegment& seg : segments_) {
    if (std::find(seg.asns.begin(), seg.asns.end(), asn) != seg.asns.end()) {
      return true;
    }
  }
  return false;
}

std::vector<Asn> AsPath::flatten() const {
  std::vector<Asn> out;
  for (const AsPathSegment& seg : segments_) {
    out.insert(out.end(), seg.asns.begin(), seg.asns.end());
  }
  return out;
}

std::vector<Asn> AsPath::as_set() const {
  std::vector<Asn> out = flatten();
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool AsPath::same_as_set(const AsPath& other) const {
  return as_set() == other.as_set();
}

std::vector<Asn> AsPath::dedup_sequence() const {
  std::vector<Asn> out;
  for (Asn asn : flatten()) {
    if (out.empty() || out.back() != asn) out.push_back(asn);
  }
  return out;
}

bool AsPath::prepending_only_change_from(const AsPath& other) const {
  if (*this == other) return false;
  return same_as_set(other) && dedup_sequence() == other.dedup_sequence();
}

std::string AsPath::to_string() const {
  std::string out;
  for (const AsPathSegment& seg : segments_) {
    if (!out.empty()) out.push_back(' ');
    if (seg.type == AsPathSegment::Type::kSet) out.push_back('{');
    bool first = true;
    for (Asn asn : seg.asns) {
      if (!first) out.push_back(' ');
      out += std::to_string(asn.value());
      first = false;
    }
    if (seg.type == AsPathSegment::Type::kSet) out.push_back('}');
  }
  return out;
}

}  // namespace bgpcc
