#include "bgp/attributes.h"

#include <algorithm>

namespace bgpcc {

std::string to_string(Origin origin) {
  switch (origin) {
    case Origin::kIgp:
      return "IGP";
    case Origin::kEgp:
      return "EGP";
    case Origin::kIncomplete:
      return "INCOMPLETE";
  }
  return "?";
}

void PathAttributes::add_unknown(RawAttribute attr) {
  auto it = std::lower_bound(unknown.begin(), unknown.end(), attr);
  unknown.insert(it, std::move(attr));
}

void PathAttributes::strip_non_transitive_unknown() {
  std::erase_if(unknown, [](const RawAttribute& a) {
    return a.is_optional() && !a.is_transitive();
  });
}

std::string PathAttributes::summary() const {
  std::string out = "path=[" + as_path.to_string() + "]";
  out += " origin=" + bgpcc::to_string(origin);
  out += " next_hop=" + next_hop.to_string();
  if (med) out += " med=" + std::to_string(*med);
  if (local_pref) out += " local_pref=" + std::to_string(*local_pref);
  if (atomic_aggregate) out += " atomic_aggregate";
  if (aggregator) {
    out += " aggregator=" + aggregator->asn.to_string() + "@" +
           aggregator->address.to_string();
  }
  if (!communities.empty()) out += " comm={" + communities.to_string() + "}";
  if (!large_communities.empty()) {
    out += " large={" + large_communities.to_string() + "}";
  }
  if (!unknown.empty()) {
    out += " unknown_attrs=" + std::to_string(unknown.size());
  }
  return out;
}

}  // namespace bgpcc
