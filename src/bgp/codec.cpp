#include "bgp/codec.h"

#include <algorithm>
#include <array>

#include "netbase/bytes.h"
#include "netbase/error.h"

namespace bgpcc {
namespace {

constexpr std::uint8_t kMarkerByte = 0xff;
constexpr std::uint16_t kAsTrans = 23456;

void write_header(ByteWriter& w, MessageType type) {
  for (int i = 0; i < 16; ++i) w.u8(kMarkerByte);
  (void)w.placeholder_u16();  // length, patched by finish_message()
  w.u8(static_cast<std::uint8_t>(type));
}

std::vector<std::uint8_t> finish_message(ByteWriter&& w) {
  if (w.size() > kBgpMaxMessageSize) {
    throw DecodeError("BGP message exceeds 4096 bytes: " +
                      std::to_string(w.size()));
  }
  w.patch_u16(16, static_cast<std::uint16_t>(w.size()));
  return std::move(w).take();
}

// Validates marker/length/type and returns a reader over the body.
ByteReader open_message(std::span<const std::uint8_t> data,
                        MessageType expected) {
  ByteReader r(data);
  if (data.size() < kBgpHeaderSize) {
    throw DecodeError("BGP message shorter than header");
  }
  for (int i = 0; i < 16; ++i) {
    if (r.u8() != kMarkerByte) throw DecodeError("BGP marker not all-ones");
  }
  std::size_t length = r.u16();
  if (length != data.size()) {
    throw DecodeError("BGP header length " + std::to_string(length) +
                      " != buffer size " + std::to_string(data.size()));
  }
  if (length > kBgpMaxMessageSize) {
    throw DecodeError("BGP message exceeds 4096 bytes");
  }
  auto type = static_cast<MessageType>(r.u8());
  if (type != expected) {
    throw DecodeError("unexpected BGP message type " +
                      std::to_string(static_cast<int>(type)));
  }
  return r;
}

void write_wire_prefix(ByteWriter& w, const Prefix& prefix) {
  w.u8(static_cast<std::uint8_t>(prefix.length()));
  std::size_t nbytes = (static_cast<std::size_t>(prefix.length()) + 7) / 8;
  w.bytes(prefix.address().bytes().subspan(0, nbytes));
}

Prefix read_wire_prefix(ByteReader& r, AddressFamily family) {
  int bits = r.u8();
  int width = (family == AddressFamily::kIpv4) ? 32 : 128;
  if (bits > width) {
    throw DecodeError("prefix length " + std::to_string(bits) +
                      " exceeds address width");
  }
  std::size_t nbytes = (static_cast<std::size_t>(bits) + 7) / 8;
  auto raw = r.bytes(nbytes);
  if (family == AddressFamily::kIpv4) {
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v = (v << 8) | (i < raw.size() ? raw[i] : 0);
    }
    return Prefix(IpAddress::v4(v), bits);
  }
  std::array<std::uint8_t, 16> bytes{};
  std::copy(raw.begin(), raw.end(), bytes.begin());
  return Prefix(IpAddress::v6(bytes), bits);
}

void write_asn(ByteWriter& w, Asn asn, bool four_byte) {
  if (four_byte) {
    w.u32(asn.value());
  } else {
    w.u16(asn.is_2byte() ? static_cast<std::uint16_t>(asn.value()) : kAsTrans);
  }
}

Asn read_asn(ByteReader& r, bool four_byte) {
  return four_byte ? Asn(r.u32()) : Asn(r.u16());
}

// Writes one attribute with correct (extended-)length framing.
void write_attr(ByteWriter& w, std::uint8_t flags, AttrType type,
                std::span<const std::uint8_t> payload) {
  if (payload.size() > 0xffff) {
    throw DecodeError("attribute payload too large");
  }
  bool extended = payload.size() > 0xff;
  if (extended) flags |= AttrFlags::kExtendedLength;
  w.u8(flags);
  w.u8(static_cast<std::uint8_t>(type));
  if (extended) {
    w.u16(static_cast<std::uint16_t>(payload.size()));
  } else {
    w.u8(static_cast<std::uint8_t>(payload.size()));
  }
  w.bytes(payload);
}

void encode_as_path(ByteWriter& w, const AsPath& path, bool four_byte) {
  ByteWriter payload;
  for (const AsPathSegment& seg : path.segments()) {
    if (seg.asns.empty()) continue;
    if (seg.asns.size() > 255) {
      throw DecodeError("AS path segment longer than 255");
    }
    payload.u8(static_cast<std::uint8_t>(seg.type));
    payload.u8(static_cast<std::uint8_t>(seg.asns.size()));
    for (Asn asn : seg.asns) write_asn(payload, asn, four_byte);
  }
  write_attr(w, AttrFlags::kTransitive, AttrType::kAsPath, payload.data());
}

AsPath decode_as_path(ByteReader r, bool four_byte) {
  std::vector<AsPathSegment> segments;
  while (!r.empty()) {
    AsPathSegment seg;
    auto type = r.u8();
    if (type != 1 && type != 2) {
      throw DecodeError("unknown AS path segment type " + std::to_string(type));
    }
    seg.type = static_cast<AsPathSegment::Type>(type);
    std::size_t count = r.u8();
    seg.asns.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      seg.asns.push_back(read_asn(r, four_byte));
    }
    segments.push_back(std::move(seg));
  }
  return AsPath::from_segments(std::move(segments));
}

void encode_communities(ByteWriter& w, const CommunitySet& communities) {
  ByteWriter payload;
  for (Community c : communities) payload.u32(c.raw());
  write_attr(w, AttrFlags::kOptional | AttrFlags::kTransitive,
             AttrType::kCommunities, payload.data());
}

void encode_large_communities(ByteWriter& w, const LargeCommunitySet& set) {
  ByteWriter payload;
  for (const LargeCommunity& c : set.items()) {
    payload.u32(c.global_admin);
    payload.u32(c.data1);
    payload.u32(c.data2);
  }
  write_attr(w, AttrFlags::kOptional | AttrFlags::kTransitive,
             AttrType::kLargeCommunities, payload.data());
}

void encode_mp_reach(ByteWriter& w, const IpAddress& next_hop,
                     std::span<const Prefix> nlri) {
  ByteWriter payload;
  payload.u16(afi_of(AddressFamily::kIpv6));
  payload.u8(1);  // SAFI unicast
  payload.u8(16);
  // MP next hop must be v6; map a v4 next hop to the v4-mapped form.
  if (next_hop.is_v6()) {
    payload.bytes(next_hop.bytes());
  } else {
    std::array<std::uint8_t, 16> mapped{};
    mapped[10] = 0xff;
    mapped[11] = 0xff;
    auto v4 = next_hop.bytes();
    std::copy(v4.begin(), v4.end(), mapped.begin() + 12);
    payload.bytes(mapped);
  }
  payload.u8(0);  // reserved
  for (const Prefix& p : nlri) write_wire_prefix(payload, p);
  write_attr(w, AttrFlags::kOptional, AttrType::kMpReachNlri, payload.data());
}

void encode_mp_unreach(ByteWriter& w, std::span<const Prefix> withdrawn) {
  ByteWriter payload;
  payload.u16(afi_of(AddressFamily::kIpv6));
  payload.u8(1);  // SAFI unicast
  for (const Prefix& p : withdrawn) write_wire_prefix(payload, p);
  write_attr(w, AttrFlags::kOptional, AttrType::kMpUnreachNlri,
             payload.data());
}

}  // namespace

std::vector<std::uint8_t> encode_update(const UpdateMessage& update,
                                        const CodecOptions& options) {
  if (!update.announced.empty() && !update.attrs) {
    throw ConfigError("UPDATE announces prefixes but has no attributes");
  }
  std::vector<Prefix> withdrawn_v4;
  std::vector<Prefix> withdrawn_v6;
  for (const Prefix& p : update.withdrawn) {
    (p.is_v4() ? withdrawn_v4 : withdrawn_v6).push_back(p);
  }
  std::vector<Prefix> announced_v4;
  std::vector<Prefix> announced_v6;
  for (const Prefix& p : update.announced) {
    (p.is_v4() ? announced_v4 : announced_v6).push_back(p);
  }
  if (!announced_v4.empty() && update.attrs->next_hop.is_v6()) {
    throw ConfigError("IPv4 NLRI requires an IPv4 next hop");
  }

  ByteWriter w;
  write_header(w, MessageType::kUpdate);

  std::size_t withdrawn_len_at = w.placeholder_u16();
  std::size_t before = w.size();
  for (const Prefix& p : withdrawn_v4) write_wire_prefix(w, p);
  w.patch_u16(withdrawn_len_at, static_cast<std::uint16_t>(w.size() - before));

  std::size_t attrs_len_at = w.placeholder_u16();
  before = w.size();
  if (update.attrs) {
    const PathAttributes& a = *update.attrs;
    {
      ByteWriter payload;
      payload.u8(static_cast<std::uint8_t>(a.origin));
      write_attr(w, AttrFlags::kTransitive, AttrType::kOrigin, payload.data());
    }
    encode_as_path(w, a.as_path, options.four_byte_asn);
    if (!announced_v4.empty()) {
      ByteWriter payload;
      payload.bytes(a.next_hop.bytes());
      write_attr(w, AttrFlags::kTransitive, AttrType::kNextHop,
                 payload.data());
    }
    if (a.med) {
      ByteWriter payload;
      payload.u32(*a.med);
      write_attr(w, AttrFlags::kOptional, AttrType::kMed, payload.data());
    }
    if (a.local_pref) {
      ByteWriter payload;
      payload.u32(*a.local_pref);
      write_attr(w, AttrFlags::kTransitive, AttrType::kLocalPref,
                 payload.data());
    }
    if (a.atomic_aggregate) {
      write_attr(w, AttrFlags::kTransitive, AttrType::kAtomicAggregate, {});
    }
    if (a.aggregator) {
      ByteWriter payload;
      write_asn(payload, a.aggregator->asn, options.four_byte_asn);
      payload.bytes(a.aggregator->address.bytes().subspan(0, 4));
      write_attr(w, AttrFlags::kOptional | AttrFlags::kTransitive,
                 AttrType::kAggregator, payload.data());
    }
    if (!a.communities.empty()) encode_communities(w, a.communities);
    if (!announced_v6.empty()) encode_mp_reach(w, a.next_hop, announced_v6);
    if (!a.large_communities.empty()) {
      encode_large_communities(w, a.large_communities);
    }
    for (const RawAttribute& raw : a.unknown) {
      write_attr(w, raw.flags, static_cast<AttrType>(raw.type), raw.value);
    }
  }
  if (!withdrawn_v6.empty()) encode_mp_unreach(w, withdrawn_v6);
  w.patch_u16(attrs_len_at, static_cast<std::uint16_t>(w.size() - before));

  for (const Prefix& p : announced_v4) write_wire_prefix(w, p);

  return finish_message(std::move(w));
}

UpdateMessage decode_update(std::span<const std::uint8_t> data,
                            const CodecOptions& options) {
  ByteReader r = open_message(data, MessageType::kUpdate);
  UpdateMessage update;

  std::size_t withdrawn_len = r.u16();
  ByteReader withdrawn = r.sub(withdrawn_len);
  while (!withdrawn.empty()) {
    update.withdrawn.push_back(
        read_wire_prefix(withdrawn, AddressFamily::kIpv4));
  }

  std::size_t attrs_len = r.u16();
  ByteReader attrs_reader = r.sub(attrs_len);
  PathAttributes attrs;
  bool have_any_attr = false;
  bool have_origin = false;
  bool have_as_path = false;
  bool have_next_hop = false;
  std::vector<std::uint8_t> seen_types;

  while (!attrs_reader.empty()) {
    std::uint8_t flags = attrs_reader.u8();
    std::uint8_t type = attrs_reader.u8();
    std::size_t len = (flags & AttrFlags::kExtendedLength)
                          ? attrs_reader.u16()
                          : attrs_reader.u8();
    ByteReader value = attrs_reader.sub(len);
    // MP_UNREACH alone does not constitute an attribute block worth
    // surfacing: a pure IPv6 withdrawal has no semantic attributes.
    if (type != static_cast<std::uint8_t>(AttrType::kMpUnreachNlri)) {
      have_any_attr = true;
    }
    if (std::find(seen_types.begin(), seen_types.end(), type) !=
        seen_types.end()) {
      throw DecodeError("duplicate path attribute type " +
                        std::to_string(type));
    }
    seen_types.push_back(type);

    switch (static_cast<AttrType>(type)) {
      case AttrType::kOrigin: {
        std::uint8_t v = value.u8();
        if (v > 2) throw DecodeError("invalid ORIGIN value");
        attrs.origin = static_cast<Origin>(v);
        have_origin = true;
        break;
      }
      case AttrType::kAsPath:
        attrs.as_path =
            decode_as_path(std::move(value), options.four_byte_asn);
        have_as_path = true;
        break;
      case AttrType::kNextHop: {
        if (value.remaining() != 4) throw DecodeError("NEXT_HOP must be 4B");
        std::uint32_t v = value.u32();
        attrs.next_hop = IpAddress::v4(v);
        have_next_hop = true;
        break;
      }
      case AttrType::kMed:
        attrs.med = value.u32();
        break;
      case AttrType::kLocalPref:
        attrs.local_pref = value.u32();
        break;
      case AttrType::kAtomicAggregate:
        if (value.remaining() != 0) {
          throw DecodeError("ATOMIC_AGGREGATE must be empty");
        }
        attrs.atomic_aggregate = true;
        break;
      case AttrType::kAggregator: {
        Asn asn = read_asn(value, options.four_byte_asn);
        if (value.remaining() != 4) throw DecodeError("bad AGGREGATOR length");
        attrs.aggregator = Aggregator{asn, IpAddress::v4(value.u32())};
        break;
      }
      case AttrType::kCommunities: {
        if (value.remaining() % 4 != 0) {
          throw DecodeError("COMMUNITIES length not a multiple of 4");
        }
        while (!value.empty()) attrs.communities.add(Community(value.u32()));
        break;
      }
      case AttrType::kLargeCommunities: {
        if (value.remaining() % 12 != 0) {
          throw DecodeError("LARGE_COMMUNITY length not a multiple of 12");
        }
        while (!value.empty()) {
          LargeCommunity lc;
          lc.global_admin = value.u32();
          lc.data1 = value.u32();
          lc.data2 = value.u32();
          attrs.large_communities.add(lc);
        }
        break;
      }
      case AttrType::kMpReachNlri: {
        std::uint16_t afi = value.u16();
        std::uint8_t safi = value.u8();
        if (afi != afi_of(AddressFamily::kIpv6) || safi != 1) {
          throw DecodeError("unsupported MP_REACH AFI/SAFI");
        }
        std::size_t nh_len = value.u8();
        if (nh_len != 16 && nh_len != 32) {
          throw DecodeError("unsupported MP next hop length");
        }
        attrs.next_hop = IpAddress::v6(value.bytes(16));
        if (nh_len == 32) value.skip(16);  // link-local scope, ignored
        value.skip(1);                     // reserved
        while (!value.empty()) {
          update.announced.push_back(
              read_wire_prefix(value, AddressFamily::kIpv6));
        }
        break;
      }
      case AttrType::kMpUnreachNlri: {
        std::uint16_t afi = value.u16();
        std::uint8_t safi = value.u8();
        if (afi != afi_of(AddressFamily::kIpv6) || safi != 1) {
          throw DecodeError("unsupported MP_UNREACH AFI/SAFI");
        }
        while (!value.empty()) {
          update.withdrawn.push_back(
              read_wire_prefix(value, AddressFamily::kIpv6));
        }
        break;
      }
      default: {
        RawAttribute raw;
        raw.flags = flags;
        raw.type = type;
        auto payload = value.bytes(value.remaining());
        raw.value.assign(payload.begin(), payload.end());
        attrs.add_unknown(std::move(raw));
        break;
      }
    }
  }

  while (!r.empty()) {
    update.announced.push_back(read_wire_prefix(r, AddressFamily::kIpv4));
  }

  if (!update.announced.empty()) {
    if (!have_origin || !have_as_path) {
      throw DecodeError("UPDATE with NLRI missing mandatory attributes");
    }
    bool has_v4 = std::any_of(update.announced.begin(), update.announced.end(),
                              [](const Prefix& p) { return p.is_v4(); });
    if (has_v4 && !have_next_hop) {
      throw DecodeError("UPDATE with IPv4 NLRI missing NEXT_HOP");
    }
    update.attrs = std::move(attrs);
  } else if (have_any_attr) {
    // Attribute block without NLRI (e.g. MP-only or anomalous update):
    // keep attributes so the caller can inspect them.
    update.attrs = std::move(attrs);
  }
  return update;
}

std::vector<std::uint8_t> encode_keepalive() {
  ByteWriter w;
  write_header(w, MessageType::kKeepalive);
  return finish_message(std::move(w));
}

std::vector<std::uint8_t> encode_open(const OpenMessage& open) {
  ByteWriter w;
  write_header(w, MessageType::kOpen);
  w.u8(open.version);
  w.u16(open.asn.is_2byte() ? static_cast<std::uint16_t>(open.asn.value())
                            : kAsTrans);
  w.u16(open.hold_time);
  w.u32(open.bgp_identifier);
  if (open.four_byte_asn_capable) {
    // Optional parameter: one capability (type 65 = 4-octet AS, RFC 6793).
    ByteWriter cap;
    cap.u8(65);
    cap.u8(4);
    cap.u32(open.asn.value());
    ByteWriter param;
    param.u8(2);  // capabilities
    param.u8(static_cast<std::uint8_t>(cap.size()));
    param.bytes(cap.data());
    w.u8(static_cast<std::uint8_t>(param.size()));
    w.bytes(param.data());
  } else {
    w.u8(0);
  }
  return finish_message(std::move(w));
}

OpenMessage decode_open(std::span<const std::uint8_t> data) {
  ByteReader r = open_message(data, MessageType::kOpen);
  OpenMessage open;
  open.version = r.u8();
  std::uint16_t asn16 = r.u16();
  open.asn = Asn(asn16);
  open.hold_time = r.u16();
  open.bgp_identifier = r.u32();
  open.four_byte_asn_capable = false;
  std::size_t params_len = r.u8();
  ByteReader params = r.sub(params_len);
  while (!params.empty()) {
    std::uint8_t param_type = params.u8();
    std::size_t param_len = params.u8();
    ByteReader param = params.sub(param_len);
    if (param_type != 2) continue;  // only capabilities handled
    while (!param.empty()) {
      std::uint8_t cap_type = param.u8();
      std::size_t cap_len = param.u8();
      ByteReader cap = param.sub(cap_len);
      if (cap_type == 65 && cap.remaining() == 4) {
        open.four_byte_asn_capable = true;
        open.asn = Asn(cap.u32());
      }
    }
  }
  return open;
}

std::vector<std::uint8_t> encode_notification(
    const NotificationMessage& notification) {
  ByteWriter w;
  write_header(w, MessageType::kNotification);
  w.u8(notification.error_code);
  w.u8(notification.error_subcode);
  w.bytes(notification.data);
  return finish_message(std::move(w));
}

NotificationMessage decode_notification(std::span<const std::uint8_t> data) {
  ByteReader r = open_message(data, MessageType::kNotification);
  NotificationMessage n;
  n.error_code = r.u8();
  n.error_subcode = r.u8();
  auto rest = r.bytes(r.remaining());
  n.data.assign(rest.begin(), rest.end());
  return n;
}

MessageType peek_type(std::span<const std::uint8_t> data) {
  if (data.size() < kBgpHeaderSize) {
    throw DecodeError("BGP message shorter than header");
  }
  auto type = data[18];
  if (type < 1 || type > 4) {
    throw DecodeError("unknown BGP message type " + std::to_string(type));
  }
  return static_cast<MessageType>(type);
}

std::size_t peek_length(std::span<const std::uint8_t> data) {
  if (data.size() < kBgpHeaderSize) {
    throw DecodeError("BGP message shorter than header");
  }
  std::size_t length = (static_cast<std::size_t>(data[16]) << 8) | data[17];
  if (length < kBgpHeaderSize || length > kBgpMaxMessageSize) {
    throw DecodeError("implausible BGP length " + std::to_string(length));
  }
  return length;
}

}  // namespace bgpcc
