// Decoded BGP path attributes (RFC 4271 §5) plus pass-through storage for
// unrecognized optional transitive attributes — the propagation property
// that makes communities (and their side effects) spread across ASes.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/aspath.h"
#include "bgp/community.h"
#include "netbase/ip.h"

namespace bgpcc {

/// ORIGIN attribute codes; lower is preferred in the decision process.
enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

[[nodiscard]] std::string to_string(Origin origin);

/// AGGREGATOR attribute (RFC 4271 §5.1.7).
struct Aggregator {
  Asn asn;
  IpAddress address;

  friend auto operator<=>(const Aggregator&, const Aggregator&) = default;
};

/// Attribute type codes used on the wire.
enum class AttrType : std::uint8_t {
  kOrigin = 1,
  kAsPath = 2,
  kNextHop = 3,
  kMed = 4,
  kLocalPref = 5,
  kAtomicAggregate = 6,
  kAggregator = 7,
  kCommunities = 8,
  kMpReachNlri = 14,
  kMpUnreachNlri = 15,
  kLargeCommunities = 32,
};

/// Attribute flag bits (RFC 4271 §4.3).
struct AttrFlags {
  static constexpr std::uint8_t kOptional = 0x80;
  static constexpr std::uint8_t kTransitive = 0x40;
  static constexpr std::uint8_t kPartial = 0x20;
  static constexpr std::uint8_t kExtendedLength = 0x10;
};

/// An attribute this implementation does not interpret, carried verbatim.
/// Per RFC 4271 §5, unrecognized *optional transitive* attributes must be
/// propagated (with the Partial bit set) — exactly the mechanism that lets
/// communities cross ASes that don't understand them.
struct RawAttribute {
  std::uint8_t flags = 0;
  std::uint8_t type = 0;
  std::vector<std::uint8_t> value;

  [[nodiscard]] bool is_optional() const {
    return (flags & AttrFlags::kOptional) != 0;
  }
  [[nodiscard]] bool is_transitive() const {
    return (flags & AttrFlags::kTransitive) != 0;
  }

  friend auto operator<=>(const RawAttribute&, const RawAttribute&) = default;
};

/// The full decoded attribute block attached to a route.
///
/// Equality of two PathAttributes is exact attribute-by-attribute equality;
/// the classifier uses finer-grained comparisons (path vs communities) on
/// top of this.
struct PathAttributes {
  Origin origin = Origin::kIgp;
  AsPath as_path;
  IpAddress next_hop;
  std::optional<std::uint32_t> med;
  std::optional<std::uint32_t> local_pref;
  bool atomic_aggregate = false;
  std::optional<Aggregator> aggregator;
  CommunitySet communities;
  LargeCommunitySet large_communities;
  /// Unrecognized attributes, kept sorted by (type, value) for canonical
  /// equality. Only optional transitive ones survive re-advertisement.
  std::vector<RawAttribute> unknown;

  /// Adds an unknown attribute preserving sorted order.
  void add_unknown(RawAttribute attr);

  /// Drops unknown attributes that are optional non-transitive (those are
  /// never forwarded past the receiving speaker).
  void strip_non_transitive_unknown();

  /// Multi-line human rendering for traces and examples.
  [[nodiscard]] std::string summary() const;

  friend auto operator<=>(const PathAttributes&,
                          const PathAttributes&) = default;
};

}  // namespace bgpcc
