#include "policy/policy.h"

namespace bgpcc {

bool RouteMatch::matches(const Prefix& prefix,
                         const PathAttributes& attrs) const {
  if (!prefixes.empty()) {
    bool hit = false;
    for (const Prefix& candidate : prefixes) {
      if (candidate.contains(prefix)) {
        hit = true;
        break;
      }
    }
    if (!hit) return false;
  }
  if (!any_community.empty()) {
    bool hit = false;
    for (Community c : any_community) {
      if (attrs.communities.contains(c)) {
        hit = true;
        break;
      }
    }
    if (!hit) return false;
  }
  if (path_contains && !attrs.as_path.contains(*path_contains)) return false;
  return true;
}

Policy Policy::tag_all(Community community) {
  Policy p;
  PolicyRule rule;
  rule.name = "tag-all:" + community.to_string();
  rule.actions.add_communities = {community};
  p.add_rule(std::move(rule));
  return p;
}

Policy Policy::clean_all() {
  Policy p;
  PolicyRule rule;
  rule.name = "clean-all";
  rule.actions.remove_all_communities = true;
  rule.actions.remove_all_large_communities = true;
  p.add_rule(std::move(rule));
  return p;
}

Policy Policy::clean_asn(std::uint16_t asn16) {
  Policy p;
  PolicyRule rule;
  rule.name = "clean-asn:" + std::to_string(asn16);
  rule.actions.remove_communities_of_asn = asn16;
  p.add_rule(std::move(rule));
  return p;
}

Policy Policy::deny_all() {
  Policy p;
  PolicyRule rule;
  rule.name = "deny-all";
  rule.actions.deny = true;
  p.add_rule(std::move(rule));
  return p;
}

Policy Policy::prepend_all(int count) {
  Policy p;
  PolicyRule rule;
  rule.name = "prepend:" + std::to_string(count);
  rule.actions.prepend_count = count;
  p.add_rule(std::move(rule));
  return p;
}

bool Policy::apply(const Prefix& prefix, PathAttributes& attrs,
                   Asn prepend_asn) const {
  for (const PolicyRule& rule : rules_) {
    if (!rule.match.matches(prefix, attrs)) continue;
    const RouteActions& a = rule.actions;
    if (a.deny) return false;
    if (a.remove_all_communities) {
      attrs.communities.clear();
    } else {
      if (a.remove_communities_of_asn) {
        attrs.communities.remove_asn(*a.remove_communities_of_asn);
      }
      for (Community c : a.remove_communities) attrs.communities.remove(c);
    }
    for (Community c : a.add_communities) attrs.communities.add(c);
    if (a.remove_all_large_communities) attrs.large_communities.clear();
    for (const LargeCommunity& c : a.add_large_communities) {
      attrs.large_communities.add(c);
    }
    if (a.set_local_pref) attrs.local_pref = *a.set_local_pref;
    if (a.clear_med) attrs.med.reset();
    if (a.set_med) attrs.med = *a.set_med;
    if (a.prepend_count > 0) attrs.as_path.prepend(prepend_asn, a.prepend_count);
    return true;  // first matching rule wins
  }
  return true;
}

}  // namespace bgpcc
