// Route policies: ordered match/action rules applied at session ingress or
// egress. Community tagging and cleaning — the operations whose placement
// (ingress vs egress) the paper's Exp2-Exp4 distinguish — are first-class
// actions here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/attributes.h"
#include "netbase/prefix.h"

namespace bgpcc {

/// Conditions a rule can test. All present conditions must hold (AND).
struct RouteMatch {
  /// Prefix must be equal to, or more specific than, one of these.
  std::vector<Prefix> prefixes;
  /// Attribute block must contain at least one of these communities.
  std::vector<Community> any_community;
  /// AS path must contain this AS.
  std::optional<Asn> path_contains;

  [[nodiscard]] bool matches(const Prefix& prefix,
                             const PathAttributes& attrs) const;
};

/// Side effects a rule can apply to the attribute block.
struct RouteActions {
  /// Reject the route entirely (ingress: not installed; egress: not sent).
  bool deny = false;

  std::vector<Community> add_communities;
  std::vector<Community> remove_communities;
  /// Strip every community ("community cleaning").
  bool remove_all_communities = false;
  /// Strip communities whose high 16 bits equal this ASN
  /// ("clean my own namespace").
  std::optional<std::uint16_t> remove_communities_of_asn;
  std::vector<LargeCommunity> add_large_communities;
  bool remove_all_large_communities = false;

  std::optional<std::uint32_t> set_local_pref;
  std::optional<std::uint32_t> set_med;
  bool clear_med = false;
  /// Prepend own ASN this many *extra* times on egress (traffic
  /// engineering). Applied by the router using its own ASN.
  int prepend_count = 0;
};

struct PolicyRule {
  std::string name;  // for traces; optional
  RouteMatch match;
  RouteActions actions;
};

/// An ordered rule chain. First matching rule wins (its actions are
/// applied); routes matching no rule pass through unchanged.
class Policy {
 public:
  Policy() = default;

  Policy& add_rule(PolicyRule rule) {
    rules_.push_back(std::move(rule));
    return *this;
  }

  /// Convenience factories for the configurations the paper studies.
  /// Tag every route with `community` (geo/ingress tagging).
  [[nodiscard]] static Policy tag_all(Community community);
  /// Strip all communities (cleaning), regardless of match.
  [[nodiscard]] static Policy clean_all();
  /// Strip only communities in the given AS's namespace.
  [[nodiscard]] static Policy clean_asn(std::uint16_t asn16);
  /// Reject everything (e.g. a collector that must not advertise).
  [[nodiscard]] static Policy deny_all();
  /// Prepend own ASN `count` extra times on every advertisement.
  [[nodiscard]] static Policy prepend_all(int count);

  /// Applies the first matching rule to `attrs`. Returns false if the
  /// route is denied. `prepend_asn` is the router's own ASN, used by
  /// prepend actions; pass the local ASN on egress.
  [[nodiscard]] bool apply(const Prefix& prefix, PathAttributes& attrs,
                           Asn prepend_asn) const;

  [[nodiscard]] bool empty() const { return rules_.empty(); }
  [[nodiscard]] const std::vector<PolicyRule>& rules() const { return rules_; }

 private:
  std::vector<PolicyRule> rules_;
};

}  // namespace bgpcc
