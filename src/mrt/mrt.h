// RFC 6396 MRT framing: the archive format RouteViews and RIPE RIS publish.
//
// Supported record types: BGP4MP / BGP4MP_ET with MESSAGE, MESSAGE_AS4 and
// STATE_CHANGE(_AS4) subtypes. BGP4MP_ET carries microsecond timestamps;
// plain BGP4MP is second-granularity — the paper notes some collectors only
// record seconds, and the analysis pipeline's normalization step handles
// exactly that distinction.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "netbase/asn.h"
#include "netbase/ip.h"
#include "netbase/timeutil.h"

namespace bgpcc::mrt {

/// MRT record types (RFC 6396 §4).
enum class RecordType : std::uint16_t {
  kBgp4mp = 16,
  kBgp4mpEt = 17,
};

/// Upper bound on the header length field the reader will accept. A lying
/// length (e.g. 0xFFFFFFFF on a truncated archive) must fail fast with
/// DecodeError instead of attempting a multi-gigabyte allocation. Real
/// BGP4MP bodies are < 5 KiB (endpoints + one 4096-byte BGP message); the
/// bound is generous for any legitimate record.
inline constexpr std::uint32_t kMaxRecordLength = 16u * 1024 * 1024;

/// BGP4MP subtypes (RFC 6396 §4.4).
enum class Bgp4mpSubtype : std::uint16_t {
  kStateChange = 0,
  kMessage = 1,
  kMessageAs4 = 4,
  kStateChangeAs4 = 5,
};

/// FSM states for STATE_CHANGE records (RFC 4271 §8.2.2 numbering).
enum class FsmState : std::uint16_t {
  kIdle = 1,
  kConnect = 2,
  kActive = 3,
  kOpenSent = 4,
  kOpenConfirm = 5,
  kEstablished = 6,
};

/// A raw MRT record: header fields plus undecoded body.
struct Record {
  Timestamp timestamp;  // microsecond precision iff the type is *_ET
  std::uint16_t type = 0;
  std::uint16_t subtype = 0;
  std::vector<std::uint8_t> body;  // excludes the ET microsecond field

  [[nodiscard]] bool is_bgp4mp() const {
    return type == static_cast<std::uint16_t>(RecordType::kBgp4mp) ||
           type == static_cast<std::uint16_t>(RecordType::kBgp4mpEt);
  }
};

/// Decoded BGP4MP_MESSAGE(_AS4): one BGP message seen on one collector
/// session, with the session endpoints identified.
struct Bgp4mpMessage {
  Asn peer_asn;
  Asn local_asn;
  std::uint16_t interface_index = 0;
  IpAddress peer_ip;
  IpAddress local_ip;
  /// The full BGP message, including its 19-byte header.
  std::vector<std::uint8_t> bgp_message;
};

/// Decoded BGP4MP_STATE_CHANGE(_AS4).
struct Bgp4mpStateChange {
  Asn peer_asn;
  Asn local_asn;
  std::uint16_t interface_index = 0;
  IpAddress peer_ip;
  IpAddress local_ip;
  FsmState old_state = FsmState::kIdle;
  FsmState new_state = FsmState::kIdle;
};

/// Serializes one record (header + body) to the stream.
class Writer {
 public:
  /// Writes through an externally owned stream (must be binary-mode).
  explicit Writer(std::ostream& out) : out_(&out) {}

  /// `extended_time` selects BGP4MP_ET (microsecond stamps) vs BGP4MP
  /// (second stamps — collectors configured like the paper's
  /// second-granularity ones). `as4` false writes the legacy two-octet
  /// MESSAGE subtype (both ASNs must fit 16 bits; throws ConfigError
  /// otherwise) — the inner BGP message must then also use two-octet
  /// AS-path encoding.
  void write_message(Timestamp when, const Bgp4mpMessage& message,
                     bool extended_time = true, bool as4 = true);
  void write_state_change(Timestamp when, const Bgp4mpStateChange& change,
                          bool extended_time = true);
  /// Low-level escape hatch: write a pre-built record verbatim.
  void write_record(const Record& record);

  [[nodiscard]] std::size_t records_written() const { return count_; }

 private:
  std::ostream* out_;
  std::size_t count_ = 0;
};

/// Pull-based record reader.
class Reader {
 public:
  explicit Reader(std::istream& in) : in_(&in) {}

  /// Returns the next record, or nullopt at clean EOF. Throws DecodeError
  /// on a truncated or corrupt record, an unknown record type or BGP4MP
  /// subtype, or a length field beyond kMaxRecordLength — malformed
  /// archives fail loudly instead of being silently skipped or OOMing.
  [[nodiscard]] std::optional<Record> next();

  /// Rebinds the reader to another stream (multi-archive ingestion reuses
  /// one reader across files instead of constructing one per file).
  void reset(std::istream& in) { in_ = &in; }

  /// Decodes a BGP4MP_MESSAGE(_AS4) body. Throws DecodeError if the record
  /// has a different type/subtype. `four_byte` output reports whether the
  /// record used AS4 encoding (needed to decode the inner BGP message).
  [[nodiscard]] static Bgp4mpMessage parse_message(const Record& record,
                                                   bool* four_byte = nullptr);
  [[nodiscard]] static Bgp4mpStateChange parse_state_change(
      const Record& record);

 private:
  std::istream* in_;
};

/// Batch framing for the parallel ingestion engine (core/ingest.h): pulls
/// up to `chunk_records` raw records per call without decoding bodies, so
/// a sequential framer can feed decode workers. A zero chunk size is
/// treated as 1.
class ChunkedReader {
 public:
  ChunkedReader(std::istream& in, std::size_t chunk_records)
      : reader_(in), chunk_records_(chunk_records == 0 ? 1 : chunk_records) {}

  /// Returns the next batch (full except possibly the last), or nullopt at
  /// clean EOF. Throws DecodeError on a truncated or corrupt record.
  [[nodiscard]] std::optional<std::vector<Record>> next_chunk();

  /// Rebinds to another stream and clears the EOF latch so the same
  /// framer (and its cumulative records_read()) serves a whole archive
  /// directory. The chunk size is preserved.
  void reset(std::istream& in) {
    reader_.reset(in);
    done_ = false;
  }

  /// Total records handed out so far (cumulative across reset()s).
  [[nodiscard]] std::size_t records_read() const { return records_read_; }

 private:
  Reader reader_;
  std::size_t chunk_records_;
  std::size_t records_read_ = 0;
  bool done_ = false;
};

/// Convenience: reads every BGP4MP message record from an MRT file —
/// transparently inflating gzip/bzip2 archives (mrt/source.h).
/// Returns (timestamp, message, four_byte_asn) triples in file order.
struct TimedMessage {
  Timestamp timestamp;
  Bgp4mpMessage message;
  bool four_byte_asn = true;
};
[[nodiscard]] std::vector<TimedMessage> read_all_messages(
    const std::string& path);

}  // namespace bgpcc::mrt
