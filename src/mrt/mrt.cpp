#include "mrt/mrt.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "mrt/source.h"
#include "netbase/bytes.h"
#include "netbase/error.h"

namespace bgpcc::mrt {
namespace {

void write_ip(ByteWriter& w, const IpAddress& addr, AddressFamily family) {
  if (addr.family() != family) {
    throw ConfigError("BGP4MP peer/local address family mismatch");
  }
  w.bytes(addr.bytes());
}

IpAddress read_ip(ByteReader& r, std::uint16_t afi) {
  if (afi == 1) return IpAddress::v4(r.u32());
  if (afi == 2) return IpAddress::v6(r.bytes(16));
  throw DecodeError("unknown AFI " + std::to_string(afi) + " in BGP4MP");
}

// Serializes the BGP4MP_* body shared by message and state-change records.
void write_endpoints(ByteWriter& w, Asn peer, Asn local,
                     std::uint16_t ifindex, const IpAddress& peer_ip,
                     const IpAddress& local_ip, bool as4) {
  if (as4) {
    w.u32(peer.value());
    w.u32(local.value());
  } else {
    w.u16(static_cast<std::uint16_t>(peer.value()));
    w.u16(static_cast<std::uint16_t>(local.value()));
  }
  w.u16(ifindex);
  w.u16(afi_of(peer_ip.family()));
  write_ip(w, peer_ip, peer_ip.family());
  write_ip(w, local_ip, peer_ip.family());
}

struct Endpoints {
  Asn peer;
  Asn local;
  std::uint16_t ifindex = 0;
  IpAddress peer_ip;
  IpAddress local_ip;
};

Endpoints read_endpoints(ByteReader& r, bool as4) {
  Endpoints e;
  if (as4) {
    e.peer = Asn(r.u32());
    e.local = Asn(r.u32());
  } else {
    e.peer = Asn(r.u16());
    e.local = Asn(r.u16());
  }
  e.ifindex = r.u16();
  std::uint16_t afi = r.u16();
  e.peer_ip = read_ip(r, afi);
  e.local_ip = read_ip(r, afi);
  return e;
}

void write_record_bytes(std::ostream& out, Timestamp when,
                        RecordType record_type, std::uint16_t subtype,
                        const std::vector<std::uint8_t>& body,
                        bool extended_time) {
  ByteWriter header;
  header.u32(static_cast<std::uint32_t>(when.unix_seconds()));
  header.u16(static_cast<std::uint16_t>(record_type));
  header.u16(subtype);
  std::size_t length = body.size() + (extended_time ? 4 : 0);
  header.u32(static_cast<std::uint32_t>(length));
  if (extended_time) {
    header.u32(static_cast<std::uint32_t>(when.unix_micros() % 1000000));
  }
  out.write(reinterpret_cast<const char*>(header.data().data()),
            static_cast<std::streamsize>(header.size()));
  out.write(reinterpret_cast<const char*>(body.data()),
            static_cast<std::streamsize>(body.size()));
  if (!out) throw DecodeError("MRT write failed (stream error)");
}

// The reader accepts exactly the record shapes this library understands;
// anything else is a hard DecodeError so corrupt archives cannot be
// silently skipped past.
bool known_record_type(std::uint16_t type) {
  return type == static_cast<std::uint16_t>(RecordType::kBgp4mp) ||
         type == static_cast<std::uint16_t>(RecordType::kBgp4mpEt);
}

bool known_bgp4mp_subtype(std::uint16_t subtype) {
  switch (static_cast<Bgp4mpSubtype>(subtype)) {
    case Bgp4mpSubtype::kStateChange:
    case Bgp4mpSubtype::kMessage:
    case Bgp4mpSubtype::kMessageAs4:
    case Bgp4mpSubtype::kStateChangeAs4:
      return true;
  }
  return false;
}

}  // namespace

void Writer::write_message(Timestamp when, const Bgp4mpMessage& message,
                           bool extended_time, bool as4) {
  if (!as4 && (message.peer_asn.value() > 0xFFFF ||
               message.local_asn.value() > 0xFFFF)) {
    throw ConfigError("two-octet BGP4MP message cannot carry a 4-byte ASN");
  }
  ByteWriter body;
  write_endpoints(body, message.peer_asn, message.local_asn,
                  message.interface_index, message.peer_ip, message.local_ip,
                  as4);
  body.bytes(message.bgp_message);
  write_record_bytes(
      *out_, when,
      extended_time ? RecordType::kBgp4mpEt : RecordType::kBgp4mp,
      static_cast<std::uint16_t>(as4 ? Bgp4mpSubtype::kMessageAs4
                                     : Bgp4mpSubtype::kMessage),
      body.data(), extended_time);
  ++count_;
}

void Writer::write_state_change(Timestamp when,
                                const Bgp4mpStateChange& change,
                                bool extended_time) {
  ByteWriter body;
  write_endpoints(body, change.peer_asn, change.local_asn,
                  change.interface_index, change.peer_ip, change.local_ip,
                  /*as4=*/true);
  body.u16(static_cast<std::uint16_t>(change.old_state));
  body.u16(static_cast<std::uint16_t>(change.new_state));
  write_record_bytes(
      *out_, when,
      extended_time ? RecordType::kBgp4mpEt : RecordType::kBgp4mp,
      static_cast<std::uint16_t>(Bgp4mpSubtype::kStateChangeAs4), body.data(),
      extended_time);
  ++count_;
}

void Writer::write_record(const Record& record) {
  bool extended = record.type == static_cast<std::uint16_t>(RecordType::kBgp4mpEt);
  write_record_bytes(*out_, record.timestamp,
                     static_cast<RecordType>(record.type), record.subtype,
                     record.body, extended);
  ++count_;
}

std::optional<Record> Reader::next() {
  std::uint8_t header[12];
  in_->read(reinterpret_cast<char*>(header), sizeof(header));
  if (in_->gcount() == 0 && in_->eof()) return std::nullopt;
  if (static_cast<std::size_t>(in_->gcount()) != sizeof(header)) {
    throw DecodeError("truncated MRT header");
  }
  ByteReader hr({header, sizeof(header)});
  std::uint32_t seconds = hr.u32();
  Record record;
  record.type = hr.u16();
  record.subtype = hr.u16();
  std::uint32_t length = hr.u32();
  if (!known_record_type(record.type)) {
    throw DecodeError("unknown MRT record type " +
                      std::to_string(record.type));
  }
  if (!known_bgp4mp_subtype(record.subtype)) {
    throw DecodeError("unknown BGP4MP subtype " +
                      std::to_string(record.subtype));
  }
  if (length > kMaxRecordLength) {
    throw DecodeError("MRT record length " + std::to_string(length) +
                      " exceeds sanity bound");
  }

  std::vector<std::uint8_t> payload(length);
  in_->read(reinterpret_cast<char*>(payload.data()),
            static_cast<std::streamsize>(length));
  if (static_cast<std::size_t>(in_->gcount()) != length) {
    throw DecodeError("truncated MRT record body");
  }

  std::int64_t micros = static_cast<std::int64_t>(seconds) * 1000000;
  if (record.type == static_cast<std::uint16_t>(RecordType::kBgp4mpEt)) {
    if (length < 4) throw DecodeError("BGP4MP_ET record too short");
    ByteReader er({payload.data(), 4});
    micros += er.u32();
    record.body.assign(payload.begin() + 4, payload.end());
  } else {
    record.body = std::move(payload);
  }
  record.timestamp = Timestamp::from_unix_micros(micros);
  return record;
}

Bgp4mpMessage Reader::parse_message(const Record& record, bool* four_byte) {
  if (!record.is_bgp4mp()) {
    throw DecodeError("record is not BGP4MP");
  }
  bool as4 =
      record.subtype == static_cast<std::uint16_t>(Bgp4mpSubtype::kMessageAs4);
  if (!as4 &&
      record.subtype != static_cast<std::uint16_t>(Bgp4mpSubtype::kMessage)) {
    throw DecodeError("record is not a BGP4MP message subtype");
  }
  ByteReader r({record.body.data(), record.body.size()});
  Endpoints e = read_endpoints(r, as4);
  Bgp4mpMessage message;
  message.peer_asn = e.peer;
  message.local_asn = e.local;
  message.interface_index = e.ifindex;
  message.peer_ip = e.peer_ip;
  message.local_ip = e.local_ip;
  auto rest = r.bytes(r.remaining());
  message.bgp_message.assign(rest.begin(), rest.end());
  if (four_byte != nullptr) *four_byte = as4;
  return message;
}

Bgp4mpStateChange Reader::parse_state_change(const Record& record) {
  if (!record.is_bgp4mp()) {
    throw DecodeError("record is not BGP4MP");
  }
  bool as4 = record.subtype ==
             static_cast<std::uint16_t>(Bgp4mpSubtype::kStateChangeAs4);
  if (!as4 && record.subtype !=
                  static_cast<std::uint16_t>(Bgp4mpSubtype::kStateChange)) {
    throw DecodeError("record is not a BGP4MP state-change subtype");
  }
  ByteReader r({record.body.data(), record.body.size()});
  Endpoints e = read_endpoints(r, as4);
  Bgp4mpStateChange change;
  change.peer_asn = e.peer;
  change.local_asn = e.local;
  change.interface_index = e.ifindex;
  change.peer_ip = e.peer_ip;
  change.local_ip = e.local_ip;
  change.old_state = static_cast<FsmState>(r.u16());
  change.new_state = static_cast<FsmState>(r.u16());
  return change;
}

std::optional<std::vector<Record>> ChunkedReader::next_chunk() {
  if (done_) return std::nullopt;
  std::vector<Record> chunk;
  chunk.reserve(chunk_records_);
  while (chunk.size() < chunk_records_) {
    auto record = reader_.next();
    if (!record) {
      done_ = true;
      break;
    }
    chunk.push_back(std::move(*record));
  }
  records_read_ += chunk.size();
  if (chunk.empty()) return std::nullopt;
  return chunk;
}

std::vector<TimedMessage> read_all_messages(const std::string& path) {
  // Transparent gzip/bz2 support: the decompression layer sniffs the
  // magic bytes and inflates as needed (mrt/source.h).
  InputStream input = InputStream::open_file(path);
  Reader reader(input.stream());
  std::vector<TimedMessage> out;
  while (auto record = reader.next()) {
    if (!record->is_bgp4mp()) continue;
    if (record->subtype !=
            static_cast<std::uint16_t>(Bgp4mpSubtype::kMessage) &&
        record->subtype !=
            static_cast<std::uint16_t>(Bgp4mpSubtype::kMessageAs4)) {
      continue;
    }
    TimedMessage tm;
    tm.timestamp = record->timestamp;
    tm.message = Reader::parse_message(*record, &tm.four_byte_asn);
    out.push_back(std::move(tm));
  }
  return out;
}

}  // namespace bgpcc::mrt
