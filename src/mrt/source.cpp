#include "mrt/source.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "netbase/error.h"
#include "obs/pipeline_metrics.h"

#if BGPCC_HAVE_ZLIB
#include <zlib.h>
#endif
#if BGPCC_HAVE_BZIP2
#include <bzlib.h>
#endif

namespace bgpcc::mrt {
namespace {

constexpr std::size_t kDecompressInputBuffer = 64 * 1024;

/// Replays a sniffed prefix before handing reads through to the wrapped
/// source — how the magic bytes consumed by detection get back into the
/// stream without requiring seekable input.
class PrefixedSource final : public Source {
 public:
  PrefixedSource(std::vector<std::uint8_t> prefix, std::unique_ptr<Source> next)
      : prefix_(std::move(prefix)), next_(std::move(next)) {}

  std::size_t read(std::uint8_t* out, std::size_t max) override {
    std::size_t n;
    if (pos_ < prefix_.size()) {
      n = std::min(max, prefix_.size() - pos_);
      std::memcpy(out, prefix_.data() + pos_, n);
      pos_ += n;
    } else {
      n = next_->read(out, max);
    }
    // Everything delivered here is pre-decompression stream bytes
    // (including the replayed sniff prefix, which came off the wire
    // once); for uncompressed inputs the same bytes also are the
    // framer-visible output.
    if (n != 0 && compressed_bytes_ != nullptr) compressed_bytes_->inc(n);
    if (n != 0 && raw_bytes_ != nullptr) raw_bytes_->inc(n);
    return n;
  }

  /// Routes byte accounting once the codec is known: `compressed` gets
  /// every delivered byte, `raw` only set for uncompressed inputs.
  void set_byte_counters(obs::Counter* compressed, obs::Counter* raw) {
    compressed_bytes_ = compressed;
    raw_bytes_ = raw;
  }

 private:
  std::vector<std::uint8_t> prefix_;
  std::size_t pos_ = 0;
  std::unique_ptr<Source> next_;
  obs::Counter* compressed_bytes_ = nullptr;
  obs::Counter* raw_bytes_ = nullptr;
};

#if BGPCC_HAVE_ZLIB

/// zlib inflate over a Source. windowBits 15+32 auto-detects the gzip vs
/// raw-zlib header; concatenated gzip members (pigz, `cat a.gz b.gz`) are
/// handled by resetting the inflater at each member end, matching what
/// gunzip does. Input ending mid-member is a DecodeError — a truncated
/// mirror download must never pass for a short archive.
class GzipSource final : public Source {
 public:
  GzipSource(std::unique_ptr<Source> raw, obs::Counter* bytes_out)
      : raw_(std::move(raw)),
        in_buf_(kDecompressInputBuffer),
        bytes_out_(bytes_out) {
    stream_.zalloc = nullptr;
    stream_.zfree = nullptr;
    stream_.opaque = nullptr;
    stream_.next_in = nullptr;
    stream_.avail_in = 0;
    if (inflateInit2(&stream_, 15 + 32) != Z_OK) {
      throw DecodeError("gzip: inflateInit2 failed");
    }
    initialized_ = true;
  }

  ~GzipSource() override {
    if (initialized_) inflateEnd(&stream_);
  }

  std::size_t read(std::uint8_t* out, std::size_t max) override {
    if (max == 0 || finished_) return 0;
    // avail_out is 32-bit: clamp the request and report against the
    // clamped amount, so a >4GiB read returns the bytes actually
    // produced (the caller simply loops).
    std::size_t want =
        std::min<std::size_t>(max, std::numeric_limits<uInt>::max());
    stream_.next_out = out;
    stream_.avail_out = static_cast<uInt>(want);
    while (stream_.avail_out > 0) {
      if (stream_.avail_in == 0) {
        std::size_t got = raw_->read(in_buf_.data(), in_buf_.size());
        if (got == 0) {
          if (mid_member_) {
            throw DecodeError("truncated gzip stream (EOF mid-member)");
          }
          finished_ = true;
          break;
        }
        stream_.next_in = in_buf_.data();
        stream_.avail_in = static_cast<uInt>(got);
      }
      int rc = inflate(&stream_, Z_NO_FLUSH);
      if (rc == Z_STREAM_END) {
        mid_member_ = false;
        // More input (buffered or upstream) means another member follows.
        if (stream_.avail_in == 0) {
          std::size_t got = raw_->read(in_buf_.data(), in_buf_.size());
          if (got == 0) {
            finished_ = true;
            break;
          }
          stream_.next_in = in_buf_.data();
          stream_.avail_in = static_cast<uInt>(got);
        }
        if (inflateReset(&stream_) != Z_OK) {
          throw DecodeError("gzip: inflateReset failed between members");
        }
        continue;
      }
      if (rc != Z_OK && rc != Z_BUF_ERROR) {
        throw DecodeError(std::string("corrupt gzip stream: ") +
                          (stream_.msg != nullptr ? stream_.msg
                                                  : zError(rc)));
      }
      mid_member_ = true;
    }
    std::size_t produced = want - stream_.avail_out;
    if (produced != 0 && bytes_out_ != nullptr) bytes_out_->inc(produced);
    return produced;
  }

 private:
  std::unique_ptr<Source> raw_;
  std::vector<std::uint8_t> in_buf_;
  obs::Counter* bytes_out_ = nullptr;
  z_stream stream_{};
  bool initialized_ = false;
  bool mid_member_ = false;
  bool finished_ = false;
};

#endif  // BGPCC_HAVE_ZLIB

#if BGPCC_HAVE_BZIP2

/// libbz2 decompression over a Source, with the same multi-stream and
/// truncation semantics as GzipSource (bzip2 files are commonly produced
/// as concatenated streams by pbzip2).
class Bzip2Source final : public Source {
 public:
  Bzip2Source(std::unique_ptr<Source> raw, obs::Counter* bytes_out)
      : raw_(std::move(raw)),
        in_buf_(kDecompressInputBuffer),
        bytes_out_(bytes_out) {
    init_stream();
  }

  ~Bzip2Source() override {
    if (initialized_) BZ2_bzDecompressEnd(&stream_);
  }

  std::size_t read(std::uint8_t* out, std::size_t max) override {
    if (max == 0 || finished_) return 0;
    std::size_t want =
        std::min<std::size_t>(max, std::numeric_limits<unsigned>::max());
    stream_.next_out = reinterpret_cast<char*>(out);
    stream_.avail_out = static_cast<unsigned>(want);
    while (stream_.avail_out > 0) {
      if (stream_.avail_in == 0) {
        std::size_t got = raw_->read(in_buf_.data(), in_buf_.size());
        if (got == 0) {
          if (mid_stream_) {
            throw DecodeError("truncated bzip2 stream (EOF mid-stream)");
          }
          finished_ = true;
          break;
        }
        stream_.next_in = reinterpret_cast<char*>(in_buf_.data());
        stream_.avail_in = static_cast<unsigned>(got);
      }
      int rc = BZ2_bzDecompress(&stream_);
      if (rc == BZ_STREAM_END) {
        mid_stream_ = false;
        if (stream_.avail_in == 0) {
          std::size_t got = raw_->read(in_buf_.data(), in_buf_.size());
          if (got == 0) {
            finished_ = true;
            break;
          }
          stream_.next_in = reinterpret_cast<char*>(in_buf_.data());
          stream_.avail_in = static_cast<unsigned>(got);
        }
        // Re-init for the next concatenated stream, carrying the unread
        // input across the reset.
        char* pending_in = stream_.next_in;
        unsigned pending_avail = stream_.avail_in;
        char* pending_out = stream_.next_out;
        unsigned pending_out_avail = stream_.avail_out;
        BZ2_bzDecompressEnd(&stream_);
        initialized_ = false;
        init_stream();
        stream_.next_in = pending_in;
        stream_.avail_in = pending_avail;
        stream_.next_out = pending_out;
        stream_.avail_out = pending_out_avail;
        continue;
      }
      if (rc != BZ_OK) {
        throw DecodeError("corrupt bzip2 stream (BZ2_bzDecompress rc " +
                          std::to_string(rc) + ")");
      }
      mid_stream_ = true;
    }
    std::size_t produced = want - stream_.avail_out;
    if (produced != 0 && bytes_out_ != nullptr) bytes_out_->inc(produced);
    return produced;
  }

 private:
  void init_stream() {
    stream_.bzalloc = nullptr;
    stream_.bzfree = nullptr;
    stream_.opaque = nullptr;
    stream_.next_in = nullptr;
    stream_.avail_in = 0;
    if (BZ2_bzDecompressInit(&stream_, /*verbosity=*/0, /*small=*/0) !=
        BZ_OK) {
      throw DecodeError("bzip2: BZ2_bzDecompressInit failed");
    }
    initialized_ = true;
  }

  std::unique_ptr<Source> raw_;
  std::vector<std::uint8_t> in_buf_;
  obs::Counter* bytes_out_ = nullptr;
  bz_stream stream_{};
  bool initialized_ = false;
  bool mid_stream_ = false;
  bool finished_ = false;
};

#endif  // BGPCC_HAVE_BZIP2

}  // namespace

std::size_t IstreamSource::read(std::uint8_t* out, std::size_t max) {
  if (max == 0) return 0;
  in_->read(reinterpret_cast<char*>(out),
            static_cast<std::streamsize>(max));
  std::streamsize got = in_->gcount();
  if (got == 0 && !in_->eof() && in_->fail()) {
    throw DecodeError("input stream read failed");
  }
  return static_cast<std::size_t>(got);
}

std::string to_string(Compression compression) {
  switch (compression) {
    case Compression::kNone:
      return "none";
    case Compression::kGzip:
      return "gzip";
    case Compression::kBzip2:
      return "bzip2";
  }
  return "unknown";
}

std::string compression_suffix(Compression compression) {
  switch (compression) {
    case Compression::kNone:
      return "";
    case Compression::kGzip:
      return ".gz";
    case Compression::kBzip2:
      return ".bz2";
  }
  return "";
}

Compression detect_compression(const std::uint8_t* data, std::size_t size) {
  if (size >= 2 && data[0] == 0x1f && data[1] == 0x8b) {
    return Compression::kGzip;
  }
  if (size >= 4 && data[0] == 'B' && data[1] == 'Z' && data[2] == 'h' &&
      data[3] >= '1' && data[3] <= '9') {
    return Compression::kBzip2;
  }
  return Compression::kNone;
}

bool gzip_supported() {
#if BGPCC_HAVE_ZLIB
  return true;
#else
  return false;
#endif
}

bool bzip2_supported() {
#if BGPCC_HAVE_BZIP2
  return true;
#else
  return false;
#endif
}

std::unique_ptr<Source> make_decompressing_source(std::unique_ptr<Source> raw,
                                                  Compression* detected) {
  // Sniff up to 4 bytes (enough for both magics), then replay them.
  std::vector<std::uint8_t> head;
  head.reserve(4);
  while (head.size() < 4) {
    std::uint8_t byte = 0;
    if (raw->read(&byte, 1) == 0) break;
    head.push_back(byte);
  }
  Compression compression = detect_compression(head.data(), head.size());
  if (detected != nullptr) *detected = compression;
  const obs::PipelineMetrics& metrics = obs::pipeline_metrics();
  const std::size_t codec =
      compression == Compression::kGzip    ? obs::PipelineMetrics::kCodecGzip
      : compression == Compression::kBzip2 ? obs::PipelineMetrics::kCodecBzip2
                                           : obs::PipelineMetrics::kCodecNone;
  metrics.source_opened[codec]->inc();
  auto replayed =
      std::make_unique<PrefixedSource>(std::move(head), std::move(raw));
  // For uncompressed inputs the stream bytes ARE the framer bytes, so
  // the replay wrapper feeds both counters; compressed codecs count
  // their decompressed output themselves.
  replayed->set_byte_counters(
      metrics.source_compressed_bytes[codec],
      compression == Compression::kNone ? metrics.source_bytes[codec]
                                        : nullptr);
  switch (compression) {
    case Compression::kGzip:
#if BGPCC_HAVE_ZLIB
      return std::make_unique<GzipSource>(std::move(replayed),
                                          metrics.source_bytes[codec]);
#else
      throw DecodeError("gzip-compressed input, but bgpcc was built "
                        "without zlib");
#endif
    case Compression::kBzip2:
#if BGPCC_HAVE_BZIP2
      return std::make_unique<Bzip2Source>(std::move(replayed),
                                           metrics.source_bytes[codec]);
#else
      throw DecodeError("bzip2-compressed input, but bgpcc was built "
                        "without libbz2");
#endif
    case Compression::kNone:
      break;
  }
  return replayed;
}

SourceBuf::SourceBuf(Source& source, std::size_t buffer_bytes)
    : source_(&source), buffer_(buffer_bytes == 0 ? 1 : buffer_bytes) {
  setg(buffer_.data(), buffer_.data(), buffer_.data());
}

SourceBuf::int_type SourceBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  std::size_t got = source_->read(
      reinterpret_cast<std::uint8_t*>(buffer_.data()), buffer_.size());
  if (got == 0) return traits_type::eof();
  setg(buffer_.data(), buffer_.data(), buffer_.data() + got);
  return traits_type::to_int_type(*gptr());
}

InputStream InputStream::open_file(const std::string& path) {
  auto file = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!*file) throw DecodeError("cannot open MRT file: " + path);
  InputStream input;
  input.bottom_ = std::make_unique<IstreamSource>(*file);
  input.file_ = std::move(file);
  input.chain_ =
      make_decompressing_source(std::move(input.bottom_), &input.compression_);
  input.buf_ = std::make_unique<SourceBuf>(*input.chain_);
  input.stream_ = std::make_unique<std::istream>(input.buf_.get());
  // A DecodeError thrown by the decompressor inside underflow() would be
  // swallowed by default istream semantics (badbit set, exception eaten);
  // enabling badbit exceptions rethrows the ORIGINAL exception, so
  // "truncated gzip stream" surfaces instead of a generic read failure.
  input.stream_->exceptions(std::ios::badbit);
  return input;
}

InputStream InputStream::wrap(std::istream& in) {
  InputStream input;
  input.bottom_ = std::make_unique<IstreamSource>(in);
  input.chain_ =
      make_decompressing_source(std::move(input.bottom_), &input.compression_);
  input.buf_ = std::make_unique<SourceBuf>(*input.chain_);
  input.stream_ = std::make_unique<std::istream>(input.buf_.get());
  input.stream_->exceptions(std::ios::badbit);
  return input;
}

std::string gzip_compress(std::string_view data, int level) {
#if BGPCC_HAVE_ZLIB
  z_stream stream{};
  // windowBits 15+16 selects a gzip (not zlib) wrapper.
  if (deflateInit2(&stream, level, Z_DEFLATED, 15 + 16, 8,
                   Z_DEFAULT_STRATEGY) != Z_OK) {
    throw DecodeError("gzip: deflateInit2 failed");
  }
  std::string out;
  std::vector<std::uint8_t> buf(kDecompressInputBuffer);
  stream.next_in =
      reinterpret_cast<Bytef*>(const_cast<char*>(data.data()));
  stream.avail_in = static_cast<uInt>(data.size());
  int rc = Z_OK;
  do {
    stream.next_out = buf.data();
    stream.avail_out = static_cast<uInt>(buf.size());
    rc = deflate(&stream, Z_FINISH);
    if (rc != Z_OK && rc != Z_STREAM_END && rc != Z_BUF_ERROR) {
      deflateEnd(&stream);
      throw DecodeError("gzip: deflate failed");
    }
    out.append(reinterpret_cast<const char*>(buf.data()),
               buf.size() - stream.avail_out);
  } while (rc != Z_STREAM_END);
  deflateEnd(&stream);
  return out;
#else
  (void)data;
  (void)level;
  throw DecodeError("gzip_compress: bgpcc was built without zlib");
#endif
}

std::string bzip2_compress(std::string_view data, int block_size_100k) {
#if BGPCC_HAVE_BZIP2
  bz_stream stream{};
  if (BZ2_bzCompressInit(&stream, block_size_100k, /*verbosity=*/0,
                         /*workFactor=*/0) != BZ_OK) {
    throw DecodeError("bzip2: BZ2_bzCompressInit failed");
  }
  std::string out;
  std::vector<char> buf(kDecompressInputBuffer);
  stream.next_in = const_cast<char*>(data.data());
  stream.avail_in = static_cast<unsigned>(data.size());
  int rc = BZ_RUN_OK;
  do {
    stream.next_out = buf.data();
    stream.avail_out = static_cast<unsigned>(buf.size());
    rc = BZ2_bzCompress(&stream, BZ_FINISH);
    if (rc != BZ_FINISH_OK && rc != BZ_STREAM_END) {
      BZ2_bzCompressEnd(&stream);
      throw DecodeError("bzip2: BZ2_bzCompress failed");
    }
    out.append(buf.data(), buf.size() - stream.avail_out);
  } while (rc != BZ_STREAM_END);
  BZ2_bzCompressEnd(&stream);
  return out;
#else
  (void)data;
  (void)block_size_100k;
  throw DecodeError("bzip2_compress: bgpcc was built without libbz2");
#endif
}

std::string compress(std::string_view data, Compression compression) {
  switch (compression) {
    case Compression::kNone:
      return std::string(data);
    case Compression::kGzip:
      return gzip_compress(data);
    case Compression::kBzip2:
      return bzip2_compress(data);
  }
  throw ConfigError("unknown compression format");
}

}  // namespace bgpcc::mrt
