// Transparent compressed-input layer for the MRT framer path.
//
// RouteViews and RIPE RIS publish update archives gzip- or
// bzip2-compressed; the ingestion engine must consume them without a
// separate unpack step (months of archives do not fit unpacked on disk,
// let alone in RAM). The layer is a pull-based `Source` byte interface
// with zlib/bzip2 decompression backends stacked on top of any raw
// source, plus a std::streambuf adapter so the existing
// mrt::Reader/ChunkedReader code consumes decompressed bytes unchanged.
//
// Compression is detected from magic bytes (gzip 1f 8b, bzip2 "BZh1".."9"),
// never from file names, so in-memory archives and sockets work the same
// as files. A raw MRT record whose 4-byte big-endian timestamp collides
// with a magic sequence would be misdetected, but those timestamps fall in
// Oct 1986 (gzip) and a 9-second window of Apr 2005 (bzip2) — outside any
// archive this library targets; the ambiguity is documented here instead
// of being hidden behind a file-extension heuristic that in-memory input
// could never use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <istream>
#include <memory>
#include <streambuf>
#include <string>
#include <string_view>
#include <vector>

namespace bgpcc::mrt {

/// Pull-based byte source: the unit the decompression stages stack on.
/// Implementations throw DecodeError on corrupt or truncated input.
class Source {
 public:
  virtual ~Source() = default;

  /// Reads up to `max` bytes into `out`; returns the number of bytes
  /// produced, 0 exactly at clean end of stream.
  [[nodiscard]] virtual std::size_t read(std::uint8_t* out,
                                         std::size_t max) = 0;
};

/// Adapts a caller-owned std::istream (file, stringstream, socketbuf) to
/// the Source interface. The stream must outlive the source.
class IstreamSource final : public Source {
 public:
  explicit IstreamSource(std::istream& in) : in_(&in) {}
  [[nodiscard]] std::size_t read(std::uint8_t* out,
                                 std::size_t max) override;

 private:
  std::istream* in_;
};

/// Compression container formats the layer understands.
enum class Compression : std::uint8_t { kNone = 0, kGzip = 1, kBzip2 = 2 };

[[nodiscard]] std::string to_string(Compression compression);

/// Conventional file-name suffix for a compression format ("" / ".gz" /
/// ".bz2") — used when writing fixtures, never when reading.
[[nodiscard]] std::string compression_suffix(Compression compression);

/// Sniffs the magic bytes of a stream head: gzip (1f 8b), bzip2
/// ("BZh" + block size '1'..'9'), anything else kNone. `size` may be
/// shorter than the full magic (e.g. a tiny archive); partial matches
/// report kNone.
[[nodiscard]] Compression detect_compression(const std::uint8_t* data,
                                             std::size_t size);

/// True when the corresponding decompression backend was compiled in.
/// When a backend is missing the matching source constructor throws
/// DecodeError, so compressed archives fail loudly, not silently.
[[nodiscard]] bool gzip_supported();
[[nodiscard]] bool bzip2_supported();

/// Wraps `raw` so gzip/bzip2 payloads (detected from their magic bytes)
/// are inflated transparently; plain payloads pass through buffered.
/// `detected`, when non-null, reports what the sniff found.
[[nodiscard]] std::unique_ptr<Source> make_decompressing_source(
    std::unique_ptr<Source> raw, Compression* detected = nullptr);

/// std::streambuf over a Source: the adapter that lets mrt::Reader — and
/// with it the whole framed-chunk ingestion pipeline — consume
/// decompressed bytes with zero changes to the record parsing code.
class SourceBuf final : public std::streambuf {
 public:
  explicit SourceBuf(Source& source, std::size_t buffer_bytes = 64 * 1024);

 protected:
  int_type underflow() override;

 private:
  Source* source_;
  std::vector<char> buffer_;
};

/// One ready-to-frame MRT input: owns the whole chain
/// (file stream → sniffer → decompressor → streambuf → istream).
/// Movable, so multi-archive front-ends can hold a vector of them.
class InputStream {
 public:
  /// Opens a file, sniffing gzip/bzip2 magic. Throws DecodeError when the
  /// file cannot be opened.
  [[nodiscard]] static InputStream open_file(const std::string& path);

  /// Wraps a caller-owned stream (which must outlive the InputStream),
  /// sniffing compression the same way.
  [[nodiscard]] static InputStream wrap(std::istream& in);

  /// The decompressed byte stream, ready for mrt::Reader.
  [[nodiscard]] std::istream& stream() { return *stream_; }
  [[nodiscard]] Compression compression() const { return compression_; }

 private:
  InputStream() = default;

  std::unique_ptr<std::istream> file_;    // only for open_file
  std::unique_ptr<Source> bottom_;        // IstreamSource over file_/caller
  std::unique_ptr<Source> chain_;         // decompressor (or buffered raw)
  std::unique_ptr<SourceBuf> buf_;
  std::unique_ptr<std::istream> stream_;
  Compression compression_ = Compression::kNone;
};

/// One-shot compressors for fixtures and tests (the simulator's
/// RouteCollector uses them to emit compressed rotated archives). Throw
/// DecodeError when the backend is not compiled in.
[[nodiscard]] std::string gzip_compress(std::string_view data, int level = 6);
[[nodiscard]] std::string bzip2_compress(std::string_view data,
                                         int block_size_100k = 9);

/// Compresses with the named format; kNone returns the input unchanged.
[[nodiscard]] std::string compress(std::string_view data,
                                   Compression compression);

}  // namespace bgpcc::mrt
