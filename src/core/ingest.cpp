#include "core/ingest.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <fstream>
#include <functional>
#include <istream>
#include <iterator>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "bgp/codec.h"
#include "core/cleaning.h"
#include "mrt/mrt.h"
#include "netbase/error.h"

namespace bgpcc::core {
namespace {

// Shard count is fixed (not thread-derived) so the shard assignment — and
// with it every per-shard cleaning decision — is identical no matter how
// many workers run. Sessions are hash-distributed; 16 shards keep all
// realistic thread counts busy without fragmenting tiny inputs.
constexpr std::size_t kShards = 16;

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// Runs body(0..jobs-1) on `threads` workers pulling from an atomic
// counter. Inline when a pool cannot help. The first exception thrown by
// any worker is rethrown on the caller after all workers join.
void run_parallel(unsigned threads, std::size_t jobs,
                  const std::function<void(std::size_t)>& body) {
  if (threads <= 1 || jobs <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  auto worker = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  std::size_t pool_size = std::min<std::size_t>(threads, jobs);
  pool.reserve(pool_size);
  for (std::size_t t = 0; t < pool_size; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

/// One decoded batch: records bucketed by SessionKey-hash shard, plus the
/// batch's share of the deterministic counters.
struct DecodedChunk {
  std::vector<std::vector<SeqRecord>> shards{kShards};
  std::size_t update_messages = 0;
  std::size_t records = 0;
};

void bucket_records(std::vector<UpdateRecord>& scratch, std::uint64_t& seq,
                    DecodedChunk& out) {
  for (UpdateRecord& record : scratch) {
    std::size_t shard = record.session.hash() % kShards;
    out.shards[shard].push_back(SeqRecord{seq++, std::move(record)});
    ++out.records;
  }
  scratch.clear();
}

// The engine core: decode chunks on the pool, clean each shard on the
// pool, merge into one totally ordered stream. `decode_chunk(i)` must be a
// pure function of the input (workers run them in any order).
IngestResult run_engine(
    std::size_t num_chunks, std::size_t raw_records,
    const IngestOptions& options,
    const std::function<DecodedChunk(std::size_t)>& decode_chunk) {
  unsigned threads = resolve_threads(options.num_threads);

  IngestResult result;
  result.stats.chunks = num_chunks;
  result.stats.raw_records = raw_records;
  result.stats.shards = kShards;
  result.stats.threads = threads;

  // Phase 2 — decode+explode+shard, one task per chunk.
  std::vector<DecodedChunk> decoded(num_chunks);
  run_parallel(threads, num_chunks,
               [&](std::size_t i) { decoded[i] = decode_chunk(i); });
  for (const DecodedChunk& chunk : decoded) {
    result.stats.update_messages += chunk.update_messages;
    result.stats.records += chunk.records;
  }

  // Phase 3 — gather each shard across chunks (chunk order, so shard
  // contents are deterministic) and run §4 cleaning lock-free per shard.
  std::vector<std::vector<SeqRecord>> shards(kShards);
  std::vector<CleaningReport> reports(kShards);
  run_parallel(threads, kShards, [&](std::size_t s) {
    std::size_t total = 0;
    for (const DecodedChunk& chunk : decoded) total += chunk.shards[s].size();
    shards[s].reserve(total);
    for (DecodedChunk& chunk : decoded) {
      std::vector<SeqRecord>& bucket = chunk.shards[s];
      std::move(bucket.begin(), bucket.end(), std::back_inserter(shards[s]));
      bucket.clear();
    }
    if (options.cleaning != nullptr) {
      sort_seq_records(shards[s]);
      reports[s] = cleaning::run(shards[s], *options.cleaning);
    }
  });
  for (const CleaningReport& r : reports) {
    result.cleaning.dropped_unallocated_asn += r.dropped_unallocated_asn;
    result.cleaning.dropped_unallocated_prefix += r.dropped_unallocated_prefix;
    result.cleaning.route_server_paths_repaired +=
        r.route_server_paths_repaired;
    result.cleaning.timestamps_adjusted += r.timestamps_adjusted;
  }

  // Phase 4 — merge into one stream totally ordered by (time, seq), or by
  // arrival sequence alone for the legacy file-order contract. Records are
  // large (paths, communities, strings), so sort small POD keys and move
  // each record exactly once into its final slot.
  struct MergeKey {
    std::int64_t time_us;
    std::uint64_t seq;
    std::uint32_t shard;
    std::uint32_t index;
  };
  std::size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  std::vector<MergeKey> keys;
  keys.reserve(total);
  for (std::uint32_t s = 0; s < shards.size(); ++s) {
    for (std::uint32_t i = 0; i < shards[s].size(); ++i) {
      keys.push_back(MergeKey{shards[s][i].record.time.unix_micros(),
                              shards[s][i].seq, s, i});
    }
  }
  if (options.sort_by_time) {
    std::sort(keys.begin(), keys.end(),
              [](const MergeKey& a, const MergeKey& b) {
                if (a.time_us != b.time_us) return a.time_us < b.time_us;
                return a.seq < b.seq;
              });
  } else {
    std::sort(keys.begin(), keys.end(),
              [](const MergeKey& a, const MergeKey& b) {
                return a.seq < b.seq;
              });
  }
  result.stream.records().reserve(total);
  for (const MergeKey& key : keys) {
    result.stream.records().push_back(
        std::move(shards[key.shard][key.index].record));
  }
  return result;
}

// Sequence numbers are (chunk index, index within chunk): assigned by the
// deterministic framing, dense enough for any real chunk size.
constexpr std::uint64_t seq_base(std::size_t chunk_index) {
  return static_cast<std::uint64_t>(chunk_index) << 32;
}

bool is_bgp4mp_message(const mrt::Record& record) {
  return record.is_bgp4mp() &&
         (record.subtype ==
              static_cast<std::uint16_t>(mrt::Bgp4mpSubtype::kMessage) ||
          record.subtype ==
              static_cast<std::uint16_t>(mrt::Bgp4mpSubtype::kMessageAs4));
}

}  // namespace

IngestResult ingest_mrt_stream(const std::string& collector, std::istream& in,
                               const IngestOptions& options) {
  // Phase 1 — frame: slice the archive into raw-record batches without
  // touching bodies. Sequential by nature (MRT is a byte stream).
  mrt::ChunkedReader reader(in, options.chunk_records);
  std::vector<std::vector<mrt::Record>> chunks;
  while (auto chunk = reader.next_chunk()) {
    chunks.push_back(std::move(*chunk));
  }

  return run_engine(
      chunks.size(), reader.records_read(), options,
      [&](std::size_t i) {
        DecodedChunk out;
        std::uint64_t seq = seq_base(i);
        std::vector<UpdateRecord> scratch;
        for (const mrt::Record& record : chunks[i]) {
          if (!is_bgp4mp_message(record)) continue;
          bool four_byte = true;
          mrt::Bgp4mpMessage message =
              mrt::Reader::parse_message(record, &four_byte);
          if (peek_type(message.bgp_message) != MessageType::kUpdate) {
            continue;
          }
          CodecOptions codec;
          codec.four_byte_asn = four_byte;
          UpdateMessage update = decode_update(message.bgp_message, codec);
          ++out.update_messages;
          append_update_records(collector, message.peer_asn, message.peer_ip,
                                record.timestamp, update, scratch);
          bucket_records(scratch, seq, out);
        }
        // Raw bodies are dead weight once decoded; release them here so
        // peak memory is decoded-records + the chunks still in flight,
        // not decoded-records + the whole raw archive.
        std::vector<mrt::Record>().swap(chunks[i]);
        return out;
      });
}

IngestResult ingest_mrt_file(const std::string& collector,
                             const std::string& path,
                             const IngestOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DecodeError("cannot open MRT file: " + path);
  return ingest_mrt_stream(collector, in, options);
}

IngestResult ingest_collector(const sim::RouteCollector& collector,
                              const IngestOptions& options) {
  const std::vector<sim::RecordedMessage>& messages = collector.messages();
  std::size_t chunk_records =
      options.chunk_records == 0 ? 1 : options.chunk_records;
  std::size_t num_chunks =
      messages.empty() ? 0 : (messages.size() + chunk_records - 1) / chunk_records;

  return run_engine(
      num_chunks, messages.size(), options,
      [&](std::size_t i) {
        DecodedChunk out;
        std::uint64_t seq = seq_base(i);
        std::vector<UpdateRecord> scratch;
        std::size_t begin = i * chunk_records;
        std::size_t end = std::min(messages.size(), begin + chunk_records);
        for (std::size_t m = begin; m < end; ++m) {
          const sim::RecordedMessage& rec = messages[m];
          ++out.update_messages;
          append_update_records(collector.name(), rec.peer_asn,
                                rec.peer_address, rec.time, rec.update,
                                scratch);
          bucket_records(scratch, seq, out);
        }
        return out;
      });
}

}  // namespace bgpcc::core
