#include "core/ingest.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <fstream>
#include <functional>
#include <istream>
#include <iterator>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "bgp/codec.h"
#include "core/cleaning.h"
#include "mrt/mrt.h"
#include "netbase/error.h"

namespace bgpcc::core {
namespace {

// Shard count is fixed (not thread-derived) so the shard assignment — and
// with it every per-shard cleaning decision — is identical no matter how
// many workers run. Sessions are hash-distributed; 16 shards keep all
// realistic thread counts busy without fragmenting tiny inputs.
constexpr std::size_t kShards = 16;

// Arrival sequence packing: (file 16 bits | chunk 24 bits | record 24
// bits). Lexicographic order of the packed value equals the logical
// arrival order of the concatenated sources, which is all the engine
// needs: seq values never appear in the output, only their relative
// order does. The guards below make overflow a loud DecodeError instead
// of a silent ordering corruption.
constexpr unsigned kFileSeqShift = 48;
constexpr unsigned kChunkSeqShift = 24;
constexpr std::uint64_t kMaxFilesPerRun = std::uint64_t{1} << 16;
constexpr std::uint64_t kMaxChunksPerFile = std::uint64_t{1}
                                            << (kFileSeqShift - kChunkSeqShift);
constexpr std::uint64_t kMaxRecordsPerChunk = std::uint64_t{1}
                                              << kChunkSeqShift;

constexpr std::uint64_t seq_base(std::uint32_t file, std::uint32_t chunk) {
  return (static_cast<std::uint64_t>(file) << kFileSeqShift) |
         (static_cast<std::uint64_t>(chunk) << kChunkSeqShift);
}

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t resolve_chunk_records(const IngestOptions& options) {
  return options.chunk_records == 0 ? 1 : options.chunk_records;
}

// Runs body(0..jobs-1) on `threads` workers pulling from an atomic
// counter. Inline when a pool cannot help. The first exception thrown by
// any worker is rethrown on the caller after all workers join.
void run_parallel(unsigned threads, std::size_t jobs,
                  const std::function<void(std::size_t)>& body) {
  if (threads <= 1 || jobs <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  auto worker = [&] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  std::size_t pool_size = std::min<std::size_t>(threads, jobs);
  pool.reserve(pool_size);
  for (std::size_t t = 0; t < pool_size; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

// First-error capture shared by the framer and decode threads of one
// pipelined run. `failed()` is a cheap pre-check so framers stop reading
// once any stage has died.
class ErrorCollector {
 public:
  void capture() noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!error_) error_ = std::current_exception();
    failed_.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool failed() const {
    return failed_.load(std::memory_order_acquire);
  }
  void rethrow() {
    if (error_) std::rethrow_exception(error_);
  }

 private:
  std::mutex mutex_;
  std::exception_ptr error_;
  std::atomic<bool> failed_{false};
};

/// One framed batch in flight between the framer stage and the decode
/// pool, tagged with its deterministic arrival coordinate.
struct FramedChunk {
  std::uint32_t file = 0;
  std::uint32_t chunk = 0;
  std::vector<mrt::Record> records;
};

// The bounded frame→decode queue. Push blocks while full (bounding raw
// bytes in flight), pop blocks while empty and producers remain. abort()
// is the error path: it drops queued work and unblocks every producer
// (push returns false) and consumer (pop returns nullopt), so a throwing
// framer can never strand decode workers in pop() and a throwing worker
// can never strand a framer blocked in push() — the deadlock the
// robustness tests drive for.
class BoundedChunkQueue {
 public:
  BoundedChunkQueue(std::size_t capacity, std::size_t producers)
      : capacity_(capacity == 0 ? 1 : capacity), producers_(producers) {}

  [[nodiscard]] bool push(FramedChunk&& chunk) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return aborted_ || queue_.size() < capacity_; });
    if (aborted_) return false;
    queue_.push_back(std::move(chunk));
    not_empty_.notify_one();
    return true;
  }

  [[nodiscard]] std::optional<FramedChunk> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(
        lock, [&] { return aborted_ || !queue_.empty() || producers_ == 0; });
    if (aborted_ || queue_.empty()) return std::nullopt;
    FramedChunk chunk = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return chunk;
  }

  /// Each framer calls this exactly once, error or not; the last one out
  /// releases any consumers still waiting for work.
  void producer_done() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (producers_ > 0 && --producers_ == 0) not_empty_.notify_all();
  }

  void abort() {
    std::lock_guard<std::mutex> lock(mutex_);
    aborted_ = true;
    queue_.clear();
    not_full_.notify_all();
    not_empty_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<FramedChunk> queue_;
  std::size_t capacity_;
  std::size_t producers_;
  bool aborted_ = false;
};

/// One decoded batch: records bucketed by SessionKey-hash shard, plus the
/// batch's share of the deterministic counters and its arrival coordinate
/// (the pipelined pool finishes chunks in any order; the gather stage
/// re-establishes (file, chunk) order before touching shard state).
struct DecodedChunk {
  std::uint32_t file = 0;
  std::uint32_t chunk = 0;
  std::vector<std::vector<SeqRecord>> shards{kShards};
  std::size_t update_messages = 0;
  std::size_t records = 0;
};

void bucket_records(std::vector<UpdateRecord>& scratch, std::uint64_t base,
                    std::uint64_t& local, DecodedChunk& out) {
  for (UpdateRecord& record : scratch) {
    if (local >= kMaxRecordsPerChunk) {
      throw DecodeError(
          "arrival-sequence overflow: one chunk explodes past 2^24 records "
          "(lower IngestOptions::chunk_records)");
    }
    std::size_t shard = record.session.hash() % kShards;
    out.shards[shard].push_back(SeqRecord{base + local++, std::move(record)});
    ++out.records;
  }
  scratch.clear();
}

bool is_bgp4mp_message(const mrt::Record& record) {
  return record.is_bgp4mp() &&
         (record.subtype ==
              static_cast<std::uint16_t>(mrt::Bgp4mpSubtype::kMessage) ||
          record.subtype ==
              static_cast<std::uint16_t>(mrt::Bgp4mpSubtype::kMessageAs4));
}

DecodedChunk decode_mrt_chunk(const std::string& collector,
                              FramedChunk&& framed) {
  DecodedChunk out;
  out.file = framed.file;
  out.chunk = framed.chunk;
  std::uint64_t base = seq_base(framed.file, framed.chunk);
  std::uint64_t local = 0;
  std::vector<UpdateRecord> scratch;
  for (const mrt::Record& record : framed.records) {
    if (!is_bgp4mp_message(record)) continue;
    bool four_byte = true;
    mrt::Bgp4mpMessage message = mrt::Reader::parse_message(record, &four_byte);
    if (peek_type(message.bgp_message) != MessageType::kUpdate) {
      continue;
    }
    CodecOptions codec;
    codec.four_byte_asn = four_byte;
    UpdateMessage update = decode_update(message.bgp_message, codec);
    ++out.update_messages;
    append_update_records(collector, message.peer_asn, message.peer_ip,
                          record.timestamp, update, scratch);
    bucket_records(scratch, base, local, out);
  }
  // Raw bodies are dead weight once decoded; drop them with the chunk so
  // peak memory is decoded-records + the bounded queue, not
  // decoded-records + the whole raw archive.
  framed.records.clear();
  framed.records.shrink_to_fit();
  return out;
}

bool seq_only_order(const SeqRecord& a, const SeqRecord& b) {
  return a.seq < b.seq;
}

// Merges one output partition: a k-way tournament (winner tree, runs
// padded to a power of two) over the per-shard ranges [lo, hi), moving
// each record straight into its final slot. cmp is a strict total order
// (seq is globally unique), so the merge — and every partitioning of it —
// is deterministic.
void merge_partition(std::vector<std::vector<SeqRecord>>& shards,
                     const std::vector<std::size_t>& lo,
                     const std::vector<std::size_t>& hi,
                     bool (*cmp)(const SeqRecord&, const SeqRecord&),
                     UpdateRecord* out) {
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  const std::size_t k = shards.size();
  struct Run {
    SeqRecord* cur;
    SeqRecord* end;
  };
  std::vector<Run> runs(k);
  for (std::size_t s = 0; s < k; ++s) {
    runs[s] = Run{shards[s].data() + lo[s], shards[s].data() + hi[s]};
  }
  std::size_t m = 1;
  while (m < k) m <<= 1;
  // node[i] (1 <= i < m): run winning the subtree; leaves m..2m-1 map to
  // runs, npos marks an exhausted (or padding) run.
  std::vector<std::size_t> node(m, npos);
  auto leaf_run = [&](std::size_t leaf) {
    std::size_t r = leaf - m;
    return (r < k && runs[r].cur != runs[r].end) ? r : npos;
  };
  auto play = [&](std::size_t a, std::size_t b) {
    if (a == npos) return b;
    if (b == npos) return a;
    return cmp(*runs[a].cur, *runs[b].cur) ? a : b;
  };
  auto child_winner = [&](std::size_t child) {
    return child >= m ? leaf_run(child) : node[child];
  };
  for (std::size_t i = m - 1; i >= 1; --i) {
    node[i] = play(child_winner(2 * i), child_winner(2 * i + 1));
  }
  for (;;) {
    std::size_t w = m == 1 ? leaf_run(m) : node[1];
    if (w == npos) break;
    *out++ = std::move(runs[w].cur->record);
    ++runs[w].cur;
    for (std::size_t i = (m + w) / 2; i >= 1; i /= 2) {
      node[i] = play(child_winner(2 * i), child_winner(2 * i + 1));
    }
  }
}

// Don't split the merge finer than this: below it, partitioning overhead
// beats the parallelism it buys.
constexpr std::size_t kMinRecordsPerMergePartition = 1024;

// Phase 4 — the parallel k-way merge. Sorts each shard run (parallel over
// shards), cuts the output into `threads` balanced partitions with
// splitters drawn from the largest run, then tournament-merges every
// partition concurrently into its preallocated output slice.
void parallel_merge(std::vector<std::vector<SeqRecord>>& shards, bool by_time,
                    unsigned threads, std::vector<UpdateRecord>& out) {
  bool (*cmp)(const SeqRecord&, const SeqRecord&) =
      by_time ? &seq_time_order : &seq_only_order;

  run_parallel(threads, shards.size(), [&](std::size_t s) {
    std::sort(shards[s].begin(), shards[s].end(), cmp);
  });

  std::size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  out.resize(total);
  if (total == 0) return;

  const std::size_t k = shards.size();
  std::size_t partitions =
      threads <= 1
          ? 1
          : std::min<std::size_t>(
                threads,
                std::max<std::size_t>(1,
                                      total / kMinRecordsPerMergePartition));

  std::size_t largest = 0;
  for (std::size_t s = 1; s < k; ++s) {
    if (shards[s].size() > shards[largest].size()) largest = s;
  }

  // cuts[p][s]: first index of run s belonging to partition >= p. The
  // splitter for partition p is the (p/P)-quantile of the largest run;
  // lower_bound against a strict total order makes the cuts disjoint,
  // covering, and monotone.
  std::vector<std::vector<std::size_t>> cuts(
      partitions + 1, std::vector<std::size_t>(k, 0));
  for (std::size_t s = 0; s < k; ++s) cuts[partitions][s] = shards[s].size();
  for (std::size_t p = 1; p < partitions; ++p) {
    const SeqRecord& splitter =
        shards[largest][p * shards[largest].size() / partitions];
    for (std::size_t s = 0; s < k; ++s) {
      cuts[p][s] = static_cast<std::size_t>(
          std::lower_bound(shards[s].begin(), shards[s].end(), splitter, cmp) -
          shards[s].begin());
    }
  }

  std::vector<std::size_t> offsets(partitions + 1, 0);
  for (std::size_t p = 0; p < partitions; ++p) {
    std::size_t size = 0;
    for (std::size_t s = 0; s < k; ++s) size += cuts[p + 1][s] - cuts[p][s];
    offsets[p + 1] = offsets[p] + size;
  }

  run_parallel(threads, partitions, [&](std::size_t p) {
    merge_partition(shards, cuts[p], cuts[p + 1], cmp, out.data() + offsets[p]);
  });
}

// Phases 3+4 over the decoded chunks: gather each shard in (file, chunk)
// order, clean per shard, merge. `decoded` must already be sorted by
// (file, chunk) — within a shard that equals arrival-sequence order, so
// cross-file session state (route-server repair, sub-second reordering)
// sees one continuous session history.
void finish_engine(std::vector<DecodedChunk>& decoded,
                   const IngestOptions& options, unsigned threads,
                   IngestResult& result) {
  result.stats.shards = kShards;
  result.stats.threads = threads;
  result.stats.chunks = decoded.size();
  for (const DecodedChunk& chunk : decoded) {
    result.stats.update_messages += chunk.update_messages;
    result.stats.records += chunk.records;
  }

  std::vector<std::vector<SeqRecord>> shards(kShards);
  std::vector<CleaningReport> reports(kShards);
  run_parallel(threads, kShards, [&](std::size_t s) {
    std::size_t total = 0;
    for (const DecodedChunk& chunk : decoded) total += chunk.shards[s].size();
    shards[s].reserve(total);
    for (DecodedChunk& chunk : decoded) {
      std::vector<SeqRecord>& bucket = chunk.shards[s];
      std::move(bucket.begin(), bucket.end(), std::back_inserter(shards[s]));
      bucket.clear();
    }
    if (options.cleaning != nullptr) {
      sort_seq_records(shards[s]);
      reports[s] = cleaning::run(shards[s], *options.cleaning);
    }
  });
  for (const CleaningReport& r : reports) {
    result.cleaning.dropped_unallocated_asn += r.dropped_unallocated_asn;
    result.cleaning.dropped_unallocated_prefix += r.dropped_unallocated_prefix;
    result.cleaning.route_server_paths_repaired +=
        r.route_server_paths_repaired;
    result.cleaning.timestamps_adjusted += r.timestamps_adjusted;
  }

  parallel_merge(shards, options.sort_by_time, threads,
                 result.stream.records());
}

void sort_decoded(std::vector<DecodedChunk>& decoded) {
  std::sort(decoded.begin(), decoded.end(),
            [](const DecodedChunk& a, const DecodedChunk& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.chunk < b.chunk;
            });
}

}  // namespace

IngestResult ingest_mrt_sources(const std::vector<MrtSource>& sources,
                                const IngestOptions& options) {
  if (sources.size() >= kMaxFilesPerRun) {
    throw ConfigError("ingest_mrt_sources: more than 2^16 archive files");
  }
  for (const MrtSource& source : sources) {
    if (source.in == nullptr) {
      throw ConfigError("ingest_mrt_sources: null stream for collector " +
                        source.collector);
    }
  }
  unsigned threads = resolve_threads(options.num_threads);
  std::size_t chunk_records = resolve_chunk_records(options);

  IngestResult result;
  result.stats.files = sources.size();

  std::vector<DecodedChunk> decoded;
  std::size_t raw_records = 0;

  auto frame_file = [&](mrt::ChunkedReader& reader, std::uint32_t file,
                        const std::function<bool(FramedChunk&&)>& sink) {
    std::uint32_t chunk_index = 0;
    while (auto chunk = reader.next_chunk()) {
      if (chunk_index >= kMaxChunksPerFile) {
        throw DecodeError(
            "arrival-sequence overflow: one archive frames past 2^24 chunks "
            "(raise IngestOptions::chunk_records)");
      }
      if (!sink(FramedChunk{file, chunk_index++, std::move(*chunk)})) return;
    }
  };

  if (threads <= 1 || sources.empty()) {
    // Inline mode: frame and decode alternate on the caller's thread, one
    // ChunkedReader reused (reset) across every file. Nothing is buffered
    // beyond the chunk in flight.
    std::optional<mrt::ChunkedReader> reader;
    for (std::size_t f = 0; f < sources.size(); ++f) {
      if (!reader) {
        reader.emplace(*sources[f].in, chunk_records);
      } else {
        reader->reset(*sources[f].in);
      }
      frame_file(*reader, static_cast<std::uint32_t>(f),
                 [&](FramedChunk&& framed) {
                   decoded.push_back(decode_mrt_chunk(sources[f].collector,
                                                      std::move(framed)));
                   return true;
                 });
    }
    if (reader) raw_records = reader->records_read();
  } else {
    // Pipelined mode: framer threads push into the bounded queue, the
    // decode pool pops concurrently — framing I/O overlaps decode, and
    // multiple archives are framed in parallel.
    std::size_t framers =
        options.frame_threads != 0
            ? std::min<std::size_t>(options.frame_threads, sources.size())
            : std::min<std::size_t>({sources.size(), threads, std::size_t{4}});
    if (framers == 0) framers = 1;
    std::size_t capacity = options.queue_chunks != 0
                               ? options.queue_chunks
                               : std::max<std::size_t>(4, 2 * threads);

    BoundedChunkQueue queue(capacity, framers);
    ErrorCollector errors;
    std::atomic<std::size_t> next_file{0};
    std::atomic<std::size_t> raw_counter{0};
    std::mutex decoded_mutex;

    auto framer = [&] {
      std::optional<mrt::ChunkedReader> reader;
      try {
        for (;;) {
          std::size_t f = next_file.fetch_add(1, std::memory_order_relaxed);
          if (f >= sources.size() || errors.failed()) break;
          if (!reader) {
            reader.emplace(*sources[f].in, chunk_records);
          } else {
            reader->reset(*sources[f].in);
          }
          frame_file(*reader, static_cast<std::uint32_t>(f),
                     [&](FramedChunk&& framed) {
                       return queue.push(std::move(framed));
                     });
        }
      } catch (...) {
        errors.capture();
        queue.abort();
      }
      if (reader) {
        raw_counter.fetch_add(reader->records_read(),
                              std::memory_order_relaxed);
      }
      queue.producer_done();
    };

    auto worker = [&] {
      for (;;) {
        std::optional<FramedChunk> framed = queue.pop();
        if (!framed) break;
        try {
          DecodedChunk chunk = decode_mrt_chunk(
              sources[framed->file].collector, std::move(*framed));
          std::lock_guard<std::mutex> lock(decoded_mutex);
          decoded.push_back(std::move(chunk));
        } catch (...) {
          errors.capture();
          queue.abort();
          break;
        }
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(framers + threads);
    for (std::size_t t = 0; t < framers; ++t) pool.emplace_back(framer);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    errors.rethrow();
    raw_records = raw_counter.load();
  }

  result.stats.raw_records = raw_records;
  sort_decoded(decoded);
  finish_engine(decoded, options, threads, result);
  return result;
}

IngestResult ingest_mrt_stream(const std::string& collector, std::istream& in,
                               const IngestOptions& options) {
  return ingest_mrt_sources({MrtSource{collector, &in}}, options);
}

IngestResult ingest_mrt_file(const std::string& collector,
                             const std::string& path,
                             const IngestOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw DecodeError("cannot open MRT file: " + path);
  return ingest_mrt_stream(collector, in, options);
}

IngestResult ingest_mrt_files(
    const std::map<std::string, std::vector<std::string>>& archives,
    const IngestOptions& options) {
  std::vector<std::unique_ptr<std::ifstream>> streams;
  std::vector<MrtSource> sources;
  for (const auto& [collector, paths] : archives) {
    for (const std::string& path : paths) {
      auto in = std::make_unique<std::ifstream>(path, std::ios::binary);
      if (!*in) throw DecodeError("cannot open MRT file: " + path);
      sources.push_back(MrtSource{collector, in.get()});
      streams.push_back(std::move(in));
    }
  }
  return ingest_mrt_sources(sources, options);
}

IngestResult ingest_mrt_files(const std::string& collector,
                              const std::vector<std::string>& paths,
                              const IngestOptions& options) {
  return ingest_mrt_files({{collector, paths}}, options);
}

IngestResult ingest_collectors(
    const std::vector<const sim::RouteCollector*>& collectors,
    const IngestOptions& options) {
  if (collectors.size() >= kMaxFilesPerRun) {
    throw ConfigError("ingest_collectors: more than 2^16 collectors");
  }
  unsigned threads = resolve_threads(options.num_threads);
  std::size_t chunk_records = resolve_chunk_records(options);

  IngestResult result;
  result.stats.files = collectors.size();

  // Recorded messages are already in memory, so the job list is known
  // upfront: one (collector, chunk) pair per batch, dispatched straight to
  // the pool — no framer stage, no queue.
  struct Job {
    std::uint32_t file;
    std::uint32_t chunk;
    std::size_t begin;
    std::size_t end;
  };
  std::vector<Job> jobs;
  for (std::size_t c = 0; c < collectors.size(); ++c) {
    if (collectors[c] == nullptr) {
      throw ConfigError("ingest_collectors: null collector");
    }
    std::size_t count = collectors[c]->messages().size();
    result.stats.raw_records += count;
    std::size_t chunks = (count + chunk_records - 1) / chunk_records;
    if (chunks >= kMaxChunksPerFile) {
      throw ConfigError("ingest_collectors: collector log frames past 2^24 "
                        "chunks (raise IngestOptions::chunk_records)");
    }
    for (std::size_t k = 0; k < chunks; ++k) {
      jobs.push_back(Job{static_cast<std::uint32_t>(c),
                         static_cast<std::uint32_t>(k), k * chunk_records,
                         std::min(count, (k + 1) * chunk_records)});
    }
  }

  std::vector<DecodedChunk> decoded(jobs.size());
  run_parallel(threads, jobs.size(), [&](std::size_t j) {
    const Job& job = jobs[j];
    const sim::RouteCollector& collector = *collectors[job.file];
    const std::vector<sim::RecordedMessage>& messages = collector.messages();
    DecodedChunk out;
    out.file = job.file;
    out.chunk = job.chunk;
    std::uint64_t base = seq_base(job.file, job.chunk);
    std::uint64_t local = 0;
    std::vector<UpdateRecord> scratch;
    for (std::size_t m = job.begin; m < job.end; ++m) {
      const sim::RecordedMessage& rec = messages[m];
      ++out.update_messages;
      append_update_records(collector.name(), rec.peer_asn, rec.peer_address,
                            rec.time, rec.update, scratch);
      bucket_records(scratch, base, local, out);
    }
    decoded[j] = std::move(out);
  });

  sort_decoded(decoded);
  finish_engine(decoded, options, threads, result);
  return result;
}

IngestResult ingest_collector(const sim::RouteCollector& collector,
                              const IngestOptions& options) {
  return ingest_collectors({&collector}, options);
}

}  // namespace bgpcc::core
