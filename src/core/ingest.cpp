#include "core/ingest.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <filesystem>
#include <fstream>
#include <functional>
#include <istream>
#include <iterator>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "bgp/codec.h"
#include "core/cleaning.h"
#include "core/worker_pool.h"
#include "mrt/mrt.h"
#include "mrt/source.h"
#include "netbase/bytes.h"
#include "netbase/error.h"
#include "obs/pipeline_metrics.h"

namespace bgpcc::core {
namespace {

// Arrival sequence packing: (file 16 bits | chunk 24 bits | record 24
// bits). Lexicographic order of the packed value equals the logical
// arrival order of the concatenated sources, which is all the engine
// needs: seq values never appear in the output, only their relative
// order does. The guards below make overflow a loud DecodeError instead
// of a silent ordering corruption. Windows are prefixes of the
// (file, chunk) sequence, so seq ranges of successive windows never
// interleave — the property the final run-merge leans on.
constexpr unsigned kFileSeqShift = 48;
constexpr unsigned kChunkSeqShift = 24;
constexpr std::uint64_t kMaxFilesPerRun = std::uint64_t{1} << 16;
constexpr std::uint64_t kMaxChunksPerFile = std::uint64_t{1}
                                            << (kFileSeqShift - kChunkSeqShift);
constexpr std::uint64_t kMaxRecordsPerChunk = std::uint64_t{1}
                                              << kChunkSeqShift;

constexpr std::uint64_t seq_base(std::uint32_t file, std::uint32_t chunk) {
  return (static_cast<std::uint64_t>(file) << kFileSeqShift) |
         (static_cast<std::uint64_t>(chunk) << kChunkSeqShift);
}

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::size_t resolve_chunk_records(const IngestOptions& options) {
  return options.chunk_records == 0 ? 1 : options.chunk_records;
}

std::size_t resolve_queue_capacity(const IngestOptions& options,
                                   unsigned threads) {
  return options.queue_chunks != 0 ? options.queue_chunks
                                   : std::max<std::size_t>(4, 2 * threads);
}

// Runs body(0..jobs-1) on the persistent pool (workers and caller pull
// job indices from a shared counter; the first exception is rethrown on
// the caller, and unclaimed jobs are never started once one throws).
// Inline when there is no pool or only one job.
void run_parallel(WorkerPool* pool, std::size_t jobs,
                  const std::function<void(std::size_t)>& body) {
  if (pool == nullptr || jobs <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) body(i);
    return;
  }
  pool->parallel_for(jobs, body);
}

/// One framed batch in flight between the framer stage and the decode
/// pool, tagged with its deterministic arrival coordinate.
struct FramedChunk {
  std::uint32_t file = 0;
  std::uint32_t chunk = 0;
  std::vector<mrt::Record> records;
};

/// One decoded batch: records bucketed by SessionKey-hash shard, plus the
/// batch's share of the deterministic counters and its arrival coordinate
/// (the pipelined pool finishes chunks in any order; the gather stage
/// re-establishes (file, chunk) order before touching shard state).
struct DecodedChunk {
  DecodedChunk() = default;
  explicit DecodedChunk(std::size_t shard_count) : shards(shard_count) {}

  std::uint32_t file = 0;
  std::uint32_t chunk = 0;
  std::vector<std::vector<SeqRecord>> shards;
  std::size_t update_messages = 0;
  std::size_t records = 0;
};

void bucket_records(std::vector<UpdateRecord>& scratch, std::uint64_t base,
                    std::uint64_t& local, DecodedChunk& out) {
  const std::size_t shard_count = out.shards.size();
  for (UpdateRecord& record : scratch) {
    if (local >= kMaxRecordsPerChunk) {
      throw DecodeError(
          "arrival-sequence overflow: one chunk explodes past 2^24 records "
          "(lower IngestOptions::chunk_records)");
    }
    std::size_t shard = record.session.hash() % shard_count;
    out.shards[shard].push_back(SeqRecord{base + local++, std::move(record)});
    ++out.records;
  }
  scratch.clear();
}

bool is_bgp4mp_message(const mrt::Record& record) {
  return record.is_bgp4mp() &&
         (record.subtype ==
              static_cast<std::uint16_t>(mrt::Bgp4mpSubtype::kMessage) ||
          record.subtype ==
              static_cast<std::uint16_t>(mrt::Bgp4mpSubtype::kMessageAs4));
}

DecodedChunk decode_mrt_chunk(const std::string& collector,
                              FramedChunk&& framed,
                              std::size_t shard_count) {
  const obs::PipelineMetrics& metrics = obs::pipeline_metrics();
  obs::StageTimer decode_timer(metrics.ingest_decode);
  metrics.ingest_chunks->inc();
  metrics.ingest_raw_records->inc(framed.records.size());
  DecodedChunk out(shard_count);
  out.file = framed.file;
  out.chunk = framed.chunk;
  std::uint64_t base = seq_base(framed.file, framed.chunk);
  std::uint64_t local = 0;
  std::vector<UpdateRecord> scratch;
  for (const mrt::Record& record : framed.records) {
    if (!is_bgp4mp_message(record)) continue;
    bool four_byte = true;
    mrt::Bgp4mpMessage message = mrt::Reader::parse_message(record, &four_byte);
    if (peek_type(message.bgp_message) != MessageType::kUpdate) {
      continue;
    }
    CodecOptions codec;
    codec.four_byte_asn = four_byte;
    UpdateMessage update = decode_update(message.bgp_message, codec);
    ++out.update_messages;
    append_update_records(collector, message.peer_asn, message.peer_ip,
                          record.timestamp, update, scratch);
    bucket_records(scratch, base, local, out);
  }
  // Raw bodies are dead weight once decoded; drop them with the chunk so
  // peak memory is decoded-records + the bounded queue, not
  // decoded-records + the whole raw archive.
  framed.records.clear();
  framed.records.shrink_to_fit();
  metrics.ingest_update_messages->inc(out.update_messages);
  metrics.ingest_records->inc(out.records);
  return out;
}

bool seq_only_order(const SeqRecord& a, const SeqRecord& b) {
  return a.seq < b.seq;
}

// Merges one output partition: a k-way tournament (winner tree, runs
// padded to a power of two) over the per-shard ranges [lo, hi), moving
// each record straight into its final slot. cmp is a strict total order
// (seq is globally unique), so the merge — and every partitioning of it —
// is deterministic. Out is UpdateRecord for the batch path (seq tags are
// spent) or SeqRecord for window runs (the final run-merge still needs
// the tie-break).
template <typename Out>
void merge_partition(std::vector<std::vector<SeqRecord>>& shards,
                     const std::vector<std::size_t>& lo,
                     const std::vector<std::size_t>& hi,
                     bool (*cmp)(const SeqRecord&, const SeqRecord&),
                     Out* out) {
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  const std::size_t k = shards.size();
  struct Run {
    SeqRecord* cur;
    SeqRecord* end;
  };
  std::vector<Run> runs(k);
  for (std::size_t s = 0; s < k; ++s) {
    runs[s] = Run{shards[s].data() + lo[s], shards[s].data() + hi[s]};
  }
  std::size_t m = 1;
  while (m < k) m <<= 1;
  // node[i] (1 <= i < m): run winning the subtree; leaves m..2m-1 map to
  // runs, npos marks an exhausted (or padding) run.
  std::vector<std::size_t> node(m, npos);
  auto leaf_run = [&](std::size_t leaf) {
    std::size_t r = leaf - m;
    return (r < k && runs[r].cur != runs[r].end) ? r : npos;
  };
  auto play = [&](std::size_t a, std::size_t b) {
    if (a == npos) return b;
    if (b == npos) return a;
    return cmp(*runs[a].cur, *runs[b].cur) ? a : b;
  };
  auto child_winner = [&](std::size_t child) {
    return child >= m ? leaf_run(child) : node[child];
  };
  for (std::size_t i = m - 1; i >= 1; --i) {
    node[i] = play(child_winner(2 * i), child_winner(2 * i + 1));
  }
  for (;;) {
    std::size_t w = m == 1 ? leaf_run(m) : node[1];
    if (w == npos) break;
    if constexpr (std::is_same_v<Out, SeqRecord>) {
      *out++ = std::move(*runs[w].cur);
    } else {
      *out++ = std::move(runs[w].cur->record);
    }
    ++runs[w].cur;
    for (std::size_t i = (m + w) / 2; i >= 1; i /= 2) {
      node[i] = play(child_winner(2 * i), child_winner(2 * i + 1));
    }
  }
}

// Don't split the merge finer than this: below it, partitioning overhead
// beats the parallelism it buys.
constexpr std::size_t kMinRecordsPerMergePartition = 1024;

// The parallel k-way merge. Requires each shard run already sorted by
// the merge order (gather_and_clean guarantees it — sorting lives there
// so the inline-analytics observer and the merge share ONE sort instead
// of each paying their own); cuts the output into `threads` balanced
// partitions with splitters drawn from the largest run, then
// tournament-merges every partition concurrently into its preallocated
// output slice.
template <typename Out>
void parallel_merge(std::vector<std::vector<SeqRecord>>& shards, bool by_time,
                    WorkerPool* pool, unsigned threads, std::vector<Out>& out) {
  obs::StageTimer merge_timer(obs::pipeline_metrics().ingest_merge);
  bool (*cmp)(const SeqRecord&, const SeqRecord&) =
      by_time ? &seq_time_order : &seq_only_order;

  std::size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  out.resize(total);
  if (total == 0) return;

  const std::size_t k = shards.size();
  std::size_t partitions =
      threads <= 1
          ? 1
          : std::min<std::size_t>(
                threads,
                std::max<std::size_t>(1,
                                      total / kMinRecordsPerMergePartition));

  std::size_t largest = 0;
  for (std::size_t s = 1; s < k; ++s) {
    if (shards[s].size() > shards[largest].size()) largest = s;
  }

  // cuts[p][s]: first index of run s belonging to partition >= p. The
  // splitter for partition p is the (p/P)-quantile of the largest run;
  // lower_bound against a strict total order makes the cuts disjoint,
  // covering, and monotone.
  std::vector<std::vector<std::size_t>> cuts(
      partitions + 1, std::vector<std::size_t>(k, 0));
  for (std::size_t s = 0; s < k; ++s) cuts[partitions][s] = shards[s].size();
  for (std::size_t p = 1; p < partitions; ++p) {
    const SeqRecord& splitter =
        shards[largest][p * shards[largest].size() / partitions];
    for (std::size_t s = 0; s < k; ++s) {
      cuts[p][s] = static_cast<std::size_t>(
          std::lower_bound(shards[s].begin(), shards[s].end(), splitter, cmp) -
          shards[s].begin());
    }
  }

  std::vector<std::size_t> offsets(partitions + 1, 0);
  for (std::size_t p = 0; p < partitions; ++p) {
    std::size_t size = 0;
    for (std::size_t s = 0; s < k; ++s) size += cuts[p + 1][s] - cuts[p][s];
    offsets[p + 1] = offsets[p] + size;
  }

  run_parallel(pool, partitions, [&](std::size_t p) {
    merge_partition(shards, cuts[p], cuts[p + 1], cmp, out.data() + offsets[p]);
  });
}

// Phase 3 over decoded chunks: gather each shard in (file, chunk) order —
// within a shard that equals arrival-sequence order, so cross-file (and
// cross-window, via `carry`) session state sees one continuous session
// history — then clean per shard. `decoded` must already be sorted by
// (file, chunk). Each shard is touched by exactly one job, so the carry
// maps need no locking. On return every shard is sorted in final merge
// order — the precondition of parallel_merge and the order the inline
// shard observer sees (each shard's exact subsequence of the output).
void gather_and_clean(std::vector<DecodedChunk>& decoded,
                      const IngestOptions& options, WorkerPool* pool,
                      std::size_t shard_count,
                      std::vector<cleaning::SecondCarry>* carry,
                      std::vector<std::vector<SeqRecord>>& shards,
                      CleaningReport& report) {
  shards.assign(shard_count, {});
  std::vector<CleaningReport> reports(shard_count);
  // Committed-window barrier (IngestOptions::window_begin): held across
  // the whole shard-clean + observer phase, RAII so a throwing shard job
  // still commits. Covers both the windowed path (process_window) and
  // the batch path (finish_engine) — each batch run is one window.
  struct WindowBracket {
    const IngestOptions& opt;
    explicit WindowBracket(const IngestOptions& o) : opt(o) {
      if (opt.window_begin) opt.window_begin();
    }
    ~WindowBracket() {
      if (opt.window_commit) opt.window_commit();
    }
  } bracket(options);
  const obs::PipelineMetrics& metrics = obs::pipeline_metrics();
  run_parallel(pool, shard_count, [&](std::size_t s) {
    {
      obs::StageTimer clean_timer(metrics.ingest_clean);
      std::size_t total = 0;
      for (const DecodedChunk& chunk : decoded) {
        total += chunk.shards[s].size();
      }
      shards[s].reserve(total);
      for (DecodedChunk& chunk : decoded) {
        std::vector<SeqRecord>& bucket = chunk.shards[s];
        std::move(bucket.begin(), bucket.end(), std::back_inserter(shards[s]));
        bucket.clear();
      }
      if (options.cleaning != nullptr) {
        sort_seq_records(shards[s]);
        reports[s] = cleaning::run(shards[s], *options.cleaning,
                                   carry != nullptr ? &(*carry)[s] : nullptr);
      }
      // Establish final merge order once per shard (cleaning can perturb
      // (time, seq) order: sub-second spacing moves stamps forward); both
      // the observer and parallel_merge consume it.
      std::sort(shards[s].begin(), shards[s].end(),
                options.sort_by_time ? &seq_time_order : &seq_only_order);
    }
    if (options.shard_observer && !shards[s].empty()) {
      obs::StageTimer observe_timer(metrics.ingest_observe);
      options.shard_observer(s, shards[s]);
    }
  });
  for (const CleaningReport& r : reports) {
    report.dropped_unallocated_asn += r.dropped_unallocated_asn;
    report.dropped_unallocated_prefix += r.dropped_unallocated_prefix;
    report.route_server_paths_repaired += r.route_server_paths_repaired;
    report.timestamps_adjusted += r.timestamps_adjusted;
  }
}

// Phases 3+4 of the batch path: gather, clean, merge straight into the
// output stream — the single-window configuration.
void finish_engine(std::vector<DecodedChunk>& decoded,
                   const IngestOptions& options, WorkerPool* pool,
                   unsigned threads, std::size_t shard_count,
                   IngestResult& result) {
  result.stats.shards = shard_count;
  result.stats.threads = threads;
  result.stats.chunks = decoded.size();
  result.stats.windows = 1;
  obs::pipeline_metrics().ingest_windows->inc();
  for (const DecodedChunk& chunk : decoded) {
    result.stats.update_messages += chunk.update_messages;
    result.stats.records += chunk.records;
  }

  std::vector<std::vector<SeqRecord>> shards;
  gather_and_clean(decoded, options, pool, shard_count, nullptr, shards,
                   result.cleaning);
  parallel_merge(shards, options.sort_by_time, pool, threads,
                 result.stream.records());
}

void sort_decoded(std::vector<DecodedChunk>& decoded) {
  std::sort(decoded.begin(), decoded.end(),
            [](const DecodedChunk& a, const DecodedChunk& b) {
              if (a.file != b.file) return a.file < b.file;
              return a.chunk < b.chunk;
            });
}

// ---------------------------------------------------------------------------
// Spilled-run codec: one self-describing record per SeqRecord. The
// attribute block reuses the hardened RFC 4271 wire codec (encode_update /
// decode_update) instead of a parallel hand-rolled serializer, so a
// spill round-trip is exactly as lossless as the MRT decode that produced
// the record. One exception: the next hop travels out-of-band. A decoded
// record's next_hop can disagree with its prefix family (a dual-stack
// UPDATE's MP_REACH next hop overwrites the classic one for every
// exploded record), and the wire codec would reject or v4-map such a
// combination — so the spill stores the verbatim address and encodes the
// UpdateMessage with a family-matching placeholder instead.

// Spill-record flag bits.
constexpr std::uint8_t kSpillAnnouncement = 1;  // else withdrawal
constexpr std::uint8_t kSpillTwoOctet = 2;      // legacy AS_PATH encoding

void write_exact(std::ostream& out, const std::uint8_t* data,
                 std::size_t size) {
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(size));
  if (!out) throw DecodeError("spill-run write failed (stream error)");
}

void write_spill_record(std::ostream& out, const SeqRecord& sr) {
  const UpdateRecord& record = sr.record;
  ByteWriter w;
  w.u64(sr.seq);
  w.u64(static_cast<std::uint64_t>(record.time.unix_micros()));
  const std::string& collector = record.session.collector;
  if (collector.size() > std::numeric_limits<std::uint16_t>::max()) {
    throw ConfigError("collector name too long to spill");
  }
  w.u16(static_cast<std::uint16_t>(collector.size()));
  w.bytes({reinterpret_cast<const std::uint8_t*>(collector.data()),
           collector.size()});
  w.u32(record.session.peer_asn.value());
  auto peer_ip = record.session.peer_address.bytes();
  w.u8(static_cast<std::uint8_t>(peer_ip.size()));
  w.bytes(peer_ip);
  auto prefix_ip = record.prefix.address().bytes();
  w.u8(static_cast<std::uint8_t>(prefix_ip.size()));
  w.bytes(prefix_ip);
  w.u8(static_cast<std::uint8_t>(record.prefix.length()));

  UpdateMessage message;
  if (record.announcement) {
    message.announced.push_back(record.prefix);
    message.attrs = record.attrs;
    message.attrs->next_hop = record.prefix.address();
  } else {
    message.withdrawn.push_back(record.prefix);
  }
  std::uint8_t flags = record.announcement ? kSpillAnnouncement : 0;
  std::vector<std::uint8_t> wire;
  try {
    wire = encode_update(message);
  } catch (const DecodeError&) {
    // Re-encoding a near-limit legacy AS_PATH at 4 bytes/ASN can push a
    // message past the 4096-byte BGP cap. Such paths came off 2-octet
    // sessions, so the legacy encoding both fits and is lossless; fall
    // back to it and record the width for the reader.
    try {
      CodecOptions legacy;
      legacy.four_byte_asn = false;
      wire = encode_update(message, legacy);
      flags |= kSpillTwoOctet;
    } catch (const std::exception&) {
      throw DecodeError(
          "spill-run codec cannot represent a record (message exceeds the "
          "4096-byte BGP cap in both AS encodings); ingest with spill_dir "
          "unset");
    }
  }
  w.u8(flags);
  if (record.announcement) {
    // Verbatim next hop out-of-band; the encoded message carries a
    // placeholder of the prefix's own family (see the codec note above).
    auto next_hop = record.attrs.next_hop.bytes();
    w.u8(static_cast<std::uint8_t>(next_hop.size()));
    w.bytes(next_hop);
  }
  w.u16(static_cast<std::uint16_t>(wire.size()));
  w.bytes(wire);
  write_exact(out, w.data().data(), w.size());
}

void read_spill_exact(std::istream& in, std::uint8_t* data,
                      std::size_t size) {
  // bgpcc-lint: allow(S1, this IS the checked primitive; gcount throws below)
  in.read(reinterpret_cast<char*>(data),
          static_cast<std::streamsize>(size));
  if (static_cast<std::size_t>(in.gcount()) != size) {
    throw DecodeError("truncated spill run");
  }
}

IpAddress read_spill_ip(std::istream& in) {
  std::uint8_t size = 0;
  read_spill_exact(in, &size, 1);
  if (size != 4 && size != 16) {
    throw DecodeError("corrupt spill run: bad address size");
  }
  std::uint8_t bytes[16];
  read_spill_exact(in, bytes, size);
  if (size == 4) return IpAddress::v4(bytes[0], bytes[1], bytes[2], bytes[3]);
  return IpAddress::v6({bytes, 16});
}

/// Reads one record; false at clean end of run.
bool read_spill_record(std::istream& in, SeqRecord& out) {
  std::uint8_t head[16];
  // bgpcc-lint: allow(S1, EOF at record boundary is the clean stop signal)
  in.read(reinterpret_cast<char*>(head), sizeof(head));
  if (in.gcount() == 0 && in.eof()) return false;
  if (static_cast<std::size_t>(in.gcount()) != sizeof(head)) {
    throw DecodeError("truncated spill run");
  }
  ByteReader hr({head, sizeof(head)});
  out.seq = hr.u64();
  out.record.time =
      Timestamp::from_unix_micros(static_cast<std::int64_t>(hr.u64()));

  std::uint8_t len16[2];
  read_spill_exact(in, len16, 2);
  std::uint16_t collector_size =
      static_cast<std::uint16_t>((len16[0] << 8) | len16[1]);
  std::string collector(collector_size, '\0');
  if (collector_size > 0) {
    read_spill_exact(in, reinterpret_cast<std::uint8_t*>(collector.data()),
                     collector_size);
  }
  std::uint8_t asn32[4];
  read_spill_exact(in, asn32, 4);
  std::uint32_t asn = (static_cast<std::uint32_t>(asn32[0]) << 24) |
                      (static_cast<std::uint32_t>(asn32[1]) << 16) |
                      (static_cast<std::uint32_t>(asn32[2]) << 8) |
                      static_cast<std::uint32_t>(asn32[3]);
  out.record.session =
      SessionKey{std::move(collector), Asn(asn), read_spill_ip(in)};

  IpAddress prefix_address = read_spill_ip(in);
  std::uint8_t prefix_length = 0;
  read_spill_exact(in, &prefix_length, 1);
  out.record.prefix = Prefix(prefix_address, prefix_length);

  std::uint8_t flags = 0;
  read_spill_exact(in, &flags, 1);
  out.record.announcement = (flags & kSpillAnnouncement) != 0;

  IpAddress next_hop;
  if (out.record.announcement) next_hop = read_spill_ip(in);

  read_spill_exact(in, len16, 2);
  std::uint16_t wire_size =
      static_cast<std::uint16_t>((len16[0] << 8) | len16[1]);
  std::vector<std::uint8_t> wire(wire_size);
  read_spill_exact(in, wire.data(), wire_size);
  CodecOptions codec;
  codec.four_byte_asn = (flags & kSpillTwoOctet) == 0;
  UpdateMessage message = decode_update(wire, codec);
  if (out.record.announcement) {
    if (!message.attrs) {
      throw DecodeError("corrupt spill run: announcement without attributes");
    }
    out.record.attrs = std::move(*message.attrs);
    out.record.attrs.next_hop = next_hop;  // replaces the placeholder
  } else {
    out.record.attrs = PathAttributes{};
  }
  return true;
}

/// Iterates one ordered run, wherever it lives.
class RunCursor {
 public:
  virtual ~RunCursor() = default;
  virtual bool next(SeqRecord& out) = 0;
};

class MemoryRunCursor final : public RunCursor {
 public:
  explicit MemoryRunCursor(std::vector<SeqRecord>&& run)
      : run_(std::move(run)) {}
  bool next(SeqRecord& out) override {
    if (pos_ >= run_.size()) return false;
    out = std::move(run_[pos_++]);
    return true;
  }

 private:
  std::vector<SeqRecord> run_;
  std::size_t pos_ = 0;
};

class SpillRunCursor final : public RunCursor {
 public:
  explicit SpillRunCursor(const std::string& path)
      : in_(path, std::ios::binary) {
    if (!in_) throw DecodeError("cannot reopen spill run: " + path);
  }
  bool next(SeqRecord& out) override { return read_spill_record(in_, out); }

 private:
  std::ifstream in_;
};

/// Completed window runs: buffered in memory, or spilled to temp files
/// under `spill_dir` so peak memory stays O(window + shards). Spill files
/// are removed after the merge — and on destruction, for abandoned runs.
class RunStore {
 public:
  explicit RunStore(std::string spill_dir)
      : dir_(std::move(spill_dir)),
        token_(std::random_device{}()) {}
  ~RunStore() { discard(); }
  RunStore(const RunStore&) = delete;
  RunStore& operator=(const RunStore&) = delete;

  void add_run(std::vector<SeqRecord>&& run) {
    if (run.empty()) return;
    total_records_ += run.size();
    if (dir_.empty()) {
      memory_.push_back(std::move(run));
      return;
    }
    const obs::PipelineMetrics& metrics = obs::pipeline_metrics();
    obs::StageTimer spill_timer(metrics.ingest_spill);
    metrics.ingest_spilled_runs->inc();
    std::filesystem::create_directories(dir_);
    // Random token + store address + index: several processes (and
    // several stores in one process) can share a spill_dir without
    // colliding, with no POSIX-only pid dependency.
    std::string path =
        (std::filesystem::path(dir_) /
         ("bgpcc-run-" + std::to_string(token_) + "-" +
          std::to_string(reinterpret_cast<std::uintptr_t>(this)) + "-" +
          std::to_string(memory_.size() + files_.size()) + ".spill"))
            .string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw DecodeError("cannot create spill run: " + path);
    try {
      for (const SeqRecord& sr : run) write_spill_record(out, sr);
      out.flush();
      if (!out) throw DecodeError("spill-run write failed: " + path);
    } catch (...) {
      // The file exists but is not yet registered in files_, so the
      // destructor's discard() would never see it — remove the partial
      // run here or it leaks into spill_dir forever.
      out.close();
      std::error_code ec;
      std::filesystem::remove(path, ec);
      throw;
    }
    files_.push_back(std::move(path));
  }

  [[nodiscard]] std::size_t total_records() const { return total_records_; }

  /// Streams the k-way merge of every run (by `cmp` order) into `emit`,
  /// holding one record per run in memory. Consumes the store.
  void merge(bool by_time,
             const std::function<void(UpdateRecord&&)>& emit) {
    obs::StageTimer run_merge_timer(obs::pipeline_metrics().ingest_run_merge);
    bool (*cmp)(const SeqRecord&, const SeqRecord&) =
        by_time ? &seq_time_order : &seq_only_order;
    std::vector<std::unique_ptr<RunCursor>> cursors;
    cursors.reserve(memory_.size() + files_.size());
    for (std::vector<SeqRecord>& run : memory_) {
      cursors.push_back(std::make_unique<MemoryRunCursor>(std::move(run)));
    }
    for (const std::string& path : files_) {
      cursors.push_back(std::make_unique<SpillRunCursor>(path));
    }
    memory_.clear();

    struct HeapEntry {
      SeqRecord record;
      std::size_t cursor;
    };
    // Min-heap via inverted cmp; cmp is a strict total order (unique
    // seq), so the merge is deterministic for any cursor order.
    auto heap_after = [cmp](const HeapEntry& a, const HeapEntry& b) {
      return cmp(b.record, a.record);
    };
    std::vector<HeapEntry> heap;
    heap.reserve(cursors.size());
    for (std::size_t c = 0; c < cursors.size(); ++c) {
      SeqRecord record;
      if (cursors[c]->next(record)) {
        heap.push_back(HeapEntry{std::move(record), c});
      }
    }
    std::make_heap(heap.begin(), heap.end(), heap_after);
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), heap_after);
      HeapEntry entry = std::move(heap.back());
      heap.pop_back();
      emit(std::move(entry.record.record));
      SeqRecord refill;
      if (cursors[entry.cursor]->next(refill)) {
        heap.push_back(HeapEntry{std::move(refill), entry.cursor});
        std::push_heap(heap.begin(), heap.end(), heap_after);
      }
    }
    discard();
  }

 private:
  void discard() {
    memory_.clear();
    for (const std::string& path : files_) {
      std::error_code ec;
      std::filesystem::remove(path, ec);  // best-effort cleanup
    }
    files_.clear();
  }

  std::string dir_;
  unsigned token_;
  std::vector<std::vector<SeqRecord>> memory_;
  std::vector<std::string> files_;
  std::size_t total_records_ = 0;
};

}  // namespace

std::size_t resolve_shard_count(const IngestOptions& options) {
  if (options.shards != 0) {
    if (options.shards > kMaxIngestShards) {
      throw ConfigError("IngestOptions::shards (" +
                        std::to_string(options.shards) + ") exceeds the cap (" +
                        std::to_string(kMaxIngestShards) + ")");
    }
    return options.shards;
  }
  // Auto: the historical 16, doubled until every resolved worker has a
  // shard to chew on. Power-of-two growth keeps small hosts exactly at
  // kIngestShards (so their checkpoints and tests are unchanged) while a
  // 64-core num_threads=0 run is no longer starved at 16. The resolved
  // value is recorded in checkpoints and ADOPTED on restore — output
  // never depends on it, but the carry's shape does.
  std::size_t shards = kIngestShards;
  const unsigned threads = resolve_threads(options.num_threads);
  while (shards < threads && shards < kMaxIngestShards) shards *= 2;
  return shards;
}

// ---------------------------------------------------------------------------
// The streaming windowed engine. One framing cursor walks the sources in
// add order (a window is by definition a prefix of arrival order);
// decode, cleaning, and the merge run on one persistent WorkerPool that
// lives as long as the engine — reused across windows and across
// poll()/finish() calls. Windowed multi-threaded runs additionally
// pipeline: while window N runs shard-clean + merge + inline passes on
// the pool, window N+1 is framed and decoded on the same pool
// (IngestOptions::pipeline_windows), with decode tasks in flight bounded
// by the queue_chunks cap. Batch mode (window_records == 0, finish()
// without poll()) takes the multi-framer path instead — same output,
// whole input as one window.

struct StreamingIngestor::Impl {
  struct SourceEntry {
    std::string collector;
    std::istream* borrowed = nullptr;  // add_stream
    std::string path;                  // add_file (opened lazily)
    bool is_file = false;
  };

  explicit Impl(const IngestOptions& opts)
      : options(opts),
        threads(resolve_threads(opts.num_threads)),
        chunk_records(resolve_chunk_records(opts)),
        shard_count(resolve_shard_count(opts)),
        carry(shard_count),
        // Batch mode (window 0) holds the whole input in memory anyway,
        // so spilling its single run would only add a full disk
        // write+read — spill_dir is honored exactly when windows bound
        // memory, as the header documents.
        runs(opts.window_records == 0 ? std::string() : opts.spill_dir),
        // threads-1 pool workers: the calling thread participates in
        // every stage (parallel_for and wait() both help), so total
        // concurrency equals the configured thread count. threads <= 1
        // runs everything inline with no pool at all.
        pool(threads > 1 ? std::make_unique<WorkerPool>(threads - 1)
                         : nullptr) {
    stats.shards = shard_count;
    stats.threads = threads;
  }

  ~Impl() {
    // A pipelined prefetch may still be decoding; its tasks capture
    // `this`, so quiesce them before any member is torn down. Errors are
    // swallowed: nobody is left to consume this window.
    if (prefetch != nullptr && pool != nullptr) {
      try {
        pool->wait(prefetch->group);
      } catch (...) {
      }
    }
  }

  void check_can_add() const {
    if (finished) {
      throw ConfigError("StreamingIngestor: add after finish()");
    }
    if (sources.size() + 1 >= kMaxFilesPerRun) {
      throw ConfigError("StreamingIngestor: more than 2^16 archive sources");
    }
  }

  /// Opens sources until one yields a bound reader; false when all input
  /// is consumed.
  bool ensure_reader() {
    while (!input) {
      if (next_source >= sources.size()) return false;
      SourceEntry& entry = sources[next_source];
      current_file = static_cast<std::uint32_t>(next_source);
      ++next_source;
      input = entry.is_file ? mrt::InputStream::open_file(entry.path)
                            : mrt::InputStream::wrap(*entry.borrowed);
      chunk_index = 0;
      if (!reader) {
        reader.emplace(input->stream(), chunk_records);
      } else {
        reader->reset(input->stream());
      }
    }
    return true;
  }

  /// Frames up to `budget` raw records (whole chunks), feeding `sink`.
  /// Returns the number framed; 0 means the input is exhausted. A false
  /// sink return (queue abort) stops framing early.
  std::size_t frame_window(std::size_t budget,
                           const std::function<bool(FramedChunk&&)>& sink) {
    const obs::PipelineMetrics& metrics = obs::pipeline_metrics();
    std::size_t framed = 0;
    while (framed < budget) {
      std::optional<std::vector<mrt::Record>> chunk;
      {
        // Times only the framing read itself — the sink below blocks on
        // decode slots, which would otherwise dominate the stage.
        obs::StageTimer frame_timer(metrics.ingest_frame);
        if (!ensure_reader()) break;
        chunk = reader->next_chunk();
      }
      if (!chunk) {
        input.reset();  // EOF: advance to the next source
        continue;
      }
      if (chunk_index >= kMaxChunksPerFile) {
        throw DecodeError(
            "arrival-sequence overflow: one archive frames past 2^24 chunks "
            "(raise IngestOptions::chunk_records)");
      }
      framed += chunk->size();
      if (!sink(FramedChunk{current_file, chunk_index++, std::move(*chunk)})) {
        break;
      }
    }
    return framed;
  }

  /// One window's frame+decode in flight on the pool: the decoded chunks
  /// as they finish (any order — sort_decoded restores the arrival
  /// order), the in-flight decode-task bound, and the end-of-framing
  /// cursor snapshot (the deterministic resume point for the NEXT
  /// window; process_window commits it when the window is consumed).
  struct WindowDecode {
    WorkerPool::Group group;
    std::mutex mutex;
    std::condition_variable slot_free;
    std::vector<DecodedChunk> decoded;
    std::size_t in_flight = 0;  // decode tasks submitted, not finished
    std::size_t framed = 0;
    std::size_t end_next_source = 0;
    bool end_input_open = false;
    std::uint32_t end_current_file = 0;
    std::uint32_t end_chunk_index = 0;
  };

  /// Blocks the framer until a decode slot frees up — by executing other
  /// queued pool tasks while it waits, so even a 1-worker pool can never
  /// deadlock on its own decode backlog. Returns early once the group
  /// has failed (the decode task's catch handler releases its slot and
  /// notifies before rethrowing, so no wakeup is ever missed).
  void wait_for_decode_slot(WindowDecode& w, std::size_t cap) {
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(w.mutex);
        if (w.in_flight < cap || w.group.failed()) return;
      }
      if (pool->help_one()) continue;
      // Nothing left to steal: every in-flight decode is executing on a
      // worker right now, and each completion notifies slot_free.
      std::unique_lock<std::mutex> lock(w.mutex);
      w.slot_free.wait(lock,
                       [&] { return w.in_flight < cap || w.group.failed(); });
      return;
    }
  }

  void submit_decode(WindowDecode& w, FramedChunk&& chunk) {
    const obs::PipelineMetrics& metrics = obs::pipeline_metrics();
    {
      std::lock_guard<std::mutex> lock(w.mutex);
      ++w.in_flight;
    }
    metrics.ingest_decode_in_flight->add();
    pool->submit(w.group, [this, &w, &metrics,
                           chunk = std::move(chunk)]() mutable {
      try {
        DecodedChunk out = decode_mrt_chunk(sources[chunk.file].collector,
                                            std::move(chunk), shard_count);
        {
          std::lock_guard<std::mutex> lock(w.mutex);
          w.decoded.push_back(std::move(out));
          --w.in_flight;
        }
        metrics.ingest_decode_in_flight->sub();
        w.slot_free.notify_all();
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(w.mutex);
          --w.in_flight;
        }
        metrics.ingest_decode_in_flight->sub();
        w.slot_free.notify_all();
        throw;  // the pool records it and fails the group
      }
    });
  }

  /// The framer's per-chunk sink: bounded hand-off of one framed chunk
  /// to the decode pool. False (stop framing) once the window's group
  /// has failed — the replacement for the old queue abort.
  bool decode_sink(WindowDecode& w, std::size_t cap, FramedChunk&& chunk) {
    if (w.group.failed()) return false;
    wait_for_decode_slot(w, cap);
    if (w.group.failed()) return false;
    submit_decode(w, std::move(chunk));
    return true;
  }

  /// Frames one window, fanning chunks out to pool decode tasks, then
  /// snapshots the framing cursor. Runs on the caller (plain windows) or
  /// as a pool task (pipelined prefetch); either way it is the only
  /// thread touching the framing cursor until its group is waited.
  void frame_and_decode(WindowDecode& w, std::size_t budget) {
    const std::size_t cap = resolve_queue_capacity(options, threads);
    w.framed = frame_window(budget, [&](FramedChunk&& chunk) {
      return decode_sink(w, cap, std::move(chunk));
    });
    w.end_next_source = next_source;
    w.end_input_open = input.has_value();
    w.end_current_file = current_file;
    w.end_chunk_index = chunk_index;
  }

  /// Produces the next fully decoded window: the pipelined prefetch if
  /// one is in flight (waiting surfaces any error it hit), else frames
  /// and decodes one now. The returned window is quiescent — no tasks
  /// reference it.
  std::unique_ptr<WindowDecode> take_window(std::size_t budget) {
    if (prefetch != nullptr) {
      std::unique_ptr<WindowDecode> w = std::move(prefetch);
      // Overlap accounting: ~0 here means the prefetched window was
      // already done when the current one finished (perfect pipelining).
      obs::StageTimer wait_timer(obs::pipeline_metrics().ingest_prefetch_wait);
      pool->wait(w->group);
      return w;
    }
    auto w = std::make_unique<WindowDecode>();
    if (pool == nullptr) {
      w->framed = frame_window(budget, [&](FramedChunk&& chunk) {
        w->decoded.push_back(decode_mrt_chunk(sources[chunk.file].collector,
                                              std::move(chunk), shard_count));
        return true;
      });
      w->end_next_source = next_source;
      w->end_input_open = input.has_value();
      w->end_current_file = current_file;
      w->end_chunk_index = chunk_index;
      return w;
    }
    try {
      frame_and_decode(*w, budget);
    } catch (...) {
      // Decode tasks still reference *w; fail the group so they are
      // skipped, then wait() below quiesces them and rethrows the first
      // error (this one, unless a decode task beat the framer to it).
      pool->fail(w->group, std::current_exception());
    }
    pool->wait(w->group);
    return w;
  }

  /// Starts framing+decoding the next window on the pool, overlapping it
  /// with the current window's clean/merge/passes. The framer runs as
  /// one pool task and is the sole owner of the framing cursor until the
  /// group is waited (take_window / drain_prefetch / ~Impl).
  void start_prefetch(std::size_t budget) {
    prefetch = std::make_unique<WindowDecode>();
    WindowDecode& w = *prefetch;
    pool->submit(w.group,
                 [this, &w, budget] { frame_and_decode(w, budget); });
  }

  /// add_stream/add_file would reallocate `sources` under a running
  /// prefetch's feet; quiesce it first. The decoded window stays cached
  /// for the next poll — appending sources after the current cursor
  /// cannot invalidate an already-framed prefix of the arrival order.
  void drain_prefetch_for_add() {
    if (prefetch == nullptr || pool == nullptr) return;
    try {
      pool->wait(prefetch->group);
    } catch (...) {
      failed = true;  // same poisoning a failing poll() would apply
      throw;
    }
  }

  /// Processes one window end to end; false when the input is exhausted.
  bool process_window() {
    const obs::PipelineMetrics& metrics = obs::pipeline_metrics();
    obs::StageTimer window_timer(metrics.ingest_window);
    const std::size_t budget = options.window_records == 0
                                   ? std::numeric_limits<std::size_t>::max()
                                   : options.window_records;
    std::unique_ptr<WindowDecode> w = take_window(budget);
    if (w->framed == 0) return false;

    // Commit this window's end-of-framing cursor: checkpoint_state()
    // reads ONLY these fields, never the live cursor — a pipelined
    // prefetch advances the live cursor concurrently, and a checkpoint
    // must resume at the first UNPROCESSED window (the prefetched window
    // is simply re-framed after a restore).
    committed_next_source = w->end_next_source;
    committed_input_open = w->end_input_open;
    committed_current_file = w->end_current_file;
    committed_chunk_index = w->end_chunk_index;

    // Pipeline: frame+decode the NEXT window on the pool while this one
    // cleans and merges. Only when this window filled its whole budget —
    // a short window means the input is exhausted (and leaves add_*
    // between polls cheap: no prefetch to quiesce).
    if (pool != nullptr && options.pipeline_windows && w->framed >= budget) {
      start_prefetch(budget);
    }

    stats.raw_records += w->framed;
    stats.chunks += w->decoded.size();
    for (const DecodedChunk& chunk : w->decoded) {
      stats.update_messages += chunk.update_messages;
      stats.records += chunk.records;
    }

    sort_decoded(w->decoded);
    std::vector<std::vector<SeqRecord>> shards;
    gather_and_clean(w->decoded, options, pool.get(), shard_count, &carry,
                     shards, cleaning_report);
    std::vector<SeqRecord> run;
    parallel_merge(shards, options.sort_by_time, pool.get(), threads, run);
    runs.add_run(std::move(run));
    ++stats.windows;
    metrics.ingest_windows->inc();
    return true;
  }

  /// The batch configuration: whole input as one window through the
  /// multi-framer pipelined path (framing I/O overlaps decode, several
  /// archives framed concurrently), merged straight into the stream.
  void run_batch(IngestResult& result) {
    // Wrap every source up front (detecting compression); files are
    // opened here, matching the windowed path's DecodeError on a missing
    // file.
    std::vector<mrt::InputStream> inputs;
    inputs.reserve(sources.size());
    for (SourceEntry& entry : sources) {
      inputs.push_back(entry.is_file ? mrt::InputStream::open_file(entry.path)
                                     : mrt::InputStream::wrap(*entry.borrowed));
    }

    std::vector<DecodedChunk> decoded;
    std::size_t raw_records = 0;

    auto frame_file = [&](mrt::ChunkedReader& file_reader, std::uint32_t file,
                          const std::function<bool(FramedChunk&&)>& sink) {
      const obs::PipelineMetrics& metrics = obs::pipeline_metrics();
      std::uint32_t file_chunk = 0;
      for (;;) {
        std::optional<std::vector<mrt::Record>> chunk;
        {
          obs::StageTimer frame_timer(metrics.ingest_frame);
          chunk = file_reader.next_chunk();
        }
        if (!chunk) break;
        if (file_chunk >= kMaxChunksPerFile) {
          throw DecodeError(
              "arrival-sequence overflow: one archive frames past 2^24 "
              "chunks (raise IngestOptions::chunk_records)");
        }
        if (!sink(FramedChunk{file, file_chunk++, std::move(*chunk)})) return;
      }
    };

    if (pool == nullptr || sources.empty()) {
      // Inline mode: frame and decode alternate on the caller's thread,
      // one ChunkedReader reused (reset) across every file. Nothing is
      // buffered beyond the chunk in flight.
      std::optional<mrt::ChunkedReader> batch_reader;
      for (std::size_t f = 0; f < sources.size(); ++f) {
        if (!batch_reader) {
          batch_reader.emplace(inputs[f].stream(), chunk_records);
        } else {
          batch_reader->reset(inputs[f].stream());
        }
        frame_file(*batch_reader, static_cast<std::uint32_t>(f),
                   [&](FramedChunk&& framed) {
                     decoded.push_back(
                         decode_mrt_chunk(sources[framed.file].collector,
                                          std::move(framed), shard_count));
                     return true;
                   });
      }
      if (batch_reader) raw_records = batch_reader->records_read();
    } else {
      // Pool mode: framer tasks claim whole files and fan chunks out as
      // decode tasks on the same group — framing I/O overlaps decode,
      // multiple archives are framed in parallel, and the caller helps
      // (wait executes queued tasks) instead of spawning threads.
      std::size_t framers =
          options.frame_threads != 0
              ? std::min<std::size_t>(options.frame_threads, sources.size())
              : std::min<std::size_t>(
                    {sources.size(), threads, std::size_t{4}});
      if (framers == 0) framers = 1;

      WindowDecode w;
      const std::size_t cap = resolve_queue_capacity(options, threads);
      std::atomic<std::size_t> next_file{0};
      std::atomic<std::size_t> raw_counter{0};

      auto framer = [&] {
        std::optional<mrt::ChunkedReader> file_reader;
        auto flush_raw = [&] {
          if (file_reader) {
            raw_counter.fetch_add(file_reader->records_read(),
                                  std::memory_order_relaxed);
          }
        };
        try {
          for (;;) {
            std::size_t f = next_file.fetch_add(1, std::memory_order_relaxed);
            if (f >= sources.size() || w.group.failed()) break;
            if (!file_reader) {
              file_reader.emplace(inputs[f].stream(), chunk_records);
            } else {
              file_reader->reset(inputs[f].stream());
            }
            frame_file(*file_reader, static_cast<std::uint32_t>(f),
                       [&](FramedChunk&& framed) {
                         return decode_sink(w, cap, std::move(framed));
                       });
          }
        } catch (...) {
          flush_raw();
          throw;
        }
        flush_raw();
      };

      for (std::size_t t = 0; t + 1 < framers; ++t) {
        pool->submit(w.group, framer);
      }
      // The caller runs one framer itself, then waits — executing any
      // still-queued framer/decode tasks while it does.
      try {
        framer();
      } catch (...) {
        pool->fail(w.group, std::current_exception());
      }
      pool->wait(w.group);
      raw_records = raw_counter.load();
      decoded = std::move(w.decoded);
    }

    result.stats.raw_records = raw_records;
    sort_decoded(decoded);
    finish_engine(decoded, options, pool.get(), threads, shard_count, result);
  }

  IngestResult finish(const std::function<void(UpdateRecord&&)>* sink) {
    if (failed) {
      // A thrown poll()/finish() has already consumed records whose
      // window was aborted; a result assembled now would be silently
      // incomplete. (Checked before `finished` so a failed finish()
      // reports the poisoning, not a misleading "called twice".)
      throw ConfigError(
          "StreamingIngestor: finish() after a failed poll()/finish() — "
          "the result would silently miss records");
    }
    if (finished) {
      throw ConfigError("StreamingIngestor: finish() called twice");
    }
    finished = true;
    try {
      return finish_impl(sink);
    } catch (...) {
      failed = true;
      throw;
    }
  }

  IngestResult finish_impl(const std::function<void(UpdateRecord&&)>* sink) {
    IngestResult result;
    if (!windowed && options.window_records == 0 && sink == nullptr) {
      run_batch(result);
    } else {
      while (process_window()) {
      }
      result.cleaning = cleaning_report;
      result.stats = stats;
      if (sink != nullptr) {
        runs.merge(options.sort_by_time,
                   [&](UpdateRecord&& record) { (*sink)(std::move(record)); });
      } else {
        std::vector<UpdateRecord>& out = result.stream.records();
        out.reserve(runs.total_records());
        runs.merge(options.sort_by_time, [&](UpdateRecord&& record) {
          out.push_back(std::move(record));
        });
      }
    }
    result.stats.files = sources.size();
    result.stats.shards = shard_count;
    result.stats.threads = threads;
    // Keep the accessor truthful after a batch-mode finish too: stats()
    // must report the completed run, not the zeros of a never-polled
    // windowed state.
    stats = result.stats;
    cleaning_report = result.cleaning;
    return result;
  }

  IngestOptions options;
  unsigned threads;
  std::size_t chunk_records;
  // Runtime-resolved (restore_checkpoint ADOPTS the checkpoint's count,
  // which may differ from the local auto-resolution).
  std::size_t shard_count;

  std::vector<SourceEntry> sources;

  // Live framing cursor (persists across poll() calls; a window can
  // pause mid-file). With pipelining this is owned by the prefetch
  // framer between polls — only checkpoint-committed copies below are
  // safe to read while a prefetch is in flight.
  std::size_t next_source = 0;
  std::optional<mrt::InputStream> input;
  std::optional<mrt::ChunkedReader> reader;
  std::uint32_t current_file = 0;
  std::uint32_t chunk_index = 0;

  // Cursor committed by the last PROCESSED window — what
  // checkpoint_state() snapshots. Equal to the live cursor whenever no
  // prefetch is pending.
  std::size_t committed_next_source = 0;
  bool committed_input_open = false;
  std::uint32_t committed_current_file = 0;
  std::uint32_t committed_chunk_index = 0;

  std::vector<cleaning::SecondCarry> carry;  // one per shard
  CleaningReport cleaning_report;
  IngestStats stats;
  RunStore runs;
  bool windowed = false;  // poll() was used → finish via run-merge
  bool finished = false;
  bool failed = false;  // a poll() threw → results would be incomplete

  // The next window, framing/decoding on the pool while the current one
  // cleans and merges. Null when pipelining is off or the input ran dry.
  std::unique_ptr<WindowDecode> prefetch;
  // Declared last: destroyed first, after ~Impl has quiesced the
  // prefetch group, while every member its tasks referenced still lives.
  std::unique_ptr<WorkerPool> pool;
};

StreamingIngestor::StreamingIngestor(const IngestOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

StreamingIngestor::~StreamingIngestor() = default;

void StreamingIngestor::add_stream(const std::string& collector,
                                   std::istream& in) {
  impl_->check_can_add();
  impl_->drain_prefetch_for_add();
  Impl::SourceEntry entry;
  entry.collector = collector;
  entry.borrowed = &in;
  impl_->sources.push_back(std::move(entry));
  impl_->stats.files = impl_->sources.size();
}

void StreamingIngestor::add_file(const std::string& collector,
                                 const std::string& path) {
  impl_->check_can_add();
  impl_->drain_prefetch_for_add();
  Impl::SourceEntry entry;
  entry.collector = collector;
  entry.path = path;
  entry.is_file = true;
  impl_->sources.push_back(std::move(entry));
  impl_->stats.files = impl_->sources.size();
}

bool StreamingIngestor::poll() {
  if (impl_->failed) {
    throw ConfigError(
        "StreamingIngestor: poll() after a failed poll()/finish()");
  }
  if (impl_->finished) {
    throw ConfigError("StreamingIngestor: poll() after finish()");
  }
  impl_->windowed = true;
  try {
    return impl_->process_window();
  } catch (...) {
    impl_->failed = true;
    throw;
  }
}

IngestResult StreamingIngestor::finish() { return impl_->finish(nullptr); }

IngestResult StreamingIngestor::finish(
    const std::function<void(UpdateRecord&&)>& sink) {
  return impl_->finish(&sink);
}

const IngestStats& StreamingIngestor::stats() const { return impl_->stats; }

IngestCheckpoint StreamingIngestor::checkpoint_state() const {
  const Impl& impl = *impl_;
  if (impl.failed) {
    throw ConfigError(
        "StreamingIngestor: checkpoint_state() after a failed "
        "poll()/finish() — the aborted window's records are already lost");
  }
  if (impl.finished) {
    throw ConfigError(
        "StreamingIngestor: checkpoint_state() after finish() — there is "
        "nothing left to resume");
  }
  IngestCheckpoint out;
  out.chunk_records = impl.chunk_records;
  out.collectors.reserve(impl.sources.size());
  for (const Impl::SourceEntry& entry : impl.sources) {
    out.collectors.push_back(entry.collector);
  }
  // The committed cursor, NOT the live one: a pipelined prefetch owns
  // (and advances) the live cursor concurrently, and a resume must
  // replay from the first window that was never processed — which is
  // exactly the prefetched window.
  out.next_source = impl.committed_next_source;
  out.input_open = impl.committed_input_open;
  out.current_file = impl.committed_current_file;
  out.chunk_index = impl.committed_chunk_index;
  out.shards = impl.shard_count;
  out.carry = impl.carry;
  out.cleaning = impl.cleaning_report;
  out.stats = impl.stats;
  return out;
}

void StreamingIngestor::restore_checkpoint(const IngestCheckpoint& state) {
  Impl& impl = *impl_;
  if (impl.finished || impl.failed || impl.windowed ||
      impl.stats.raw_records != 0 || impl.input) {
    throw ConfigError(
        "StreamingIngestor: restore_checkpoint() on a used ingestor — "
        "restore into a freshly constructed one, before any poll()");
  }
  if (state.chunk_records != impl.chunk_records) {
    throw ConfigError(
        "StreamingIngestor: checkpoint chunk_records (" +
        std::to_string(state.chunk_records) + ") differs from configured (" +
        std::to_string(impl.chunk_records) +
        ") — chunking defines the resume point, configure it identically");
  }
  if (state.collectors.size() != impl.sources.size()) {
    throw ConfigError(
        "StreamingIngestor: checkpoint lists " +
        std::to_string(state.collectors.size()) + " sources but " +
        std::to_string(impl.sources.size()) +
        " are registered — re-register the original inputs in order");
  }
  for (std::size_t i = 0; i < state.collectors.size(); ++i) {
    if (state.collectors[i] != impl.sources[i].collector) {
      throw ConfigError("StreamingIngestor: checkpoint source " +
                        std::to_string(i) + " is collector '" +
                        state.collectors[i] + "' but '" +
                        impl.sources[i].collector + "' is registered");
    }
  }
  // Adopt the checkpoint's shard count instead of re-resolving locally:
  // num_threads=0 auto-resolution is machine-dependent, and a cursor
  // written on an 8-core host must restore on a 4-core one. A legacy
  // caller-built checkpoint with shards == 0 is accepted as long as the
  // carry itself is well-formed.
  const std::size_t checkpoint_shards =
      state.shards != 0 ? state.shards : state.carry.size();
  if (checkpoint_shards == 0 || checkpoint_shards > kMaxIngestShards ||
      checkpoint_shards != state.carry.size()) {
    throw ConfigError(
        "StreamingIngestor: checkpoint shard count (" +
        std::to_string(state.shards) + ") and carry size (" +
        std::to_string(state.carry.size()) +
        ") are inconsistent or out of range");
  }
  if (state.next_source > impl.sources.size() ||
      (state.input_open &&
       (state.current_file >= impl.sources.size() ||
        state.next_source != state.current_file + std::uint64_t{1}))) {
    throw ConfigError(
        "StreamingIngestor: checkpoint cursor is out of range for the "
        "registered sources");
  }

  impl.shard_count = checkpoint_shards;
  impl.carry = state.carry;
  impl.cleaning_report = state.cleaning;
  impl.stats = state.stats;
  impl.stats.shards = impl.shard_count;
  impl.stats.threads = impl.threads;
  impl.stats.files = impl.sources.size();
  impl.next_source = static_cast<std::size_t>(state.next_source);
  impl.committed_next_source = static_cast<std::size_t>(state.next_source);
  impl.committed_input_open = state.input_open;
  impl.committed_current_file = state.current_file;
  impl.committed_chunk_index = state.chunk_index;
  impl.windowed = true;  // resumed runs finish via the run-merge path

  if (state.input_open) {
    Impl::SourceEntry& entry = impl.sources[state.current_file];
    impl.current_file = state.current_file;
    impl.input = entry.is_file ? mrt::InputStream::open_file(entry.path)
                               : mrt::InputStream::wrap(*entry.borrowed);
    impl.reader.emplace(impl.input->stream(), impl.chunk_records);
    // Chunking is deterministic, so discarding the consumed chunks
    // relocates the framing cursor to the exact record the checkpointed
    // run would have read next.
    for (std::uint32_t c = 0; c < state.chunk_index; ++c) {
      if (!impl.reader->next_chunk()) {
        throw DecodeError(
            "restore_checkpoint: source '" + entry.collector +
            "' ends before checkpoint chunk " +
            std::to_string(state.chunk_index) +
            " — the input differs from the checkpointed run");
      }
    }
    impl.chunk_index = state.chunk_index;
  }
}

// ---------------------------------------------------------------------------
// Batch entry points: thin wrappers over the streaming core.

IngestResult ingest_mrt_sources(const std::vector<MrtSource>& sources,
                                const IngestOptions& options) {
  if (sources.size() >= kMaxFilesPerRun) {
    throw ConfigError("ingest_mrt_sources: more than 2^16 archive files");
  }
  for (const MrtSource& source : sources) {
    if (source.in == nullptr) {
      throw ConfigError("ingest_mrt_sources: null stream for collector " +
                        source.collector);
    }
  }
  StreamingIngestor engine(options);
  for (const MrtSource& source : sources) {
    engine.add_stream(source.collector, *source.in);
  }
  return engine.finish();
}

IngestResult ingest_mrt_stream(const std::string& collector, std::istream& in,
                               const IngestOptions& options) {
  return ingest_mrt_sources({MrtSource{collector, &in}}, options);
}

IngestResult ingest_mrt_file(const std::string& collector,
                             const std::string& path,
                             const IngestOptions& options) {
  StreamingIngestor engine(options);
  engine.add_file(collector, path);
  return engine.finish();
}

IngestResult ingest_mrt_files(
    const std::map<std::string, std::vector<std::string>>& archives,
    const IngestOptions& options) {
  StreamingIngestor engine(options);
  for (const auto& [collector, paths] : archives) {
    for (const std::string& path : paths) {
      engine.add_file(collector, path);
    }
  }
  return engine.finish();
}

IngestResult ingest_mrt_files(const std::string& collector,
                              const std::vector<std::string>& paths,
                              const IngestOptions& options) {
  return ingest_mrt_files({{collector, paths}}, options);
}

IngestResult ingest_collectors(
    const std::vector<const sim::RouteCollector*>& collectors,
    const IngestOptions& options) {
  if (collectors.size() >= kMaxFilesPerRun) {
    throw ConfigError("ingest_collectors: more than 2^16 collectors");
  }
  unsigned threads = resolve_threads(options.num_threads);
  std::size_t chunk_records = resolve_chunk_records(options);
  std::size_t shard_count = resolve_shard_count(options);
  // One pool for decode + clean + merge (instead of three spawn/join
  // rounds); the caller participates, so threads-1 workers.
  std::optional<WorkerPool> pool_storage;
  if (threads > 1) pool_storage.emplace(threads - 1);
  WorkerPool* pool = pool_storage ? &*pool_storage : nullptr;

  IngestResult result;
  result.stats.files = collectors.size();

  // Recorded messages are already in memory, so the job list is known
  // upfront: one (collector, chunk) pair per batch, dispatched straight to
  // the pool — no framer stage, no queue, and no windowing (there is no
  // archive to bound memory against).
  struct Job {
    std::uint32_t file;
    std::uint32_t chunk;
    std::size_t begin;
    std::size_t end;
  };
  std::vector<Job> jobs;
  for (std::size_t c = 0; c < collectors.size(); ++c) {
    if (collectors[c] == nullptr) {
      throw ConfigError("ingest_collectors: null collector");
    }
    std::size_t count = collectors[c]->messages().size();
    result.stats.raw_records += count;
    std::size_t chunks = (count + chunk_records - 1) / chunk_records;
    if (chunks >= kMaxChunksPerFile) {
      throw ConfigError("ingest_collectors: collector log frames past 2^24 "
                        "chunks (raise IngestOptions::chunk_records)");
    }
    for (std::size_t k = 0; k < chunks; ++k) {
      jobs.push_back(Job{static_cast<std::uint32_t>(c),
                         static_cast<std::uint32_t>(k), k * chunk_records,
                         std::min(count, (k + 1) * chunk_records)});
    }
  }

  std::vector<DecodedChunk> decoded(jobs.size());
  run_parallel(pool, jobs.size(), [&](std::size_t j) {
    const Job& job = jobs[j];
    const sim::RouteCollector& collector = *collectors[job.file];
    const std::vector<sim::RecordedMessage>& messages = collector.messages();
    DecodedChunk out(shard_count);
    out.file = job.file;
    out.chunk = job.chunk;
    std::uint64_t base = seq_base(job.file, job.chunk);
    std::uint64_t local = 0;
    std::vector<UpdateRecord> scratch;
    for (std::size_t m = job.begin; m < job.end; ++m) {
      const sim::RecordedMessage& rec = messages[m];
      ++out.update_messages;
      append_update_records(collector.name(), rec.peer_asn, rec.peer_address,
                            rec.time, rec.update, scratch);
      bucket_records(scratch, base, local, out);
    }
    decoded[j] = std::move(out);
  });

  sort_decoded(decoded);
  finish_engine(decoded, options, pool, threads, shard_count, result);
  return result;
}

IngestResult ingest_collector(const sim::RouteCollector& collector,
                              const IngestOptions& options) {
  return ingest_collectors({&collector}, options);
}

}  // namespace bgpcc::core
