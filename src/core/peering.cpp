#include "core/peering.h"

#include <algorithm>

namespace bgpcc::core {

std::vector<PeeringEstimate> infer_peering(const UpdateStream& stream,
                                           const PeeringOptions& options) {
  struct Evidence {
    std::uint64_t announcements = 0;
    std::set<CommunitySet> tagsets;
    std::set<Community> codes;
  };
  std::map<std::pair<Asn, Asn>, Evidence> pairs;

  for (const UpdateRecord& record : stream.records()) {
    if (!record.announcement) continue;
    std::vector<Asn> path = record.attrs.as_path.dedup_sequence();
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      Asn transit = path[i];
      Asn neighbor = path[i + 1];
      if (!transit.is_2byte()) continue;
      std::uint16_t ns = static_cast<std::uint16_t>(transit.value());
      // Communities in the transit's namespace form the ingress tag-set.
      CommunitySet tagset;
      for (Community c : record.attrs.communities) {
        if (c.asn16() == ns) tagset.add(c);
      }
      Evidence& e = pairs[{transit, neighbor}];
      ++e.announcements;
      if (!tagset.empty()) {
        e.tagsets.insert(tagset);
        for (Community c : tagset) e.codes.insert(c);
      }
    }
  }

  std::vector<PeeringEstimate> out;
  for (const auto& [key, e] : pairs) {
    if (e.announcements < options.min_announcements) continue;
    PeeringEstimate estimate;
    estimate.transit = key.first;
    estimate.neighbor = key.second;
    estimate.announcements = e.announcements;
    estimate.distinct_ingress_tagsets = static_cast<int>(e.tagsets.size());
    estimate.distinct_location_codes = static_cast<int>(e.codes.size());
    out.push_back(estimate);
  }
  std::sort(out.begin(), out.end(),
            [](const PeeringEstimate& a, const PeeringEstimate& b) {
              if (a.distinct_ingress_tagsets != b.distinct_ingress_tagsets) {
                return a.distinct_ingress_tagsets > b.distinct_ingress_tagsets;
              }
              return a.announcements > b.announcements;
            });
  return out;
}

}  // namespace bgpcc::core
