#include "core/registry.h"

namespace bgpcc::core {

void Registry::allocate_asn(Asn asn, Timestamp when) {
  auto [it, inserted] = asns_.try_emplace(asn.value(), when);
  if (!inserted && when < it->second) it->second = when;
}

void Registry::allocate_prefix(const Prefix& block, Timestamp when) {
  if (Timestamp* existing = blocks_.find(block)) {
    if (when < *existing) *existing = when;
    return;
  }
  blocks_.insert(block, when);
}

bool Registry::asn_allocated(Asn asn, Timestamp at) const {
  auto it = asns_.find(asn.value());
  return it != asns_.end() && it->second <= at;
}

bool Registry::prefix_allocated(const Prefix& prefix, Timestamp at) const {
  // Check every covering block: lengths 0..prefix.length().
  for (int len = 0; len <= prefix.length(); ++len) {
    Prefix candidate(prefix.address().masked(len), len);
    if (const Timestamp* when = blocks_.find(candidate)) {
      if (*when <= at) return true;
    }
  }
  return false;
}

}  // namespace bgpcc::core
