// §4 cleaning kernels, factored out of the sequential clean() so the
// sharded parallel ingestion engine (core/ingest.h) runs the exact same
// code per shard. All kernels operate on SeqRecords: an UpdateRecord
// tagged with its global arrival sequence number, which is the
// deterministic tie-break that makes 1-thread and N-thread ingestion
// produce identical streams.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/stream.h"

namespace bgpcc::core {

/// An UpdateRecord plus its global arrival sequence number. The sequence
/// is assigned during (sequential, deterministic) framing and survives
/// decode, sharding, and cleaning, so any two runs can be merged into the
/// same total order (time, seq) regardless of thread count.
struct SeqRecord {
  std::uint64_t seq = 0;
  UpdateRecord record;
};

/// The engine's total order: chronological with arrival-order ties. Seq
/// values are globally unique, so this is a strict total order — the
/// property that makes the parallel k-way merge (core/ingest.cpp)
/// deterministic for every thread count and partitioning.
[[nodiscard]] inline bool seq_time_order(const SeqRecord& a,
                                         const SeqRecord& b) {
  if (a.record.time != b.record.time) return a.record.time < b.record.time;
  return a.seq < b.seq;
}

/// Sorts by (record.time, seq): chronological with arrival-order ties.
void sort_seq_records(std::vector<SeqRecord>& records);

namespace cleaning {

using RouteServerMap = std::map<IpAddress, Asn>;

/// Prepends the route server's ASN to AS paths that lack it (§4: IXP
/// route servers that do not insert their own ASN). Returns the number of
/// paths repaired. Order-independent.
std::size_t repair_route_server_paths(std::vector<SeqRecord>& records,
                                      const RouteServerMap& servers);

/// Drops records whose AS path or prefix was unallocated at message time
/// (§4 unallocated-resource filtering). Order-independent.
void drop_unallocated(std::vector<SeqRecord>& records,
                      const Registry& registry, std::size_t* dropped_asn,
                      std::size_t* dropped_prefix);

/// Per-session carry-over state for the second-granularity repair: the
/// last original second seen on each session and how many records already
/// shared it. The streaming windowed engine (core/ingest.h) persists one
/// of these per shard across window boundaries, so a same-second burst
/// split by a window cut is spaced exactly as if the whole archive had
/// been cleaned in one batch. Sound whenever each session's
/// second-granularity timestamps are non-decreasing in arrival order —
/// which chronological collector dumps guarantee.
using SecondCarry =
    std::unordered_map<SessionKey, std::pair<std::int64_t, int>,
                       SessionKeyHash>;

/// Spaces successive same-second records of one session `step` apart (§4:
/// second-granularity collectors). Requires `records` sorted by
/// (time, seq); returns the number of timestamps adjusted. Sessions are
/// independent, so running this per SessionKey-shard equals running it
/// over the whole stream. `carry`, when non-null, is read and updated in
/// place (window-boundary continuation); null keeps the state local to
/// this call.
std::size_t fix_second_granularity(std::vector<SeqRecord>& records,
                                   Duration step,
                                   SecondCarry* carry = nullptr);

/// The full §4 pipeline over one shard (or the whole stream): route-server
/// repair, unallocated filtering, then second-granularity timestamp repair
/// (which sorts `records` by (time, seq) around the adjustment; with
/// `fix_second_granularity` off the input order is preserved). `carry`
/// threads the per-session second-granularity state across windowed calls.
CleaningReport run(std::vector<SeqRecord>& records,
                   const CleaningOptions& options,
                   SecondCarry* carry = nullptr);

}  // namespace cleaning
}  // namespace bgpcc::core
