// Peering inference (§7): "the updates we observe often allow us to
// remotely infer the number of interconnections between two ASes and the
// location where they peer."
//
// Community exploration is the side channel: during path hunting, a
// geo-tagging transit reveals one distinct ingress tag-set per
// interconnection with its neighbor. Counting distinct tag-sets observed
// on (transit, neighbor)-adjacent paths lower-bounds the number of
// peering points — from collector vantage only.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "core/stream.h"

namespace bgpcc::core {

/// Inferred interconnection facts for one (transit, neighbor) AS pair,
/// where `transit` appears immediately collector-side of `neighbor` on
/// observed AS paths.
struct PeeringEstimate {
  Asn transit;
  Asn neighbor;
  /// Announcements observed over this adjacency.
  std::uint64_t announcements = 0;
  /// Distinct transit-namespace community attribute sets — a lower bound
  /// on the number of interconnections (ingress points).
  int distinct_ingress_tagsets = 0;
  /// Distinct individual transit-namespace community values (location
  /// codes: cities, countries, regions).
  int distinct_location_codes = 0;
};

struct PeeringOptions {
  /// Ignore adjacencies with fewer observations (noise floor).
  std::uint64_t min_announcements = 5;
};

/// Scans announcements for transit/neighbor adjacencies and counts the
/// ingress tag-sets each adjacency reveals. Only 16-bit transit ASNs can
/// be matched to community namespaces. Results are sorted by
/// distinct_ingress_tagsets descending.
[[nodiscard]] std::vector<PeeringEstimate> infer_peering(
    const UpdateStream& stream, const PeeringOptions& options = {});

}  // namespace bgpcc::core
