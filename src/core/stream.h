// Normalized update streams: the unit of the paper's measurement study.
// Raw collector output (simulated or MRT files) is exploded into
// per-prefix records, grouped by BGP session, then cleaned exactly as
// §4 describes: unallocated-resource filtering, route-server AS-path
// repair, and sub-second ordering for second-granularity collectors.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bgp/message.h"
#include "core/registry.h"
#include "sim/collector.h"

namespace bgpcc::core {

/// Identifies one BGP session at one collector: the stream key of the
/// whole analysis (the paper groups "by the prefix and the BGP session of
/// a peer AS / next-hop").
struct SessionKey {
  std::string collector;
  Asn peer_asn;
  IpAddress peer_address;

  [[nodiscard]] std::string to_string() const;

  /// Stable FNV-1a hash (identical across runs and platforms): the shard
  /// assignment of the parallel ingestion engine, so it must not depend on
  /// std::hash implementation details.
  [[nodiscard]] std::size_t hash() const;

  friend auto operator<=>(const SessionKey&, const SessionKey&) = default;
};

/// Hash functor so SessionKey can key unordered containers.
struct SessionKeyHash {
  std::size_t operator()(const SessionKey& key) const noexcept {
    return key.hash();
  }
};

/// One announcement or withdrawal of one prefix on one session.
struct UpdateRecord {
  Timestamp time;
  SessionKey session;
  Prefix prefix;
  bool announcement = true;  // false: withdrawal
  PathAttributes attrs;      // meaningful only when announcement

  friend auto operator<=>(const UpdateRecord&, const UpdateRecord&) = default;
};

/// A chronologically ordered collection of UpdateRecords, with builders
/// from simulator collectors and from MRT files.
class UpdateStream {
 public:
  UpdateStream() = default;

  void add(UpdateRecord record) { records_.push_back(std::move(record)); }

  /// Explodes a BGP UPDATE into one record per announced/withdrawn prefix.
  void add_message(const std::string& collector, Asn peer_asn,
                   const IpAddress& peer_address, Timestamp time,
                   const UpdateMessage& update);

  /// Ingests everything a simulated collector recorded.
  [[nodiscard]] static UpdateStream from_collector(
      const sim::RouteCollector& collector);

  /// Parses an MRT file (BGP4MP messages) into a stream.
  /// `collector` names the file's origin for the session keys.
  [[nodiscard]] static UpdateStream from_mrt_file(const std::string& collector,
                                                  const std::string& path);

  /// Appends all records of another stream (e.g. merging collectors).
  void merge(const UpdateStream& other);

  /// Stable time sort (preserves arrival order within equal timestamps —
  /// a guarantee the second-granularity repair depends on).
  void sort_by_time();

  [[nodiscard]] const std::vector<UpdateRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::vector<UpdateRecord>& records() { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::size_t announcement_count() const;
  [[nodiscard]] std::size_t withdrawal_count() const;
  [[nodiscard]] std::set<SessionKey> sessions() const;

 private:
  std::vector<UpdateRecord> records_;
};

/// Explodes one BGP UPDATE into per-prefix records appended to `out`:
/// withdrawals first, then announcements, matching collector emission
/// order. The shared decode kernel of UpdateStream::add_message and the
/// parallel ingestion engine (core/ingest.h).
void append_update_records(const std::string& collector, Asn peer_asn,
                           const IpAddress& peer_address, Timestamp time,
                           const UpdateMessage& update,
                           std::vector<UpdateRecord>& out);

/// Knobs for the §4 cleaning pipeline.
struct CleaningOptions {
  /// When set, drop records whose origin/peer ASN or prefix was not
  /// allocated at message time.
  const Registry* registry = nullptr;
  /// Peers (by address) that are IXP route servers not inserting their own
  /// ASN: their ASN is prepended to the AS path during normalization.
  std::vector<std::pair<IpAddress, Asn>> route_servers;
  /// Repair second-granularity collector timestamps by spacing same-second
  /// records `sub_second_step` apart, preserving order (§4: "assume that
  /// each subsequent message arrives 0.01 ms after the last").
  bool fix_second_granularity = true;
  Duration sub_second_step = Duration::micros(10);
};

struct CleaningReport {
  std::size_t dropped_unallocated_asn = 0;
  std::size_t dropped_unallocated_prefix = 0;
  std::size_t route_server_paths_repaired = 0;
  std::size_t timestamps_adjusted = 0;
};

/// Applies the cleaning pipeline in place.
CleaningReport clean(UpdateStream& stream, const CleaningOptions& options);

}  // namespace bgpcc::core
