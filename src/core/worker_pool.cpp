#include "core/worker_pool.h"

#include <algorithm>
#include <utility>

#include "obs/pipeline_metrics.h"

namespace bgpcc::core {

WorkerPool::WorkerPool(unsigned workers) {
  workers_.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  // Workers drain the queue before exiting, so anything still queued
  // here belongs to a zero-worker pool whose owner never waited; run it
  // now so no Group is left with a dangling pending count.
  while (help_one()) {
  }
}

void WorkerPool::submit(Group& group, std::function<void()> task) {
  Task entry{&group, std::move(task)};
  if (obs::enabled()) {
    entry.enqueued = std::chrono::steady_clock::now();
    entry.timed = true;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++group.pending_;
    queue_.push_back(std::move(entry));
  }
  task_cv_.notify_one();
  done_cv_.notify_all();  // waiting threads help with queued tasks
}

void WorkerPool::wait(Group& group) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (group.pending_ != 0) {
    if (!queue_.empty()) {
      Task task = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      obs::pipeline_metrics().pool_help_hits->inc();
      run_task(task);
      lock.lock();
      continue;
    }
    done_cv_.wait(lock,
                  [&] { return group.pending_ == 0 || !queue_.empty(); });
  }
  std::exception_ptr error = std::move(group.error_);
  group.error_ = nullptr;
  group.failed_.store(false, std::memory_order_release);
  lock.unlock();
  if (error) {
    std::rethrow_exception(error);
  }
}

bool WorkerPool::help_one() {
  Task task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) {
      return false;
    }
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  run_task(task);
  return true;
}

void WorkerPool::parallel_for(std::size_t jobs,
                              const std::function<void(std::size_t)>& body) {
  if (workers_.empty() || jobs <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) {
      body(i);
    }
    return;
  }
  Group group;
  std::atomic<std::size_t> next{0};
  auto loop = [&group, &next, jobs, &body] {
    for (;;) {
      if (group.failed()) {
        return;
      }
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) {
        return;
      }
      body(i);
    }
  };
  const std::size_t helpers = std::min<std::size_t>(workers_.size(), jobs - 1);
  for (std::size_t t = 0; t < helpers; ++t) {
    submit(group, loop);
  }
  try {
    loop();
  } catch (...) {
    fail(group, std::current_exception());
  }
  wait(group);
}

void WorkerPool::fail(Group& group, std::exception_ptr error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!group.error_) {
    group.error_ = std::move(error);
  }
  group.failed_.store(true, std::memory_order_release);
}

void WorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    task_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) {
        return;
      }
      continue;
    }
    Task task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    run_task(task);
    lock.lock();
  }
}

void WorkerPool::run_task(Task& task) {
  const obs::PipelineMetrics& metrics = obs::pipeline_metrics();
  metrics.pool_tasks->inc();
  if (task.timed) {
    const auto waited = std::chrono::steady_clock::now() - task.enqueued;
    metrics.pool_queue_wait->observe(
        std::chrono::duration<double>(waited).count());
  }
  // The short-circuit: tasks of an already-failed group complete
  // without running, so one thrown exception stops the whole stage.
  if (!task.group->failed()) {
    try {
      task.fn();
    } catch (...) {
      fail(*task.group, std::current_exception());
    }
  }
  complete(*task.group);
}

void WorkerPool::complete(Group& group) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (--group.pending_ == 0) {
    done_cv_.notify_all();
  }
}

}  // namespace bgpcc::core
