// Per-AS community-behavior inference (§7 future work, implemented here):
// from collector vantage points only, estimate how each AS handles
// communities — tags its own, cleans everything, or blindly propagates.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/stream.h"

namespace bgpcc::core {

enum class CommunityBehavior {
  kTagger,      // adds communities in its own namespace
  kCleaner,     // announcements via this AS carry (almost) no communities
  kPropagator,  // passes foreign communities through unchanged
  kMixed,       // evidence of tagging and cleaning on different sessions
  kUnknown,     // not enough evidence
};

[[nodiscard]] const char* label(CommunityBehavior behavior);

/// Evidence gathered for one AS across all sessions/prefixes.
struct AsEvidence {
  Asn asn;
  /// Announcements in which this AS appeared on the AS path.
  std::uint64_t on_path = 0;
  /// ... of those, how many carried a community in this AS's 16-bit
  /// namespace (asn16 == this AS) -> tagging signal.
  std::uint64_t own_namespace_tagged = 0;
  /// Announcements where this AS was the collector peer (first hop).
  std::uint64_t as_peer = 0;
  /// ... of those, announcements carrying any community at all.
  std::uint64_t as_peer_with_communities = 0;
  /// ... of those, announcements carrying a community from an AS deeper in
  /// the path (foreign) -> propagation signal.
  std::uint64_t as_peer_with_foreign = 0;

  CommunityBehavior classification = CommunityBehavior::kUnknown;

  /// Sums the evidence counters (classification is recomputed by
  /// finalize_community_behavior, not merged) — the associative merge of
  /// shard-parallel tomography.
  AsEvidence& operator+=(const AsEvidence& other);
  friend bool operator==(const AsEvidence&, const AsEvidence&) = default;
};

/// Inference thresholds (fractions in [0,1]).
struct TomographyOptions {
  /// Minimum announcements to classify at all.
  std::uint64_t min_on_path = 10;
  /// Peer cleans if < this fraction of its announcements carry communities
  /// (the paper's AS20811 removes communities in >99% of cases).
  double cleaner_max_community_fraction = 0.01;
  /// Tagger if >= this fraction of on-path announcements carry a community
  /// in its namespace.
  double tagger_min_fraction = 0.10;
  /// Propagator if >= this fraction of peered announcements carry foreign
  /// communities.
  double propagator_min_fraction = 0.50;
};

/// Scans the stream and classifies every AS with enough evidence.
/// Only 16-bit ASNs can be matched to community namespaces; larger ASNs
/// are classified from peer-level evidence alone.
[[nodiscard]] std::vector<AsEvidence> infer_community_behavior(
    const UpdateStream& stream, const TomographyOptions& options = {});

/// Folds one announcement's evidence into `evidence` (withdrawals are
/// ignored). The order-independent accumulation kernel shared by
/// infer_community_behavior and analytics::TomographyPass.
void accumulate_community_evidence(const UpdateRecord& record,
                                   std::map<Asn, AsEvidence>& evidence);

/// Applies the thresholds and sorts by on-path volume, descending — the
/// projection step of infer_community_behavior, shared with the
/// analytics pass so both paths classify identically.
[[nodiscard]] std::vector<AsEvidence> finalize_community_behavior(
    std::map<Asn, AsEvidence> evidence, const TomographyOptions& options);

}  // namespace bgpcc::core
