// Pipelined, parallel, sharded ingestion: the hot path that turns raw
// collector output (MRT archive directories or simulated collectors) into
// the cleaned, chronologically ordered UpdateStream every analysis layer
// consumes.
//
// Pipeline (every stage runs on one persistent core::WorkerPool, created
// with the engine and reused across windows and poll()/finish() calls —
// no per-window thread spawn/join):
//   1. Frame   — sequential readers (one per archive file, fanned out over
//                `frame_threads`) slice the input into batches of
//                `chunk_records` raw records. Each batch carries a
//                (file, chunk) arrival coordinate — the determinism
//                anchor — and is submitted as a decode task, with the
//                number in flight bounded (`queue_chunks`) so framing
//                I/O overlaps decode without unbounded buffering.
//   2. Decode  — pool workers decode each batch as it is framed
//                (decode starts while later files are still being framed),
//                decoding BGP4MP endpoints + inner UPDATE and exploding
//                messages into per-prefix UpdateRecords. In windowed mode
//                window N+1 frames/decodes on the pool while window N
//                cleans and merges (IngestOptions::pipeline_windows).
//   3. Shard   — decoded records are bucketed by SessionKey hash, so every
//                BGP session lands wholly inside one shard — even when its
//                messages span several archive files — and the §4 cleaning
//                pipeline (unallocated filtering, route-server AS-path
//                repair, sub-second reordering) runs lock-free per shard,
//                once per session, not once per file.
//   4. Merge   — the sorted shard runs are stitched into one UpdateStream
//                totally ordered by (timestamp, arrival sequence) with a
//                partitioned k-way tournament (loser-tree) merge: workers
//                merge disjoint slices of the output concurrently.
//
// Every stage is deterministic in the logical record sequence alone:
// ingesting with 1 thread or N threads, any chunk size, any queue depth,
// and any split of the same records across archive files yields
// byte-identical streams, reports, and stats — stream_parallel_test and
// ingest_differential_test assert exactly that.
//
// Streaming windowed mode (StreamingIngestor / window_records != 0) runs
// the same pipeline in bounded windows: each window frames up to
// `window_records` raw records (chunk-granular), runs shard-clean with
// per-shard session-state carry-over, merges to one ordered run, and
// spills or buffers it; a final incremental k-way run-merge stitches the
// runs into the identical globally ordered record sequence — so peak
// memory is O(window + shards), not O(archive). All inputs — files or
// streams — pass through the transparent gzip/bz2 detection layer
// (mrt/source.h), so `.gz`/`.bz2` RouteViews/RIS archives ingest without
// a separate unpack step.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cleaning.h"
#include "core/stream.h"
#include "sim/collector.h"

namespace bgpcc::core {

/// Default (and minimum) number of SessionKey-hash shards the engine
/// uses. The resolved count (resolve_shard_count) is recorded in every
/// checkpoint cursor, because the per-shard cleaning carry is shaped by
/// it; the OUTPUT is shard-count-invariant — each session lands wholly
/// inside one shard for any count, and cleaning/passes depend only on
/// the record multiset plus per-session order. Exported so inline
/// analytics (analytics/driver.h) can size one state set per shard.
inline constexpr std::size_t kIngestShards = 16;

/// Hard cap on the shard count, matching the wire codec's sanity cap —
/// a checkpoint claiming more shards than this is rejected as corrupt.
inline constexpr std::size_t kMaxIngestShards = 4096;

/// Knobs for the parallel ingestion engine.
struct IngestOptions {
  /// Worker threads for decode, per-shard cleaning, and the partitioned
  /// merge. 0 means "use std::thread::hardware_concurrency()"; 1 runs
  /// everything inline (no queue, no threads).
  unsigned num_threads = 1;
  /// Raw records per framed batch: the decode work unit. Smaller chunks
  /// balance better, larger chunks amortize dispatch.
  std::size_t chunk_records = 4096;
  /// Depth of the bounded frame→decode queue, in chunks. Bounds the raw
  /// bytes in flight (framers block when decode falls behind). 0 means
  /// "auto": 2× the worker count, at least 4.
  std::size_t queue_chunks = 0;
  /// Concurrent framer threads for multi-archive ingestion (each frames
  /// whole files; a single stream is inherently one framer). 0 means
  /// "auto": min(#files, num_threads, 4).
  unsigned frame_threads = 0;
  /// When true (default) the output is sorted by (timestamp, arrival
  /// sequence); when false it keeps arrival order — the legacy
  /// UpdateStream::from_mrt_file / from_collector contract.
  bool sort_by_time = true;
  /// Optional §4 cleaning, applied per shard before the merge. Null skips
  /// cleaning entirely.
  const CleaningOptions* cleaning = nullptr;
  /// Raw MRT records per streaming window (chunk-granular: a window closes
  /// at the first chunk boundary at or past the budget). 0 processes the
  /// whole input as one window — the batch mode, where `frame_threads`
  /// fans archive files out over concurrent framers. Any non-zero window
  /// frames sequentially (a window is by definition a prefix of the
  /// arrival order) while decode, cleaning, and the merge stay parallel.
  /// The output is byte-identical for every window size; only peak memory
  /// changes: O(window + shards) with spilling, O(archive) without.
  std::size_t window_records = 0;
  /// When non-empty, completed window runs spill to temp files under this
  /// directory (created if missing) instead of accumulating in memory —
  /// the archives-larger-than-RAM configuration. Ignored in batch mode
  /// (window_records == 0), which never materializes runs.
  std::string spill_dir;
  /// Pipeline windows (default on): while window N runs shard-clean,
  /// merge, and inline passes, window N+1 is framed and decoded on the
  /// persistent worker pool, bounded by the same queue_chunks cap so
  /// peak memory stays O(window + shards). Effective only in windowed
  /// multi-threaded runs; the output is byte-identical either way
  /// (windows are processed strictly in order — only the frame/decode
  /// work overlaps). Off is mainly useful for benchmarking the overlap.
  bool pipeline_windows = true;
  /// SessionKey-hash shard count. 0 (default) resolves to kIngestShards,
  /// doubled until it is at least the resolved thread count (capped at
  /// kMaxIngestShards); an explicit value is used as-is. The resolved
  /// count is recorded in checkpoints and adopted on restore, so a
  /// cursor written on a many-core host resumes anywhere. Output never
  /// depends on it.
  std::size_t shards = 0;
  /// Optional per-shard observer: the inline-analytics hook
  /// (analytics/driver.h installs one via AnalysisDriver::attach). Called
  /// once per non-empty shard per window, after cleaning, with the
  /// shard's records sorted in final merge order — i.e. exactly this
  /// shard's subsequence of the output stream. Calls for different
  /// shards may run concurrently on the worker pool (each shard index is
  /// driven by one thread at a time); calls for the same shard across
  /// successive windows are sequenced by the window barrier. Restricted
  /// to any one session, the observed order equals the final stream
  /// order; across sessions, windowed runs interleave shards in window
  /// order rather than global time order — so observers must not depend
  /// on cross-session ordering (the analytics::Pass contract).
  std::function<void(std::size_t shard, const std::vector<SeqRecord>&)>
      shard_observer;
  /// Optional committed-window barrier, paired with shard_observer
  /// (analytics::AnalysisDriver::attach wires both). window_begin is
  /// invoked on the engine's polling thread immediately before a
  /// window's shard-clean + observer phase (a batch run counts as one
  /// window); window_commit when that phase ends — RAII-bracketed, so a
  /// throwing window still commits. Everything between the two calls is
  /// a half-applied window: an external thread that waits out the
  /// bracket (e.g. by locking the same mutex) observes only fully
  /// committed windows — and never the pipelined N+1 prefetch, which
  /// only frames and decodes and thus fires no observers.
  std::function<void()> window_begin;
  /// See window_begin.
  std::function<void()> window_commit;
};

/// The shard count an engine built from `options` will use: an explicit
/// IngestOptions::shards verbatim (ConfigError above kMaxIngestShards),
/// else kIngestShards doubled until it covers the resolved thread count.
/// Exposed so inline analytics can size shard state identically.
[[nodiscard]] std::size_t resolve_shard_count(const IngestOptions& options);

/// Observability counters for one ingestion run. The counting fields
/// (files, chunks, raw_records, update_messages, records) are
/// deterministic — identical across thread counts and queue depths for
/// the same input; `threads` and `shards` record the resolved
/// configuration.
struct IngestStats {
  /// Archive files / sources ingested. Zero-initialized like every
  /// other counter: every engine path sets it from its real source
  /// count (a default-constructed stats block reports no files, not a
  /// phantom one).
  std::size_t files = 0;
  std::size_t chunks = 0;         ///< framed batches
  std::size_t raw_records = 0;    ///< MRT records / recorded messages seen
  std::size_t update_messages = 0;///< BGP UPDATEs decoded
  std::size_t records = 0;        ///< exploded per-prefix records (pre-clean)
  std::size_t shards = 0;         ///< SessionKey-hash shards used
  unsigned threads = 0;           ///< resolved worker count
  /// Window runs produced (1 in batch mode). Like `threads`/`shards` this
  /// reflects the engine configuration, not the input, and is excluded
  /// from the deterministic-output contract.
  std::size_t windows = 0;
};

struct IngestResult {
  UpdateStream stream;
  CleaningReport cleaning;
  IngestStats stats;
};

/// A resumable snapshot of a windowed StreamingIngestor, taken between
/// windows (see StreamingIngestor::checkpoint_state). Plain data: the
/// byte encoding lives in analytics/serialize.h so core stays free of
/// any wire-format dependency.
///
/// The snapshot captures the framing cursor (which source, how many
/// chunks consumed), the per-shard §4 cleaning carry, and the cumulative
/// counters — everything needed to re-frame the SAME deterministic
/// chunk/record sequence from the first unconsumed chunk onward.
/// Completed window runs (RunStore) are deliberately NOT part of the
/// snapshot: they live in spill files owned by the original process, so
/// a resumed run's finish() stream contains only post-restore windows.
/// Analysis reports stay exact because pass states checkpoint separately
/// (AnalysisDriver::checkpoint) and cover every pre-checkpoint record.
struct IngestCheckpoint {
  /// IngestOptions::chunk_records of the checkpointed run. Chunking
  /// defines the window boundaries and arrival sequence, so resuming
  /// with a different value would change the replayed suffix; restore
  /// validates it.
  std::size_t chunk_records = 0;
  /// Collector name of each registered source, in add order. Restore
  /// validates count and names so the cursor indexes the same inputs.
  std::vector<std::string> collectors;
  /// Index of the next source the framer would open.
  std::uint64_t next_source = 0;
  /// True when a source was open mid-file at checkpoint time; the fields
  /// below then locate the resume point inside it.
  bool input_open = false;
  std::uint32_t current_file = 0;
  /// Chunks already consumed from the open source (chunking is
  /// deterministic, so skipping this many chunks relocates the cursor
  /// exactly).
  std::uint32_t chunk_index = 0;
  /// Resolved shard count of the checkpointed run — the shape of `carry`.
  /// Serialized since format v2 so a cursor written on a host that
  /// auto-resolved more shards (num_threads = 0 on a many-core machine)
  /// restores exactly on any other host: restore_checkpoint ADOPTS this
  /// count instead of re-resolving it locally.
  std::size_t shards = 0;
  /// Per-shard cleaning carry (`shards` entries).
  std::vector<cleaning::SecondCarry> carry;
  CleaningReport cleaning;
  IngestStats stats;
};

/// The streaming windowed ingestion engine. Usage:
///
///   StreamingIngestor ingestor(options);          // begin
///   ingestor.add_file("rrc00", "updates.gz");     //   (inputs, in order)
///   while (ingestor.poll()) { /* progress, stats() */ }   // optional
///   IngestResult r = ingestor.finish();           // drain + run-merge
///
/// poll() processes exactly one window; finish() drains whatever remains
/// and merges every run into the final globally ordered stream, so
/// `finish()` alone (no poll loop) is equivalent. The callback-sink
/// overload emits records in final order without materializing the
/// stream. The batch entry points below are thin wrappers over this
/// class with window_records == 0 (one window = whole input).
///
/// Inputs are framed in add order; compressed (.gz/.bz2) files and
/// streams are detected by magic bytes and inflated transparently.
/// Windowed cleaning carries per-session second-granularity state across
/// window cuts, which reproduces batch output exactly whenever each
/// session's second-granularity timestamps are non-decreasing in arrival
/// order — the shape chronological collector archives guarantee.
class StreamingIngestor {
 public:
  explicit StreamingIngestor(const IngestOptions& options = {});
  ~StreamingIngestor();
  StreamingIngestor(const StreamingIngestor&) = delete;
  StreamingIngestor& operator=(const StreamingIngestor&) = delete;

  /// Registers a caller-owned archive stream (must outlive the ingestor).
  /// Throws ConfigError on a null-ish use or more than 2^16 sources.
  void add_stream(const std::string& collector, std::istream& in);
  /// Registers an archive file. In windowed mode (window_records != 0,
  /// or any poll()/sink use) files are opened lazily as framing reaches
  /// them, so a directory of thousands of dumps holds O(1) descriptors
  /// open; the batch path (window_records == 0) opens every source up
  /// front because its framers walk files concurrently.
  void add_file(const std::string& collector, const std::string& path);

  /// Processes the next window (frame → decode → shard-clean → sorted
  /// run). Returns false when the input is exhausted. Throws DecodeError
  /// on corrupt input, also from worker threads; after a throw the
  /// ingestor is poisoned (records of the aborted window are already
  /// consumed), so further poll()/finish() calls raise ConfigError
  /// instead of returning a silently incomplete result.
  bool poll();

  /// Drains remaining windows and merges all runs into the final stream.
  /// Call at most once; the ingestor is spent afterwards.
  [[nodiscard]] IngestResult finish();
  /// Same, but emits each record (in final order) to `sink` instead of
  /// materializing the stream — the returned result's stream is empty.
  [[nodiscard]] IngestResult finish(
      const std::function<void(UpdateRecord&&)>& sink);

  /// Progress so far: counters cover every window processed to date.
  [[nodiscard]] const IngestStats& stats() const;

  /// Snapshots the windowed framing cursor, cleaning carry, and counters
  /// between windows — call after poll() returns, never concurrently
  /// with it. Safe while a pipelined prefetch of the next window is in
  /// flight: the snapshot reads the cursor committed by the last
  /// PROCESSED window (a resumed run simply re-frames the prefetched
  /// window). Throws ConfigError once the ingestor is finished or
  /// poisoned (there is nothing left to resume). See IngestCheckpoint
  /// for what is (and is not) captured.
  [[nodiscard]] IngestCheckpoint checkpoint_state() const;

  /// Rewinds a FRESH ingestor (sources registered, nothing polled) to a
  /// checkpoint: validates that chunk_records and the registered
  /// collector names match the snapshot (ConfigError otherwise), ADOPTS
  /// the snapshot's shard count (so a cursor written under a different
  /// auto-resolved count restores exactly), restores
  /// carry/cleaning/stats, and relocates the framing cursor by
  /// re-opening the partially consumed source and discarding the
  /// already-processed chunks (deterministic chunking makes the skip
  /// exact). Throws DecodeError when the source is shorter than the
  /// checkpoint claims. Subsequent poll()/finish() continue from the
  /// first unconsumed chunk.
  void restore_checkpoint(const IngestCheckpoint& state);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Ingests an MRT file (BGP4MP message records). `collector` names the
/// archive's origin for the session keys. Gzip/bzip2 archives are
/// detected and inflated transparently. Throws DecodeError on corrupt
/// input — also from framer and decode worker threads.
[[nodiscard]] IngestResult ingest_mrt_file(const std::string& collector,
                                           const std::string& path,
                                           const IngestOptions& options = {});

/// Same, over an already-open binary stream (e.g. an in-memory archive).
[[nodiscard]] IngestResult ingest_mrt_stream(const std::string& collector,
                                             std::istream& in,
                                             const IngestOptions& options = {});

/// One archive stream of a multi-source ingestion run: the collector the
/// session keys are attributed to, plus a caller-owned binary stream.
struct MrtSource {
  std::string collector;
  std::istream* in = nullptr;
};

/// Ingests many archive streams into ONE shard set: sources are framed
/// concurrently (bounded fan-out), per-source arrival-sequence bases keep
/// the global order deterministic — records interleave exactly as if the
/// sources had been concatenated in the given order — and cross-file
/// session state is cleaned once. The workhorse behind ingest_mrt_files;
/// exposed for in-memory archives (tests, benchmarks, network buffers).
[[nodiscard]] IngestResult ingest_mrt_sources(
    const std::vector<MrtSource>& sources, const IngestOptions& options = {});

/// Ingests a whole archive directory: collector → its MRT files, in
/// chronological (i.e. given) order per collector. Collectors are
/// processed in map order, so the logical record sequence — and with it
/// the output — is deterministic.
[[nodiscard]] IngestResult ingest_mrt_files(
    const std::map<std::string, std::vector<std::string>>& archives,
    const IngestOptions& options = {});

/// Convenience: one collector, many files.
[[nodiscard]] IngestResult ingest_mrt_files(
    const std::string& collector, const std::vector<std::string>& paths,
    const IngestOptions& options = {});

/// Ingests everything a simulated collector recorded.
[[nodiscard]] IngestResult ingest_collector(
    const sim::RouteCollector& collector, const IngestOptions& options = {});

/// Ingests several simulated collectors into one shared shard set — the
/// in-simulator equivalent of multi-collector archive ingestion. Collector
/// order defines the arrival-sequence bases (and so the deterministic
/// interleaving of equal timestamps).
[[nodiscard]] IngestResult ingest_collectors(
    const std::vector<const sim::RouteCollector*>& collectors,
    const IngestOptions& options = {});

}  // namespace bgpcc::core
