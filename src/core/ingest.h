// Pipelined, parallel, sharded ingestion: the hot path that turns raw
// collector output (MRT archive directories or simulated collectors) into
// the cleaned, chronologically ordered UpdateStream every analysis layer
// consumes.
//
// Pipeline:
//   1. Frame   — sequential readers (one per archive file, fanned out over
//                `frame_threads`) slice the input into batches of
//                `chunk_records` raw records. Each batch carries a
//                (file, chunk) arrival coordinate — the determinism
//                anchor — and is pushed into a bounded queue so framing
//                I/O overlaps decode instead of serializing before it.
//   2. Decode  — a worker pool pops batches off the queue as they arrive
//                (decode starts while later files are still being framed),
//                decodes each (BGP4MP endpoints + inner UPDATE) and
//                explodes messages into per-prefix UpdateRecords.
//   3. Shard   — decoded records are bucketed by SessionKey hash, so every
//                BGP session lands wholly inside one shard — even when its
//                messages span several archive files — and the §4 cleaning
//                pipeline (unallocated filtering, route-server AS-path
//                repair, sub-second reordering) runs lock-free per shard,
//                once per session, not once per file.
//   4. Merge   — the sorted shard runs are stitched into one UpdateStream
//                totally ordered by (timestamp, arrival sequence) with a
//                partitioned k-way tournament (loser-tree) merge: workers
//                merge disjoint slices of the output concurrently.
//
// Every stage is deterministic in the logical record sequence alone:
// ingesting with 1 thread or N threads, any chunk size, any queue depth,
// and any split of the same records across archive files yields
// byte-identical streams, reports, and stats — stream_parallel_test and
// ingest_differential_test assert exactly that.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/stream.h"
#include "sim/collector.h"

namespace bgpcc::core {

/// Knobs for the parallel ingestion engine.
struct IngestOptions {
  /// Worker threads for decode, per-shard cleaning, and the partitioned
  /// merge. 0 means "use std::thread::hardware_concurrency()"; 1 runs
  /// everything inline (no queue, no threads).
  unsigned num_threads = 1;
  /// Raw records per framed batch: the decode work unit. Smaller chunks
  /// balance better, larger chunks amortize dispatch.
  std::size_t chunk_records = 4096;
  /// Depth of the bounded frame→decode queue, in chunks. Bounds the raw
  /// bytes in flight (framers block when decode falls behind). 0 means
  /// "auto": 2× the worker count, at least 4.
  std::size_t queue_chunks = 0;
  /// Concurrent framer threads for multi-archive ingestion (each frames
  /// whole files; a single stream is inherently one framer). 0 means
  /// "auto": min(#files, num_threads, 4).
  unsigned frame_threads = 0;
  /// When true (default) the output is sorted by (timestamp, arrival
  /// sequence); when false it keeps arrival order — the legacy
  /// UpdateStream::from_mrt_file / from_collector contract.
  bool sort_by_time = true;
  /// Optional §4 cleaning, applied per shard before the merge. Null skips
  /// cleaning entirely.
  const CleaningOptions* cleaning = nullptr;
};

/// Observability counters for one ingestion run. The counting fields
/// (files, chunks, raw_records, update_messages, records) are
/// deterministic — identical across thread counts and queue depths for
/// the same input; `threads` and `shards` record the resolved
/// configuration.
struct IngestStats {
  std::size_t files = 1;          ///< archive files / sources ingested
  std::size_t chunks = 0;         ///< framed batches
  std::size_t raw_records = 0;    ///< MRT records / recorded messages seen
  std::size_t update_messages = 0;///< BGP UPDATEs decoded
  std::size_t records = 0;        ///< exploded per-prefix records (pre-clean)
  std::size_t shards = 0;         ///< SessionKey-hash shards used
  unsigned threads = 0;           ///< resolved worker count
};

struct IngestResult {
  UpdateStream stream;
  CleaningReport cleaning;
  IngestStats stats;
};

/// Ingests an MRT file (BGP4MP message records). `collector` names the
/// archive's origin for the session keys. Throws DecodeError on corrupt
/// input — also from framer and decode worker threads.
[[nodiscard]] IngestResult ingest_mrt_file(const std::string& collector,
                                           const std::string& path,
                                           const IngestOptions& options = {});

/// Same, over an already-open binary stream (e.g. an in-memory archive).
[[nodiscard]] IngestResult ingest_mrt_stream(const std::string& collector,
                                             std::istream& in,
                                             const IngestOptions& options = {});

/// One archive stream of a multi-source ingestion run: the collector the
/// session keys are attributed to, plus a caller-owned binary stream.
struct MrtSource {
  std::string collector;
  std::istream* in = nullptr;
};

/// Ingests many archive streams into ONE shard set: sources are framed
/// concurrently (bounded fan-out), per-source arrival-sequence bases keep
/// the global order deterministic — records interleave exactly as if the
/// sources had been concatenated in the given order — and cross-file
/// session state is cleaned once. The workhorse behind ingest_mrt_files;
/// exposed for in-memory archives (tests, benchmarks, network buffers).
[[nodiscard]] IngestResult ingest_mrt_sources(
    const std::vector<MrtSource>& sources, const IngestOptions& options = {});

/// Ingests a whole archive directory: collector → its MRT files, in
/// chronological (i.e. given) order per collector. Collectors are
/// processed in map order, so the logical record sequence — and with it
/// the output — is deterministic.
[[nodiscard]] IngestResult ingest_mrt_files(
    const std::map<std::string, std::vector<std::string>>& archives,
    const IngestOptions& options = {});

/// Convenience: one collector, many files.
[[nodiscard]] IngestResult ingest_mrt_files(
    const std::string& collector, const std::vector<std::string>& paths,
    const IngestOptions& options = {});

/// Ingests everything a simulated collector recorded.
[[nodiscard]] IngestResult ingest_collector(
    const sim::RouteCollector& collector, const IngestOptions& options = {});

/// Ingests several simulated collectors into one shared shard set — the
/// in-simulator equivalent of multi-collector archive ingestion. Collector
/// order defines the arrival-sequence bases (and so the deterministic
/// interleaving of equal timestamps).
[[nodiscard]] IngestResult ingest_collectors(
    const std::vector<const sim::RouteCollector*>& collectors,
    const IngestOptions& options = {});

}  // namespace bgpcc::core
