// Chunked, parallel, sharded ingestion: the hot path that turns raw
// collector output (MRT archives or simulated collectors) into the
// cleaned, chronologically ordered UpdateStream every analysis layer
// consumes.
//
// Pipeline:
//   1. Frame   — a sequential reader slices the input into batches of
//                `chunk_records` raw records, assigning each a global
//                arrival sequence number (the determinism anchor).
//   2. Decode  — a worker pool decodes each batch (BGP4MP endpoints +
//                inner UPDATE) and explodes messages into per-prefix
//                UpdateRecords.
//   3. Shard   — decoded records are bucketed by SessionKey hash, so every
//                BGP session lands wholly inside one shard and the §4
//                cleaning pipeline (unallocated filtering, route-server
//                AS-path repair, sub-second reordering) runs lock-free
//                per shard.
//   4. Merge   — shards are merged into one UpdateStream totally ordered
//                by (timestamp, arrival sequence).
//
// Every stage is deterministic in the input alone: ingesting with 1 thread
// or N threads (and any chunk size) yields byte-identical streams, reports,
// and stats — stream_parallel_test asserts exactly that.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/stream.h"
#include "sim/collector.h"

namespace bgpcc::core {

/// Knobs for the parallel ingestion engine.
struct IngestOptions {
  /// Worker threads for decode and per-shard cleaning. 0 means "use
  /// std::thread::hardware_concurrency()"; 1 runs everything inline.
  unsigned num_threads = 1;
  /// Raw records per framed batch: the decode work unit. Smaller chunks
  /// balance better, larger chunks amortize dispatch.
  std::size_t chunk_records = 4096;
  /// When true (default) the output is sorted by (timestamp, arrival
  /// sequence); when false it keeps arrival order — the legacy
  /// UpdateStream::from_mrt_file / from_collector contract.
  bool sort_by_time = true;
  /// Optional §4 cleaning, applied per shard before the merge. Null skips
  /// cleaning entirely.
  const CleaningOptions* cleaning = nullptr;
};

/// Observability counters for one ingestion run. The counting fields
/// (chunks, raw_records, update_messages, records) are deterministic —
/// identical across thread counts for the same input; `threads` and
/// `shards` record the resolved configuration.
struct IngestStats {
  std::size_t chunks = 0;         ///< framed batches
  std::size_t raw_records = 0;    ///< MRT records / recorded messages seen
  std::size_t update_messages = 0;///< BGP UPDATEs decoded
  std::size_t records = 0;        ///< exploded per-prefix records (pre-clean)
  std::size_t shards = 0;         ///< SessionKey-hash shards used
  unsigned threads = 0;           ///< resolved worker count
};

struct IngestResult {
  UpdateStream stream;
  CleaningReport cleaning;
  IngestStats stats;
};

/// Ingests an MRT file (BGP4MP message records). `collector` names the
/// archive's origin for the session keys. Throws DecodeError on corrupt
/// input — also from worker threads.
[[nodiscard]] IngestResult ingest_mrt_file(const std::string& collector,
                                           const std::string& path,
                                           const IngestOptions& options = {});

/// Same, over an already-open binary stream (e.g. an in-memory archive).
[[nodiscard]] IngestResult ingest_mrt_stream(const std::string& collector,
                                             std::istream& in,
                                             const IngestOptions& options = {});

/// Ingests everything a simulated collector recorded.
[[nodiscard]] IngestResult ingest_collector(const sim::RouteCollector& collector,
                                            const IngestOptions& options = {});

}  // namespace bgpcc::core
