#include "core/tomography.h"

#include <algorithm>
#include <utility>

namespace bgpcc::core {

const char* label(CommunityBehavior behavior) {
  switch (behavior) {
    case CommunityBehavior::kTagger:
      return "tagger";
    case CommunityBehavior::kCleaner:
      return "cleaner";
    case CommunityBehavior::kPropagator:
      return "propagator";
    case CommunityBehavior::kMixed:
      return "mixed";
    case CommunityBehavior::kUnknown:
      return "unknown";
  }
  return "?";
}

AsEvidence& AsEvidence::operator+=(const AsEvidence& other) {
  on_path += other.on_path;
  own_namespace_tagged += other.own_namespace_tagged;
  as_peer += other.as_peer;
  as_peer_with_communities += other.as_peer_with_communities;
  as_peer_with_foreign += other.as_peer_with_foreign;
  return *this;
}

void accumulate_community_evidence(const UpdateRecord& record,
                                   std::map<Asn, AsEvidence>& evidence) {
  if (!record.announcement) return;
  std::vector<Asn> path = record.attrs.as_path.dedup_sequence();
  if (path.empty()) return;

  for (std::size_t i = 0; i < path.size(); ++i) {
    Asn asn = path[i];
    AsEvidence& e = evidence.try_emplace(asn, AsEvidence{asn}).first->second;
    ++e.on_path;
    if (asn.is_2byte()) {
      std::uint16_t asn16 = static_cast<std::uint16_t>(asn.value());
      for (Community c : record.attrs.communities) {
        if (c.asn16() == asn16) {
          ++e.own_namespace_tagged;
          break;
        }
      }
    }
  }

  // Peer-level evidence: the first AS on the path feeds the collector.
  Asn peer = path.front();
  AsEvidence& pe = evidence.at(peer);
  ++pe.as_peer;
  if (!record.attrs.communities.empty()) {
    ++pe.as_peer_with_communities;
    // Foreign community: namespace of an AS deeper in the path.
    bool foreign = false;
    for (Community c : record.attrs.communities) {
      for (std::size_t i = 1; i < path.size() && !foreign; ++i) {
        if (path[i].is_2byte() &&
            c.asn16() == static_cast<std::uint16_t>(path[i].value())) {
          foreign = true;
        }
      }
      if (foreign) break;
    }
    if (foreign) ++pe.as_peer_with_foreign;
  }
}

std::vector<AsEvidence> finalize_community_behavior(
    std::map<Asn, AsEvidence> evidence, const TomographyOptions& options) {
  std::vector<AsEvidence> out;
  out.reserve(evidence.size());
  for (auto& [asn, e] : evidence) {
    if (e.on_path < options.min_on_path) {
      e.classification = CommunityBehavior::kUnknown;
      out.push_back(e);
      continue;
    }
    double tag_fraction = e.on_path == 0
                              ? 0.0
                              : static_cast<double>(e.own_namespace_tagged) /
                                    static_cast<double>(e.on_path);
    bool tagger = tag_fraction >= options.tagger_min_fraction;
    bool cleaner = false;
    bool propagator = false;
    if (e.as_peer >= options.min_on_path) {
      double with_comm = static_cast<double>(e.as_peer_with_communities) /
                         static_cast<double>(e.as_peer);
      double with_foreign = static_cast<double>(e.as_peer_with_foreign) /
                            static_cast<double>(e.as_peer);
      cleaner = with_comm < options.cleaner_max_community_fraction;
      propagator = with_foreign >= options.propagator_min_fraction;
    }
    if (tagger && cleaner) {
      e.classification = CommunityBehavior::kMixed;
    } else if (cleaner) {
      e.classification = CommunityBehavior::kCleaner;
    } else if (tagger) {
      e.classification = CommunityBehavior::kTagger;
    } else if (propagator) {
      e.classification = CommunityBehavior::kPropagator;
    } else {
      e.classification = CommunityBehavior::kUnknown;
    }
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const AsEvidence& a, const AsEvidence& b) {
              return a.on_path > b.on_path;
            });
  return out;
}

std::vector<AsEvidence> infer_community_behavior(
    const UpdateStream& stream, const TomographyOptions& options) {
  std::map<Asn, AsEvidence> evidence;
  for (const UpdateRecord& record : stream.records()) {
    accumulate_community_evidence(record, evidence);
  }
  return finalize_community_behavior(std::move(evidence), options);
}

}  // namespace bgpcc::core
