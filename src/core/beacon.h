// Beacon-phase analysis (§6): phase labeling against the RIPE RIS beacon
// schedule, the revealed-community-attribute statistic (Figure 6), and the
// community-exploration detector (Figure 4's nc bursts).
//
// The revealed and exploration detectors are split into accumulate /
// merge / finalize kernels (mirroring core/tomography) so the analytics
// passes (analytics/passes.h) can run them per-shard on the ingestion
// worker threads: phase buckets OR together, and per-(session, prefix)
// run state lives wholly inside one shard, so it legally carries across
// window cuts exactly like cleaning::SecondCarry threads the §4 state.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/classifier.h"
#include "core/stream.h"

namespace bgpcc::core {

/// The fixed beacon timing discipline: announcements every `period`
/// starting at `announce_offset` past UTC midnight, withdrawals every
/// `period` starting at `withdraw_offset`. RIPE RIS: 4h period,
/// announce at 00:00, withdraw at 02:00.
struct BeaconSchedule {
  Duration period = Duration::hours(4);
  Duration announce_offset = Duration::hours(0);
  Duration withdraw_offset = Duration::hours(2);
  /// Messages within this window after a phase start belong to the phase
  /// (the paper uses 15 minutes).
  Duration window = Duration::minutes(15);

  enum class Phase { kAnnounce, kWithdraw, kOutside };

  /// Throws ConfigError when period <= 0 (label's modulo and the
  /// phase-time iteration would divide by zero / never terminate) or
  /// window >= period (every instant would fall inside every phase,
  /// double-labeling the whole day). Offsets at or beyond the period are
  /// fine: phases recur modulo the period.
  void validate() const;

  [[nodiscard]] Phase label(Timestamp time) const;

  /// Phase-start times (announce and withdraw) within [day_start,
  /// day_start+24h), for driving origin routers.
  [[nodiscard]] std::vector<Timestamp> announce_times(Timestamp day_start) const;
  [[nodiscard]] std::vector<Timestamp> withdraw_times(Timestamp day_start) const;
};

[[nodiscard]] const char* label(BeaconSchedule::Phase phase);

/// Figure 6 / §6 "Revealed Information": unique non-empty community
/// attributes bucketed by the phases in which they were observed.
struct RevealedStats {
  std::uint64_t total_unique = 0;
  std::uint64_t withdrawal_only = 0;  // revealed exclusively in withdraw phases
  std::uint64_t announce_only = 0;
  std::uint64_t outside_only = 0;
  std::uint64_t ambiguous = 0;  // seen in more than one bucket

  [[nodiscard]] double withdrawal_ratio() const {
    return total_unique == 0 ? 0.0
                             : static_cast<double>(withdrawal_only) /
                                   static_cast<double>(total_unique);
  }
  friend bool operator==(const RevealedStats&, const RevealedStats&) = default;
};

/// Which phases one community attribute has been observed in. ORs
/// together under merge — a pure multiset summary.
struct PhaseBuckets {
  bool announce = false;
  bool withdraw = false;
  bool outside = false;
};

/// Per-attribute phase occupancy, keyed on the full CommunitySet value.
using RevealedEvidence = std::map<CommunitySet, PhaseBuckets>;

/// Folds one record into `evidence` (withdrawals and empty community
/// attributes are ignored).
void accumulate_revealed(const UpdateRecord& record,
                         const BeaconSchedule& schedule,
                         RevealedEvidence& evidence);

/// ORs the phase buckets attribute by attribute.
void merge_revealed(RevealedEvidence& into, RevealedEvidence&& from);

/// Projects the evidence into the Figure-6 exclusivity statistic.
[[nodiscard]] RevealedStats finalize_revealed(const RevealedEvidence& evidence);

/// Counts unique community attributes (the full CommunitySet as a value)
/// across all announcements, bucketed by phase exclusivity: a thin
/// wrapper around the accumulate/finalize kernels.
[[nodiscard]] RevealedStats analyze_revealed(const UpdateStream& stream,
                                             const BeaconSchedule& schedule);

/// A community-exploration event: a run of announcements for one
/// (session, prefix) with an unchanged AS path but changing communities,
/// inside a withdrawal phase — the paper's analogue of path exploration.
struct ExplorationEvent {
  SessionKey session;
  Prefix prefix;
  AsPath as_path;
  Timestamp begin;
  Timestamp end;
  int nc_count = 0;
  /// Distinct community attributes observed during the run.
  int distinct_attributes = 0;
  friend bool operator==(const ExplorationEvent&,
                         const ExplorationEvent&) = default;
};

/// The current run of same-path nc announcements on one (session, prefix)
/// stream: the per-stream cursor of the exploration detector.
struct ExplorationRun {
  std::optional<AsPath> path;
  std::optional<CommunitySet> communities;
  ExplorationEvent current;
  std::map<CommunitySet, int> attrs_seen;
  bool active = false;
};

/// Per-stream run states. Each (session, prefix) evolves independently,
/// so a SessionKey-sharded partition of these maps merges losslessly.
using ExplorationRuns = std::map<std::pair<SessionKey, Prefix>, ExplorationRun>;

/// Advances one stream's run state by one record (records must arrive in
/// per-session chronological order); completed events are appended to
/// `events` as their runs end.
void observe_exploration(const UpdateRecord& record,
                         const BeaconSchedule& schedule, ExplorationRuns& runs,
                         std::vector<ExplorationEvent>& events);

/// Flushes still-active runs at end of stream into `events`.
void flush_exploration(ExplorationRuns& runs,
                       std::vector<ExplorationEvent>& events);

/// The deterministic output order: (begin, session, prefix), with end /
/// nc_count tie-breaks for pathological equal-timestamp streams. Mid- and
/// end-of-stream events sort identically regardless of which shard or
/// window emitted them.
void sort_exploration_events(std::vector<ExplorationEvent>& events);

/// Scans a time-sorted stream for community-exploration events (>= 2 nc
/// announcements on the same path within one withdrawal phase), sorted by
/// (begin, session, prefix): a thin wrapper around the kernels above.
[[nodiscard]] std::vector<ExplorationEvent> find_community_exploration(
    const UpdateStream& stream, const BeaconSchedule& schedule);

/// One point of the Figure 4/5 cumulative-count series.
struct SeriesPoint {
  Timestamp time;
  AnnouncementType type;
  CommunitySet communities;
  AsPath as_path;
};

/// Extracts the classified announcement series for a single (session,
/// prefix), optionally restricted to one AS path, plus the withdrawal
/// times (the vertical lines of Figures 4/5).
struct RouteSeries {
  std::vector<SeriesPoint> announcements;
  std::vector<Timestamp> withdrawals;
};

[[nodiscard]] RouteSeries route_series(
    const UpdateStream& stream, const SessionKey& session,
    const Prefix& prefix, const std::optional<AsPath>& only_path = std::nullopt);

}  // namespace bgpcc::core
