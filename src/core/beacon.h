// Beacon-phase analysis (§6): phase labeling against the RIPE RIS beacon
// schedule, the revealed-community-attribute statistic (Figure 6), and the
// community-exploration detector (Figure 4's nc bursts).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/stream.h"

namespace bgpcc::core {

/// The fixed beacon timing discipline: announcements every `period`
/// starting at `announce_offset` past UTC midnight, withdrawals every
/// `period` starting at `withdraw_offset`. RIPE RIS: 4h period,
/// announce at 00:00, withdraw at 02:00.
struct BeaconSchedule {
  Duration period = Duration::hours(4);
  Duration announce_offset = Duration::hours(0);
  Duration withdraw_offset = Duration::hours(2);
  /// Messages within this window after a phase start belong to the phase
  /// (the paper uses 15 minutes).
  Duration window = Duration::minutes(15);

  enum class Phase { kAnnounce, kWithdraw, kOutside };

  [[nodiscard]] Phase label(Timestamp time) const;

  /// Phase-start times (announce and withdraw) within [day_start,
  /// day_start+24h), for driving origin routers.
  [[nodiscard]] std::vector<Timestamp> announce_times(Timestamp day_start) const;
  [[nodiscard]] std::vector<Timestamp> withdraw_times(Timestamp day_start) const;
};

[[nodiscard]] const char* label(BeaconSchedule::Phase phase);

/// Figure 6 / §6 "Revealed Information": unique non-empty community
/// attributes bucketed by the phases in which they were observed.
struct RevealedStats {
  std::uint64_t total_unique = 0;
  std::uint64_t withdrawal_only = 0;  // revealed exclusively in withdraw phases
  std::uint64_t announce_only = 0;
  std::uint64_t outside_only = 0;
  std::uint64_t ambiguous = 0;  // seen in more than one bucket

  [[nodiscard]] double withdrawal_ratio() const {
    return total_unique == 0 ? 0.0
                             : static_cast<double>(withdrawal_only) /
                                   static_cast<double>(total_unique);
  }
};

/// Counts unique community attributes (the full CommunitySet as a value)
/// across all announcements, bucketed by phase exclusivity.
[[nodiscard]] RevealedStats analyze_revealed(const UpdateStream& stream,
                                             const BeaconSchedule& schedule);

/// A community-exploration event: a run of announcements for one
/// (session, prefix) with an unchanged AS path but changing communities,
/// inside a withdrawal phase — the paper's analogue of path exploration.
struct ExplorationEvent {
  SessionKey session;
  Prefix prefix;
  AsPath as_path;
  Timestamp begin;
  Timestamp end;
  int nc_count = 0;
  /// Distinct community attributes observed during the run.
  int distinct_attributes = 0;
};

/// Scans a time-sorted stream for community-exploration events (>= 2 nc
/// announcements on the same path within one withdrawal phase).
[[nodiscard]] std::vector<ExplorationEvent> find_community_exploration(
    const UpdateStream& stream, const BeaconSchedule& schedule);

/// One point of the Figure 4/5 cumulative-count series.
struct SeriesPoint {
  Timestamp time;
  AnnouncementType type;
  CommunitySet communities;
  AsPath as_path;
};

/// Extracts the classified announcement series for a single (session,
/// prefix), optionally restricted to one AS path, plus the withdrawal
/// times (the vertical lines of Figures 4/5).
struct RouteSeries {
  std::vector<SeriesPoint> announcements;
  std::vector<Timestamp> withdrawals;
};

[[nodiscard]] RouteSeries route_series(
    const UpdateStream& stream, const SessionKey& session,
    const Prefix& prefix, const std::optional<AsPath>& only_path = std::nullopt);

}  // namespace bgpcc::core
