#include "core/cleaning.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

namespace bgpcc::core {

void sort_seq_records(std::vector<SeqRecord>& records) {
  std::sort(records.begin(), records.end(), seq_time_order);
}

namespace cleaning {

std::size_t repair_route_server_paths(std::vector<SeqRecord>& records,
                                      const RouteServerMap& servers) {
  if (servers.empty()) return 0;
  std::size_t repaired = 0;
  for (SeqRecord& sr : records) {
    UpdateRecord& record = sr.record;
    if (!record.announcement) continue;
    auto it = servers.find(record.session.peer_address);
    if (it == servers.end()) continue;
    auto first = record.attrs.as_path.first_as();
    if (!first || *first != it->second) {
      record.attrs.as_path.prepend(it->second);
      ++repaired;
    }
  }
  return repaired;
}

void drop_unallocated(std::vector<SeqRecord>& records,
                      const Registry& registry, std::size_t* dropped_asn,
                      std::size_t* dropped_prefix) {
  std::erase_if(records, [&](const SeqRecord& sr) {
    const UpdateRecord& record = sr.record;
    if (record.announcement) {
      for (Asn asn : record.attrs.as_path.flatten()) {
        if (!registry.asn_allocated(asn, record.time)) {
          ++*dropped_asn;
          return true;
        }
      }
    }
    if (!registry.prefix_allocated(record.prefix, record.time)) {
      ++*dropped_prefix;
      return true;
    }
    return false;
  });
}

std::size_t fix_second_granularity(std::vector<SeqRecord>& records,
                                   Duration step, SecondCarry* carry) {
  std::size_t adjusted = 0;
  // Keyed by the stable FNV hash map: this runs once per record on the
  // per-shard cleaning hot path, where ordered-map lookups dominated.
  // Streaming callers pass their shard's persistent map instead, so the
  // spacing counters survive window boundaries.
  SecondCarry local;
  SecondCarry& last_second = carry != nullptr ? *carry : local;
  for (SeqRecord& sr : records) {
    UpdateRecord& record = sr.record;
    // Collectors with real sub-second stamps are untouched.
    if (record.time.unix_micros() % 1000000 != 0) continue;
    auto [it, inserted] = last_second.try_emplace(
        record.session, std::make_pair(record.time.unix_seconds(), 0));
    auto& [second, count] = it->second;
    if (!inserted && second == record.time.unix_seconds()) {
      ++count;
      record.time = record.time + Duration::micros(step.count_micros() * count);
      ++adjusted;
    } else {
      second = record.time.unix_seconds();
      count = 0;
    }
  }
  return adjusted;
}

CleaningReport run(std::vector<SeqRecord>& records,
                   const CleaningOptions& options, SecondCarry* carry) {
  CleaningReport report;
  if (!options.route_servers.empty()) {
    RouteServerMap servers(options.route_servers.begin(),
                           options.route_servers.end());
    report.route_server_paths_repaired =
        repair_route_server_paths(records, servers);
  }
  if (options.registry != nullptr) {
    drop_unallocated(records, *options.registry,
                     &report.dropped_unallocated_asn,
                     &report.dropped_unallocated_prefix);
  }
  if (options.fix_second_granularity) {
    sort_seq_records(records);
    report.timestamps_adjusted =
        fix_second_granularity(records, options.sub_second_step, carry);
    sort_seq_records(records);
  }
  return report;
}

}  // namespace cleaning
}  // namespace bgpcc::core
