#include "core/beacon.h"

#include <algorithm>

#include "netbase/error.h"

namespace bgpcc::core {
namespace {

// Phase membership: within [start, start+window) of a recurring offset.
bool in_phase(std::int64_t micros_of_day, Duration offset, Duration period,
              Duration window) {
  std::int64_t rel =
      (micros_of_day - offset.count_micros()) % period.count_micros();
  if (rel < 0) rel += period.count_micros();
  return rel < window.count_micros();
}

}  // namespace

void BeaconSchedule::validate() const {
  if (period.count_micros() <= 0) {
    throw ConfigError("BeaconSchedule: period must be positive");
  }
  if (window >= period) {
    throw ConfigError(
        "BeaconSchedule: window must be shorter than the period — every "
        "instant would be inside every phase");
  }
}

BeaconSchedule::Phase BeaconSchedule::label(Timestamp time) const {
  validate();
  std::int64_t micros = time.micros_of_day();
  if (in_phase(micros, withdraw_offset, period, window)) {
    return Phase::kWithdraw;
  }
  if (in_phase(micros, announce_offset, period, window)) {
    return Phase::kAnnounce;
  }
  return Phase::kOutside;
}

std::vector<Timestamp> BeaconSchedule::announce_times(
    Timestamp day_start) const {
  validate();
  std::vector<Timestamp> out;
  for (Duration t = announce_offset; t < Duration::hours(24);
       t = t + period) {
    out.push_back(day_start + t);
  }
  return out;
}

std::vector<Timestamp> BeaconSchedule::withdraw_times(
    Timestamp day_start) const {
  validate();
  std::vector<Timestamp> out;
  for (Duration t = withdraw_offset; t < Duration::hours(24);
       t = t + period) {
    out.push_back(day_start + t);
  }
  return out;
}

const char* label(BeaconSchedule::Phase phase) {
  switch (phase) {
    case BeaconSchedule::Phase::kAnnounce:
      return "announce";
    case BeaconSchedule::Phase::kWithdraw:
      return "withdraw";
    case BeaconSchedule::Phase::kOutside:
      return "outside";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Revealed information (Figure 6).

void accumulate_revealed(const UpdateRecord& record,
                         const BeaconSchedule& schedule,
                         RevealedEvidence& evidence) {
  if (!record.announcement || record.attrs.communities.empty()) return;
  PhaseBuckets& b = evidence[record.attrs.communities];
  switch (schedule.label(record.time)) {
    case BeaconSchedule::Phase::kAnnounce:
      b.announce = true;
      break;
    case BeaconSchedule::Phase::kWithdraw:
      b.withdraw = true;
      break;
    case BeaconSchedule::Phase::kOutside:
      b.outside = true;
      break;
  }
}

void merge_revealed(RevealedEvidence& into, RevealedEvidence&& from) {
  for (auto& [attr, buckets] : from) {
    auto [it, fresh] = into.try_emplace(attr, buckets);
    if (!fresh) {
      it->second.announce |= buckets.announce;
      it->second.withdraw |= buckets.withdraw;
      it->second.outside |= buckets.outside;
    }
  }
}

RevealedStats finalize_revealed(const RevealedEvidence& evidence) {
  RevealedStats stats;
  stats.total_unique = evidence.size();
  for (const auto& [attr, b] : evidence) {
    int buckets = (b.announce ? 1 : 0) + (b.withdraw ? 1 : 0) +
                  (b.outside ? 1 : 0);
    if (buckets > 1) {
      ++stats.ambiguous;
    } else if (b.withdraw) {
      ++stats.withdrawal_only;
    } else if (b.announce) {
      ++stats.announce_only;
    } else {
      ++stats.outside_only;
    }
  }
  return stats;
}

RevealedStats analyze_revealed(const UpdateStream& stream,
                               const BeaconSchedule& schedule) {
  schedule.validate();
  RevealedEvidence evidence;
  for (const UpdateRecord& record : stream.records()) {
    accumulate_revealed(record, schedule, evidence);
  }
  return finalize_revealed(evidence);
}

// ---------------------------------------------------------------------------
// Community exploration (Figure 4).

namespace {

void finish_run(ExplorationRun& run, std::vector<ExplorationEvent>& events) {
  if (run.active && run.current.nc_count >= 2) {
    run.current.distinct_attributes =
        static_cast<int>(run.attrs_seen.size());
    events.push_back(run.current);
  }
  run.active = false;
  run.attrs_seen.clear();
}

}  // namespace

void observe_exploration(const UpdateRecord& record,
                         const BeaconSchedule& schedule, ExplorationRuns& runs,
                         std::vector<ExplorationEvent>& events) {
  auto key = std::make_pair(record.session, record.prefix);
  ExplorationRun& run = runs[key];
  if (!record.announcement) {
    finish_run(run, events);
    run.path.reset();
    run.communities.reset();
    return;
  }
  bool in_withdraw_phase =
      schedule.label(record.time) == BeaconSchedule::Phase::kWithdraw;
  bool same_path = run.path && *run.path == record.attrs.as_path;
  bool comm_changed =
      run.communities && *run.communities != record.attrs.communities;

  if (same_path && comm_changed && in_withdraw_phase) {
    if (!run.active) {
      run.active = true;
      run.current = ExplorationEvent{};
      run.current.session = record.session;
      run.current.prefix = record.prefix;
      run.current.as_path = record.attrs.as_path;
      run.current.begin = record.time;
      run.current.nc_count = 0;
      if (run.communities) run.attrs_seen[*run.communities] = 1;
    }
    ++run.current.nc_count;
    run.current.end = record.time;
    ++run.attrs_seen[record.attrs.communities];
  } else if (!same_path || !in_withdraw_phase) {
    finish_run(run, events);
  }
  run.path = record.attrs.as_path;
  run.communities = record.attrs.communities;
}

void flush_exploration(ExplorationRuns& runs,
                       std::vector<ExplorationEvent>& events) {
  for (auto& [key, run] : runs) finish_run(run, events);
}

void sort_exploration_events(std::vector<ExplorationEvent>& events) {
  std::sort(events.begin(), events.end(),
            [](const ExplorationEvent& a, const ExplorationEvent& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              if (a.session != b.session) return a.session < b.session;
              if (a.prefix != b.prefix) return a.prefix < b.prefix;
              if (a.end != b.end) return a.end < b.end;
              return a.nc_count < b.nc_count;
            });
}

std::vector<ExplorationEvent> find_community_exploration(
    const UpdateStream& stream, const BeaconSchedule& schedule) {
  schedule.validate();
  ExplorationRuns runs;
  std::vector<ExplorationEvent> events;
  for (const UpdateRecord& record : stream.records()) {
    observe_exploration(record, schedule, runs, events);
  }
  // End-of-stream flush walks the run map in key order, NOT in time
  // order like the mid-stream finishes — the sort restores the single
  // deterministic output order.
  flush_exploration(runs, events);
  sort_exploration_events(events);
  return events;
}

RouteSeries route_series(const UpdateStream& stream, const SessionKey& session,
                         const Prefix& prefix,
                         const std::optional<AsPath>& only_path) {
  RouteSeries series;
  Classifier classifier;
  for (const UpdateRecord& record : stream.records()) {
    if (record.session != session || record.prefix != prefix) continue;
    if (!record.announcement) {
      series.withdrawals.push_back(record.time);
      classifier.classify(record);
      continue;
    }
    auto type = classifier.classify(record);
    if (only_path && record.attrs.as_path != *only_path) continue;
    if (!type) continue;  // first sighting: untyped, not plotted
    series.announcements.push_back(SeriesPoint{
        record.time, *type, record.attrs.communities, record.attrs.as_path});
  }
  return series;
}

}  // namespace bgpcc::core
