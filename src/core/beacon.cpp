#include "core/beacon.h"

#include <algorithm>

namespace bgpcc::core {
namespace {

// Phase membership: within [start, start+window) of a recurring offset.
bool in_phase(std::int64_t micros_of_day, Duration offset, Duration period,
              Duration window) {
  std::int64_t rel =
      (micros_of_day - offset.count_micros()) % period.count_micros();
  if (rel < 0) rel += period.count_micros();
  return rel < window.count_micros();
}

}  // namespace

BeaconSchedule::Phase BeaconSchedule::label(Timestamp time) const {
  std::int64_t micros = time.micros_of_day();
  if (in_phase(micros, withdraw_offset, period, window)) {
    return Phase::kWithdraw;
  }
  if (in_phase(micros, announce_offset, period, window)) {
    return Phase::kAnnounce;
  }
  return Phase::kOutside;
}

std::vector<Timestamp> BeaconSchedule::announce_times(
    Timestamp day_start) const {
  std::vector<Timestamp> out;
  for (Duration t = announce_offset; t < Duration::hours(24);
       t = t + period) {
    out.push_back(day_start + t);
  }
  return out;
}

std::vector<Timestamp> BeaconSchedule::withdraw_times(
    Timestamp day_start) const {
  std::vector<Timestamp> out;
  for (Duration t = withdraw_offset; t < Duration::hours(24);
       t = t + period) {
    out.push_back(day_start + t);
  }
  return out;
}

const char* label(BeaconSchedule::Phase phase) {
  switch (phase) {
    case BeaconSchedule::Phase::kAnnounce:
      return "announce";
    case BeaconSchedule::Phase::kWithdraw:
      return "withdraw";
    case BeaconSchedule::Phase::kOutside:
      return "outside";
  }
  return "?";
}

RevealedStats analyze_revealed(const UpdateStream& stream,
                               const BeaconSchedule& schedule) {
  struct Buckets {
    bool announce = false;
    bool withdraw = false;
    bool outside = false;
  };
  std::map<CommunitySet, Buckets> seen;
  for (const UpdateRecord& record : stream.records()) {
    if (!record.announcement || record.attrs.communities.empty()) continue;
    Buckets& b = seen[record.attrs.communities];
    switch (schedule.label(record.time)) {
      case BeaconSchedule::Phase::kAnnounce:
        b.announce = true;
        break;
      case BeaconSchedule::Phase::kWithdraw:
        b.withdraw = true;
        break;
      case BeaconSchedule::Phase::kOutside:
        b.outside = true;
        break;
    }
  }
  RevealedStats stats;
  stats.total_unique = seen.size();
  for (const auto& [attr, b] : seen) {
    int buckets = (b.announce ? 1 : 0) + (b.withdraw ? 1 : 0) +
                  (b.outside ? 1 : 0);
    if (buckets > 1) {
      ++stats.ambiguous;
    } else if (b.withdraw) {
      ++stats.withdrawal_only;
    } else if (b.announce) {
      ++stats.announce_only;
    } else {
      ++stats.outside_only;
    }
  }
  return stats;
}

std::vector<ExplorationEvent> find_community_exploration(
    const UpdateStream& stream, const BeaconSchedule& schedule) {
  // Per (session, prefix): the current run of same-path nc announcements.
  struct RunState {
    std::optional<AsPath> path;
    std::optional<CommunitySet> communities;
    ExplorationEvent current;
    std::map<CommunitySet, int> attrs_seen;
    bool active = false;
  };
  std::map<std::pair<SessionKey, Prefix>, RunState> runs;
  std::vector<ExplorationEvent> events;

  auto finish = [&events](RunState& run) {
    if (run.active && run.current.nc_count >= 2) {
      run.current.distinct_attributes =
          static_cast<int>(run.attrs_seen.size());
      events.push_back(run.current);
    }
    run.active = false;
    run.attrs_seen.clear();
  };

  for (const UpdateRecord& record : stream.records()) {
    auto key = std::make_pair(record.session, record.prefix);
    RunState& run = runs[key];
    if (!record.announcement) {
      finish(run);
      run.path.reset();
      run.communities.reset();
      continue;
    }
    bool in_withdraw_phase =
        schedule.label(record.time) == BeaconSchedule::Phase::kWithdraw;
    bool same_path = run.path && *run.path == record.attrs.as_path;
    bool comm_changed =
        run.communities && *run.communities != record.attrs.communities;

    if (same_path && comm_changed && in_withdraw_phase) {
      if (!run.active) {
        run.active = true;
        run.current = ExplorationEvent{};
        run.current.session = record.session;
        run.current.prefix = record.prefix;
        run.current.as_path = record.attrs.as_path;
        run.current.begin = record.time;
        run.current.nc_count = 0;
        if (run.communities) run.attrs_seen[*run.communities] = 1;
      }
      ++run.current.nc_count;
      run.current.end = record.time;
      ++run.attrs_seen[record.attrs.communities];
    } else if (!same_path || !in_withdraw_phase) {
      finish(run);
    }
    run.path = record.attrs.as_path;
    run.communities = record.attrs.communities;
  }
  for (auto& [key, run] : runs) finish(run);
  return events;
}

RouteSeries route_series(const UpdateStream& stream, const SessionKey& session,
                         const Prefix& prefix,
                         const std::optional<AsPath>& only_path) {
  RouteSeries series;
  Classifier classifier;
  for (const UpdateRecord& record : stream.records()) {
    if (record.session != session || record.prefix != prefix) continue;
    if (!record.announcement) {
      series.withdrawals.push_back(record.time);
      classifier.classify(record);
      continue;
    }
    auto type = classifier.classify(record);
    if (only_path && record.attrs.as_path != *only_path) continue;
    if (!type) continue;  // first sighting: untyped, not plotted
    series.announcements.push_back(SeriesPoint{
        record.time, *type, record.attrs.communities, record.attrs.as_path});
  }
  return series;
}

}  // namespace bgpcc::core
