#include "core/anomaly.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace bgpcc::core {

AnomalyReport detect_anomalies(const UpdateStream& stream,
                               const AnomalyOptions& options) {
  AnomalyReport report;

  // --- Per-session nn shares via the classifier.
  std::map<SessionKey, Classifier> classifiers;
  struct Novelty {
    Timestamp first_seen;
    std::uint64_t in_window = 0;
  };
  std::map<Community, Novelty> novelties;

  for (const UpdateRecord& record : stream.records()) {
    classifiers[record.session].classify(record);
    if (record.announcement) {
      for (Community c : record.attrs.communities) {
        auto [it, fresh] = novelties.try_emplace(c, Novelty{record.time, 0});
        if (fresh ||
            record.time - it->second.first_seen <= options.novelty_window) {
          ++it->second.in_window;
        }
      }
    }
  }

  std::vector<DuplicateOutlier> sessions;
  double sum = 0.0;
  for (const auto& [key, classifier] : classifiers) {
    const TypeCounts& counts = classifier.counts();
    if (counts.total() < options.min_classified) continue;
    DuplicateOutlier entry;
    entry.session = key;
    entry.nn = counts.count(AnnouncementType::kNn);
    entry.classified = counts.total();
    entry.nn_share = counts.share(AnnouncementType::kNn);
    sessions.push_back(entry);
    sum += entry.nn_share;
  }
  if (sessions.size() >= 2) {
    double n = static_cast<double>(sessions.size());
    double mean = sum / n;
    double sumsq = 0.0;
    for (const DuplicateOutlier& s : sessions) {
      sumsq += s.nn_share * s.nn_share;
    }
    report.population_mean_nn_share = mean;
    report.population_stddev_nn_share =
        std::sqrt(std::max(0.0, sumsq / n - mean * mean));
    // Leave-one-out z-score: a single extreme session must not inflate
    // the baseline it is scored against (with inclusive statistics one
    // outlier among n is capped at sqrt(n-1) sigma).
    for (DuplicateOutlier& s : sessions) {
      double loo_mean = (sum - s.nn_share) / (n - 1);
      double loo_var = std::max(
          0.0, (sumsq - s.nn_share * s.nn_share) / (n - 1) -
                   loo_mean * loo_mean);
      double loo_stddev = std::sqrt(loo_var);
      if (loo_stddev > 0.0) {
        s.sigma = (s.nn_share - loo_mean) / loo_stddev;
      } else {
        // A perfectly uniform remainder: any exceedance is infinitely
        // surprising; report a large finite sigma.
        s.sigma = s.nn_share > loo_mean + 1e-9 ? 1e6 : 0.0;
      }
      if (s.sigma >= options.sigma_threshold) {
        report.duplicate_outliers.push_back(s);
      }
    }
    std::sort(report.duplicate_outliers.begin(),
              report.duplicate_outliers.end(),
              [](const DuplicateOutlier& a, const DuplicateOutlier& b) {
                return a.sigma > b.sigma;
              });
  }

  for (const auto& [community, novelty] : novelties) {
    if (novelty.in_window >= options.novelty_min_occurrences) {
      report.novelty_bursts.push_back(
          NoveltyBurst{community, novelty.first_seen, novelty.in_window});
    }
  }
  std::sort(report.novelty_bursts.begin(), report.novelty_bursts.end(),
            [](const NoveltyBurst& a, const NoveltyBurst& b) {
              return a.occurrences > b.occurrences;
            });
  return report;
}

}  // namespace bgpcc::core
