#include "core/anomaly.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "netbase/error.h"

namespace bgpcc::core {
namespace {

std::int64_t novelty_bucket_index(Timestamp time, Duration window) {
  std::int64_t width = window.count_micros();
  std::int64_t micros = time.unix_micros();
  std::int64_t index = micros / width;
  // Floor division: pre-epoch timestamps must not fold onto epoch buckets.
  if (micros % width != 0 && micros < 0) --index;
  return index;
}

}  // namespace

void accumulate_novelty(const UpdateRecord& record, Duration novelty_window,
                        NoveltyEvidence& evidence) {
  if (novelty_window.count_micros() <= 0) {
    throw ConfigError("AnomalyOptions::novelty_window must be positive");
  }
  if (!record.announcement) return;
  std::int64_t index = novelty_bucket_index(record.time, novelty_window);
  for (Community c : record.attrs.communities) {
    auto [it, fresh] = evidence[c].try_emplace(
        index, NoveltyBucket{0, record.time});
    ++it->second.count;
    if (record.time < it->second.earliest) it->second.earliest = record.time;
  }
}

void merge_novelty(NoveltyEvidence& into, NoveltyEvidence&& from) {
  for (auto& [community, buckets] : from) {
    auto [cit, fresh] = into.try_emplace(community, std::move(buckets));
    if (fresh) continue;
    for (auto& [index, bucket] : buckets) {
      auto [bit, inserted] = cit->second.try_emplace(index, bucket);
      if (!inserted) {
        bit->second.count += bucket.count;
        if (bucket.earliest < bit->second.earliest) {
          bit->second.earliest = bucket.earliest;
        }
      }
    }
  }
}

std::vector<NoveltyBurst> finalize_novelty_bursts(
    const NoveltyEvidence& evidence, const AnomalyOptions& options) {
  std::vector<NoveltyBurst> bursts;
  for (const auto& [community, buckets] : evidence) {
    NoveltyBurst best{community, Timestamp{}, 0};
    bool have_best = false;
    std::int64_t previous_index = 0;
    bool have_previous = false;
    for (auto it = buckets.begin(); it != buckets.end(); ++it) {
      bool episode_start =
          !have_previous || it->first != previous_index + 1;
      previous_index = it->first;
      have_previous = true;
      if (!episode_start) continue;
      std::uint64_t volume = it->second.count;
      auto next = std::next(it);
      if (next != buckets.end() && next->first == it->first + 1) {
        volume += next->second.count;
      }
      // Largest episode wins; the earliest one on ties (iteration is in
      // time order, so the first candidate at a given volume sticks).
      if (!have_best || volume > best.occurrences) {
        best = NoveltyBurst{community, it->second.earliest, volume};
        have_best = true;
      }
    }
    if (have_best && best.occurrences >= options.novelty_min_occurrences) {
      bursts.push_back(best);
    }
  }
  std::sort(bursts.begin(), bursts.end(),
            [](const NoveltyBurst& a, const NoveltyBurst& b) {
              if (a.occurrences != b.occurrences) {
                return a.occurrences > b.occurrences;
              }
              return a.community < b.community;
            });
  return bursts;
}

void score_duplicate_outliers(
    const std::map<SessionKey, Classifier>& classifiers,
    const AnomalyOptions& options, AnomalyReport& report) {
  std::vector<DuplicateOutlier> sessions;
  double sum = 0.0;
  for (const auto& [key, classifier] : classifiers) {
    const TypeCounts& counts = classifier.counts();
    if (counts.total() < options.min_classified) continue;
    DuplicateOutlier entry;
    entry.session = key;
    entry.nn = counts.count(AnnouncementType::kNn);
    entry.classified = counts.total();
    entry.nn_share = counts.share(AnnouncementType::kNn);
    sessions.push_back(entry);
    sum += entry.nn_share;
  }
  if (sessions.size() == 1) {
    // A population of one: its share IS the population; nothing to
    // deviate from, so it can never be an outlier.
    report.population_mean_nn_share = sessions.front().nn_share;
    report.population_stddev_nn_share = 0.0;
    return;
  }
  if (sessions.size() >= 2) {
    double n = static_cast<double>(sessions.size());
    double mean = sum / n;
    double sumsq = 0.0;
    for (const DuplicateOutlier& s : sessions) {
      sumsq += s.nn_share * s.nn_share;
    }
    report.population_mean_nn_share = mean;
    report.population_stddev_nn_share =
        std::sqrt(std::max(0.0, sumsq / n - mean * mean));
    // Leave-one-out z-score: a single extreme session must not inflate
    // the baseline it is scored against (with inclusive statistics one
    // outlier among n is capped at sqrt(n-1) sigma).
    for (DuplicateOutlier& s : sessions) {
      double loo_mean = (sum - s.nn_share) / (n - 1);
      double loo_var = std::max(
          0.0, (sumsq - s.nn_share * s.nn_share) / (n - 1) -
                   loo_mean * loo_mean);
      double loo_stddev = std::sqrt(loo_var);
      if (loo_stddev > 0.0) {
        s.sigma = (s.nn_share - loo_mean) / loo_stddev;
      } else {
        // A perfectly uniform remainder: any exceedance is infinitely
        // surprising; report a large finite sigma.
        s.sigma = s.nn_share > loo_mean + 1e-9 ? 1e6 : 0.0;
      }
      if (s.sigma >= options.sigma_threshold) {
        report.duplicate_outliers.push_back(s);
      }
    }
    std::sort(report.duplicate_outliers.begin(),
              report.duplicate_outliers.end(),
              [](const DuplicateOutlier& a, const DuplicateOutlier& b) {
                if (a.sigma != b.sigma) return a.sigma > b.sigma;
                return a.session < b.session;
              });
  }
}

AnomalyReport detect_anomalies(const UpdateStream& stream,
                               const AnomalyOptions& options) {
  if (options.novelty_window.count_micros() <= 0) {
    // Checked up front so an empty stream rejects the misconfiguration
    // just as loudly as a populated one.
    throw ConfigError("AnomalyOptions::novelty_window must be positive");
  }
  std::map<SessionKey, Classifier> classifiers;
  NoveltyEvidence novelties;
  for (const UpdateRecord& record : stream.records()) {
    classifiers[record.session].classify(record);
    accumulate_novelty(record, options.novelty_window, novelties);
  }
  AnomalyReport report;
  score_duplicate_outliers(classifiers, options, report);
  report.novelty_bursts = finalize_novelty_bursts(novelties, options);
  return report;
}

}  // namespace bgpcc::core
