#include "core/classifier.h"

#include <algorithm>

namespace bgpcc::core {

const char* label(AnnouncementType type) {
  switch (type) {
    case AnnouncementType::kPc:
      return "pc";
    case AnnouncementType::kPn:
      return "pn";
    case AnnouncementType::kNc:
      return "nc";
    case AnnouncementType::kNn:
      return "nn";
    case AnnouncementType::kXc:
      return "xc";
    case AnnouncementType::kXn:
      return "xn";
  }
  return "??";
}

std::uint64_t TypeCounts::total() const {
  std::uint64_t sum = 0;
  for (std::uint64_t c : counts) sum += c;
  return sum;
}

double TypeCounts::share(AnnouncementType type) const {
  std::uint64_t sum = total();
  if (sum == 0) return 0.0;
  return static_cast<double>(count(type)) / static_cast<double>(sum);
}

TypeCounts& TypeCounts::operator+=(const TypeCounts& other) {
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  first_sightings += other.first_sightings;
  withdrawals += other.withdrawals;
  nn_with_med_change += other.nn_with_med_change;
  return *this;
}

std::optional<AnnouncementType> Classifier::classify(
    const UpdateRecord& record) {
  if (!record.announcement) {
    ++counts_.withdrawals;
    return std::nullopt;
  }
  auto key = std::make_pair(record.session, record.prefix);
  auto it = last_.find(key);
  if (it == last_.end()) {
    ++counts_.first_sightings;
    last_.emplace(std::move(key),
                  StreamState{record.attrs.as_path, record.attrs.communities,
                              record.attrs.med});
    return std::nullopt;
  }

  StreamState& prev = it->second;
  bool path_changed = prev.as_path != record.attrs.as_path;
  bool comm_changed = prev.communities != record.attrs.communities;
  bool prepend_only =
      path_changed &&
      record.attrs.as_path.prepending_only_change_from(prev.as_path);
  bool med_changed = prev.med != record.attrs.med;

  AnnouncementType type;
  if (!path_changed) {
    type = comm_changed ? AnnouncementType::kNc : AnnouncementType::kNn;
    if (type == AnnouncementType::kNn && med_changed) {
      ++counts_.nn_with_med_change;
    }
  } else if (prepend_only) {
    type = comm_changed ? AnnouncementType::kXc : AnnouncementType::kXn;
  } else {
    type = comm_changed ? AnnouncementType::kPc : AnnouncementType::kPn;
  }
  counts_.add(type);

  prev.as_path = record.attrs.as_path;
  prev.communities = record.attrs.communities;
  prev.med = record.attrs.med;
  return type;
}

void Classifier::merge(Classifier&& other) {
  counts_ += other.counts_;
  // std::map::merge keeps the existing element on key collision — the
  // deterministic "this classifier wins" rule the header documents.
  last_.merge(std::move(other.last_));
}

TypeCounts classify_stream(
    const UpdateStream& stream,
    const std::function<void(const UpdateRecord&,
                             std::optional<AnnouncementType>)>& callback) {
  Classifier classifier;
  for (const UpdateRecord& record : stream.records()) {
    auto type = classifier.classify(record);
    if (callback) callback(record, type);
  }
  return classifier.counts();
}

std::vector<std::pair<SessionKey, TypeCounts>> per_session_types(
    const UpdateStream& stream, const std::optional<Prefix>& only_prefix) {
  std::map<SessionKey, Classifier> classifiers;
  for (const UpdateRecord& record : stream.records()) {
    if (only_prefix && record.prefix != *only_prefix) continue;
    classifiers[record.session].classify(record);
  }
  return rank_session_types(classifiers);
}

std::vector<std::pair<SessionKey, TypeCounts>> rank_session_types(
    const std::map<SessionKey, Classifier>& classifiers) {
  std::vector<std::pair<SessionKey, TypeCounts>> out;
  out.reserve(classifiers.size());
  for (const auto& [key, classifier] : classifiers) {
    out.emplace_back(key, classifier.counts());
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.total() > b.second.total();
  });
  return out;
}

}  // namespace bgpcc::core
