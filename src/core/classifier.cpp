#include "core/classifier.h"

#include <algorithm>

namespace bgpcc::core {

const char* label(AnnouncementType type) {
  switch (type) {
    case AnnouncementType::kPc:
      return "pc";
    case AnnouncementType::kPn:
      return "pn";
    case AnnouncementType::kNc:
      return "nc";
    case AnnouncementType::kNn:
      return "nn";
    case AnnouncementType::kXc:
      return "xc";
    case AnnouncementType::kXn:
      return "xn";
  }
  return "??";
}

std::uint64_t TypeCounts::total() const {
  std::uint64_t sum = 0;
  for (std::uint64_t c : counts) sum += c;
  return sum;
}

double TypeCounts::share(AnnouncementType type) const {
  std::uint64_t sum = total();
  if (sum == 0) return 0.0;
  return static_cast<double>(count(type)) / static_cast<double>(sum);
}

TypeCounts& TypeCounts::operator+=(const TypeCounts& other) {
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  first_sightings += other.first_sightings;
  withdrawals += other.withdrawals;
  nn_with_med_change += other.nn_with_med_change;
  return *this;
}

std::optional<AnnouncementType> Classifier::classify(
    const UpdateRecord& record) {
  if (!record.announcement) {
    ++counts_.withdrawals;
    return std::nullopt;
  }
  auto key = std::make_pair(record.session, record.prefix);
  auto it = last_.find(key);
  if (it == last_.end()) {
    ++counts_.first_sightings;
    last_.emplace(std::move(key),
                  StreamState{record.attrs.as_path, record.attrs.communities,
                              record.attrs.med});
    return std::nullopt;
  }

  StreamState& prev = it->second;
  bool path_changed = prev.as_path != record.attrs.as_path;
  bool comm_changed = prev.communities != record.attrs.communities;
  bool prepend_only =
      path_changed &&
      record.attrs.as_path.prepending_only_change_from(prev.as_path);
  bool med_changed = prev.med != record.attrs.med;

  AnnouncementType type;
  if (!path_changed) {
    type = comm_changed ? AnnouncementType::kNc : AnnouncementType::kNn;
    if (type == AnnouncementType::kNn && med_changed) {
      ++counts_.nn_with_med_change;
    }
  } else if (prepend_only) {
    type = comm_changed ? AnnouncementType::kXc : AnnouncementType::kXn;
  } else {
    type = comm_changed ? AnnouncementType::kPc : AnnouncementType::kPn;
  }
  counts_.add(type);

  prev.as_path = record.attrs.as_path;
  prev.communities = record.attrs.communities;
  prev.med = record.attrs.med;
  return type;
}

void Classifier::restore(StreamStates streams, TypeCounts counts) {
  last_ = std::move(streams);
  counts_ = counts;
}

void Classifier::merge(Classifier&& other) {
  counts_ += other.counts_;
  // std::map::merge keeps the existing element on key collision — the
  // deterministic "this classifier wins" rule the header documents.
  last_.merge(std::move(other.last_));
}

TypeCounts classify_stream(
    const UpdateStream& stream,
    const std::function<void(const UpdateRecord&,
                             std::optional<AnnouncementType>)>& callback) {
  Classifier classifier;
  for (const UpdateRecord& record : stream.records()) {
    auto type = classifier.classify(record);
    if (callback) callback(record, type);
  }
  return classifier.counts();
}

std::vector<std::pair<SessionKey, TypeCounts>> per_session_types(
    const UpdateStream& stream, const std::optional<Prefix>& only_prefix) {
  std::map<SessionKey, Classifier> classifiers;
  for (const UpdateRecord& record : stream.records()) {
    if (only_prefix && record.prefix != *only_prefix) continue;
    classifiers[record.session].classify(record);
  }
  return rank_session_types(classifiers);
}

std::vector<std::pair<SessionKey, TypeCounts>> rank_session_types(
    const std::map<SessionKey, Classifier>& classifiers) {
  std::vector<std::pair<SessionKey, TypeCounts>> out;
  out.reserve(classifiers.size());
  for (const auto& [key, classifier] : classifiers) {
    out.emplace_back(key, classifier.counts());
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.second.total() > b.second.total();
  });
  return out;
}

// ---------------------------------------------------------------------------
// Community usage classification (Krenc et al., IMC 2021).

const char* label(CommunityUsage usage) {
  switch (usage) {
    case CommunityUsage::kLocation:
      return "location";
    case CommunityUsage::kTrafficEngineering:
      return "traffic-eng";
    case CommunityUsage::kBlackhole:
      return "blackhole";
    case CommunityUsage::kInformational:
      return "informational";
  }
  return "??";
}

const char* label(UsageProfile profile) {
  switch (profile) {
    case UsageProfile::kLocation:
      return "location";
    case UsageProfile::kTrafficEngineering:
      return "traffic-eng";
    case UsageProfile::kBlackhole:
      return "blackhole";
    case UsageProfile::kInformational:
      return "informational";
    case UsageProfile::kMixed:
      return "mixed";
    case UsageProfile::kUnclassified:
      return "unclassified";
  }
  return "??";
}

CommunityUsage classify_community_usage(Community community,
                                        const UsageOptions& options) {
  if (community.is_well_known()) {
    return community.raw() == Community::kBlackholeRaw
               ? CommunityUsage::kBlackhole
               : CommunityUsage::kInformational;
  }
  std::uint16_t value = community.value16();
  if (value == 666) return CommunityUsage::kBlackhole;
  if (value < options.te_value_max) {
    return CommunityUsage::kTrafficEngineering;
  }
  if ((value >= options.country_min && value <= options.country_max) ||
      (value >= options.city_min && value <= options.city_max)) {
    return CommunityUsage::kLocation;
  }
  return CommunityUsage::kInformational;
}

void accumulate_usage(const UpdateRecord& record, UsageEvidence& evidence) {
  if (!record.announcement) return;
  for (Community c : record.attrs.communities) {
    ++evidence.value_occurrences[c.raw()];
    evidence.namespace_sessions[c.asn16()].insert(record.session);
  }
}

void merge_usage(UsageEvidence& into, UsageEvidence&& from) {
  for (const auto& [value, count] : from.value_occurrences) {
    into.value_occurrences[value] += count;
  }
  for (auto& [asn16, sessions] : from.namespace_sessions) {
    auto [it, fresh] =
        into.namespace_sessions.try_emplace(asn16, std::move(sessions));
    if (!fresh) {
      it->second.insert(sessions.begin(), sessions.end());
    }
  }
}

std::vector<AsUsage> finalize_usage(const UsageEvidence& evidence,
                                    const UsageOptions& options) {
  std::map<std::uint16_t, AsUsage> per_namespace;
  for (const auto& [raw, count] : evidence.value_occurrences) {
    Community community{raw};
    AsUsage& usage = per_namespace[community.asn16()];
    usage.asn16 = community.asn16();
    usage.occurrences += count;
    ++usage.distinct_values;
    std::size_t category = static_cast<std::size_t>(
        classify_community_usage(community, options));
    usage.usage_occurrences[category] += count;
    ++usage.usage_values[category];
  }
  std::vector<AsUsage> out;
  out.reserve(per_namespace.size());
  for (auto& [asn16, usage] : per_namespace) {
    auto sessions = evidence.namespace_sessions.find(asn16);
    if (sessions != evidence.namespace_sessions.end()) {
      usage.sessions = sessions->second.size();
    }
    if (usage.occurrences < options.min_occurrences) {
      usage.profile = UsageProfile::kUnclassified;
    } else {
      std::size_t top = 0;
      for (std::size_t i = 1; i < usage.usage_occurrences.size(); ++i) {
        if (usage.usage_occurrences[i] > usage.usage_occurrences[top]) {
          top = i;
        }
      }
      double share = static_cast<double>(usage.usage_occurrences[top]) /
                     static_cast<double>(usage.occurrences);
      // UsageProfile's first four enumerators mirror CommunityUsage.
      usage.profile = share >= options.dominant_fraction
                          ? static_cast<UsageProfile>(top)
                          : UsageProfile::kMixed;
    }
    out.push_back(usage);
  }
  std::sort(out.begin(), out.end(), [](const AsUsage& a, const AsUsage& b) {
    if (a.occurrences != b.occurrences) return a.occurrences > b.occurrences;
    return a.asn16 < b.asn16;
  });
  return out;
}

std::vector<AsUsage> classify_community_usage_stream(
    const UpdateStream& stream, const UsageOptions& options) {
  UsageEvidence evidence;
  for (const UpdateRecord& record : stream.records()) {
    accumulate_usage(record, evidence);
  }
  return finalize_usage(evidence, options);
}

}  // namespace bgpcc::core
