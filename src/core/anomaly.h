// Anomaly detection (§7): "communities can enrich our understanding of
// anomalous behavior in the routing system ... a first step toward
// predicting anomalous communities."
//
// Two detectors over classified update streams:
//  - duplicate outliers: sessions whose nn share is far above the
//    population (the paper's Figure-2 footnote: an AS bursting updates
//    "for an unknown reason" in mid-2012);
//  - novel community bursts: community values that appear for the first
//    time and immediately arrive in volume.
#pragma once

#include <cstdint>
#include <vector>

#include "core/classifier.h"
#include "core/stream.h"

namespace bgpcc::core {

struct DuplicateOutlier {
  SessionKey session;
  std::uint64_t nn = 0;
  std::uint64_t classified = 0;
  double nn_share = 0.0;
  /// Standard deviations above the population mean nn share.
  double sigma = 0.0;
};

struct NoveltyBurst {
  Community community;
  Timestamp first_seen;
  /// Occurrences within the burst window after first appearance.
  std::uint64_t occurrences = 0;
};

struct AnomalyOptions {
  /// Sessions below this many classified announcements are not scored.
  std::uint64_t min_classified = 50;
  /// Flag sessions more than this many standard deviations above the
  /// population mean nn share.
  double sigma_threshold = 3.0;
  /// Window after a community's first appearance that counts toward its
  /// burst volume.
  Duration novelty_window = Duration::hours(1);
  /// Minimum in-window occurrences to call a novelty a burst.
  std::uint64_t novelty_min_occurrences = 100;
};

struct AnomalyReport {
  std::vector<DuplicateOutlier> duplicate_outliers;  // worst first
  std::vector<NoveltyBurst> novelty_bursts;          // biggest first
  double population_mean_nn_share = 0.0;
  double population_stddev_nn_share = 0.0;
};

/// Runs both detectors over a (time-sorted) stream.
[[nodiscard]] AnomalyReport detect_anomalies(const UpdateStream& stream,
                                             const AnomalyOptions& options = {});

}  // namespace bgpcc::core
