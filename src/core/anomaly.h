// Anomaly detection (§7): "communities can enrich our understanding of
// anomalous behavior in the routing system ... a first step toward
// predicting anomalous communities."
//
// Two detectors over classified update streams:
//  - duplicate outliers: sessions whose nn share is far above the
//    population (the paper's Figure-2 footnote: an AS bursting updates
//    "for an unknown reason" in mid-2012);
//  - novel community bursts: community values that appear (or re-appear
//    after a quiet gap) and immediately arrive in volume — the
//    community-based anomaly signal of CommunityWatch (Giotsas 2018).
//
// Both detectors are split into accumulate / merge / finalize kernels
// (mirroring core/tomography) so analytics::AnomalyPass can run them
// per-shard on the ingestion worker threads and merge associatively:
// the accumulated evidence depends only on the multiset of records and
// per-session order, never on cross-session interleaving.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/classifier.h"
#include "core/stream.h"

namespace bgpcc::core {

struct DuplicateOutlier {
  SessionKey session;
  std::uint64_t nn = 0;
  std::uint64_t classified = 0;
  double nn_share = 0.0;
  /// Standard deviations above the leave-one-out population mean nn share.
  double sigma = 0.0;
  friend bool operator==(const DuplicateOutlier&,
                         const DuplicateOutlier&) = default;
};

struct NoveltyBurst {
  Community community;
  /// When the reported burst began: the earliest occurrence in the burst
  /// episode's opening bucket. For a community that never went quiet this
  /// is its first appearance; for a re-emergent burst it is the
  /// re-appearance after the quiet gap.
  Timestamp first_seen;
  /// Occurrences inside the burst window after the episode began (bucket
  /// granular, at most 2x novelty_window — see finalize_novelty_bursts).
  std::uint64_t occurrences = 0;
  friend bool operator==(const NoveltyBurst&, const NoveltyBurst&) = default;
};

struct AnomalyOptions {
  /// Sessions below this many classified announcements are not scored.
  std::uint64_t min_classified = 50;
  /// Flag sessions more than this many standard deviations above the
  /// population mean nn share.
  double sigma_threshold = 3.0;
  /// Width of the novelty bucketing: a community that stays quiet for a
  /// full bucket has its burst window restarted at the next sighting, and
  /// occurrences count toward a burst while within ~one window of the
  /// (re-)emergence. Must be positive (ConfigError otherwise).
  Duration novelty_window = Duration::hours(1);
  /// Minimum in-window occurrences to call a novelty a burst.
  std::uint64_t novelty_min_occurrences = 100;
};

struct AnomalyReport {
  std::vector<DuplicateOutlier> duplicate_outliers;  // worst first
  std::vector<NoveltyBurst> novelty_bursts;          // biggest first
  double population_mean_nn_share = 0.0;
  double population_stddev_nn_share = 0.0;
  friend bool operator==(const AnomalyReport&, const AnomalyReport&) = default;
};

// ---------------------------------------------------------------------------
// Novelty kernel.

/// One novelty_window-wide time bucket of one community's occurrences.
struct NoveltyBucket {
  std::uint64_t count = 0;
  /// Earliest occurrence observed in the bucket.
  Timestamp earliest;
  friend bool operator==(const NoveltyBucket&, const NoveltyBucket&) = default;
};

/// Per-community occurrence histogram over novelty_window-aligned time
/// buckets (bucket index = floor(unix_micros / window)). A pure multiset
/// summary: counts sum and earliest-timestamps min under merge, so
/// shard-partial evidence combines associatively to exactly the
/// whole-stream evidence — the property the old streaming detector
/// lacked (it pinned first_seen forever and silently dropped every
/// occurrence outside the initial window, so re-emergent bursts were
/// never flagged).
using NoveltyEvidence =
    std::map<Community, std::map<std::int64_t, NoveltyBucket>>;

/// Folds one record's community occurrences into `evidence` (withdrawals
/// are ignored). `novelty_window` fixes the bucket width and must be
/// positive (ConfigError) and identical across every accumulate/merge
/// feeding one finalize.
void accumulate_novelty(const UpdateRecord& record, Duration novelty_window,
                        NoveltyEvidence& evidence);

/// Sums counts and mins earliest-timestamps bucket by bucket.
void merge_novelty(NoveltyEvidence& into, NoveltyEvidence&& from);

/// Scans each community's bucket histogram for burst episodes. An episode
/// starts at a bucket with no occupied predecessor bucket (the community
/// was quiet for at least novelty_window before it — re-emergences start
/// new episodes). Its burst volume is the occurrence count of the opening
/// bucket plus the immediately following bucket: a window of at most
/// 2x novelty_window after the (re-)emergence that upper-bounds the exact
/// [first, first+window] count, so no burst the exact detector would flag
/// is missed. The largest episode per community (earliest on ties) is
/// reported when it reaches novelty_min_occurrences. Sorted by
/// occurrences descending, community ascending.
[[nodiscard]] std::vector<NoveltyBurst> finalize_novelty_bursts(
    const NoveltyEvidence& evidence, const AnomalyOptions& options);

// ---------------------------------------------------------------------------
// Duplicate-outlier kernel.

/// Applies eligibility (min_classified) and leave-one-out sigma scoring to
/// per-session classifier tallies, filling `report`'s population stats and
/// duplicate_outliers (sigma descending, session ascending). Defined
/// small-population behavior: n == 0 eligible sessions reports zero
/// stats and no outliers; n == 1 reports that session's share as the
/// population mean with zero stddev and can never flag it (there is no
/// population to deviate from); n == 2 scores each session against the
/// other alone (a zero-stddev remainder makes any exceedance infinitely
/// surprising, reported as sigma 1e6).
void score_duplicate_outliers(
    const std::map<SessionKey, Classifier>& classifiers,
    const AnomalyOptions& options, AnomalyReport& report);

/// Runs both detectors over a (time-sorted) stream: a thin wrapper around
/// the accumulate/finalize kernels above.
[[nodiscard]] AnomalyReport detect_anomalies(const UpdateStream& stream,
                                             const AnomalyOptions& options = {});

}  // namespace bgpcc::core
