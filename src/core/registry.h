// Number-resource registry: which ASNs and prefix blocks were allocated
// when. The paper's §4 cleaning step drops BGP messages containing an ASN
// or prefix that was unallocated at message time; this is the lookup side
// of that step (the synthetic registry content lives in bgpcc::synth).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "netbase/asn.h"
#include "netbase/timeutil.h"
#include "rib/trie.h"

namespace bgpcc::core {

class Registry {
 public:
  /// Registers an ASN as allocated from `when` onwards.
  void allocate_asn(Asn asn, Timestamp when = Timestamp{});
  /// Registers an address block as allocated from `when` onwards. Any
  /// equal-or-more-specific prefix counts as allocated.
  void allocate_prefix(const Prefix& block, Timestamp when = Timestamp{});

  [[nodiscard]] bool asn_allocated(Asn asn, Timestamp at) const;
  /// True if some registered block containing `prefix` was allocated at
  /// `at`.
  [[nodiscard]] bool prefix_allocated(const Prefix& prefix,
                                      Timestamp at) const;

  [[nodiscard]] std::size_t asn_count() const { return asns_.size(); }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

 private:
  std::unordered_map<std::uint32_t, Timestamp> asns_;
  PrefixTrie<Timestamp> blocks_;
};

}  // namespace bgpcc::core
