// The paper's §5 announcement-type classifier.
//
// Consecutive announcements on the same (session, prefix) stream are
// compared: did the AS path change, was the change prepending-only, did the
// community attribute change? Six types result:
//
//   pc  path + community changed        xc  prepending-only + community
//   pn  path changed only               xn  prepending-only
//   nc  community changed only          nn  neither changed ("duplicate")
//
// Withdrawals do not reset the per-stream comparison state (Figure 4's
// post-withdrawal phases open with a pc against the pre-withdrawal state).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/stream.h"

namespace bgpcc::core {

enum class AnnouncementType : std::uint8_t {
  kPc = 0,  // path + community change
  kPn = 1,  // path change only
  kNc = 2,  // community change only
  kNn = 3,  // no change
  kXc = 4,  // prepending-only path change + community change
  kXn = 5,  // prepending-only path change
};

inline constexpr std::array<AnnouncementType, 6> kAllAnnouncementTypes = {
    AnnouncementType::kPc, AnnouncementType::kPn, AnnouncementType::kNc,
    AnnouncementType::kNn, AnnouncementType::kXc, AnnouncementType::kXn};

/// Two-letter label as used in the paper ("pc", "nn", ...).
[[nodiscard]] const char* label(AnnouncementType type);

/// Per-type tallies plus the bookkeeping categories the shares exclude.
struct TypeCounts {
  std::array<std::uint64_t, 6> counts{};
  /// First announcement ever seen on a stream: no predecessor, untyped.
  std::uint64_t first_sightings = 0;
  std::uint64_t withdrawals = 0;
  /// nn announcements whose MED differs from the predecessor (the paper
  /// acknowledges MED changes as a cause of nn; tracked for the "manual
  /// check" step).
  std::uint64_t nn_with_med_change = 0;

  void add(AnnouncementType type) {
    ++counts[static_cast<std::size_t>(type)];
  }
  [[nodiscard]] std::uint64_t count(AnnouncementType type) const {
    return counts[static_cast<std::size_t>(type)];
  }
  /// Total classified announcements (denominator of the shares).
  [[nodiscard]] std::uint64_t total() const;
  /// Share of a type among classified announcements, in [0,1].
  [[nodiscard]] double share(AnnouncementType type) const;

  TypeCounts& operator+=(const TypeCounts& other);
  friend bool operator==(const TypeCounts&, const TypeCounts&) = default;
};

/// Streaming classifier; feed records in chronological order per session.
class Classifier {
 public:
  /// The per-stream comparison cursor: the attributes of the last
  /// announcement seen on one (session, prefix) stream. Public so the
  /// checkpoint codec (analytics/serialize.h) can persist a classifier
  /// mid-stream and resume with byte-identical classifications.
  struct StreamState {
    AsPath as_path;
    CommunitySet communities;
    std::optional<std::uint32_t> med;
  };
  /// Stream cursors keyed by (session, prefix).
  using StreamStates = std::map<std::pair<SessionKey, Prefix>, StreamState>;

  /// Classifies an announcement against the stream's previous one.
  /// Returns nullopt for withdrawals (tallied) and first sightings.
  std::optional<AnnouncementType> classify(const UpdateRecord& record);

  [[nodiscard]] const TypeCounts& counts() const { return counts_; }

  /// Number of distinct (session, prefix) streams seen.
  [[nodiscard]] std::size_t stream_count() const { return last_.size(); }

  /// The live per-stream comparison cursors (checkpoint serialization).
  [[nodiscard]] const StreamStates& stream_states() const { return last_; }

  /// Replaces the whole classifier state — the checkpoint/restore hook.
  /// The restored classifier continues exactly where the saved one
  /// stopped: same tallies, same per-stream comparison cursors.
  void restore(StreamStates streams, TypeCounts counts);

  /// Absorbs another classifier: tallies are summed and per-stream states
  /// united — the associative merge of shard-parallel classification
  /// (analytics/passes.h), where the SessionKey-hash sharding guarantees
  /// each (session, prefix) stream was observed by exactly ONE
  /// classifier. For streams present in both (a contract violation), this
  /// classifier's state wins deterministically, but the summed tallies
  /// have double-counted that stream's first sighting.
  void merge(Classifier&& other);

 private:
  StreamStates last_;
  TypeCounts counts_;
};

/// Classifies a whole (time-sorted) stream. The optional callback sees
/// every record with its classification.
TypeCounts classify_stream(
    const UpdateStream& stream,
    const std::function<void(const UpdateRecord&,
                             std::optional<AnnouncementType>)>& callback = {});

/// Per-session tallies (Figure 3): classification restricted to one prefix
/// if `only_prefix` is set. Result is sorted by announcement count,
/// descending.
[[nodiscard]] std::vector<std::pair<SessionKey, TypeCounts>> per_session_types(
    const UpdateStream& stream,
    const std::optional<Prefix>& only_prefix = std::nullopt);

/// Projects per-session classifiers into the Figure-3 ranking (sorted by
/// classified announcement count, descending). The shared projection of
/// per_session_types and analytics::PerSessionTypesPass — one sort, so
/// the two paths cannot drift apart on tie handling.
[[nodiscard]] std::vector<std::pair<SessionKey, TypeCounts>>
rank_session_types(const std::map<SessionKey, Classifier>& classifiers);

// ---------------------------------------------------------------------------
// Per-AS community usage classification, following Krenc et al.,
// "AS-Level BGP Community Usage Classification" (IMC 2021): each 16-bit
// community namespace is profiled from the values its owner AS mints and
// how widely sessions carry them. Split into a per-value heuristic plus
// accumulate/merge/finalize evidence kernels so the classification can
// run shard-parallel (analytics::UsageClassificationPass) or one-shot.

/// What a single community value appears to encode.
enum class CommunityUsage : std::uint8_t {
  kLocation = 0,        // ingress/geo tagging (the paper's 3356:2xxx)
  kTrafficEngineering,  // action codes: prepending, scoped export, pref
  kBlackhole,           // RTBH triggers (RFC 7999 and the asn:666 custom)
  kInformational,       // origin/relation markers and everything else
};

inline constexpr std::array<CommunityUsage, 4> kAllCommunityUsages = {
    CommunityUsage::kLocation, CommunityUsage::kTrafficEngineering,
    CommunityUsage::kBlackhole, CommunityUsage::kInformational};

/// A whole namespace's dominant usage (kMixed when no single category
/// dominates, kUnclassified below the evidence floor).
enum class UsageProfile : std::uint8_t {
  kLocation = 0,
  kTrafficEngineering,
  kBlackhole,
  kInformational,
  kMixed,
  kUnclassified,
};

[[nodiscard]] const char* label(CommunityUsage usage);
[[nodiscard]] const char* label(UsageProfile profile);

/// Heuristic knobs. The value-range defaults follow the operator
/// conventions Krenc et al. catalogue: tiny values are action codes,
/// 500-999 country codes, 2000-3999 city/ingress codes, 666 blackhole.
struct UsageOptions {
  /// value16 strictly below this is a traffic-engineering action code.
  std::uint16_t te_value_max = 100;
  /// value16 in [country_min, country_max] or [city_min, city_max] is a
  /// location encoding.
  std::uint16_t country_min = 500;
  std::uint16_t country_max = 999;
  std::uint16_t city_min = 2000;
  std::uint16_t city_max = 3999;
  /// Namespaces with fewer total occurrences stay kUnclassified.
  std::uint64_t min_occurrences = 10;
  /// Occurrence share the top category needs before the namespace is
  /// labeled with it; below, the profile is kMixed.
  double dominant_fraction = 0.6;
};

/// Classifies one community value by the 16-bit-namespace heuristics.
/// Well-known values (0xFFFF namespace) are kBlackhole for RFC 7999
/// BLACKHOLE and kInformational otherwise.
[[nodiscard]] CommunityUsage classify_community_usage(
    Community community, const UsageOptions& options = {});

/// Mergeable evidence: per-value occurrence counts plus the sessions
/// observed carrying each namespace. Counts sum and session sets unite
/// under merge, so shard-partial evidence combines associatively to the
/// whole-stream evidence (sessions never span shards, so set sizes add).
struct UsageEvidence {
  std::map<std::uint32_t, std::uint64_t> value_occurrences;
  std::map<std::uint16_t, std::set<SessionKey>> namespace_sessions;
};

/// Folds one announcement's community occurrences into `evidence`
/// (withdrawals are ignored).
void accumulate_usage(const UpdateRecord& record, UsageEvidence& evidence);

void merge_usage(UsageEvidence& into, UsageEvidence&& from);

/// One namespace's usage profile.
struct AsUsage {
  std::uint16_t asn16 = 0;
  std::uint64_t occurrences = 0;
  std::uint64_t distinct_values = 0;
  /// Distinct sessions observed carrying a value of this namespace.
  std::uint64_t sessions = 0;
  /// Occurrences / distinct values per CommunityUsage category.
  std::array<std::uint64_t, 4> usage_occurrences{};
  std::array<std::uint64_t, 4> usage_values{};
  UsageProfile profile = UsageProfile::kUnclassified;
  friend bool operator==(const AsUsage&, const AsUsage&) = default;
};

/// Applies the per-value heuristics and the dominance rule, sorted by
/// occurrences descending then asn16 ascending.
[[nodiscard]] std::vector<AsUsage> finalize_usage(
    const UsageEvidence& evidence, const UsageOptions& options);

/// One-shot wrapper: accumulate over a stream, then finalize.
[[nodiscard]] std::vector<AsUsage> classify_community_usage_stream(
    const UpdateStream& stream, const UsageOptions& options = {});

}  // namespace bgpcc::core
