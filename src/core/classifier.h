// The paper's §5 announcement-type classifier.
//
// Consecutive announcements on the same (session, prefix) stream are
// compared: did the AS path change, was the change prepending-only, did the
// community attribute change? Six types result:
//
//   pc  path + community changed        xc  prepending-only + community
//   pn  path changed only               xn  prepending-only
//   nc  community changed only          nn  neither changed ("duplicate")
//
// Withdrawals do not reset the per-stream comparison state (Figure 4's
// post-withdrawal phases open with a pc against the pre-withdrawal state).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "core/stream.h"

namespace bgpcc::core {

enum class AnnouncementType : std::uint8_t {
  kPc = 0,  // path + community change
  kPn = 1,  // path change only
  kNc = 2,  // community change only
  kNn = 3,  // no change
  kXc = 4,  // prepending-only path change + community change
  kXn = 5,  // prepending-only path change
};

inline constexpr std::array<AnnouncementType, 6> kAllAnnouncementTypes = {
    AnnouncementType::kPc, AnnouncementType::kPn, AnnouncementType::kNc,
    AnnouncementType::kNn, AnnouncementType::kXc, AnnouncementType::kXn};

/// Two-letter label as used in the paper ("pc", "nn", ...).
[[nodiscard]] const char* label(AnnouncementType type);

/// Per-type tallies plus the bookkeeping categories the shares exclude.
struct TypeCounts {
  std::array<std::uint64_t, 6> counts{};
  /// First announcement ever seen on a stream: no predecessor, untyped.
  std::uint64_t first_sightings = 0;
  std::uint64_t withdrawals = 0;
  /// nn announcements whose MED differs from the predecessor (the paper
  /// acknowledges MED changes as a cause of nn; tracked for the "manual
  /// check" step).
  std::uint64_t nn_with_med_change = 0;

  void add(AnnouncementType type) {
    ++counts[static_cast<std::size_t>(type)];
  }
  [[nodiscard]] std::uint64_t count(AnnouncementType type) const {
    return counts[static_cast<std::size_t>(type)];
  }
  /// Total classified announcements (denominator of the shares).
  [[nodiscard]] std::uint64_t total() const;
  /// Share of a type among classified announcements, in [0,1].
  [[nodiscard]] double share(AnnouncementType type) const;

  TypeCounts& operator+=(const TypeCounts& other);
  friend bool operator==(const TypeCounts&, const TypeCounts&) = default;
};

/// Streaming classifier; feed records in chronological order per session.
class Classifier {
 public:
  /// Classifies an announcement against the stream's previous one.
  /// Returns nullopt for withdrawals (tallied) and first sightings.
  std::optional<AnnouncementType> classify(const UpdateRecord& record);

  [[nodiscard]] const TypeCounts& counts() const { return counts_; }

  /// Number of distinct (session, prefix) streams seen.
  [[nodiscard]] std::size_t stream_count() const { return last_.size(); }

  /// Absorbs another classifier: tallies are summed and per-stream states
  /// united — the associative merge of shard-parallel classification
  /// (analytics/passes.h), where the SessionKey-hash sharding guarantees
  /// each (session, prefix) stream was observed by exactly ONE
  /// classifier. For streams present in both (a contract violation), this
  /// classifier's state wins deterministically, but the summed tallies
  /// have double-counted that stream's first sighting.
  void merge(Classifier&& other);

 private:
  struct StreamState {
    AsPath as_path;
    CommunitySet communities;
    std::optional<std::uint32_t> med;
  };
  std::map<std::pair<SessionKey, Prefix>, StreamState> last_;
  TypeCounts counts_;
};

/// Classifies a whole (time-sorted) stream. The optional callback sees
/// every record with its classification.
TypeCounts classify_stream(
    const UpdateStream& stream,
    const std::function<void(const UpdateRecord&,
                             std::optional<AnnouncementType>)>& callback = {});

/// Per-session tallies (Figure 3): classification restricted to one prefix
/// if `only_prefix` is set. Result is sorted by announcement count,
/// descending.
[[nodiscard]] std::vector<std::pair<SessionKey, TypeCounts>> per_session_types(
    const UpdateStream& stream,
    const std::optional<Prefix>& only_prefix = std::nullopt);

/// Projects per-session classifiers into the Figure-3 ranking (sorted by
/// classified announcement count, descending). The shared projection of
/// per_session_types and analytics::PerSessionTypesPass — one sort, so
/// the two paths cannot drift apart on tie handling.
[[nodiscard]] std::vector<std::pair<SessionKey, TypeCounts>>
rank_session_types(const std::map<SessionKey, Classifier>& classifiers);

}  // namespace bgpcc::core
