#include "core/stream.h"

#include <algorithm>
#include <utility>

#include "core/cleaning.h"
#include "core/ingest.h"

namespace bgpcc::core {

std::string SessionKey::to_string() const {
  return collector + "|" + peer_asn.to_string() + "|" +
         peer_address.to_string();
}

std::size_t SessionKey::hash() const {
  // FNV-1a over the key's canonical bytes: collector name, ASN, address.
  std::uint64_t h = 14695981039346656037ull;
  auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (char c : collector) mix(static_cast<std::uint8_t>(c));
  std::uint32_t asn = peer_asn.value();
  for (int shift = 0; shift < 32; shift += 8) {
    mix(static_cast<std::uint8_t>(asn >> shift));
  }
  mix(static_cast<std::uint8_t>(peer_address.family()));
  for (std::uint8_t byte : peer_address.bytes()) mix(byte);
  return static_cast<std::size_t>(h);
}

void append_update_records(const std::string& collector, Asn peer_asn,
                           const IpAddress& peer_address, Timestamp time,
                           const UpdateMessage& update,
                           std::vector<UpdateRecord>& out) {
  SessionKey key{collector, peer_asn, peer_address};
  for (const Prefix& prefix : update.withdrawn) {
    UpdateRecord record;
    record.time = time;
    record.session = key;
    record.prefix = prefix;
    record.announcement = false;
    out.push_back(std::move(record));
  }
  if (!update.announced.empty() && update.attrs) {
    for (const Prefix& prefix : update.announced) {
      UpdateRecord record;
      record.time = time;
      record.session = key;
      record.prefix = prefix;
      record.announcement = true;
      record.attrs = *update.attrs;
      out.push_back(std::move(record));
    }
  }
}

void UpdateStream::add_message(const std::string& collector, Asn peer_asn,
                               const IpAddress& peer_address, Timestamp time,
                               const UpdateMessage& update) {
  append_update_records(collector, peer_asn, peer_address, time, update,
                        records_);
}

namespace {

// The legacy builders keep their original contract — single-threaded,
// arrival (file) order, no cleaning — by running the ingestion engine in
// its compatibility configuration.
IngestOptions legacy_options() {
  IngestOptions options;
  options.num_threads = 1;
  options.sort_by_time = false;
  return options;
}

}  // namespace

UpdateStream UpdateStream::from_collector(
    const sim::RouteCollector& collector) {
  return ingest_collector(collector, legacy_options()).stream;
}

UpdateStream UpdateStream::from_mrt_file(const std::string& collector,
                                         const std::string& path) {
  return ingest_mrt_file(collector, path, legacy_options()).stream;
}

void UpdateStream::merge(const UpdateStream& other) {
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
}

void UpdateStream::sort_by_time() {
  std::stable_sort(
      records_.begin(), records_.end(),
      [](const UpdateRecord& a, const UpdateRecord& b) { return a.time < b.time; });
}

std::size_t UpdateStream::announcement_count() const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [](const UpdateRecord& r) { return r.announcement; }));
}

std::size_t UpdateStream::withdrawal_count() const {
  return size() - announcement_count();
}

std::set<SessionKey> UpdateStream::sessions() const {
  std::set<SessionKey> out;
  for (const UpdateRecord& r : records_) out.insert(r.session);
  return out;
}

CleaningReport clean(UpdateStream& stream, const CleaningOptions& options) {
  // Wrap records with their arrival index and run the shared §4 kernels —
  // the same code the parallel ingestion engine runs per shard.
  std::vector<SeqRecord> records;
  records.reserve(stream.size());
  std::uint64_t seq = 0;
  for (UpdateRecord& record : stream.records()) {
    records.push_back(SeqRecord{seq++, std::move(record)});
  }
  CleaningReport report = cleaning::run(records, options);
  stream.records().clear();
  stream.records().reserve(records.size());
  for (SeqRecord& sr : records) {
    stream.records().push_back(std::move(sr.record));
  }
  return report;
}

}  // namespace bgpcc::core
