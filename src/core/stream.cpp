#include "core/stream.h"

#include <algorithm>
#include <map>

#include "bgp/codec.h"
#include "mrt/mrt.h"

namespace bgpcc::core {

std::string SessionKey::to_string() const {
  return collector + "|" + peer_asn.to_string() + "|" +
         peer_address.to_string();
}

void UpdateStream::add_message(const std::string& collector, Asn peer_asn,
                               const IpAddress& peer_address, Timestamp time,
                               const UpdateMessage& update) {
  SessionKey key{collector, peer_asn, peer_address};
  for (const Prefix& prefix : update.withdrawn) {
    UpdateRecord record;
    record.time = time;
    record.session = key;
    record.prefix = prefix;
    record.announcement = false;
    records_.push_back(std::move(record));
  }
  if (!update.announced.empty() && update.attrs) {
    for (const Prefix& prefix : update.announced) {
      UpdateRecord record;
      record.time = time;
      record.session = key;
      record.prefix = prefix;
      record.announcement = true;
      record.attrs = *update.attrs;
      records_.push_back(std::move(record));
    }
  }
}

UpdateStream UpdateStream::from_collector(
    const sim::RouteCollector& collector) {
  UpdateStream stream;
  for (const sim::RecordedMessage& rec : collector.messages()) {
    stream.add_message(collector.name(), rec.peer_asn, rec.peer_address,
                       rec.time, rec.update);
  }
  return stream;
}

UpdateStream UpdateStream::from_mrt_file(const std::string& collector,
                                         const std::string& path) {
  UpdateStream stream;
  for (const mrt::TimedMessage& tm : mrt::read_all_messages(path)) {
    if (peek_type(tm.message.bgp_message) != MessageType::kUpdate) continue;
    CodecOptions options;
    options.four_byte_asn = tm.four_byte_asn;
    UpdateMessage update = decode_update(tm.message.bgp_message, options);
    stream.add_message(collector, tm.message.peer_asn, tm.message.peer_ip,
                       tm.timestamp, update);
  }
  return stream;
}

void UpdateStream::merge(const UpdateStream& other) {
  records_.insert(records_.end(), other.records_.begin(),
                  other.records_.end());
}

void UpdateStream::sort_by_time() {
  std::stable_sort(
      records_.begin(), records_.end(),
      [](const UpdateRecord& a, const UpdateRecord& b) { return a.time < b.time; });
}

std::size_t UpdateStream::announcement_count() const {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(),
                    [](const UpdateRecord& r) { return r.announcement; }));
}

std::size_t UpdateStream::withdrawal_count() const {
  return size() - announcement_count();
}

std::set<SessionKey> UpdateStream::sessions() const {
  std::set<SessionKey> out;
  for (const UpdateRecord& r : records_) out.insert(r.session);
  return out;
}

CleaningReport clean(UpdateStream& stream, const CleaningOptions& options) {
  CleaningReport report;

  // 1. Route-server AS path repair: prepend the server's ASN when absent.
  if (!options.route_servers.empty()) {
    std::map<IpAddress, Asn> servers(options.route_servers.begin(),
                                     options.route_servers.end());
    for (UpdateRecord& record : stream.records()) {
      if (!record.announcement) continue;
      auto it = servers.find(record.session.peer_address);
      if (it == servers.end()) continue;
      auto first = record.attrs.as_path.first_as();
      if (!first || *first != it->second) {
        record.attrs.as_path.prepend(it->second);
        ++report.route_server_paths_repaired;
      }
    }
  }

  // 2. Unallocated-resource filtering.
  if (options.registry != nullptr) {
    const Registry& registry = *options.registry;
    std::erase_if(stream.records(), [&](const UpdateRecord& record) {
      if (record.announcement) {
        for (Asn asn : record.attrs.as_path.flatten()) {
          if (!registry.asn_allocated(asn, record.time)) {
            ++report.dropped_unallocated_asn;
            return true;
          }
        }
      }
      if (!registry.prefix_allocated(record.prefix, record.time)) {
        ++report.dropped_unallocated_prefix;
        return true;
      }
      return false;
    });
  }

  // 3. Second-granularity repair: offset successive same-second records on
  // a session by sub_second_step, preserving arrival order.
  if (options.fix_second_granularity) {
    stream.sort_by_time();
    std::map<SessionKey, std::pair<std::int64_t, int>> last_second;
    for (UpdateRecord& record : stream.records()) {
      // Collectors with real sub-second stamps are untouched.
      if (record.time.unix_micros() % 1000000 != 0) continue;
      auto [it, inserted] = last_second.try_emplace(
          record.session, std::make_pair(record.time.unix_seconds(), 0));
      auto& [second, count] = it->second;
      if (!inserted && second == record.time.unix_seconds()) {
        ++count;
        record.time =
            record.time + Duration::micros(options.sub_second_step
                                               .count_micros() *
                                           count);
        ++report.timestamps_adjusted;
      } else {
        second = record.time.unix_seconds();
        count = 0;
      }
    }
    stream.sort_by_time();
  }

  return report;
}

}  // namespace bgpcc::core
