#include "core/tables.h"

#include <cstdio>
#include <fstream>

#include "netbase/error.h"

namespace bgpcc::core {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::add_separator() { rows_.emplace_back(); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      std::string padded = cell;
      if (i == 0) {
        padded.append(widths[i] - cell.size(), ' ');
      } else {
        padded.insert(0, widths[i] - cell.size(), ' ');
      }
      if (i > 0) line += "  ";
      line += padded;
    }
    return line;
  };
  std::size_t total = headers_.size() > 0 ? (headers_.size() - 1) * 2 : 0;
  for (std::size_t w : widths) total += w;

  std::string out = render_row(headers_) + "\n";
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) {
    if (row.empty()) {
      out += std::string(total, '-') + "\n";
    } else {
      out += render_row(row) + "\n";
    }
  }
  return out;
}

std::string with_commas(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::string human_count(std::uint64_t value) {
  if (value >= 1000000000ull) {
    return format_double(static_cast<double>(value) / 1e9, 1) + "B";
  }
  if (value >= 1000000ull) {
    return format_double(static_cast<double>(value) / 1e6, 1) + "M";
  }
  return with_commas(value);
}

std::string percent(double fraction, int decimals) {
  return format_double(fraction * 100.0, decimals) + "%";
}

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void write_csv(const std::string& path,
               const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw ConfigError("cannot open CSV output: " + path);
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << csv_escape(row[i]);
    }
    out << '\n';
  };
  write_row(headers);
  for (const auto& row : rows) write_row(row);
}

}  // namespace bgpcc::core
