// A persistent fixed-size worker pool with task groups, exception
// capture, and help-while-waiting — the thread substrate of the
// ingestion engine. Created once per engine and reused across every
// parallel stage (decode, shard-clean, tournament merge) of every
// window and every poll()/finish() call, replacing the per-stage
// spawn/join that dominated fixed cost at small windows.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bgpcc::core {

/// A fixed set of worker threads fed from one task queue. Work is
/// organised in Groups: submit(group, task) enqueues a task, and
/// wait(group) blocks until every task of that group has finished,
/// rethrowing the first exception any of them threw.
///
/// Two properties make a fixed pool safe for pipelined stages:
///
///  - wait() and help_one() HELP: a thread with nothing to do but wait
///    executes queued tasks itself (from any group), so a caller can
///    always drive its own work to completion — even on a pool with
///    zero workers, and even when a task enqueues further tasks into
///    its own group (the framer → decoder pattern).
///  - A failed group short-circuits: once one task of a group throws,
///    the group's remaining queued tasks are skipped (completed without
///    running), so a failing stage stops promptly instead of burning
///    the pool on doomed work.
///
/// Tasks must not wait() on their own group (they would deadlock on
/// their own completion); submitting into their own group is fine.
class WorkerPool {
 public:
  /// Completion/error state of one batch of related tasks. Reusable
  /// after wait() returns; not movable while tasks reference it.
  class Group {
   public:
    Group() = default;
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

    /// True once any task of this group has thrown (or fail() was
    /// called). Cheap: long-running tasks poll it to stop early.
    [[nodiscard]] bool failed() const {
      return failed_.load(std::memory_order_acquire);
    }

   private:
    friend class WorkerPool;
    std::size_t pending_ = 0;     // tasks submitted, not yet completed
    std::exception_ptr error_;    // first failure; rethrown by wait()
    std::atomic<bool> failed_{false};
  };

  /// Starts `workers` threads. Zero is valid: every task then runs on
  /// the thread that wait()s (or help_one()s) — the degenerate inline
  /// configuration, used so callers need no separate single-threaded
  /// code path.
  explicit WorkerPool(unsigned workers);
  /// Joins the workers after draining the queue. Every group must have
  /// been wait()ed first — destroying the pool with tasks in flight
  /// whose captures are already dead is the caller's bug.
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues a task into `group` (which must outlive its completion).
  /// Callable from any thread, including from running tasks.
  void submit(Group& group, std::function<void()> task);

  /// Blocks until every task of `group` has completed, executing queued
  /// tasks (any group) while waiting. Rethrows the group's first
  /// exception and resets the group for reuse.
  void wait(Group& group);

  /// Runs one queued task on the calling thread, if any is available.
  /// The cooperative back-off for tasks that would otherwise block on a
  /// capacity limit. Returns false when the queue is empty.
  bool help_one();

  /// Runs body(0..jobs-1), the workers and the calling thread pulling
  /// job indices from a shared counter; rethrows the first exception
  /// after all claimed jobs finish. Once any job throws, unclaimed jobs
  /// are never started. Runs inline when the pool has no workers or
  /// jobs <= 1.
  void parallel_for(std::size_t jobs,
                    const std::function<void(std::size_t)>& body);

  /// Records an external failure into `group`, as if one of its tasks
  /// had thrown: queued tasks are skipped and wait() rethrows. Used by
  /// callers that run part of a group's work on their own thread.
  void fail(Group& group, std::exception_ptr error);

  /// Number of pool threads (excludes helping callers).
  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

 private:
  struct Task {
    Group* group = nullptr;
    std::function<void()> fn;
    // Submit timestamp for the obs queue-wait histogram; only stamped
    // (and only read) while obs stage timing is enabled.
    std::chrono::steady_clock::time_point enqueued{};
    bool timed = false;
  };

  void worker_loop();
  void run_task(Task& task);
  void complete(Group& group);

  std::mutex mutex_;
  std::condition_variable task_cv_;  // workers: task available or stop
  std::condition_variable done_cv_;  // waiters: group done or helpable work
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace bgpcc::core
