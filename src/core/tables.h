// Text-table and number formatting helpers for the bench harness: the
// per-table/figure binaries print paper-style rows with these.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bgpcc::core {

/// Fixed-width aligned text table (first column left-aligned, the rest
/// right-aligned).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Adds a horizontal separator line.
  void add_separator();

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// 1234567 -> "1,234,567".
[[nodiscard]] std::string with_commas(std::uint64_t value);
/// 1234567890 (with unit scaling) -> "1,234.6M"; below 1M -> commas.
[[nodiscard]] std::string human_count(std::uint64_t value);
/// 0.3371 -> "33.7%".
[[nodiscard]] std::string percent(double fraction, int decimals = 1);
/// Fixed decimals: format_double(1.2345, 2) -> "1.23".
[[nodiscard]] std::string format_double(double value, int decimals = 2);

/// RFC 4180 cell escaping: cells containing a comma, double quote, CR,
/// or LF are wrapped in double quotes with embedded quotes doubled;
/// clean cells pass through verbatim.
[[nodiscard]] std::string csv_escape(const std::string& cell);

/// Writes rows as CSV. Cells are escaped with csv_escape, so community
/// strings, session labels, and free-text columns round-trip through
/// spreadsheet tools regardless of content.
void write_csv(const std::string& path,
               const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace bgpcc::core
