// Pipeline-wide metrics: sharded counters, gauges, fixed-bucket
// histograms, RAII stage timers, and Prometheus/JSON exposition.
//
// Design contract (see docs/METRICS.md for the metric inventory):
//  - The hot path never takes a lock and never allocates: Counter::inc
//    is a single relaxed fetch_add on a per-thread stripe, Gauge
//    updates are one relaxed RMW, and Histogram::observe is a handful
//    of relaxed RMWs. Aggregation happens only on read (render).
//  - Timing is opt-in at runtime: StageTimer reads the clock only when
//    obs::set_enabled(true) has been called (the CLI does this when a
//    --metrics sink is attached). With the gate off, a StageTimer is a
//    branch on one relaxed atomic load.
//  - Metrics never feed back into analysis results, so the engine's
//    byte-identical deterministic-output contract is untouched whether
//    the gate is on or off (tests/obs_test.cpp proves this
//    differentially).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bgpcc::obs {

/// Turns stage timing on or off process-wide. Counters and gauges
/// always update (they are a few relaxed atomic operations); only
/// clock reads are gated. The gate starts off, so a run without a
/// metrics sink never reads the clock.
void set_enabled(bool on);

/// Whether stage timing is currently enabled (relaxed load).
[[nodiscard]] bool enabled();

/// Ordered label set attached to one metric series, e.g.
/// `{{"stage", "decode"}}`. Order is preserved in the rendered output.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing counter, sharded across cache-line-padded
/// stripes so concurrent writers on different threads do not contend.
/// Each thread hashes to a fixed stripe; value() sums the stripes.
class Counter {
 public:
  /// Adds `n` to the calling thread's stripe (relaxed).
  void inc(std::uint64_t n = 1) noexcept;

  /// Sum of all stripes (relaxed loads; exact once writers quiesce,
  /// a consistent-enough snapshot while they run).
  [[nodiscard]] std::uint64_t value() const noexcept;

  /// Zeroes every stripe. Test/reset-epoch helper, not for hot paths.
  void reset() noexcept;

 private:
  static constexpr std::size_t kStripes = 16;
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  Stripe stripes_[kStripes];
};

/// Last-write-wins signed gauge (queue occupancy, in-flight work).
/// All operations are single relaxed atomics.
class Gauge {
 public:
  /// Replaces the current value.
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }

  /// Adds `n` (may be negative via sub()).
  void add(std::int64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Subtracts `n`.
  void sub(std::int64_t n = 1) noexcept {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }

  /// Current value (relaxed load).
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  /// Resets to zero.
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram of durations in seconds. Bucket upper bounds
/// are set at registration and never change; observe() is a short
/// linear scan plus three relaxed fetch_adds (bucket, count, sum).
/// Counts are stored per-bucket and cumulated only when rendered, so
/// writers never touch more than one bucket.
class Histogram {
 public:
  /// `bounds` are strictly increasing upper bucket edges in seconds; an
  /// implicit +Inf bucket is appended. Values on an edge fall into that
  /// edge's bucket (Prometheus `le` semantics).
  explicit Histogram(std::vector<double> bounds);

  /// Records one observation of `seconds` (relaxed atomics only).
  void observe(double seconds) noexcept;

  /// Upper bucket edges as configured (without the implicit +Inf).
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }

  /// Non-cumulative count of observations in bucket `i`
  /// (i in [0, bounds().size()]; the last index is the +Inf bucket).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept;

  /// Total number of observations.
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }

  /// Sum of all observed values in seconds (accumulated internally in
  /// integer nanoseconds, so sums stay exact across threads).
  [[nodiscard]] double sum() const noexcept;

  /// Zeroes counts and sum. Test/reset-epoch helper.
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Default duration bucket edges: decades from 1µs to 100s. Suits both
/// per-chunk stages (µs–ms) and whole-window wall times (ms–s).
[[nodiscard]] std::vector<double> default_duration_buckets();

/// RAII span that observes its own lifetime into a Histogram. Reads
/// the steady clock only when the histogram is non-null and
/// obs::enabled() is true; otherwise construction and destruction are
/// a branch each.
class StageTimer {
 public:
  /// Starts timing into `hist` (nullptr → inert timer).
  explicit StageTimer(Histogram* hist) noexcept;

  /// Observes the elapsed time unless stop() already did.
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  /// Observes the elapsed time now and disarms the destructor.
  void stop() noexcept;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// A named collection of metric families. One process-wide instance
/// (global()) backs the instrumented pipeline; tests construct private
/// registries for fully controlled render output.
///
/// Registration (counter()/gauge()/histogram()) takes a mutex and
/// returns a reference with a stable address for the registry's
/// lifetime — instrumented code registers once and keeps the pointer,
/// so steady-state updates never touch the registry lock. Re-registering
/// the same (name, labels) pair returns the existing instrument.
class Registry {
 public:
  Registry();
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry used by the instrumented pipeline.
  [[nodiscard]] static Registry& global();

  /// Registers (or finds) a counter series. `help` is recorded on
  /// first registration of the family name.
  Counter& counter(std::string_view name, std::string_view help,
                   Labels labels = {});

  /// Registers (or finds) a gauge series.
  Gauge& gauge(std::string_view name, std::string_view help,
               Labels labels = {});

  /// Registers (or finds) a histogram series with the given bucket
  /// edges (see Histogram). Edges must match any prior registration of
  /// the same family.
  Histogram& histogram(std::string_view name, std::string_view help,
                       std::vector<double> bounds, Labels labels = {});

  /// Renders every family in the Prometheus text exposition format
  /// (HELP/TYPE comments, cumulative `_bucket{le=...}` histograms),
  /// families sorted by name, series in registration order.
  void render_prometheus(std::ostream& out) const;

  /// Renders the same data as a single JSON object:
  /// `{"metrics": [{"name", "type", "help", "series": [...]}]}`.
  void render_json(std::ostream& out) const;

  /// Zeroes every instrument (counts, sums, gauge values); the family
  /// and series structure is kept. Test/fresh-run helper.
  void reset();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Renders the global registry in Prometheus text exposition format.
void render_prometheus(std::ostream& out);

/// Renders the global registry as JSON.
void render_json(std::ostream& out);

}  // namespace bgpcc::obs
