#include "obs/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <ostream>
#include <stdexcept>

namespace bgpcc::obs {

namespace {

std::atomic<bool> g_enabled{false};

// Round-robin stripe assignment: each thread grabs the next stripe id
// once and caches it in a thread_local, so inc() costs one TLS read
// and one relaxed fetch_add.
std::size_t stripe_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

// Shortest round-trip decimal for a double ("0.001", "1e-06", "+Inf").
std::string format_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "0";
  return std::string(buf, ptr);
}

// Prometheus label-value escaping: backslash, double quote, newline.
void write_escaped_label(std::ostream& out, std::string_view v) {
  for (char c : v) {
    switch (c) {
      case '\\':
        out << "\\\\";
        break;
      case '"':
        out << "\\\"";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        out << c;
    }
  }
}

// Minimal JSON string escaping (the metric names and labels we emit
// are ASCII identifiers, but stay correct for arbitrary input).
void write_json_string(std::ostream& out, std::string_view v) {
  out << '"';
  for (char c : v) {
    switch (c) {
      case '\\':
        out << "\\\\";
        break;
      case '"':
        out << "\\\"";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Counter::inc(std::uint64_t n) noexcept {
  stripes_[stripe_index() % kStripes].v.fetch_add(n,
                                                  std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Stripe& s : stripes_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (Stripe& s : stripes_) {
    s.v.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("obs: histogram bounds must be sorted");
  }
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double seconds) noexcept {
  std::size_t i = 0;
  while (i < bounds_.size() && seconds > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const double ns = seconds * 1e9;
  sum_ns_.fetch_add(ns > 0 ? static_cast<std::uint64_t>(ns) : 0,
                    std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const noexcept {
  return buckets_[i].load(std::memory_order_relaxed);
}

double Histogram::sum() const noexcept {
  return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1e9;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

std::vector<double> default_duration_buckets() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0};
}

StageTimer::StageTimer(Histogram* hist) noexcept
    : hist_(hist != nullptr && enabled() ? hist : nullptr) {
  if (hist_ != nullptr) start_ = std::chrono::steady_clock::now();
}

StageTimer::~StageTimer() { stop(); }

void StageTimer::stop() noexcept {
  if (hist_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  hist_->observe(std::chrono::duration<double>(elapsed).count());
  hist_ = nullptr;
}

namespace {

enum class Kind { kCounter, kGauge, kHistogram };

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::kCounter:
      return "counter";
    case Kind::kGauge:
      return "gauge";
    case Kind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

struct Series {
  Labels labels;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct Family {
  Kind kind;
  std::string help;
  std::vector<std::unique_ptr<Series>> series;
};

void write_label_set(std::ostream& out, const Labels& labels) {
  if (labels.empty()) return;
  out << '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out << ',';
    first = false;
    out << key << "=\"";
    write_escaped_label(out, value);
    out << '"';
  }
  out << '}';
}

// Label set for a histogram _bucket line: the series labels plus le.
void write_bucket_labels(std::ostream& out, const Labels& labels,
                         const std::string& le) {
  out << '{';
  for (const auto& [key, value] : labels) {
    out << key << "=\"";
    write_escaped_label(out, value);
    out << "\",";
  }
  out << "le=\"" << le << "\"}";
}

}  // namespace

struct Registry::Impl {
  mutable std::mutex mu;
  // Ordered by name so the rendered output is stable.
  std::map<std::string, Family, std::less<>> families;

  // Finds or creates the series and its instrument under one lock, so
  // a concurrent render never sees a series without an instrument.
  Series& find_or_add(std::string_view name, std::string_view help, Kind kind,
                      Labels&& labels,
                      const std::vector<double>* bounds = nullptr) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = families.find(name);
    if (it == families.end()) {
      it = families
               .emplace(std::string(name), Family{kind, std::string(help), {}})
               .first;
    } else if (it->second.kind != kind) {
      throw std::invalid_argument("obs: metric registered with two types: " +
                                  std::string(name));
    }
    for (const auto& s : it->second.series) {
      if (s->labels == labels) return *s;
    }
    auto& added = it->second.series.emplace_back(std::make_unique<Series>());
    added->labels = std::move(labels);
    switch (kind) {
      case Kind::kCounter:
        added->counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        added->gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        added->histogram = std::make_unique<Histogram>(*bounds);
        break;
    }
    return *added;
  }
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}
Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name, std::string_view help,
                           Labels labels) {
  return *impl_->find_or_add(name, help, Kind::kCounter, std::move(labels))
              .counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help,
                       Labels labels) {
  return *impl_->find_or_add(name, help, Kind::kGauge, std::move(labels)).gauge;
}

Histogram& Registry::histogram(std::string_view name, std::string_view help,
                               std::vector<double> bounds, Labels labels) {
  return *impl_
              ->find_or_add(name, help, Kind::kHistogram, std::move(labels),
                            &bounds)
              .histogram;
}

void Registry::render_prometheus(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& [name, family] : impl_->families) {
    if (!family.help.empty()) {
      out << "# HELP " << name << ' ' << family.help << '\n';
    }
    out << "# TYPE " << name << ' ' << kind_name(family.kind) << '\n';
    for (const auto& s : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          out << name;
          write_label_set(out, s->labels);
          out << ' ' << s->counter->value() << '\n';
          break;
        case Kind::kGauge:
          out << name;
          write_label_set(out, s->labels);
          out << ' ' << s->gauge->value() << '\n';
          break;
        case Kind::kHistogram: {
          const Histogram& h = *s->histogram;
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += h.bucket_count(i);
            out << name << "_bucket";
            write_bucket_labels(out, s->labels, format_double(h.bounds()[i]));
            out << ' ' << cumulative << '\n';
          }
          out << name << "_bucket";
          write_bucket_labels(out, s->labels, "+Inf");
          out << ' ' << h.count() << '\n';
          out << name << "_sum";
          write_label_set(out, s->labels);
          out << ' ' << format_double(h.sum()) << '\n';
          out << name << "_count";
          write_label_set(out, s->labels);
          out << ' ' << h.count() << '\n';
          break;
        }
      }
    }
  }
}

void Registry::render_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  out << "{\"metrics\":[";
  bool first_family = true;
  for (const auto& [name, family] : impl_->families) {
    if (!first_family) out << ',';
    first_family = false;
    out << "{\"name\":";
    write_json_string(out, name);
    out << ",\"type\":\"" << kind_name(family.kind) << "\",\"help\":";
    write_json_string(out, family.help);
    out << ",\"series\":[";
    bool first_series = true;
    for (const auto& s : family.series) {
      if (!first_series) out << ',';
      first_series = false;
      out << "{\"labels\":{";
      bool first_label = true;
      for (const auto& [key, value] : s->labels) {
        if (!first_label) out << ',';
        first_label = false;
        write_json_string(out, key);
        out << ':';
        write_json_string(out, value);
      }
      out << '}';
      switch (family.kind) {
        case Kind::kCounter:
          out << ",\"value\":" << s->counter->value();
          break;
        case Kind::kGauge:
          out << ",\"value\":" << s->gauge->value();
          break;
        case Kind::kHistogram: {
          const Histogram& h = *s->histogram;
          out << ",\"count\":" << h.count()
              << ",\"sum\":" << format_double(h.sum()) << ",\"buckets\":[";
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += h.bucket_count(i);
            if (i != 0) out << ',';
            out << "{\"le\":" << format_double(h.bounds()[i])
                << ",\"count\":" << cumulative << '}';
          }
          if (!h.bounds().empty()) out << ',';
          out << "{\"le\":\"+Inf\",\"count\":" << h.count() << "}]";
          break;
        }
      }
      out << '}';
    }
    out << "]}";
  }
  out << "]}";
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, family] : impl_->families) {
    for (auto& s : family.series) {
      if (s->counter) s->counter->reset();
      if (s->gauge) s->gauge->reset();
      if (s->histogram) s->histogram->reset();
    }
  }
}

void render_prometheus(std::ostream& out) {
  Registry::global().render_prometheus(out);
}

void render_json(std::ostream& out) { Registry::global().render_json(out); }

}  // namespace bgpcc::obs
