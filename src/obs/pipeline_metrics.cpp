#include "obs/pipeline_metrics.h"

#include <string>

namespace bgpcc::obs {

namespace {

constexpr const char* kCodecNames[PipelineMetrics::kCodecs] = {"none", "gzip",
                                                               "bzip2"};

constexpr const char* kIngestStageHelp =
    "Wall time per ingest pipeline stage, seconds";
constexpr const char* kAnalysisStageHelp =
    "Wall time per analysis driver stage, seconds";

Histogram& stage_histogram(Registry& r, const char* family, const char* help,
                           const char* stage) {
  return r.histogram(family, help, default_duration_buckets(),
                     {{"stage", stage}});
}

PipelineMetrics build() {
  Registry& r = Registry::global();
  PipelineMetrics m;
  for (std::size_t c = 0; c < PipelineMetrics::kCodecs; ++c) {
    const Labels labels{{"codec", kCodecNames[c]}};
    m.source_opened[c] =
        &r.counter("bgpcc_source_opened_total",
                   "MRT byte sources opened, by compression codec", labels);
    m.source_compressed_bytes[c] = &r.counter(
        "bgpcc_source_compressed_bytes_total",
        "Bytes read from the underlying stream before decompression", labels);
    m.source_bytes[c] =
        &r.counter("bgpcc_source_bytes_total",
                   "Decompressed bytes handed to the MRT framer", labels);
  }

  const char* ingest = "bgpcc_ingest_stage_seconds";
  m.ingest_frame = &stage_histogram(r, ingest, kIngestStageHelp, "frame");
  m.ingest_decode = &stage_histogram(r, ingest, kIngestStageHelp, "decode");
  m.ingest_clean = &stage_histogram(r, ingest, kIngestStageHelp, "clean");
  m.ingest_observe = &stage_histogram(r, ingest, kIngestStageHelp, "observe");
  m.ingest_merge = &stage_histogram(r, ingest, kIngestStageHelp, "merge");
  m.ingest_spill = &stage_histogram(r, ingest, kIngestStageHelp, "spill");
  m.ingest_run_merge =
      &stage_histogram(r, ingest, kIngestStageHelp, "run_merge");
  m.ingest_window = &stage_histogram(r, ingest, kIngestStageHelp, "window");
  m.ingest_prefetch_wait =
      &stage_histogram(r, ingest, kIngestStageHelp, "prefetch_wait");

  m.ingest_windows =
      &r.counter("bgpcc_ingest_windows_total", "Ingest windows processed");
  m.ingest_chunks =
      &r.counter("bgpcc_ingest_chunks_total", "MRT chunks decoded");
  m.ingest_raw_records = &r.counter("bgpcc_ingest_raw_records_total",
                                    "Records decoded before cleaning");
  m.ingest_records = &r.counter("bgpcc_ingest_records_total",
                                "Per-prefix update records decoded");
  m.ingest_update_messages = &r.counter("bgpcc_ingest_update_messages_total",
                                        "BGP UPDATE messages decoded");
  m.ingest_spilled_runs = &r.counter("bgpcc_ingest_spilled_runs_total",
                                     "Sorted runs spilled to disk");
  m.ingest_decode_in_flight =
      &r.gauge("bgpcc_ingest_decode_in_flight",
               "Decode chunk groups currently queued or running");

  m.pool_tasks =
      &r.counter("bgpcc_pool_tasks_total", "Worker pool tasks executed");
  m.pool_help_hits =
      &r.counter("bgpcc_pool_help_hits_total",
                 "Tasks run by waiters helping while blocked in wait()");
  m.pool_queue_wait =
      &r.histogram("bgpcc_pool_queue_wait_seconds",
                   "Submit-to-start latency per worker pool task, seconds",
                   default_duration_buckets());

  const char* analysis = "bgpcc_analysis_stage_seconds";
  m.analysis_merge = &stage_histogram(r, analysis, kAnalysisStageHelp, "merge");
  m.analysis_snapshot =
      &stage_histogram(r, analysis, kAnalysisStageHelp, "snapshot");
  m.analysis_snapshot_clone =
      &stage_histogram(r, analysis, kAnalysisStageHelp, "snapshot_clone");
  m.analysis_snapshot_merge =
      &stage_histogram(r, analysis, kAnalysisStageHelp, "snapshot_merge");
  m.analysis_checkpoint =
      &stage_histogram(r, analysis, kAnalysisStageHelp, "checkpoint");
  m.analysis_restore =
      &stage_histogram(r, analysis, kAnalysisStageHelp, "restore");

  m.analysis_epoch = &r.gauge("bgpcc_analysis_epoch",
                              "Latest snapshot epoch issued by a driver");
  m.analysis_snapshots =
      &r.counter("bgpcc_analysis_snapshots_total", "snapshot() calls served");
  m.analysis_observe_records =
      &r.counter("bgpcc_analysis_observe_records_total",
                 "Records routed through AnalysisDriver::observe_shard");
  return m;
}

}  // namespace

const PipelineMetrics& pipeline_metrics() {
  static const PipelineMetrics metrics = build();
  return metrics;
}

Histogram& pass_merge_histogram(std::size_t pass_index) {
  return Registry::global().histogram(
      "bgpcc_analysis_pass_merge_seconds",
      "Per-pass snapshot merge wall time, seconds",
      default_duration_buckets(), {{"pass", std::to_string(pass_index)}});
}

}  // namespace bgpcc::obs
