// The pipeline's metric inventory: every counter, gauge, and histogram
// the instrumented engine updates, registered eagerly in
// Registry::global() so an exposition always contains every series
// (zero-valued until its stage runs). One struct of stable pointers —
// instrumented code fetches it once (function-local static, thread-safe
// init) and never touches the registry lock again.
//
// Names, labels, and stages are documented in docs/METRICS.md; changing
// anything here is a consumer-visible interface change.
#pragma once

#include <cstddef>

#include "obs/metrics.h"

namespace bgpcc::obs {

/// Pointers to every pre-registered pipeline metric series. Obtain via
/// pipeline_metrics(); all pointers are non-null and live for the
/// process lifetime.
struct PipelineMetrics {
  /// Codec index for the source-layer arrays: plain file/stream I/O.
  static constexpr std::size_t kCodecNone = 0;
  /// Codec index for gzip-compressed sources.
  static constexpr std::size_t kCodecGzip = 1;
  /// Codec index for bzip2-compressed sources.
  static constexpr std::size_t kCodecBzip2 = 2;
  /// Number of codec-indexed series per source-layer family.
  static constexpr std::size_t kCodecs = 3;

  /// bgpcc_source_opened_total{codec}: sources opened, by codec.
  Counter* source_opened[kCodecs];
  /// bgpcc_source_compressed_bytes_total{codec}: bytes read from the
  /// underlying stream before decompression (equals the raw byte count
  /// for codec="none").
  Counter* source_compressed_bytes[kCodecs];
  /// bgpcc_source_bytes_total{codec}: decompressed bytes handed to the
  /// MRT framer.
  Counter* source_bytes[kCodecs];

  /// bgpcc_ingest_stage_seconds{stage="frame"}: wall time framing raw
  /// bytes into length-delimited MRT chunks.
  Histogram* ingest_frame;
  /// bgpcc_ingest_stage_seconds{stage="decode"}: per-chunk MRT decode.
  Histogram* ingest_decode;
  /// bgpcc_ingest_stage_seconds{stage="clean"}: per-window parallel
  /// shard clean (dedup/session cleaning).
  Histogram* ingest_clean;
  /// bgpcc_ingest_stage_seconds{stage="observe"}: per-window shard
  /// observer callbacks (the analysis observe hook).
  Histogram* ingest_observe;
  /// bgpcc_ingest_stage_seconds{stage="merge"}: per-window tournament
  /// merge into arrival order.
  Histogram* ingest_merge;
  /// bgpcc_ingest_stage_seconds{stage="spill"}: writing one sorted run
  /// to the spill directory.
  Histogram* ingest_spill;
  /// bgpcc_ingest_stage_seconds{stage="run_merge"}: merging spilled
  /// runs back into one stream at finish.
  Histogram* ingest_run_merge;
  /// bgpcc_ingest_stage_seconds{stage="window"}: whole-window wall time
  /// (frame+decode wait through commit).
  Histogram* ingest_window;
  /// bgpcc_ingest_stage_seconds{stage="prefetch_wait"}: time the
  /// committing thread waited for the pipelined next window's decode
  /// group (0 ≈ perfect overlap).
  Histogram* ingest_prefetch_wait;

  /// bgpcc_ingest_windows_total: windows processed.
  Counter* ingest_windows;
  /// bgpcc_ingest_chunks_total: MRT chunks decoded.
  Counter* ingest_chunks;
  /// bgpcc_ingest_raw_records_total: records decoded before cleaning.
  Counter* ingest_raw_records;
  /// bgpcc_ingest_records_total: exploded per-prefix update records
  /// decoded (pre-clean, matching IngestStats::records).
  Counter* ingest_records;
  /// bgpcc_ingest_update_messages_total: BGP UPDATE messages seen.
  Counter* ingest_update_messages;
  /// bgpcc_ingest_spilled_runs_total: sorted runs spilled to disk.
  Counter* ingest_spilled_runs;
  /// bgpcc_ingest_decode_in_flight: decode chunk groups currently
  /// queued or running (bounded queue occupancy).
  Gauge* ingest_decode_in_flight;

  /// bgpcc_pool_tasks_total: tasks executed by the worker pool
  /// (workers and helping waiters combined).
  Counter* pool_tasks;
  /// bgpcc_pool_help_hits_total: tasks a waiter stole and ran while
  /// blocked in WorkerPool::wait.
  Counter* pool_help_hits;
  /// bgpcc_pool_queue_wait_seconds: submit-to-start latency per task.
  Histogram* pool_queue_wait;

  /// bgpcc_analysis_stage_seconds{stage="merge"}: folding an external
  /// partial-state/checkpoint file into the driver (load_state — the
  /// bgpcc-merge combine path).
  Histogram* analysis_merge;
  /// bgpcc_analysis_stage_seconds{stage="snapshot"}: whole snapshot()
  /// call (clone + merge).
  Histogram* analysis_snapshot;
  /// bgpcc_analysis_stage_seconds{stage="snapshot_clone"}: the
  /// under-lock clone phase of snapshot().
  Histogram* analysis_snapshot_clone;
  /// bgpcc_analysis_stage_seconds{stage="snapshot_merge"}: the
  /// outside-lock merge phase of snapshot().
  Histogram* analysis_snapshot_merge;
  /// bgpcc_analysis_stage_seconds{stage="checkpoint"}: serializing a
  /// checkpoint (driver state + ingest cursor).
  Histogram* analysis_checkpoint;
  /// bgpcc_analysis_stage_seconds{stage="restore"}: deserializing a
  /// checkpoint back into the driver.
  Histogram* analysis_restore;

  /// bgpcc_analysis_epoch: latest snapshot epoch issued by a driver
  /// (AnalysisDriver's monotone epoch counter, exported as a gauge).
  Gauge* analysis_epoch;
  /// bgpcc_analysis_snapshots_total: snapshot() calls served.
  Counter* analysis_snapshots;
  /// bgpcc_analysis_observe_records_total: records routed through
  /// AnalysisDriver::observe_shard across all passes' shards.
  Counter* analysis_observe_records;
};

/// The process-wide pipeline metric set, registered in
/// Registry::global() on first use (thread-safe).
[[nodiscard]] const PipelineMetrics& pipeline_metrics();

/// Per-pass snapshot-merge timing series,
/// bgpcc_analysis_pass_merge_seconds{pass="<index>"} where `<index>`
/// is the pass's registration order in its AnalysisDriver. Registered
/// on demand; cheap enough for per-snapshot use, not for per-record
/// paths.
[[nodiscard]] Histogram& pass_merge_histogram(std::size_t pass_index);

}  // namespace bgpcc::obs
