// The three RIB stages of a BGP speaker (RFC 4271 §3.2):
//   Adj-RIB-In  — routes learned from one neighbor, post import policy
//   Loc-RIB     — the selected best route per prefix
//   Adj-RIB-Out — what was last advertised to one neighbor, post export
//                 policy (the state Junos-like speakers compare against to
//                 suppress duplicate advertisements).
#pragma once

#include <optional>

#include "rib/route.h"
#include "rib/trie.h"

namespace bgpcc {

/// Result of writing an entry into a RIB stage.
enum class RibChange {
  kNew,        // prefix was not present
  kChanged,    // present with different attributes
  kUnchanged,  // present and identical — the "duplicate" case
};

/// Routes learned from a single neighbor (after import policy).
class AdjRibIn {
 public:
  /// Stores/overwrites the route; reports whether anything changed.
  RibChange update(const Route& route);
  /// Removes the prefix; true if a route was present.
  bool withdraw(const Prefix& prefix);

  [[nodiscard]] const Route* find(const Prefix& prefix) const {
    return table_.find(prefix);
  }
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] std::vector<Prefix> prefixes() const { return table_.keys(); }
  void clear() { table_.clear(); }

 private:
  PrefixTrie<Route> table_;
};

/// The router's selected best routes.
class LocRib {
 public:
  RibChange set_best(const Prefix& prefix, const Route& route);
  bool remove(const Prefix& prefix);

  [[nodiscard]] const Route* find(const Prefix& prefix) const {
    return table_.find(prefix);
  }
  [[nodiscard]] std::optional<std::pair<Prefix, const Route*>> lookup(
      const IpAddress& addr) const {
    return table_.lookup(addr);
  }
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] std::vector<Prefix> prefixes() const { return table_.keys(); }
  void for_each(
      const std::function<void(const Prefix&, const Route&)>& fn) const {
    table_.for_each(fn);
  }

 private:
  PrefixTrie<Route> table_;
};

/// What was last sent to a single neighbor (after export policy).
class AdjRibOut {
 public:
  /// Records an advertisement; kUnchanged means an identical update would
  /// be a duplicate on the wire.
  RibChange advertise(const Prefix& prefix, const PathAttributes& attrs);
  /// Records a withdrawal; true if the prefix had been advertised.
  bool withdraw(const Prefix& prefix);

  [[nodiscard]] const PathAttributes* find(const Prefix& prefix) const {
    return table_.find(prefix);
  }
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] std::vector<Prefix> prefixes() const { return table_.keys(); }
  void clear() { table_.clear(); }

 private:
  PrefixTrie<PathAttributes> table_;
};

}  // namespace bgpcc
