// A route: prefix + attributes + where it was learned. The unit the
// decision process ranks and the RIBs store.
#pragma once

#include <compare>
#include <cstdint>

#include "bgp/attributes.h"
#include "netbase/prefix.h"
#include "netbase/timeutil.h"

namespace bgpcc {

/// Identifies the BGP session a route was learned over, with the fields the
/// decision process needs for its lower tie-break steps.
struct RouteSource {
  /// Router-local neighbor/session handle (stable for the session's life).
  std::uint32_t neighbor_id = 0;
  Asn peer_asn;
  IpAddress peer_address;
  std::uint32_t peer_router_id = 0;
  /// True if learned over eBGP (preferred over iBGP at step e).
  bool ebgp = true;
  /// IGP distance to the route's NEXT_HOP (step f). The simulator
  /// approximates the IGP with per-session static metrics.
  std::uint32_t igp_metric = 0;

  friend auto operator<=>(const RouteSource&, const RouteSource&) = default;
};

struct Route {
  Prefix prefix;
  PathAttributes attrs;
  RouteSource source;
  Timestamp learned_at;

  friend auto operator<=>(const Route&, const Route&) = default;
};

}  // namespace bgpcc
