// RFC 4271 §9.1.2.2 best-path selection.
#pragma once

#include <cstdint>
#include <span>

#include "rib/route.h"

namespace bgpcc {

/// Knobs for the decision process. Defaults follow common vendor practice.
struct DecisionConfig {
  /// LOCAL_PREF assumed when the attribute is absent (eBGP-learned routes).
  std::uint32_t default_local_pref = 100;
  /// If true, a missing MED compares as the worst value (RFC suggestion);
  /// if false, as 0/best (Cisco default).
  bool med_missing_as_worst = false;
  /// If true, compare MED across different neighbor ASes too
  /// ("always-compare-med"); default only within the same neighbor AS.
  bool always_compare_med = false;
};

/// Returns true if `a` is strictly preferred to `b`. Both routes must be
/// for the same prefix (not checked).
///
/// Caveat faithfully inherited from BGP itself: with the default
/// same-neighbor-AS MED rule this relation is NOT transitive (the
/// well-known MED ordering anomaly), so selection among >2 routes is
/// order-dependent exactly as it is on real routers. select_best() scans
/// deterministically; with `always_compare_med` the order is a strict
/// weak ordering.
[[nodiscard]] bool better_route(const Route& a, const Route& b,
                                const DecisionConfig& config = {});

/// Selects the best route, or nullptr if `candidates` is empty.
/// Deterministic: ties are impossible because the final tie-breakers
/// (router id, peer address, neighbor id) form a total order per session.
[[nodiscard]] const Route* select_best(std::span<const Route> candidates,
                                       const DecisionConfig& config = {});

}  // namespace bgpcc
