#include "rib/rib.h"

namespace bgpcc {

RibChange AdjRibIn::update(const Route& route) {
  if (Route* existing = table_.find(route.prefix)) {
    // Identity of the *attributes* decides duplicate-ness; learned_at and
    // source bookkeeping are refreshed either way.
    bool same = existing->attrs == route.attrs;
    *existing = route;
    return same ? RibChange::kUnchanged : RibChange::kChanged;
  }
  table_.insert(route.prefix, route);
  return RibChange::kNew;
}

bool AdjRibIn::withdraw(const Prefix& prefix) { return table_.erase(prefix); }

RibChange LocRib::set_best(const Prefix& prefix, const Route& route) {
  if (Route* existing = table_.find(prefix)) {
    bool same_attrs = existing->attrs == route.attrs;
    bool same_source = existing->source == route.source;
    *existing = route;
    if (same_attrs && same_source) return RibChange::kUnchanged;
    return RibChange::kChanged;
  }
  table_.insert(prefix, route);
  return RibChange::kNew;
}

bool LocRib::remove(const Prefix& prefix) { return table_.erase(prefix); }

RibChange AdjRibOut::advertise(const Prefix& prefix,
                               const PathAttributes& attrs) {
  if (PathAttributes* existing = table_.find(prefix)) {
    bool same = *existing == attrs;
    *existing = attrs;
    return same ? RibChange::kUnchanged : RibChange::kChanged;
  }
  table_.insert(prefix, attrs);
  return RibChange::kNew;
}

bool AdjRibOut::withdraw(const Prefix& prefix) { return table_.erase(prefix); }

}  // namespace bgpcc
