// Binary prefix trie: the routing-table index. One tree per address family
// (IPv4/IPv6 keys must not mix); deterministic in-order traversal gives
// reproducible iteration for the simulator and tests.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "netbase/prefix.h"

namespace bgpcc {

/// Maps Prefix -> T with exact-match and longest-prefix-match lookups.
///
/// A plain (uncompressed) binary trie: simple to reason about, O(prefix
/// length) per operation, and fast enough for simulation-scale tables.
/// Traversal order is (shorter first at equal position, then by address
/// bits), i.e. standard prefix order.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() = default;

  /// Inserts or overwrites. Returns true if the prefix was newly added.
  bool insert(const Prefix& prefix, T value) {
    Node* node = descend_or_create(prefix);
    bool fresh = !node->value.has_value();
    node->value = std::move(value);
    if (fresh) ++size_;
    return fresh;
  }

  /// Returns the stored value for exactly this prefix, or nullptr.
  [[nodiscard]] T* find(const Prefix& prefix) {
    Node* node = descend(prefix);
    return (node != nullptr && node->value) ? &*node->value : nullptr;
  }
  [[nodiscard]] const T* find(const Prefix& prefix) const {
    return const_cast<PrefixTrie*>(this)->find(prefix);
  }

  /// Removes the exact prefix. Returns true if it was present.
  /// (Nodes are not pruned; tables in this codebase shrink rarely and
  /// re-grow at the same keys.)
  bool erase(const Prefix& prefix) {
    Node* node = descend(prefix);
    if (node == nullptr || !node->value) return false;
    node->value.reset();
    --size_;
    return true;
  }

  /// Longest-prefix match for an address: the most specific stored prefix
  /// containing `addr`, or nullopt.
  [[nodiscard]] std::optional<std::pair<Prefix, const T*>> lookup(
      const IpAddress& addr) const {
    const Node* node = root_for(addr.family());
    std::optional<std::pair<Prefix, const T*>> best;
    int depth = 0;
    while (node != nullptr) {
      if (node->value) {
        best = {Prefix(addr.masked(depth), depth), &*node->value};
      }
      if (depth >= addr.bit_width()) break;
      node = node->children[addr.bit(depth) ? 1 : 0].get();
      ++depth;
    }
    return best;
  }

  /// In-order visit of all (prefix, value) pairs of both families
  /// (IPv4 subtree first).
  void for_each(
      const std::function<void(const Prefix&, const T&)>& fn) const {
    std::vector<bool> bits;
    visit(v4_root_.get(), AddressFamily::kIpv4, bits, fn);
    bits.clear();
    visit(v6_root_.get(), AddressFamily::kIpv6, bits, fn);
  }

  /// Mutable visit (values only; keys are fixed).
  void for_each_mutable(const std::function<void(const Prefix&, T&)>& fn) {
    std::vector<bool> bits;
    visit_mutable(v4_root_.get(), AddressFamily::kIpv4, bits, fn);
    bits.clear();
    visit_mutable(v6_root_.get(), AddressFamily::kIpv6, bits, fn);
  }

  /// All stored prefixes in traversal order.
  [[nodiscard]] std::vector<Prefix> keys() const {
    std::vector<Prefix> out;
    out.reserve(size_);
    for_each([&](const Prefix& p, const T&) { out.push_back(p); });
    return out;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  void clear() {
    v4_root_.reset();
    v6_root_.reset();
    size_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::array<std::unique_ptr<Node>, 2> children;
  };

  [[nodiscard]] const Node* root_for(AddressFamily family) const {
    return family == AddressFamily::kIpv4 ? v4_root_.get() : v6_root_.get();
  }

  Node* descend(const Prefix& prefix) {
    auto& root =
        prefix.family() == AddressFamily::kIpv4 ? v4_root_ : v6_root_;
    Node* node = root.get();
    for (int i = 0; node != nullptr && i < prefix.length(); ++i) {
      node = node->children[prefix.address().bit(i) ? 1 : 0].get();
    }
    return node;
  }

  Node* descend_or_create(const Prefix& prefix) {
    auto& root =
        prefix.family() == AddressFamily::kIpv4 ? v4_root_ : v6_root_;
    if (!root) root = std::make_unique<Node>();
    Node* node = root.get();
    for (int i = 0; i < prefix.length(); ++i) {
      auto& child = node->children[prefix.address().bit(i) ? 1 : 0];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    return node;
  }

  static Prefix prefix_from_bits(AddressFamily family,
                                 const std::vector<bool>& bits) {
    std::array<std::uint8_t, 16> bytes{};
    for (std::size_t i = 0; i < bits.size(); ++i) {
      if (bits[i]) bytes[i / 8] |= static_cast<std::uint8_t>(0x80u >> (i % 8));
    }
    IpAddress addr =
        family == AddressFamily::kIpv4
            ? IpAddress::v4(bytes[0], bytes[1], bytes[2], bytes[3])
            : IpAddress::v6(bytes);
    return Prefix(addr, static_cast<int>(bits.size()));
  }

  void visit(const Node* node, AddressFamily family, std::vector<bool>& bits,
             const std::function<void(const Prefix&, const T&)>& fn) const {
    if (node == nullptr) return;
    if (node->value) fn(prefix_from_bits(family, bits), *node->value);
    for (int b = 0; b < 2; ++b) {
      bits.push_back(b == 1);
      visit(node->children[static_cast<std::size_t>(b)].get(), family, bits,
            fn);
      bits.pop_back();
    }
  }

  void visit_mutable(Node* node, AddressFamily family, std::vector<bool>& bits,
                     const std::function<void(const Prefix&, T&)>& fn) {
    if (node == nullptr) return;
    if (node->value) fn(prefix_from_bits(family, bits), *node->value);
    for (int b = 0; b < 2; ++b) {
      bits.push_back(b == 1);
      visit_mutable(node->children[static_cast<std::size_t>(b)].get(), family,
                    bits, fn);
      bits.pop_back();
    }
  }

  std::unique_ptr<Node> v4_root_;
  std::unique_ptr<Node> v6_root_;
  std::size_t size_ = 0;
};

}  // namespace bgpcc
