#include "rib/decision.h"

namespace bgpcc {
namespace {

std::uint32_t effective_local_pref(const Route& r,
                                   const DecisionConfig& config) {
  return r.attrs.local_pref.value_or(config.default_local_pref);
}

std::uint32_t effective_med(const Route& r, const DecisionConfig& config) {
  if (r.attrs.med) return *r.attrs.med;
  return config.med_missing_as_worst ? 0xffffffffu : 0u;
}

}  // namespace

bool better_route(const Route& a, const Route& b,
                  const DecisionConfig& config) {
  // (b) Highest LOCAL_PREF.
  std::uint32_t lp_a = effective_local_pref(a, config);
  std::uint32_t lp_b = effective_local_pref(b, config);
  if (lp_a != lp_b) return lp_a > lp_b;

  // (c) Shortest AS path (AS_SET counts one; prepending counts fully).
  int len_a = a.attrs.as_path.length();
  int len_b = b.attrs.as_path.length();
  if (len_a != len_b) return len_a < len_b;

  // (d) Lowest ORIGIN (IGP < EGP < INCOMPLETE).
  if (a.attrs.origin != b.attrs.origin) return a.attrs.origin < b.attrs.origin;

  // (e') Lowest MED, only among routes from the same neighbor AS unless
  // always-compare-med is set.
  bool compare_med = config.always_compare_med;
  if (!compare_med) {
    auto first_a = a.attrs.as_path.first_as();
    auto first_b = b.attrs.as_path.first_as();
    compare_med = first_a.has_value() && first_a == first_b;
  }
  if (compare_med) {
    std::uint32_t med_a = effective_med(a, config);
    std::uint32_t med_b = effective_med(b, config);
    if (med_a != med_b) return med_a < med_b;
  }

  // (e) eBGP-learned preferred over iBGP-learned.
  if (a.source.ebgp != b.source.ebgp) return a.source.ebgp;

  // (f) Lowest IGP metric to the NEXT_HOP.
  if (a.source.igp_metric != b.source.igp_metric) {
    return a.source.igp_metric < b.source.igp_metric;
  }

  // (g) Lowest BGP identifier (router id) of the advertising speaker.
  if (a.source.peer_router_id != b.source.peer_router_id) {
    return a.source.peer_router_id < b.source.peer_router_id;
  }

  // Final: lowest peer address, then neighbor id (total order).
  if (a.source.peer_address != b.source.peer_address) {
    return a.source.peer_address < b.source.peer_address;
  }
  return a.source.neighbor_id < b.source.neighbor_id;
}

const Route* select_best(std::span<const Route> candidates,
                         const DecisionConfig& config) {
  const Route* best = nullptr;
  for (const Route& r : candidates) {
    if (best == nullptr || better_route(r, *best, config)) best = &r;
  }
  return best;
}

}  // namespace bgpcc
