// Vendor behavior profiles.
//
// The paper's lab experiments (§3) found one decisive behavioral split
// between Cisco IOS / BIRD and Junos OS: when a Loc-RIB change produces an
// advertisement whose post-export-policy attributes are identical to what
// was already sent (Exp1: internal next-hop switch, Exp3: egress community
// cleaning), Junos compares against Adj-RIB-Out state and stays quiet,
// while Cisco IOS and BIRD transmit the duplicate. All three *do* emit
// updates whose only change is the community attribute (Exp2) — sending
// those is correct per RFC 4271, even though the paper argues they are
// operationally unnecessary.
#pragma once

#include <string>

namespace bgpcc {

struct VendorProfile {
  std::string name;

  /// Compare the freshly computed advertisement with the Adj-RIB-Out entry
  /// and suppress it when identical. Junos: true. Cisco IOS / BIRD: false
  /// (they violate the RFC 4271 §9.2 "shall not" on unchanged routes).
  bool suppress_duplicate_advertisements = false;

  /// Re-advertise when the Loc-RIB change is internal-only (next hop or
  /// source switch with identical transitive attributes). All tested
  /// vendors do; disabling models an "ideal" speaker for ablation benches.
  bool advertise_on_internal_change = true;

  [[nodiscard]] static VendorProfile cisco_ios() {
    return {.name = "cisco-ios",
            .suppress_duplicate_advertisements = false,
            .advertise_on_internal_change = true};
  }
  [[nodiscard]] static VendorProfile junos() {
    return {.name = "junos",
            .suppress_duplicate_advertisements = true,
            .advertise_on_internal_change = true};
  }
  [[nodiscard]] static VendorProfile bird() {
    return {.name = "bird",
            .suppress_duplicate_advertisements = false,
            .advertise_on_internal_change = true};
  }
  /// Hypothetical fully-RFC-compliant speaker (ablation baseline): behaves
  /// like Junos and additionally skips advertisement generation entirely
  /// for internal-only changes.
  [[nodiscard]] static VendorProfile ideal() {
    return {.name = "ideal",
            .suppress_duplicate_advertisements = true,
            .advertise_on_internal_change = false};
  }
};

}  // namespace bgpcc
