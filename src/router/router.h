// A BGP speaker: neighbor sessions, the three RIB stages, the decision
// process, and vendor-profiled update generation. This is the lab router
// from the paper's Figure 1, as a deterministic state machine driven by
// the event simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bgp/message.h"
#include "netbase/timeutil.h"
#include "policy/policy.h"
#include "rib/decision.h"
#include "rib/rib.h"
#include "router/vendor.h"

namespace bgpcc {

/// Message counters; the lab experiments and ablations read these.
struct RouterStats {
  std::uint64_t updates_received = 0;
  std::uint64_t announcements_received = 0;
  std::uint64_t withdrawals_received = 0;
  /// Received announcements identical (post-import) to RIB state.
  std::uint64_t duplicate_updates_received = 0;
  std::uint64_t updates_sent = 0;
  std::uint64_t announcements_sent = 0;
  std::uint64_t withdrawals_sent = 0;
  /// Advertisements with unchanged Adj-RIB-Out state that were sent anyway
  /// (Cisco/BIRD behavior — the "duplicates" of the paper).
  std::uint64_t duplicates_sent = 0;
  /// Advertisements suppressed by the Junos-style Adj-RIB-Out comparison.
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t loop_rejected = 0;
  std::uint64_t denied_by_import = 0;
};

class Router {
 public:
  /// Static per-neighbor session configuration.
  struct NeighborConfig {
    std::uint32_t neighbor_id = 0;  // assigned by the network layer
    Asn peer_asn;
    IpAddress peer_address;
    IpAddress local_address;
    std::uint32_t peer_router_id = 0;
    bool ebgp = true;
    /// Approximated IGP distance to this neighbor's next hops.
    std::uint32_t igp_metric = 10;
    Policy import_policy;
    Policy export_policy;
    /// Rewrite NEXT_HOP to the local address when advertising over iBGP
    /// (always rewritten over eBGP).
    bool next_hop_self = true;
    /// Minimum advertisement interval; zero disables (lab default).
    Duration mrai{};
  };

  /// Callback used to transmit a message to a neighbor.
  using EmitFn =
      std::function<void(std::uint32_t neighbor_id, const UpdateMessage&)>;
  /// Callback used to arm a timer (MRAI flushes).
  using TimerFn = std::function<void(Duration, std::function<void()>)>;

  Router(std::string name, Asn asn, std::uint32_t router_id,
         IpAddress address, VendorProfile vendor);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Asn asn() const { return asn_; }
  [[nodiscard]] std::uint32_t router_id() const { return router_id_; }
  [[nodiscard]] const IpAddress& address() const { return address_; }
  [[nodiscard]] const VendorProfile& vendor() const { return vendor_; }
  [[nodiscard]] const RouterStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  void set_emit(EmitFn fn) { emit_ = std::move(fn); }
  void set_timer(TimerFn fn) { timer_ = std::move(fn); }
  void set_decision_config(const DecisionConfig& config) {
    decision_config_ = config;
  }

  /// Registers a neighbor (session initially down; bring up with
  /// session_up). Throws ConfigError on duplicate neighbor_id.
  void add_neighbor(NeighborConfig config);
  [[nodiscard]] bool has_neighbor(std::uint32_t neighbor_id) const;
  [[nodiscard]] const NeighborConfig& neighbor_config(
      std::uint32_t neighbor_id) const;
  /// Replaces both policies of a neighbor (test/experiment reconfiguration;
  /// takes effect for subsequently processed routes).
  void set_neighbor_policies(std::uint32_t neighbor_id, Policy import_policy,
                             Policy export_policy);

  // --- events, driven by the simulator ---

  void handle_update(std::uint32_t neighbor_id, const UpdateMessage& update,
                     Timestamp now);
  void session_up(std::uint32_t neighbor_id, Timestamp now);
  void session_down(std::uint32_t neighbor_id, Timestamp now);
  [[nodiscard]] bool session_established(std::uint32_t neighbor_id) const;

  // --- origination ---

  /// Injects a locally originated route. `base` supplies communities/MED
  /// etc.; its as_path must be empty and next_hop is forced to the router
  /// address. Locally originated routes always win the decision process.
  void originate(const Prefix& prefix, Timestamp now,
                 PathAttributes base = {});
  void withdraw_origin(const Prefix& prefix, Timestamp now);

  [[nodiscard]] const LocRib& loc_rib() const { return loc_rib_; }
  /// Post-export state toward one neighbor (what that peer last heard).
  [[nodiscard]] const AdjRibOut& adj_rib_out(std::uint32_t neighbor_id) const;
  [[nodiscard]] const AdjRibIn& adj_rib_in(std::uint32_t neighbor_id) const;

 private:
  struct NeighborState {
    NeighborConfig config;
    AdjRibIn rib_in;
    AdjRibOut rib_out;
    bool established = false;
    // MRAI machinery: pending per-prefix actions and timer state.
    std::map<Prefix, std::optional<PathAttributes>> pending;  // nullopt=withdraw
    std::optional<Timestamp> last_send;  // nullopt: nothing sent yet
    bool flush_scheduled = false;
  };

  void process(const Prefix& prefix, Timestamp now);
  void advertise_to(NeighborState& neighbor, const Prefix& prefix,
                    const Route& route, Timestamp now);
  void send_withdraw_if_advertised(NeighborState& neighbor,
                                   const Prefix& prefix, Timestamp now);
  void send(NeighborState& neighbor, const Prefix& prefix,
            std::optional<PathAttributes> attrs, Timestamp now);
  void flush_pending(std::uint32_t neighbor_id, Timestamp now);
  NeighborState& neighbor(std::uint32_t neighbor_id);
  const NeighborState& neighbor(std::uint32_t neighbor_id) const;

  std::string name_;
  Asn asn_;
  std::uint32_t router_id_;
  IpAddress address_;
  VendorProfile vendor_;
  DecisionConfig decision_config_;
  EmitFn emit_;
  TimerFn timer_;
  std::map<std::uint32_t, NeighborState> neighbors_;
  PrefixTrie<PathAttributes> originated_;
  LocRib loc_rib_;
  RouterStats stats_;
};

}  // namespace bgpcc
