#include "router/router.h"

#include <utility>

#include "netbase/error.h"

namespace bgpcc {

Router::Router(std::string name, Asn asn, std::uint32_t router_id,
               IpAddress address, VendorProfile vendor)
    : name_(std::move(name)),
      asn_(asn),
      router_id_(router_id),
      address_(address),
      vendor_(std::move(vendor)) {}

void Router::add_neighbor(NeighborConfig config) {
  auto [it, inserted] =
      neighbors_.try_emplace(config.neighbor_id, NeighborState{});
  if (!inserted) {
    throw ConfigError("duplicate neighbor id " +
                      std::to_string(config.neighbor_id) + " on " + name_);
  }
  it->second.config = std::move(config);
}

bool Router::has_neighbor(std::uint32_t neighbor_id) const {
  return neighbors_.contains(neighbor_id);
}

const Router::NeighborConfig& Router::neighbor_config(
    std::uint32_t neighbor_id) const {
  return neighbor(neighbor_id).config;
}

void Router::set_neighbor_policies(std::uint32_t neighbor_id,
                                   Policy import_policy,
                                   Policy export_policy) {
  NeighborState& nb = neighbor(neighbor_id);
  nb.config.import_policy = std::move(import_policy);
  nb.config.export_policy = std::move(export_policy);
}

Router::NeighborState& Router::neighbor(std::uint32_t neighbor_id) {
  auto it = neighbors_.find(neighbor_id);
  if (it == neighbors_.end()) {
    throw ConfigError("unknown neighbor id " + std::to_string(neighbor_id) +
                      " on " + name_);
  }
  return it->second;
}

const Router::NeighborState& Router::neighbor(
    std::uint32_t neighbor_id) const {
  return const_cast<Router*>(this)->neighbor(neighbor_id);
}

const AdjRibOut& Router::adj_rib_out(std::uint32_t neighbor_id) const {
  return neighbor(neighbor_id).rib_out;
}

const AdjRibIn& Router::adj_rib_in(std::uint32_t neighbor_id) const {
  return neighbor(neighbor_id).rib_in;
}

bool Router::session_established(std::uint32_t neighbor_id) const {
  return neighbor(neighbor_id).established;
}

void Router::handle_update(std::uint32_t neighbor_id,
                           const UpdateMessage& update, Timestamp now) {
  NeighborState& nb = neighbor(neighbor_id);
  if (!nb.established) return;  // stale in-flight message after session drop
  ++stats_.updates_received;

  std::vector<Prefix> to_process;
  for (const Prefix& prefix : update.withdrawn) {
    ++stats_.withdrawals_received;
    if (nb.rib_in.withdraw(prefix)) to_process.push_back(prefix);
  }

  if (!update.announced.empty() && update.attrs) {
    for (const Prefix& prefix : update.announced) {
      ++stats_.announcements_received;
      PathAttributes attrs = *update.attrs;

      // eBGP loop prevention: our own ASN in the path means a routing loop;
      // the route is unusable (and any previous one is implicitly gone).
      if (nb.config.ebgp && attrs.as_path.contains(asn_)) {
        ++stats_.loop_rejected;
        if (nb.rib_in.withdraw(prefix)) to_process.push_back(prefix);
        continue;
      }
      if (!nb.config.import_policy.apply(prefix, attrs, asn_)) {
        ++stats_.denied_by_import;
        if (nb.rib_in.withdraw(prefix)) to_process.push_back(prefix);
        continue;
      }

      Route route;
      route.prefix = prefix;
      route.attrs = std::move(attrs);
      route.source = RouteSource{
          .neighbor_id = neighbor_id,
          .peer_asn = nb.config.peer_asn,
          .peer_address = nb.config.peer_address,
          .peer_router_id = nb.config.peer_router_id,
          .ebgp = nb.config.ebgp,
          .igp_metric = nb.config.igp_metric,
      };
      route.learned_at = now;

      RibChange change = nb.rib_in.update(route);
      if (change == RibChange::kUnchanged) {
        // Post-import identical to what we already hold: nothing to do.
        // (This is why ingress cleaning — Exp4 — stops propagation cold.)
        ++stats_.duplicate_updates_received;
        continue;
      }
      to_process.push_back(prefix);
    }
  }

  for (const Prefix& prefix : to_process) process(prefix, now);
}

void Router::process(const Prefix& prefix, Timestamp now) {
  // Locally originated routes take absolute precedence (vendor "weight").
  const Route* best = nullptr;
  Route local;
  if (const PathAttributes* origin_attrs = originated_.find(prefix)) {
    local.prefix = prefix;
    local.attrs = *origin_attrs;
    local.source = RouteSource{.neighbor_id = 0,
                               .peer_asn = asn_,
                               .peer_address = address_,
                               .peer_router_id = router_id_,
                               .ebgp = false,
                               .igp_metric = 0};
    local.learned_at = now;
    best = &local;
  } else {
    for (auto& [id, nb] : neighbors_) {
      if (!nb.established) continue;
      if (const Route* candidate = nb.rib_in.find(prefix)) {
        if (best == nullptr || better_route(*candidate, *best,
                                            decision_config_)) {
          best = candidate;
        }
      }
    }
  }

  if (best == nullptr) {
    if (loc_rib_.remove(prefix)) {
      for (auto& [id, nb] : neighbors_) {
        send_withdraw_if_advertised(nb, prefix, now);
      }
    }
    return;
  }

  const Route* previous = loc_rib_.find(prefix);
  bool internal_only_change = false;
  if (previous != nullptr) {
    // "Internal" change: identical transitive content, only the next hop
    // and/or learning source moved (Exp1's next-hop switch).
    PathAttributes a = previous->attrs;
    PathAttributes b = best->attrs;
    a.next_hop = b.next_hop = IpAddress{};
    internal_only_change = (a == b) && (previous->attrs != best->attrs ||
                                        previous->source != best->source);
  }

  RibChange change = loc_rib_.set_best(prefix, *best);
  if (change == RibChange::kUnchanged) return;

  if (internal_only_change && !vendor_.advertise_on_internal_change) {
    return;  // "ideal" vendor profile: no propagation attempt at all
  }

  const Route& installed = *loc_rib_.find(prefix);
  for (auto& [id, nb] : neighbors_) {
    advertise_to(nb, prefix, installed, now);
  }
}

void Router::advertise_to(NeighborState& nb, const Prefix& prefix,
                          const Route& route, Timestamp now) {
  if (!nb.established) return;

  bool learned_from_neighbor = route.source.neighbor_id != 0;
  // Split horizon: never send a route back over the session it came from.
  bool back_to_source =
      learned_from_neighbor && route.source.neighbor_id == nb.config.neighbor_id;
  // Full-mesh iBGP: iBGP-learned routes are not reflected to iBGP peers.
  bool ibgp_reflection =
      learned_from_neighbor && !route.source.ebgp && !nb.config.ebgp;
  // Well-known community semantics (RFC 1997). They bind the *receiving*
  // AS: a locally originated route tagged NO_EXPORT is still sent to the
  // neighbor (who then must not export it further).
  bool no_advertise =
      learned_from_neighbor &&
      route.attrs.communities.contains(Community::no_advertise());
  bool no_export =
      learned_from_neighbor && nb.config.ebgp &&
      route.attrs.communities.contains(Community::no_export());

  if (back_to_source || ibgp_reflection || no_advertise || no_export) {
    send_withdraw_if_advertised(nb, prefix, now);
    return;
  }

  PathAttributes attrs = route.attrs;
  if (nb.config.ebgp) {
    attrs.as_path.prepend(asn_);
    attrs.next_hop = nb.config.local_address;
    attrs.local_pref.reset();  // LOCAL_PREF is intra-AS only
    if (learned_from_neighbor) {
      attrs.med.reset();  // MED is not propagated to third-party ASes
    }
    attrs.strip_non_transitive_unknown();
  } else {
    if (nb.config.next_hop_self) attrs.next_hop = nb.config.local_address;
    if (!attrs.local_pref) {
      attrs.local_pref = decision_config_.default_local_pref;
    }
  }

  if (!nb.config.export_policy.apply(prefix, attrs, asn_)) {
    send_withdraw_if_advertised(nb, prefix, now);
    return;
  }

  RibChange change = nb.rib_out.advertise(prefix, attrs);
  if (change == RibChange::kUnchanged) {
    if (vendor_.suppress_duplicate_advertisements) {
      ++stats_.duplicates_suppressed;
      return;
    }
    ++stats_.duplicates_sent;
  }
  send(nb, prefix, std::move(attrs), now);
}

void Router::send_withdraw_if_advertised(NeighborState& nb,
                                         const Prefix& prefix, Timestamp now) {
  if (!nb.established) return;
  if (!nb.rib_out.withdraw(prefix)) return;
  send(nb, prefix, std::nullopt, now);
}

void Router::send(NeighborState& nb, const Prefix& prefix,
                  std::optional<PathAttributes> attrs, Timestamp now) {
  Duration mrai = nb.config.mrai;
  if (mrai > Duration{} && nb.last_send && now - *nb.last_send < mrai) {
    nb.pending[prefix] = std::move(attrs);
    if (!nb.flush_scheduled && timer_) {
      nb.flush_scheduled = true;
      Duration wait = mrai - (now - *nb.last_send);
      std::uint32_t id = nb.config.neighbor_id;
      timer_(wait, [this, id, when = now + wait] { flush_pending(id, when); });
    }
    return;
  }

  UpdateMessage message;
  if (attrs) {
    message.announced.push_back(prefix);
    message.attrs = std::move(attrs);
    ++stats_.announcements_sent;
  } else {
    message.withdrawn.push_back(prefix);
    ++stats_.withdrawals_sent;
  }
  ++stats_.updates_sent;
  nb.last_send = now;
  if (emit_) emit_(nb.config.neighbor_id, message);
}

void Router::flush_pending(std::uint32_t neighbor_id, Timestamp now) {
  NeighborState& nb = neighbor(neighbor_id);
  nb.flush_scheduled = false;
  if (!nb.established) {
    nb.pending.clear();
    return;
  }
  auto pending = std::exchange(nb.pending, {});
  // Reset the window before re-sending so the batch itself is not queued
  // again; subsequent sends inside the window re-arm the timer.
  nb.last_send.reset();
  for (auto& [prefix, attrs] : pending) {
    send(nb, prefix, std::move(attrs), now);
  }
  nb.last_send = now;
}

void Router::session_up(std::uint32_t neighbor_id, Timestamp now) {
  NeighborState& nb = neighbor(neighbor_id);
  if (nb.established) return;
  nb.established = true;
  nb.rib_in.clear();
  nb.rib_out.clear();
  nb.pending.clear();
  nb.last_send.reset();
  // Initial table transfer: advertise the full Loc-RIB.
  std::vector<std::pair<Prefix, Route>> routes;
  loc_rib_.for_each([&](const Prefix& prefix, const Route& route) {
    routes.emplace_back(prefix, route);
  });
  for (auto& [prefix, route] : routes) {
    advertise_to(nb, prefix, route, now);
  }
}

void Router::session_down(std::uint32_t neighbor_id, Timestamp now) {
  NeighborState& nb = neighbor(neighbor_id);
  if (!nb.established) return;
  nb.established = false;
  std::vector<Prefix> lost = nb.rib_in.prefixes();
  nb.rib_in.clear();
  nb.rib_out.clear();
  nb.pending.clear();
  for (const Prefix& prefix : lost) process(prefix, now);
}

void Router::originate(const Prefix& prefix, Timestamp now,
                       PathAttributes base) {
  if (!base.as_path.empty()) {
    throw ConfigError("originated route must have an empty AS path");
  }
  base.next_hop = address_;
  originated_.insert(prefix, std::move(base));
  process(prefix, now);
}

void Router::withdraw_origin(const Prefix& prefix, Timestamp now) {
  if (!originated_.erase(prefix)) return;
  process(prefix, now);
}

}  // namespace bgpcc
