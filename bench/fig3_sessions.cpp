// Figure 3: announcement types per BGP session for one beacon prefix at
// one collector (paper: 84.205.64.0/24 at rrc00, March 15, 2020).
//
// Prints the per-session stacked counts sorted by announcement volume —
// the paper's observation is that every session shows a different volume
// AND a different type mix, despite watching a single beacon prefix.
// Runs on the analytics engine: PerSessionTypesPass observes inline on
// the ingestion shard threads, one traversal of the collector's log.
#include <cstdio>

#include "analytics/driver.h"
#include "analytics/passes.h"
#include "core/tables.h"
#include "synth/beacon_internet.h"

using namespace bgpcc;

int main() {
  synth::BeaconOptions options;
  options.transit_ingresses = 6;
  options.peers_per_collector = 18;
  options.collector_count = 1;  // rrc00
  options.beacon_count = 3;
  synth::BeaconInternet internet(options);
  std::printf("simulating one beacon day at rrc00...\n\n");
  internet.run_day();

  Prefix beacon = internet.beacons().front();
  analytics::AnalysisDriver driver;
  auto handle = driver.add(analytics::PerSessionTypesPass{beacon});
  core::IngestOptions ingest;
  ingest.num_threads = 0;  // hardware concurrency
  driver.attach(ingest);
  (void)core::ingest_collector(internet.network().collector("rrc00"),
                               ingest);
  auto per_session = driver.report(handle);

  std::printf("beacon prefix %s, %zu sessions\n\n",
              beacon.to_string().c_str(), per_session.size());
  core::TextTable table({"session (peer)", "hygiene/vendor", "total", "pc",
                         "pn", "nc", "nn", "xc", "xn", "wdr"});
  for (const auto& [key, counts] : per_session) {
    std::string info = "?";
    for (const synth::PeerInfo& peer : internet.peers()) {
      if (peer.asn == key.peer_asn) {
        info = std::string(synth::label(peer.hygiene)) + "/" + peer.vendor;
      }
    }
    table.add_row({key.peer_asn.to_string(), info,
                   core::with_commas(counts.total()),
                   core::with_commas(counts.count(core::AnnouncementType::kPc)),
                   core::with_commas(counts.count(core::AnnouncementType::kPn)),
                   core::with_commas(counts.count(core::AnnouncementType::kNc)),
                   core::with_commas(counts.count(core::AnnouncementType::kNn)),
                   core::with_commas(counts.count(core::AnnouncementType::kXc)),
                   core::with_commas(counts.count(core::AnnouncementType::kXn)),
                   core::with_commas(counts.withdrawals)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape: sessions differ in both volume and type mix; cleaning "
              "peers show nn\nwhere propagating peers show nc.\n");
  return 0;
}
