// Figure 5: same single-(prefix, path) view as Figure 4, but at a peer
// that removes all communities on egress (the paper's AS20811 analogue).
// The transit's community exploration arrives as nc, is cleaned, and is
// re-announced as attribute-identical nn duplicates (paper: 6 pn + 25 nn,
// all in withdrawal phases) — the Exp3 mechanism in the wild.
#include <cstdio>

#include "analytics/driver.h"
#include "analytics/passes.h"
#include "core/beacon.h"
#include "core/tables.h"
#include "synth/beacon_internet.h"

using namespace bgpcc;

int main() {
  synth::BeaconOptions options;
  options.transit_ingresses = 6;
  options.peers_per_collector = 15;
  options.collector_count = 1;
  options.beacon_count = 3;
  synth::BeaconInternet internet(options);
  std::printf("simulating one beacon day...\n\n");
  core::BeaconSchedule schedule;
  internet.run_day(schedule);

  core::UpdateStream stream = internet.collector_stream("rrc00");
  Prefix beacon = internet.beacons().front();

  // A cleaning peer with a duplicate-emitting vendor (cisco/bird).
  const synth::PeerInfo* chosen = nullptr;
  for (const synth::PeerInfo& peer : internet.peers()) {
    if (peer.hygiene == synth::PeerHygiene::kCleanEgress &&
        peer.vendor != "junos") {
      chosen = &peer;
      break;
    }
  }
  if (chosen == nullptr) {
    std::fprintf(stderr, "no duplicate-emitting cleaning peer in this seed\n");
    return 1;
  }

  AsPath t_path = AsPath::sequence(
      {chosen->asn.value(), synth::BeaconInternet::kAsnT,
       synth::BeaconInternet::kAsnU1, synth::BeaconInternet::kAsnOrigin});
  core::SessionKey session{"rrc00", chosen->asn,
                           internet.network().router(chosen->name).address()};
  core::RouteSeries series = route_series(stream, session, beacon, t_path);

  std::printf("session: %s (%s, %s)\nprefix:  %s\npath:    [%s]\n\n",
              chosen->asn.to_string().c_str(), synth::label(chosen->hygiene),
              chosen->vendor.c_str(), beacon.to_string().c_str(),
              t_path.to_string().c_str());

  core::TextTable table({"time", "cumsum", "type", "phase", "communities"});
  int cumulative = 0;
  core::TypeCounts counts;
  int in_withdraw_phase = 0;
  for (const core::SeriesPoint& point : series.announcements) {
    ++cumulative;
    counts.add(point.type);
    if (schedule.label(point.time) == core::BeaconSchedule::Phase::kWithdraw) {
      ++in_withdraw_phase;
    }
    table.add_row({point.time.time_of_day_string().substr(0, 8),
                   std::to_string(cumulative), core::label(point.type),
                   core::label(schedule.label(point.time)),
                   point.communities.to_string()});
  }
  for (Timestamp w : series.withdrawals) {
    table.add_row({w.time_of_day_string().substr(0, 8), "", "W",
                   core::label(schedule.label(w)), ""});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("shape checks (paper: 31 announcements = 6 pn + 25 nn, all in "
              "withdrawal phases,\nempty community attribute throughout):\n");
  std::printf("  announcements on this path: %d (pn=%llu nn=%llu nc=%llu)\n",
              cumulative,
              static_cast<unsigned long long>(
                  counts.count(core::AnnouncementType::kPn)),
              static_cast<unsigned long long>(
                  counts.count(core::AnnouncementType::kNn)),
              static_cast<unsigned long long>(
                  counts.count(core::AnnouncementType::kNc)));
  std::printf("  inside withdrawal phases: %d / %d\n", in_withdraw_phase,
              cumulative);

  // Collector-wide duplicate attribution (analytics engine): which
  // sessions emit the nn duplicates, and in what run lengths — the
  // paper's single-path view above generalized to every session at once.
  analytics::AnalysisDriver driver;
  auto dupes = driver.add(analytics::DuplicateBurstPass{});
  driver.observe_stream(stream);
  analytics::DuplicateBurstPass::Report attribution = driver.report(dupes);

  std::printf("\nduplicate (nn) attribution across all rrc00 sessions "
              "(bursts = runs of >= 3):\n");
  core::TextTable burst_table(
      {"session (peer)", "classified", "nn", "nn share", "bursts",
       "longest run"});
  std::size_t shown = 0;
  for (const auto& row : attribution.sessions) {
    if (row.nn == 0 || shown++ >= 8) break;
    burst_table.add_row({row.session.peer_asn.to_string(),
                         core::with_commas(row.classified),
                         core::with_commas(row.nn),
                         core::percent(row.nn_share()),
                         core::with_commas(row.bursts),
                         core::with_commas(row.longest_run)});
  }
  std::printf("%s", burst_table.to_string().c_str());
  std::printf("total: %llu nn among %llu classified announcements, %llu "
              "bursts\n",
              static_cast<unsigned long long>(attribution.nn),
              static_cast<unsigned long long>(attribution.classified),
              static_cast<unsigned long long>(attribution.bursts));
  return 0;
}
