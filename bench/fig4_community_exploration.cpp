// Figure 4: cumulative announcements over one day for a single
// (prefix, AS path) at one session, where the peer neither adds nor
// filters communities. Paper: path (20205 3356 174 12654) — all
// announcements cluster in the withdrawal phases, opening with a pc and
// followed by nc runs whose communities are the transit's ingress
// geo-tags: community exploration.
#include <cstdio>

#include "analytics/driver.h"
#include "analytics/passes.h"
#include "core/beacon.h"
#include "core/tables.h"
#include "synth/beacon_internet.h"

using namespace bgpcc;

int main() {
  synth::BeaconOptions options;
  options.transit_ingresses = 6;
  options.peers_per_collector = 15;
  options.collector_count = 1;
  options.beacon_count = 3;
  synth::BeaconInternet internet(options);
  std::printf("simulating one beacon day...\n\n");
  core::BeaconSchedule schedule;
  internet.run_day(schedule);

  core::UpdateStream stream = internet.collector_stream("rrc00");
  Prefix beacon = internet.beacons().front();

  // Pick a propagating, multihomed peer (the paper's AS20205 analogue):
  // its best path normally avoids the tagging transit, so the transit
  // route surfaces only during withdrawals.
  const synth::PeerInfo* chosen = nullptr;
  for (const synth::PeerInfo& peer : internet.peers()) {
    if (peer.hygiene == synth::PeerHygiene::kPropagate && peer.has_h) {
      chosen = &peer;
      break;
    }
  }
  if (chosen == nullptr) {
    std::fprintf(stderr, "no propagating multihomed peer in this seed\n");
    return 1;
  }

  AsPath t_path = AsPath::sequence(
      {chosen->asn.value(), synth::BeaconInternet::kAsnT,
       synth::BeaconInternet::kAsnU1, synth::BeaconInternet::kAsnOrigin});
  core::SessionKey session{"rrc00", chosen->asn,
                           internet.network().router(chosen->name).address()};
  core::RouteSeries series = route_series(stream, session, beacon, t_path);

  std::printf("session: %s (%s, %s)\nprefix:  %s\npath:    [%s]\n\n",
              chosen->asn.to_string().c_str(), synth::label(chosen->hygiene),
              chosen->vendor.c_str(), beacon.to_string().c_str(),
              t_path.to_string().c_str());

  core::TextTable table({"time", "cumsum", "type", "phase", "communities"});
  int cumulative = 0;
  core::TypeCounts counts;
  int in_withdraw_phase = 0;
  for (const core::SeriesPoint& point : series.announcements) {
    ++cumulative;
    counts.add(point.type);
    auto phase = schedule.label(point.time);
    if (phase == core::BeaconSchedule::Phase::kWithdraw) ++in_withdraw_phase;
    table.add_row({point.time.time_of_day_string().substr(0, 8),
                   std::to_string(cumulative), core::label(point.type),
                   core::label(phase), point.communities.to_string()});
  }
  for (Timestamp w : series.withdrawals) {
    table.add_row({w.time_of_day_string().substr(0, 8), "", "W",
                   core::label(schedule.label(w)), ""});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("shape checks (paper: 19 announcements, 6 pc + 13 nc, all in "
              "withdrawal phases):\n");
  std::printf("  announcements on this path: %d (pc=%llu nc=%llu nn=%llu)\n",
              cumulative,
              static_cast<unsigned long long>(
                  counts.count(core::AnnouncementType::kPc)),
              static_cast<unsigned long long>(
                  counts.count(core::AnnouncementType::kNc)),
              static_cast<unsigned long long>(
                  counts.count(core::AnnouncementType::kNn)));
  std::printf("  inside withdrawal phases: %d / %d\n", in_withdraw_phase,
              cumulative);
  // Exploration detection off the analytics engine: ExplorationPass over
  // the same stream, run-state carried per (session, prefix).
  analytics::AnalysisDriver driver;
  auto exploration = driver.add(analytics::ExplorationPass{schedule});
  driver.observe_stream(stream);
  auto events = driver.report(exploration);
  std::printf("  community-exploration events across all sessions: %zu\n",
              events.size());
  return 0;
}
