// Ablation 2 (DESIGN.md): vendor duplicate suppression and MRAI.
//  (a) What if every router ran Junos-style Adj-RIB-Out comparison?
//      Re-runs the beacon day under different vendor mixes and reports the
//      collector message volume plus suppressed-duplicate counts.
//  (b) MRAI batching on a community-churn burst.
#include <cstdio>

#include "core/classifier.h"
#include "core/tables.h"
#include "synth/beacon_internet.h"

using namespace bgpcc;

namespace {

void vendor_mix_row(core::TextTable& table, const char* name,
                    double junos_fraction, double bird_fraction) {
  synth::BeaconOptions options;
  options.transit_ingresses = 6;
  options.peers_per_collector = 12;
  options.collector_count = 2;
  options.beacon_count = 3;
  options.junos_fraction = junos_fraction;
  options.bird_fraction = bird_fraction;
  synth::BeaconInternet internet(options);
  internet.run_day();

  core::UpdateStream stream = internet.stream();
  core::TypeCounts types = core::classify_stream(stream);
  RouterStats stats = internet.network().total_router_stats();
  table.add_row({name, core::with_commas(stream.size()),
                 core::with_commas(types.count(core::AnnouncementType::kNn)),
                 core::with_commas(stats.duplicates_sent),
                 core::with_commas(stats.duplicates_suppressed)});
}

}  // namespace

int main() {
  std::printf("== vendor duplicate-suppression ablation (beacon day) ==\n\n");
  core::TextTable table({"population", "collector msgs", "nn at collectors",
                         "duplicates sent", "duplicates suppressed"});
  vendor_mix_row(table, "all cisco-like", 0.0, 0.0);
  vendor_mix_row(table, "paper-era mix", 0.25, 0.25);
  vendor_mix_row(table, "all junos-like", 1.0, 0.0);
  std::printf("%s\n", table.to_string().c_str());
  std::printf("expected shape: universal suppression removes the nn"
              " duplicates but cannot\nremove nc traffic — community "
              "changes are real attribute changes.\n\n");

  std::printf("== MRAI ablation (community churn burst through a chain) ==\n\n");
  core::TextTable mrai_table(
      {"MRAI", "updates at collector", "last community seen"});
  for (std::int64_t mrai_seconds : {0ll, 30ll}) {
    sim::Network net;
    Router& origin =
        net.add_router("A", Asn(100), VendorProfile::cisco_ios());
    net.add_router("B", Asn(200), VendorProfile::cisco_ios());
    net.add_collector("C", Asn(65000));
    net.add_session("A", "B");
    sim::SessionOptions options;
    options.a_mrai = Duration::seconds(mrai_seconds);
    net.add_session("B", "C", options);
    net.start();
    // 20 community-only changes, 2 seconds apart.
    Prefix prefix = Prefix::from_string("203.0.113.0/24");
    for (int i = 1; i <= 20; ++i) {
      net.scheduler().at(net.now() + Duration::seconds(i * 2),
                         [&origin, &net, prefix, i] {
                           PathAttributes base;
                           base.communities.add(Community::of(
                               100, static_cast<std::uint16_t>(i)));
                           origin.originate(prefix, net.now(),
                                            std::move(base));
                         });
    }
    net.run();
    const auto& messages = net.collector("C").messages();
    std::string last_comms;
    for (auto it = messages.rbegin(); it != messages.rend(); ++it) {
      if (it->update.attrs) {
        last_comms = it->update.attrs->communities.to_string();
        break;
      }
    }
    mrai_table.add_row({mrai_seconds == 0 ? "off" : "30s",
                        core::with_commas(messages.size()), last_comms});
  }
  std::printf("%s\n", mrai_table.to_string().c_str());
  std::printf("expected shape: MRAI collapses the burst while converging to "
              "the same final\nattributes — fewer messages, same state.\n");
  return 0;
}
