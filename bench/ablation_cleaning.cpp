// Ablation 1 (DESIGN.md): community filtering — the paper's operational
// recommendation. Sweeps the fraction of cleaning peers and compares
// ingress vs egress placement; then sweeps geo-tagging granularity (number
// of distinct transit ingress tags) against exploration burst size.
#include <cstdio>

#include "core/beacon.h"
#include "core/tables.h"
#include "synth/beacon_internet.h"

using namespace bgpcc;

namespace {

struct DayCounts {
  std::size_t collector_messages = 0;
  std::uint64_t nc = 0;
  std::uint64_t nn = 0;
  std::size_t exploration_events = 0;
  double mean_event_len = 0.0;
};

DayCounts run_day(double clean_fraction, bool ingress, int ingresses) {
  synth::BeaconOptions options;
  options.transit_ingresses = ingresses;
  options.peers_per_collector = 12;
  options.collector_count = 2;
  options.beacon_count = 3;
  options.tagger_fraction = 0.0;
  options.clean_ingress_fraction = ingress ? clean_fraction : 0.0;
  options.clean_egress_fraction = ingress ? 0.0 : clean_fraction;
  synth::BeaconInternet internet(options);
  core::BeaconSchedule schedule;
  internet.run_day(schedule);

  DayCounts counts;
  core::UpdateStream stream = internet.stream();
  counts.collector_messages = stream.size();
  core::TypeCounts types = core::classify_stream(stream);
  counts.nc = types.count(core::AnnouncementType::kNc);
  counts.nn = types.count(core::AnnouncementType::kNn);
  auto events = core::find_community_exploration(stream, schedule);
  counts.exploration_events = events.size();
  for (const auto& e : events) {
    counts.mean_event_len += e.nc_count;
  }
  if (!events.empty()) {
    counts.mean_event_len /= static_cast<double>(events.size());
  }
  return counts;
}

}  // namespace

int main() {
  std::printf("== cleaning-fraction sweep (egress vs ingress placement) ==\n");
  std::printf("(peer population cleaning communities; collector-side message "
              "load)\n\n");
  core::TextTable table({"clean fraction", "placement", "collector msgs",
                         "nc", "nn"});
  for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    for (bool ingress : {false, true}) {
      if (fraction == 0.0 && ingress) continue;
      DayCounts counts = run_day(fraction, ingress, 6);
      table.add_row({core::percent(fraction, 0),
                     fraction == 0.0 ? "-" : (ingress ? "ingress" : "egress"),
                     core::with_commas(counts.collector_messages),
                     core::with_commas(counts.nc),
                     core::with_commas(counts.nn)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("expected shape: nc falls as cleaning rises; egress cleaning "
              "converts nc into nn\n(Exp3) while ingress cleaning removes "
              "the messages entirely (Exp4).\n\n");

  std::printf("== geo-tagging granularity sweep ==\n");
  std::printf("(more distinct ingress tags -> longer community exploration "
              "bursts)\n\n");
  core::TextTable granularity(
      {"transit ingresses", "exploration events", "mean nc per event", "nc"});
  for (int ingresses : {2, 4, 6, 8}) {
    DayCounts counts = run_day(0.0, false, ingresses);
    granularity.add_row({std::to_string(ingresses),
                         core::with_commas(counts.exploration_events),
                         core::format_double(counts.mean_event_len, 2),
                         core::with_commas(counts.nc)});
  }
  std::printf("%s", granularity.to_string().c_str());
  return 0;
}
