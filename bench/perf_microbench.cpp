// Engineering microbenchmarks (google-benchmark): throughput of the hot
// paths — wire codec, MRT framing, classifier, trie, decision process.
// Not a paper artifact; used to keep the measurement pipeline fast enough
// for full-archive runs.
#include <benchmark/benchmark.h>

#include <sstream>

#include "analytics/driver.h"
#include "analytics/passes.h"
#include "bgp/codec.h"
#include "core/classifier.h"
#include "core/ingest.h"
#include "core/registry.h"
#include "mrt/mrt.h"
#include "mrt/source.h"
#include "obs/metrics.h"
#include "rib/decision.h"
#include "rib/trie.h"

namespace bgpcc {
namespace {

UpdateMessage sample_update(int communities) {
  UpdateMessage update;
  update.announced.push_back(Prefix::from_string("84.205.64.0/24"));
  PathAttributes attrs;
  attrs.as_path = AsPath::sequence({20205, 3356, 174, 12654});
  attrs.next_hop = IpAddress::from_string("192.0.2.1");
  for (int i = 0; i < communities; ++i) {
    attrs.communities.add(
        Community::of(3356, static_cast<std::uint16_t>(2000 + i)));
  }
  update.attrs = std::move(attrs);
  return update;
}

void BM_EncodeUpdate(benchmark::State& state) {
  UpdateMessage update = sample_update(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_update(update));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeUpdate)->Arg(0)->Arg(3)->Arg(10);

void BM_DecodeUpdate(benchmark::State& state) {
  auto wire = encode_update(sample_update(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_update(wire));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_DecodeUpdate)->Arg(0)->Arg(3)->Arg(10);

void BM_MrtWriteRead(benchmark::State& state) {
  mrt::Bgp4mpMessage message;
  message.peer_asn = Asn(20205);
  message.local_asn = Asn(65500);
  message.peer_ip = IpAddress::from_string("192.0.2.1");
  message.local_ip = IpAddress::from_string("192.0.2.2");
  message.bgp_message = encode_update(sample_update(3));
  for (auto _ : state) {
    std::stringstream buffer;
    mrt::Writer writer(buffer);
    writer.write_message(Timestamp::from_unix_seconds(1), message);
    mrt::Reader reader(buffer);
    benchmark::DoNotOptimize(reader.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MrtWriteRead);

void BM_ClassifyRecord(benchmark::State& state) {
  core::Classifier classifier;
  core::UpdateRecord record;
  record.session = core::SessionKey{"rrc00", Asn(20205),
                                    IpAddress::from_string("192.0.2.1")};
  record.prefix = Prefix::from_string("84.205.64.0/24");
  record.announcement = true;
  record.attrs.as_path = AsPath::sequence({20205, 3356, 174, 12654});
  std::uint16_t tick = 0;
  for (auto _ : state) {
    record.attrs.communities.clear();
    record.attrs.communities.add(Community::of(3356, 2000 + (tick++ % 8)));
    benchmark::DoNotOptimize(classifier.classify(record));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifyRecord);

void BM_TrieInsertLookup(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PrefixTrie<int> trie;
    for (int i = 0; i < n; ++i) {
      trie.insert(
          Prefix(IpAddress::v4(0x0a000000u +
                               static_cast<std::uint32_t>(i) * 256),
                 24),
          i);
    }
    benchmark::DoNotOptimize(
        trie.lookup(IpAddress::v4(0x0a000000u +
                                  static_cast<std::uint32_t>(n / 2) * 256)));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TrieInsertLookup)->Arg(100)->Arg(1000)->Arg(10000);

// Ingestion throughput (records/sec) of the chunked parallel engine over
// a synthetic multi-session archive, swept over worker counts: the 1-vs-N
// comparison CI tracks as the seed of the BENCH_*.json trajectory.
std::string synthetic_ingest_archive(int sessions, int updates_per_session) {
  std::ostringstream out;
  mrt::Writer writer(out);
  Timestamp base = Timestamp::from_unix_seconds(1600000000);
  for (int u = 0; u < updates_per_session; ++u) {
    for (int s = 0; s < sessions; ++s) {
      UpdateMessage update = sample_update(/*communities=*/4);
      update.attrs->as_path =
          AsPath::sequence({65000u + static_cast<std::uint32_t>(s), 3356, 174});
      mrt::Bgp4mpMessage message;
      message.peer_asn = Asn(65000u + static_cast<std::uint32_t>(s));
      message.local_asn = Asn(64512);
      message.peer_ip = IpAddress::v4(0x0a000001u + static_cast<std::uint32_t>(s));
      message.local_ip = IpAddress::from_string("203.0.113.1");
      message.bgp_message = encode_update(update);
      // Half the sessions model second-granularity collectors so the
      // sub-second repair is on the measured path.
      writer.write_message(base + Duration::millis(u * 7 + s),
                           message, /*extended_time=*/s % 2 == 0);
    }
  }
  return out.str();
}

// The registry matching synthetic_ingest_archive's session/path shape —
// one definition, so changing the archive shape cannot silently skew
// one benchmark's cleaning-drop behavior.
core::Registry ingest_bench_registry() {
  core::Registry registry;
  for (std::uint32_t s = 0; s < 64; ++s) {
    registry.allocate_asn(Asn(65000u + s));
  }
  registry.allocate_asn(Asn(3356));
  registry.allocate_asn(Asn(174));
  registry.allocate_prefix(Prefix::from_string("84.205.64.0/24"));
  return registry;
}

void BM_IngestMrtStream(benchmark::State& state) {
  static const std::string archive = synthetic_ingest_archive(64, 256);
  core::Registry registry = ingest_bench_registry();
  core::CleaningOptions cleaning;
  cleaning.registry = &registry;
  core::IngestOptions options;
  options.num_threads = static_cast<unsigned>(state.range(0));
  options.chunk_records = 1024;
  options.cleaning = &cleaning;
  std::size_t records = 0;
  for (auto _ : state) {
    std::istringstream in(archive);
    core::IngestResult result = core::ingest_mrt_stream("bench", in, options);
    records = result.stream.size();
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records));
  state.counters["threads"] = static_cast<double>(options.num_threads);
}
BENCHMARK(BM_IngestMrtStream)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Multi-archive throughput of the pipelined engine: 8 in-memory archives
// framed concurrently (bounded-queue fan-out) into one shared shard set,
// swept over worker counts — the collector-directory workload the paper's
// multi-collector measurement study implies.
void BM_IngestMrtSources(benchmark::State& state) {
  constexpr int kFiles = 8;
  static const std::vector<std::string> archives = [] {
    std::vector<std::string> out;
    out.reserve(kFiles);
    for (int f = 0; f < kFiles; ++f) {
      out.push_back(synthetic_ingest_archive(16, 128));
    }
    return out;
  }();
  core::Registry registry = ingest_bench_registry();
  core::CleaningOptions cleaning;
  cleaning.registry = &registry;
  core::IngestOptions options;
  options.num_threads = static_cast<unsigned>(state.range(0));
  options.chunk_records = 256;
  options.cleaning = &cleaning;
  std::size_t records = 0;
  for (auto _ : state) {
    std::vector<std::istringstream> streams;
    streams.reserve(archives.size());
    std::vector<core::MrtSource> sources;
    sources.reserve(archives.size());
    for (const std::string& archive : archives) {
      streams.emplace_back(archive);
    }
    for (std::size_t f = 0; f < streams.size(); ++f) {
      sources.push_back(
          core::MrtSource{"bench" + std::to_string(f), &streams[f]});
    }
    core::IngestResult result = core::ingest_mrt_sources(sources, options);
    records = result.stream.size();
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records));
  state.counters["threads"] = static_cast<double>(options.num_threads);
  state.counters["files"] = static_cast<double>(kFiles);
}
BENCHMARK(BM_IngestMrtSources)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Streaming windowed ingestion over the same multi-archive workload as
// BM_IngestMrtSources: bounded windows (arg1 raw records each) with the
// shard-clean + merge per window and the final k-way run-merge — the
// O(window) memory configuration for archives larger than RAM. Compared
// against BM_IngestMrtSources this prices the windowing overhead.
void BM_IngestMrtSourcesWindowed(benchmark::State& state) {
  constexpr int kFiles = 8;
  static const std::vector<std::string> archives = [] {
    std::vector<std::string> out;
    out.reserve(kFiles);
    for (int f = 0; f < kFiles; ++f) {
      out.push_back(synthetic_ingest_archive(16, 128));
    }
    return out;
  }();
  core::Registry registry = ingest_bench_registry();
  core::CleaningOptions cleaning;
  cleaning.registry = &registry;
  core::IngestOptions options;
  options.num_threads = static_cast<unsigned>(state.range(0));
  options.chunk_records = 256;
  options.cleaning = &cleaning;
  options.window_records = static_cast<std::size_t>(state.range(1));
  std::size_t records = 0;
  for (auto _ : state) {
    std::vector<std::istringstream> streams;
    streams.reserve(archives.size());
    for (const std::string& archive : archives) {
      streams.emplace_back(archive);
    }
    core::StreamingIngestor engine(options);
    for (std::size_t f = 0; f < streams.size(); ++f) {
      engine.add_stream("bench" + std::to_string(f), streams[f]);
    }
    core::IngestResult result = engine.finish();
    records = result.stream.size();
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records));
  state.counters["threads"] = static_cast<double>(options.num_threads);
  state.counters["window"] = static_cast<double>(options.window_records);
}
BENCHMARK(BM_IngestMrtSourcesWindowed)
    ->Args({1, 512})
    ->Args({4, 512})
    ->Args({4, 4096})
    ->UseRealTime();

// The small-window regime where per-window fixed cost dominates: tiny
// window budgets mean hundreds of windows per run, so this prices what
// the persistent worker pool + window pipelining removed — a full
// spawn/join of every worker thread per window. arg2 toggles
// pipelining: off ≈ the legacy strictly-sequential window schedule, on
// overlaps window N+1's frame/decode with window N's clean+merge.
void BM_IngestSmallWindows(benchmark::State& state) {
  constexpr int kFiles = 4;
  static const std::vector<std::string> archives = [] {
    std::vector<std::string> out;
    out.reserve(kFiles);
    for (int f = 0; f < kFiles; ++f) {
      out.push_back(synthetic_ingest_archive(16, 128));
    }
    return out;
  }();
  core::Registry registry = ingest_bench_registry();
  core::CleaningOptions cleaning;
  cleaning.registry = &registry;
  core::IngestOptions options;
  options.num_threads = static_cast<unsigned>(state.range(0));
  options.chunk_records = 64;
  options.cleaning = &cleaning;
  options.window_records = static_cast<std::size_t>(state.range(1));
  options.pipeline_windows = state.range(2) != 0;
  std::size_t records = 0;
  std::size_t windows = 0;
  for (auto _ : state) {
    std::vector<std::istringstream> streams;
    streams.reserve(archives.size());
    for (const std::string& archive : archives) {
      streams.emplace_back(archive);
    }
    core::StreamingIngestor engine(options);
    for (std::size_t f = 0; f < streams.size(); ++f) {
      engine.add_stream("bench" + std::to_string(f), streams[f]);
    }
    core::IngestResult result = engine.finish();
    records = result.stream.size();
    windows = result.stats.windows;
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records));
  state.counters["threads"] = static_cast<double>(options.num_threads);
  state.counters["window"] = static_cast<double>(options.window_records);
  state.counters["pipelined"] = options.pipeline_windows ? 1.0 : 0.0;
  state.counters["windows"] = static_cast<double>(windows);
}
BENCHMARK(BM_IngestSmallWindows)
    ->Args({4, 64, 0})
    ->Args({4, 64, 1})
    ->Args({4, 1024, 0})
    ->Args({4, 1024, 1})
    ->UseRealTime();

// The compressed-input path: the same archive gzip-compressed once,
// inflated transparently on every iteration — decompression cost rides
// the framer stage, so this measures the real RouteViews/.gz workload.
void BM_IngestMrtGzip(benchmark::State& state) {
  if (!mrt::gzip_supported()) {
    state.SkipWithError("bgpcc built without zlib");
    return;
  }
  static const std::string archive = synthetic_ingest_archive(64, 256);
  static const std::string compressed = mrt::gzip_compress(archive);
  core::Registry registry = ingest_bench_registry();
  core::CleaningOptions cleaning;
  cleaning.registry = &registry;
  core::IngestOptions options;
  options.num_threads = static_cast<unsigned>(state.range(0));
  options.chunk_records = 1024;
  options.cleaning = &cleaning;
  std::size_t records = 0;
  for (auto _ : state) {
    std::istringstream in(compressed);
    core::IngestResult result = core::ingest_mrt_stream("bench", in, options);
    records = result.stream.size();
    benchmark::DoNotOptimize(records);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records));
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(archive.size()));
  state.counters["threads"] = static_cast<double>(options.num_threads);
}
BENCHMARK(BM_IngestMrtGzip)->Arg(1)->Arg(4)->UseRealTime();

// The analytics engine, inline mode: every pass observes on the shard
// threads during ingestion — prices the per-record virtual-dispatch and
// state-update cost of the full pass set riding the ingest hot path.
void BM_AnalyzeInline(benchmark::State& state) {
  static const std::string archive = synthetic_ingest_archive(64, 256);
  core::Registry registry = ingest_bench_registry();
  core::CleaningOptions cleaning;
  cleaning.registry = &registry;
  std::size_t records = 0;
  for (auto _ : state) {
    analytics::AnalysisDriver driver;
    auto types = driver.add(analytics::ClassifierPass{});
    auto tomography = driver.add(analytics::TomographyPass{});
    auto communities = driver.add(analytics::CommunityStatsPass{});
    auto duplicates = driver.add(analytics::DuplicateBurstPass{});
    core::IngestOptions options;
    options.num_threads = static_cast<unsigned>(state.range(0));
    options.chunk_records = 1024;
    options.cleaning = &cleaning;
    driver.attach(options);
    std::istringstream in(archive);
    core::IngestResult result = core::ingest_mrt_stream("bench", in, options);
    // Pre-clean decoded total: the same denominator BM_AnalyzeSink uses,
    // so the Inline/Sink throughput delta compares identical work.
    records = result.stats.records;
    benchmark::DoNotOptimize(driver.report(types));
    benchmark::DoNotOptimize(driver.report(tomography));
    benchmark::DoNotOptimize(driver.report(communities));
    benchmark::DoNotOptimize(driver.report(duplicates));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records));
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AnalyzeInline)->Arg(1)->Arg(4)->UseRealTime();

// The obs layer's whole-pipeline price: the BM_AnalyzeInline workload
// (windowed, so every instrumented stage runs) with the metrics timing
// gate off (arg1 = 0, the default for any run without a --metrics
// sink) versus on (arg1 = 1). Off prices the always-on relaxed counter
// increments against the uninstrumented baseline in the BENCH_*.json
// trajectory; the off/on delta prices the StageTimer clock reads.
void BM_MetricsOverhead(benchmark::State& state) {
  static const std::string archive = synthetic_ingest_archive(64, 256);
  core::Registry registry = ingest_bench_registry();
  core::CleaningOptions cleaning;
  cleaning.registry = &registry;
  const bool metrics_on = state.range(1) != 0;
  obs::set_enabled(metrics_on);
  std::size_t records = 0;
  for (auto _ : state) {
    analytics::AnalysisDriver driver;
    auto types = driver.add(analytics::ClassifierPass{});
    auto tomography = driver.add(analytics::TomographyPass{});
    auto communities = driver.add(analytics::CommunityStatsPass{});
    auto duplicates = driver.add(analytics::DuplicateBurstPass{});
    core::IngestOptions options;
    options.num_threads = static_cast<unsigned>(state.range(0));
    options.chunk_records = 1024;
    options.window_records = 4096;
    options.cleaning = &cleaning;
    driver.attach(options);
    std::istringstream in(archive);
    core::StreamingIngestor engine(options);
    engine.add_stream("bench", in);
    core::IngestResult result = engine.finish();
    records = result.stats.records;
    benchmark::DoNotOptimize(driver.report(types));
    benchmark::DoNotOptimize(driver.report(tomography));
    benchmark::DoNotOptimize(driver.report(communities));
    benchmark::DoNotOptimize(driver.report(duplicates));
  }
  obs::set_enabled(false);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records));
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["metrics"] = metrics_on ? 1.0 : 0.0;
}
BENCHMARK(BM_MetricsOverhead)
    ->Args({1, 0})
    ->Args({1, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->UseRealTime();

// Same pass set through the streaming-sink mode: records observed in
// final merged order on one thread, no materialized stream — the
// windowed O(window) configuration. The Inline/Sink delta is the price
// of single-threaded observation.
void BM_AnalyzeSink(benchmark::State& state) {
  static const std::string archive = synthetic_ingest_archive(64, 256);
  core::Registry registry = ingest_bench_registry();
  core::CleaningOptions cleaning;
  cleaning.registry = &registry;
  std::size_t records = 0;
  for (auto _ : state) {
    analytics::AnalysisDriver driver;
    auto types = driver.add(analytics::ClassifierPass{});
    auto tomography = driver.add(analytics::TomographyPass{});
    auto communities = driver.add(analytics::CommunityStatsPass{});
    auto duplicates = driver.add(analytics::DuplicateBurstPass{});
    core::IngestOptions options;
    options.num_threads = static_cast<unsigned>(state.range(0));
    options.chunk_records = 1024;
    options.window_records = static_cast<std::size_t>(state.range(1));
    options.cleaning = &cleaning;
    std::istringstream in(archive);
    core::StreamingIngestor engine(options);
    engine.add_stream("bench", in);
    core::IngestResult result = engine.finish(driver.sink());
    records = result.stats.records;
    benchmark::DoNotOptimize(driver.report(types));
    benchmark::DoNotOptimize(driver.report(tomography));
    benchmark::DoNotOptimize(driver.report(communities));
    benchmark::DoNotOptimize(driver.report(duplicates));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records));
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["window"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_AnalyzeSink)
    ->Args({1, 4096})
    ->Args({4, 4096})
    ->UseRealTime();

// The §6/§7 anomaly + beacon passes riding ingest inline — the port that
// unlocked streaming multi-month archives for the Figure 4/6 and anomaly
// kernels. Same pre-clean denominator as BM_AnalyzeInline/Sink, so the
// three benchmarks compare per-record cost of the different pass sets.
void BM_AnomalyInline(benchmark::State& state) {
  static const std::string archive = synthetic_ingest_archive(64, 256);
  core::Registry registry = ingest_bench_registry();
  core::CleaningOptions cleaning;
  cleaning.registry = &registry;
  std::size_t records = 0;
  for (auto _ : state) {
    analytics::AnalysisDriver driver;
    auto anomalies = driver.add(analytics::AnomalyPass{});
    auto revealed = driver.add(analytics::RevealedPass{});
    auto exploration = driver.add(analytics::ExplorationPass{});
    auto usage = driver.add(analytics::UsageClassificationPass{});
    core::IngestOptions options;
    options.num_threads = static_cast<unsigned>(state.range(0));
    options.chunk_records = 1024;
    options.cleaning = &cleaning;
    driver.attach(options);
    std::istringstream in(archive);
    core::IngestResult result = core::ingest_mrt_stream("bench", in, options);
    records = result.stats.records;
    benchmark::DoNotOptimize(driver.report(anomalies));
    benchmark::DoNotOptimize(driver.report(revealed));
    benchmark::DoNotOptimize(driver.report(exploration));
    benchmark::DoNotOptimize(driver.report(usage));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records));
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AnomalyInline)->Arg(1)->Arg(4)->UseRealTime();

// Registers the full shipped pass set — the bgpcc-merge/checkpoint
// configuration — on a driver.
void add_standard_passes(analytics::AnalysisDriver& driver) {
  // The benchmarks only serialize/report whole drivers, so the typed
  // handles add() returns have no caller here.
  static_cast<void>(driver.add(analytics::ClassifierPass{}));
  static_cast<void>(driver.add(analytics::PerSessionTypesPass{}));
  static_cast<void>(driver.add(analytics::TomographyPass{}));
  static_cast<void>(driver.add(analytics::CommunityStatsPass{}));
  static_cast<void>(driver.add(analytics::DuplicateBurstPass{}));
  static_cast<void>(driver.add(analytics::AnomalyPass{}));
  static_cast<void>(driver.add(analytics::RevealedPass{}));
  static_cast<void>(driver.add(analytics::ExplorationPass{}));
  static_cast<void>(driver.add(analytics::UsageClassificationPass{}));
}

// Checkpoint/restore round-trip (analytics/serialize.h): encode a
// populated full-pass-set driver's shard states through the wire codec
// and restore them into a fresh driver — the crash-safety overhead a
// resumable year-scale run pays per checkpoint interval. Bytes/sec is
// measured over the encoded checkpoint size, so codec regressions and
// state-size blowups both move the trajectory gate.
void BM_CheckpointRoundtrip(benchmark::State& state) {
  static const std::string archive = synthetic_ingest_archive(64, 256);
  core::Registry registry = ingest_bench_registry();
  core::CleaningOptions cleaning;
  cleaning.registry = &registry;
  analytics::AnalysisDriver driver;
  add_standard_passes(driver);
  core::IngestOptions options;
  options.num_threads = 1;
  options.chunk_records = 1024;
  options.cleaning = &cleaning;
  driver.attach(options);
  std::istringstream in(archive);
  core::IngestResult result = core::ingest_mrt_stream("bench", in, options);
  benchmark::DoNotOptimize(result.stream.size());

  std::uint64_t bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    driver.checkpoint(out);
    std::string encoded = std::move(out).str();
    bytes = encoded.size();
    analytics::AnalysisDriver restored;
    add_standard_passes(restored);
    std::istringstream encoded_in(encoded);
    restored.restore(encoded_in);
    benchmark::DoNotOptimize(restored.size());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
  state.counters["state_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_CheckpointRoundtrip);

// Epoch-snapshot cost (analytics::AnalysisDriver::snapshot()): clone all
// per-shard states of the full pass set under the committed-window lock,
// then merge the clones outside it — the price a live dashboard pays per
// report refresh while ingestion keeps running. Swept over evidence size
// (records ingested before snapshotting, arg0) and the thread count the
// driver was attached with (arg1): more shards means more clones per
// epoch, and state size — not ingest speed — should dominate. items/sec
// counts records covered per snapshot so the gate tracks cost-per-record
// of a refresh, comparable across evidence sizes.
void BM_SnapshotEpoch(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  core::Registry registry = ingest_bench_registry();
  core::CleaningOptions cleaning;
  cleaning.registry = &registry;
  analytics::AnalysisDriver driver;
  add_standard_passes(driver);
  core::IngestOptions options;
  options.num_threads = static_cast<unsigned>(state.range(1));
  options.chunk_records = 1024;
  options.cleaning = &cleaning;
  driver.attach(options);
  std::istringstream in(synthetic_ingest_archive(64, records / 64));
  core::IngestResult result = core::ingest_mrt_stream("bench", in, options);
  benchmark::DoNotOptimize(result.stream.size());

  for (auto _ : state) {
    benchmark::DoNotOptimize(driver.snapshot());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records));
  state.counters["threads"] = static_cast<double>(options.num_threads);
  state.counters["records"] = static_cast<double>(records);
}
BENCHMARK(BM_SnapshotEpoch)
    ->Args({2048, 1})
    ->Args({2048, 4})
    ->Args({16384, 1})
    ->Args({16384, 4});

void BM_DecisionCompare(benchmark::State& state) {
  Route a;
  a.prefix = Prefix::from_string("84.205.64.0/24");
  a.attrs.as_path = AsPath::sequence({20205, 3356, 174, 12654});
  a.source.peer_router_id = 1;
  Route b = a;
  b.source.peer_router_id = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(better_route(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecisionCompare);

}  // namespace
}  // namespace bgpcc

BENCHMARK_MAIN();
