// Engineering microbenchmarks (google-benchmark): throughput of the hot
// paths — wire codec, MRT framing, classifier, trie, decision process.
// Not a paper artifact; used to keep the measurement pipeline fast enough
// for full-archive runs.
#include <benchmark/benchmark.h>

#include <sstream>

#include "bgp/codec.h"
#include "core/classifier.h"
#include "mrt/mrt.h"
#include "rib/decision.h"
#include "rib/trie.h"

namespace bgpcc {
namespace {

UpdateMessage sample_update(int communities) {
  UpdateMessage update;
  update.announced.push_back(Prefix::from_string("84.205.64.0/24"));
  PathAttributes attrs;
  attrs.as_path = AsPath::sequence({20205, 3356, 174, 12654});
  attrs.next_hop = IpAddress::from_string("192.0.2.1");
  for (int i = 0; i < communities; ++i) {
    attrs.communities.add(
        Community::of(3356, static_cast<std::uint16_t>(2000 + i)));
  }
  update.attrs = std::move(attrs);
  return update;
}

void BM_EncodeUpdate(benchmark::State& state) {
  UpdateMessage update = sample_update(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode_update(update));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeUpdate)->Arg(0)->Arg(3)->Arg(10);

void BM_DecodeUpdate(benchmark::State& state) {
  auto wire = encode_update(sample_update(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode_update(wire));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_DecodeUpdate)->Arg(0)->Arg(3)->Arg(10);

void BM_MrtWriteRead(benchmark::State& state) {
  mrt::Bgp4mpMessage message;
  message.peer_asn = Asn(20205);
  message.local_asn = Asn(65500);
  message.peer_ip = IpAddress::from_string("192.0.2.1");
  message.local_ip = IpAddress::from_string("192.0.2.2");
  message.bgp_message = encode_update(sample_update(3));
  for (auto _ : state) {
    std::stringstream buffer;
    mrt::Writer writer(buffer);
    writer.write_message(Timestamp::from_unix_seconds(1), message);
    mrt::Reader reader(buffer);
    benchmark::DoNotOptimize(reader.next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MrtWriteRead);

void BM_ClassifyRecord(benchmark::State& state) {
  core::Classifier classifier;
  core::UpdateRecord record;
  record.session = core::SessionKey{"rrc00", Asn(20205),
                                    IpAddress::from_string("192.0.2.1")};
  record.prefix = Prefix::from_string("84.205.64.0/24");
  record.announcement = true;
  record.attrs.as_path = AsPath::sequence({20205, 3356, 174, 12654});
  std::uint16_t tick = 0;
  for (auto _ : state) {
    record.attrs.communities.clear();
    record.attrs.communities.add(Community::of(3356, 2000 + (tick++ % 8)));
    benchmark::DoNotOptimize(classifier.classify(record));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifyRecord);

void BM_TrieInsertLookup(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PrefixTrie<int> trie;
    for (int i = 0; i < n; ++i) {
      trie.insert(
          Prefix(IpAddress::v4(0x0a000000u +
                               static_cast<std::uint32_t>(i) * 256),
                 24),
          i);
    }
    benchmark::DoNotOptimize(
        trie.lookup(IpAddress::v4(0x0a000000u +
                                  static_cast<std::uint32_t>(n / 2) * 256)));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TrieInsertLookup)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DecisionCompare(benchmark::State& state) {
  Route a;
  a.prefix = Prefix::from_string("84.205.64.0/24");
  a.attrs.as_path = AsPath::sequence({20205, 3356, 174, 12654});
  a.source.peer_router_id = 1;
  Route b = a;
  b.source.peer_router_id = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(better_route(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecisionCompare);

}  // namespace
}  // namespace bgpcc

BENCHMARK_MAIN();
