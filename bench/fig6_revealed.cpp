// Figure 6: unique community attributes revealed during withdrawal phases
// of the RIPE beacon prefixes, 2010-2020, plus the single-day §6 numbers.
//
// Per sampled year the beacon internet grows (more tagging ingresses, more
// peers — mirroring community adoption and interconnection growth); the
// paper's shape: absolute counts grow multi-fold while the withdrawal-
// exclusive ratio stays stable around 60%.
#include <cstdio>

#include "analytics/driver.h"
#include "analytics/passes.h"
#include "core/beacon.h"
#include "core/tables.h"
#include "synth/beacon_internet.h"

using namespace bgpcc;

int main() {
  core::BeaconSchedule schedule;
  core::TextTable table({"year", "total uniq", "withdrawal-only",
                         "announce-only", "outside", "ambiguous", "ratio"});

  std::printf("simulating one beacon day per year, 2010-2020...\n\n");
  core::RevealedStats last_stats;
  std::uint64_t first_total = 0;
  double ratio_min = 1.0;
  double ratio_max = 0.0;

  for (int year = 2010; year <= 2020; ++year) {
    int growth = year - 2010;  // 0..10
    synth::BeaconOptions options;
    options.transit_ingresses = 4 + growth / 4;         // 4 -> 6
    options.peers_per_collector = 8 + growth;           // 8 -> 18
    options.collector_count = 2 + growth / 5;           // 2 -> 4
    options.beacon_count = 3 + growth / 4;              // 3 -> 5
    options.tagger_fraction = 0.10 + 0.01 * growth;
    options.seed = 7 + static_cast<std::uint64_t>(year);
    // Same wall-clock day layout each year; only the epoch differs.
    options.day_start =
        Timestamp::from_unix_seconds(1584230400 -
                                     (2020 - year) * 365ll * 86400);
    synth::BeaconInternet internet(options);
    internet.run_day(schedule);
    // The revealed statistic off the analytics engine: RevealedPass over
    // the day's stream — same phase buckets the streaming/inline modes
    // accumulate shard-parallel on real archives.
    analytics::AnalysisDriver driver;
    auto revealed = driver.add(analytics::RevealedPass{schedule});
    driver.observe_stream(internet.stream());
    core::RevealedStats stats = driver.report(revealed);

    if (year == 2010) first_total = stats.total_unique;
    last_stats = stats;
    ratio_min = std::min(ratio_min, stats.withdrawal_ratio());
    ratio_max = std::max(ratio_max, stats.withdrawal_ratio());
    table.add_row({std::to_string(year),
                   core::with_commas(stats.total_unique),
                   core::with_commas(stats.withdrawal_only),
                   core::with_commas(stats.announce_only),
                   core::with_commas(stats.outside_only),
                   core::with_commas(stats.ambiguous),
                   core::percent(stats.withdrawal_ratio())});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("single-day breakdown, 2020 (paper: 62%% withdrawal-only, 17%% "
              "announce, <1%% outside):\n");
  double announce_ratio =
      last_stats.total_unique == 0
          ? 0.0
          : static_cast<double>(last_stats.announce_only) /
                static_cast<double>(last_stats.total_unique);
  double outside_ratio =
      last_stats.total_unique == 0
          ? 0.0
          : static_cast<double>(last_stats.outside_only) /
                static_cast<double>(last_stats.total_unique);
  std::printf("  withdrawal-only %s, announce-only %s, outside %s\n\n",
              core::percent(last_stats.withdrawal_ratio()).c_str(),
              core::percent(announce_ratio).c_str(),
              core::percent(outside_ratio).c_str());

  std::printf("shape checks (paper: multi-fold growth, ratio stable ~60%%):\n");
  std::printf("  total uniques 2010 -> 2020: %llu -> %llu (%.1fx)\n",
              static_cast<unsigned long long>(first_total),
              static_cast<unsigned long long>(last_stats.total_unique),
              first_total == 0
                  ? 0.0
                  : static_cast<double>(last_stats.total_unique) /
                        static_cast<double>(first_total));
  std::printf("  withdrawal-only ratio range across years: %s .. %s\n",
              core::percent(ratio_min).c_str(),
              core::percent(ratio_max).c_str());
  return 0;
}
