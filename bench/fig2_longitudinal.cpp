// Figure 2: number of daily announcements per type at RIPE + RouteViews
// collectors, one sampled day every 3 months, 2010-2020.
//
// Regenerates the series with the macro generator's growth model. Volumes
// are scaled (default 1/8192); the paper's shapes to look for:
//   - pc and nn are the dominant and most variable types
//   - nc and pn are constantly high
//   - type shares are roughly stable despite growing absolute volume
//   - an nn artifact spike appears around mid-2012
//
// Usage: fig2_longitudinal [volume_scale_denom]
#include <cstdio>
#include <cstdlib>

#include "core/tables.h"
#include "synth/macrogen.h"

using namespace bgpcc;

int main(int argc, char** argv) {
  double volume_denom = argc > 1 ? std::atof(argv[1]) : 16384.0;

  core::TextTable table({"sample", "total", "pc", "pn", "nc", "nn", "xc",
                         "xn", "withdrawals"});
  std::printf("volume scale 1/%g; 41 quarterly samples 2010-2020...\n\n",
              volume_denom);

  struct Accum {
    std::uint64_t pc_total = 0;
    std::uint64_t nn_total = 0;
    std::uint64_t nn_2012 = 0;       // artifact quarters (Q2+Q3 2012)
    std::uint64_t nn_neighbors = 0;  // same quarters in 2011 and 2013
  } accum;

  for (int year = 2010; year <= 2020; ++year) {
    int max_quarter = (year == 2020) ? 0 : 3;  // paper data ends March 2020
    for (int quarter = 0; quarter <= max_quarter; ++quarter) {
      synth::MacroParams params = synth::MacroParams::for_sample(
          year, quarter, 1.0 / volume_denom, 1.0 / 256);
      synth::MacroGen gen(params);
      auto day = gen.classify_day();
      const core::TypeCounts& t = day.types;

      char name[16];
      std::snprintf(name, sizeof(name), "%d-Q%d", year, quarter + 1);
      table.add_row({name, core::with_commas(t.total()),
                     core::with_commas(t.count(core::AnnouncementType::kPc)),
                     core::with_commas(t.count(core::AnnouncementType::kPn)),
                     core::with_commas(t.count(core::AnnouncementType::kNc)),
                     core::with_commas(t.count(core::AnnouncementType::kNn)),
                     core::with_commas(t.count(core::AnnouncementType::kXc)),
                     core::with_commas(t.count(core::AnnouncementType::kXn)),
                     core::with_commas(day.stats.withdrawals)});

      accum.pc_total += t.count(core::AnnouncementType::kPc);
      accum.nn_total += t.count(core::AnnouncementType::kNn);
      std::uint64_t nn = t.count(core::AnnouncementType::kNn);
      if (quarter == 1 || quarter == 2) {
        if (year == 2012) accum.nn_2012 += nn;
        if (year == 2011 || year == 2013) accum.nn_neighbors += nn;
      }
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("shape checks:\n");
  double spike = accum.nn_neighbors == 0
                     ? 0.0
                     : static_cast<double>(accum.nn_2012) /
                           (static_cast<double>(accum.nn_neighbors) / 2.0);
  std::printf("  mid-2012 nn artifact spike: %.1fx the neighboring years "
              "(paper: prominent spike)\n",
              spike);
  std::printf("  pc total %s vs nn total %s (both dominant)\n",
              core::human_count(accum.pc_total).c_str(),
              core::human_count(accum.nn_total).c_str());
  return 0;
}
