// §3 lab experiments: the full Exp1-Exp4 x {Cisco IOS, Junos, BIRD} matrix
// with the paper's expected outcome next to the measured one.
#include <cstdio>
#include <string>

#include "core/tables.h"
#include "synth/labtopo.h"

using namespace bgpcc;
using synth::LabConfig;
using synth::LabExperiment;
using synth::LabResult;
using synth::LabScenario;

namespace {

struct Expectation {
  std::size_t y1_to_x1;
  std::size_t x1_to_c1;
};

// Paper §3, per scenario: (updates Y1->X1, updates at collector), for
// duplicate-emitting vendors and for Junos.
Expectation expected(LabScenario scenario, bool junos) {
  switch (scenario) {
    case LabScenario::kExp1NoCommunities:
      return junos ? Expectation{0, 0} : Expectation{1, 0};
    case LabScenario::kExp2GeoTagging:
      return Expectation{1, 1};  // nc propagates for every vendor
    case LabScenario::kExp3EgressCleaning:
      return junos ? Expectation{1, 0} : Expectation{1, 1};
    case LabScenario::kExp4IngressCleaning:
      return Expectation{1, 0};
  }
  return {0, 0};
}

}  // namespace

int main() {
  const VendorProfile vendors[] = {
      VendorProfile::cisco_ios(),
      VendorProfile::junos(),
      VendorProfile::bird(),
  };
  core::TextTable table({"experiment", "vendor", "Y1->X1 exp", "Y1->X1 meas",
                         "C1 exp", "C1 meas", "verdict"});
  int failures = 0;
  for (LabScenario scenario :
       {LabScenario::kExp1NoCommunities, LabScenario::kExp2GeoTagging,
        LabScenario::kExp3EgressCleaning,
        LabScenario::kExp4IngressCleaning}) {
    for (const VendorProfile& vendor : vendors) {
      LabConfig config;
      config.scenario = scenario;
      config.vendor = vendor;
      LabExperiment experiment(config);
      LabResult result = experiment.run();
      Expectation exp = expected(scenario, vendor.name == "junos");
      bool ok = result.y1_to_x1.size() == exp.y1_to_x1 &&
                result.x1_to_c1.size() == exp.x1_to_c1 &&
                result.quiet_after_convergence;
      if (!ok) ++failures;
      table.add_row({synth::label(scenario), vendor.name,
                     std::to_string(exp.y1_to_x1),
                     std::to_string(result.y1_to_x1.size()),
                     std::to_string(exp.x1_to_c1),
                     std::to_string(result.x1_to_c1.size()),
                     ok ? "match" : "MISMATCH"});
    }
    table.add_separator();
  }
  std::printf("Lab experiment matrix (messages after Y1-Y2 link failure)\n\n");
  std::printf("%s\n", table.to_string().c_str());
  std::printf("paper claims reproduced: %s\n",
              failures == 0 ? "ALL" : "MISMATCHES PRESENT");
  return failures == 0 ? 0 : 1;
}
