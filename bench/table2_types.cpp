// Table 2: announcement-type shares — paper vs measured, for both columns:
//   *d_mar20  (macro generator, one scaled day)
//   d_beacon  (event-driven beacon internet, one simulated day)
//
// The d_beacon column runs on the analytics engine: ClassifierPass
// observes inline on the ingestion shard threads (analyze_collectors),
// one traversal, no materialized intermediate stream walks.
//
// Usage: table2_types [volume_scale_denom]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "analytics/driver.h"
#include "analytics/passes.h"
#include "core/tables.h"
#include "synth/beacon_internet.h"
#include "synth/macrogen.h"

using namespace bgpcc;

namespace {

// Paper Table 2.
constexpr double kPaperMar20[6] = {33.7, 15.1, 24.5, 25.7, 0.3, 0.7};
constexpr double kPaperBeacon[6] = {44.6, 29.9, 13.8, 11.2, 0.2, 0.3};

}  // namespace

int main(int argc, char** argv) {
  double volume_denom = argc > 1 ? std::atof(argv[1]) : 2048.0;

  std::printf("generating *d_mar20 column (macro, volume 1/%g)...\n",
              volume_denom);
  synth::MacroGen macro(
      synth::MacroParams::march2020(1.0 / volume_denom, 1.0 / 64));
  core::TypeCounts mar20 = macro.classify_day().types;

  std::printf("simulating d_beacon column (event-driven beacon day)...\n\n");
  synth::BeaconOptions options;
  options.transit_ingresses = 6;
  options.peers_per_collector = 15;
  options.collector_count = 3;
  options.beacon_count = 5;
  synth::BeaconInternet internet(options);
  internet.run_day();

  analytics::AnalysisDriver driver;
  auto types = driver.add(analytics::ClassifierPass{});
  std::vector<const sim::RouteCollector*> collectors;
  for (const std::string& name : internet.collector_names()) {
    collectors.push_back(&internet.network().collector(name));
  }
  core::IngestOptions ingest;
  ingest.num_threads = 0;  // hardware concurrency
  (void)analytics::analyze_collectors(driver, collectors, ingest);
  core::TypeCounts beacon = driver.report(types).counts;

  core::TextTable table({"type", "observed changes", "*d_mar20 paper",
                         "*d_mar20 meas.", "d_beacon paper",
                         "d_beacon meas."});
  const char* descriptions[6] = {
      "path + community", "path only",       "community only",
      "no change",        "prepending+comm.", "prepending only"};
  for (std::size_t i = 0; i < 6; ++i) {
    core::AnnouncementType t = core::kAllAnnouncementTypes[i];
    table.add_row({core::label(t), descriptions[i],
                   core::format_double(kPaperMar20[i], 1) + "%",
                   core::percent(mar20.share(t)),
                   core::format_double(kPaperBeacon[i], 1) + "%",
                   core::percent(beacon.share(t))});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("key shapes:\n");
  double mar_ncnn = mar20.share(core::AnnouncementType::kNc) +
                    mar20.share(core::AnnouncementType::kNn);
  std::printf("  *d_mar20: nc+nn (no path change) = %s   (paper: 50.2%%)\n",
              core::percent(mar_ncnn).c_str());
  double beacon_pcpn = beacon.share(core::AnnouncementType::kPc) +
                       beacon.share(core::AnnouncementType::kPn);
  std::printf("  d_beacon: pc+pn (path change)    = %s   (paper: 74.5%%)\n",
              core::percent(beacon_pcpn).c_str());
  std::printf("  d_beacon announcements=%llu withdrawals=%llu (paper ratio "
              "~5.4:1)\n",
              static_cast<unsigned long long>(beacon.total() +
                                              beacon.first_sightings),
              static_cast<unsigned long long>(beacon.withdrawals));
  return 0;
}
