// community_audit: the paper's §7 "future work", implemented — per-AS
// community tomography (tagger / cleaner / propagator), peering-point
// inference from community exploration, and anomaly detection. Everything
// is computed from collector streams alone and scored against the
// simulator's ground truth.
//
// Run: ./community_audit
#include <cstdio>

#include "core/anomaly.h"
#include "core/peering.h"
#include "core/tables.h"
#include "core/tomography.h"
#include "synth/beacon_internet.h"

using namespace bgpcc;

int main() {
  synth::BeaconOptions options;
  options.transit_ingresses = 6;
  options.peers_per_collector = 15;
  options.collector_count = 2;
  options.beacon_count = 4;
  synth::BeaconInternet internet(options);
  internet.run_day();

  core::UpdateStream stream = internet.stream();
  auto evidence = core::infer_community_behavior(stream);

  core::TextTable table(
      {"AS", "on-path", "own-ns tags", "peer anns", "w/ comms", "inferred",
       "ground truth"});
  int correct = 0;
  int evaluated = 0;
  for (const core::AsEvidence& e : evidence) {
    std::string truth = "-";
    for (const synth::PeerInfo& peer : internet.peers()) {
      if (peer.asn != e.asn) continue;
      switch (peer.hygiene) {
        case synth::PeerHygiene::kPropagate:
          truth = "propagate";
          break;
        case synth::PeerHygiene::kCleanEgress:
        case synth::PeerHygiene::kCleanIngress:
          truth = "cleaner";
          break;
        case synth::PeerHygiene::kTagger:
          truth = "tagger";
          break;
      }
    }
    if (e.asn == Asn(synth::BeaconInternet::kAsnT) ||
        e.asn == Asn(synth::BeaconInternet::kAsnH)) {
      truth = "tagger";
    }
    const char* inferred = core::label(e.classification);
    if (truth != "-" && e.classification != core::CommunityBehavior::kUnknown) {
      ++evaluated;
      bool match = truth == inferred ||
                   (truth == "propagate" && std::string(inferred) == "propagator");
      if (match) ++correct;
    }
    if (e.on_path >= 10) {
      table.add_row({e.asn.to_string(), core::with_commas(e.on_path),
                     core::with_commas(e.own_namespace_tagged),
                     core::with_commas(e.as_peer),
                     core::with_commas(e.as_peer_with_communities), inferred,
                     truth});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  if (evaluated > 0) {
    std::printf("inference accuracy vs simulator ground truth: %d/%d (%s)\n",
                correct, evaluated,
                core::percent(static_cast<double>(correct) / evaluated)
                    .c_str());
  }

  // Peering inference (§7: interconnection counts from outside).
  std::printf("\n== inferred interconnections (from community exploration) "
              "==\n\n");
  core::TextTable peering(
      {"transit", "neighbor", "announcements", "ingress tag-sets",
       "location codes", "ground truth"});
  for (const core::PeeringEstimate& e : core::infer_peering(stream)) {
    if (e.distinct_ingress_tagsets == 0) continue;
    std::string truth = "-";
    if (e.transit == Asn(synth::BeaconInternet::kAsnT) &&
        e.neighbor == Asn(synth::BeaconInternet::kAsnU1)) {
      truth = std::to_string(internet.options().transit_ingresses) +
              " sessions";
    }
    peering.add_row({e.transit.to_string(), e.neighbor.to_string(),
                     core::with_commas(e.announcements),
                     std::to_string(e.distinct_ingress_tagsets),
                     std::to_string(e.distinct_location_codes), truth});
  }
  std::printf("%s\n", peering.to_string().c_str());

  // Anomaly scan: a healthy simulated day should be quiet.
  core::AnomalyReport report = core::detect_anomalies(stream);
  std::printf("== anomaly scan ==\n\n");
  std::printf("population nn share: mean %s, stddev %s\n",
              core::percent(report.population_mean_nn_share).c_str(),
              core::percent(report.population_stddev_nn_share).c_str());
  std::printf("duplicate outliers: %zu, novelty bursts: %zu\n",
              report.duplicate_outliers.size(),
              report.novelty_bursts.size());
  for (const core::DuplicateOutlier& outlier : report.duplicate_outliers) {
    std::printf("  OUTLIER %s nn=%llu/%llu (%.1f sigma)\n",
                outlier.session.to_string().c_str(),
                static_cast<unsigned long long>(outlier.nn),
                static_cast<unsigned long long>(outlier.classified),
                outlier.sigma);
  }
  return 0;
}
