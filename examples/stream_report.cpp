// stream_report: every paper-style number from ONE pass over compressed
// multi-archive input — the analytics engine end to end.
//
// A small beacon internet runs one simulated day; each collector's log
// is written as gzip-compressed MRT archives (exactly the shape of a
// RouteViews/RIS download directory); then a single windowed ingestion
// run cleans the stream while all nine shipped passes observe inline on
// the shard threads. Window runs spill to disk and the final merged
// records flow through a discarding sink, so NO cleaned stream is ever
// materialized: peak memory is O(window + shards + pass state), the
// configuration that scales to archives larger than RAM.
//
// Two modes:
//
//   ./stream_report
//       Batch: ingest everything, then print the nine-section report
//       once from the finalizing report().
//
//   ./stream_report --follow [--interval-ms N] [--metrics <path|->]
//       Live serving: the collector logs are written as a rotated dump
//       series (the 5-/15-minute files real collectors publish), and
//       the ingestion loop discovers one new dump per collector per
//       round — polling the growing archive directory the way a
//       long-running bgpccd would. After draining each round's windows
//       it takes a non-finalizing AnalysisDriver::snapshot() and
//       re-emits the full nine-section report for that epoch; the final
//       finish() + report() is byte-identical to the batch run.
//
// Metrics export (the obs layer): --metrics <path|-> enables stage
// timing and dumps the pipeline metric registry — Prometheus text
// format (or JSON when the path ends in .json) — once per epoch in
// --follow mode and once at the end of every run. Counters are
// cumulative, so successive per-epoch dumps diff into per-epoch deltas
// exactly like successive Prometheus scrapes. --metrics-interval-ms N
// additionally refreshes a file target every N ms from a background
// thread while ingestion runs.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analytics/driver.h"
#include "analytics/passes.h"
#include "core/tables.h"
#include "mrt/source.h"
#include "obs/metrics.h"
#include "synth/beacon_internet.h"

using namespace bgpcc;

namespace {

/// Handles for all nine shipped passes, registration order = wire tags.
struct Handles {
  analytics::PassHandle<analytics::ClassifierPass> types;
  analytics::PassHandle<analytics::PerSessionTypesPass> sessions;
  analytics::PassHandle<analytics::TomographyPass> tomography;
  analytics::PassHandle<analytics::CommunityStatsPass> communities;
  analytics::PassHandle<analytics::DuplicateBurstPass> duplicates;
  analytics::PassHandle<analytics::AnomalyPass> anomalies;
  analytics::PassHandle<analytics::RevealedPass> revealed;
  analytics::PassHandle<analytics::ExplorationPass> exploration;
  analytics::PassHandle<analytics::UsageClassificationPass> usage;
};

Handles add_passes(analytics::AnalysisDriver& driver) {
  Handles h;
  h.types = driver.add(analytics::ClassifierPass{});
  h.sessions = driver.add(analytics::PerSessionTypesPass{});
  h.tomography = driver.add(analytics::TomographyPass{});
  h.communities = driver.add(analytics::CommunityStatsPass{});
  h.duplicates = driver.add(analytics::DuplicateBurstPass{});
  core::AnomalyOptions anomaly_options;
  anomaly_options.min_classified = 20;
  anomaly_options.novelty_min_occurrences = 50;
  h.anomalies = driver.add(analytics::AnomalyPass{anomaly_options});
  core::BeaconSchedule schedule;  // the simulated day runs the RIS default
  h.revealed = driver.add(analytics::RevealedPass{schedule});
  h.exploration = driver.add(analytics::ExplorationPass{schedule});
  core::UsageOptions usage_options;
  usage_options.min_occurrences = 5;
  h.usage = driver.add(analytics::UsageClassificationPass{usage_options});
  return h;
}

/// All nine projections, collected from a snapshot or from the
/// finalized driver — the printer is agnostic to the source.
struct Reports {
  analytics::ClassifierPass::Report types;
  analytics::PerSessionTypesPass::Report sessions;
  analytics::TomographyPass::Report tomography;
  analytics::CommunityStatsPass::Report communities;
  analytics::DuplicateBurstPass::Report duplicates;
  core::AnomalyReport anomalies;
  core::RevealedStats revealed;
  analytics::ExplorationPass::Report exploration;
  analytics::UsageClassificationPass::Report usage;
};

Reports collect(const analytics::ReportSnapshot& snap, const Handles& h) {
  return Reports{snap.report(h.types),      snap.report(h.sessions),
                 snap.report(h.tomography), snap.report(h.communities),
                 snap.report(h.duplicates), snap.report(h.anomalies),
                 snap.report(h.revealed),   snap.report(h.exploration),
                 snap.report(h.usage)};
}

Reports collect_final(analytics::AnalysisDriver& driver, const Handles& h) {
  return Reports{driver.report(h.types),      driver.report(h.sessions),
                 driver.report(h.tomography), driver.report(h.communities),
                 driver.report(h.duplicates), driver.report(h.anomalies),
                 driver.report(h.revealed),   driver.report(h.exploration),
                 driver.report(h.usage)};
}

void print_report(const Reports& r) {
  // 1. Table-2-style announcement-type shares.
  core::TextTable table({"type", "observed changes", "count", "share"});
  const char* descriptions[6] = {
      "path + community", "path only",        "community only",
      "no change",        "prepending+comm.", "prepending only"};
  for (std::size_t i = 0; i < 6; ++i) {
    core::AnnouncementType type = core::kAllAnnouncementTypes[i];
    table.add_row({core::label(type), descriptions[i],
                   core::with_commas(r.types.counts.count(type)),
                   core::percent(r.types.counts.share(type))});
  }
  std::printf("%s\n", table.to_string().c_str());

  // 2. Per-session type ranking (Figure 3's input).
  std::printf("sessions ranked by activity (%zu total):\n",
              r.sessions.size());
  for (std::size_t i = 0; i < r.sessions.size() && i < 3; ++i) {
    const auto& [session, counts] = r.sessions[i];
    std::printf("  %s: %s classified\n", session.to_string().c_str(),
                core::with_commas(counts.total()).c_str());
  }

  // 3. §7 per-AS community-behavior tomography.
  std::size_t labeled = 0;
  for (const core::AsEvidence& e : r.tomography) {
    if (e.classification != core::CommunityBehavior::kUnknown) ++labeled;
  }
  std::printf("tomography: %zu ASes observed on-path, %zu with inferred "
              "community behavior\n",
              r.tomography.size(), labeled);

  // 4. Community-attribute statistics (Table 1's community rows).
  std::printf("announcements w/ communities: %s  (mean %s per "
              "announcement)\n",
              core::percent(r.communities.share_with_communities()).c_str(),
              core::format_double(r.communities.mean_communities(), 2)
                  .c_str());
  std::printf("unique community values: %s across %zu AS namespaces\n",
              core::with_commas(r.communities.unique_communities).c_str(),
              r.communities.namespaces.size());

  // 5. Duplicate attribution.
  std::printf("duplicates: %s nn among %s classified announcements; "
              "%s bursts\n",
              core::with_commas(r.duplicates.nn).c_str(),
              core::with_commas(r.duplicates.classified).c_str(),
              core::with_commas(r.duplicates.bursts).c_str());

  // 6. Anomaly scan (§7): duplicate outliers + novelty bursts.
  std::printf("\nanomaly scan: population nn share mean %s (stddev %s); "
              "%zu duplicate outliers, %zu novelty bursts\n",
              core::percent(r.anomalies.population_mean_nn_share).c_str(),
              core::percent(r.anomalies.population_stddev_nn_share).c_str(),
              r.anomalies.duplicate_outliers.size(),
              r.anomalies.novelty_bursts.size());
  for (std::size_t i = 0; i < r.anomalies.novelty_bursts.size() && i < 3;
       ++i) {
    const core::NoveltyBurst& burst = r.anomalies.novelty_bursts[i];
    std::printf("  burst: %s x%s from %s\n",
                burst.community.to_string().c_str(),
                core::with_commas(burst.occurrences).c_str(),
                burst.first_seen.time_of_day_string().substr(0, 8).c_str());
  }

  // 7. Revealed information (§6 / Figure 6).
  std::printf("revealed attributes: %s unique; withdrawal-only %s, "
              "announce-only %s, ambiguous %s\n",
              core::with_commas(r.revealed.total_unique).c_str(),
              core::percent(r.revealed.withdrawal_ratio()).c_str(),
              core::with_commas(r.revealed.announce_only).c_str(),
              core::with_commas(r.revealed.ambiguous).c_str());

  // 8. §6 community exploration (Figure 4).
  std::printf("exploration: %zu namespace-exploration events\n",
              r.exploration.size());

  // 9. Per-AS community usage (Krenc et al., IMC 2021).
  core::TextTable usage_table(
      {"namespace", "profile", "occurrences", "values", "sessions"});
  for (std::size_t i = 0; i < r.usage.size() && i < 6; ++i) {
    const core::AsUsage& as_usage = r.usage[i];
    usage_table.add_row({std::to_string(as_usage.asn16),
                         core::label(as_usage.profile),
                         core::with_commas(as_usage.occurrences),
                         core::with_commas(as_usage.distinct_values),
                         core::with_commas(as_usage.sessions)});
  }
  std::printf("\ncommunity usage by namespace:\n%s",
              usage_table.to_string().c_str());
}

/// Renders the global metric registry to the --metrics target: "-" is
/// stdout (always Prometheus text), a path ending in .json gets the
/// JSON rendering, anything else the Prometheus text format. File
/// targets are rewritten whole on every emit, like a scrape endpoint.
class MetricsEmitter {
 public:
  explicit MetricsEmitter(std::string target)
      : target_(std::move(target)),
        json_(target_.size() > 5 &&
              target_.compare(target_.size() - 5, 5, ".json") == 0) {}

  void emit() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (target_ == "-") {
      obs::render_prometheus(std::cout);
      std::cout.flush();
      return;
    }
    std::ofstream out(target_, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "stream_report: cannot write metrics to %s\n",
                   target_.c_str());
      return;
    }
    if (json_) {
      obs::render_json(out);
    } else {
      obs::render_prometheus(out);
    }
  }

  /// Refreshes a file target every `period_ms` until stop() — the
  /// "live scrape file" mode. stdout targets stay epoch-driven so the
  /// report text is not interleaved mid-line.
  void start_periodic(long period_ms) {
    if (period_ms <= 0 || target_ == "-") return;
    ticker_ = std::thread([this, period_ms] {
      std::unique_lock<std::mutex> lock(stop_mutex_);
      while (!stop_cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                                [this] { return stopped_; })) {
        emit();
      }
    });
  }

  void stop() {
    if (!ticker_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(stop_mutex_);
      stopped_ = true;
    }
    stop_cv_.notify_all();
    ticker_.join();
  }

  ~MetricsEmitter() { stop(); }

 private:
  std::string target_;
  bool json_;
  std::mutex mutex_;  // emit() runs from the ticker and the main thread
  std::thread ticker_;
  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopped_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  bool follow = false;
  long interval_ms = 0;
  std::string metrics_target;
  long metrics_interval_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--follow") == 0) {
      follow = true;
    } else if (std::strcmp(argv[i], "--interval-ms") == 0 && i + 1 < argc) {
      interval_ms = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_target = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-interval-ms") == 0 &&
               i + 1 < argc) {
      metrics_interval_ms = std::strtol(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--follow] [--interval-ms N] "
                   "[--metrics <path|->] [--metrics-interval-ms N]\n",
                   argv[0]);
      return 2;
    }
  }

  std::unique_ptr<MetricsEmitter> metrics;
  if (!metrics_target.empty()) {
    obs::set_enabled(true);  // turn on stage-timing clock reads
    metrics = std::make_unique<MetricsEmitter>(metrics_target);
    metrics->start_periodic(metrics_interval_ms);
  }

  // 1. Simulate a day and write compressed collector archives. In
  // --follow mode each collector's log is rotated into a dump series,
  // and the ingestion loop below discovers one dump per round.
  synth::BeaconOptions options;
  options.transit_ingresses = 6;
  options.peers_per_collector = 12;
  options.collector_count = 2;
  options.beacon_count = 3;
  synth::BeaconInternet internet(options);
  std::printf("simulating one beacon day at %d collectors...\n",
              options.collector_count);
  internet.run_day();

  mrt::Compression compression = mrt::gzip_supported()
                                     ? mrt::Compression::kGzip
                                     : mrt::Compression::kNone;
  const char* suffix =
      compression == mrt::Compression::kGzip ? ".mrt.gz" : ".mrt";
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "bgpcc_stream_report";
  std::filesystem::create_directories(dir);
  constexpr std::size_t kRotations = 4;  // dumps per collector in --follow
  std::map<std::string, std::vector<std::string>> archives;
  for (const std::string& name : internet.collector_names()) {
    const sim::RouteCollector& collector = internet.network().collector(name);
    if (follow) {
      archives[name] = collector.write_mrt_rotated(
          (dir / name).string(), kRotations, /*extended_time=*/true,
          compression);
    } else {
      std::string path = (dir / (name + suffix)).string();
      collector.write_mrt(path, /*extended_time=*/true, compression);
      archives[name].push_back(path);
    }
    for (const std::string& path : archives[name]) {
      std::printf("  wrote %s (%ju bytes)\n", path.c_str(),
                  static_cast<std::uintmax_t>(
                      std::filesystem::file_size(path)));
    }
  }

  // 2. One pass: windowed ingestion + inline analytics on shard threads.
  core::Registry registry = internet.make_registry();
  core::CleaningOptions cleaning;
  cleaning.registry = &registry;

  analytics::AnalysisDriver driver;
  Handles handles = add_passes(driver);

  core::IngestOptions ingest;
  ingest.num_threads = 0;        // hardware concurrency
  ingest.window_records = 2048;  // O(window) memory: streaming mode
  ingest.spill_dir = (dir / "spill").string();  // runs spill to disk
  ingest.cleaning = &cleaning;
  driver.attach(ingest);  // passes observe inline on the shard threads

  core::StreamingIngestor ingestor(ingest);

  if (follow) {
    // 2a. Live serving: each round, one new dump per collector appears
    // (the growing download directory); drain its windows, then take a
    // non-finalizing snapshot at the committed-window boundary and
    // re-emit the full report for that epoch.
    for (std::size_t round = 0; round < kRotations; ++round) {
      for (const auto& [collector, paths] : archives) {
        ingestor.add_file(collector, paths[round]);
      }
      while (ingestor.poll()) {
      }
      analytics::ReportSnapshot snap = driver.snapshot();
      std::printf("\n===== epoch %ju: %s raw records ingested =====\n\n",
                  static_cast<std::uintmax_t>(snap.epoch()),
                  core::with_commas(ingestor.stats().raw_records).c_str());
      print_report(collect(snap, handles));
      if (metrics) {
        std::printf("\n----- epoch %ju metrics -----\n",
                    static_cast<std::uintmax_t>(snap.epoch()));
        metrics->emit();
      }
      if (interval_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      }
    }
  } else {
    for (const auto& [collector, paths] : archives) {
      for (const std::string& path : paths) {
        ingestor.add_file(collector, path);
      }
    }
  }

  // 3. Finish: the merged records flow past a counting sink without ever
  // being materialized — only the pass states survive the run. The
  // finalizing report() after any number of snapshots is byte-identical
  // to one taken on a never-snapshotted run.
  std::size_t cleaned = 0;
  core::IngestResult result =
      ingestor.finish([&cleaned](core::UpdateRecord&&) { ++cleaned; });

  std::printf("\n%singested %zu raw records -> %zu cleaned records "
              "(%zu windows, %u threads, stream never materialized)\n\n",
              follow ? "===== final report =====\n\n" : "",
              result.stats.raw_records, cleaned, result.stats.windows,
              result.stats.threads);
  print_report(collect_final(driver, handles));

  if (metrics) {
    metrics->stop();  // final emit below supersedes the periodic file
    if (metrics_target != "-") {
      std::printf("\nwrote metrics to %s\n", metrics_target.c_str());
    } else {
      std::printf("\n----- final metrics -----\n");
    }
    metrics->emit();
  }

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}
