// stream_report: every paper-style number from ONE pass over compressed
// multi-archive input — the analytics engine end to end.
//
// A small beacon internet runs one simulated day; each collector's log
// is written as a gzip-compressed MRT archive (exactly the shape of a
// RouteViews/RIS download directory); then a single windowed ingestion
// run cleans the stream while ClassifierPass, CommunityStatsPass,
// DuplicateBurstPass, AnomalyPass, RevealedPass, and
// UsageClassificationPass observe inline on the shard threads. Window runs
// spill to disk and the final merged records flow through a discarding
// sink, so NO cleaned stream is ever materialized: peak memory is
// O(window + shards + pass state), the configuration that scales to
// archives larger than RAM.
//
// Run: ./stream_report
#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "analytics/driver.h"
#include "analytics/passes.h"
#include "core/tables.h"
#include "mrt/source.h"
#include "synth/beacon_internet.h"

using namespace bgpcc;

int main() {
  // 1. Simulate a day and write compressed collector archives.
  synth::BeaconOptions options;
  options.transit_ingresses = 6;
  options.peers_per_collector = 12;
  options.collector_count = 2;
  options.beacon_count = 3;
  synth::BeaconInternet internet(options);
  std::printf("simulating one beacon day at %d collectors...\n",
              options.collector_count);
  internet.run_day();

  mrt::Compression compression = mrt::gzip_supported()
                                     ? mrt::Compression::kGzip
                                     : mrt::Compression::kNone;
  const char* suffix =
      compression == mrt::Compression::kGzip ? ".mrt.gz" : ".mrt";
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "bgpcc_stream_report";
  std::filesystem::create_directories(dir);
  std::map<std::string, std::vector<std::string>> archives;
  for (const std::string& name : internet.collector_names()) {
    std::string path = (dir / (name + suffix)).string();
    internet.network().collector(name).write_mrt(path,
                                                 /*extended_time=*/true,
                                                 compression);
    archives[name].push_back(path);
    std::printf("  wrote %s (%ju bytes)\n", path.c_str(),
                static_cast<std::uintmax_t>(
                    std::filesystem::file_size(path)));
  }

  // 2. One pass: windowed ingestion + inline analytics on shard threads.
  core::Registry registry = internet.make_registry();
  core::CleaningOptions cleaning;
  cleaning.registry = &registry;

  analytics::AnalysisDriver driver;
  auto types = driver.add(analytics::ClassifierPass{});
  auto communities = driver.add(analytics::CommunityStatsPass{});
  auto duplicates = driver.add(analytics::DuplicateBurstPass{});
  core::AnomalyOptions anomaly_options;
  anomaly_options.min_classified = 20;
  anomaly_options.novelty_min_occurrences = 50;
  auto anomalies = driver.add(analytics::AnomalyPass{anomaly_options});
  core::BeaconSchedule schedule;  // the simulated day runs the RIS default
  auto revealed = driver.add(analytics::RevealedPass{schedule});
  core::UsageOptions usage_options;
  usage_options.min_occurrences = 5;
  auto usage = driver.add(analytics::UsageClassificationPass{usage_options});

  core::IngestOptions ingest;
  ingest.num_threads = 0;        // hardware concurrency
  ingest.window_records = 2048;  // O(window) memory: streaming mode
  ingest.spill_dir = (dir / "spill").string();  // runs spill to disk
  ingest.cleaning = &cleaning;
  driver.attach(ingest);  // passes observe inline on the shard threads

  core::StreamingIngestor ingestor(ingest);
  for (const auto& [collector, paths] : archives) {
    for (const std::string& path : paths) {
      ingestor.add_file(collector, path);
    }
  }
  // Counting sink: the merged records flow past without ever being
  // materialized — only the pass states survive the run.
  std::size_t cleaned = 0;
  core::IngestResult result =
      ingestor.finish([&cleaned](core::UpdateRecord&&) { ++cleaned; });

  std::printf("\ningested %zu raw records -> %zu cleaned records "
              "(%zu windows, %u threads, stream never materialized)\n\n",
              result.stats.raw_records, cleaned, result.stats.windows,
              result.stats.threads);

  // 3. Table-2-style announcement-type shares.
  analytics::ClassifierPass::Report t = driver.report(types);
  core::TextTable table({"type", "observed changes", "count", "share"});
  const char* descriptions[6] = {
      "path + community", "path only",        "community only",
      "no change",        "prepending+comm.", "prepending only"};
  for (std::size_t i = 0; i < 6; ++i) {
    core::AnnouncementType type = core::kAllAnnouncementTypes[i];
    table.add_row({core::label(type), descriptions[i],
                   core::with_commas(t.counts.count(type)),
                   core::percent(t.counts.share(type))});
  }
  std::printf("%s\n", table.to_string().c_str());

  // 4. Community-attribute statistics (Table 1's community rows).
  analytics::CommunityStatsPass::Report c = driver.report(communities);
  std::printf("announcements w/ communities: %s  (mean %s per "
              "announcement)\n",
              core::percent(c.share_with_communities()).c_str(),
              core::format_double(c.mean_communities(), 2).c_str());
  std::printf("unique community values: %s across %zu AS namespaces\n",
              core::with_commas(c.unique_communities).c_str(),
              c.namespaces.size());

  // 5. Duplicate attribution.
  analytics::DuplicateBurstPass::Report d = driver.report(duplicates);
  std::printf("duplicates: %s nn among %s classified announcements; "
              "%s bursts\n",
              core::with_commas(d.nn).c_str(),
              core::with_commas(d.classified).c_str(),
              core::with_commas(d.bursts).c_str());

  // 6. Anomaly scan (§7): duplicate outliers + novelty bursts — the same
  // kernels as core::detect_anomalies, accumulated on the shard threads.
  core::AnomalyReport a = driver.report(anomalies);
  std::printf("\nanomaly scan: population nn share mean %s (stddev %s); "
              "%zu duplicate outliers, %zu novelty bursts\n",
              core::percent(a.population_mean_nn_share).c_str(),
              core::percent(a.population_stddev_nn_share).c_str(),
              a.duplicate_outliers.size(), a.novelty_bursts.size());
  for (std::size_t i = 0; i < a.novelty_bursts.size() && i < 3; ++i) {
    const core::NoveltyBurst& burst = a.novelty_bursts[i];
    std::printf("  burst: %s x%s from %s\n",
                burst.community.to_string().c_str(),
                core::with_commas(burst.occurrences).c_str(),
                burst.first_seen.time_of_day_string().substr(0, 8).c_str());
  }

  // 7. Revealed information (§6 / Figure 6).
  core::RevealedStats r = driver.report(revealed);
  std::printf("revealed attributes: %s unique; withdrawal-only %s, "
              "announce-only %s, ambiguous %s\n",
              core::with_commas(r.total_unique).c_str(),
              core::percent(r.withdrawal_ratio()).c_str(),
              core::with_commas(r.announce_only).c_str(),
              core::with_commas(r.ambiguous).c_str());

  // 8. Per-AS community usage (Krenc et al., IMC 2021).
  analytics::UsageClassificationPass::Report u = driver.report(usage);
  core::TextTable usage_table(
      {"namespace", "profile", "occurrences", "values", "sessions"});
  for (std::size_t i = 0; i < u.size() && i < 6; ++i) {
    const core::AsUsage& as_usage = u[i];
    usage_table.add_row({std::to_string(as_usage.asn16),
                         core::label(as_usage.profile),
                         core::with_commas(as_usage.occurrences),
                         core::with_commas(as_usage.distinct_values),
                         core::with_commas(as_usage.sessions)});
  }
  std::printf("\ncommunity usage by namespace:\n%s",
              usage_table.to_string().c_str());

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return 0;
}
