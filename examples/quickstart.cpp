// Quickstart: build a tiny internet, flap a link, and watch a community
// change ripple to a route collector — then classify what the collector
// saw with the paper's announcement-type classifier.
//
//   A (AS100, origin) -- B (AS200, geo-tags at ingress) -- collector
//
// Run: ./quickstart
#include <cstdio>

#include "core/classifier.h"
#include "sim/network.h"

using namespace bgpcc;

int main() {
  sim::Network net;

  // Two routers and a collector. Vendor profiles control duplicate
  // behavior; cisco_ios() reproduces the paper's default observations.
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B", Asn(200), VendorProfile::cisco_ios());
  net.add_collector("rrc00", Asn(65000));

  // B tags everything it hears from A with a geo community at ingress.
  sim::SessionOptions ab;
  ab.b_import = Policy::tag_all(Community::of(200, 301));
  net.add_session("A", "B", ab);
  net.add_session("B", "rrc00");

  net.start();

  // A announces a prefix, then changes its own community twice —
  // community-only changes that B transitively forwards.
  Prefix prefix = Prefix::from_string("203.0.113.0/24");
  for (int i = 0; i < 3; ++i) {
    net.scheduler().at(net.now() + Duration::seconds(1 + i * 10),
                       [&a, &net, prefix, i] {
                         PathAttributes base;
                         base.communities.add(
                             Community::of(100, static_cast<std::uint16_t>(i)));
                         a.originate(prefix, net.now(), std::move(base));
                       });
  }
  net.run();

  // Analyze the collector's view.
  core::UpdateStream stream =
      core::UpdateStream::from_collector(net.collector("rrc00"));
  std::printf("collector heard %zu update records\n", stream.size());
  core::TypeCounts counts = core::classify_stream(
      stream, [](const core::UpdateRecord& record,
                 std::optional<core::AnnouncementType> type) {
        std::printf("  %s  %-4s  path=[%s] comms={%s}\n",
                    record.time.time_of_day_string().c_str(),
                    type ? core::label(*type) : "new",
                    record.attrs.as_path.to_string().c_str(),
                    record.attrs.communities.to_string().c_str());
      });

  std::printf("\nannouncement types:\n");
  for (core::AnnouncementType t : core::kAllAnnouncementTypes) {
    if (counts.count(t) > 0) {
      std::printf("  %s: %llu\n", core::label(t),
                  static_cast<unsigned long long>(counts.count(t)));
    }
  }
  std::printf(
      "\nThe community-only changes show up as 'nc' — updates that alter "
      "no path\nyet still traverse (and load) every AS on the way to the "
      "collector.\n");
  return 0;
}
