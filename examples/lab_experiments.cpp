// Reproduces the paper's §3 controlled experiments (Exp1-Exp4) on the
// Figure 1 topology, across the three vendor profiles, and prints the
// captured messages at both observation points.
//
// Run: ./lab_experiments
#include <cstdio>

#include "core/tables.h"
#include "synth/labtopo.h"

using namespace bgpcc;
using synth::LabConfig;
using synth::LabExperiment;
using synth::LabResult;
using synth::LabScenario;

int main() {
  const LabScenario scenarios[] = {
      LabScenario::kExp1NoCommunities,
      LabScenario::kExp2GeoTagging,
      LabScenario::kExp3EgressCleaning,
      LabScenario::kExp4IngressCleaning,
  };
  const VendorProfile vendors[] = {
      VendorProfile::cisco_ios(),
      VendorProfile::junos(),
      VendorProfile::bird(),
  };

  core::TextTable table(
      {"experiment", "vendor", "Y1->X1", "X1->C1 (collector)"});
  for (LabScenario scenario : scenarios) {
    for (const VendorProfile& vendor : vendors) {
      LabConfig config;
      config.scenario = scenario;
      config.vendor = vendor;
      LabExperiment experiment(config);
      LabResult result = experiment.run();
      table.add_row({synth::label(scenario), vendor.name,
                     std::to_string(result.y1_to_x1.size()),
                     std::to_string(result.x1_to_c1.size())});
    }
    table.add_separator();
  }
  std::printf("Messages observed after disabling the Y1-Y2 link\n\n%s\n",
              table.to_string().c_str());

  // Detail view of Exp2 (community change as sole trigger) on Cisco IOS.
  LabConfig config;
  config.scenario = LabScenario::kExp2GeoTagging;
  LabExperiment experiment(config);
  LabResult result = experiment.run();
  std::printf("Exp2 detail (cisco-ios):\n");
  std::printf("  steady state at collector: comms={%s}\n",
              result.collector_steady_communities.to_string().c_str());
  for (const synth::CapturedMessage& m : result.y1_to_x1) {
    std::printf("  Y1->X1  %s\n", m.update.summary().c_str());
  }
  for (const synth::CapturedMessage& m : result.x1_to_c1) {
    std::printf("  X1->C1  %s\n", m.update.summary().c_str());
  }
  std::printf(
      "\nNote how X1's update toward the collector has an unchanged AS path"
      "\n(100 200 300): the community is the sole trigger.\n");
  return 0;
}
