// mrt_inspect: a command-line MRT dump/classify tool (bgpdump-lite).
// Reads an RFC 6396 BGP4MP file, prints each update, and summarizes the
// announcement-type mix.
//
// Run: ./mrt_inspect <file.mrt> [--quiet]
// (produce an input with ./beacon_study, which writes rrc0*.mrt)
#include <cstdio>
#include <cstring>
#include <string>

#include "core/classifier.h"
#include "core/tables.h"
#include "netbase/error.h"

using namespace bgpcc;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file.mrt> [--quiet]\n", argv[0]);
    return 2;
  }
  bool quiet = argc > 2 && std::strcmp(argv[2], "--quiet") == 0;

  core::UpdateStream stream;
  try {
    stream = core::UpdateStream::from_mrt_file("mrt", argv[1]);
  } catch (const DecodeError& e) {
    std::fprintf(stderr, "decode error: %s\n", e.what());
    return 1;
  }

  core::TypeCounts counts = core::classify_stream(
      stream, [quiet](const core::UpdateRecord& record,
                      std::optional<core::AnnouncementType> type) {
        if (quiet) return;
        if (!record.announcement) {
          std::printf("%s %-22s W %s\n",
                      record.time.time_of_day_string().c_str(),
                      record.session.peer_asn.to_string().c_str(),
                      record.prefix.to_string().c_str());
          return;
        }
        std::printf("%s %-22s A %-20s %-4s [%s] {%s}\n",
                    record.time.time_of_day_string().c_str(),
                    record.session.peer_asn.to_string().c_str(),
                    record.prefix.to_string().c_str(),
                    type ? core::label(*type) : "new",
                    record.attrs.as_path.to_string().c_str(),
                    record.attrs.communities.to_string().c_str());
      });

  std::printf("\n%zu records, %zu announcements, %zu withdrawals, %zu "
              "sessions\n",
              stream.size(), stream.announcement_count(),
              stream.withdrawal_count(), stream.sessions().size());
  core::TextTable table({"type", "count", "share"});
  for (core::AnnouncementType t : core::kAllAnnouncementTypes) {
    table.add_row({core::label(t), core::with_commas(counts.count(t)),
                   core::percent(counts.share(t))});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}
