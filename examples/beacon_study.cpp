// Beacon study: simulate one day of RIPE-style routing beacons on the
// synthetic internet, export each collector's view as a real MRT file,
// and run the paper's §5/§6 analyses on the result.
//
// Run: ./beacon_study [output_dir]
#include <cstdio>
#include <string>

#include "core/beacon.h"
#include "core/tables.h"
#include "synth/beacon_internet.h"

using namespace bgpcc;

int main(int argc, char** argv) {
  std::string output_dir = argc > 1 ? argv[1] : ".";

  synth::BeaconOptions options;
  options.transit_ingresses = 6;
  options.peers_per_collector = 12;
  options.collector_count = 2;
  options.beacon_count = 3;
  synth::BeaconInternet internet(options);

  std::printf("simulating one beacon day (%d beacons, %d collectors)...\n",
              options.beacon_count, options.collector_count);
  core::BeaconSchedule schedule;
  internet.run_day(schedule);

  // Export MRT archives — the same bytes a RouteViews/RIS mirror serves.
  for (const std::string& name : internet.collector_names()) {
    std::string path = output_dir + "/" + name + ".mrt";
    internet.network().collector(name).write_mrt(path);
    std::printf("wrote %s (%zu messages)\n", path.c_str(),
                internet.network().collector(name).message_count());
  }

  core::UpdateStream stream = internet.stream();
  std::printf("\n%zu records (%zu announcements, %zu withdrawals) on %zu "
              "sessions\n",
              stream.size(), stream.announcement_count(),
              stream.withdrawal_count(), stream.sessions().size());

  // Announcement-type mix (Table 2's d_beacon column).
  core::TypeCounts counts = core::classify_stream(stream);
  core::TextTable table({"type", "count", "share"});
  for (core::AnnouncementType t : core::kAllAnnouncementTypes) {
    table.add_row({core::label(t), core::with_commas(counts.count(t)),
                   core::percent(counts.share(t))});
  }
  std::printf("\nannouncement types (d_beacon):\n%s",
              table.to_string().c_str());

  // Community exploration events (§6, Figure 4's mechanism).
  auto events = core::find_community_exploration(stream, schedule);
  std::printf("\ncommunity exploration events: %zu\n", events.size());
  for (std::size_t i = 0; i < events.size() && i < 5; ++i) {
    const core::ExplorationEvent& e = events[i];
    std::printf("  path [%s]: %d nc announcements, %d distinct community "
                "attributes\n",
                e.as_path.to_string().c_str(), e.nc_count,
                e.distinct_attributes);
  }

  // Revealed information (§6, Figure 6's per-day numbers).
  core::RevealedStats revealed = core::analyze_revealed(stream, schedule);
  std::printf("\nrevealed community attributes: %llu unique\n",
              static_cast<unsigned long long>(revealed.total_unique));
  std::printf("  withdrawal-phase exclusive: %llu (%s)\n",
              static_cast<unsigned long long>(revealed.withdrawal_only),
              core::percent(revealed.withdrawal_ratio()).c_str());
  std::printf("  announce-phase exclusive:   %llu\n",
              static_cast<unsigned long long>(revealed.announce_only));
  std::printf("  outside phases only:        %llu\n",
              static_cast<unsigned long long>(revealed.outside_only));
  std::printf("  ambiguous:                  %llu\n",
              static_cast<unsigned long long>(revealed.ambiguous));
  return 0;
}
