#!/usr/bin/env python3
"""bgpcc-lint: project-invariant static analysis for the bgpcc tree.

The dynamic test batteries (differential, golden, sanitizer) prove the
paper-reproduction contract *after* the fact; bgpcc-lint enforces the
load-bearing invariants statically, before any test runs:

  D1  no iteration over unordered containers inside deterministic-output
      functions (serialize/save, report(), render_*, write_*, golden
      paths) without an intervening sort barrier — the PR 6 rule that
      makes identical state always produce identical bytes.
  D2  no wall-clock, randomness, pointer-value, or locale-dependent
      formatting feeding deterministic output.
  H1  no mutex acquisition, heap allocation, container growth, or throw
      in the shard-observer / obs hot paths that PR 8/9 promise are
      lock-free (AnalysisDriver::observe_shard, obs::Counter::inc,
      obs::Gauge updates, obs::Histogram::observe, obs::StageTimer).
  P1  pass-contract conformance: every `*Pass` class with a nested
      State declares kStateTag (unique, and a serialize::PassTag value
      when the enum is in view), the full State interface
      (observe/merge/report/save/load), make_state, and a
      copy-constructible State (the snapshot contract).
  S1  DecodeError-path completeness: decode functions never bypass the
      serialize::Reader primitives with raw stream reads, and never
      pre-size allocations from an unvalidated wire-read count.
  SUP suppression hygiene: every inline suppression must carry a
      reason string (SUP findings are themselves unsuppressible).

Findings are suppressed inline with a reason:

    // bgpcc-lint: allow(D1, iteration feeds a hash, not output bytes)

A trailing comment covers its statement; a standalone comment line
covers the following statement. `allow-file(ID, reason)` anywhere in a
file covers the whole file. Reasons are mandatory.

Engine: a token/AST-lite analyzer that needs nothing beyond the Python
standard library, so it runs in bare CI and in the 1-CPU dev container.
When the libclang Python bindings are importable, `--engine clang`
cross-checks D1 range-for types against the real AST (experimental; the
token engine remains the gate and is what the fixture corpus pins).

Usage:
    bgpcc_lint.py [options] path [path...]
        paths are files or directories (recursed for .h/.hpp/.cc/.cpp)
    --checks D1,H1,...   run a subset (default: all)
    --format text|compact|json
    --root DIR           paths in output are reported relative to DIR
    --engine tokens|clang
    --list-checks        print the check inventory and exit

Exit status: 0 clean, 1 findings, 2 usage/internal error.

See docs/LINTING.md for the full check inventory and suppression
policy; tests/lint_fixtures/ is the executable specification.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Project configuration: which functions are deterministic-output paths,
# which are lock-free hot paths. Kept as data so a future PR extends the
# contract by editing two tuples.

# Unqualified function names whose bodies must emit deterministically.
EMIT_FUNCTION_NAMES = {"save", "serialize", "report", "to_string"}
# Name prefixes that mark deterministic-output helpers.
EMIT_FUNCTION_PREFIXES = (
    "render_", "write_", "print_", "emit_", "format_", "finalize_",
)

# Qualified-name suffixes of the lock-free hot paths (PR 8/9 contract).
HOT_PATH_SUFFIXES = (
    "AnalysisDriver::observe_shard",
    "Counter::inc",
    "Gauge::set",
    "Gauge::add",
    "Gauge::sub",
    "Histogram::observe",
    "StageTimer::StageTimer",
    "StageTimer::~StageTimer",
    "StageTimer::stop",
)

UNORDERED_TYPE_RE = re.compile(
    r"\b(unordered_map|unordered_set|unordered_multimap|unordered_multiset|"
    r"flat_hash_map|flat_hash_set|node_hash_map|node_hash_set)\b")

# D2: calls that make output depend on something other than the state.
NONDETERMINISM_TOKENS = (
    # (regex on code text, what it is)
    (re.compile(r"\b(system_clock|high_resolution_clock|steady_clock)\s*::"
                r"\s*now\b"), "a clock read"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(nullptr|NULL|0|&)"), "wall-clock "
     "time()"),
    (re.compile(r"\bgettimeofday\s*\("), "wall-clock gettimeofday()"),
    (re.compile(r"(?<![\w:])clock\s*\(\s*\)"), "the process clock"),
    (re.compile(r"\b(localtime|localtime_r)\s*\("), "local-timezone "
     "formatting"),
    (re.compile(r"(?<![\w:])(rand|srand|random)\s*\("), "C randomness"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bdefault_random_engine\b"), "a random engine"),
    (re.compile(r"\bsetlocale\s*\("), "setlocale"),
    (re.compile(r"\bstd\s*::\s*locale\b"), "std::locale"),
    (re.compile(r"\.\s*imbue\s*\("), "stream locale imbuing"),
    (re.compile(r"\bgetenv\s*\("), "environment lookup"),
    (re.compile(r"\bstatic_cast\s*<\s*(const\s+)?void\s*\*\s*>"),
     "pointer-value formatting"),
)
# %p in a format string (checked against raw text, strings included).
POINTER_FORMAT_RE = re.compile(r'"[^"\n]*%p[^"\n]*"')

# H1: tokens forbidden in lock-free hot paths.
HOT_PATH_FORBIDDEN = (
    (re.compile(r"\b(lock_guard|unique_lock|scoped_lock|shared_lock)\b"),
     "acquires a mutex"),
    (re.compile(r"\bstd\s*::\s*mutex\b"), "names a mutex"),
    (re.compile(r"\.\s*lock\s*\(\s*\)"), "acquires a lock"),
    (re.compile(r"(?<!\w)new\b(?!\s*\()"), "heap-allocates"),
    (re.compile(r"\b(make_unique|make_shared)\b"), "heap-allocates"),
    (re.compile(r"\b(malloc|calloc|realloc)\s*\("), "heap-allocates"),
    (re.compile(r"\.\s*(push_back|emplace_back|emplace|insert|resize|"
                r"reserve)\s*\("), "may grow a container (allocates)"),
    (re.compile(r"\bto_string\s*\("), "builds a std::string (allocates)"),
    (re.compile(r"(?<!\w)throw\b"), "throws (allocates, cold path)"),
)

# S1: decode functions must go through the Reader primitives.
RAW_STREAM_READ_RE = re.compile(r"\.\s*(read|get|getline|peek|ignore)\s*\(")
WIRE_READ_RE = re.compile(r"\b(\w+)\s*=[^=;]*?\.\s*(u32|u64|i64)\s*\(\s*\)")
WIRE_READ_DECL_RE = re.compile(
    r"\b(?:auto|std::uint32_t|std::uint64_t|std::int64_t|uint32_t|uint64_t|"
    r"int64_t|std::size_t|size_t)\s+(\w+)\s*=[^=;]*?\.\s*(u32|u64|i64)"
    r"\s*\(\s*\)")
PRESIZE_RE = re.compile(
    r"(?:\.\s*(?:reserve|resize)\s*\(\s*(\w+)|"
    r"\bnew\s+[\w:]+\s*\[\s*(\w+)|"
    r"\b(?:vector|string)\s*(?:<[^;<>]*>)?\s+\w+\s*\(\s*(\w+))")

SUPPRESS_RE = re.compile(
    r"bgpcc-lint:\s*(allow|allow-file)\s*\(\s*([A-Z0-9|]+)\s*"
    r"(?:,\s*([^)]*?)\s*)?\)")

CHECK_INVENTORY = {
    "D1": "iteration over an unordered container in a deterministic-output "
          "function without a sort barrier",
    "D2": "wall-clock / randomness / pointer / locale input feeding "
          "deterministic output",
    "H1": "lock, allocation, container growth, or throw in a lock-free "
          "hot path",
    "P1": "pass-contract conformance (kStateTag, State interface, "
          "copyable State, make_state)",
    "S1": "decode path bypasses the Reader primitives or pre-sizes from "
          "an unvalidated wire count",
    "SUP": "malformed suppression (missing reason string)",
}


@dataclass
class Finding:
    path: str
    line: int
    check: str
    message: str
    suppressible: bool = True


@dataclass
class Suppression:
    check_ids: tuple
    reason: str
    first_line: int
    last_line: int  # inclusive
    whole_file: bool = False


@dataclass
class Function:
    qualified: str      # e.g. bgpcc::analytics::CommunityStatsPass::State::save
    name: str           # unqualified
    class_path: str     # e.g. CommunityStatsPass::State ('' for free funcs)
    params: str         # parameter list text (code, one line)
    start_line: int
    end_line: int
    body: str           # code text of the body, newlines preserved
    body_start_line: int


@dataclass
class ClassInfo:
    # key: 'Outer::Nested' (namespaces excluded — member lookup matches by
    # suffix, which is unambiguous in this codebase)
    path: str
    members: dict = field(default_factory=dict)   # name -> type text
    methods: set = field(default_factory=set)     # declared method names
    body: str = ""
    start_line: int = 0
    decl_lines: dict = field(default_factory=dict)  # member -> line
    has_virtual: bool = False
    deleted_copy_ctor: bool = False
    statics: dict = field(default_factory=dict)   # static constexpr name->val


@dataclass
class FileModel:
    path: str
    raw: str
    code: str               # comments/string-bodies blanked, same shape
    lines: list             # code split per line
    raw_lines: list
    suppressions: list
    functions: list
    classes: dict           # path -> ClassInfo
    aliases: dict           # alias name -> target type text
    pass_tag_enum: dict     # enumerator name -> int (serialize::PassTag)


# ---------------------------------------------------------------------------
# Lexing: blank out comments and string literal bodies, keep line structure.

def strip_comments(text):
    """Returns (code, comments) where code has comments and the contents
    of string/char literals replaced by spaces (quotes preserved), and
    comments is a list of (line_number, comment_text)."""
    out = []
    comments = []
    i, n = 0, len(text)
    line = 1
    state = "code"
    comment_start_line = 0
    comment_buf = []
    raw_delim = None
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                comment_start_line = line
                comment_buf = []
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                comment_start_line = line
                comment_buf = []
                out.append("  ")
                i += 2
                continue
            if c == '"':
                if out and re.search(r'R\s*$', "".join(out[-2:])):
                    m = re.match(r'R"([^(\n]*)\(', text[i - 1:i + 20])
                    if m:
                        raw_delim = ")" + m.group(1) + '"'
                        state = "raw_string"
                        out.append('"')
                        i += 1 + len(m.group(1)) + 1
                        out.append(" " * (len(m.group(1)) + 1))
                        continue
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                comments.append((comment_start_line, "".join(comment_buf)))
                state = "code"
                out.append("\n")
            else:
                comment_buf.append(c)
                out.append(" ")
            i += 1
            if c == "\n":
                line += 1
            continue
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                comments.append((comment_start_line, "".join(comment_buf)))
                state = "code"
                out.append("  ")
                i += 2
                continue
            comment_buf.append(c)
            out.append("\n" if c == "\n" else " ")
        elif state == "string":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "code"
                out.append('"')
            else:
                out.append("\n" if c == "\n" else " ")
        elif state == "raw_string":
            if text.startswith(raw_delim, i):
                out.append(" " * (len(raw_delim) - 1) + '"')
                i += len(raw_delim)
                state = "code"
                continue
            out.append("\n" if c == "\n" else " ")
        elif state == "char":
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == "'":
                state = "code"
                out.append("'")
            else:
                out.append(" ")
        if c == "\n":
            line += 1
        i += 1
    if state == "line_comment":
        comments.append((comment_start_line, "".join(comment_buf)))
    return "".join(out), comments


# ---------------------------------------------------------------------------
# Statement / scope scanning.

KEYWORD_HEADS = {"if", "for", "while", "switch", "catch", "do", "else",
                 "return", "sizeof", "alignof", "decltype", "new"}


def line_of(offset, line_starts):
    """Binary search: 1-based line number of a character offset."""
    lo, hi = 0, len(line_starts) - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if line_starts[mid] <= offset:
            lo = mid
        else:
            hi = mid - 1
    return lo + 1


def statement_end_line(code, line_starts, from_offset):
    """Line of the `;` or `{` that ends the statement starting at
    from_offset (balanced parens), capped at 40 lines past the start."""
    depth = 0
    start_line = line_of(from_offset, line_starts)
    i = from_offset
    while i < len(code):
        c = code[i]
        if c in "([":
            depth += 1
        elif c in ")]":
            depth -= 1
        elif depth == 0 and c in ";{":
            return line_of(i, line_starts)
        cur = line_of(i, line_starts)
        if cur - start_line > 40:
            return cur
        i += 1
    return line_of(len(code) - 1, line_starts) if code else start_line


def find_name_before_paren(head):
    """The function name in a statement head ending just before its
    parameter-list '('. Returns (name, explicit_qualifier) or None."""
    m = re.search(r"(~?[A-Za-z_]\w*)\s*$", head)
    if not m:
        if re.search(r"operator\s*(\(\)|\[\]|[<>=!+\-*/%&|^~]+)\s*$", head):
            return ("operator", "")
        return None
    name = m.group(1)
    if name in KEYWORD_HEADS:
        return None
    qual = ""
    rest = head[: m.start()].rstrip()
    while rest.endswith("::"):
        rest = rest[:-2].rstrip()
        mq = re.search(r"([A-Za-z_]\w*)\s*$", rest)
        if not mq:
            break
        qual = mq.group(1) + ("::" + qual if qual else "")
        rest = rest[: mq.start()].rstrip()
    return (name, qual)


def parse_scopes(model):
    """Populates model.functions and model.classes by walking braces."""
    code = model.code
    line_starts = [0]
    for m in re.finditer(r"\n", code):
        line_starts.append(m.end())

    # Scope stack entries: dicts with kind, name, class_path, fn (Function)
    stack = []
    # Head of the statement currently being accumulated (since the last
    # ; { } at this nesting level).
    head_start = 0
    i, n = 0, len(code)
    paren_depth = 0

    def class_path():
        names = [s["name"] for s in stack if s["kind"] == "class"]
        return "::".join(names)

    def qualified(name, explicit_qual):
        names = [s["name"] for s in stack
                 if s["kind"] in ("namespace", "class")]
        if explicit_qual:
            names.append(explicit_qual)
        names.append(name)
        return "::".join(n for n in names if n)

    while i < n:
        c = code[i]
        if c == "(":
            paren_depth += 1
        elif c == ")":
            paren_depth -= 1
        elif c == ";" and paren_depth == 0:
            head = code[head_start:i]
            if stack and stack[-1]["kind"] == "class":
                record_class_member(stack[-1]["info"], head,
                                    line_of(head_start, line_starts))
            head_start = i + 1
        elif c == "{" and paren_depth == 0:
            head = code[head_start:i].strip()
            scope = classify_head(head)
            entry = {"kind": scope[0], "name": scope[1], "open": i,
                     "head_start": head_start}
            if scope[0] == "class":
                cp = class_path() + ("::" if class_path() else "") + scope[1]
                # Anchor the class at its class/struct keyword, not at
                # whatever blank space followed the previous statement —
                # suppressions target the reported line.
                kw = re.search(r"\b(?:class|struct)\b",
                               code[head_start:i])
                anchor = head_start + (kw.start() if kw else 0)
                info = model.classes.setdefault(
                    cp, ClassInfo(path=cp,
                                  start_line=line_of(anchor, line_starts)))
                entry["info"] = info
            elif scope[0] == "function":
                name, qual = scope[2]
                cp = class_path()
                if not qual and stack and stack[-1]["kind"] == "class":
                    # Inline member-function definition: register it on
                    # the class so contract checks see it.
                    stack[-1]["info"].methods.add(name)
                if qual:
                    cp = cp + ("::" if cp else "") + qual
                fn = Function(
                    qualified=qualified(name, qual), name=name,
                    class_path=cp, params=scope[3],
                    start_line=line_of(head_start, line_starts),
                    end_line=0, body="",
                    body_start_line=line_of(i, line_starts))
                entry["fn"] = fn
            stack.append(entry)
            head_start = i + 1
        elif c == "}" and paren_depth == 0:
            if stack:
                entry = stack.pop()
                if entry["kind"] == "function":
                    fn = entry["fn"]
                    fn.end_line = line_of(i, line_starts)
                    fn.body = code[entry["open"] + 1:i]
                    model.functions.append(fn)
                elif entry["kind"] == "class":
                    info = entry["info"]
                    info.body = code[entry["open"] + 1:i]
            head_start = i + 1
        i += 1
    model.line_starts = line_starts


def classify_head(head):
    """What does the `{` after this statement head open?"""
    # Strip template<...> prefixes and attributes for classification.
    h = re.sub(r"\[\[[^\]]*\]\]", " ", head)
    h = h.strip()
    if re.search(r"\bnamespace\b", h) and "(" not in h:
        m = re.search(r"namespace\s+([A-Za-z_][\w:]*)\s*$", h)
        return ("namespace", m.group(1) if m else "", None)
    if re.search(r"\benum\b", h):
        return ("other", "", None)
    mclass = re.search(
        r"\b(?:class|struct)\s+(?:\[\[[^\]]*\]\]\s*)?"
        r"(?:alignas\s*\([^)]*\)\s*)?([A-Za-z_]\w*)\s*"
        r"(?:final\s*)?(?::[^;{]*)?$", h)
    if mclass and "(" not in h.split("class")[-1].split(":")[0]:
        return ("class", mclass.group(1), None)
    # Lambda introducer immediately before a brace, or control keyword.
    first = re.match(r"([A-Za-z_]\w*)", h)
    if first and first.group(1) in ("if", "for", "while", "switch", "catch",
                                    "do", "else", "try", "return"):
        return ("block", "", None)
    # Function definition: last balanced (...) group followed only by
    # qualifiers / noexcept / trailing return / ctor initializer list.
    depth = 0
    close = -1
    opens = []
    pairs = []
    for idx, ch in enumerate(h):
        if ch == "(":
            opens.append(idx)
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0 and opens:
                pairs.append((opens[0], idx))
                opens = []
    for popen, pclose in pairs:
        if not function_tail_ok(h[pclose + 1:]):
            continue
        name_part = h[:popen]
        if name_part.rstrip().endswith("]"):       # lambda [..](..)
            return ("block", "", None)
        named = find_name_before_paren(name_part)
        if named is None:
            continue
        name, qual = named
        if name in KEYWORD_HEADS:
            return ("block", "", None)
        params = h[popen + 1:pclose]
        return ("function", name, (name, qual), params)
    return ("block", "", None)


def function_tail_ok(tail):
    """True if what follows a parameter list's ')' is a legal function
    suffix (cv/ref qualifiers, noexcept, trailing return, ctor
    initializer list). Linear scan — a naive regex here backtracks
    catastrophically on long expression statements."""
    t = tail.strip()
    while t:
        m = re.match(r"(?:const|override|final|mutable|volatile)\b", t)
        if m:
            t = t[m.end():].lstrip()
            continue
        m = re.match(r"noexcept(\s*\([^()]*(?:\([^()]*\)[^()]*)*\))?", t)
        if m:
            t = t[m.end():].lstrip()
            continue
        if t.startswith("->") or t.startswith(":"):
            # Trailing return type / ctor initializer list: everything up
            # to the already-located '{' belongs to it.
            return True
        if t[0] == "&":
            t = t.lstrip("&").lstrip()
            continue
        return False
    return True


def record_class_member(info, head, line):
    """Parses one class-scope statement (ends with ;) into members /
    method declarations / static constexpr values."""
    h = re.sub(r"\[\[[^\]]*\]\]", " ", head).strip()
    # An access label shares its "statement" with the declaration that
    # follows it — peel it off rather than bailing out.
    h = re.sub(r"^(?:\s*(?:public|private|protected)\s*:)+\s*", "", h)
    if not h or h.startswith("#"):
        return
    # Track the bits P1 cares about before general parsing.
    if re.search(r"\bvirtual\b", h):
        info.has_virtual = True
    mdel = re.search(r"(\w+)\s*\(\s*const\s+(\w+)\s*&[^)]*\)\s*=\s*delete",
                     h)
    if mdel and mdel.group(1) == mdel.group(2):
        info.deleted_copy_ctor = True
    mstatic = re.search(
        r"static\s+constexpr\s+[\w:]+\s+(\w+)\s*=\s*([\w:]+)", h)
    if mstatic:
        info.statics[mstatic.group(1)] = mstatic.group(2)
        info.decl_lines[mstatic.group(1)] = line
        return
    # using alias inside a class.
    musing = re.match(r"using\s+(\w+)\s*=\s*(.+)$", h, re.S)
    if musing:
        info.members["using " + musing.group(1)] = musing.group(2).strip()
        return
    # Split off any initializer.
    h2 = re.split(r"=(?![=<>])", h, maxsplit=1)[0].strip()
    # Method declaration? name followed by ( at angle-depth 0.
    depth = 0
    for idx, ch in enumerate(h2):
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth = max(0, depth - 1)
        elif ch == "(" and depth == 0:
            named = find_name_before_paren(h2[:idx])
            if named:
                info.methods.add(named[0])
            return
    # Data member: last identifier (before any array suffix) is the name.
    m = re.search(r"([A-Za-z_]\w*)\s*(\[[^\]]*\]\s*)*$", h2)
    if not m:
        return
    name = m.group(1)
    ty = h2[: m.start()].strip()
    if not ty or ty in ("class", "struct", "friend", "typedef", "using",
                        "return", "break", "continue"):
        return
    info.members[name] = ty
    info.decl_lines[name] = line


# ---------------------------------------------------------------------------
# Suppressions.

def parse_suppressions(model, comments, findings):
    code = model.code
    line_starts = model.line_starts
    for line, text in comments:
        for m in SUPPRESS_RE.finditer(text):
            kind, ids, reason = m.group(1), m.group(2), m.group(3)
            check_ids = tuple(x for x in ids.split("|") if x)
            if not reason or not reason.strip():
                findings.append(Finding(
                    model.path, line, "SUP",
                    f"suppression for {ids} has no reason — write "
                    f"// bgpcc-lint: {kind}({ids}, <why this is safe>)",
                    suppressible=False))
                continue
            if kind == "allow-file":
                model.suppressions.append(Suppression(
                    check_ids, reason.strip(), 1, 1 << 30, whole_file=True))
                continue
            # Find the statement the comment covers: the one that begins
            # on (or continues through) the comment's line, extended to
            # the statement's end.
            line_text = (model.lines[line - 1]
                         if line - 1 < len(model.lines) else "")
            if line_text.strip():
                start = line
            else:
                start = line + 1
            offset = line_starts[start - 1] if start - 1 < len(
                line_starts) else len(code)
            end = statement_end_line(code, line_starts, offset)
            model.suppressions.append(Suppression(
                check_ids, reason.strip(), min(line, start), max(line, end)))


def is_suppressed(model, finding):
    if not finding.suppressible:
        return False
    for sup in model.suppressions:
        if finding.check in sup.check_ids and (
                sup.whole_file or
                sup.first_line <= finding.line <= sup.last_line):
            return True
    return False


# ---------------------------------------------------------------------------
# Type resolution across the scanned file set.

class Project:
    def __init__(self):
        self.models = []
        self.aliases = {}        # name -> target
        self.classes = {}        # class path -> ClassInfo
        self.pass_tags = {}      # enumerator -> int value

    def add(self, model):
        self.models.append(model)
        self.aliases.update(model.aliases)
        for path, info in model.classes.items():
            # Last definition wins; identical-name classes in different
            # namespaces are rare enough here not to matter.
            self.classes.setdefault(path, info)
            for mname, mtype in info.members.items():
                if mname.startswith("using "):
                    self.aliases.setdefault(mname[6:], mtype)
        self.pass_tags.update(model.pass_tag_enum)

    def resolve_alias(self, type_text, depth=0):
        if depth > 5 or not type_text:
            return type_text
        m = re.match(r"(?:const\s+)?(?:std\s*::\s*)?([A-Za-z_]\w*)",
                     type_text.strip())
        if m and m.group(1) in self.aliases:
            target = self.aliases[m.group(1)]
            if m.group(1) not in target:
                return self.resolve_alias(target, depth + 1)
        # Also resolve qualified aliases like core::cleaning::SecondCarry.
        m2 = re.search(r"([A-Za-z_]\w*)\s*$",
                       re.sub(r"<.*", "", type_text).strip())
        if m2 and m2.group(1) in self.aliases:
            target = self.aliases[m2.group(1)]
            if m2.group(1) not in target:
                return self.resolve_alias(target, depth + 1)
        return type_text

    def class_for(self, class_path_suffix):
        """Finds a ClassInfo whose path ends with the given suffix."""
        if class_path_suffix in self.classes:
            return self.classes[class_path_suffix]
        for path, info in self.classes.items():
            if path.endswith("::" + class_path_suffix):
                return info
        return None

    def member_type(self, class_path, member):
        probe = class_path
        while probe:
            info = self.class_for(probe)
            if info and member in info.members:
                return info.members[member]
            if "::" in probe:
                probe = probe.rsplit("::", 1)[0]
            else:
                probe = ""
        return None

    def is_unordered(self, type_text):
        if not type_text:
            return False
        resolved = self.resolve_alias(type_text)
        return bool(UNORDERED_TYPE_RE.search(resolved))


def collect_aliases(code):
    out = {}
    for m in re.finditer(
            r"\busing\s+([A-Za-z_]\w*)\s*=\s*([^;]+);", code):
        out[m.group(1)] = re.sub(r"\s+", " ", m.group(2)).strip()
    return out


def collect_pass_tag_enum(code):
    """serialize::PassTag enumerator values, when defined in this file."""
    m = re.search(r"enum\s+class\s+PassTag[^{]*\{([^}]*)\}", code)
    if not m:
        return {}
    out = {}
    for em in re.finditer(r"(\w+)\s*=\s*(\d+)", m.group(1)):
        out[em.group(1)] = int(em.group(2))
    return out


# ---------------------------------------------------------------------------
# The checks.

def is_emit_function(fn):
    if fn.name in EMIT_FUNCTION_NAMES:
        return True
    return fn.name.startswith(EMIT_FUNCTION_PREFIXES)


def local_types(fn):
    """Very light local-declaration scan of a function body:
    name -> type text (including the range-decl of for loops)."""
    out = {}
    for m in re.finditer(
            r"(?m)^\s*(?:const\s+)?([A-Za-z_][\w:]*(?:\s*<[^;{}]*?>)?)\s*&?&?"
            r"\s+([A-Za-z_]\w*)\s*(?:[=({;\[]|$)", fn.body):
        ty, name = m.group(1), m.group(2)
        if ty in ("return", "throw", "delete", "goto", "case", "new",
                  "else", "do", "using", "typedef", "if", "for", "while"):
            continue
        out.setdefault(name, ty)
    for pm in re.finditer(
            r"(?:const\s+)?([A-Za-z_][\w:]*(?:\s*<[^()]*?>)?)\s*[&*]*\s*"
            r"([A-Za-z_]\w*)\s*(?:,|$|=)", fn.params):
        out.setdefault(pm.group(2), pm.group(1))
    return out


def resolve_expr_type(project, fn, expr, locals_map):
    """Best-effort type of `expr` (an identifier chain) in `fn`."""
    expr = expr.strip()
    expr = re.sub(r"^\(+|\)+$", "", expr).strip()
    expr = re.sub(r"^(\*|&)+", "", expr).strip()
    expr = re.sub(r"^this\s*->\s*", "", expr)
    if not re.fullmatch(r"[A-Za-z_]\w*(\s*[.]\s*[A-Za-z_]\w*)*", expr):
        return None
    parts = [p.strip() for p in expr.split(".")]
    first = parts[0]
    ty = locals_map.get(first) or project.member_type(fn.class_path, first)
    if ty is None:
        return None
    for nxt in parts[1:]:
        resolved = project.resolve_alias(ty)
        m = re.match(r"(?:const\s+)?(?:[\w:]*::)?([A-Za-z_]\w*)",
                     resolved.strip())
        if not m:
            return None
        inner = project.member_type(m.group(1), nxt)
        if inner is None:
            return None
        ty = inner
    return ty


def range_for_loops(fn, line_starts_base):
    """Yields (line, range_expr) for every range-for in the body, plus
    (line, 'X') for classic loops over X.begin()."""
    body = fn.body
    # Map body offsets to absolute lines.
    def body_line(off):
        return fn.body_start_line + body[:off].count("\n")
    for m in re.finditer(r"\bfor\s*\(", body):
        start = m.end()
        depth = 1
        i = start
        while i < len(body) and depth:
            if body[i] == "(":
                depth += 1
            elif body[i] == ")":
                depth -= 1
            i += 1
        inner = body[start:i - 1]
        if ";" in inner:
            bm = re.search(r"(\w[\w.\->]*)\s*\.\s*begin\s*\(\s*\)", inner)
            if bm:
                yield (body_line(m.start()), bm.group(1))
            continue
        # Range-for: split on the first top-level ':' that is not '::'.
        depth2 = 0
        for j, ch in enumerate(inner):
            if ch in "(<[":
                depth2 += 1
            elif ch in ")>]":
                depth2 -= 1
            elif (ch == ":" and depth2 <= 0 and
                  (j + 1 >= len(inner) or inner[j + 1] != ":") and
                  (j == 0 or inner[j - 1] != ":")):
                yield (body_line(m.start()), inner[j + 1:].strip())
                break


def check_d1(project, model, findings):
    for fn in model.functions:
        if not is_emit_function(fn):
            continue
        locals_map = local_types(fn)
        for line, expr in range_for_loops(fn, model.line_starts):
            ty = resolve_expr_type(project, fn, expr, locals_map)
            if ty and project.is_unordered(ty):
                shown = re.sub(r"\s+", " ", project.resolve_alias(ty)).strip()
                findings.append(Finding(
                    model.path, line, "D1",
                    f"deterministic-output function '{fn.name}' iterates "
                    f"unordered container '{expr.strip()}' ({shown}) — "
                    f"copy to a vector and sort before emitting "
                    f"(docs/LINTING.md)"))


def check_d2(project, model, findings):
    for fn in model.functions:
        if not is_emit_function(fn):
            continue
        for rx, what in NONDETERMINISM_TOKENS:
            for m in rx.finditer(fn.body):
                line = fn.body_start_line + fn.body[:m.start()].count("\n")
                findings.append(Finding(
                    model.path, line, "D2",
                    f"deterministic-output function '{fn.name}' uses {what} "
                    f"— output bytes must depend only on the state"))
        # %p in format strings: search the raw text of the body's lines.
        for ln in range(fn.body_start_line,
                        min(fn.end_line + 1, len(model.raw_lines) + 1)):
            if POINTER_FORMAT_RE.search(model.raw_lines[ln - 1]):
                findings.append(Finding(
                    model.path, ln, "D2",
                    f"deterministic-output function '{fn.name}' formats a "
                    f"pointer value (%p) — addresses differ across runs"))


def check_h1(project, model, findings):
    for fn in model.functions:
        if not any(fn.qualified.endswith(sfx) for sfx in HOT_PATH_SUFFIXES):
            continue
        for rx, what in HOT_PATH_FORBIDDEN:
            for m in rx.finditer(fn.body):
                line = fn.body_start_line + fn.body[:m.start()].count("\n")
                findings.append(Finding(
                    model.path, line, "H1",
                    f"lock-free hot path '{fn.qualified.split('bgpcc::')[-1]}'"
                    f" {what} — the shard-observer/obs contract (PR 8/9) "
                    f"forbids blocking and allocation here"))


NONCOPYABLE_MEMBER_RE = re.compile(
    r"\b(std\s*::\s*)?(mutex|shared_mutex|recursive_mutex|atomic|thread|"
    r"unique_ptr|condition_variable)\b")

STATE_REQUIRED_METHODS = ("observe", "merge", "report", "save", "load")


def check_p1(project, model, findings):
    seen_tags = {}
    for path, info in model.classes.items():
        leaf = path.rsplit("::", 1)[-1]
        if not leaf.endswith("Pass") or leaf == "Pass":
            continue
        state = project.class_for(path + "::State")
        if state is None or info.has_virtual:
            continue  # type-erasure helpers / interfaces, not shipped passes
        line = info.start_line
        if "kStateTag" not in info.statics:
            findings.append(Finding(
                model.path, line, "P1",
                f"pass '{leaf}' has no `static constexpr std::uint16_t "
                f"kStateTag` — every registered pass needs a pinned wire "
                f"tag (serialize::PassTag, append-only)"))
        else:
            tag = info.statics["kStateTag"]
            tag_line = info.decl_lines.get("kStateTag", line)
            if tag.isdigit():
                if project.pass_tags and int(tag) not in set(
                        project.pass_tags.values()):
                    findings.append(Finding(
                        model.path, tag_line, "P1",
                        f"pass '{leaf}' pins kStateTag = {tag}, which is "
                        f"not a serialize::PassTag enumerator — append a "
                        f"new enumerator (never renumber)"))
                if tag in seen_tags:
                    findings.append(Finding(
                        model.path, tag_line, "P1",
                        f"pass '{leaf}' reuses wire tag {tag} already "
                        f"pinned by '{seen_tags[tag]}' — tags identify "
                        f"state layouts and must be unique"))
                seen_tags.setdefault(tag, leaf)
        if "make_state" not in info.methods:
            findings.append(Finding(
                model.path, line, "P1",
                f"pass '{leaf}' declares no make_state() — the driver "
                f"mints one State per shard through it"))
        missing = [m for m in STATE_REQUIRED_METHODS
                   if m not in state.methods]
        if missing:
            findings.append(Finding(
                model.path, state.start_line, "P1",
                f"pass '{leaf}' State is missing {', '.join(missing)} — "
                f"the Pass/SerializablePass contract requires observe/"
                f"merge/report plus save/load for checkpointing"))
        if state.deleted_copy_ctor:
            findings.append(Finding(
                model.path, state.start_line, "P1",
                f"pass '{leaf}' State deletes its copy constructor — "
                f"snapshot() clones per-shard states, so State must be "
                f"copy-constructible (the snapshot contract in pass.h)"))
        else:
            for mname, mtype in state.members.items():
                if mname.startswith("using "):
                    continue
                if NONCOPYABLE_MEMBER_RE.search(mtype):
                    findings.append(Finding(
                        model.path, state.decl_lines.get(
                            mname, state.start_line), "P1",
                        f"pass '{leaf}' State member '{mname}' has "
                        f"non-copyable type '{mtype}' — snapshot() "
                        f"requires a faithful deep-copyable State"))


def is_decode_function(fn):
    if re.search(r"\bReader\s*&", fn.params):
        return True
    return fn.name == "load" or fn.name.startswith("read_")


def check_s1(project, model, findings):
    for fn in model.functions:
        if not is_decode_function(fn):
            continue
        cls_leaf = fn.class_path.rsplit("::", 1)[-1] if fn.class_path else ""
        if cls_leaf in ("Reader", "Writer"):
            continue  # the primitives themselves
        # (a) raw stream reads bypassing the primitives.
        for m in RAW_STREAM_READ_RE.finditer(fn.body):
            line = fn.body_start_line + fn.body[:m.start()].count("\n")
            findings.append(Finding(
                model.path, line, "S1",
                f"decode function '{fn.name}' calls .{m.group(1)}() on a "
                f"stream directly — go through the serialize::Reader "
                f"primitives so truncation throws DecodeError"))
        # (b) pre-sized allocation from an unvalidated wire count.
        tainted = {}
        for m in WIRE_READ_DECL_RE.finditer(fn.body):
            tainted[m.group(1)] = m.start()
        for m in WIRE_READ_RE.finditer(fn.body):
            tainted.setdefault(m.group(1), m.start())
        if not tainted:
            continue
        guarded = set()
        for var, born in tainted.items():
            for gm in re.finditer(r"\bif\s*\(([^()]*(?:\([^()]*\)[^()]*)*)\)",
                                  fn.body):
                if gm.start() > born and re.search(
                        r"\b%s\b" % re.escape(var), gm.group(1)):
                    guarded.add((var, gm.start()))
        for m in PRESIZE_RE.finditer(fn.body):
            var = m.group(1) or m.group(2) or m.group(3)
            if var not in tainted or m.start() < tainted[var]:
                continue
            around = fn.body[max(0, m.start() - 80):m.start()]
            if re.search(r"\bmin\s*(<[^<>]*>)?\s*\($", around.rstrip()) or \
                    "min" in around[-40:]:
                continue
            if any(g[0] == var and g[1] < m.start() for g in guarded):
                continue
            line = fn.body_start_line + fn.body[:m.start()].count("\n")
            findings.append(Finding(
                model.path, line, "S1",
                f"decode function '{fn.name}' pre-sizes an allocation from "
                f"wire count '{var}' with no bound check — corrupt input "
                f"must throw DecodeError before it can drive a huge "
                f"allocation"))


CHECK_FUNCS = {
    "D1": check_d1,
    "D2": check_d2,
    "H1": check_h1,
    "P1": check_p1,
    "S1": check_s1,
}


# ---------------------------------------------------------------------------
# Optional libclang engine (experimental): cross-checks D1 with real AST
# types. The token engine remains the gate; this exists for local deep
# dives where the bindings are installed.

def libclang_d1(paths, findings):
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        sys.stderr.write(
            "bgpcc-lint: --engine clang requested but the libclang Python "
            "bindings are not importable; falling back to tokens\n")
        return False
    index = cindex.Index.create()
    for path in paths:
        try:
            tu = index.parse(path, args=["-std=c++20", "-Isrc"])
        except cindex.TranslationUnitLoadError:
            continue
        def walk(node, fn_name):
            if node.kind == cindex.CursorKind.FUNCTION_DECL or \
                    node.kind == cindex.CursorKind.CXX_METHOD:
                fn_name = node.spelling
            if node.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT and \
                    fn_name and (fn_name in EMIT_FUNCTION_NAMES or
                                 fn_name.startswith(EMIT_FUNCTION_PREFIXES)):
                children = list(node.get_children())
                if children:
                    ty = children[-2].type.spelling if len(
                        children) >= 2 else ""
                    if UNORDERED_TYPE_RE.search(ty or ""):
                        findings.append(Finding(
                            path, node.location.line, "D1",
                            f"(libclang) '{fn_name}' iterates unordered "
                            f"range of type {ty}"))
            for child in node.get_children():
                if child.location.file and \
                        child.location.file.name == path:
                    walk(child, fn_name)
        walk(tu.cursor, None)
    return True


# ---------------------------------------------------------------------------
# Driver.

SOURCE_EXTS = (".h", ".hpp", ".hh", ".cc", ".cpp", ".cxx")


def gather_files(paths):
    out = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("build", ".git", "_deps"))
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTS):
                        out.append(os.path.join(root, name))
        elif os.path.isfile(p):
            out.append(p)
        else:
            raise FileNotFoundError(p)
    return out


def build_model(path):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        raw = f.read()
    code, comments = strip_comments(raw)
    model = FileModel(
        path=path, raw=raw, code=code,
        lines=code.split("\n"), raw_lines=raw.split("\n"),
        suppressions=[], functions=[], classes={},
        aliases=collect_aliases(code),
        pass_tag_enum=collect_pass_tag_enum(code))
    parse_scopes(model)
    model.comments = comments
    return model


def run(argv):
    ap = argparse.ArgumentParser(prog="bgpcc-lint", add_help=True)
    ap.add_argument("paths", nargs="*", help="files or directories")
    ap.add_argument("--checks", default="all",
                    help="comma-separated check ids (default: all)")
    ap.add_argument("--format", default="text",
                    choices=("text", "compact", "json"))
    ap.add_argument("--root", default=None,
                    help="report paths relative to this directory")
    ap.add_argument("--engine", default="tokens",
                    choices=("tokens", "clang"))
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checks:
        for cid, desc in CHECK_INVENTORY.items():
            print(f"{cid:4} {desc}")
        return 0
    if not args.paths:
        ap.error("no paths given")

    if args.checks == "all":
        enabled = set(CHECK_FUNCS) | {"SUP"}
    else:
        enabled = set(x.strip() for x in args.checks.split(",") if x.strip())
        unknown = enabled - set(CHECK_INVENTORY)
        if unknown:
            ap.error(f"unknown checks: {', '.join(sorted(unknown))}")

    try:
        files = gather_files(args.paths)
    except FileNotFoundError as e:
        sys.stderr.write(f"bgpcc-lint: no such path: {e}\n")
        return 2

    project = Project()
    models = []
    for path in files:
        model = build_model(path)
        models.append(model)
        project.add(model)

    findings = []
    for model in models:
        file_findings = []
        parse_suppressions(model, model.comments, file_findings)
        for cid, fnc in CHECK_FUNCS.items():
            if cid in enabled:
                fnc(project, model, file_findings)
        if "SUP" not in enabled:
            file_findings = [f for f in file_findings if f.check != "SUP"]
        findings.extend(f for f in file_findings
                        if not is_suppressed(model, f))

    if args.engine == "clang" and "D1" in enabled:
        libclang_d1(files, findings)

    def rel(path):
        return os.path.relpath(path, args.root) if args.root else path

    findings.sort(key=lambda f: (rel(f.path), f.line, f.check, f.message))
    if args.format == "json":
        print(json.dumps(
            [{"path": rel(f.path), "line": f.line, "check": f.check,
              "message": f.message} for f in findings], indent=2))
    elif args.format == "compact":
        for f in findings:
            print(f"{rel(f.path)}:{f.line}: {f.check} "
                  f"{f.message.split(' — ')[0]}")
    else:
        for f in findings:
            print(f"{rel(f.path)}:{f.line}: [{f.check}] {f.message}")
        if findings:
            print(f"\nbgpcc-lint: {len(findings)} finding(s). Suppress a "
                  f"deliberate one with // bgpcc-lint: allow(ID, reason); "
                  f"see docs/LINTING.md.")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(run(sys.argv[1:]))
