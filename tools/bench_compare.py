#!/usr/bin/env python3
"""Compare google-benchmark JSON outputs and track a benchmark trajectory.

Compare mode (the CI perf gate):

    bench_compare.py PREVIOUS.json CURRENT.json [--threshold 0.20]

For every benchmark present in BOTH files the throughput metric
(items_per_second when reported, otherwise 1/real_time) is compared; if
any benchmark's current throughput falls more than THRESHOLD below the
previous run's, the script prints a table and exits 1. Benchmarks that
appear on only one side (added or removed between commits) are warned
about on stderr and never fail the run — the gate compares exactly the
intersection, so renaming or adding a benchmark cannot KeyError the CI
job. An unreadable or malformed PREVIOUS file is likewise a warning, not
a crash: the gate degrades to "nothing to compare against" exactly as on
the very first run.

Trajectory mode (per-commit throughput history):

    bench_compare.py CURRENT.json --append-trajectory BENCH_trajectory.json \
        --commit SHA --date ISO8601 [--max-entries 500]

Appends one entry {commit, date, benchmarks: {name: median_throughput}}
to the rolling trajectory file (created if missing; a corrupt existing
file is warned about and restarted rather than crashing the job). CI
uploads the file as an artifact and re-downloads it next run, so the
full per-commit median history accumulates instead of only
last-vs-current surviving.

Summary-render mode (per-benchmark median charts for the CI job page):

    bench_compare.py --render-summary BENCH_trajectory.json \
        [--max-points 30] >> "$GITHUB_STEP_SUMMARY"

Emits GitHub-flavored markdown: one collapsible Mermaid xychart per
benchmark, x = the trailing commits (short SHAs), y = median throughput
— the rolling trajectory as a picture instead of a JSON blob. A missing
or corrupt trajectory renders a note, never fails the job.

Stdlib only: runs on a bare CI runner.
"""

import argparse
import json
import sys


def warn(message):
    print("bench_compare: warning: %s" % message, file=sys.stderr)


def load_throughputs(path, *, missing_ok=False):
    """benchmark name -> throughput (higher is better).

    Returns None when the file is missing/corrupt and missing_ok is set
    (warned, never raised) — the caller treats that as "no baseline".
    """
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        if missing_ok:
            warn("cannot read %s (%s); skipping" % (path, exc))
            return None
        raise SystemExit("bench_compare: cannot read %s: %s" % (path, exc))
    if not isinstance(data, dict) or not isinstance(
            data.get("benchmarks"), list):
        if missing_ok:
            warn("%s has no benchmark list; skipping" % path)
            return None
        raise SystemExit("bench_compare: %s has no benchmark list" % path)
    raw = {}
    medians = {}
    for entry in data["benchmarks"]:
        if not isinstance(entry, dict):
            continue
        run_name = entry.get("run_name", entry.get("name", ""))
        if not run_name:
            continue
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") != "median":
                continue
            target = medians
        else:
            target = raw
        if "items_per_second" in entry:
            value = float(entry["items_per_second"])
        elif entry.get("real_time", 0) > 0:
            value = 1.0 / float(entry["real_time"])
        else:
            continue
        # Repetitions of the same run_name: keep the median aggregate, or
        # average raw repetitions.
        if target is raw and run_name in target:
            count, mean = target[run_name]
            target[run_name] = (count + 1, mean + (value - mean) / (count + 1))
        else:
            target[run_name] = (1, value)
    merged = {name: mean for name, (_, mean) in raw.items()}
    merged.update({name: mean for name, (_, mean) in medians.items()})
    return merged


def compare(previous_path, current_path, threshold):
    previous = load_throughputs(previous_path, missing_ok=True)
    current = load_throughputs(current_path)
    if previous is None:
        warn("no usable baseline; seeding only (gate passes)")
        return 0

    only_previous = sorted(set(previous) - set(current))
    only_current = sorted(set(current) - set(previous))
    if only_previous:
        warn("benchmarks removed since baseline (ignored by the gate): %s"
             % ", ".join(only_previous))
    if only_current:
        warn("benchmarks new since baseline (ignored by the gate): %s"
             % ", ".join(only_current))

    regressions = []
    rows = []
    for name in sorted(set(previous) | set(current)):
        if name not in previous:
            rows.append((name, None, current[name], "new"))
            continue
        if name not in current:
            rows.append((name, previous[name], None, "removed"))
            continue
        prev, cur = previous[name], current[name]
        ratio = cur / prev if prev > 0 else float("inf")
        status = "ok"
        if ratio < 1.0 - threshold:
            status = "REGRESSION"
            regressions.append(name)
        rows.append((name, prev, cur, "%s (%+.1f%%)" % (status,
                                                        (ratio - 1) * 100)))

    width = max((len(r[0]) for r in rows), default=10)
    print("%-*s  %14s  %14s  %s" % (width, "benchmark", "previous",
                                    "current", "status"))
    for name, prev, cur, status in rows:
        print("%-*s  %14s  %14s  %s" % (
            width, name,
            "-" if prev is None else "%.3g" % prev,
            "-" if cur is None else "%.3g" % cur,
            status))

    if regressions:
        print("\nFAIL: throughput regression > %d%% on: %s" % (
            threshold * 100, ", ".join(regressions)))
        return 1
    print("\nOK: no benchmark regressed more than %d%%" % (threshold * 100))
    return 0


def append_trajectory(current_path, trajectory_path, commit, date,
                      max_entries):
    current = load_throughputs(current_path)
    entries = []
    try:
        with open(trajectory_path) as fh:
            existing = json.load(fh)
        if not isinstance(existing, dict):
            warn("%s is not a JSON object; restarting trajectory"
                 % trajectory_path)
            existing = {}
        entries = existing.get("entries", [])
        if not isinstance(entries, list):
            warn("%s entries field is not a list; restarting trajectory"
                 % trajectory_path)
            entries = []
    except FileNotFoundError:
        pass
    except (OSError, ValueError) as exc:
        warn("cannot parse %s (%s); restarting trajectory"
             % (trajectory_path, exc))
        entries = []

    entries = [e for e in entries
               if isinstance(e, dict) and e.get("commit") != commit]
    entries.append({
        "commit": commit,
        "date": date,
        "benchmarks": {name: value for name, value in sorted(current.items())},
    })
    if max_entries > 0:
        entries = entries[-max_entries:]
    with open(trajectory_path, "w") as fh:
        json.dump({"schema": "bgpcc-bench-trajectory-v1",
                   "entries": entries}, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print("trajectory: %d entries (latest %s, %d benchmarks)" % (
        len(entries), commit[:12], len(current)))
    return 0


def load_trajectory_entries(trajectory_path):
    """Well-formed trajectory entries, or None (warned) when unusable."""
    try:
        with open(trajectory_path) as fh:
            data = json.load(fh)
    except (OSError, ValueError) as exc:
        warn("cannot read %s (%s); nothing to render" % (trajectory_path,
                                                         exc))
        return None
    entries = data.get("entries") if isinstance(data, dict) else None
    if not isinstance(entries, list):
        warn("%s has no entries list; nothing to render" % trajectory_path)
        return None
    usable = [e for e in entries
              if isinstance(e, dict) and isinstance(e.get("benchmarks"),
                                                    dict)]
    return usable or None


def mermaid_quote(label):
    """Quotes a label for a Mermaid x-axis list (no embedded quotes)."""
    return '"%s"' % str(label).replace('"', "'")


def mermaid_number(value):
    """Plain-decimal rendering: Mermaid's xychart number grammar rejects
    exponents, so 2.5e+07 must become 25000000."""
    if abs(value) >= 1000:
        text = "%.0f" % value
    elif abs(value) >= 1:
        text = "%.6f" % value
    else:
        text = "%.9f" % value
    if "." in text:
        text = text.rstrip("0").rstrip(".")
    return text or "0"


def render_summary(trajectory_path, max_points, out=sys.stdout):
    """Markdown job summary: one Mermaid xychart per benchmark."""
    print("## Benchmark trajectory", file=out)
    entries = load_trajectory_entries(trajectory_path)
    if not entries:
        print("\n_No usable trajectory data yet (first run seeds it)._",
              file=out)
        return 0
    if max_points > 0:
        entries = entries[-max_points:]

    names = sorted({name for e in entries for name in e["benchmarks"]})
    commits = [str(e.get("commit", "?"))[:7] for e in entries]
    print("\n%d benchmarks x %d commits (median throughput; gaps where a "
          "benchmark is absent render as 0)\n" % (len(names), len(entries)),
          file=out)
    for name in names:
        values = []
        for e in entries:
            value = e["benchmarks"].get(name)
            values.append(float(value) if isinstance(value, (int, float))
                          else 0.0)
        # One line per benchmark, collapsed: the summary page stays
        # skimmable with dozens of benchmarks. A benchmark missing from
        # the newest entry (renamed/removed) is labeled as absent, not
        # shown as a collapse to zero.
        if name in entries[-1]["benchmarks"]:
            latest = "latest %.3g" % values[-1]
        else:
            latest = "absent in latest run"
        print("<details><summary><code>%s</code> (%s)</summary>\n"
              % (name, latest), file=out)
        print("```mermaid", file=out)
        print("xychart-beta", file=out)
        print('    title "%s"' % name.replace('"', "'"), file=out)
        print("    x-axis [%s]" % ", ".join(mermaid_quote(c)
                                            for c in commits), file=out)
        print('    y-axis "throughput"', file=out)
        print("    line [%s]" % ", ".join(mermaid_number(v)
                                          for v in values), file=out)
        print("```", file=out)
        print("\n</details>\n", file=out)
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("files", nargs="+",
                        help="PREVIOUS CURRENT (compare mode) or "
                             "CURRENT (trajectory mode)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated fractional throughput drop")
    parser.add_argument("--append-trajectory", metavar="FILE",
                        help="append CURRENT's medians to this rolling "
                             "trajectory JSON instead of comparing")
    parser.add_argument("--render-summary", action="store_true",
                        help="render the trajectory file (the sole "
                             "positional argument) as per-benchmark "
                             "Mermaid charts on stdout")
    parser.add_argument("--max-points", type=int, default=30,
                        help="trailing trajectory entries per chart in "
                             "--render-summary (0 = all)")
    parser.add_argument("--commit", default="unknown",
                        help="commit sha recorded in the trajectory entry")
    parser.add_argument("--date", default="unknown",
                        help="ISO-8601 date recorded in the trajectory entry")
    parser.add_argument("--max-entries", type=int, default=500,
                        help="cap trajectory length (0 = unlimited)")
    args = parser.parse_args()

    if args.render_summary:
        if len(args.files) != 1:
            parser.error("summary mode takes exactly one file (TRAJECTORY)")
        return render_summary(args.files[0], args.max_points)
    if args.append_trajectory:
        if len(args.files) != 1:
            parser.error("trajectory mode takes exactly one file (CURRENT)")
        return append_trajectory(args.files[0], args.append_trajectory,
                                 args.commit, args.date, args.max_entries)
    if len(args.files) != 2:
        parser.error("compare mode takes exactly two files "
                     "(PREVIOUS CURRENT)")
    return compare(args.files[0], args.files[1], args.threshold)


if __name__ == "__main__":
    sys.exit(main())
