#!/usr/bin/env python3
"""Compare two google-benchmark JSON outputs and fail on throughput regression.

Usage: bench_compare.py PREVIOUS.json CURRENT.json [--threshold 0.20]

For every benchmark present in both files the throughput metric
(items_per_second when reported, otherwise 1/real_time) is compared; if
any benchmark's current throughput falls more than THRESHOLD below the
previous run's, the script prints a table and exits 1. Benchmarks that
appear only on one side are reported informationally and never fail the
run. When the benchmark was run with --benchmark_repetitions, the
"median" aggregate is used (single-shot CI runs are noisy; the median is
the stable signal); otherwise the raw iteration entry is used.

Stdlib only: runs on a bare CI runner.
"""

import argparse
import json
import sys


def load_throughputs(path):
    """benchmark name -> throughput (higher is better)."""
    with open(path) as fh:
        data = json.load(fh)
    raw = {}
    medians = {}
    for entry in data.get("benchmarks", []):
        run_name = entry.get("run_name", entry.get("name", ""))
        if not run_name:
            continue
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") != "median":
                continue
            target = medians
        else:
            target = raw
        if "items_per_second" in entry:
            value = float(entry["items_per_second"])
        elif entry.get("real_time", 0) > 0:
            value = 1.0 / float(entry["real_time"])
        else:
            continue
        # Repetitions of the same run_name: keep the median-friendly first
        # aggregate, or average raw repetitions.
        if target is raw and run_name in target:
            count, mean = target[run_name]
            target[run_name] = (count + 1, mean + (value - mean) / (count + 1))
        else:
            target[run_name] = (1, value)
    merged = {name: mean for name, (_, mean) in raw.items()}
    merged.update({name: mean for name, (_, mean) in medians.items()})
    return merged


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("previous")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="maximum tolerated fractional throughput drop")
    args = parser.parse_args()

    previous = load_throughputs(args.previous)
    current = load_throughputs(args.current)

    regressions = []
    rows = []
    for name in sorted(set(previous) | set(current)):
        if name not in previous:
            rows.append((name, None, current[name], "new"))
            continue
        if name not in current:
            rows.append((name, previous[name], None, "removed"))
            continue
        prev, cur = previous[name], current[name]
        ratio = cur / prev if prev > 0 else float("inf")
        status = "ok"
        if ratio < 1.0 - args.threshold:
            status = "REGRESSION"
            regressions.append(name)
        rows.append((name, prev, cur, "%s (%+.1f%%)" % (status,
                                                        (ratio - 1) * 100)))

    width = max((len(r[0]) for r in rows), default=10)
    print("%-*s  %14s  %14s  %s" % (width, "benchmark", "previous",
                                    "current", "status"))
    for name, prev, cur, status in rows:
        print("%-*s  %14s  %14s  %s" % (
            width, name,
            "-" if prev is None else "%.3g" % prev,
            "-" if cur is None else "%.3g" % cur,
            status))

    if regressions:
        print("\nFAIL: throughput regression > %d%% on: %s" % (
            args.threshold * 100, ", ".join(regressions)))
        return 1
    print("\nOK: no benchmark regressed more than %d%%" % (
        args.threshold * 100))
    return 0


if __name__ == "__main__":
    sys.exit(main())
