// bgpcc-merge: split-run fan-in for the analysis passes.
//
// A year-scale multi-collector study does not have to run in one
// process: ingest each collector (or each month) separately with
// `ingest`, ship the resulting partial-state files anywhere, and fan
// them in with `merge` — the associative Pass::merge contract
// guarantees the combined reports are byte-identical to a monolithic
// run over the concatenated input. merge_tool_test asserts exactly
// that, end to end, against this binary's stdout.
//
//   bgpcc-merge [--metrics <path|->] ingest <out.state>
//       <collector>=<archive> [...]
//   bgpcc-merge [--metrics <path|->] merge [--save <out.state>]
//       <state-file> [...]
//   bgpcc-merge tags <state-file>
//
// --metrics enables the obs stage-timing layer and dumps the pipeline
// metric registry after the command finishes: Prometheus text format,
// or JSON when the path ends in .json; "-" writes Prometheus text to
// stdout after the reports.
//
// Archives may be raw, gzip, or bzip2 MRT (detected by magic bytes).
// Every shipped pass runs with its default configuration; `merge`
// rebuilds the same pass set, so the wire tag lists always line up.
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analytics/driver.h"
#include "analytics/passes.h"
#include "analytics/serialize.h"
#include "core/ingest.h"
#include "core/tables.h"
#include "netbase/error.h"
#include "obs/metrics.h"

using namespace bgpcc;

namespace {

// The standard pass set, in wire-tag order. `ingest` and `merge` must
// register the identical set: the codec verifies the tag list and
// rejects a mismatched driver with ConfigError.
struct StandardPasses {
  analytics::PassHandle<analytics::ClassifierPass> classifier;
  analytics::PassHandle<analytics::PerSessionTypesPass> per_session;
  analytics::PassHandle<analytics::TomographyPass> tomography;
  analytics::PassHandle<analytics::CommunityStatsPass> community_stats;
  analytics::PassHandle<analytics::DuplicateBurstPass> duplicate_burst;
  analytics::PassHandle<analytics::AnomalyPass> anomaly;
  analytics::PassHandle<analytics::RevealedPass> revealed;
  analytics::PassHandle<analytics::ExplorationPass> exploration;
  analytics::PassHandle<analytics::UsageClassificationPass> usage;
};

StandardPasses register_standard_passes(analytics::AnalysisDriver& driver) {
  StandardPasses handles;
  handles.classifier = driver.add(analytics::ClassifierPass{});
  handles.per_session = driver.add(analytics::PerSessionTypesPass{});
  handles.tomography = driver.add(analytics::TomographyPass{});
  handles.community_stats = driver.add(analytics::CommunityStatsPass{});
  handles.duplicate_burst = driver.add(analytics::DuplicateBurstPass{});
  handles.anomaly = driver.add(analytics::AnomalyPass{});
  handles.revealed = driver.add(analytics::RevealedPass{});
  handles.exploration = driver.add(analytics::ExplorationPass{});
  handles.usage = driver.add(analytics::UsageClassificationPass{});
  return handles;
}

// Deterministic text projection of every report: what merge_tool_test
// byte-compares between split and monolithic runs. Long rankings are
// capped, which is safe to compare — both sides rank identically.
constexpr std::size_t kTopN = 10;

void print_reports(analytics::AnalysisDriver& driver,
                   const StandardPasses& handles) {
  auto types = driver.report(handles.classifier);
  std::printf("== announcement types ==\n");
  std::printf("streams: %llu\n",
              static_cast<unsigned long long>(types.streams));
  for (core::AnnouncementType t : core::kAllAnnouncementTypes) {
    std::printf("%s: %llu (%s)\n", core::label(t),
                static_cast<unsigned long long>(types.counts.count(t)),
                core::percent(types.counts.share(t)).c_str());
  }
  std::printf("withdrawals: %llu  first sightings: %llu  nn w/ MED: %llu\n",
              static_cast<unsigned long long>(types.counts.withdrawals),
              static_cast<unsigned long long>(types.counts.first_sightings),
              static_cast<unsigned long long>(types.counts.nn_with_med_change));

  auto sessions = driver.report(handles.per_session);
  std::printf("\n== per-session types (top %zu of %zu) ==\n", kTopN,
              sessions.size());
  for (std::size_t i = 0; i < sessions.size() && i < kTopN; ++i) {
    std::printf("%s: %llu classified\n",
                sessions[i].first.to_string().c_str(),
                static_cast<unsigned long long>(sessions[i].second.total()));
  }

  auto tomography = driver.report(handles.tomography);
  std::printf("\n== per-AS tomography (top %zu of %zu) ==\n", kTopN,
              tomography.size());
  for (std::size_t i = 0; i < tomography.size() && i < kTopN; ++i) {
    const core::AsEvidence& e = tomography[i];
    std::printf("AS%u: %s (on path %llu, tagged %llu, peer %llu)\n",
                e.asn.value(), core::label(e.classification),
                static_cast<unsigned long long>(e.on_path),
                static_cast<unsigned long long>(e.own_namespace_tagged),
                static_cast<unsigned long long>(e.as_peer));
  }

  auto stats = driver.report(handles.community_stats);
  std::printf("\n== community statistics ==\n");
  std::printf("announcements: %llu  withdrawals: %llu\n",
              static_cast<unsigned long long>(stats.announcements),
              static_cast<unsigned long long>(stats.withdrawals));
  std::printf("with communities: %llu (%s)  unique values: %llu  mean "
              "size: %.3f\n",
              static_cast<unsigned long long>(stats.with_communities),
              core::percent(stats.share_with_communities()).c_str(),
              static_cast<unsigned long long>(stats.unique_communities),
              stats.mean_communities());
  for (std::size_t i = 0; i < stats.namespaces.size() && i < kTopN; ++i) {
    std::printf("namespace %u: %llu distinct values\n",
                stats.namespaces[i].asn16,
                static_cast<unsigned long long>(
                    stats.namespaces[i].distinct_values));
  }

  auto bursts = driver.report(handles.duplicate_burst);
  std::printf("\n== duplicate bursts ==\n");
  std::printf("classified: %llu  nn: %llu  bursts: %llu\n",
              static_cast<unsigned long long>(bursts.classified),
              static_cast<unsigned long long>(bursts.nn),
              static_cast<unsigned long long>(bursts.bursts));
  for (std::size_t i = 0; i < bursts.sessions.size() && i < kTopN; ++i) {
    const auto& s = bursts.sessions[i];
    std::printf("%s: nn %llu/%llu, longest run %llu\n",
                s.session.to_string().c_str(),
                static_cast<unsigned long long>(s.nn),
                static_cast<unsigned long long>(s.classified),
                static_cast<unsigned long long>(s.longest_run));
  }

  auto anomalies = driver.report(handles.anomaly);
  std::printf("\n== anomalies ==\n");
  std::printf("population nn share: mean %.6f stddev %.6f\n",
              anomalies.population_mean_nn_share,
              anomalies.population_stddev_nn_share);
  std::printf("duplicate outliers: %zu\n",
              anomalies.duplicate_outliers.size());
  for (std::size_t i = 0;
       i < anomalies.duplicate_outliers.size() && i < kTopN; ++i) {
    const core::DuplicateOutlier& o = anomalies.duplicate_outliers[i];
    std::printf("%s: nn share %.4f (%.2f sigma)\n",
                o.session.to_string().c_str(), o.nn_share, o.sigma);
  }
  std::printf("novelty bursts: %zu\n", anomalies.novelty_bursts.size());
  for (std::size_t i = 0; i < anomalies.novelty_bursts.size() && i < kTopN;
       ++i) {
    const core::NoveltyBurst& b = anomalies.novelty_bursts[i];
    std::printf("%s: %llu occurrences\n", b.community.to_string().c_str(),
                static_cast<unsigned long long>(b.occurrences));
  }

  auto revealed = driver.report(handles.revealed);
  std::printf("\n== revealed information ==\n");
  std::printf("unique attributes: %llu (withdraw-only %llu, announce-only "
              "%llu, outside-only %llu, ambiguous %llu)\n",
              static_cast<unsigned long long>(revealed.total_unique),
              static_cast<unsigned long long>(revealed.withdrawal_only),
              static_cast<unsigned long long>(revealed.announce_only),
              static_cast<unsigned long long>(revealed.outside_only),
              static_cast<unsigned long long>(revealed.ambiguous));

  auto exploration = driver.report(handles.exploration);
  std::printf("\n== community exploration ==\n");
  std::printf("events: %zu\n", exploration.size());
  for (std::size_t i = 0; i < exploration.size() && i < kTopN; ++i) {
    const core::ExplorationEvent& e = exploration[i];
    std::printf("%s %s: %d nc, %d attributes\n",
                e.session.to_string().c_str(), e.prefix.to_string().c_str(),
                e.nc_count, e.distinct_attributes);
  }

  auto usage = driver.report(handles.usage);
  std::printf("\n== community usage (top %zu of %zu namespaces) ==\n", kTopN,
              usage.size());
  for (std::size_t i = 0; i < usage.size() && i < kTopN; ++i) {
    const core::AsUsage& u = usage[i];
    std::printf("namespace %u: %s (%llu occurrences, %llu values, %llu "
                "sessions)\n",
                u.asn16, core::label(u.profile),
                static_cast<unsigned long long>(u.occurrences),
                static_cast<unsigned long long>(u.distinct_values),
                static_cast<unsigned long long>(u.sessions));
  }
}

int usage_error() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  bgpcc-merge [--metrics <path|->] ingest <out.state> "
      "<collector>=<archive> [...]\n"
      "  bgpcc-merge [--metrics <path|->] merge [--save <out.state>] "
      "<state-file> [...]\n"
      "  bgpcc-merge tags <state-file>\n");
  return 2;
}

// Dumps the global metric registry to the --metrics target after the
// command ran: "-" appends Prometheus text to stdout, a .json path
// gets the JSON rendering, any other path the Prometheus text format.
void emit_metrics(const std::string& target) {
  if (target == "-") {
    std::printf("\n");
    obs::render_prometheus(std::cout);
    std::cout.flush();
    return;
  }
  std::ofstream out(target, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bgpcc-merge: cannot write metrics to '%s'\n",
                 target.c_str());
    return;
  }
  const bool json = target.size() > 5 &&
                    target.compare(target.size() - 5, 5, ".json") == 0;
  if (json) {
    obs::render_json(out);
  } else {
    obs::render_prometheus(out);
  }
}

int cmd_ingest(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage_error();
  const std::string& out_path = args[0];

  analytics::AnalysisDriver driver;
  StandardPasses handles = register_standard_passes(driver);
  core::IngestOptions options;
  driver.attach(options);

  core::StreamingIngestor ingestor(options);
  for (std::size_t i = 1; i < args.size(); ++i) {
    std::size_t eq = args[i].find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == args[i].size()) {
      std::fprintf(stderr, "bgpcc-merge: bad input '%s' — expected "
                           "<collector>=<archive>\n",
                   args[i].c_str());
      return 2;
    }
    ingestor.add_file(args[i].substr(0, eq), args[i].substr(eq + 1));
  }
  core::IngestResult result = ingestor.finish();
  std::fprintf(stderr,
               "ingested %zu file(s): %zu records on the cleaned stream\n",
               result.stats.files, result.stream.size());

  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "bgpcc-merge: cannot write '%s'\n",
                 out_path.c_str());
    return 1;
  }
  driver.save_state(out);
  (void)handles;
  return 0;
}

int cmd_merge(const std::vector<std::string>& args) {
  std::string save_path;
  std::vector<std::string> inputs;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--save") {
      if (i + 1 == args.size()) return usage_error();
      save_path = args[++i];
    } else {
      inputs.push_back(args[i]);
    }
  }
  if (inputs.empty()) return usage_error();

  analytics::AnalysisDriver driver;
  StandardPasses handles = register_standard_passes(driver);
  for (const std::string& path : inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "bgpcc-merge: cannot read '%s'\n", path.c_str());
      return 1;
    }
    driver.load_state(in);
  }
  if (!save_path.empty()) {
    std::ofstream out(save_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bgpcc-merge: cannot write '%s'\n",
                   save_path.c_str());
      return 1;
    }
    driver.save_state(out);
  }
  print_reports(driver, handles);
  return 0;
}

int cmd_tags(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage_error();
  std::ifstream in(args[0], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "bgpcc-merge: cannot read '%s'\n", args[0].c_str());
    return 1;
  }
  for (analytics::serialize::PassTag tag :
       analytics::serialize::read_state_tags(in)) {
    std::printf("%u\n", static_cast<unsigned>(tag));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::string metrics_target;
  while (args.size() >= 2 && args[0] == "--metrics") {
    metrics_target = args[1];
    args.erase(args.begin(), args.begin() + 2);
  }
  if (!metrics_target.empty()) obs::set_enabled(true);
  if (args.empty()) return usage_error();
  std::string command = args[0];
  args.erase(args.begin());
  try {
    int rc;
    if (command == "ingest") {
      rc = cmd_ingest(args);
    } else if (command == "merge") {
      rc = cmd_merge(args);
    } else if (command == "tags") {
      rc = cmd_tags(args);
    } else {
      return usage_error();
    }
    if (!metrics_target.empty()) emit_metrics(metrics_target);
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bgpcc-merge: %s\n", e.what());
    return 1;
  }
}
