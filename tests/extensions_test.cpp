// Tests: §7 extension modules — peering inference and anomaly detection,
// validated against simulator ground truth.
#include <gtest/gtest.h>

#include "core/anomaly.h"
#include "core/peering.h"
#include "netbase/error.h"
#include "synth/beacon_internet.h"
#include "synth/macrogen.h"

namespace bgpcc::core {
namespace {

UpdateRecord make_record(Asn peer, const std::string& path,
                         const std::string& comms, int t) {
  UpdateRecord r;
  r.time = Timestamp::from_unix_seconds(t);
  r.session = SessionKey{"rrc00", peer, IpAddress::from_string("192.0.2.1")};
  r.prefix = Prefix::from_string("84.205.64.0/24");
  r.announcement = true;
  r.attrs.as_path = AsPath::from_string(path);
  if (!comms.empty()) {
    std::size_t start = 0;
    while (start < comms.size()) {
      std::size_t end = comms.find(' ', start);
      if (end == std::string::npos) end = comms.size();
      r.attrs.communities.add(
          Community::from_string(comms.substr(start, end - start)));
      start = end + 1;
    }
  }
  return r;
}

TEST(Peering, CountsDistinctIngressTagsets) {
  UpdateStream stream;
  // Transit 3356 peers with 174; three distinct ingress tag-sets revealed.
  for (int rep = 0; rep < 3; ++rep) {
    for (int ingress = 0; ingress < 3; ++ingress) {
      stream.add(make_record(Asn(20205), "20205 3356 174 12654",
                             "3356:" + std::to_string(2000 + ingress) +
                                 " 3356:" + std::to_string(500 + ingress / 2),
                             rep * 10 + ingress));
    }
  }
  auto estimates = infer_peering(stream);
  ASSERT_FALSE(estimates.empty());
  const PeeringEstimate* found = nullptr;
  for (const auto& e : estimates) {
    if (e.transit == Asn(3356) && e.neighbor == Asn(174)) found = &e;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->distinct_ingress_tagsets, 3);
  EXPECT_EQ(found->distinct_location_codes, 5);  // 3 cities + 2 countries
  EXPECT_EQ(found->announcements, 9u);
}

TEST(Peering, NoiseFloorFiltersRarePairs) {
  UpdateStream stream;
  stream.add(make_record(Asn(20205), "20205 3356 174 12654", "3356:1", 0));
  PeeringOptions options;
  options.min_announcements = 5;
  EXPECT_TRUE(infer_peering(stream, options).empty());
  options.min_announcements = 1;
  EXPECT_FALSE(infer_peering(stream, options).empty());
}

TEST(Peering, UntaggedAdjacencyRevealsNothing) {
  UpdateStream stream;
  for (int i = 0; i < 10; ++i) {
    stream.add(make_record(Asn(20205), "20205 174 12654", "", i));
  }
  auto estimates = infer_peering(stream, {.min_announcements = 1});
  for (const auto& e : estimates) {
    EXPECT_EQ(e.distinct_ingress_tagsets, 0);
  }
}

TEST(Peering, RecoversInterconnectionCountFromSimulation) {
  // Ground truth: the transit has exactly `transit_ingresses` sessions
  // with U1; community exploration during withdrawals reveals them all.
  synth::BeaconOptions options;
  options.transit_ingresses = 5;
  options.peers_per_collector = 10;
  options.collector_count = 2;
  options.beacon_count = 2;
  synth::BeaconInternet internet(options);
  internet.run_day();

  auto estimates = infer_peering(internet.stream());
  const PeeringEstimate* found = nullptr;
  for (const auto& e : estimates) {
    if (e.transit == Asn(synth::BeaconInternet::kAsnT) &&
        e.neighbor == Asn(synth::BeaconInternet::kAsnU1)) {
      found = &e;
    }
  }
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->distinct_ingress_tagsets, options.transit_ingresses);
}

TEST(Anomaly, FlagsDuplicateOutlierSession) {
  UpdateStream stream;
  // 8 normal sessions: alternating nc (no nn at all).
  for (int s = 0; s < 8; ++s) {
    for (int i = 0; i < 60; ++i) {
      UpdateRecord r = make_record(Asn(20000 + s), "1 2 3",
                                   "100:" + std::to_string(i % 7), i);
      r.session.peer_asn = Asn(20000 + s);
      stream.add(r);
    }
  }
  // One session sending pure duplicates.
  for (int i = 0; i < 60; ++i) {
    UpdateRecord r = make_record(Asn(29999), "1 2 3", "100:1", i);
    r.session.peer_asn = Asn(29999);
    stream.add(r);
  }
  AnomalyOptions options;
  options.min_classified = 10;
  options.novelty_min_occurrences = 1000000;  // disable novelty detector
  AnomalyReport report = detect_anomalies(stream, options);
  ASSERT_EQ(report.duplicate_outliers.size(), 1u);
  EXPECT_EQ(report.duplicate_outliers[0].session.peer_asn, Asn(29999));
  EXPECT_GT(report.duplicate_outliers[0].nn_share, 0.9);
  EXPECT_GE(report.duplicate_outliers[0].sigma, 2.0);
}

TEST(Anomaly, QuietPopulationHasNoOutliers) {
  UpdateStream stream;
  for (int s = 0; s < 5; ++s) {
    for (int i = 0; i < 60; ++i) {
      UpdateRecord r = make_record(Asn(20000 + s), "1 2 3",
                                   "100:" + std::to_string(i % 5), i);
      r.session.peer_asn = Asn(20000 + s);
      stream.add(r);
    }
  }
  AnomalyOptions options;
  options.min_classified = 10;
  AnomalyReport report = detect_anomalies(stream, options);
  EXPECT_TRUE(report.duplicate_outliers.empty());
}

TEST(Anomaly, DetectsNoveltyBurst) {
  UpdateStream stream;
  // Background: one established community, trickling over many hours so
  // its first-hour volume stays below the burst threshold.
  for (int i = 0; i < 20; ++i) {
    stream.add(make_record(Asn(20205), "1 2", "100:1", i * 3000));
  }
  // Burst: a brand-new community arriving 150 times within an hour.
  for (int i = 0; i < 150; ++i) {
    stream.add(make_record(Asn(20205), "1 2", "666:666 100:1", 9000 + i));
  }
  AnomalyOptions options;
  options.novelty_min_occurrences = 100;
  options.min_classified = 1000000;  // disable outlier detector
  AnomalyReport report = detect_anomalies(stream, options);
  ASSERT_EQ(report.novelty_bursts.size(), 1u);
  EXPECT_EQ(report.novelty_bursts[0].community, Community::of(666, 666));
  EXPECT_EQ(report.novelty_bursts[0].occurrences, 150u);
}

// The regression the Pass port fixed: the old detector pinned first_seen
// forever and dropped every occurrence outside the initial window, so a
// community that went quiet and burst hours later was never flagged.
TEST(Anomaly, ReEmergentCommunityBurstIsFlagged) {
  UpdateStream stream;
  // Two quiet sightings at t=0, then silence.
  stream.add(make_record(Asn(20205), "1 2", "666:13", 0));
  stream.add(make_record(Asn(20205), "1 2", "666:13", 30));
  // Ten hours later: 150 occurrences within one hour.
  for (int i = 0; i < 150; ++i) {
    stream.add(make_record(Asn(20205), "1 2", "666:13", 36000 + i));
  }
  AnomalyOptions options;
  options.novelty_min_occurrences = 100;
  options.min_classified = 1000000;  // disable outlier detector
  AnomalyReport report = detect_anomalies(stream, options);
  ASSERT_EQ(report.novelty_bursts.size(), 1u);
  EXPECT_EQ(report.novelty_bursts[0].community, Community::of(666, 13));
  EXPECT_EQ(report.novelty_bursts[0].occurrences, 150u);
  // first_seen is the re-emergence, not the original quiet sighting.
  EXPECT_EQ(report.novelty_bursts[0].first_seen,
            Timestamp::from_unix_seconds(36000));
}

// The largest episode wins when a community bursts more than once.
TEST(Anomaly, LargestBurstEpisodeIsReported) {
  UpdateStream stream;
  for (int i = 0; i < 110; ++i) {
    stream.add(make_record(Asn(20205), "1 2", "666:13", i));
  }
  // Quiet gap, then a bigger re-emergent burst.
  for (int i = 0; i < 140; ++i) {
    stream.add(make_record(Asn(20205), "1 2", "666:13", 36000 + i));
  }
  AnomalyOptions options;
  options.novelty_min_occurrences = 100;
  options.min_classified = 1000000;
  AnomalyReport report = detect_anomalies(stream, options);
  ASSERT_EQ(report.novelty_bursts.size(), 1u);
  EXPECT_EQ(report.novelty_bursts[0].occurrences, 140u);
  EXPECT_EQ(report.novelty_bursts[0].first_seen,
            Timestamp::from_unix_seconds(36000));
}

// Defined small-population behavior (n eligible sessions):
//  n == 0 -> zero stats, no outliers;
//  n == 1 -> that session's share is the population mean, stddev 0, and
//            it can never be an outlier;
//  n == 2 -> each scored against the other alone (sigma 1e6 on a
//            zero-stddev remainder).
TEST(Anomaly, NoEligibleSessionsReportsZeroStats) {
  UpdateStream stream;
  for (int i = 0; i < 5; ++i) {
    stream.add(make_record(Asn(20205), "1 2", "100:1", i));
  }
  AnomalyOptions options;
  options.min_classified = 50;  // the 4 classified announcements miss it
  options.novelty_min_occurrences = 1000000;
  AnomalyReport report = detect_anomalies(stream, options);
  EXPECT_TRUE(report.duplicate_outliers.empty());
  EXPECT_DOUBLE_EQ(report.population_mean_nn_share, 0.0);
  EXPECT_DOUBLE_EQ(report.population_stddev_nn_share, 0.0);
}

TEST(Anomaly, SingleEligibleSessionIsNeverAnOutlier) {
  UpdateStream stream;
  // A session of pure duplicates: extreme, but the only population.
  for (int i = 0; i < 60; ++i) {
    stream.add(make_record(Asn(29999), "1 2 3", "100:1", i));
  }
  AnomalyOptions options;
  options.min_classified = 10;
  options.novelty_min_occurrences = 1000000;
  AnomalyReport report = detect_anomalies(stream, options);
  EXPECT_TRUE(report.duplicate_outliers.empty());
  EXPECT_DOUBLE_EQ(report.population_mean_nn_share, 1.0);
  EXPECT_DOUBLE_EQ(report.population_stddev_nn_share, 0.0);
}

TEST(Anomaly, TwoEligibleSessionsScoreAgainstEachOther) {
  UpdateStream stream;
  for (int i = 0; i < 60; ++i) {
    // Pure duplicates on one session...
    UpdateRecord dup = make_record(Asn(29999), "1 2 3", "100:1", i);
    dup.session.peer_asn = Asn(29999);
    stream.add(dup);
    // ... pure nc churn on the other.
    UpdateRecord churn =
        make_record(Asn(20205), "1 2 3", "100:" + std::to_string(i % 7), i);
    churn.session.peer_asn = Asn(20205);
    stream.add(churn);
  }
  AnomalyOptions options;
  options.min_classified = 10;
  options.novelty_min_occurrences = 1000000;
  AnomalyReport report = detect_anomalies(stream, options);
  EXPECT_DOUBLE_EQ(report.population_mean_nn_share, 0.5);
  // The duplicate session exceeds its zero-stddev remainder: infinitely
  // surprising, reported as the 1e6 sentinel. The quiet one is below its
  // remainder and stays unflagged.
  ASSERT_EQ(report.duplicate_outliers.size(), 1u);
  EXPECT_EQ(report.duplicate_outliers[0].session.peer_asn, Asn(29999));
  EXPECT_DOUBLE_EQ(report.duplicate_outliers[0].sigma, 1e6);
}

TEST(Anomaly, NonPositiveNoveltyWindowThrows) {
  UpdateStream stream;
  AnomalyOptions options;
  options.novelty_window = Duration::hours(0);
  // Rejected up front, even with nothing to scan.
  EXPECT_THROW((void)detect_anomalies(stream, options), ConfigError);
  stream.add(make_record(Asn(20205), "1 2", "100:1", 0));
  EXPECT_THROW((void)detect_anomalies(stream, options), ConfigError);
}

TEST(Anomaly, MacroArtifactSessionIsCaught) {
  // The 2012 nn artifact burst must be attributable to its session.
  synth::MacroParams params = synth::MacroParams::march2020(1.0 / 32768,
                                                            1.0 / 1024);
  params.sessions = 40;
  params.peers = 20;
  params.nn_artifact = true;
  synth::MacroGen gen(params);
  UpdateStream stream;
  gen.generate_day(
      [&stream](const UpdateRecord& record) { stream.add(record); });

  AnomalyOptions options;
  options.min_classified = 30;
  options.sigma_threshold = 2.5;
  AnomalyReport report = detect_anomalies(stream, options);
  ASSERT_FALSE(report.duplicate_outliers.empty());
  // The artifact session (index 3) uses peer ASN 20003.
  EXPECT_EQ(report.duplicate_outliers[0].session.peer_asn, Asn(20003));
}

}  // namespace
}  // namespace bgpcc::core
