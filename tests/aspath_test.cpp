// Unit tests: AS paths, prepending detection.
#include <gtest/gtest.h>

#include "bgp/aspath.h"
#include "netbase/error.h"

namespace bgpcc {
namespace {

TEST(AsPath, SequenceBasics) {
  AsPath p = AsPath::sequence({20205, 3356, 174, 12654});
  EXPECT_EQ(p.length(), 4);
  EXPECT_EQ(p.first_as(), Asn(20205));
  EXPECT_EQ(p.origin_as(), Asn(12654));
  EXPECT_EQ(p.to_string(), "20205 3356 174 12654");
  EXPECT_TRUE(p.contains(Asn(174)));
  EXPECT_FALSE(p.contains(Asn(175)));
}

TEST(AsPath, EmptyPath) {
  AsPath p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.length(), 0);
  EXPECT_EQ(p.first_as(), std::nullopt);
  EXPECT_EQ(p.origin_as(), std::nullopt);
  EXPECT_EQ(p.to_string(), "");
}

TEST(AsPath, Prepend) {
  AsPath p = AsPath::sequence({3356});
  p.prepend(Asn(100));
  EXPECT_EQ(p.to_string(), "100 3356");
  p.prepend(Asn(100), 2);
  EXPECT_EQ(p.to_string(), "100 100 100 3356");
  EXPECT_EQ(p.length(), 4);
}

TEST(AsPath, PrependOnEmpty) {
  AsPath p;
  p.prepend(Asn(65000));
  EXPECT_EQ(p.to_string(), "65000");
  EXPECT_EQ(p.origin_as(), Asn(65000));
}

TEST(AsPath, FromString) {
  AsPath p = AsPath::from_string("100 200 300");
  EXPECT_EQ(p, AsPath::sequence({100, 200, 300}));
}

TEST(AsPath, FromStringWithSet) {
  AsPath p = AsPath::from_string("100 {200 300} 400");
  ASSERT_EQ(p.segments().size(), 3u);
  EXPECT_EQ(p.segments()[1].type, AsPathSegment::Type::kSet);
  // AS_SET counts one toward path length.
  EXPECT_EQ(p.length(), 3);
  EXPECT_EQ(p.to_string(), "100 {200 300} 400");
}

TEST(AsPath, FromStringErrors) {
  EXPECT_THROW((void)AsPath::from_string("100 {200"), ParseError);
  EXPECT_THROW((void)AsPath::from_string("100 }200"), ParseError);
  EXPECT_THROW((void)AsPath::from_string("{{1}}"), ParseError);
  EXPECT_THROW((void)AsPath::from_string("{}"), ParseError);
  EXPECT_THROW((void)AsPath::from_string("abc"), ParseError);
  EXPECT_THROW((void)AsPath::from_string("4294967296"), ParseError);
}

TEST(AsPath, OriginAsSkipsTrailingSet) {
  AsPath p = AsPath::from_string("100 200 {300 400}");
  EXPECT_EQ(p.origin_as(), Asn(200));
}

TEST(AsPath, AsSetSortedUnique) {
  AsPath p = AsPath::from_string("100 100 300 200");
  auto set = p.as_set();
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set[0], Asn(100));
  EXPECT_EQ(set[1], Asn(200));
  EXPECT_EQ(set[2], Asn(300));
}

TEST(AsPath, DedupSequence) {
  AsPath p = AsPath::from_string("1 1 1 2 3 3");
  auto dedup = p.dedup_sequence();
  ASSERT_EQ(dedup.size(), 3u);
  EXPECT_EQ(dedup[0], Asn(1));
  EXPECT_EQ(dedup[1], Asn(2));
  EXPECT_EQ(dedup[2], Asn(3));
}

TEST(AsPath, PrependingOnlyChangeDetected) {
  AsPath base = AsPath::from_string("100 200 300");
  AsPath prepended = AsPath::from_string("100 100 200 300");
  EXPECT_TRUE(prepended.prepending_only_change_from(base));
  EXPECT_TRUE(base.prepending_only_change_from(prepended));
}

TEST(AsPath, IdenticalPathIsNotPrependingChange) {
  AsPath base = AsPath::from_string("100 200");
  EXPECT_FALSE(base.prepending_only_change_from(base));
}

TEST(AsPath, RealPathChangeIsNotPrependingOnly) {
  AsPath a = AsPath::from_string("100 200 300");
  AsPath b = AsPath::from_string("100 250 300");
  EXPECT_FALSE(a.prepending_only_change_from(b));
}

TEST(AsPath, ReorderedHopsAreNotPrependingOnly) {
  // Same AS set, different traversal order: a genuine path change.
  AsPath a = AsPath::from_string("100 200 300");
  AsPath b = AsPath::from_string("100 300 200");
  EXPECT_TRUE(a.same_as_set(b));
  EXPECT_FALSE(a.prepending_only_change_from(b));
}

TEST(AsPath, FromSegmentsDropsEmpty) {
  std::vector<AsPathSegment> segments;
  segments.push_back(AsPathSegment{AsPathSegment::Type::kSequence, {}});
  segments.push_back(
      AsPathSegment{AsPathSegment::Type::kSequence, {Asn(1), Asn(2)}});
  AsPath p = AsPath::from_segments(std::move(segments));
  EXPECT_EQ(p.segments().size(), 1u);
}

TEST(AsPath, FromSegmentsRejectsOversized) {
  std::vector<AsPathSegment> segments;
  segments.push_back(AsPathSegment{AsPathSegment::Type::kSequence,
                                   std::vector<Asn>(256, Asn(1))});
  EXPECT_THROW(AsPath::from_segments(std::move(segments)), ParseError);
}

TEST(AsPath, PrependOverflowOpensNewSegment) {
  AsPath p = AsPath::sequence({1});
  for (int i = 0; i < 254; ++i) p.prepend(Asn(9));
  EXPECT_EQ(p.segments().size(), 1u);
  p.prepend(Asn(9), 2);  // would exceed 255 in one segment
  EXPECT_EQ(p.segments().size(), 2u);
  EXPECT_EQ(p.length(), 257);
}

}  // namespace
}  // namespace bgpcc
