// Robustness & property tests across modules: codec fuzzing, text
// round-trips, attribute transitivity rules, runtime reconfiguration.
#include <gtest/gtest.h>

#include <random>

#include "bgp/codec.h"
#include "core/classifier.h"
#include "netbase/error.h"
#include "sim/network.h"
#include "synth/macrogen.h"

namespace bgpcc {
namespace {

UpdateMessage rich_update() {
  UpdateMessage update;
  update.announced.push_back(Prefix::from_string("84.205.64.0/24"));
  update.announced.push_back(Prefix::from_string("2001:db8::/32"));
  update.withdrawn.push_back(Prefix::from_string("198.51.100.0/24"));
  PathAttributes attrs;
  attrs.as_path = AsPath::from_string("20205 3356 {174 3257} 12654");
  attrs.next_hop = IpAddress::from_string("192.0.2.1");
  attrs.med = 10;
  attrs.local_pref = 120;
  attrs.communities.add(Community::of(3356, 2001));
  attrs.communities.add(Community::no_export());
  attrs.large_communities.add(LargeCommunity{3356, 7, 9});
  update.attrs = std::move(attrs);
  return update;
}

// Property: single-byte mutations of a valid message either decode to
// something or throw DecodeError/ParseError — never crash or loop.
class CodecMutationSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CodecMutationSweep, SingleByteMutationsAreSafe) {
  auto wire = encode_update(rich_update());
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<std::size_t> pos_dist(0, wire.size() - 1);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  for (int i = 0; i < 500; ++i) {
    auto mutated = wire;
    // Mutate 1-3 bytes, but never the header length (that is framing, and
    // the caller's framing layer validates it separately).
    int mutations = 1 + i % 3;
    for (int m = 0; m < mutations; ++m) {
      std::size_t pos = pos_dist(rng);
      if (pos == 16 || pos == 17) continue;
      mutated[pos] = static_cast<std::uint8_t>(byte_dist(rng));
    }
    try {
      UpdateMessage decoded = decode_update(mutated);
      // If it decodes, re-encoding must not crash either (it may throw
      // on semantic violations, which is acceptable).
      try {
        (void)encode_update(decoded);
      } catch (const DecodeError&) {
      } catch (const ConfigError&) {
      }
    } catch (const DecodeError&) {
      // expected for most mutations
    } catch (const ParseError&) {
      // e.g. mutated prefix lengths
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecMutationSweep,
                         ::testing::Values(101u, 202u, 303u));

// Property: every random single-sequence path round-trips through text.
class AsPathTextSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AsPathTextSweep, ToStringFromStringRoundTrip) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> len_dist(0, 8);
  std::uniform_int_distribution<std::uint32_t> asn_dist(1, 4200000000u);
  for (int i = 0; i < 200; ++i) {
    std::vector<Asn> hops;
    int len = len_dist(rng);
    for (int j = 0; j < len; ++j) hops.emplace_back(asn_dist(rng));
    AsPath path = AsPath::sequence(hops);
    EXPECT_EQ(AsPath::from_string(path.to_string()), path);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsPathTextSweep,
                         ::testing::Values(1u, 7u, 42u));

TEST(Robustness, PrefixTextRoundTripSweep) {
  std::mt19937 rng(99);
  std::uniform_int_distribution<std::uint32_t> addr_dist;
  std::uniform_int_distribution<int> len_dist(0, 32);
  for (int i = 0; i < 500; ++i) {
    int len = len_dist(rng);
    Prefix p(IpAddress::v4(addr_dist(rng)).masked(len), len);
    EXPECT_EQ(Prefix::from_string(p.to_string()), p);
  }
}

TEST(Robustness, CommunityTextRoundTripSweep) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::uint32_t> raw_dist;
  for (int i = 0; i < 500; ++i) {
    Community c(raw_dist(rng));
    EXPECT_EQ(Community::from_string(c.to_string()), c);
  }
}

// Unknown optional *non-transitive* attributes must be dropped at eBGP
// re-advertisement; optional transitive ones must survive (RFC 4271 §5).
TEST(Robustness, UnknownAttributeTransitivityAcrossRouters) {
  sim::Network net;
  net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B", Asn(200), VendorProfile::cisco_ios());
  net.add_collector("C", Asn(65000));
  net.add_session("A", "B");
  net.add_session("B", "C");
  net.start();
  net.run();

  UpdateMessage update;
  update.announced = {Prefix::from_string("203.0.113.0/24")};
  PathAttributes attrs;
  attrs.as_path = AsPath::sequence({100});
  attrs.next_hop = IpAddress::from_string("10.0.0.1");
  RawAttribute transitive;
  transitive.flags = AttrFlags::kOptional | AttrFlags::kTransitive;
  transitive.type = 99;
  transitive.value = {1};
  attrs.add_unknown(transitive);
  RawAttribute non_transitive;
  non_transitive.flags = AttrFlags::kOptional;
  non_transitive.type = 98;
  non_transitive.value = {2};
  attrs.add_unknown(non_transitive);
  update.attrs = std::move(attrs);

  net.router("B").handle_update(1, update, net.now());
  net.run();

  const auto& messages = net.collector("C").messages();
  ASSERT_EQ(messages.size(), 1u);
  ASSERT_TRUE(messages[0].update.attrs.has_value());
  const auto& unknown = messages[0].update.attrs->unknown;
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0].type, 99);  // transitive survived; 98 dropped
}

// Runtime policy reconfiguration: switching X-like cleaning from egress
// to ingress changes observable behavior on the next event (the paper's
// Exp3 -> Exp4 distinction, applied live).
TEST(Robustness, LivePolicyReconfiguration) {
  sim::Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B", Asn(200), VendorProfile::cisco_ios());
  net.add_collector("C", Asn(65000));
  std::uint32_t ab = net.add_session("A", "B");
  sim::SessionOptions bc;
  bc.a_export = Policy::clean_all();  // B cleans toward C (egress)
  std::uint32_t bc_id = net.add_session("B", "C", bc);
  net.start();

  auto announce = [&](int tag, std::int64_t at) {
    net.scheduler().at(net.now() + Duration::seconds(at), [&a, &net, tag] {
      PathAttributes base;
      base.communities.add(Community::of(100, static_cast<std::uint16_t>(tag)));
      a.originate(Prefix::from_string("203.0.113.0/24"), net.now(),
                  std::move(base));
    });
  };
  announce(1, 1);
  announce(2, 5);  // egress cleaning: nn duplicate reaches C
  net.run();
  ASSERT_EQ(net.collector("C").messages().size(), 2u);

  // Reconfigure: clean at ingress instead (Exp4).
  net.router("B").set_neighbor_policies(ab, Policy::clean_all(), Policy{});
  net.router("B").set_neighbor_policies(bc_id, Policy{}, Policy{});
  // The first update after reconfiguration flushes the RIB transition
  // ({100:2} -> {}) — one more duplicate on a cisco-like router.
  announce(3, 1);
  net.run();
  EXPECT_EQ(net.collector("C").messages().size(), 3u);
  // From then on, ingress cleaning absorbs community churn completely.
  announce(4, 1);
  announce(5, 5);
  net.run();
  EXPECT_EQ(net.collector("C").messages().size(), 3u);
  EXPECT_GE(net.router("B").stats().duplicate_updates_received, 2u);
}

// Macro generator + cleaning pipeline: route-server sessions produce
// peer-less paths which normalization repairs, and the classifier output
// is invariant to that repair being applied before classification.
TEST(Robustness, MacroRouteServerRepair) {
  synth::MacroParams params = synth::MacroParams::march2020(1.0 / 65536,
                                                            1.0 / 2048);
  params.sessions = 20;
  params.peers = 10;
  params.route_server_fraction = 1.0;  // every session is a route server
  synth::MacroGen gen(params);
  core::UpdateStream stream;
  gen.generate_day([&stream](const core::UpdateRecord& record) {
    stream.add(record);
  });
  ASSERT_GT(stream.size(), 100u);
  // Before repair: paths do not start with the peer ASN.
  std::size_t missing = 0;
  for (const auto& record : stream.records()) {
    if (!record.announcement) continue;
    auto first = record.attrs.as_path.first_as();
    if (!first || *first != record.session.peer_asn) ++missing;
  }
  EXPECT_GT(missing, 0u);

  core::CleaningOptions options;
  for (const core::SessionKey& key : stream.sessions()) {
    options.route_servers.emplace_back(key.peer_address, key.peer_asn);
  }
  options.fix_second_granularity = false;
  core::CleaningReport report = core::clean(stream, options);
  EXPECT_EQ(report.route_server_paths_repaired, missing);
  for (const auto& record : stream.records()) {
    if (!record.announcement) continue;
    EXPECT_EQ(record.attrs.as_path.first_as(), record.session.peer_asn);
  }
}

// A withdrawn-then-reannounced origin converges to the same Loc-RIB on
// every router regardless of vendor profile (suppression only affects
// messages, never state).
TEST(Robustness, VendorProfilesConvergeToSameState) {
  for (auto vendor : {VendorProfile::cisco_ios(), VendorProfile::junos(),
                      VendorProfile::bird(), VendorProfile::ideal()}) {
    sim::Network net;
    Router& a = net.add_router("A", Asn(100), vendor);
    net.add_router("B", Asn(200), vendor);
    net.add_router("D", Asn(300), vendor);
    net.add_session("A", "B");
    net.add_session("B", "D");
    net.start();
    Prefix p = Prefix::from_string("203.0.113.0/24");
    net.scheduler().at(net.now() + Duration::seconds(1),
                       [&] { a.originate(p, net.now()); });
    net.scheduler().at(net.now() + Duration::seconds(5),
                       [&] { a.withdraw_origin(p, net.now()); });
    net.scheduler().at(net.now() + Duration::seconds(9),
                       [&] { a.originate(p, net.now()); });
    net.run();
    const Route* in_d = net.router("D").loc_rib().find(p);
    ASSERT_NE(in_d, nullptr) << vendor.name;
    EXPECT_EQ(in_d->attrs.as_path.to_string(), "200 100") << vendor.name;
  }
}

}  // namespace
}  // namespace bgpcc
