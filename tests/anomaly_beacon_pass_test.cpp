// The windowed anomaly/beacon pass battery:
//
//  - differential: AnomalyPass, RevealedPass, ExplorationPass, and
//    UsageClassificationPass must report IDENTICALLY across thread
//    counts × window sizes × execution mode (inline on the shard
//    threads, streaming sink, materialized stream) — the §6/§7
//    detectors' port onto the Pass contract, made executable;
//  - algebra: manual session-partition splits merge to the
//    single-state result;
//  - setup: invalid beacon schedules and anomaly options are refused
//    with ConfigError at pass construction, not UB on a worker thread.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analytics/driver.h"
#include "analytics/passes.h"
#include "archive_gen.h"
#include "core/anomaly.h"
#include "core/beacon.h"
#include "core/cleaning.h"
#include "core/ingest.h"
#include "core/registry.h"
#include "core/stream.h"
#include "netbase/error.h"

namespace bgpcc::analytics {
namespace {

using core::BeaconSchedule;
using core::CleaningOptions;
using core::IngestOptions;
using core::IngestResult;
using core::Registry;
using core::StreamingIngestor;
using core::UpdateRecord;
using core::archgen::allocated_registry;
using core::archgen::ArchiveGenerator;

// The generator's day starts at 12:26:40 UTC and spans ~15 minutes; this
// schedule puts withdraw (12:28-12:33), announce (12:35-12:40), and
// outside instants all inside that span.
BeaconSchedule test_schedule() {
  BeaconSchedule schedule;
  schedule.period = Duration::hours(1);
  schedule.announce_offset = Duration::minutes(35);
  schedule.withdraw_offset = Duration::minutes(28);
  schedule.window = Duration::minutes(5);
  return schedule;
}

core::AnomalyOptions test_anomaly_options() {
  core::AnomalyOptions options;
  options.min_classified = 10;
  options.sigma_threshold = 1.5;
  options.novelty_window = Duration::minutes(2);
  options.novelty_min_occurrences = 20;
  return options;
}

core::UsageOptions test_usage_options() {
  core::UsageOptions options;
  options.min_occurrences = 5;
  return options;
}

/// Every new pass's report, bundled for equality comparison.
struct AllReports {
  AnomalyPass::Report anomalies;
  RevealedPass::Report revealed;
  ExplorationPass::Report exploration;
  UsageClassificationPass::Report usage;

  friend bool operator==(const AllReports&, const AllReports&) = default;
};

struct Handles {
  PassHandle<AnomalyPass> anomalies;
  PassHandle<RevealedPass> revealed;
  PassHandle<ExplorationPass> exploration;
  PassHandle<UsageClassificationPass> usage;
};

Handles add_all_passes(AnalysisDriver& driver) {
  return Handles{driver.add(AnomalyPass{test_anomaly_options()}),
                 driver.add(RevealedPass{test_schedule()}),
                 driver.add(ExplorationPass{test_schedule()}),
                 driver.add(UsageClassificationPass{test_usage_options()})};
}

AllReports collect(AnalysisDriver& driver, const Handles& handles) {
  return AllReports{driver.report(handles.anomalies),
                    driver.report(handles.revealed),
                    driver.report(handles.exploration),
                    driver.report(handles.usage)};
}

enum class Mode { kInline, kSink };

AllReports run_config(const std::string& archive,
                      const CleaningOptions& cleaning, unsigned threads,
                      std::size_t window_records, Mode mode) {
  IngestOptions options;
  options.num_threads = threads;
  options.chunk_records = 32;
  options.cleaning = &cleaning;
  options.window_records = window_records;

  AnalysisDriver driver;
  Handles handles = add_all_passes(driver);
  std::istringstream in(archive);
  if (mode == Mode::kInline) {
    driver.attach(options);
    StreamingIngestor engine(options);
    engine.add_stream("rrc00", in);
    IngestResult result = engine.finish();
    EXPECT_GT(result.stream.size(), 0u);
  } else {
    StreamingIngestor engine(options);
    engine.add_stream("rrc00", in);
    IngestResult result = engine.finish(driver.sink());
    EXPECT_EQ(result.stream.size(), 0u);
  }
  return collect(driver, handles);
}

// ---------------------------------------------------------------------------
// Differential: reports are identical across every execution shape.

TEST(AnomalyBeaconDifferential, ThreadsWindowsAndModesAgree) {
  ArchiveGenerator gen(20260802);
  std::string archive = gen.generate(1500);
  Registry registry = allocated_registry();
  CleaningOptions cleaning;
  cleaning.registry = &registry;

  // Reference: materialized stream observed on one thread.
  IngestOptions batch;
  batch.num_threads = 1;
  batch.cleaning = &cleaning;
  std::istringstream in(archive);
  IngestResult result = core::ingest_mrt_stream("rrc00", in, batch);
  ASSERT_GT(result.stream.size(), 0u);
  AnalysisDriver reference;
  Handles handles = add_all_passes(reference);
  reference.observe_stream(result.stream);
  AllReports expected = collect(reference, handles);

  // Sanity: the fixture actually exercises every pass.
  ASSERT_GT(expected.anomalies.population_mean_nn_share, 0.0);
  ASSERT_FALSE(expected.anomalies.novelty_bursts.empty());
  ASSERT_GT(expected.revealed.total_unique, 0u);
  ASSERT_GT(expected.revealed.withdrawal_only + expected.revealed.ambiguous,
            0u);
  ASSERT_FALSE(expected.exploration.empty());
  ASSERT_FALSE(expected.usage.empty());

  for (unsigned threads : {1u, 4u}) {
    for (std::size_t window : {std::size_t{0}, std::size_t{64}}) {
      for (Mode mode : {Mode::kInline, Mode::kSink}) {
        SCOPED_TRACE(::testing::Message()
                     << "threads=" << threads << " window=" << window
                     << " mode=" << (mode == Mode::kInline ? "inline"
                                                           : "sink"));
        AllReports actual =
            run_config(archive, cleaning, threads, window, mode);
        EXPECT_TRUE(actual == expected);
      }
    }
  }
}

// The pass path must agree with the legacy one-shot entry points (now
// thin wrappers over the same kernels) on the materialized stream.
TEST(AnomalyBeaconDifferential, PassesMatchLegacyWrappers) {
  ArchiveGenerator gen(77);
  std::string archive = gen.generate(800);
  Registry registry = allocated_registry();
  CleaningOptions cleaning;
  cleaning.registry = &registry;

  IngestOptions options;
  options.num_threads = 2;
  options.cleaning = &cleaning;
  AnalysisDriver driver;
  Handles handles = add_all_passes(driver);
  driver.attach(options);
  std::istringstream in(archive);
  IngestResult result = core::ingest_mrt_stream("rrc00", in, options);
  AllReports actual = collect(driver, handles);

  EXPECT_TRUE(actual.anomalies ==
              core::detect_anomalies(result.stream, test_anomaly_options()));
  EXPECT_TRUE(actual.revealed ==
              core::analyze_revealed(result.stream, test_schedule()));
  EXPECT_TRUE(actual.exploration ==
              core::find_community_exploration(result.stream,
                                               test_schedule()));
  EXPECT_TRUE(actual.usage ==
              core::classify_community_usage_stream(result.stream,
                                                    test_usage_options()));
}

// ---------------------------------------------------------------------------
// Pass algebra: manual splits merge to the single-state result.

TEST(AnomalyBeaconPasses, ManualMergeEqualsSingleState) {
  ArchiveGenerator gen(9);
  std::string archive = gen.generate(400);
  IngestOptions options;
  options.num_threads = 1;
  std::istringstream in(archive);
  IngestResult result = core::ingest_mrt_stream("rrc00", in, options);
  const std::vector<UpdateRecord>& records = result.stream.records();
  ASSERT_GT(records.size(), 10u);

  AnomalyPass anomaly_pass{test_anomaly_options()};
  ExplorationPass exploration_pass{test_schedule()};
  auto whole_anomaly = anomaly_pass.make_state();
  auto whole_exploration = exploration_pass.make_state();
  for (const UpdateRecord& record : records) {
    whole_anomaly.observe(record);
    whole_exploration.observe(record);
  }

  // Split by SESSION (the sharding unit — splitting one session's stream
  // mid-way is outside the Pass contract for order-sensitive passes).
  auto part_a_anomaly = anomaly_pass.make_state();
  auto part_b_anomaly = anomaly_pass.make_state();
  auto part_a_exploration = exploration_pass.make_state();
  auto part_b_exploration = exploration_pass.make_state();
  for (const UpdateRecord& record : records) {
    if (record.session.hash() % 2 == 0) {
      part_a_anomaly.observe(record);
      part_a_exploration.observe(record);
    } else {
      part_b_anomaly.observe(record);
      part_b_exploration.observe(record);
    }
  }
  part_a_anomaly.merge(std::move(part_b_anomaly));
  part_a_exploration.merge(std::move(part_b_exploration));
  EXPECT_TRUE(part_a_anomaly.report() == whole_anomaly.report());
  EXPECT_TRUE(part_a_exploration.report() == whole_exploration.report());
}

// report() flushes still-active runs on a copy: it must be repeatable
// and must not perturb the underlying state.
TEST(AnomalyBeaconPasses, ExplorationReportIsRepeatable) {
  BeaconSchedule schedule = test_schedule();
  ExplorationPass pass{schedule};
  auto state = pass.make_state();
  UpdateRecord record;
  record.session = core::SessionKey{"rrc00", Asn(65001),
                                    IpAddress::from_string("10.0.0.1")};
  record.prefix = Prefix::from_string("10.0.0.0/16");
  record.attrs.as_path = AsPath::sequence({Asn(65001), Asn(65200)});
  // Three same-path nc announcements inside the withdraw phase: an
  // active run that only a flush reports.
  for (int i = 0; i < 3; ++i) {
    record.time = Timestamp::from_unix_seconds(1600000000 + 120 + i);
    record.attrs.communities.clear();
    record.attrs.communities.add(Community::of(65100, 100 + i));
    state.observe(record);
  }
  auto first = state.report();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].nc_count, 2);
  EXPECT_TRUE(state.report() == first);
}

// ---------------------------------------------------------------------------
// Setup validation: bad configurations are refused loudly.

TEST(AnomalyBeaconPasses, InvalidScheduleThrowsAtConstruction) {
  BeaconSchedule zero_period;
  zero_period.period = Duration::hours(0);
  EXPECT_THROW(RevealedPass{zero_period}, ConfigError);
  EXPECT_THROW(ExplorationPass{zero_period}, ConfigError);

  BeaconSchedule oversized_window;
  oversized_window.period = Duration::hours(1);
  oversized_window.window = Duration::hours(2);
  EXPECT_THROW(RevealedPass{oversized_window}, ConfigError);
  EXPECT_THROW(ExplorationPass{oversized_window}, ConfigError);
}

TEST(AnomalyBeaconPasses, InvalidAnomalyOptionsThrowAtConstruction) {
  core::AnomalyOptions options;
  options.novelty_window = Duration::hours(0);
  EXPECT_THROW(AnomalyPass{options}, ConfigError);
  options.novelty_window = Duration::micros(-1);
  EXPECT_THROW(AnomalyPass{options}, ConfigError);
}

}  // namespace
}  // namespace bgpcc::analytics
