// Unit tests: beacon schedule, phase labeling, revealed-attribute and
// community-exploration analyses.
#include <gtest/gtest.h>

#include "core/beacon.h"

namespace bgpcc::core {
namespace {

using Phase = BeaconSchedule::Phase;

Timestamp at(int hour, int minute = 0) {
  return Timestamp::from_unix_seconds(1584230400 + hour * 3600 + minute * 60);
}

SessionKey session_a() {
  return SessionKey{"rrc00", Asn(20205), IpAddress::from_string("192.0.2.1")};
}

UpdateRecord record_at(Timestamp t, const std::string& path,
                       const std::string& comms, bool announcement = true) {
  UpdateRecord r;
  r.time = t;
  r.session = session_a();
  r.prefix = Prefix::from_string("84.205.64.0/24");
  r.announcement = announcement;
  if (announcement) {
    r.attrs.as_path = AsPath::from_string(path);
    if (!comms.empty()) {
      std::size_t start = 0;
      while (start < comms.size()) {
        std::size_t end = comms.find(' ', start);
        if (end == std::string::npos) end = comms.size();
        r.attrs.communities.add(
            Community::from_string(comms.substr(start, end - start)));
        start = end + 1;
      }
    }
  }
  return r;
}

TEST(BeaconSchedule, RipePhases) {
  BeaconSchedule schedule;
  EXPECT_EQ(schedule.label(at(0, 0)), Phase::kAnnounce);
  EXPECT_EQ(schedule.label(at(0, 14)), Phase::kAnnounce);
  EXPECT_EQ(schedule.label(at(0, 15)), Phase::kOutside);
  EXPECT_EQ(schedule.label(at(2, 0)), Phase::kWithdraw);
  EXPECT_EQ(schedule.label(at(2, 14)), Phase::kWithdraw);
  EXPECT_EQ(schedule.label(at(2, 15)), Phase::kOutside);
  EXPECT_EQ(schedule.label(at(1, 0)), Phase::kOutside);
  // Every 4 hours.
  EXPECT_EQ(schedule.label(at(4, 0)), Phase::kAnnounce);
  EXPECT_EQ(schedule.label(at(22, 5)), Phase::kWithdraw);
  EXPECT_EQ(schedule.label(at(23, 59)), Phase::kOutside);
}

TEST(BeaconSchedule, PhaseTimes) {
  BeaconSchedule schedule;
  auto announces = schedule.announce_times(at(0));
  auto withdraws = schedule.withdraw_times(at(0));
  ASSERT_EQ(announces.size(), 6u);
  ASSERT_EQ(withdraws.size(), 6u);
  EXPECT_EQ(announces[0], at(0));
  EXPECT_EQ(announces[5], at(20));
  EXPECT_EQ(withdraws[0], at(2));
  EXPECT_EQ(withdraws[5], at(22));
}

TEST(RevealedStats, BucketsByPhaseExclusivity) {
  BeaconSchedule schedule;
  UpdateStream stream;
  // Attribute A: only during withdraw phases.
  stream.add(record_at(at(2, 1), "1 2", "3356:1"));
  stream.add(record_at(at(6, 2), "1 2", "3356:1"));
  // Attribute B: only during announce phase.
  stream.add(record_at(at(0, 1), "1 2", "3356:2"));
  // Attribute C: both -> ambiguous.
  stream.add(record_at(at(0, 5), "1 2", "3356:3"));
  stream.add(record_at(at(2, 5), "1 2", "3356:3"));
  // Attribute D: outside only.
  stream.add(record_at(at(1, 0), "1 2", "3356:4"));
  // Empty communities never count.
  stream.add(record_at(at(2, 3), "1 2", ""));

  RevealedStats stats = analyze_revealed(stream, schedule);
  EXPECT_EQ(stats.total_unique, 4u);
  EXPECT_EQ(stats.withdrawal_only, 1u);
  EXPECT_EQ(stats.announce_only, 1u);
  EXPECT_EQ(stats.outside_only, 1u);
  EXPECT_EQ(stats.ambiguous, 1u);
  EXPECT_DOUBLE_EQ(stats.withdrawal_ratio(), 0.25);
}

TEST(RevealedStats, AttributeIsTheWholeSet) {
  // {3356:1} and {3356:1, 3356:2} are distinct attributes.
  BeaconSchedule schedule;
  UpdateStream stream;
  stream.add(record_at(at(2, 1), "1 2", "3356:1"));
  stream.add(record_at(at(2, 2), "1 2", "3356:1 3356:2"));
  RevealedStats stats = analyze_revealed(stream, schedule);
  EXPECT_EQ(stats.total_unique, 2u);
  EXPECT_EQ(stats.withdrawal_only, 2u);
}

TEST(CommunityExploration, DetectsNcRunsInWithdrawPhase) {
  BeaconSchedule schedule;
  UpdateStream stream;
  // Steady announcement outside the phase.
  stream.add(record_at(at(1, 0), "20205 3356 174 12654", "3356:2001"));
  // Withdrawal phase: same path, changing communities (3 nc's).
  stream.add(record_at(at(2, 1), "20205 3356 174 12654", "3356:2002"));
  stream.add(record_at(at(2, 2), "20205 3356 174 12654", "3356:2003"));
  stream.add(record_at(at(2, 3), "20205 3356 174 12654", "3356:2004"));
  stream.add(record_at(at(2, 4), "", "", false));  // final withdraw

  auto events = find_community_exploration(stream, schedule);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].nc_count, 3);
  EXPECT_GE(events[0].distinct_attributes, 3);
  EXPECT_EQ(events[0].as_path.to_string(), "20205 3356 174 12654");
}

TEST(CommunityExploration, PathChangeBreaksRun) {
  BeaconSchedule schedule;
  UpdateStream stream;
  stream.add(record_at(at(2, 0), "1 2 3", "3356:1"));
  stream.add(record_at(at(2, 1), "1 2 3", "3356:2"));
  stream.add(record_at(at(2, 2), "1 9 3", "3356:3"));  // path change
  stream.add(record_at(at(2, 3), "1 9 3", "3356:4"));
  auto events = find_community_exploration(stream, schedule);
  // Two separate runs, each with one nc: below the >=2 threshold.
  EXPECT_TRUE(events.empty());
}

TEST(CommunityExploration, SingleNcIsNotAnEvent) {
  BeaconSchedule schedule;
  UpdateStream stream;
  stream.add(record_at(at(2, 0), "1 2", "3356:1"));
  stream.add(record_at(at(2, 1), "1 2", "3356:2"));
  EXPECT_TRUE(find_community_exploration(stream, schedule).empty());
}

TEST(CommunityExploration, OutsidePhaseRunsIgnored) {
  BeaconSchedule schedule;
  UpdateStream stream;
  stream.add(record_at(at(1, 0), "1 2", "3356:1"));
  stream.add(record_at(at(1, 1), "1 2", "3356:2"));
  stream.add(record_at(at(1, 2), "1 2", "3356:3"));
  EXPECT_TRUE(find_community_exploration(stream, schedule).empty());
}

TEST(RouteSeries, FiltersByPathAndCollectsWithdrawals) {
  UpdateStream stream;
  stream.add(record_at(at(0, 1), "20205 3356 174 12654", "3356:2001"));
  stream.add(record_at(at(2, 1), "20205 6939 50304 12654", "6939:1"));
  stream.add(record_at(at(2, 2), "20205 3356 174 12654", "3356:2002"));
  stream.add(record_at(at(2, 5), "", "", false));

  AsPath t_path = AsPath::from_string("20205 3356 174 12654");
  RouteSeries series =
      route_series(stream, session_a(),
                   Prefix::from_string("84.205.64.0/24"), t_path);
  // First sighting is untyped and excluded; the 2:2 announcement is a pc
  // (path changed back from the 6939 route).
  ASSERT_EQ(series.announcements.size(), 1u);
  EXPECT_EQ(series.announcements[0].type, AnnouncementType::kPc);
  ASSERT_EQ(series.withdrawals.size(), 1u);
  EXPECT_EQ(series.withdrawals[0], at(2, 5));
}

TEST(RouteSeries, UnfilteredSeesAllTypes) {
  UpdateStream stream;
  stream.add(record_at(at(0, 1), "1 2", "3356:1"));
  stream.add(record_at(at(0, 2), "1 2", "3356:2"));
  stream.add(record_at(at(0, 3), "1 3", "3356:2"));
  RouteSeries series = route_series(
      stream, session_a(), Prefix::from_string("84.205.64.0/24"));
  ASSERT_EQ(series.announcements.size(), 2u);
  EXPECT_EQ(series.announcements[0].type, AnnouncementType::kNc);
  EXPECT_EQ(series.announcements[1].type, AnnouncementType::kPn);
}

TEST(PhaseLabels, Strings) {
  EXPECT_STREQ(label(Phase::kAnnounce), "announce");
  EXPECT_STREQ(label(Phase::kWithdraw), "withdraw");
  EXPECT_STREQ(label(Phase::kOutside), "outside");
}

}  // namespace
}  // namespace bgpcc::core
