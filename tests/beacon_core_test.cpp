// Unit tests: beacon schedule, phase labeling, revealed-attribute and
// community-exploration analyses.
#include <gtest/gtest.h>

#include "core/beacon.h"
#include "netbase/error.h"

namespace bgpcc::core {
namespace {

using Phase = BeaconSchedule::Phase;

Timestamp at(int hour, int minute = 0) {
  return Timestamp::from_unix_seconds(1584230400 + hour * 3600 + minute * 60);
}

SessionKey session_a() {
  return SessionKey{"rrc00", Asn(20205), IpAddress::from_string("192.0.2.1")};
}

UpdateRecord record_at(Timestamp t, const std::string& path,
                       const std::string& comms, bool announcement = true) {
  UpdateRecord r;
  r.time = t;
  r.session = session_a();
  r.prefix = Prefix::from_string("84.205.64.0/24");
  r.announcement = announcement;
  if (announcement) {
    r.attrs.as_path = AsPath::from_string(path);
    if (!comms.empty()) {
      std::size_t start = 0;
      while (start < comms.size()) {
        std::size_t end = comms.find(' ', start);
        if (end == std::string::npos) end = comms.size();
        r.attrs.communities.add(
            Community::from_string(comms.substr(start, end - start)));
        start = end + 1;
      }
    }
  }
  return r;
}

TEST(BeaconSchedule, RipePhases) {
  BeaconSchedule schedule;
  EXPECT_EQ(schedule.label(at(0, 0)), Phase::kAnnounce);
  EXPECT_EQ(schedule.label(at(0, 14)), Phase::kAnnounce);
  EXPECT_EQ(schedule.label(at(0, 15)), Phase::kOutside);
  EXPECT_EQ(schedule.label(at(2, 0)), Phase::kWithdraw);
  EXPECT_EQ(schedule.label(at(2, 14)), Phase::kWithdraw);
  EXPECT_EQ(schedule.label(at(2, 15)), Phase::kOutside);
  EXPECT_EQ(schedule.label(at(1, 0)), Phase::kOutside);
  // Every 4 hours.
  EXPECT_EQ(schedule.label(at(4, 0)), Phase::kAnnounce);
  EXPECT_EQ(schedule.label(at(22, 5)), Phase::kWithdraw);
  EXPECT_EQ(schedule.label(at(23, 59)), Phase::kOutside);
}

TEST(BeaconSchedule, ZeroPeriodThrowsInsteadOfDividingByZero) {
  BeaconSchedule schedule;
  schedule.period = Duration::hours(0);
  EXPECT_THROW((void)schedule.label(at(0)), ConfigError);
  EXPECT_THROW((void)schedule.announce_times(at(0)), ConfigError);
  EXPECT_THROW((void)schedule.withdraw_times(at(0)), ConfigError);
  schedule.period = Duration::micros(-1);
  EXPECT_THROW((void)schedule.label(at(0)), ConfigError);
}

TEST(BeaconSchedule, WindowReachingPeriodThrowsInsteadOfDoubleLabeling) {
  BeaconSchedule schedule;
  schedule.period = Duration::hours(1);
  schedule.window = Duration::hours(2);  // would label every instant
  EXPECT_THROW((void)schedule.label(at(0)), ConfigError);
  EXPECT_THROW(schedule.validate(), ConfigError);
  // window == period is equally degenerate: rel < window always holds.
  schedule.window = Duration::hours(1);
  EXPECT_THROW(schedule.validate(), ConfigError);
  schedule.window = Duration::minutes(59);
  EXPECT_NO_THROW(schedule.validate());
}

TEST(BeaconSchedule, PhaseBoundaryIsExclusive) {
  BeaconSchedule schedule;
  // rel == window is the first instant OUTSIDE the phase; one microsecond
  // earlier is the last instant inside.
  Timestamp boundary = at(2, 15);
  EXPECT_EQ(schedule.label(boundary), Phase::kOutside);
  EXPECT_EQ(schedule.label(
                Timestamp::from_unix_micros(boundary.unix_micros() - 1)),
            Phase::kWithdraw);
}

TEST(BeaconSchedule, MidnightWraparound) {
  BeaconSchedule schedule;
  schedule.announce_offset = Duration::hours(23);
  schedule.withdraw_offset = Duration::hours(21);
  // Phases recur at 23:00, 03:00, 07:00, ... — the 23:00 window is the
  // last before midnight and the modulo math must not mislabel the
  // following early-morning instants.
  EXPECT_EQ(schedule.label(at(23, 5)), Phase::kAnnounce);
  EXPECT_EQ(schedule.label(at(23, 20)), Phase::kOutside);
  EXPECT_EQ(schedule.label(at(0, 5)), Phase::kOutside);
  EXPECT_EQ(schedule.label(at(3, 5)), Phase::kAnnounce);
  EXPECT_EQ(schedule.label(at(21, 10)), Phase::kWithdraw);
  EXPECT_EQ(schedule.label(at(1, 10)), Phase::kWithdraw);
}

TEST(BeaconSchedule, OffsetBeyondPeriodRecursModuloPeriod) {
  BeaconSchedule schedule;
  schedule.announce_offset = Duration::hours(26);  // == 02:00 mod 4h
  schedule.withdraw_offset = Duration::hours(1);
  EXPECT_EQ(schedule.label(at(2, 5)), Phase::kAnnounce);
  EXPECT_EQ(schedule.label(at(6, 5)), Phase::kAnnounce);
  EXPECT_EQ(schedule.label(at(0, 5)), Phase::kOutside);
  EXPECT_EQ(schedule.label(at(1, 5)), Phase::kWithdraw);
}

TEST(BeaconSchedule, PhaseTimes) {
  BeaconSchedule schedule;
  auto announces = schedule.announce_times(at(0));
  auto withdraws = schedule.withdraw_times(at(0));
  ASSERT_EQ(announces.size(), 6u);
  ASSERT_EQ(withdraws.size(), 6u);
  EXPECT_EQ(announces[0], at(0));
  EXPECT_EQ(announces[5], at(20));
  EXPECT_EQ(withdraws[0], at(2));
  EXPECT_EQ(withdraws[5], at(22));
}

TEST(RevealedStats, BucketsByPhaseExclusivity) {
  BeaconSchedule schedule;
  UpdateStream stream;
  // Attribute A: only during withdraw phases.
  stream.add(record_at(at(2, 1), "1 2", "3356:1"));
  stream.add(record_at(at(6, 2), "1 2", "3356:1"));
  // Attribute B: only during announce phase.
  stream.add(record_at(at(0, 1), "1 2", "3356:2"));
  // Attribute C: both -> ambiguous.
  stream.add(record_at(at(0, 5), "1 2", "3356:3"));
  stream.add(record_at(at(2, 5), "1 2", "3356:3"));
  // Attribute D: outside only.
  stream.add(record_at(at(1, 0), "1 2", "3356:4"));
  // Empty communities never count.
  stream.add(record_at(at(2, 3), "1 2", ""));

  RevealedStats stats = analyze_revealed(stream, schedule);
  EXPECT_EQ(stats.total_unique, 4u);
  EXPECT_EQ(stats.withdrawal_only, 1u);
  EXPECT_EQ(stats.announce_only, 1u);
  EXPECT_EQ(stats.outside_only, 1u);
  EXPECT_EQ(stats.ambiguous, 1u);
  EXPECT_DOUBLE_EQ(stats.withdrawal_ratio(), 0.25);
}

TEST(RevealedStats, AttributeIsTheWholeSet) {
  // {3356:1} and {3356:1, 3356:2} are distinct attributes.
  BeaconSchedule schedule;
  UpdateStream stream;
  stream.add(record_at(at(2, 1), "1 2", "3356:1"));
  stream.add(record_at(at(2, 2), "1 2", "3356:1 3356:2"));
  RevealedStats stats = analyze_revealed(stream, schedule);
  EXPECT_EQ(stats.total_unique, 2u);
  EXPECT_EQ(stats.withdrawal_only, 2u);
}

TEST(CommunityExploration, DetectsNcRunsInWithdrawPhase) {
  BeaconSchedule schedule;
  UpdateStream stream;
  // Steady announcement outside the phase.
  stream.add(record_at(at(1, 0), "20205 3356 174 12654", "3356:2001"));
  // Withdrawal phase: same path, changing communities (3 nc's).
  stream.add(record_at(at(2, 1), "20205 3356 174 12654", "3356:2002"));
  stream.add(record_at(at(2, 2), "20205 3356 174 12654", "3356:2003"));
  stream.add(record_at(at(2, 3), "20205 3356 174 12654", "3356:2004"));
  stream.add(record_at(at(2, 4), "", "", false));  // final withdraw

  auto events = find_community_exploration(stream, schedule);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].nc_count, 3);
  EXPECT_GE(events[0].distinct_attributes, 3);
  EXPECT_EQ(events[0].as_path.to_string(), "20205 3356 174 12654");
}

TEST(CommunityExploration, PathChangeBreaksRun) {
  BeaconSchedule schedule;
  UpdateStream stream;
  stream.add(record_at(at(2, 0), "1 2 3", "3356:1"));
  stream.add(record_at(at(2, 1), "1 2 3", "3356:2"));
  stream.add(record_at(at(2, 2), "1 9 3", "3356:3"));  // path change
  stream.add(record_at(at(2, 3), "1 9 3", "3356:4"));
  auto events = find_community_exploration(stream, schedule);
  // Two separate runs, each with one nc: below the >=2 threshold.
  EXPECT_TRUE(events.empty());
}

TEST(CommunityExploration, SingleNcIsNotAnEvent) {
  BeaconSchedule schedule;
  UpdateStream stream;
  stream.add(record_at(at(2, 0), "1 2", "3356:1"));
  stream.add(record_at(at(2, 1), "1 2", "3356:2"));
  EXPECT_TRUE(find_community_exploration(stream, schedule).empty());
}

TEST(CommunityExploration, OutsidePhaseRunsIgnored) {
  BeaconSchedule schedule;
  UpdateStream stream;
  stream.add(record_at(at(1, 0), "1 2", "3356:1"));
  stream.add(record_at(at(1, 1), "1 2", "3356:2"));
  stream.add(record_at(at(1, 2), "1 2", "3356:3"));
  EXPECT_TRUE(find_community_exploration(stream, schedule).empty());
}

// The sorted-flush pinned golden: still-active runs used to be flushed
// in run-map (session-key) order at end of stream, so the returned
// events were not in time order like the mid-stream ones. The output
// order is now (begin, session, prefix), whoever emitted the event.
TEST(CommunityExploration, EndOfStreamFlushIsSortedByBeginTime) {
  BeaconSchedule schedule;
  UpdateStream stream;
  // Three sessions whose key order (peer ASN 100 < 200 < 300) is the
  // REVERSE of their run begin times; every run is still active at end
  // of stream, so all three are flushed.
  struct Spec {
    std::uint32_t peer;
    int start_minute;
  };
  for (const Spec& spec : {Spec{100, 10}, Spec{200, 5}, Spec{300, 1}}) {
    for (int i = 0; i < 3; ++i) {
      UpdateRecord r;
      r.time = at(2, spec.start_minute) + Duration::seconds(i * 20);
      r.session = SessionKey{"rrc00", Asn(spec.peer),
                             IpAddress::from_string("192.0.2.1")};
      r.prefix = Prefix::from_string("84.205.64.0/24");
      r.announcement = true;
      r.attrs.as_path = AsPath::from_string("1 2 3");
      r.attrs.communities.add(
          Community::of(3356, static_cast<std::uint16_t>(2000 + i)));
      stream.add(r);
    }
  }
  stream.sort_by_time();
  auto events = find_community_exploration(stream, schedule);
  ASSERT_EQ(events.size(), 3u);
  // Sorted by begin: the ASN-300 run (2:01) first, then 200, then 100 —
  // the run-map order would have returned 100, 200, 300.
  EXPECT_EQ(events[0].session.peer_asn, Asn(300));
  EXPECT_EQ(events[1].session.peer_asn, Asn(200));
  EXPECT_EQ(events[2].session.peer_asn, Asn(100));
  EXPECT_LT(events[0].begin, events[1].begin);
  EXPECT_LT(events[1].begin, events[2].begin);
  // Each run's begin is its second announcement (the first nc).
  EXPECT_EQ(events[0].begin, at(2, 1) + Duration::seconds(20));
  EXPECT_EQ(events[0].nc_count, 2);
  EXPECT_EQ(events[0].distinct_attributes, 3);
}

TEST(RouteSeries, FiltersByPathAndCollectsWithdrawals) {
  UpdateStream stream;
  stream.add(record_at(at(0, 1), "20205 3356 174 12654", "3356:2001"));
  stream.add(record_at(at(2, 1), "20205 6939 50304 12654", "6939:1"));
  stream.add(record_at(at(2, 2), "20205 3356 174 12654", "3356:2002"));
  stream.add(record_at(at(2, 5), "", "", false));

  AsPath t_path = AsPath::from_string("20205 3356 174 12654");
  RouteSeries series =
      route_series(stream, session_a(),
                   Prefix::from_string("84.205.64.0/24"), t_path);
  // First sighting is untyped and excluded; the 2:2 announcement is a pc
  // (path changed back from the 6939 route).
  ASSERT_EQ(series.announcements.size(), 1u);
  EXPECT_EQ(series.announcements[0].type, AnnouncementType::kPc);
  ASSERT_EQ(series.withdrawals.size(), 1u);
  EXPECT_EQ(series.withdrawals[0], at(2, 5));
}

TEST(RouteSeries, UnfilteredSeesAllTypes) {
  UpdateStream stream;
  stream.add(record_at(at(0, 1), "1 2", "3356:1"));
  stream.add(record_at(at(0, 2), "1 2", "3356:2"));
  stream.add(record_at(at(0, 3), "1 3", "3356:2"));
  RouteSeries series = route_series(
      stream, session_a(), Prefix::from_string("84.205.64.0/24"));
  ASSERT_EQ(series.announcements.size(), 2u);
  EXPECT_EQ(series.announcements[0].type, AnnouncementType::kNc);
  EXPECT_EQ(series.announcements[1].type, AnnouncementType::kPn);
}

TEST(PhaseLabels, Strings) {
  EXPECT_STREQ(label(Phase::kAnnounce), "announce");
  EXPECT_STREQ(label(Phase::kWithdraw), "withdraw");
  EXPECT_STREQ(label(Phase::kOutside), "outside");
}

}  // namespace
}  // namespace bgpcc::core
