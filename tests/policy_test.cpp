// Unit tests: route policies.
#include <gtest/gtest.h>

#include "policy/policy.h"

namespace bgpcc {
namespace {

Prefix p() { return Prefix::from_string("203.0.113.0/24"); }

PathAttributes base_attrs() {
  PathAttributes attrs;
  attrs.as_path = AsPath::sequence({100, 200});
  attrs.next_hop = IpAddress::from_string("10.0.0.1");
  return attrs;
}

TEST(Policy, EmptyPolicyPassesThrough) {
  Policy policy;
  PathAttributes attrs = base_attrs();
  PathAttributes before = attrs;
  EXPECT_TRUE(policy.apply(p(), attrs, Asn(65000)));
  EXPECT_EQ(attrs, before);
}

TEST(Policy, TagAll) {
  Policy policy = Policy::tag_all(Community::of(200, 300));
  PathAttributes attrs = base_attrs();
  EXPECT_TRUE(policy.apply(p(), attrs, Asn(65000)));
  EXPECT_TRUE(attrs.communities.contains(Community::of(200, 300)));
}

TEST(Policy, CleanAll) {
  Policy policy = Policy::clean_all();
  PathAttributes attrs = base_attrs();
  attrs.communities.add(Community::of(200, 300));
  attrs.large_communities.add(LargeCommunity{1, 2, 3});
  EXPECT_TRUE(policy.apply(p(), attrs, Asn(65000)));
  EXPECT_TRUE(attrs.communities.empty());
  EXPECT_TRUE(attrs.large_communities.empty());
}

TEST(Policy, CleanAsnNamespaceOnly) {
  Policy policy = Policy::clean_asn(200);
  PathAttributes attrs = base_attrs();
  attrs.communities.add(Community::of(200, 300));
  attrs.communities.add(Community::of(3356, 1));
  EXPECT_TRUE(policy.apply(p(), attrs, Asn(65000)));
  EXPECT_FALSE(attrs.communities.contains(Community::of(200, 300)));
  EXPECT_TRUE(attrs.communities.contains(Community::of(3356, 1)));
}

TEST(Policy, DenyAll) {
  Policy policy = Policy::deny_all();
  PathAttributes attrs = base_attrs();
  EXPECT_FALSE(policy.apply(p(), attrs, Asn(65000)));
}

TEST(Policy, PrependUsesGivenAsn) {
  Policy policy = Policy::prepend_all(2);
  PathAttributes attrs = base_attrs();
  EXPECT_TRUE(policy.apply(p(), attrs, Asn(65000)));
  EXPECT_EQ(attrs.as_path.to_string(), "65000 65000 100 200");
}

TEST(Policy, PrefixMatchRestrictsRule) {
  Policy policy;
  PolicyRule rule;
  rule.match.prefixes = {Prefix::from_string("10.0.0.0/8")};
  rule.actions.add_communities = {Community::of(1, 1)};
  policy.add_rule(rule);

  PathAttributes attrs = base_attrs();
  EXPECT_TRUE(policy.apply(p(), attrs, Asn(65000)));  // 203.0.113/24: no match
  EXPECT_TRUE(attrs.communities.empty());

  EXPECT_TRUE(
      policy.apply(Prefix::from_string("10.1.0.0/16"), attrs, Asn(65000)));
  EXPECT_TRUE(attrs.communities.contains(Community::of(1, 1)));
}

TEST(Policy, CommunityMatch) {
  Policy policy;
  PolicyRule rule;
  rule.match.any_community = {Community::blackhole()};
  rule.actions.deny = true;
  policy.add_rule(rule);

  PathAttributes attrs = base_attrs();
  EXPECT_TRUE(policy.apply(p(), attrs, Asn(65000)));
  attrs.communities.add(Community::blackhole());
  EXPECT_FALSE(policy.apply(p(), attrs, Asn(65000)));
}

TEST(Policy, PathContainsMatch) {
  Policy policy;
  PolicyRule rule;
  rule.match.path_contains = Asn(200);
  rule.actions.set_local_pref = 50;
  policy.add_rule(rule);

  PathAttributes attrs = base_attrs();
  EXPECT_TRUE(policy.apply(p(), attrs, Asn(65000)));
  EXPECT_EQ(attrs.local_pref, 50u);

  PathAttributes other = base_attrs();
  other.as_path = AsPath::sequence({100, 300});
  EXPECT_TRUE(policy.apply(p(), other, Asn(65000)));
  EXPECT_FALSE(other.local_pref.has_value());
}

TEST(Policy, FirstMatchingRuleWins) {
  Policy policy;
  PolicyRule first;
  first.actions.add_communities = {Community::of(1, 1)};
  PolicyRule second;
  second.actions.add_communities = {Community::of(2, 2)};
  policy.add_rule(first).add_rule(second);

  PathAttributes attrs = base_attrs();
  EXPECT_TRUE(policy.apply(p(), attrs, Asn(65000)));
  EXPECT_TRUE(attrs.communities.contains(Community::of(1, 1)));
  EXPECT_FALSE(attrs.communities.contains(Community::of(2, 2)));
}

TEST(Policy, MedActions) {
  Policy policy;
  PolicyRule rule;
  rule.actions.set_med = 77;
  policy.add_rule(rule);
  PathAttributes attrs = base_attrs();
  EXPECT_TRUE(policy.apply(p(), attrs, Asn(65000)));
  EXPECT_EQ(attrs.med, 77u);

  Policy clear;
  PolicyRule clear_rule;
  clear_rule.actions.clear_med = true;
  clear.add_rule(clear_rule);
  EXPECT_TRUE(clear.apply(p(), attrs, Asn(65000)));
  EXPECT_FALSE(attrs.med.has_value());
}

TEST(Policy, RemoveSpecificCommunities) {
  Policy policy;
  PolicyRule rule;
  rule.actions.remove_communities = {Community::of(1, 1)};
  rule.actions.add_communities = {Community::of(3, 3)};
  policy.add_rule(rule);
  PathAttributes attrs = base_attrs();
  attrs.communities.add(Community::of(1, 1));
  attrs.communities.add(Community::of(2, 2));
  EXPECT_TRUE(policy.apply(p(), attrs, Asn(65000)));
  EXPECT_EQ(attrs.communities.to_string(), "2:2 3:3");
}

}  // namespace
}  // namespace bgpcc
