// Router behavior tests: attribute handling, iBGP/eBGP rules, duplicate
// generation/suppression — driven through small simulated networks.
#include <gtest/gtest.h>

#include "netbase/error.h"
#include "sim/network.h"

namespace bgpcc {
namespace {

using sim::Network;
using sim::SessionOptions;

Prefix p() { return Prefix::from_string("203.0.113.0/24"); }

TEST(Router, EbgpPropagationSetsMandatoryAttributes) {
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B", Asn(200), VendorProfile::cisco_ios());
  net.add_collector("C", Asn(65000));
  net.add_session("A", "B");
  net.add_session("B", "C");
  net.start();
  net.scheduler().at(net.now() + Duration::seconds(1),
                     [&] { a.originate(p(), net.now()); });
  net.run();

  const auto& messages = net.collector("C").messages();
  ASSERT_EQ(messages.size(), 1u);
  const UpdateMessage& update = messages[0].update;
  ASSERT_TRUE(update.attrs.has_value());
  // B prepended itself after A: path "200 100".
  EXPECT_EQ(update.attrs->as_path.to_string(), "200 100");
  // Next hop rewritten to B's address.
  EXPECT_EQ(update.attrs->next_hop, net.router("B").address());
  // LOCAL_PREF must not cross the eBGP boundary.
  EXPECT_FALSE(update.attrs->local_pref.has_value());
}

TEST(Router, MedNotPropagatedToThirdAs) {
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B", Asn(200), VendorProfile::cisco_ios());
  net.add_collector("C", Asn(65000));
  net.add_session("A", "B");
  net.add_session("B", "C");
  net.start();
  net.scheduler().at(net.now() + Duration::seconds(1), [&] {
    PathAttributes base;
    base.med = 50;
    a.originate(p(), net.now(), std::move(base));
  });
  net.run();

  // A->B carries the MED (A originated it); B->C must not.
  const auto& messages = net.collector("C").messages();
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_FALSE(messages[0].update.attrs->med.has_value());
  const Route* in_b = net.router("B").loc_rib().find(p());
  ASSERT_NE(in_b, nullptr);
  EXPECT_EQ(in_b->attrs.med, 50u);
}

TEST(Router, CommunitiesAreTransitiveAcrossAses) {
  // The heart of the paper: communities survive ASes that know nothing
  // about them.
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B", Asn(200), VendorProfile::cisco_ios());
  net.add_router("D", Asn(300), VendorProfile::cisco_ios());
  net.add_collector("C", Asn(65000));
  net.add_session("A", "B");
  net.add_session("B", "D");
  net.add_session("D", "C");
  net.start();
  net.scheduler().at(net.now() + Duration::seconds(1), [&] {
    PathAttributes base;
    base.communities.add(Community::of(100, 7));
    a.originate(p(), net.now(), std::move(base));
  });
  net.run();

  const auto& messages = net.collector("C").messages();
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_TRUE(
      messages[0].update.attrs->communities.contains(Community::of(100, 7)));
}

TEST(Router, EbgpLoopRejected) {
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B", Asn(200), VendorProfile::cisco_ios());
  net.add_session("A", "B");
  net.start();
  net.scheduler().at(net.now() + Duration::seconds(1), [&] {
    PathAttributes base;
    a.originate(p(), net.now(), std::move(base));
  });
  net.run();
  // B received the route; now simulate a loop by injecting an update whose
  // path already contains B's ASN.
  UpdateMessage poison;
  poison.announced = {Prefix::from_string("198.51.100.0/24")};
  PathAttributes attrs;
  attrs.as_path = AsPath::sequence({100, 200, 300});
  attrs.next_hop = IpAddress::from_string("10.0.0.1");
  poison.attrs = attrs;
  Router& b = net.router("B");
  b.handle_update(1, poison, net.now());
  EXPECT_EQ(b.stats().loop_rejected, 1u);
  EXPECT_EQ(b.loc_rib().find(Prefix::from_string("198.51.100.0/24")),
            nullptr);
}

TEST(Router, NoExportStopsAtEbgpBoundary) {
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B", Asn(200), VendorProfile::cisco_ios());
  net.add_collector("C", Asn(65000));
  net.add_session("A", "B");
  net.add_session("B", "C");
  net.start();
  net.scheduler().at(net.now() + Duration::seconds(1), [&] {
    PathAttributes base;
    base.communities.add(Community::no_export());
    a.originate(p(), net.now(), std::move(base));
  });
  net.run();
  // B holds the route but must not export it to the collector (eBGP).
  EXPECT_NE(net.router("B").loc_rib().find(p()), nullptr);
  EXPECT_TRUE(net.collector("C").messages().empty());
}

TEST(Router, NoAdvertiseStopsEverywhere) {
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B", Asn(200), VendorProfile::cisco_ios());
  net.add_router("B2", Asn(200), VendorProfile::cisco_ios());
  net.add_session("A", "B");
  net.add_session("B", "B2");
  net.start();
  net.scheduler().at(net.now() + Duration::seconds(1), [&] {
    PathAttributes base;
    base.communities.add(Community::no_advertise());
    a.originate(p(), net.now(), std::move(base));
  });
  net.run();
  EXPECT_NE(net.router("B").loc_rib().find(p()), nullptr);
  // Not even to the iBGP neighbor.
  EXPECT_EQ(net.router("B2").loc_rib().find(p()), nullptr);
}

TEST(Router, IbgpRoutesNotReflected) {
  // A -- B1 == B2 == B3 chain (== is iBGP, full mesh absent on purpose):
  // B3 must not learn the route through B2 (no reflection).
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B1", Asn(200), VendorProfile::cisco_ios());
  net.add_router("B2", Asn(200), VendorProfile::cisco_ios());
  net.add_router("B3", Asn(200), VendorProfile::cisco_ios());
  net.add_session("A", "B1");
  net.add_session("B1", "B2");
  net.add_session("B2", "B3");
  net.start();
  net.scheduler().at(net.now() + Duration::seconds(1),
                     [&] { a.originate(p(), net.now()); });
  net.run();
  EXPECT_NE(net.router("B2").loc_rib().find(p()), nullptr);
  EXPECT_EQ(net.router("B3").loc_rib().find(p()), nullptr);
}

TEST(Router, IbgpKeepsLocalPrefAndPath) {
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B1", Asn(200), VendorProfile::cisco_ios());
  net.add_router("B2", Asn(200), VendorProfile::cisco_ios());
  SessionOptions import_pref;
  import_pref.b_import = [] {
    Policy policy;
    PolicyRule rule;
    rule.actions.set_local_pref = 250;
    policy.add_rule(rule);
    return policy;
  }();
  net.add_session("A", "B1", import_pref);
  net.add_session("B1", "B2");
  net.start();
  net.scheduler().at(net.now() + Duration::seconds(1),
                     [&] { a.originate(p(), net.now()); });
  net.run();
  const Route* r = net.router("B2").loc_rib().find(p());
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->attrs.local_pref, 250u);          // preserved over iBGP
  EXPECT_EQ(r->attrs.as_path.to_string(), "100");  // no self-prepend
}

TEST(Router, WithdrawPropagates) {
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B", Asn(200), VendorProfile::cisco_ios());
  net.add_collector("C", Asn(65000));
  net.add_session("A", "B");
  net.add_session("B", "C");
  net.start();
  net.scheduler().at(net.now() + Duration::seconds(1),
                     [&] { a.originate(p(), net.now()); });
  net.scheduler().at(net.now() + Duration::seconds(5),
                     [&] { a.withdraw_origin(p(), net.now()); });
  net.run();
  const auto& messages = net.collector("C").messages();
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_FALSE(messages[0].update.announced.empty());
  EXPECT_TRUE(messages[1].update.is_withdraw_only());
  EXPECT_EQ(net.router("B").loc_rib().find(p()), nullptr);
}

TEST(Router, WithdrawNotSentIfNeverAdvertised) {
  // B denies the route toward C; the origin withdrawal must not produce a
  // spurious withdraw on the C session.
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B", Asn(200), VendorProfile::cisco_ios());
  net.add_collector("C", Asn(65000));
  net.add_session("A", "B");
  SessionOptions deny;
  deny.a_export = Policy::deny_all();
  net.add_session("B", "C", deny);
  net.start();
  net.scheduler().at(net.now() + Duration::seconds(1),
                     [&] { a.originate(p(), net.now()); });
  net.scheduler().at(net.now() + Duration::seconds(5),
                     [&] { a.withdraw_origin(p(), net.now()); });
  net.run();
  EXPECT_TRUE(net.collector("C").messages().empty());
}

TEST(Router, SessionDownPurgesAndSessionUpRefreshes) {
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B", Asn(200), VendorProfile::cisco_ios());
  net.add_collector("C", Asn(65000));
  std::uint32_t ab = net.add_session("A", "B");
  net.add_session("B", "C");
  net.start();
  net.scheduler().at(net.now() + Duration::seconds(1),
                     [&] { a.originate(p(), net.now()); });
  net.run();
  ASSERT_EQ(net.collector("C").messages().size(), 1u);

  net.schedule_session_down(ab, net.now() + Duration::seconds(1));
  net.run();
  EXPECT_EQ(net.router("B").loc_rib().find(p()), nullptr);
  ASSERT_EQ(net.collector("C").messages().size(), 2u);
  EXPECT_TRUE(net.collector("C").messages()[1].update.is_withdraw_only());

  net.schedule_session_up(ab, net.now() + Duration::seconds(1));
  net.run();
  EXPECT_NE(net.router("B").loc_rib().find(p()), nullptr);
  ASSERT_EQ(net.collector("C").messages().size(), 3u);
  EXPECT_FALSE(net.collector("C").messages()[2].update.announced.empty());
}

TEST(Router, DuplicateReceivedUpdatesAreAbsorbed) {
  Network net;
  net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B", Asn(200), VendorProfile::cisco_ios());
  net.add_session("A", "B");
  net.start();
  net.run();
  UpdateMessage update;
  update.announced = {p()};
  PathAttributes attrs;
  attrs.as_path = AsPath::sequence({100});
  attrs.next_hop = IpAddress::from_string("10.0.0.1");
  update.attrs = attrs;
  Router& b = net.router("B");
  b.handle_update(1, update, net.now());
  b.handle_update(1, update, net.now());
  EXPECT_EQ(b.stats().duplicate_updates_received, 1u);
}

TEST(Router, OriginatedRouteWinsOverLearned) {
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  Router& b = net.add_router("B", Asn(200), VendorProfile::cisco_ios());
  net.add_session("A", "B");
  net.start();
  net.scheduler().at(net.now() + Duration::seconds(1), [&] {
    a.originate(p(), net.now());
    b.originate(p(), net.now());
  });
  net.run();
  const Route* in_b = b.loc_rib().find(p());
  ASSERT_NE(in_b, nullptr);
  EXPECT_EQ(in_b->source.neighbor_id, 0u);  // local, not the learned one
}

TEST(Router, OriginateRejectsNonEmptyPath) {
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  PathAttributes base;
  base.as_path = AsPath::sequence({1});
  EXPECT_THROW(a.originate(p(), net.now(), std::move(base)), ConfigError);
}

TEST(Router, MraiBatchesUpdates) {
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B", Asn(200), VendorProfile::cisco_ios());
  net.add_collector("C", Asn(65000));
  net.add_session("A", "B");
  SessionOptions mrai;
  mrai.a_mrai = Duration::seconds(30);  // B is endpoint a on this session
  net.add_session("B", "C", mrai);
  net.start();
  // Three quick attribute changes at the origin within the MRAI window.
  for (int i = 1; i <= 3; ++i) {
    net.scheduler().at(net.now() + Duration::seconds(i), [&a, &net, i] {
      PathAttributes base;
      base.communities.add(
          Community::of(100, static_cast<std::uint16_t>(i)));
      a.originate(p(), net.now(), std::move(base));
    });
  }
  net.run();
  // Without MRAI there would be 3 messages; batching collapses the burst.
  const auto& messages = net.collector("C").messages();
  ASSERT_EQ(messages.size(), 2u);  // first immediate, then one batched
  EXPECT_TRUE(
      messages[1].update.attrs->communities.contains(Community::of(100, 3)));
}

// Vendor duplicate behavior sweep: an attribute-identical re-advertisement
// is emitted by cisco/bird and suppressed by junos/ideal.
struct VendorCase {
  const char* name;
  bool expect_duplicate;
};

class VendorDuplicateSweep : public ::testing::TestWithParam<VendorCase> {};

TEST_P(VendorDuplicateSweep, EgressCleaningDuplicate) {
  VendorProfile vendor = GetParam().name == std::string("junos")
                             ? VendorProfile::junos()
                         : GetParam().name == std::string("bird")
                             ? VendorProfile::bird()
                         : GetParam().name == std::string("ideal")
                             ? VendorProfile::ideal()
                             : VendorProfile::cisco_ios();
  Network net;
  Router& a = net.add_router("A", Asn(100), VendorProfile::cisco_ios());
  net.add_router("B", Asn(200), vendor);
  net.add_collector("C", Asn(65000));
  net.add_session("A", "B");
  SessionOptions clean;
  clean.a_export = Policy::clean_all();  // B cleans toward C
  net.add_session("B", "C", clean);
  net.start();
  net.scheduler().at(net.now() + Duration::seconds(1), [&] {
    PathAttributes base;
    base.communities.add(Community::of(100, 1));
    a.originate(p(), net.now(), std::move(base));
  });
  // Community-only change upstream: post-cleaning output is identical.
  net.scheduler().at(net.now() + Duration::seconds(5), [&] {
    PathAttributes base;
    base.communities.add(Community::of(100, 2));
    a.originate(p(), net.now(), std::move(base));
  });
  net.run();
  std::size_t expected = GetParam().expect_duplicate ? 2u : 1u;
  EXPECT_EQ(net.collector("C").messages().size(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Vendors, VendorDuplicateSweep,
    ::testing::Values(VendorCase{"cisco", true}, VendorCase{"bird", true},
                      VendorCase{"junos", false}, VendorCase{"ideal", false}),
    [](const ::testing::TestParamInfo<VendorCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace bgpcc
