// Unit tests: MRT (RFC 6396) reader/writer.
#include <gtest/gtest.h>

#include <sstream>

#include "bgp/codec.h"
#include "mrt/mrt.h"
#include "netbase/error.h"

namespace bgpcc::mrt {
namespace {

Bgp4mpMessage sample_message() {
  Bgp4mpMessage m;
  m.peer_asn = Asn(20205);
  m.local_asn = Asn(65500);
  m.peer_ip = IpAddress::from_string("192.0.2.1");
  m.local_ip = IpAddress::from_string("192.0.2.2");
  m.bgp_message = encode_keepalive();
  return m;
}

TEST(Mrt, MessageRoundTripExtendedTime) {
  std::stringstream buffer;
  Writer writer(buffer);
  Timestamp when = Timestamp::from_unix_micros(1584230400123456);
  writer.write_message(when, sample_message());
  EXPECT_EQ(writer.records_written(), 1u);

  Reader reader(buffer);
  auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->timestamp, when);  // microseconds preserved
  bool four_byte = false;
  Bgp4mpMessage decoded = Reader::parse_message(*record, &four_byte);
  EXPECT_TRUE(four_byte);
  EXPECT_EQ(decoded.peer_asn, Asn(20205));
  EXPECT_EQ(decoded.peer_ip.to_string(), "192.0.2.1");
  EXPECT_EQ(decoded.bgp_message, encode_keepalive());
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Mrt, PlainBgp4mpTruncatesToSeconds) {
  std::stringstream buffer;
  Writer writer(buffer);
  Timestamp when = Timestamp::from_unix_micros(1584230400123456);
  writer.write_message(when, sample_message(), /*extended_time=*/false);

  Reader reader(buffer);
  auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  // Second-granularity collectors lose sub-second precision — the paper's
  // §4 cleaning step exists because of this.
  EXPECT_EQ(record->timestamp, Timestamp::from_unix_seconds(1584230400));
}

TEST(Mrt, StateChangeRoundTrip) {
  std::stringstream buffer;
  Writer writer(buffer);
  Bgp4mpStateChange change;
  change.peer_asn = Asn(20205);
  change.local_asn = Asn(65500);
  change.peer_ip = IpAddress::from_string("192.0.2.1");
  change.local_ip = IpAddress::from_string("192.0.2.2");
  change.old_state = FsmState::kEstablished;
  change.new_state = FsmState::kIdle;
  writer.write_state_change(Timestamp::from_unix_seconds(100), change);

  Reader reader(buffer);
  auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  Bgp4mpStateChange decoded = Reader::parse_state_change(*record);
  EXPECT_EQ(decoded.old_state, FsmState::kEstablished);
  EXPECT_EQ(decoded.new_state, FsmState::kIdle);
  EXPECT_EQ(decoded.peer_asn, change.peer_asn);
}

TEST(Mrt, Ipv6Endpoints) {
  std::stringstream buffer;
  Writer writer(buffer);
  Bgp4mpMessage m = sample_message();
  m.peer_ip = IpAddress::from_string("2001:db8::1");
  m.local_ip = IpAddress::from_string("2001:db8::2");
  writer.write_message(Timestamp::from_unix_seconds(5), m);

  Reader reader(buffer);
  auto record = reader.next();
  ASSERT_TRUE(record.has_value());
  Bgp4mpMessage decoded = Reader::parse_message(*record);
  EXPECT_EQ(decoded.peer_ip.to_string(), "2001:db8::1");
}

TEST(Mrt, MixedFamilyEndpointsRejected) {
  std::stringstream buffer;
  Writer writer(buffer);
  Bgp4mpMessage m = sample_message();
  m.local_ip = IpAddress::from_string("2001:db8::2");
  EXPECT_THROW(
      writer.write_message(Timestamp::from_unix_seconds(5), m),
      ConfigError);
}

TEST(Mrt, MultipleRecordsInOrder) {
  std::stringstream buffer;
  Writer writer(buffer);
  for (int i = 0; i < 5; ++i) {
    writer.write_message(Timestamp::from_unix_seconds(i), sample_message());
  }
  Reader reader(buffer);
  for (int i = 0; i < 5; ++i) {
    auto record = reader.next();
    ASSERT_TRUE(record.has_value()) << i;
    EXPECT_EQ(record->timestamp.unix_seconds(), i);
  }
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Mrt, TruncatedHeaderThrows) {
  std::stringstream buffer;
  buffer.write("\x01\x02\x03", 3);
  Reader reader(buffer);
  EXPECT_THROW((void)reader.next(), DecodeError);
}

TEST(Mrt, TruncatedBodyThrows) {
  std::stringstream buffer;
  Writer writer(buffer);
  writer.write_message(Timestamp::from_unix_seconds(1), sample_message());
  std::string data = buffer.str();
  std::stringstream cut;
  cut.write(data.data(), static_cast<std::streamsize>(data.size() - 4));
  Reader reader(cut);
  EXPECT_THROW((void)reader.next(), DecodeError);
}

TEST(Mrt, ParseMessageWrongSubtypeThrows) {
  Record record;
  record.type = static_cast<std::uint16_t>(RecordType::kBgp4mp);
  record.subtype = static_cast<std::uint16_t>(Bgp4mpSubtype::kStateChangeAs4);
  EXPECT_THROW((void)Reader::parse_message(record), DecodeError);
  record.type = 13;  // TABLE_DUMP_V2: not BGP4MP
  EXPECT_THROW((void)Reader::parse_message(record), DecodeError);
}

}  // namespace
}  // namespace bgpcc::mrt
