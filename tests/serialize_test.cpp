// The wire codec's correctness battery (analytics/serialize.h):
//
//  - primitives: big-endian byte layouts pinned, roundtrips exact;
//  - roundtrip: save_state → load_state reproduces every shipped pass's
//    report exactly;
//  - differential: per-collector partial runs, serialized and fanned
//    back in, report identically to the monolithic run — the
//    associativity proof for the on-disk path;
//  - robustness: truncation at every prefix length, bad magic, wrong
//    version, cross-driver tag mismatches, bare-cursor misuse, and a
//    corrupt length prefix all throw DecodeError/ConfigError — never UB
//    (the ASan/UBSan CI jobs run this suite).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analytics/driver.h"
#include "analytics/passes.h"
#include "analytics/serialize.h"
#include "archive_gen.h"
#include "core/cleaning.h"
#include "core/ingest.h"
#include "core/registry.h"
#include "core/stream.h"
#include "netbase/error.h"

namespace bgpcc::analytics {
namespace {

using core::CleaningOptions;
using core::IngestOptions;
using core::IngestResult;
using core::Registry;
using core::StreamingIngestor;
using core::archgen::allocated_registry;
using core::archgen::ArchiveGenerator;

// ---------------------------------------------------------------------------
// Primitives.

TEST(SerializePrimitives, BigEndianLayoutsArePinned) {
  std::ostringstream out;
  serialize::Writer w(out);
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ULL);
  std::string bytes = out.str();
  ASSERT_EQ(bytes.size(), 15u);
  const unsigned char expected[] = {0xAB, 0x12, 0x34, 0xDE, 0xAD,
                                    0xBE, 0xEF, 0x01, 0x02, 0x03,
                                    0x04, 0x05, 0x06, 0x07, 0x08};
  for (std::size_t i = 0; i < sizeof(expected); ++i) {
    EXPECT_EQ(static_cast<unsigned char>(bytes[i]), expected[i]) << i;
  }
  EXPECT_EQ(w.bytes_written(), 15u);
}

TEST(SerializePrimitives, RoundtripAllTypes) {
  std::ostringstream out;
  serialize::Writer w(out);
  w.u8(7);
  w.u16(65535);
  w.u32(0x80000001u);
  w.u64(~0ULL);
  w.i64(-123456789012345LL);
  w.boolean(true);
  w.boolean(false);
  w.str("collector.example");
  w.str("");

  std::istringstream in(out.str());
  serialize::Reader r(in);
  EXPECT_EQ(r.u8(), 7u);
  EXPECT_EQ(r.u16(), 65535u);
  EXPECT_EQ(r.u32(), 0x80000001u);
  EXPECT_EQ(r.u64(), ~0ULL);
  EXPECT_EQ(r.i64(), -123456789012345LL);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "collector.example");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.bytes_read(), w.bytes_written());
}

TEST(SerializePrimitives, TruncatedReadThrows) {
  std::istringstream in(std::string("\x01\x02", 2));
  serialize::Reader r(in);
  EXPECT_THROW((void)r.u32(), DecodeError);
}

TEST(SerializePrimitives, OversizedStringLengthThrows) {
  std::ostringstream out;
  serialize::Writer w(out);
  w.u32(0x7FFFFFFF);  // a corrupt length prefix, not followed by data
  std::istringstream in(out.str());
  serialize::Reader r(in);
  EXPECT_THROW((void)r.str(), DecodeError);
}

TEST(SerializeHeader, BadMagicAndVersionThrow) {
  {
    std::istringstream in("NOPE....");
    serialize::Reader r(in);
    EXPECT_THROW((void)serialize::read_block_header(r), DecodeError);
  }
  {
    std::ostringstream out;
    serialize::Writer w(out);
    w.u32(serialize::kMagic);
    w.u16(serialize::kFormatVersion + 1);  // a future format
    w.u8(1);
    std::istringstream in(out.str());
    serialize::Reader r(in);
    EXPECT_THROW((void)serialize::read_block_header(r), DecodeError);
  }
  {
    std::ostringstream out;
    serialize::Writer w(out);
    w.u32(serialize::kMagic);
    w.u16(1);  // the retired v1 layout (no cursor shard count): rejected
    w.u8(1);
    std::istringstream in(out.str());
    serialize::Reader r(in);
    EXPECT_THROW((void)serialize::read_block_header(r), DecodeError);
  }
  {
    std::ostringstream out;
    serialize::Writer w(out);
    w.u32(serialize::kMagic);
    w.u16(serialize::kFormatVersion);
    w.u8(99);  // unknown block kind
    std::istringstream in(out.str());
    serialize::Reader r(in);
    EXPECT_THROW((void)serialize::read_block_header(r), DecodeError);
  }
}

// ---------------------------------------------------------------------------
// Full-driver fixtures.

/// All nine shipped passes, so every State codec is exercised.
struct Handles {
  PassHandle<ClassifierPass> types;
  PassHandle<PerSessionTypesPass> per_session;
  PassHandle<TomographyPass> tomography;
  PassHandle<CommunityStatsPass> communities;
  PassHandle<DuplicateBurstPass> duplicates;
  PassHandle<AnomalyPass> anomaly;
  PassHandle<RevealedPass> revealed;
  PassHandle<ExplorationPass> exploration;
  PassHandle<UsageClassificationPass> usage;
};

Handles add_all_passes(AnalysisDriver& driver) {
  return Handles{driver.add(ClassifierPass{}),
                 driver.add(PerSessionTypesPass{}),
                 driver.add(TomographyPass{}),
                 driver.add(CommunityStatsPass{}),
                 driver.add(DuplicateBurstPass{}),
                 driver.add(AnomalyPass{}),
                 driver.add(RevealedPass{}),
                 driver.add(ExplorationPass{}),
                 driver.add(UsageClassificationPass{})};
}

struct AllReports {
  ClassifierPass::Report types;
  PerSessionTypesPass::Report per_session;
  TomographyPass::Report tomography;
  CommunityStatsPass::Report communities;
  DuplicateBurstPass::Report duplicates;
  AnomalyPass::Report anomaly;
  RevealedPass::Report revealed;
  ExplorationPass::Report exploration;
  UsageClassificationPass::Report usage;

  friend bool operator==(const AllReports&, const AllReports&) = default;
};

AllReports collect(AnalysisDriver& driver, const Handles& handles) {
  return AllReports{driver.report(handles.types),
                    driver.report(handles.per_session),
                    driver.report(handles.tomography),
                    driver.report(handles.communities),
                    driver.report(handles.duplicates),
                    driver.report(handles.anomaly),
                    driver.report(handles.revealed),
                    driver.report(handles.exploration),
                    driver.report(handles.usage)};
}

/// Ingests `archives` (collector → archive bytes) inline through one
/// driver; returns the driver finalized via collect() when `reports` is
/// non-null, or serialized via save_state into `state` otherwise.
void run_archives(const std::vector<std::pair<std::string, std::string>>&
                      archives,
                  const CleaningOptions& cleaning, AllReports* reports,
                  std::string* state) {
  IngestOptions options;
  options.chunk_records = 32;
  options.cleaning = &cleaning;

  AnalysisDriver driver;
  Handles handles = add_all_passes(driver);
  driver.attach(options);
  StreamingIngestor engine(options);
  std::vector<std::unique_ptr<std::istringstream>> inputs;
  for (const auto& [collector, bytes] : archives) {
    inputs.push_back(std::make_unique<std::istringstream>(bytes));
    engine.add_stream(collector, *inputs.back());
  }
  IngestResult result = engine.finish();
  ASSERT_GT(result.stats.records, 0u);
  if (reports != nullptr) *reports = collect(driver, handles);
  if (state != nullptr) {
    std::ostringstream out;
    driver.save_state(out);
    *state = out.str();
  }
}

// ---------------------------------------------------------------------------
// Roundtrip: save_state → load_state preserves every report.

TEST(SerializeRoundtrip, AllPassesSurviveSaveAndLoad) {
  ArchiveGenerator gen(20260807);
  std::string archive = gen.generate(900);
  Registry registry = allocated_registry();
  CleaningOptions cleaning;
  cleaning.registry = &registry;

  AllReports expected;
  std::string state;
  run_archives({{"rrc00", archive}}, cleaning, &expected, &state);
  ASSERT_FALSE(state.empty());
  ASSERT_GT(expected.types.counts.total(), 0u);
  ASSERT_GT(expected.communities.unique_communities, 0u);
  ASSERT_FALSE(expected.per_session.empty());

  AnalysisDriver loaded;
  Handles handles = add_all_passes(loaded);
  std::istringstream in(state);
  loaded.load_state(in);
  EXPECT_EQ(collect(loaded, handles), expected);
}

TEST(SerializeRoundtrip, SaveIsDeterministic) {
  ArchiveGenerator gen(20260807);
  std::string archive = gen.generate(400);
  Registry registry = allocated_registry();
  CleaningOptions cleaning;
  cleaning.registry = &registry;

  std::string first;
  std::string second;
  run_archives({{"rrc00", archive}}, cleaning, nullptr, &first);
  run_archives({{"rrc00", archive}}, cleaning, nullptr, &second);
  // unordered containers are serialized sorted, so two identical runs
  // produce identical bytes — the property bgpcc-merge's byte-compare
  // tests (and any content-addressed artifact store) rely on.
  EXPECT_EQ(first, second);
}

TEST(SerializeRoundtrip, StateTagsAreReadable) {
  ArchiveGenerator gen(1);
  std::string archive = gen.generate(100);
  Registry registry = allocated_registry();
  CleaningOptions cleaning;
  cleaning.registry = &registry;
  std::string state;
  run_archives({{"rrc00", archive}}, cleaning, nullptr, &state);

  std::istringstream in(state);
  std::vector<serialize::PassTag> tags = serialize::read_state_tags(in);
  ASSERT_EQ(tags.size(), 9u);
  EXPECT_EQ(tags.front(), serialize::PassTag::kClassifier);
  EXPECT_EQ(tags.back(), serialize::PassTag::kUsageClassification);
}

// ---------------------------------------------------------------------------
// Differential: per-collector partial runs merge to the monolithic run.

TEST(SerializeDifferential, PerCollectorPartialsEqualMonolithicRun) {
  // Distinct collectors → disjoint sessions, the precondition for
  // combining independently ingested partials.
  ArchiveGenerator gen_a(101);
  ArchiveGenerator gen_b(202);
  ArchiveGenerator gen_c(303);
  std::string archive_a = gen_a.generate(600);
  std::string archive_b = gen_b.generate(500);
  std::string archive_c = gen_c.generate(400);
  Registry registry = allocated_registry();
  CleaningOptions cleaning;
  cleaning.registry = &registry;

  AllReports monolithic;
  run_archives({{"rrc00", archive_a}, {"rrc01", archive_b},
                {"rrc03", archive_c}},
               cleaning, &monolithic, nullptr);
  ASSERT_GT(monolithic.types.counts.total(), 0u);
  ASSERT_FALSE(monolithic.tomography.empty());
  ASSERT_GT(monolithic.duplicates.nn, 0u);
  ASSERT_GT(monolithic.revealed.total_unique, 0u);
  ASSERT_FALSE(monolithic.usage.empty());

  std::string state_a;
  std::string state_b;
  std::string state_c;
  run_archives({{"rrc00", archive_a}}, cleaning, nullptr, &state_a);
  run_archives({{"rrc01", archive_b}}, cleaning, nullptr, &state_b);
  run_archives({{"rrc03", archive_c}}, cleaning, nullptr, &state_c);

  // Fan-in order must not matter (associativity + commutativity of the
  // evidence merges over disjoint sessions).
  for (const auto& order :
       std::vector<std::vector<const std::string*>>{
           {&state_a, &state_b, &state_c},
           {&state_c, &state_a, &state_b}}) {
    AnalysisDriver merged;
    Handles handles = add_all_passes(merged);
    for (const std::string* state : order) {
      std::istringstream in(*state);
      merged.load_state(in);
    }
    EXPECT_EQ(collect(merged, handles), monolithic);
  }
}

// ---------------------------------------------------------------------------
// Robustness.

std::string small_state() {
  ArchiveGenerator gen(7);
  std::string archive = gen.generate(120);
  static Registry registry = allocated_registry();
  CleaningOptions cleaning;
  cleaning.registry = &registry;
  std::string state;
  run_archives({{"rrc00", archive}}, cleaning, nullptr, &state);
  return state;
}

TEST(SerializeRobustness, TruncationAtEveryPrefixThrows) {
  std::string state = small_state();
  ASSERT_GT(state.size(), 16u);
  // Every strict prefix must fail loudly. Step through short prefixes
  // byte by byte (header + tag list) and sample the long tail.
  for (std::size_t cut = 0; cut < state.size();
       cut += (cut < 64 ? 1 : 97)) {
    AnalysisDriver driver;
    (void)add_all_passes(driver);
    std::istringstream in(state.substr(0, cut));
    EXPECT_THROW(driver.load_state(in), DecodeError) << "cut=" << cut;
  }
}

TEST(SerializeRobustness, BitFlipInHeaderThrows) {
  std::string state = small_state();
  for (std::size_t byte : {0u, 1u, 4u, 5u}) {  // magic, version
    std::string corrupt = state;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x40);
    AnalysisDriver driver;
    (void)add_all_passes(driver);
    std::istringstream in(corrupt);
    EXPECT_THROW(driver.load_state(in), DecodeError) << "byte=" << byte;
  }
}

TEST(SerializeRobustness, CrossDriverTagMismatchThrows) {
  std::string state = small_state();  // nine passes, tags 1..9

  {
    // Fewer passes than the file holds.
    AnalysisDriver driver;
    (void)driver.add(ClassifierPass{});
    std::istringstream in(state);
    EXPECT_THROW(driver.load_state(in), ConfigError);
  }
  {
    // Same count, different order → tag mismatch at slot 0.
    AnalysisDriver driver;
    (void)driver.add(UsageClassificationPass{});
    (void)driver.add(PerSessionTypesPass{});
    (void)driver.add(TomographyPass{});
    (void)driver.add(CommunityStatsPass{});
    (void)driver.add(DuplicateBurstPass{});
    (void)driver.add(AnomalyPass{});
    (void)driver.add(RevealedPass{});
    (void)driver.add(ExplorationPass{});
    (void)driver.add(ClassifierPass{});
    std::istringstream in(state);
    EXPECT_THROW(driver.load_state(in), ConfigError);
  }
}

TEST(SerializeRobustness, MismatchedHistogramBucketsThrow) {
  ArchiveGenerator gen(11);
  std::string archive = gen.generate(150);
  Registry registry = allocated_registry();
  CleaningOptions cleaning;
  cleaning.registry = &registry;

  IngestOptions options;
  options.cleaning = &cleaning;
  AnalysisDriver writer_driver;
  auto handle = writer_driver.add(CommunityStatsPass{/*histogram_buckets=*/8});
  writer_driver.attach(options);
  StreamingIngestor engine(options);
  std::istringstream in(archive);
  engine.add_stream("rrc00", in);
  (void)engine.finish();
  (void)handle;
  std::ostringstream out;
  writer_driver.save_state(out);

  AnalysisDriver reader_driver;
  (void)reader_driver.add(CommunityStatsPass{/*histogram_buckets=*/17});
  std::istringstream state_in(out.str());
  // Same wire tag, different configuration: merging the histograms would
  // index out of bounds, so load refuses.
  EXPECT_THROW(reader_driver.load_state(state_in), ConfigError);
}

TEST(SerializeRobustness, BareIngestCursorIsRejected) {
  core::IngestCheckpoint cursor;
  cursor.chunk_records = 4096;
  cursor.shards = core::kIngestShards;
  cursor.carry.resize(core::kIngestShards);
  std::ostringstream out;
  serialize::Writer w(out);
  serialize::write_ingest_checkpoint(w, cursor);

  AnalysisDriver driver;
  (void)add_all_passes(driver);
  std::istringstream in(out.str());
  EXPECT_THROW(driver.load_state(in), DecodeError);

  std::istringstream tags_in(out.str());
  EXPECT_THROW((void)serialize::read_state_tags(tags_in), DecodeError);
}

TEST(SerializeRobustness, IngestCheckpointRoundtrips) {
  core::IngestCheckpoint cursor;
  cursor.chunk_records = 1024;
  cursor.collectors = {"rrc00", "route-views2"};
  cursor.next_source = 2;
  cursor.input_open = true;
  cursor.current_file = 1;
  cursor.chunk_index = 42;
  cursor.shards = core::kIngestShards;
  cursor.carry.resize(core::kIngestShards);
  core::SessionKey session{"rrc00", Asn(65001), IpAddress::v4(10, 0, 0, 1)};
  cursor.carry[session.hash() % core::kIngestShards][session] = {1600000000,
                                                                 3};
  cursor.cleaning.dropped_unallocated_asn = 7;
  cursor.stats.raw_records = 99;

  std::ostringstream out;
  serialize::Writer w(out);
  serialize::write_ingest_checkpoint(w, cursor);
  std::istringstream in(out.str());
  serialize::Reader r(in);
  core::IngestCheckpoint back = serialize::read_ingest_checkpoint(r);

  EXPECT_EQ(back.chunk_records, cursor.chunk_records);
  EXPECT_EQ(back.collectors, cursor.collectors);
  EXPECT_EQ(back.next_source, cursor.next_source);
  EXPECT_EQ(back.input_open, cursor.input_open);
  EXPECT_EQ(back.current_file, cursor.current_file);
  EXPECT_EQ(back.chunk_index, cursor.chunk_index);
  EXPECT_EQ(back.shards, core::kIngestShards);
  ASSERT_EQ(back.carry.size(), cursor.carry.size());
  const auto& shard = back.carry[session.hash() % core::kIngestShards];
  ASSERT_EQ(shard.size(), 1u);
  EXPECT_EQ(shard.at(session), (std::pair<std::int64_t, int>{1600000000, 3}));
  EXPECT_EQ(back.cleaning.dropped_unallocated_asn, 7u);
  EXPECT_EQ(back.stats.raw_records, 99u);
}

TEST(SerializeRobustness, IngestCursorShardFieldIsValidated) {
  // shards = 0 (a hand-built legacy struct): the writer derives the
  // count from the carry's shape, and the reader hands it back.
  core::IngestCheckpoint cursor;
  cursor.chunk_records = 1024;
  cursor.carry.resize(8);
  {
    std::ostringstream out;
    serialize::Writer w(out);
    serialize::write_ingest_checkpoint(w, cursor);
    std::istringstream in(out.str());
    serialize::Reader r(in);
    EXPECT_EQ(serialize::read_ingest_checkpoint(r).shards, 8u);
  }

  // A shard count that disagrees with the carry is corruption, not a
  // judgement call: the reader must refuse.
  cursor.shards = 4;  // the carry still holds 8 entries
  std::ostringstream bad;
  serialize::Writer w(bad);
  serialize::write_ingest_checkpoint(w, cursor);
  std::istringstream in(bad.str());
  serialize::Reader r(in);
  EXPECT_THROW((void)serialize::read_ingest_checkpoint(r), DecodeError);
}

/// A pass that deliberately does NOT model SerializablePass.
struct OpaquePass {
  struct State {
    std::uint64_t seen = 0;
    void observe(const core::UpdateRecord&) { ++seen; }
    void merge(State&& other) { seen += other.seen; }
    [[nodiscard]] std::uint64_t report() const { return seen; }
  };
  [[nodiscard]] State make_state() const { return {}; }
};
static_assert(Pass<OpaquePass>);
static_assert(!SerializablePass<OpaquePass>);
static_assert(SerializablePass<ClassifierPass>);
static_assert(SerializablePass<UsageClassificationPass>);

TEST(SerializeRobustness, NonSerializablePassThrowsConfigError) {
  AnalysisDriver driver;
  (void)driver.add(OpaquePass{});
  std::ostringstream out;
  EXPECT_THROW(driver.save_state(out), ConfigError);

  AnalysisDriver checkpointer;
  (void)checkpointer.add(OpaquePass{});
  std::ostringstream cp;
  EXPECT_THROW(checkpointer.checkpoint(cp), ConfigError);
}

}  // namespace
}  // namespace bgpcc::analytics
