// Unit + property tests: RFC 4271 wire codec.
#include <gtest/gtest.h>

#include "bgp/codec.h"

#include "netbase/bytes.h"
#include "netbase/error.h"

namespace bgpcc {
namespace {

UpdateMessage sample_update() {
  UpdateMessage update;
  update.announced.push_back(Prefix::from_string("203.0.113.0/24"));
  PathAttributes attrs;
  attrs.as_path = AsPath::sequence({100, 200, 300});
  attrs.next_hop = IpAddress::from_string("10.0.0.1");
  attrs.origin = Origin::kIgp;
  update.attrs = std::move(attrs);
  return update;
}

TEST(Codec, MinimalUpdateRoundTrip) {
  UpdateMessage update = sample_update();
  auto wire = encode_update(update);
  EXPECT_EQ(peek_type(wire), MessageType::kUpdate);
  EXPECT_EQ(peek_length(wire), wire.size());
  UpdateMessage decoded = decode_update(wire);
  EXPECT_EQ(decoded, update);
}

TEST(Codec, WithdrawOnlyRoundTrip) {
  UpdateMessage update;
  update.withdrawn.push_back(Prefix::from_string("203.0.113.0/24"));
  update.withdrawn.push_back(Prefix::from_string("10.0.0.0/8"));
  auto wire = encode_update(update);
  UpdateMessage decoded = decode_update(wire);
  EXPECT_EQ(decoded, update);
  EXPECT_TRUE(decoded.is_withdraw_only());
}

TEST(Codec, AllAttributesRoundTrip) {
  UpdateMessage update = sample_update();
  update.attrs->origin = Origin::kIncomplete;
  update.attrs->med = 50;
  update.attrs->local_pref = 200;
  update.attrs->atomic_aggregate = true;
  update.attrs->aggregator =
      Aggregator{Asn(65000), IpAddress::from_string("1.2.3.4")};
  update.attrs->communities.add(Community::of(3356, 2001));
  update.attrs->communities.add(Community::no_export());
  update.attrs->large_communities.add(LargeCommunity{3356, 1, 2});
  auto wire = encode_update(update);
  EXPECT_EQ(decode_update(wire), update);
}

TEST(Codec, AsSetRoundTrip) {
  UpdateMessage update = sample_update();
  update.attrs->as_path = AsPath::from_string("100 {200 300} 400");
  auto wire = encode_update(update);
  EXPECT_EQ(decode_update(wire).attrs->as_path, update.attrs->as_path);
}

TEST(Codec, FourByteAsnRoundTrip) {
  UpdateMessage update = sample_update();
  update.attrs->as_path = AsPath::sequence({4200000001u, 200000, 12654});
  auto wire = encode_update(update);
  EXPECT_EQ(decode_update(wire).attrs->as_path, update.attrs->as_path);
}

TEST(Codec, TwoByteAsnMode) {
  CodecOptions legacy{.four_byte_asn = false};
  UpdateMessage update = sample_update();
  auto wire = encode_update(update, legacy);
  EXPECT_EQ(decode_update(wire, legacy), update);
  // A 4-byte ASN degrades to AS_TRANS in 2-byte mode.
  update.attrs->as_path = AsPath::sequence({4200000001u});
  auto wire2 = encode_update(update, legacy);
  EXPECT_EQ(decode_update(wire2, legacy).attrs->as_path.first_as(),
            Asn(23456));
}

TEST(Codec, Ipv6MpReachRoundTrip) {
  UpdateMessage update;
  update.announced.push_back(Prefix::from_string("2001:db8::/32"));
  PathAttributes attrs;
  attrs.as_path = AsPath::sequence({100, 200});
  attrs.next_hop = IpAddress::from_string("2001:db8::1");
  update.attrs = std::move(attrs);
  auto wire = encode_update(update);
  EXPECT_EQ(decode_update(wire), update);
}

TEST(Codec, Ipv6WithdrawRoundTrip) {
  UpdateMessage update;
  update.withdrawn.push_back(Prefix::from_string("2001:db8::/32"));
  auto wire = encode_update(update);
  EXPECT_EQ(decode_update(wire), update);
}

TEST(Codec, MixedFamilyUpdate) {
  UpdateMessage update;
  update.announced.push_back(Prefix::from_string("203.0.113.0/24"));
  update.announced.push_back(Prefix::from_string("2001:db8::/48"));
  PathAttributes attrs;
  attrs.as_path = AsPath::sequence({100});
  attrs.next_hop = IpAddress::from_string("10.0.0.1");
  update.attrs = std::move(attrs);
  auto wire = encode_update(update);
  UpdateMessage decoded = decode_update(wire);
  // Decoder yields v6 NLRI first (from MP_REACH) then v4; compare as sets.
  ASSERT_EQ(decoded.announced.size(), 2u);
  EXPECT_NE(std::find(decoded.announced.begin(), decoded.announced.end(),
                      update.announced[0]),
            decoded.announced.end());
  EXPECT_NE(std::find(decoded.announced.begin(), decoded.announced.end(),
                      update.announced[1]),
            decoded.announced.end());
}

TEST(Codec, UnknownTransitiveAttributePreserved) {
  UpdateMessage update = sample_update();
  RawAttribute raw;
  raw.flags = AttrFlags::kOptional | AttrFlags::kTransitive;
  raw.type = 99;
  raw.value = {1, 2, 3};
  update.attrs->add_unknown(raw);
  auto wire = encode_update(update);
  UpdateMessage decoded = decode_update(wire);
  ASSERT_EQ(decoded.attrs->unknown.size(), 1u);
  EXPECT_EQ(decoded.attrs->unknown[0], raw);
}

TEST(Codec, ExtendedLengthAttribute) {
  UpdateMessage update = sample_update();
  RawAttribute raw;
  raw.flags = AttrFlags::kOptional | AttrFlags::kTransitive;
  raw.type = 99;
  raw.value.assign(300, 0xab);  // forces the extended-length flag
  update.attrs->add_unknown(raw);
  auto wire = encode_update(update);
  UpdateMessage decoded = decode_update(wire);
  ASSERT_EQ(decoded.attrs->unknown.size(), 1u);
  // Flags gain the extended-length bit on the wire.
  EXPECT_EQ(decoded.attrs->unknown[0].value, raw.value);
}

TEST(Codec, AnnouncementWithoutAttrsRejected) {
  UpdateMessage update;
  update.announced.push_back(Prefix::from_string("10.0.0.0/8"));
  EXPECT_THROW((void)encode_update(update), ConfigError);
}

TEST(Codec, V4NlriWithV6NextHopRejected) {
  UpdateMessage update = sample_update();
  update.attrs->next_hop = IpAddress::from_string("2001:db8::1");
  EXPECT_THROW((void)encode_update(update), ConfigError);
}

TEST(Codec, OversizedMessageRejected) {
  UpdateMessage update = sample_update();
  for (int i = 0; i < 2000; ++i) {
    update.announced.push_back(
        Prefix(IpAddress::v4(0x0a000000u + static_cast<std::uint32_t>(i) * 256),
               24));
  }
  EXPECT_THROW((void)encode_update(update), DecodeError);
}

TEST(CodecMalformed, TruncatedHeader) {
  std::vector<std::uint8_t> data(10, 0xff);
  EXPECT_THROW((void)decode_update(data), DecodeError);
  EXPECT_THROW((void)peek_type(data), DecodeError);
  EXPECT_THROW((void)peek_length(data), DecodeError);
}

TEST(CodecMalformed, BadMarker) {
  auto wire = encode_update(sample_update());
  wire[3] = 0x00;
  EXPECT_THROW((void)decode_update(wire), DecodeError);
}

TEST(CodecMalformed, LengthMismatch) {
  auto wire = encode_update(sample_update());
  wire[16] = 0x00;
  wire[17] = 0x20;  // claim 32 bytes
  EXPECT_THROW((void)decode_update(wire), DecodeError);
}

TEST(CodecMalformed, EveryTruncationThrows) {
  // Property: any prefix of a valid message must throw, never crash.
  auto wire = encode_update(sample_update());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    std::vector<std::uint8_t> cut(wire.begin(),
                                  wire.begin() + static_cast<long>(len));
    EXPECT_THROW((void)decode_update(cut), DecodeError) << "len=" << len;
  }
}

TEST(CodecMalformed, DuplicateAttributeRejected) {
  // Hand-build an update with ORIGIN twice.
  ByteWriter w;
  for (int i = 0; i < 16; ++i) w.u8(0xff);
  auto len_at = w.placeholder_u16();
  w.u8(2);           // UPDATE
  w.u16(0);          // withdrawn length
  auto attrs_at = w.placeholder_u16();
  std::size_t before = w.size();
  for (int i = 0; i < 2; ++i) {
    w.u8(0x40);
    w.u8(1);  // ORIGIN
    w.u8(1);
    w.u8(0);
  }
  w.patch_u16(attrs_at, static_cast<std::uint16_t>(w.size() - before));
  w.patch_u16(len_at, static_cast<std::uint16_t>(w.size()));
  auto data = std::move(w).take();
  EXPECT_THROW((void)decode_update(data), DecodeError);
}

TEST(CodecMalformed, BadOriginValue) {
  auto wire = encode_update(sample_update());
  // ORIGIN is the first attribute: flags(0x40) type(1) len(1) value.
  // Locate it: after header(19) + withdrawn len(2) + attr len(2) = 23.
  ASSERT_EQ(wire[23], 0x40);
  ASSERT_EQ(wire[24], 1);
  wire[26] = 7;  // invalid origin
  EXPECT_THROW((void)decode_update(wire), DecodeError);
}

TEST(CodecMalformed, PrefixLengthOverflow) {
  auto wire = encode_update(sample_update());
  // NLRI is at the tail: length byte then 3 bytes of 203.0.113.
  wire[wire.size() - 4] = 64;  // /64 is invalid for IPv4
  EXPECT_THROW((void)decode_update(wire), DecodeError);
}

TEST(Codec, KeepaliveRoundTrip) {
  auto wire = encode_keepalive();
  EXPECT_EQ(wire.size(), kBgpHeaderSize);
  EXPECT_EQ(peek_type(wire), MessageType::kKeepalive);
}

TEST(Codec, OpenRoundTrip) {
  OpenMessage open;
  open.asn = Asn(3356);
  open.hold_time = 90;
  open.bgp_identifier = 0x0a000001;
  auto wire = encode_open(open);
  OpenMessage decoded = decode_open(wire);
  EXPECT_EQ(decoded, open);
}

TEST(Codec, OpenFourByteAsnCapability) {
  OpenMessage open;
  open.asn = Asn(200000);  // needs AS_TRANS in the fixed field
  auto wire = encode_open(open);
  OpenMessage decoded = decode_open(wire);
  EXPECT_TRUE(decoded.four_byte_asn_capable);
  EXPECT_EQ(decoded.asn, Asn(200000));
}

TEST(Codec, NotificationRoundTrip) {
  NotificationMessage n;
  n.error_code = 6;
  n.error_subcode = 2;
  n.data = {0xde, 0xad};
  auto wire = encode_notification(n);
  EXPECT_EQ(decode_notification(wire), n);
}

// Parameterized sweep: prefix lengths 0..32 all round-trip through the
// wire NLRI encoding (partial-byte prefix packing).
class PrefixLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrefixLengthSweep, V4PrefixRoundTrip) {
  int len = GetParam();
  Prefix p(IpAddress::from_string("203.0.113.255").masked(len), len);
  UpdateMessage update = sample_update();
  update.announced = {p};
  auto wire = encode_update(update);
  UpdateMessage decoded = decode_update(wire);
  ASSERT_EQ(decoded.announced.size(), 1u);
  EXPECT_EQ(decoded.announced[0], p);
}

INSTANTIATE_TEST_SUITE_P(AllLengths, PrefixLengthSweep,
                         ::testing::Range(0, 33));

// Parameterized sweep: IPv6 prefix lengths.
class PrefixLengthSweepV6 : public ::testing::TestWithParam<int> {};

TEST_P(PrefixLengthSweepV6, V6PrefixRoundTrip) {
  int len = GetParam();
  Prefix p(IpAddress::from_string("2001:db8:ffff:ffff::ffff").masked(len),
           len);
  UpdateMessage update;
  update.announced = {p};
  PathAttributes attrs;
  attrs.as_path = AsPath::sequence({100});
  attrs.next_hop = IpAddress::from_string("2001:db8::1");
  update.attrs = std::move(attrs);
  auto wire = encode_update(update);
  UpdateMessage decoded = decode_update(wire);
  ASSERT_EQ(decoded.announced.size(), 1u);
  EXPECT_EQ(decoded.announced[0], p);
}

INSTANTIATE_TEST_SUITE_P(SampledLengths, PrefixLengthSweepV6,
                         ::testing::Values(0, 1, 7, 8, 9, 32, 48, 64, 127,
                                           128));

}  // namespace
}  // namespace bgpcc
