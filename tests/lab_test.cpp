// Integration tests: the paper's §3 controlled experiments, Exp1-Exp4,
// across vendor profiles. Each TEST_P assertion corresponds to a claim in
// the paper's text.
#include <gtest/gtest.h>

#include "synth/labtopo.h"

namespace bgpcc::synth {
namespace {

struct LabCase {
  const char* vendor;
  bool junos_like;  // suppresses duplicates
};

VendorProfile vendor_of(const LabCase& c) {
  if (c.vendor == std::string("junos")) return VendorProfile::junos();
  if (c.vendor == std::string("bird")) return VendorProfile::bird();
  return VendorProfile::cisco_ios();
}

class LabSweep : public ::testing::TestWithParam<LabCase> {};

// Exp1: no communities. Y1 switches next hop Y2 -> Y3. An update with an
// unchanged AS path goes to X1 on duplicate-emitting vendors (Junos stays
// quiet), and nothing propagates to the collector.
TEST_P(LabSweep, Exp1InternalNextHopChange) {
  LabConfig config;
  config.scenario = LabScenario::kExp1NoCommunities;
  config.vendor = vendor_of(GetParam());
  LabExperiment experiment(config);
  LabResult result = experiment.run();

  ASSERT_TRUE(result.quiet_after_convergence);
  EXPECT_TRUE(result.collector_steady_communities.empty());

  if (GetParam().junos_like) {
    EXPECT_TRUE(result.y1_to_x1.empty())
        << "Junos must not generate the duplicate";
  } else {
    ASSERT_EQ(result.y1_to_x1.size(), 1u);
    const UpdateMessage& update = result.y1_to_x1[0].update;
    ASSERT_TRUE(update.attrs.has_value());
    // AS path unchanged: still Y Z.
    EXPECT_EQ(update.attrs->as_path.to_string(), "200 300");
    EXPECT_TRUE(update.attrs->communities.empty());
  }
  // "this update message does not propagate further".
  EXPECT_TRUE(result.x1_to_c1.empty());
}

// Exp2: geo-tagging. The collector saw Y:300; the flap changes only the
// community (Y:400). The community change alone triggers an update at X1
// — for every vendor.
TEST_P(LabSweep, Exp2GeoTaggingPropagatesCommunityOnlyUpdate) {
  LabConfig config;
  config.scenario = LabScenario::kExp2GeoTagging;
  config.vendor = vendor_of(GetParam());
  LabExperiment experiment(config);
  LabResult result = experiment.run();

  ASSERT_TRUE(result.quiet_after_convergence);
  // Steady state: Y2 is preferred, so the collector sees Y:300.
  EXPECT_TRUE(result.collector_steady_communities.contains(
      LabExperiment::y2_tag()));

  // Y1 -> X1: update with unchanged path but changed community.
  ASSERT_EQ(result.y1_to_x1.size(), 1u);
  const UpdateMessage& to_x1 = result.y1_to_x1[0].update;
  ASSERT_TRUE(to_x1.attrs.has_value());
  EXPECT_EQ(to_x1.attrs->as_path.to_string(), "200 300");
  EXPECT_TRUE(to_x1.attrs->communities.contains(LabExperiment::y3_tag()));

  // X1 -> C1: the community change is the sole trigger (X1's next hop did
  // not change); seen at the collector for ALL vendors.
  ASSERT_EQ(result.x1_to_c1.size(), 1u);
  const UpdateMessage& to_c1 = result.x1_to_c1[0].update;
  ASSERT_TRUE(to_c1.attrs.has_value());
  EXPECT_EQ(to_c1.attrs->as_path.to_string(), "100 200 300");
  EXPECT_TRUE(to_c1.attrs->communities.contains(LabExperiment::y3_tag()));
  EXPECT_FALSE(to_c1.attrs->communities.contains(LabExperiment::y2_tag()));
}

// Exp3: X1 cleans communities on egress. The collector-facing update has
// an unchanged path and no communities — an unnecessary duplicate — sent
// by Cisco/BIRD, suppressed by Junos.
TEST_P(LabSweep, Exp3EgressCleaningStillEmitsDuplicate) {
  LabConfig config;
  config.scenario = LabScenario::kExp3EgressCleaning;
  config.vendor = vendor_of(GetParam());
  LabExperiment experiment(config);
  LabResult result = experiment.run();

  ASSERT_TRUE(result.quiet_after_convergence);
  // Steady state at the collector: no communities (cleaned).
  EXPECT_TRUE(result.collector_steady_communities.empty());

  // The nc update still reaches X1 (cleaning is egress-side).
  ASSERT_EQ(result.y1_to_x1.size(), 1u);

  if (GetParam().junos_like) {
    EXPECT_TRUE(result.x1_to_c1.empty());
  } else {
    ASSERT_EQ(result.x1_to_c1.size(), 1u);
    const UpdateMessage& update = result.x1_to_c1[0].update;
    ASSERT_TRUE(update.attrs.has_value());
    EXPECT_EQ(update.attrs->as_path.to_string(), "100 200 300");
    EXPECT_TRUE(update.attrs->communities.empty());
  }
}

// Exp4: X1 cleans on ingress. The communities never enter X1's RIB, so no
// spurious update is generated at all — ingress and egress cleaning are
// observably different.
TEST_P(LabSweep, Exp4IngressCleaningStopsPropagation) {
  LabConfig config;
  config.scenario = LabScenario::kExp4IngressCleaning;
  config.vendor = vendor_of(GetParam());
  LabExperiment experiment(config);
  LabResult result = experiment.run();

  ASSERT_TRUE(result.quiet_after_convergence);
  // Y1 still sends the nc update toward X1...
  ASSERT_EQ(result.y1_to_x1.size(), 1u);
  // ...but X1 absorbs it for every vendor.
  EXPECT_TRUE(result.x1_to_c1.empty());
  Router& x1 = experiment.network().router("X1");
  EXPECT_GE(x1.stats().duplicate_updates_received, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Vendors, LabSweep,
    ::testing::Values(LabCase{"cisco", false}, LabCase{"bird", false},
                      LabCase{"junos", true}),
    [](const ::testing::TestParamInfo<LabCase>& info) {
      return info.param.vendor;
    });

// Flap-back: restoring the link reverses the community (Y:400 -> Y:300),
// producing a second nc at the collector in Exp2.
TEST(LabRestore, Exp2FlapBackReversesCommunity) {
  LabConfig config;
  config.scenario = LabScenario::kExp2GeoTagging;
  config.vendor = VendorProfile::cisco_ios();
  config.restore_link = true;
  LabExperiment experiment(config);
  LabResult result = experiment.run();

  ASSERT_EQ(result.x1_to_c1.size(), 2u);
  EXPECT_TRUE(result.x1_to_c1[0].update.attrs->communities.contains(
      LabExperiment::y3_tag()));
  EXPECT_TRUE(result.x1_to_c1[1].update.attrs->communities.contains(
      LabExperiment::y2_tag()));
}

// The steady-state path at the collector is X Y Z in all scenarios.
TEST(LabTopology, SteadyStatePath) {
  LabExperiment experiment({});
  LabResult result = experiment.run();
  ASSERT_TRUE(result.quiet_after_convergence);
  sim::RouteCollector& c1 = experiment.network().collector("C1");
  ASSERT_FALSE(c1.messages().empty());
  const UpdateMessage& first = c1.messages().front().update;
  ASSERT_TRUE(first.attrs.has_value());
  EXPECT_EQ(first.attrs->as_path.to_string(), "100 200 300");
}

}  // namespace
}  // namespace bgpcc::synth
