// Cross-module integration: simulator -> wire codec -> MRT file -> reader
// -> analysis pipeline. The classification of what a collector heard must
// be identical whether computed in-memory or from its MRT archive on disk.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/classifier.h"
#include "synth/labtopo.h"

namespace bgpcc {
namespace {

TEST(Integration, MrtRoundTripPreservesClassification) {
  synth::LabConfig config;
  config.scenario = synth::LabScenario::kExp2GeoTagging;
  config.restore_link = true;
  synth::LabExperiment experiment(config);
  (void)experiment.run();

  sim::RouteCollector& collector = experiment.network().collector("C1");
  ASSERT_GT(collector.message_count(), 2u);

  core::UpdateStream direct = core::UpdateStream::from_collector(collector);
  core::TypeCounts direct_counts = core::classify_stream(direct);

  std::string path = ::testing::TempDir() + "/bgpcc_integration.mrt";
  collector.write_mrt(path);
  core::UpdateStream from_disk =
      core::UpdateStream::from_mrt_file("C1", path);
  core::TypeCounts disk_counts = core::classify_stream(from_disk);
  std::remove(path.c_str());

  ASSERT_EQ(from_disk.size(), direct.size());
  for (core::AnnouncementType type : core::kAllAnnouncementTypes) {
    EXPECT_EQ(disk_counts.count(type), direct_counts.count(type))
        << core::label(type);
  }
  EXPECT_EQ(disk_counts.withdrawals, direct_counts.withdrawals);

  // Attribute fidelity through encode/decode: same communities observed.
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(from_disk.records()[i].attrs.communities,
              direct.records()[i].attrs.communities);
    EXPECT_EQ(from_disk.records()[i].attrs.as_path,
              direct.records()[i].attrs.as_path);
  }
}

TEST(Integration, SecondGranularityMrtNeedsCleaning) {
  synth::LabConfig config;
  config.scenario = synth::LabScenario::kExp2GeoTagging;
  config.restore_link = true;
  synth::LabExperiment experiment(config);
  (void)experiment.run();

  sim::RouteCollector& collector = experiment.network().collector("C1");
  std::string path = ::testing::TempDir() + "/bgpcc_integration_1s.mrt";
  collector.write_mrt(path, /*extended_time=*/false);
  core::UpdateStream stream = core::UpdateStream::from_mrt_file("C1", path);
  std::remove(path.c_str());

  // All records collapse onto whole seconds...
  for (const core::UpdateRecord& record : stream.records()) {
    EXPECT_EQ(record.time.unix_micros() % 1000000, 0);
  }
  // ...and the cleaning pipeline spreads same-second records apart.
  core::CleaningOptions options;
  core::clean(stream, options);
  std::map<std::pair<core::SessionKey, Prefix>, Timestamp> last;
  for (const core::UpdateRecord& record : stream.records()) {
    auto key = std::make_pair(record.session, record.prefix);
    auto it = last.find(key);
    if (it != last.end()) {
      EXPECT_GT(record.time, it->second);
    }
    last[key] = record.time;
  }
}

TEST(Integration, LabExp2ClassifiesAsNcAtCollector) {
  // End-to-end: the Exp2 collector stream, run through the paper's
  // classifier, shows the community-only update as nc.
  synth::LabConfig config;
  config.scenario = synth::LabScenario::kExp2GeoTagging;
  config.restore_link = true;
  synth::LabExperiment experiment(config);
  (void)experiment.run();

  core::UpdateStream stream = core::UpdateStream::from_collector(
      experiment.network().collector("C1"));
  core::TypeCounts counts = core::classify_stream(stream);
  // Two flap transitions, each a community-only change at the collector.
  EXPECT_EQ(counts.count(core::AnnouncementType::kNc), 2u);
  EXPECT_EQ(counts.count(core::AnnouncementType::kPc), 0u);
  EXPECT_EQ(counts.count(core::AnnouncementType::kPn), 0u);
}

TEST(Integration, LabExp3ClassifiesAsNnAtCollector) {
  synth::LabConfig config;
  config.scenario = synth::LabScenario::kExp3EgressCleaning;
  config.vendor = VendorProfile::cisco_ios();
  config.restore_link = true;
  synth::LabExperiment experiment(config);
  (void)experiment.run();

  core::UpdateStream stream = core::UpdateStream::from_collector(
      experiment.network().collector("C1"));
  core::TypeCounts counts = core::classify_stream(stream);
  EXPECT_EQ(counts.count(core::AnnouncementType::kNn), 2u);
  EXPECT_EQ(counts.count(core::AnnouncementType::kNc), 0u);
}

}  // namespace
}  // namespace bgpcc
