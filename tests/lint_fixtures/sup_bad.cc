// bgpcc-lint fixture: SUP must fire — a suppression without a reason
// string is itself a finding (and does NOT silence the check it
// names), so lazy blanket suppressions cannot creep in.
#include <cstdint>
#include <ostream>
#include <unordered_set>

namespace fixture {

class LazyStats {
 public:
  void save(std::ostream& out) const {
    // bgpcc-lint: allow(D1)
    for (std::uint32_t v : values_) {
      out << v << '\n';
    }
  }

 private:
  std::unordered_set<std::uint32_t> values_;
};

}  // namespace fixture
