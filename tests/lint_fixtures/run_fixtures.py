#!/usr/bin/env python3
"""Executable specification for bgpcc-lint: runs the tool over the
fixture corpus and asserts three things.

 1. Every ``*_bad.cc`` fixture fires *exactly* the check named in its
    filename (``d1_bad.cc`` → D1, ``sup_bad.cc`` → SUP), at least once.
 2. Every ``*_clean.cc`` twin and ``suppressed.cc`` produces no
    findings at all.
 3. The aggregate findings match ``expected.txt`` byte-for-byte, so
    line numbers and messages cannot drift silently. Regenerate with
    ``run_fixtures.py --update`` after an intentional change.

Each fixture is linted in its own invocation so fixtures cannot leak
symbols (class names, aliases) into each other's analysis.

Exits 0 on success, 1 with a diff/report on any mismatch.
"""

import argparse
import difflib
import os
import re
import subprocess
import sys

COMPACT_LINE_RE = re.compile(r"^(.+?):(\d+): ([A-Z0-9]+) ")


def main():
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(os.path.dirname(here))
    ap = argparse.ArgumentParser()
    ap.add_argument("--lint",
                    default=os.path.join(repo, "tools", "lint",
                                         "bgpcc_lint.py"))
    ap.add_argument("--fixtures", default=here)
    ap.add_argument("--update", action="store_true",
                    help="rewrite expected.txt from current output")
    args = ap.parse_args()

    fixtures = sorted(f for f in os.listdir(args.fixtures)
                      if f.endswith(".cc"))
    if not fixtures:
        print("run_fixtures: no .cc fixtures found", file=sys.stderr)
        return 1

    all_lines = []
    errors = []
    for name in fixtures:
        path = os.path.join(args.fixtures, name)
        proc = subprocess.run(
            [sys.executable, args.lint, path,
             "--root", args.fixtures, "--format", "compact"],
            capture_output=True, text=True)
        if proc.returncode not in (0, 1):
            errors.append(f"{name}: bgpcc-lint crashed "
                          f"(exit {proc.returncode}): {proc.stderr.strip()}")
            continue
        lines = [ln for ln in proc.stdout.splitlines() if ln.strip()]
        all_lines.extend(lines)
        fired = set()
        for ln in lines:
            m = COMPACT_LINE_RE.match(ln)
            if not m:
                errors.append(f"{name}: unparseable output line: {ln!r}")
                continue
            fired.add(m.group(3))

        stem = name[:-3]
        if stem.endswith("_bad"):
            want = {stem[:-4].split("_")[-1].upper()}
            if want == {"SUP"}:
                # A reasonless suppression is a SUP finding AND leaves
                # the check it names (D1 here) unsilenced — both fire.
                want = {"SUP", "D1"}
            if want - fired:
                errors.append(f"{name}: expected {sorted(want)} to fire, "
                              f"got {sorted(fired) or 'nothing'}")
            if fired - want:
                errors.append(f"{name}: unexpected checks fired: "
                              f"{sorted(fired - want)}")
            if proc.returncode != 1:
                errors.append(f"{name}: expected exit 1, got "
                              f"{proc.returncode}")
        else:  # *_clean.cc and suppressed.cc must be silent
            if fired:
                errors.append(f"{name}: expected no findings, got "
                              f"{sorted(fired)}:\n  " + "\n  ".join(lines))
            if proc.returncode != 0:
                errors.append(f"{name}: expected exit 0, got "
                              f"{proc.returncode}")

    expected_path = os.path.join(args.fixtures, "expected.txt")
    got = "\n".join(all_lines) + ("\n" if all_lines else "")
    if args.update:
        with open(expected_path, "w", encoding="utf-8") as f:
            f.write(got)
        print(f"run_fixtures: wrote {len(all_lines)} finding(s) to "
              f"{expected_path}")
    else:
        try:
            with open(expected_path, "r", encoding="utf-8") as f:
                want = f.read()
        except FileNotFoundError:
            errors.append("expected.txt missing — run with --update to "
                          "seed it")
            want = ""
        if want != got and "expected.txt missing" not in "".join(errors):
            diff = "\n".join(difflib.unified_diff(
                want.splitlines(), got.splitlines(),
                "expected.txt", "actual", lineterm=""))
            errors.append("golden mismatch (run with --update if the "
                          "change is intentional):\n" + diff)

    if errors:
        print("run_fixtures: FAIL", file=sys.stderr)
        for e in errors:
            print(" - " + e, file=sys.stderr)
        return 1
    print(f"run_fixtures: OK — {len(fixtures)} fixtures, "
          f"{len(all_lines)} expected finding(s) matched")
    return 0


if __name__ == "__main__":
    sys.exit(main())
