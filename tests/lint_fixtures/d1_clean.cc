// bgpcc-lint fixture: the clean twin of d1_bad.cc — the sort-barrier
// idiom serialize.cpp uses. D1 must stay silent.
#include <algorithm>
#include <cstdint>
#include <ostream>
#include <unordered_set>
#include <vector>

namespace fixture {

class CleanStats {
 public:
  void save(std::ostream& out) const {
    // Copy into a vector and sort; the emitted loop runs over the
    // sorted copy, so the bytes are independent of hash order.
    std::vector<std::uint32_t> sorted(values_.begin(), values_.end());
    std::sort(sorted.begin(), sorted.end());
    for (std::uint32_t v : sorted) {
      out << v << '\n';
    }
  }

  // Iterating the unordered container OUTSIDE an emit path is fine.
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (std::uint32_t v : values_) sum += v;
    return sum;
  }

 private:
  std::unordered_set<std::uint32_t> values_;
};

}  // namespace fixture
