// bgpcc-lint fixture: the clean twin of d2_bad.cc. Clock reads are
// fine outside emit paths (timing), and emit paths that only touch
// state stay silent.
#include <chrono>
#include <cstdint>
#include <ostream>

namespace fixture {

class CleanReport {
 public:
  void report(std::ostream& out) const {
    // Output depends only on accumulated state.
    out << observed_ << '\n';
  }

  // A clock read in a non-emit function (e.g. a timer) is fine.
  void tick() {
    last_ = std::chrono::steady_clock::now();
  }

 private:
  std::uint64_t observed_ = 0;
  std::chrono::steady_clock::time_point last_;
};

}  // namespace fixture
