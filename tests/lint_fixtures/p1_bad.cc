// bgpcc-lint fixture: P1 must fire — a pass that violates the
// Pass/SerializablePass contract in several ways.
#include <cstdint>
#include <mutex>
#include <ostream>

namespace fixture {

struct Record {};
struct Reader {};
struct Writer {};

// BAD: no kStateTag, no make_state, State not copy-constructible and
// missing save/load.
class BrokenPass {
 public:
  struct State {
    State() = default;
    State(const State&) = delete;  // BAD: snapshot() must copy states

    void observe(const Record& r) { ++seen_; }
    void merge(const State& other) { seen_ += other.seen_; }
    std::uint64_t report() const { return seen_; }
    // BAD: no save/load — cannot checkpoint.

    std::uint64_t seen_ = 0;
    std::mutex mu_;  // BAD: non-copyable member
  };
};

}  // namespace fixture
