// bgpcc-lint fixture: D1 must fire — deterministic-output functions
// iterating unordered containers without a sort barrier.
#include <cstdint>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

class BadStats {
 public:
  void save(std::ostream& out) const {
    // BAD: hash-table iteration order leaks into the serialized bytes.
    for (std::uint32_t v : values_) {
      out << v << '\n';
    }
  }

  void render_counts(std::ostream& out) const {
    // BAD: same rule for the render_* family.
    for (const auto& [k, n] : counts_) {
      out << k << ' ' << n << '\n';
    }
  }

 private:
  std::unordered_set<std::uint32_t> values_;
  std::unordered_map<std::uint32_t, std::uint64_t> counts_;
};

}  // namespace fixture
