// bgpcc-lint fixture: S1 must fire — decode paths that bypass the
// Reader primitives or trust a wire count before validating it.
#include <cstdint>
#include <istream>
#include <string>
#include <vector>

namespace fixture {

struct Reader {
  std::uint32_t u32();
  std::uint64_t u64();
};

class BadState {
 public:
  void load(Reader& r) {
    // BAD: pre-sizing from an unvalidated wire-read count — corrupt
    // input can drive a multi-gigabyte allocation before any
    // DecodeError fires.
    std::uint32_t count = r.u32();
    values_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      values_.push_back(r.u32());
    }
  }

 private:
  std::vector<std::uint32_t> values_;
};

// BAD: raw stream read inside a decode function — truncation yields
// garbage instead of a DecodeError.
void read_header(std::istream& in, char* buf) {
  in.read(buf, 16);
}

}  // namespace fixture
