// bgpcc-lint fixture: H1 must fire — locks/allocation in the lock-free
// hot paths (obs counter inc, shard observer).
#include <cstdint>
#include <mutex>
#include <vector>

namespace fixture {

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    // BAD: mutex acquisition in the counter hot path.
    std::lock_guard<std::mutex> hold(mu_);
    // BAD: container growth (allocation) per increment.
    samples_.push_back(n);
    value_ += n;
  }

 private:
  std::mutex mu_;
  std::uint64_t value_ = 0;
  std::vector<std::uint64_t> samples_;
};

}  // namespace fixture
