// bgpcc-lint fixture: D2 must fire — nondeterministic inputs feeding
// deterministic-output functions.
#include <chrono>
#include <cstdlib>
#include <ostream>

namespace fixture {

class BadReport {
 public:
  void report(std::ostream& out) const {
    // BAD: wall-clock read inside a report path.
    auto now = std::chrono::system_clock::now();
    out << now.time_since_epoch().count() << '\n';
    // BAD: randomness inside a report path.
    out << rand() << '\n';
  }

  void write_debug(std::ostream& out) const {
    // BAD: pointer values differ across runs (ASLR).
    out << static_cast<const void*>(this) << '\n';
  }
};

}  // namespace fixture
