// bgpcc-lint fixture: well-formed suppressions silence their checks.
// The tool must report NOTHING for this file.
#include <cstdint>
#include <ostream>
#include <unordered_set>

namespace fixture {

class SuppressedStats {
 public:
  std::uint64_t save(std::ostream& out) const {
    std::uint64_t parity = 0;
    // bgpcc-lint: allow(D1, XOR is commutative so order cannot reach output)
    for (std::uint32_t v : values_) {
      parity ^= v;
    }
    out << parity << '\n';
    return parity;
  }

  void report(std::ostream& out) const {
    for (std::uint32_t v : values_) {  // bgpcc-lint: allow(D1, sum commutes)
      total_ += v;
    }
    out << total_ << '\n';
  }

 private:
  std::unordered_set<std::uint32_t> values_;
  mutable std::uint64_t total_ = 0;
};

}  // namespace fixture
