// bgpcc-lint fixture: the clean twin of h1_bad.cc — the striped
// relaxed-atomic shape src/obs/metrics.cpp actually uses. H1 must
// stay silent (atomics are not locks, clock reads are allowed).
#include <atomic>
#include <chrono>
#include <cstdint>

namespace fixture {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    stripes_[0].v.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t sum = 0;
    for (const auto& s : stripes_) {
      sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  Stripe stripes_[16];
};

class StageTimer {
 public:
  void stop() noexcept {
    // Reading the steady clock is allowed; only locks/allocs are not.
    end_ = std::chrono::steady_clock::now();
  }

 private:
  std::chrono::steady_clock::time_point end_;
};

}  // namespace fixture
