// bgpcc-lint fixture: the clean twin of s1_bad.cc — wire counts are
// sanity-capped before they size anything (the serialize.cpp idiom).
// S1 must stay silent.
#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace fixture {

struct Reader {
  std::uint32_t u32();
  std::uint64_t u64();
};

struct DecodeError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class CleanState {
 public:
  void load(Reader& r) {
    std::uint32_t count = r.u32();
    // The cap comes before any allocation sized by the count.
    if (count > (1u << 16)) {
      throw DecodeError("implausible element count");
    }
    values_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      values_.push_back(r.u32());
    }
  }

  void load_segments(Reader& r) {
    std::uint32_t n = r.u32();
    // A std::min clamp also counts as a bound.
    segments_.reserve(std::min<std::uint32_t>(n, 64));
    for (std::uint32_t i = 0; i < n; ++i) {
      segments_.push_back(r.u32());
    }
  }

 private:
  std::vector<std::uint32_t> values_;
  std::vector<std::uint32_t> segments_;
};

}  // namespace fixture
