// bgpcc-lint fixture: the clean twin of p1_bad.cc — the full
// Pass/SerializablePass contract shape from src/analytics/passes.h.
// P1 must stay silent.
#include <cstdint>
#include <ostream>

namespace fixture {

struct Record {};
struct Reader {};
struct Writer {};

class GoodPass {
 public:
  static constexpr std::uint16_t kStateTag = 1;

  struct State {
    void observe(const Record& r) { ++seen_; }
    void merge(const State& other) { seen_ += other.seen_; }
    std::uint64_t report() const { return seen_; }
    void save(Writer& w) const {}
    void load(Reader& r) {}

   private:
    std::uint64_t seen_ = 0;
  };

  State make_state() const { return State{}; }
};

}  // namespace fixture
