// Differential property tests for the pipelined multi-archive ingestion
// engine: a seeded generator synthesizes randomized archives (mixed
// BGP4MP/BGP4MP_ET, AS4/non-AS4, state changes, sub-second ties,
// unallocated resources, route-server sessions) and asserts that the
// SAME logical record sequence ingested with 1 thread, N threads, any
// chunk size, any queue depth, or split across K archive files produces
// byte-identical streams, cleaning reports, and stats. This is the hard
// invariant of core/ingest: the output is a function of the input alone,
// never of the execution schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "bgp/codec.h"
#include "core/cleaning.h"
#include "core/ingest.h"
#include "core/registry.h"
#include "core/stream.h"
#include "mrt/mrt.h"
#include "sim/collector.h"

namespace bgpcc::core {
namespace {

struct GenPeer {
  Asn asn;
  IpAddress ip;
  bool extended_time;  // microsecond vs second-granularity collector
  bool as4;            // AS4 vs legacy two-octet BGP4MP encoding
};

/// Generates one logical record sequence as per-record byte strings, so a
/// test can concatenate them into any file split without re-framing.
class ArchiveGenerator {
 public:
  explicit ArchiveGenerator(std::uint32_t seed) : rng_(seed) {
    for (std::uint32_t i = 0; i < 5; ++i) {
      peers_.push_back(GenPeer{Asn(65001 + i), IpAddress::v4(0x0a000001u + i),
                               /*extended_time=*/i % 2 == 0,
                               /*as4=*/i % 3 != 0});
    }
    // A route-server session whose path is missing the server's own ASN.
    peers_.push_back(GenPeer{Asn(65010), IpAddress::from_string("10.0.0.9"),
                             /*extended_time=*/true, /*as4=*/true});
  }

  [[nodiscard]] std::vector<std::string> generate(int count) {
    std::vector<std::string> records;
    records.reserve(static_cast<std::size_t>(count));
    Timestamp now = Timestamp::from_unix_seconds(1600000000);
    for (int i = 0; i < count; ++i) {
      // Bursty clock: ~60% of records share the previous second, creating
      // the same-second ties the §4 sub-second repair must order
      // deterministically across every execution schedule.
      if (pick(10) < 4) now = now + Duration::seconds(pick(3) + 1);
      const GenPeer& peer = peers_[pick(peers_.size())];
      Timestamp when = now;
      if (peer.extended_time && pick(2) == 0) {
        when = when + Duration::micros(static_cast<std::int64_t>(pick(999)) *
                                       1000);
      }
      records.push_back(render(peer, when, i));
    }
    return records;
  }

 private:
  std::string render(const GenPeer& peer, Timestamp when, int index) {
    std::ostringstream out;
    mrt::Writer writer(out);
    if (pick(12) == 0) {
      mrt::Bgp4mpStateChange change;
      change.peer_asn = peer.asn;
      change.local_asn = Asn(64512);
      change.peer_ip = peer.ip;
      change.local_ip = IpAddress::from_string("203.0.113.1");
      change.old_state = mrt::FsmState::kEstablished;
      change.new_state = mrt::FsmState::kIdle;
      writer.write_state_change(when, change, peer.extended_time);
      return out.str();
    }
    UpdateMessage update;
    if (pick(4) == 0) {
      update.withdrawn.push_back(random_prefix());
    } else {
      std::size_t prefixes = 1 + pick(3);
      for (std::size_t p = 0; p < prefixes; ++p) {
        update.announced.push_back(random_prefix());
      }
      PathAttributes attrs;
      attrs.as_path = random_path();
      attrs.next_hop = IpAddress::from_string("192.0.2.1");
      if (pick(2) == 0) {
        attrs.communities.add(Community::of(
            65100, static_cast<std::uint16_t>(100 + index % 50)));
      }
      update.attrs = std::move(attrs);
    }
    CodecOptions codec;
    codec.four_byte_asn = peer.as4;
    mrt::Bgp4mpMessage message;
    message.peer_asn = peer.asn;
    message.local_asn = Asn(64512);
    message.peer_ip = peer.ip;
    message.local_ip = IpAddress::from_string("203.0.113.1");
    message.bgp_message = encode_update(update, codec);
    writer.write_message(when, message, peer.extended_time, peer.as4);
    return out.str();
  }

  Prefix random_prefix() {
    // Mostly inside the allocated 10/8 block; ~1 in 8 outside it so the
    // unallocated-prefix filter is on the differential path.
    if (pick(8) == 0) {
      return Prefix(IpAddress::v4(0xc0a80000u + (pick(16) << 8)), 24);
    }
    return Prefix(IpAddress::v4(0x0a000000u + (pick(4096) << 12)), 20);
  }

  AsPath random_path() {
    std::vector<Asn> hops;
    hops.push_back(Asn(65001 + pick(5)));
    std::size_t extra = 1 + pick(3);
    for (std::size_t h = 0; h < extra; ++h) {
      hops.push_back(Asn(65100 + pick(3)));
    }
    // ~1 in 10 paths carries an unallocated ASN the registry filter drops.
    if (pick(10) == 0) hops.push_back(Asn(65999));
    return AsPath::sequence(hops);
  }

  std::uint32_t pick(std::size_t bound) {
    return static_cast<std::uint32_t>(rng_() % bound);
  }

  std::mt19937 rng_;
  std::vector<GenPeer> peers_;
};

Registry allocated_registry() {
  Registry registry;
  for (std::uint32_t asn = 65001; asn <= 65010; ++asn) {
    registry.allocate_asn(Asn(asn));
  }
  for (std::uint32_t asn : {65100u, 65101u, 65102u}) {
    registry.allocate_asn(Asn(asn));
  }
  registry.allocate_prefix(Prefix::from_string("10.0.0.0/8"));
  return registry;
}

CleaningOptions cleaning_options(const Registry& registry) {
  CleaningOptions options;
  options.registry = &registry;
  options.route_servers.emplace_back(IpAddress::from_string("10.0.0.9"),
                                     Asn(65010));
  return options;
}

/// Splits per-record byte strings into K contiguous archive blobs whose
/// concatenation is the original sequence.
std::vector<std::string> split_archives(const std::vector<std::string>& records,
                                        std::size_t k) {
  std::vector<std::string> parts(k);
  std::size_t n = records.size();
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t i = p * n / k; i < (p + 1) * n / k; ++i) {
      parts[p] += records[i];
    }
  }
  return parts;
}

IngestResult ingest_split(const std::string& collector,
                          const std::vector<std::string>& parts,
                          const IngestOptions& options) {
  std::vector<std::istringstream> streams;
  streams.reserve(parts.size());
  for (const std::string& part : parts) streams.emplace_back(part);
  std::vector<MrtSource> sources;
  sources.reserve(parts.size());
  for (std::istringstream& in : streams) {
    sources.push_back(MrtSource{collector, &in});
  }
  return ingest_mrt_sources(sources, options);
}

void expect_identical(const IngestResult& x, const IngestResult& y) {
  ASSERT_EQ(x.stream.size(), y.stream.size());
  EXPECT_TRUE(x.stream.records() == y.stream.records());
  EXPECT_EQ(x.cleaning.dropped_unallocated_asn,
            y.cleaning.dropped_unallocated_asn);
  EXPECT_EQ(x.cleaning.dropped_unallocated_prefix,
            y.cleaning.dropped_unallocated_prefix);
  EXPECT_EQ(x.cleaning.route_server_paths_repaired,
            y.cleaning.route_server_paths_repaired);
  EXPECT_EQ(x.cleaning.timestamps_adjusted, y.cleaning.timestamps_adjusted);
  EXPECT_EQ(x.stats.raw_records, y.stats.raw_records);
  EXPECT_EQ(x.stats.update_messages, y.stats.update_messages);
  EXPECT_EQ(x.stats.records, y.stats.records);
}

// The acceptance matrix: K ∈ {1,2,5} × threads ∈ {1,4} × chunk_records ∈
// {1,4096} over randomized archives, each combination compared against
// the sequential single-archive reference — including the cleaning
// report, so cross-file session state is provably cleaned once.
TEST(IngestDifferential, SplitThreadChunkEquivalence) {
  for (std::uint32_t seed : {1u, 7u, 42u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    ArchiveGenerator gen(seed);
    std::vector<std::string> records = gen.generate(400);
    Registry registry = allocated_registry();
    CleaningOptions cleaning = cleaning_options(registry);

    IngestOptions reference_options;
    reference_options.num_threads = 1;
    reference_options.chunk_records = 4096;
    reference_options.cleaning = &cleaning;
    IngestResult reference =
        ingest_split("C1", split_archives(records, 1), reference_options);
    ASSERT_GT(reference.stream.size(), 0u);

    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
      std::vector<std::string> parts = split_archives(records, k);
      for (unsigned threads : {1u, 4u}) {
        for (std::size_t chunk : {std::size_t{1}, std::size_t{4096}}) {
          SCOPED_TRACE("k=" + std::to_string(k) +
                       " threads=" + std::to_string(threads) +
                       " chunk=" + std::to_string(chunk));
          IngestOptions options;
          options.num_threads = threads;
          options.chunk_records = chunk;
          options.cleaning = &cleaning;
          IngestResult result = ingest_split("C1", parts, options);
          expect_identical(reference, result);
          EXPECT_EQ(result.stats.files, k);
        }
      }
    }
  }
}

// Queue depth is an execution knob, not a semantic one: any bounded-queue
// capacity (including a pathological depth of 1) must leave the output
// untouched.
TEST(IngestDifferential, QueueDepthInvariance) {
  ArchiveGenerator gen(11);
  std::vector<std::string> records = gen.generate(300);
  Registry registry = allocated_registry();
  CleaningOptions cleaning = cleaning_options(registry);

  IngestOptions reference_options;
  reference_options.num_threads = 1;
  reference_options.cleaning = &cleaning;
  IngestResult reference =
      ingest_split("C1", split_archives(records, 3), reference_options);

  for (std::size_t depth : {std::size_t{1}, std::size_t{2}, std::size_t{64}}) {
    for (unsigned framers : {1u, 3u}) {
      SCOPED_TRACE("depth=" + std::to_string(depth) +
                   " framers=" + std::to_string(framers));
      IngestOptions options;
      options.num_threads = 4;
      options.chunk_records = 8;
      options.queue_chunks = depth;
      options.frame_threads = framers;
      options.cleaning = &cleaning;
      expect_identical(
          reference, ingest_split("C1", split_archives(records, 3), options));
    }
  }
}

// Multi-collector runs: per-source sequence bases must interleave the
// collectors exactly as the source order dictates, at every thread count
// and split.
TEST(IngestDifferential, MultiCollectorEquivalence) {
  ArchiveGenerator gen_a(5);
  ArchiveGenerator gen_b(9);
  std::vector<std::string> records_a = gen_a.generate(200);
  std::vector<std::string> records_b = gen_b.generate(200);
  Registry registry = allocated_registry();
  CleaningOptions cleaning = cleaning_options(registry);

  auto ingest_both = [&](std::size_t k, const IngestOptions& options) {
    std::vector<std::string> parts_a = split_archives(records_a, k);
    std::vector<std::string> parts_b = split_archives(records_b, k);
    std::vector<std::istringstream> streams;
    streams.reserve(2 * k);
    std::vector<MrtSource> sources;
    for (const std::string& part : parts_a) {
      streams.emplace_back(part);
      sources.push_back(MrtSource{"rrc00", &streams.back()});
    }
    for (const std::string& part : parts_b) {
      streams.emplace_back(part);
      sources.push_back(MrtSource{"route-views2", &streams.back()});
    }
    return ingest_mrt_sources(sources, options);
  };

  IngestOptions reference_options;
  reference_options.num_threads = 1;
  reference_options.cleaning = &cleaning;
  IngestResult reference = ingest_both(1, reference_options);
  ASSERT_GT(reference.stream.size(), 0u);
  // Both collectors must be represented in the merged stream.
  bool saw_a = false;
  bool saw_b = false;
  for (const UpdateRecord& record : reference.stream.records()) {
    saw_a = saw_a || record.session.collector == "rrc00";
    saw_b = saw_b || record.session.collector == "route-views2";
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);

  for (std::size_t k : {std::size_t{2}, std::size_t{4}}) {
    for (unsigned threads : {1u, 4u}) {
      SCOPED_TRACE("k=" + std::to_string(k) +
                   " threads=" + std::to_string(threads));
      IngestOptions options;
      options.num_threads = threads;
      options.chunk_records = 16;
      options.cleaning = &cleaning;
      expect_identical(reference, ingest_both(k, options));
    }
  }
}

// End-to-end through the filesystem front-end: a simulated collector's
// log rotated across K files (sim::RouteCollector::write_mrt_rotated)
// must ingest byte-identically to its single-archive dump.
TEST(IngestDifferential, RotatedFilesMatchSingleArchive) {
  sim::RouteCollector collector("rrc00", Asn(64512),
                                IpAddress::from_string("203.0.113.1"));
  Timestamp base = Timestamp::from_unix_seconds(1600000000);
  for (int i = 0; i < 150; ++i) {
    std::uint32_t session = static_cast<std::uint32_t>(i % 4);
    UpdateMessage update;
    update.announced.push_back(
        Prefix(IpAddress::v4(0x0a000000u +
                             (static_cast<std::uint32_t>(i) << 12)),
               20));
    PathAttributes attrs;
    attrs.as_path = AsPath::sequence({65001 + session, 65100});
    attrs.next_hop = IpAddress::from_string("192.0.2.1");
    update.attrs = std::move(attrs);
    collector.record(base + Duration::millis(i * 3), session,
                     Asn(65001 + session), IpAddress::v4(0x0a000001u + session),
                     update);
  }

  std::string dir = ::testing::TempDir();
  std::string single = dir + "/bgpcc_diff_single.mrt";
  collector.write_mrt(single, /*extended_time=*/false);

  IngestOptions options;
  options.num_threads = 4;
  options.chunk_records = 16;
  CleaningOptions cleaning;  // timestamp repair only
  options.cleaning = &cleaning;
  IngestResult reference = ingest_mrt_file("rrc00", single, options);

  for (std::size_t k : {std::size_t{2}, std::size_t{5}}) {
    SCOPED_TRACE("k=" + std::to_string(k));
    std::vector<std::string> paths = collector.write_mrt_rotated(
        dir + "/bgpcc_diff_rot" + std::to_string(k), k,
        /*extended_time=*/false);
    ASSERT_EQ(paths.size(), k);
    IngestResult result = ingest_mrt_files("rrc00", paths, options);
    expect_identical(reference, result);
    EXPECT_EQ(result.stats.files, k);
  }
}

// The in-simulator multi-collector path: ingest_collectors over several
// RouteCollectors equals ingesting their merged archives.
TEST(IngestDifferential, CollectorsMatchArchives) {
  std::vector<sim::RouteCollector> collectors;
  collectors.emplace_back("rrc00", Asn(64512),
                          IpAddress::from_string("203.0.113.1"));
  collectors.emplace_back("rrc01", Asn(64513),
                          IpAddress::from_string("203.0.113.2"));
  Timestamp base = Timestamp::from_unix_seconds(1600000000);
  for (int i = 0; i < 120; ++i) {
    UpdateMessage update;
    update.announced.push_back(
        Prefix(IpAddress::v4(0x0a000000u +
                             (static_cast<std::uint32_t>(i % 64) << 12)),
               20));
    PathAttributes attrs;
    attrs.as_path = AsPath::sequence(
        {65001u + static_cast<std::uint32_t>(i % 3), 65100});
    attrs.next_hop = IpAddress::from_string("192.0.2.1");
    update.attrs = std::move(attrs);
    collectors[static_cast<std::size_t>(i % 2)].record(
        base + Duration::millis(i * 5), static_cast<std::uint32_t>(i % 3),
        Asn(65001u + static_cast<std::uint32_t>(i % 3)),
        IpAddress::v4(0x0a000001u + static_cast<std::uint32_t>(i % 3)), update);
  }

  std::ostringstream archive_a;
  std::ostringstream archive_b;
  collectors[0].write_mrt(archive_a);
  collectors[1].write_mrt(archive_b);

  IngestOptions options;
  options.num_threads = 1;
  options.chunk_records = 16;
  std::istringstream in_a(archive_a.str());
  std::istringstream in_b(archive_b.str());
  IngestResult from_archives = ingest_mrt_sources(
      {MrtSource{"rrc00", &in_a}, MrtSource{"rrc01", &in_b}}, options);

  for (unsigned threads : {1u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    IngestOptions parallel = options;
    parallel.num_threads = threads;
    IngestResult direct =
        ingest_collectors({&collectors[0], &collectors[1]}, parallel);
    expect_identical(from_archives, direct);
    EXPECT_EQ(direct.stats.files, 2u);
  }
}

}  // namespace
}  // namespace bgpcc::core
