// Unit tests: table/number formatting.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/tables.h"

namespace bgpcc::core {
namespace {

TEST(Format, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(1234567), "1,234,567");
  EXPECT_EQ(with_commas(1008000000ull), "1,008,000,000");
}

TEST(Format, HumanCount) {
  EXPECT_EQ(human_count(532), "532");
  EXPECT_EQ(human_count(737000000ull), "737.0M");
  EXPECT_EQ(human_count(1008000000ull), "1.0B");
}

TEST(Format, Percent) {
  EXPECT_EQ(percent(0.337), "33.7%");
  EXPECT_EQ(percent(0.005, 1), "0.5%");
  EXPECT_EQ(percent(1.0, 0), "100%");
}

TEST(Format, FormatDouble) {
  EXPECT_EQ(format_double(1.2345, 2), "1.23");
  EXPECT_EQ(format_double(1.0, 0), "1");
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"type", "share"});
  table.add_row({"pc", "33.7%"});
  table.add_row({"nn", "25.7%"});
  table.add_separator();
  table.add_row({"total", "100%"});
  std::string out = table.to_string();
  // Header present, rows present, separator lines drawn.
  EXPECT_NE(out.find("type"), std::string::npos);
  EXPECT_NE(out.find("33.7%"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // First column left-aligned: "pc" padded to width of "total".
  EXPECT_NE(out.find("pc   "), std::string::npos);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"x"});
  EXPECT_NO_THROW((void)table.to_string());
}

TEST(Csv, EscapesCells) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line1\nline2"), "\"line1\nline2\"");
  EXPECT_EQ(csv_escape("cr\rlf"), "\"cr\rlf\"");
}

TEST(Csv, QuotesDirtyCellsOnDisk) {
  std::string path = ::testing::TempDir() + "/bgpcc_tables_quoting.csv";
  write_csv(path, {"communities", "note"},
            {{"65000:1 65000:2", "a,b"}, {"x", "he said \"go\""}});
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "communities,note");
  std::getline(in, line);
  EXPECT_EQ(line, "65000:1 65000:2,\"a,b\"");
  std::getline(in, line);
  EXPECT_EQ(line, "x,\"he said \"\"go\"\"\"");
  std::remove(path.c_str());
}

TEST(Csv, WritesRows) {
  std::string path = ::testing::TempDir() + "/bgpcc_tables_test.csv";
  write_csv(path, {"h1", "h2"}, {{"1", "2"}, {"3", "4"}});
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "h1,h2");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3,4");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bgpcc::core
