// Tests for the chunked, parallel, sharded ingestion engine: the central
// guarantee is that 1-thread and N-thread ingestion of the same input —
// at any chunk size — produce byte-identical ordered UpdateStreams,
// cleaning reports, and stats, including the §4 sub-second reordering
// edge cases on second-granularity collectors.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "bgp/codec.h"
#include "core/cleaning.h"
#include "core/ingest.h"
#include "core/registry.h"
#include "core/stream.h"
#include "mrt/mrt.h"
#include "netbase/error.h"
#include "sim/collector.h"

namespace bgpcc::core {
namespace {

struct Peer {
  Asn asn;
  IpAddress ip;
};

UpdateMessage announce(std::initializer_list<const char*> prefixes,
                       std::initializer_list<std::uint32_t> path) {
  UpdateMessage update;
  for (const char* p : prefixes) {
    update.announced.push_back(Prefix::from_string(p));
  }
  PathAttributes attrs;
  attrs.as_path = AsPath::sequence(path);
  attrs.next_hop = IpAddress::from_string("192.0.2.1");
  update.attrs = std::move(attrs);
  return update;
}

UpdateMessage withdraw(std::initializer_list<const char*> prefixes) {
  UpdateMessage update;
  for (const char* p : prefixes) {
    update.withdrawn.push_back(Prefix::from_string(p));
  }
  return update;
}

void write_update(mrt::Writer& writer, Timestamp when, const Peer& peer,
                  const UpdateMessage& update, bool extended_time) {
  mrt::Bgp4mpMessage message;
  message.peer_asn = peer.asn;
  message.local_asn = Asn(64512);
  message.peer_ip = peer.ip;
  message.local_ip = IpAddress::from_string("203.0.113.1");
  message.bgp_message = encode_update(update);
  writer.write_message(when, message, extended_time);
}

// A synthetic archive exercising every engine stage: several sessions,
// multi-prefix explosion, withdrawals, second-granularity bursts that the
// cleaning step must reorder, real-microsecond stamps it must leave alone,
// non-message records it must skip, and resources the registry filter
// must drop.
std::string synthetic_archive(int bursts) {
  Peer a{Asn(65001), IpAddress::from_string("10.0.0.1")};
  Peer b{Asn(65002), IpAddress::from_string("10.0.0.2")};
  Peer rs{Asn(65010), IpAddress::from_string("10.0.0.9")};  // route server
  Timestamp base = Timestamp::from_unix_seconds(1600000000);

  std::ostringstream out;
  mrt::Writer writer(out);
  for (int i = 0; i < bursts; ++i) {
    Timestamp t = base + Duration::seconds(i);
    // Same-second burst on two interleaved sessions (second granularity).
    write_update(writer, t, a,
                 announce({"10.1.0.0/16", "10.2.0.0/16"}, {65001, 65100}),
                 /*extended_time=*/false);
    write_update(writer, t, b, announce({"10.3.0.0/16"}, {65002, 65100}),
                 /*extended_time=*/false);
    write_update(writer, t, a, withdraw({"10.1.0.0/16"}),
                 /*extended_time=*/false);
    write_update(writer, t, b, announce({"10.4.0.0/16"}, {65002, 65200}),
                 /*extended_time=*/false);
    // Route-server session missing its own ASN on the path.
    write_update(writer, t, rs, announce({"10.5.0.0/16"}, {65300, 65100}),
                 /*extended_time=*/true);
    // Real-microsecond stamp: must not be rewritten by the repair.
    write_update(writer, t + Duration::micros(500000), a,
                 announce({"10.6.0.0/16"}, {65001, 65200}),
                 /*extended_time=*/true);
    // Unallocated origin ASN and unallocated prefix: filtered by §4.
    write_update(writer, t, b, announce({"10.7.0.0/16"}, {65002, 65999}),
                 /*extended_time=*/false);
    write_update(writer, t, a, announce({"192.168.0.0/24"}, {65001, 65100}),
                 /*extended_time=*/false);
    // A state change the message filter must skip.
    mrt::Bgp4mpStateChange change;
    change.peer_asn = a.asn;
    change.local_asn = Asn(64512);
    change.peer_ip = a.ip;
    change.local_ip = IpAddress::from_string("203.0.113.1");
    change.old_state = mrt::FsmState::kEstablished;
    change.new_state = mrt::FsmState::kIdle;
    writer.write_state_change(t, change);
  }
  return out.str();
}

Registry allocated_registry() {
  Registry registry;
  for (std::uint32_t asn : {65001u, 65002u, 65010u, 65100u, 65200u, 65300u}) {
    registry.allocate_asn(Asn(asn));
  }
  registry.allocate_prefix(Prefix::from_string("10.0.0.0/8"));
  return registry;
}

CleaningOptions cleaning_options(const Registry& registry) {
  CleaningOptions options;
  options.registry = &registry;
  options.route_servers.emplace_back(IpAddress::from_string("10.0.0.9"),
                                     Asn(65010));
  return options;
}

IngestResult ingest(const std::string& archive, const IngestOptions& options) {
  std::istringstream in(archive);
  return ingest_mrt_stream("C1", in, options);
}

void expect_identical(const IngestResult& x, const IngestResult& y) {
  ASSERT_EQ(x.stream.size(), y.stream.size());
  EXPECT_TRUE(x.stream.records() == y.stream.records());
  EXPECT_EQ(x.cleaning.dropped_unallocated_asn,
            y.cleaning.dropped_unallocated_asn);
  EXPECT_EQ(x.cleaning.dropped_unallocated_prefix,
            y.cleaning.dropped_unallocated_prefix);
  EXPECT_EQ(x.cleaning.route_server_paths_repaired,
            y.cleaning.route_server_paths_repaired);
  EXPECT_EQ(x.cleaning.timestamps_adjusted, y.cleaning.timestamps_adjusted);
  EXPECT_EQ(x.stats.raw_records, y.stats.raw_records);
  EXPECT_EQ(x.stats.update_messages, y.stats.update_messages);
  EXPECT_EQ(x.stats.records, y.stats.records);
}

TEST(ParallelIngest, SingleVsMultiThreadIdentical) {
  std::string archive = synthetic_archive(40);
  Registry registry = allocated_registry();
  CleaningOptions cleaning = cleaning_options(registry);

  IngestOptions single;
  single.num_threads = 1;
  single.chunk_records = 16;
  single.cleaning = &cleaning;
  IngestResult reference = ingest(archive, single);
  EXPECT_GT(reference.stream.size(), 0u);

  for (unsigned threads : {2u, 4u, 8u, 0u}) {
    IngestOptions parallel = single;
    parallel.num_threads = threads;
    expect_identical(reference, ingest(archive, parallel));
  }
}

TEST(ParallelIngest, ChunkSizeInvariance) {
  std::string archive = synthetic_archive(20);
  Registry registry = allocated_registry();
  CleaningOptions cleaning = cleaning_options(registry);

  IngestOptions reference_options;
  reference_options.num_threads = 4;
  reference_options.chunk_records = 4096;
  reference_options.cleaning = &cleaning;
  IngestResult reference = ingest(archive, reference_options);

  for (std::size_t chunk : {std::size_t{1}, std::size_t{3}, std::size_t{64}}) {
    IngestOptions options = reference_options;
    options.chunk_records = chunk;
    expect_identical(reference, ingest(archive, options));
  }
}

TEST(ParallelIngest, ShardCountInvariance) {
  // The shard count is a parallelism knob, not a semantic one: any
  // explicit count — and the auto-resolved default — must produce the
  // byte-identical stream, because sessions stay whole per shard and the
  // merge orders globally. This is what lets checkpoints written on a
  // 64-core host resume on a 4-core one.
  std::string archive = synthetic_archive(25);
  Registry registry = allocated_registry();
  CleaningOptions cleaning = cleaning_options(registry);

  IngestOptions reference_options;
  reference_options.num_threads = 4;
  reference_options.chunk_records = 8;
  reference_options.cleaning = &cleaning;
  IngestResult reference = ingest(archive, reference_options);
  EXPECT_EQ(reference.stats.shards, kIngestShards);

  for (std::size_t shards : {std::size_t{1}, std::size_t{4}, std::size_t{16},
                             std::size_t{64}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    IngestOptions options = reference_options;
    options.shards = shards;
    IngestResult result = ingest(archive, options);
    expect_identical(reference, result);
    EXPECT_EQ(result.stats.shards, shards);
  }

  IngestOptions oversize = reference_options;
  oversize.shards = kMaxIngestShards + 1;
  EXPECT_THROW((void)ingest(archive, oversize), ConfigError);
}

TEST(ParallelIngest, ShardCountResolvesAboveThreadCount) {
  IngestOptions options;
  options.num_threads = 1;
  EXPECT_EQ(resolve_shard_count(options), kIngestShards);
  options.num_threads = 16;
  EXPECT_EQ(resolve_shard_count(options), kIngestShards);
  options.num_threads = 17;
  EXPECT_EQ(resolve_shard_count(options), 32u);
  options.num_threads = 64;
  EXPECT_EQ(resolve_shard_count(options), 64u);
  options.num_threads = 5000;  // capped, not unbounded doubling
  EXPECT_EQ(resolve_shard_count(options), kMaxIngestShards);
  options.shards = 7;  // explicit values win verbatim
  EXPECT_EQ(resolve_shard_count(options), 7u);
}

TEST(ParallelIngest, MatchesLegacySequentialPipeline) {
  std::string archive = synthetic_archive(25);
  Registry registry = allocated_registry();
  CleaningOptions cleaning = cleaning_options(registry);

  // Legacy path: file-order builder, then in-place clean().
  IngestOptions legacy_options;
  legacy_options.num_threads = 1;
  legacy_options.sort_by_time = false;
  UpdateStream legacy = ingest(archive, legacy_options).stream;
  CleaningReport legacy_report = clean(legacy, cleaning);

  IngestOptions engine;
  engine.num_threads = 8;
  engine.chunk_records = 8;
  engine.cleaning = &cleaning;
  IngestResult result = ingest(archive, engine);

  EXPECT_TRUE(legacy.records() == result.stream.records());
  EXPECT_EQ(legacy_report.dropped_unallocated_asn,
            result.cleaning.dropped_unallocated_asn);
  EXPECT_EQ(legacy_report.dropped_unallocated_prefix,
            result.cleaning.dropped_unallocated_prefix);
  EXPECT_EQ(legacy_report.route_server_paths_repaired,
            result.cleaning.route_server_paths_repaired);
  EXPECT_EQ(legacy_report.timestamps_adjusted,
            result.cleaning.timestamps_adjusted);
}

TEST(ParallelIngest, SubSecondReorderEdgeCases) {
  // Two sessions bursting within the same second: the repair must space
  // each session independently and the merge must interleave them by
  // (adjusted time, arrival order) — identically at every thread count.
  Peer a{Asn(65001), IpAddress::from_string("10.0.0.1")};
  Peer b{Asn(65002), IpAddress::from_string("10.0.0.2")};
  Timestamp t = Timestamp::from_unix_seconds(1600000000);

  std::ostringstream out;
  mrt::Writer writer(out);
  write_update(writer, t, a, announce({"10.1.0.0/16"}, {65001}), false);
  write_update(writer, t, b, announce({"10.2.0.0/16"}, {65002}), false);
  write_update(writer, t, a, announce({"10.3.0.0/16"}, {65001}), false);
  write_update(writer, t, b, announce({"10.4.0.0/16"}, {65002}), false);
  write_update(writer, t, a, announce({"10.5.0.0/16"}, {65001}), false);
  std::string archive = out.str();

  CleaningOptions cleaning;  // no registry: only the timestamp repair

  for (unsigned threads : {1u, 4u}) {
    IngestOptions options;
    options.num_threads = threads;
    options.chunk_records = 2;
    options.cleaning = &cleaning;
    IngestResult result = ingest(archive, options);

    ASSERT_EQ(result.stream.size(), 5u);
    EXPECT_EQ(result.cleaning.timestamps_adjusted, 3u);
    const std::vector<UpdateRecord>& records = result.stream.records();
    // Per-session spacing: A at +0, +10us, +20us; B at +0, +10us.
    EXPECT_EQ(records[0].time, t);
    EXPECT_EQ(records[0].session.peer_asn, Asn(65001));
    EXPECT_EQ(records[1].time, t);
    EXPECT_EQ(records[1].session.peer_asn, Asn(65002));
    EXPECT_EQ(records[2].time, t + Duration::micros(10));
    EXPECT_EQ(records[2].session.peer_asn, Asn(65001));
    EXPECT_EQ(records[3].time, t + Duration::micros(10));
    EXPECT_EQ(records[3].session.peer_asn, Asn(65002));
    EXPECT_EQ(records[4].time, t + Duration::micros(20));
    EXPECT_EQ(records[4].session.peer_asn, Asn(65001));
  }
}

TEST(ParallelIngest, CollectorIngestMatchesLegacy) {
  sim::RouteCollector collector("rrc00", Asn(64512),
                                IpAddress::from_string("203.0.113.1"));
  Timestamp base = Timestamp::from_unix_seconds(1600000000);
  for (int i = 0; i < 200; ++i) {
    std::uint32_t session = static_cast<std::uint32_t>(i % 5);
    Asn peer = Asn(65001u + session);
    IpAddress ip = IpAddress::v4(0x0a000001u + session);
    collector.record(base + Duration::millis(i), session, peer, ip,
                     i % 7 == 0 ? withdraw({"10.1.0.0/16"})
                                : announce({"10.1.0.0/16", "10.2.0.0/16"},
                                           {65001u + session, 65100}));
  }

  UpdateStream legacy = UpdateStream::from_collector(collector);

  for (unsigned threads : {1u, 4u}) {
    IngestOptions options;
    options.num_threads = threads;
    options.chunk_records = 16;
    options.sort_by_time = false;
    IngestResult result = ingest_collector(collector, options);
    EXPECT_TRUE(legacy.records() == result.stream.records());
    EXPECT_EQ(result.stats.update_messages, 200u);
  }
}

TEST(ParallelIngest, StatsAreDeterministic) {
  std::string archive = synthetic_archive(10);
  IngestOptions options;
  options.num_threads = 4;
  options.chunk_records = 8;
  IngestResult result = ingest(archive, options);
  // Per burst: 8 update messages + 1 state change = 9 raw records.
  EXPECT_EQ(result.stats.raw_records, 90u);
  EXPECT_EQ(result.stats.update_messages, 80u);
  // Explosion: the first update announces two prefixes, so 9 records.
  EXPECT_EQ(result.stats.records, 90u);
  EXPECT_EQ(result.stats.records, result.stream.size());
  EXPECT_EQ(result.stats.chunks, 12u);
  EXPECT_EQ(result.stats.threads, 4u);
}

TEST(ParallelIngest, CorruptMessageThrowsAcrossWorkers) {
  // A structurally valid MRT record whose inner BGP message is garbage:
  // the failure happens on a decode worker and must surface to the caller.
  Peer a{Asn(65001), IpAddress::from_string("10.0.0.1")};
  std::ostringstream out;
  mrt::Writer writer(out);
  for (int i = 0; i < 32; ++i) {
    write_update(writer, Timestamp::from_unix_seconds(1600000000 + i), a,
                 announce({"10.1.0.0/16"}, {65001}), true);
  }
  mrt::Bgp4mpMessage bad;
  bad.peer_asn = a.asn;
  bad.local_asn = Asn(64512);
  bad.peer_ip = a.ip;
  bad.local_ip = IpAddress::from_string("203.0.113.1");
  bad.bgp_message = std::vector<std::uint8_t>(19, 0x00);  // invalid marker
  writer.write_message(Timestamp::from_unix_seconds(1600000100), bad);

  IngestOptions options;
  options.num_threads = 4;
  options.chunk_records = 4;
  std::istringstream in(out.str());
  EXPECT_THROW(ingest_mrt_stream("C1", in, options), DecodeError);
}

TEST(SessionKeyHash, StableAndSpreading) {
  SessionKey a{"C1", Asn(65001), IpAddress::from_string("10.0.0.1")};
  SessionKey b{"C1", Asn(65001), IpAddress::from_string("10.0.0.2")};
  SessionKey c{"C2", Asn(65001), IpAddress::from_string("10.0.0.1")};
  SessionKey a_copy = a;
  EXPECT_EQ(a.hash(), a_copy.hash());
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
  EXPECT_EQ(SessionKeyHash{}(a), a.hash());
}

}  // namespace
}  // namespace bgpcc::core
