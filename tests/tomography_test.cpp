// Unit tests: per-AS community behavior inference.
#include <gtest/gtest.h>

#include "core/tomography.h"

namespace bgpcc::core {
namespace {

UpdateRecord make_record(Asn peer, const std::string& path,
                         const std::string& comms, int t) {
  UpdateRecord r;
  r.time = Timestamp::from_unix_seconds(t);
  r.session = SessionKey{"rrc00", peer, IpAddress::from_string("192.0.2.1")};
  r.prefix = Prefix::from_string("84.205.64.0/24");
  r.announcement = true;
  r.attrs.as_path = AsPath::from_string(path);
  if (!comms.empty()) {
    std::size_t start = 0;
    while (start < comms.size()) {
      std::size_t end = comms.find(' ', start);
      if (end == std::string::npos) end = comms.size();
      r.attrs.communities.add(
          Community::from_string(comms.substr(start, end - start)));
      start = end + 1;
    }
  }
  return r;
}

const AsEvidence* find_as(const std::vector<AsEvidence>& all, Asn asn) {
  for (const AsEvidence& e : all) {
    if (e.asn == asn) return &e;
  }
  return nullptr;
}

TEST(Tomography, ClassifiesTaggerCleanerPropagator) {
  UpdateStream stream;
  // AS 3356 tags (its namespace appears whenever it is on the path);
  // peer 20205 propagates those foreign communities;
  // peer 20811 cleans (announcements via it carry nothing).
  for (int i = 0; i < 30; ++i) {
    stream.add(make_record(Asn(20205), "20205 3356 12654",
                           "3356:" + std::to_string(2000 + i % 5), i));
    stream.add(make_record(Asn(20811), "20811 3356 12654", "", 100 + i));
  }
  auto evidence = infer_community_behavior(stream);

  const AsEvidence* transit = find_as(evidence, Asn(3356));
  ASSERT_NE(transit, nullptr);
  EXPECT_EQ(transit->classification, CommunityBehavior::kTagger);
  EXPECT_EQ(transit->on_path, 60u);
  // Tag signal only counts where the communities are visible.
  EXPECT_EQ(transit->own_namespace_tagged, 30u);

  const AsEvidence* propagator = find_as(evidence, Asn(20205));
  ASSERT_NE(propagator, nullptr);
  EXPECT_EQ(propagator->classification, CommunityBehavior::kPropagator);
  EXPECT_EQ(propagator->as_peer, 30u);
  EXPECT_EQ(propagator->as_peer_with_foreign, 30u);

  const AsEvidence* cleaner = find_as(evidence, Asn(20811));
  ASSERT_NE(cleaner, nullptr);
  EXPECT_EQ(cleaner->classification, CommunityBehavior::kCleaner);
  EXPECT_EQ(cleaner->as_peer_with_communities, 0u);
}

TEST(Tomography, InsufficientEvidenceIsUnknown) {
  UpdateStream stream;
  stream.add(make_record(Asn(20205), "20205 3356 12654", "3356:1", 0));
  auto evidence = infer_community_behavior(stream);
  const AsEvidence* peer = find_as(evidence, Asn(20205));
  ASSERT_NE(peer, nullptr);
  EXPECT_EQ(peer->classification, CommunityBehavior::kUnknown);
}

TEST(Tomography, PeerTaggingItsOwnNamespace) {
  UpdateStream stream;
  for (int i = 0; i < 30; ++i) {
    stream.add(
        make_record(Asn(20205), "20205 3356 12654", "20205:100", i));
  }
  auto evidence = infer_community_behavior(stream);
  const AsEvidence* peer = find_as(evidence, Asn(20205));
  ASSERT_NE(peer, nullptr);
  EXPECT_EQ(peer->classification, CommunityBehavior::kTagger);
}

TEST(Tomography, SortedByOnPathVolume) {
  UpdateStream stream;
  for (int i = 0; i < 20; ++i) {
    stream.add(make_record(Asn(20205), "20205 3356 12654", "", i));
  }
  for (int i = 0; i < 5; ++i) {
    stream.add(make_record(Asn(20811), "20811 174 48", "", 50 + i));
  }
  auto evidence = infer_community_behavior(stream);
  ASSERT_GE(evidence.size(), 2u);
  EXPECT_GE(evidence[0].on_path, evidence[1].on_path);
}

TEST(Tomography, WithdrawalsIgnored) {
  UpdateStream stream;
  UpdateRecord w;
  w.time = Timestamp::from_unix_seconds(0);
  w.session = SessionKey{"rrc00", Asn(1), IpAddress::from_string("192.0.2.1")};
  w.prefix = Prefix::from_string("84.205.64.0/24");
  w.announcement = false;
  stream.add(w);
  EXPECT_TRUE(infer_community_behavior(stream).empty());
}

TEST(Tomography, LabelsDistinct) {
  EXPECT_STREQ(label(CommunityBehavior::kTagger), "tagger");
  EXPECT_STREQ(label(CommunityBehavior::kCleaner), "cleaner");
  EXPECT_STREQ(label(CommunityBehavior::kPropagator), "propagator");
  EXPECT_STREQ(label(CommunityBehavior::kMixed), "mixed");
  EXPECT_STREQ(label(CommunityBehavior::kUnknown), "unknown");
}

}  // namespace
}  // namespace bgpcc::core
